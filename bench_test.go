// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 7), plus the ablations called out in DESIGN.md. Each figure
// benchmark runs the full experiment per iteration and reports the headline
// quantities as custom metrics, so `go test -bench=. -benchmem` both
// exercises the system end to end and prints the reproduced results.
package filterdir

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"filterdir/internal/cascade"
	"filterdir/internal/containment"
	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/filter"
	"filterdir/internal/ldapnet"
	"filterdir/internal/metrics"
	"filterdir/internal/proto"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
	"filterdir/internal/selection"
	"filterdir/internal/sim"
	"filterdir/internal/supervisor"
	"filterdir/internal/tierctl"
	"filterdir/internal/workload"
)

// benchConfig keeps the per-iteration experiment cost moderate.
func benchConfig() sim.Config {
	return sim.Config{
		Employees:       3000,
		MeasureQueries:  3000,
		WarmupQueries:   3000,
		BudgetFractions: []float64{0.02, 0.05, 0.10, 0.20, 0.35},
		Updates:         1500,
		Seed:            1,
		PayloadBytes:    128,
	}
}

func reportSeries(b *testing.B, fig *metrics.Figure, name, metric string, x float64) {
	b.Helper()
	s := fig.SeriesByName(name)
	if s == nil {
		b.Fatalf("series %q missing", name)
	}
	if y, ok := s.YAt(x); ok {
		b.ReportMetric(y, metric)
	}
}

// BenchmarkTable1WorkloadMix regenerates the Table 1 query-type mix.
func BenchmarkTable1WorkloadMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := sim.Table1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig, "measured %", "serial_pct", 1)
			reportSeries(b, fig, "measured %", "mail_pct", 2)
		}
	}
}

// BenchmarkFigure2ReferralRoundTrips measures the referral mechanism of
// Figure 2 over real TCP: one subtree search across three servers.
func BenchmarkFigure2ReferralRoundTrips(b *testing.B) {
	storeA, err := dit.NewStore([]string{"o=xyz"})
	if err != nil {
		b.Fatal(err)
	}
	mustAdd := func(st *dit.Store, dnStr string, attrs map[string][]string) {
		e := entry.New(dn.MustParse(dnStr))
		for k, v := range attrs {
			e.Put(k, v...)
		}
		if err := st.Add(e); err != nil {
			b.Fatal(err)
		}
	}
	mustAdd(storeA, "o=xyz", map[string][]string{"objectclass": {"organization"}, "o": {"xyz"}})
	mustAdd(storeA, "c=us,o=xyz", map[string][]string{"objectclass": {"country"}, "c": {"us"}})
	mustAdd(storeA, "ou=research,c=us,o=xyz", map[string][]string{
		"objectclass": {dit.ReferralClass}, dit.RefAttr: {"ldap://hostB/ou=research,c=us,o=xyz"}})
	mustAdd(storeA, "c=in,o=xyz", map[string][]string{
		"objectclass": {dit.ReferralClass}, dit.RefAttr: {"ldap://hostC/c=in,o=xyz"}})

	storeB, err := dit.NewStore([]string{"ou=research,c=us,o=xyz"}, dit.WithDefaultReferral("ldap://hostA"))
	if err != nil {
		b.Fatal(err)
	}
	mustAdd(storeB, "ou=research,c=us,o=xyz", map[string][]string{"objectclass": {"organizationalUnit"}, "ou": {"research"}})
	mustAdd(storeB, "cn=John Doe,ou=research,c=us,o=xyz", map[string][]string{
		"objectclass": {"person"}, "cn": {"John Doe"}, "sn": {"Doe"}})
	storeC, err := dit.NewStore([]string{"c=in,o=xyz"}, dit.WithDefaultReferral("ldap://hostA"))
	if err != nil {
		b.Fatal(err)
	}
	mustAdd(storeC, "c=in,o=xyz", map[string][]string{"objectclass": {"country"}, "c": {"in"}})

	srvA, err := ldapnet.Serve("127.0.0.1:0", ldapnet.NewStoreBackend(storeA))
	if err != nil {
		b.Fatal(err)
	}
	defer srvA.Close()
	srvB, err := ldapnet.Serve("127.0.0.1:0", ldapnet.NewStoreBackend(storeB))
	if err != nil {
		b.Fatal(err)
	}
	defer srvB.Close()
	srvC, err := ldapnet.Serve("127.0.0.1:0", ldapnet.NewStoreBackend(storeC))
	if err != nil {
		b.Fatal(err)
	}
	defer srvC.Close()

	q := query.MustNew("o=xyz", query.ScopeSubtree, "(objectclass=*)")
	b.ResetTimer()
	var lastRT int
	for i := 0; i < b.N; i++ {
		r := ldapnet.NewResolver()
		r.Register("hostA", srvA.Addr())
		r.Register("hostB", srvB.Addr())
		r.Register("hostC", srvC.Addr())
		if _, err := r.SearchChasing("hostB", q); err != nil {
			b.Fatal(err)
		}
		lastRT = r.RoundTrips()
		r.Close()
	}
	b.ReportMetric(float64(lastRT), "round_trips")
}

// benchFigure runs one experiment per iteration, reporting headline points.
func benchFigure(b *testing.B, id string, report func(*testing.B, *metrics.Figure)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fig, err := sim.ByID(id, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			report(b, fig)
		}
	}
}

// BenchmarkFigure4HitRatioVsReplicaSize reproduces Figure 4.
func BenchmarkFigure4HitRatioVsReplicaSize(b *testing.B) {
	benchFigure(b, "figure4", func(b *testing.B, fig *metrics.Figure) {
		reportSeries(b, fig, "filter-based", "filter_hit_at_10pct", 0.10)
		reportSeries(b, fig, "subtree-based", "subtree_hit_at_10pct", 0.10)
		reportSeries(b, fig, "filter-based", "filter_hit_at_35pct", 0.35)
		reportSeries(b, fig, "subtree-based", "subtree_hit_at_35pct", 0.35)
	})
}

// BenchmarkFigure5DeptHitRatio reproduces Figure 5.
func BenchmarkFigure5DeptHitRatio(b *testing.B) {
	benchFigure(b, "figure5", func(b *testing.B, fig *metrics.Figure) {
		reportSeries(b, fig, "filter R=6000", "r6000_hit_at_20pct", 0.20)
		reportSeries(b, fig, "filter R=10000", "r10000_hit_at_20pct", 0.20)
	})
}

// BenchmarkFigure6UpdateTraffic reproduces Figure 6.
func BenchmarkFigure6UpdateTraffic(b *testing.B) {
	benchFigure(b, "figure6", func(b *testing.B, fig *metrics.Figure) {
		if s := fig.SeriesByName("filter-based"); s != nil {
			b.ReportMetric(s.MaxY(), "filter_max_traffic")
		}
		if s := fig.SeriesByName("subtree-based"); s != nil {
			b.ReportMetric(s.MaxY(), "subtree_max_traffic")
		}
	})
}

// BenchmarkFigure7DeptUpdateTraffic reproduces Figure 7.
func BenchmarkFigure7DeptUpdateTraffic(b *testing.B) {
	benchFigure(b, "figure7", func(b *testing.B, fig *metrics.Figure) {
		if s := fig.SeriesByName("filter R=6000"); s != nil {
			b.ReportMetric(s.MaxY(), "r6000_max_traffic")
		}
		if s := fig.SeriesByName("filter R=10000"); s != nil {
			b.ReportMetric(s.MaxY(), "r10000_max_traffic")
		}
		if s := fig.SeriesByName("subtree-based"); s != nil {
			b.ReportMetric(s.MaxY(), "subtree_max_traffic")
		}
	})
}

// BenchmarkFigure8HitRatioVsFilters reproduces Figure 8.
func BenchmarkFigure8HitRatioVsFilters(b *testing.B) {
	benchFigure(b, "figure8", func(b *testing.B, fig *metrics.Figure) {
		reportSeries(b, fig, "user queries only", "user_hit_at_200", 200)
		reportSeries(b, fig, "generalized only", "gen_hit_at_200", 200)
		reportSeries(b, fig, "generalized + user", "both_hit_at_200", 200)
	})
}

// BenchmarkFigure9DeptHitRatioVsFilters reproduces Figure 9.
func BenchmarkFigure9DeptHitRatioVsFilters(b *testing.B) {
	benchFigure(b, "figure9", func(b *testing.B, fig *metrics.Figure) {
		reportSeries(b, fig, "user queries only", "user_hit_at_200", 200)
		reportSeries(b, fig, "generalized only", "gen_hit_at_200", 200)
		reportSeries(b, fig, "generalized + user", "both_hit_at_200", 200)
	})
}

// BenchmarkMailLocationQueries reproduces the Section 7.2(c) observations.
func BenchmarkMailLocationQueries(b *testing.B) {
	benchFigure(b, "mail-location", func(b *testing.B, fig *metrics.Figure) {
		reportSeries(b, fig, "hit ratio", "mail_generalized_hit", 1)
		reportSeries(b, fig, "hit ratio", "mail_cached_hit", 2)
		reportSeries(b, fig, "hit ratio", "location_hit", 3)
	})
}

// --- Ablations (DESIGN.md Section 5) -----------------------------------------

// BenchmarkContainmentTemplateVsNaive compares a compiled template-pair
// containment decision against the naive per-pair Proposition 1 check.
func BenchmarkContainmentTemplateVsNaive(b *testing.B) {
	f1 := filter.MustParse("(&(objectclass=inetorgperson)(departmentnumber=2406))")
	f2 := filter.MustParse("(&(objectclass=inetorgperson)(departmentnumber=240*))")
	b.Run("compiled", func(b *testing.B) {
		c := containment.NewChecker()
		c.FilterContains(f1, f2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !c.FilterContains(f1, f2) {
				b.Fatal("expected containment")
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ok, err := containment.FilterContainsGeneric(f1, f2)
			if err != nil || !ok {
				b.Fatal("expected containment")
			}
		}
	})
}

// BenchmarkDITIndexVsScan compares index-assisted search with a subtree
// scan over the synthetic directory.
func BenchmarkDITIndexVsScan(b *testing.B) {
	build := func(index bool) *workload.Directory {
		cfg := workload.DefaultDirectoryConfig(3000)
		cfg.PayloadBytes = 64
		if !index {
			cfg.IndexAttrs = nil
		}
		dir, err := workload.BuildDirectory(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return dir
	}
	run := func(b *testing.B, dir *workload.Directory) {
		q := query.MustNew("", query.ScopeSubtree,
			fmt.Sprintf("(serialnumber=%s)", dir.Employees[1234].Serial))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := dir.Master.MatchAll(q); len(got) != 1 {
				b.Fatalf("got %d entries", len(got))
			}
		}
	}
	b.Run("indexed", func(b *testing.B) { run(b, build(true)) })
	b.Run("scan", func(b *testing.B) { run(b, build(false)) })
}

// BenchmarkResyncVsBaselines compares the synchronization traffic of the
// ReSync protocol against the retain-mode, tombstone and full-reload
// baselines for the same update burst.
func BenchmarkResyncVsBaselines(b *testing.B) {
	cfg := workload.DefaultDirectoryConfig(2000)
	cfg.PayloadBytes = 128
	spec := query.MustNew("", query.ScopeSubtree, "(serialnumber=10*)")

	var resyncBytes, retainBytes, tombBytes, reloadBytes float64
	for i := 0; i < b.N; i++ {
		dir, err := workload.BuildDirectory(cfg)
		if err != nil {
			b.Fatal(err)
		}
		eng := resync.NewEngine(dir.Master)
		ts := resync.NewTombstoneServer(dir.Master)

		resA, err := eng.Begin(spec)
		if err != nil {
			b.Fatal(err)
		}
		resB, err := eng.Begin(spec)
		if err != nil {
			b.Fatal(err)
		}
		_, tsSess := ts.Begin(spec)

		upd := workload.NewUpdater(dir, workload.DefaultUpdateConfig())
		if _, err := upd.Apply(800); err != nil {
			b.Fatal(err)
		}

		polled, err := eng.Poll(resA.Cookie)
		if err != nil {
			b.Fatal(err)
		}
		retained, err := eng.PollRetain(resB.Cookie)
		if err != nil {
			b.Fatal(err)
		}
		tombs, ok := ts.Poll(tsSess)
		if !ok {
			b.Fatal("tombstone poll failed")
		}
		reload := resync.FullReload(dir.Master, spec)

		var t1, t2, t3, t4 resync.Traffic
		for _, u := range polled.Updates {
			t1.Add(u)
		}
		for _, u := range retained.Updates {
			t2.Add(u)
		}
		for _, u := range tombs.Updates {
			t3.Add(u)
		}
		for _, u := range reload {
			t4.Add(u)
		}
		resyncBytes, retainBytes = float64(t1.Bytes), float64(t2.Bytes)
		tombBytes, reloadBytes = float64(t3.Bytes), float64(t4.Bytes)
	}
	b.ReportMetric(resyncBytes, "resync_bytes")
	b.ReportMetric(retainBytes, "retain_bytes")
	b.ReportMetric(tombBytes, "tombstone_bytes")
	b.ReportMetric(reloadBytes, "reload_bytes")
}

// BenchmarkResyncConcurrentPolls measures multi-replica synchronization
// throughput on one master. Each iteration applies an update burst and then
// polls every replica session concurrently. The "global-lock" variant
// serializes polls through one shared mutex, emulating the engine-global
// lock this engine used to have; "per-session" uses the engine as-is. The
// custom "parallelism" metric is effective parallelism — summed in-poll
// work time divided by wall time — which is pinned near 1.0 under the
// global lock and exceeds 1 with per-session locking.
func BenchmarkResyncConcurrentPolls(b *testing.B) {
	const replicas = 8
	run := func(b *testing.B, globalLock bool) {
		cfg := workload.DefaultDirectoryConfig(2000)
		cfg.PayloadBytes = 64
		dir, err := workload.BuildDirectory(cfg)
		if err != nil {
			b.Fatal(err)
		}
		eng := resync.NewEngine(dir.Master)
		// Every session's filter matches all employees, so each poll
		// classifies the full update burst — the realistic worst case for
		// lock hold time.
		spec := query.MustNew("", query.ScopeSubtree, "(serialnumber=1*)")
		cookies := make([]string, replicas)
		for i := range cookies {
			res, err := eng.Begin(spec)
			if err != nil {
				b.Fatal(err)
			}
			cookies[i] = res.Cookie
		}
		upd := workload.NewUpdater(dir, workload.DefaultUpdateConfig())

		var gl sync.Mutex
		var workNanos atomic.Int64
		var wallNanos int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// The burst is sized so each poll's classify work comfortably
			// exceeds a scheduler timeslice; overlapping progress then shows
			// up in the metric even on a single CPU.
			if _, err := upd.Apply(2000); err != nil {
				b.Fatal(err)
			}
			// Collect the burst's garbage on the untimed budget so a GC
			// cycle doesn't land inside the timed section on a coin flip
			// (at -benchtime=1x that made the timing bimodal).
			runtime.GC()
			b.StartTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for _, c := range cookies {
				wg.Add(1)
				go func(cookie string) {
					defer wg.Done()
					if globalLock {
						gl.Lock()
						defer gl.Unlock()
					}
					t0 := time.Now()
					if _, err := eng.Poll(cookie); err != nil {
						b.Error(err)
					}
					workNanos.Add(time.Since(t0).Nanoseconds())
				}(c)
			}
			wg.Wait()
			wallNanos += time.Since(start).Nanoseconds()
		}
		if wallNanos > 0 {
			b.ReportMetric(float64(workNanos.Load())/float64(wallNanos), "parallelism")
		}
	}
	b.Run("per-session", func(b *testing.B) { run(b, false) })
	b.Run("global-lock", func(b *testing.B) { run(b, true) })
}

// encodeFanoutBatch mirrors the wire server's streamUpdates encoding work:
// every update becomes a search-entry PDU with an entry-change control.
// With a shared-encoding memo the BER body is built once per content view
// and only the envelope (message ID + per-session cookie) is rebuilt per
// session; without one the whole message is encoded from scratch.
func encodeFanoutBatch(b *testing.B, id int64, res *resync.PollResult) int {
	b.Helper()
	total := 0
	envelope := &proto.SearchEntry{} // supplies only the application tag
	for i, u := range res.Updates {
		u := u
		action := proto.ChangeActionDelete
		switch u.Action {
		case resync.ActionAdd:
			action = proto.ChangeActionAdd
		case resync.ActionModify:
			action = proto.ChangeActionModify
		}
		mkOp := func() *proto.SearchEntry {
			if u.Entry != nil {
				return proto.EntryToWire(u.Entry)
			}
			return &proto.SearchEntry{DN: u.DN.String()}
		}
		cookie := ""
		if i == len(res.Updates)-1 {
			cookie = res.Cookie
		}
		controls := []proto.Control{proto.NewEntryChangeControl(action, cookie, 0)}
		if res.Enc != nil {
			if cookie == "" {
				tail, _, err := res.Enc.GetTail(i, func() ([]byte, error) {
					body, berr := proto.EncodeOpBody(mkOp())
					if berr != nil {
						return nil, berr
					}
					return proto.EncodeMessageTail(envelope, body, controls), nil
				})
				if err != nil {
					b.Fatal(err)
				}
				total += len(proto.EncodeWithTail(id, tail))
				continue
			}
			body, _, err := res.Enc.Get(i, func() ([]byte, error) { return proto.EncodeOpBody(mkOp()) })
			if err != nil {
				b.Fatal(err)
			}
			total += len(proto.EncodeWithOpBody(id, envelope, body, controls))
		} else {
			msg, err := (&proto.Message{ID: id, Op: mkOp(), Controls: controls}).Encode()
			if err != nil {
				b.Fatal(err)
			}
			total += len(msg)
		}
	}
	return total
}

// BenchmarkPersistFanout measures the master-side cost of one update cycle
// fanned out to many same-filter sessions: classify the change interval,
// replay each session's content delta, and BER-encode every update PDU —
// exactly the work the persist broadcaster performs per cycle. "shared" is
// the content-group engine (classification and PDU bodies computed once per
// group and view); "baseline" is the WithoutGrouping ablation doing full
// per-session work. ns/op is the whole cycle, so per-session cost is
// ns/op ÷ sessions; the fanout win is baseline ns/op over shared ns/op at
// equal session counts.
func BenchmarkPersistFanout(b *testing.B) {
	const burst = 200
	for _, sessions := range []int{1, 10, 100, 1000} {
		for _, mode := range []struct {
			name string
			opts []resync.EngineOption
		}{
			{"shared", nil},
			{"baseline", []resync.EngineOption{resync.WithoutGrouping()}},
		} {
			b.Run(fmt.Sprintf("sessions=%d/%s", sessions, mode.name), func(b *testing.B) {
				cfg := workload.DefaultDirectoryConfig(1000)
				cfg.PayloadBytes = 64
				dir, err := workload.BuildDirectory(cfg)
				if err != nil {
					b.Fatal(err)
				}
				eng := resync.NewEngine(dir.Master, mode.opts...)
				spec := query.MustNew("", query.ScopeSubtree, "(serialnumber=1*)")
				cookies := make([]string, sessions)
				for i := range cookies {
					res, err := eng.Begin(spec)
					if err != nil {
						b.Fatal(err)
					}
					cookies[i] = res.Cookie
				}
				upd := workload.NewUpdater(dir, workload.DefaultUpdateConfig())

				encoded := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					if _, err := upd.Apply(burst); err != nil {
						b.Fatal(err)
					}
					runtime.GC() // keep GC debt out of the timed section
					b.StartTimer()
					for s, c := range cookies {
						res, err := eng.Poll(c)
						if err != nil {
							b.Fatal(err)
						}
						cookies[s] = res.Cookie
						encoded += encodeFanoutBatch(b, int64(s), res)
					}
				}
				b.StopTimer()
				snap := eng.Counters().Snapshot()
				if hm := snap.SharedClassifyHits + snap.SharedClassifyMisses; hm > 0 {
					b.ReportMetric(float64(snap.SharedClassifyHits)/float64(hm), "classify_dedup")
				}
				b.ReportMetric(float64(encoded)/float64(b.N), "wire_bytes/cycle")
			})
		}
	}
}

// BenchmarkResumableReload measures the crash-recovery payoff of resumable
// chunked reloads (DESIGN.md §14). A replica whose connection dies partway
// through a full transfer and reconnects with its resume token pays only
// for the remaining chunks; the pre-resumption protocol restarted from byte
// zero. Each iteration drives chunked transfers to 25/50/75% completion,
// "crashes", and resumes; the custom metrics are the bytes still owed from
// each position next to a restart-from-zero reload of the same content.
func BenchmarkResumableReload(b *testing.B) {
	cfg := workload.DefaultDirectoryConfig(2000)
	cfg.PayloadBytes = 128
	dir, err := workload.BuildDirectory(cfg)
	if err != nil {
		b.Fatal(err)
	}
	spec := query.MustNew("", query.ScopeSubtree, "(serialnumber=1*)")
	const chunkSize = 32

	// drain follows a transfer from res to completion, folding its chunks
	// into tr.
	drain := func(eng *resync.Engine, res *resync.PollResult, tr *resync.Traffic) {
		for {
			for _, u := range res.Updates {
				tr.Add(u)
			}
			if res.Resume == nil {
				return
			}
			next, err := eng.ResumeReload(*res.Resume)
			if err != nil {
				b.Fatal(err)
			}
			res = next
		}
	}

	fractions := []float64{0.25, 0.50, 0.75}
	var restartBytes float64
	resumeBytes := make([]float64, len(fractions))
	for i := 0; i < b.N; i++ {
		eng := resync.NewEngine(dir.Master, resync.WithChunkSize(chunkSize))

		// Restart-from-zero: the whole content over again.
		var full resync.Traffic
		res, err := eng.Begin(spec)
		if err != nil {
			b.Fatal(err)
		}
		if res.Resume == nil {
			b.Fatal("reload not chunked; grow the selection or shrink the chunk size")
		}
		drain(eng, res, &full)
		restartBytes = float64(full.Bytes)

		for fi, frac := range fractions {
			res, err := eng.Begin(spec)
			if err != nil {
				b.Fatal(err)
			}
			tok := *res.Resume
			for float64(tok.Chunk) < frac*float64(tok.Chunks) {
				next, err := eng.ResumeReload(tok)
				if err != nil {
					b.Fatal(err)
				}
				if next.Resume == nil {
					b.Fatalf("transfer completed before %.0f%%", frac*100)
				}
				tok = *next.Resume
			}
			// Crash here: the reconnecting consumer presents tok and pays
			// only for the chunks it never received.
			var rem resync.Traffic
			cont, err := eng.ResumeReload(tok)
			if err != nil {
				b.Fatal(err)
			}
			drain(eng, cont, &rem)
			resumeBytes[fi] = float64(rem.Bytes)
		}
	}
	b.ReportMetric(restartBytes, "restart_bytes")
	b.ReportMetric(resumeBytes[0], "resume25_bytes")
	b.ReportMetric(resumeBytes[1], "resume50_bytes")
	b.ReportMetric(resumeBytes[2], "resume75_bytes")
}

// BenchmarkSelectionPolicies compares the paper's periodic benefit/size
// revolution against the EDBT evolution/revolution baseline on a drifting
// workload, reporting achieved hit ratios and stored-set churn.
func BenchmarkSelectionPolicies(b *testing.B) {
	cfg := workload.DefaultDirectoryConfig(2000)
	cfg.PayloadBytes = 64
	var periodicHits, evoHits, evoChurn float64
	for i := 0; i < b.N; i++ {
		dir, err := workload.BuildDirectory(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sizeOf := func(q query.Query) int { return len(dir.Master.MatchAll(q)) }
		rules := []selection.Rule{selection.PrefixRule{Attr: "serialnumber", PrefixLen: workload.SerialPrefixLen}}
		budget := dir.EmployeeCount / 10

		run := func(observe func(query.Query) *selection.Delta, stored func() map[string]bool) float64 {
			tc := workload.DefaultTraceConfig()
			g := workload.NewGenerator(dir, tc)
			hits := 0
			const n = 3000
			for j := 0; j < n; j++ {
				if j == n/2 {
					g.Reshuffle(99)
				}
				tq := g.NextOfKind(workload.KindSerial)
				obs := tq.Query
				obs.Base = dn.Root
				// A hit means some stored filter contains the query; with
				// prefix candidates this is a prefix check on the key set.
				pfx := obs.Filter.SlotValues()[0][:workload.SerialPrefixLen]
				if stored()[pfx] {
					hits++
				}
				observe(obs)
			}
			return float64(hits) / float64(n)
		}

		storedPrefixes := func(qs []query.Query) map[string]bool {
			out := make(map[string]bool, len(qs))
			for _, q := range qs {
				vals := q.Filter.SlotValues()
				if len(vals) > 0 {
					out[vals[0]] = true
				}
			}
			return out
		}

		sel := selection.NewSelector(selection.NewGeneralizer(rules...), sizeOf, budget, 500)
		periodicHits = run(sel.Observe, func() map[string]bool { return storedPrefixes(sel.StoredSet()) })

		evo := selection.NewEvolutionSelector(selection.NewGeneralizer(rules...), sizeOf, budget)
		evoHits = run(evo.Observe, func() map[string]bool { return storedPrefixes(evo.StoredSet()) })
		evoChurn = float64(evo.Evolutions + evo.Revolutions)
	}
	b.ReportMetric(periodicHits, "periodic_hit_ratio")
	b.ReportMetric(evoHits, "evolution_hit_ratio")
	b.ReportMetric(evoChurn, "evolution_churn")
}

// BenchmarkCascadeFanout compares the MASTER-side cost of one update cycle
// delivered to N leaves in a flat topology (every leaf holds a session at
// the master) against a two-tier cascade (√N mid-tier replicas hold the
// master sessions; each mid re-serves √N leaves from its own engine). Only
// master-engine work is on the clock: in the cascade the mid-tier
// application and the leaf polls run on other machines' budgets, so they
// happen off-timer here. master_pdus/cycle counts update PDUs the master
// emits per cycle; leaf_pdus/cycle confirms both topologies deliver the
// same downstream traffic.
func BenchmarkCascadeFanout(b *testing.B) {
	const burst = 200
	spec := query.MustNew("", query.ScopeSubtree, "(serialnumber=1*)")
	for _, leaves := range []int{16, 64, 256} {
		mids := 4
		for mids*mids < leaves {
			mids *= 2
		}
		b.Run(fmt.Sprintf("leaves=%d/flat", leaves), func(b *testing.B) {
			cfg := workload.DefaultDirectoryConfig(1000)
			cfg.PayloadBytes = 64
			dir, err := workload.BuildDirectory(cfg)
			if err != nil {
				b.Fatal(err)
			}
			eng := resync.NewEngine(dir.Master)
			cookies := make([]string, leaves)
			for i := range cookies {
				res, err := eng.Begin(spec)
				if err != nil {
					b.Fatal(err)
				}
				cookies[i] = res.Cookie
			}
			upd := workload.NewUpdater(dir, workload.DefaultUpdateConfig())
			var masterPDUs, leafPDUs int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if _, err := upd.Apply(burst); err != nil {
					b.Fatal(err)
				}
				// Collect on the untimed budget: at -benchtime=1x a GC cycle
				// triggered by the burst's garbage lands inside the single
				// timed poll loop on roughly a coin flip, which made this
				// benchmark bimodal (~2.5x spread between modes).
				runtime.GC()
				b.StartTimer()
				for s, c := range cookies {
					res, err := eng.Poll(c)
					if err != nil {
						b.Fatal(err)
					}
					cookies[s] = res.Cookie
					masterPDUs += len(res.Updates)
				}
			}
			b.StopTimer()
			leafPDUs = masterPDUs // flat: every master PDU goes to a leaf
			b.ReportMetric(float64(masterPDUs)/float64(b.N), "master_pdus/cycle")
			b.ReportMetric(float64(leafPDUs)/float64(b.N), "leaf_pdus/cycle")
		})
		b.Run(fmt.Sprintf("leaves=%d/two-tier", leaves), func(b *testing.B) {
			cfg := workload.DefaultDirectoryConfig(1000)
			cfg.PayloadBytes = 64
			dir, err := workload.BuildDirectory(cfg)
			if err != nil {
				b.Fatal(err)
			}
			eng := resync.NewEngine(dir.Master)
			type mid struct {
				frep   *replica.FilterReplica
				eng    *resync.Engine
				cookie string
				leaves []string
			}
			tiers := make([]*mid, mids)
			perMid := (leaves + mids - 1) / mids
			for i := range tiers {
				frep, err := replica.NewFilterReplica()
				if err != nil {
					b.Fatal(err)
				}
				res, err := eng.Begin(spec)
				if err != nil {
					b.Fatal(err)
				}
				frep.AddStored(spec, res.Cookie)
				if err := frep.ApplySync(spec, res.Updates); err != nil {
					b.Fatal(err)
				}
				m := &mid{frep: frep, eng: resync.NewEngine(frep.Store()), cookie: res.Cookie}
				for l := 0; l < perMid; l++ {
					lres, err := m.eng.Begin(spec)
					if err != nil {
						b.Fatal(err)
					}
					m.leaves = append(m.leaves, lres.Cookie)
				}
				tiers[i] = m
			}
			upd := workload.NewUpdater(dir, workload.DefaultUpdateConfig())
			var masterPDUs, leafPDUs int
			results := make([]*resync.PollResult, mids)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if _, err := upd.Apply(burst); err != nil {
					b.Fatal(err)
				}
				runtime.GC() // keep GC debt out of the timed section (see flat)
				b.StartTimer()
				// Master-side work: one poll per mid-tier, nothing else.
				for mi, m := range tiers {
					res, err := eng.Poll(m.cookie)
					if err != nil {
						b.Fatal(err)
					}
					m.cookie = res.Cookie
					masterPDUs += len(res.Updates)
					results[mi] = res
				}
				b.StopTimer()
				// Downstream propagation happens on the mids' own budgets.
				for mi, m := range tiers {
					if err := m.frep.ApplySync(spec, results[mi].Updates); err != nil {
						b.Fatal(err)
					}
					for l, c := range m.leaves {
						lres, err := m.eng.Poll(c)
						if err != nil {
							b.Fatal(err)
						}
						m.leaves[l] = lres.Cookie
						leafPDUs += len(lres.Updates)
					}
				}
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(float64(masterPDUs)/float64(b.N), "master_pdus/cycle")
			b.ReportMetric(float64(leafPDUs)/float64(b.N), "leaf_pdus/cycle")
		})
	}
}

// BenchmarkAdaptiveReTier measures the adaptive control plane closing a
// traffic shift. Leaves querying a region the tier does not cover are
// rejected and divert to the fallback master, which then carries their full
// synchronization load (periodic rejected probes included). Starting the
// controller widens the tier into its spare budget; the filters-changed
// notification migrates the leaves back within one probe. The timed section
// spans the re-tier — controller start through the last leaf's migration —
// plus the post-shift churn cycles; the reported metrics compare the
// fallback master's PDU load per churn cycle before and after.
func BenchmarkAdaptiveReTier(b *testing.B) {
	const (
		leafCount   = 8
		opsPerCycle = 30
		cycles      = 3
	)
	baseSpec := query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(grp=0)")
	hotSpec := query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(grp=1)")

	var pduBefore, pduAfter float64
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		scfg := sim.SynthConfig{Seed: int64(n + 1), Entries: 60, Groups: 2, Vals: 4}
		st, err := sim.BuildSynthStore(scfg)
		if err != nil {
			b.Fatal(err)
		}
		backend := ldapnet.NewStoreBackend(st)
		masterSrv, err := ldapnet.Serve("127.0.0.1:0", backend)
		if err != nil {
			b.Fatal(err)
		}
		tier, err := cascade.New(cascade.Config{
			Upstream:     masterSrv.Addr(),
			Specs:        []query.Query{baseSpec},
			PollInterval: 2 * time.Millisecond,
			BackoffBase:  time.Millisecond,
			BackoffMax:   20 * time.Millisecond,
			DialTimeout:  2 * time.Second,
			Seed:         scfg.Seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		tier.Start()
		tierSrv, err := ldapnet.Serve("127.0.0.1:0",
			ldapnet.NewCascadeBackend(tier.Replica(), tier, "ldap://"+masterSrv.Addr()))
		if err != nil {
			b.Fatal(err)
		}

		type benchLeaf struct {
			sup  *supervisor.Supervisor
			frep *replica.FilterReplica
		}
		leaves := make([]*benchLeaf, leafCount)
		for i := range leaves {
			frep, err := replica.NewFilterReplica()
			if err != nil {
				b.Fatal(err)
			}
			sup, err := supervisor.New(supervisor.Config{
				Master:             tierSrv.Addr(),
				Fallback:           masterSrv.Addr(),
				RetryUpstreamAfter: 60 * time.Millisecond,
				WatchFilters:       true,
				Spec:               hotSpec,
				Mode:               supervisor.ModePoll,
				PollInterval:       2 * time.Millisecond,
				BackoffBase:        time.Millisecond,
				BackoffMax:         20 * time.Millisecond,
				DialTimeout:        2 * time.Second,
				Seed:               scfg.Seed + int64(i),
			}, frep)
			if err != nil {
				b.Fatal(err)
			}
			sup.Start()
			leaves[i] = &benchLeaf{sup: sup, frep: frep}
		}
		waitUntil := func(what string, cond func() bool) {
			deadline := time.Now().Add(15 * time.Second)
			for !cond() {
				if time.Now().After(deadline) {
					b.Fatalf("timed out waiting for %s", what)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
		converged := func() bool {
			for _, l := range leaves {
				if ok, _ := resync.Converged(st, l.frep.Store(), hotSpec); !ok {
					return false
				}
			}
			return true
		}
		waitUntil("initial leaf sync", converged)

		gen := sim.NewOpGen(scfg)
		churn := func() {
			for c := 0; c < cycles; c++ {
				for i := 0; i < opsPerCycle; i++ {
					_ = sim.ApplyOp(st, gen.Next()) // invalid ops are no-ops
				}
				waitUntil("churn convergence", converged)
			}
		}
		masterPDUs := func() float64 {
			s := backend.Engine.Counters().Snapshot()
			return float64(s.PDUAdds + s.PDUDeletes + s.PDUModifies)
		}

		start := masterPDUs()
		churn()
		pduBefore += (masterPDUs() - start) / cycles

		ctrl, err := tierctl.New(tierctl.Config{Tier: tier, Budget: 2, Interval: 4 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		ctrl.Start()
		waitUntil("leaf migration", func() bool {
			for _, l := range leaves {
				if l.sup.Target() != tierSrv.Addr() {
					return false
				}
			}
			return true
		})
		churn()
		b.StopTimer()

		start = masterPDUs()
		churn()
		pduAfter += (masterPDUs() - start) / cycles

		ctrl.Stop()
		for _, l := range leaves {
			_ = l.sup.Stop()
		}
		_ = tierSrv.Close()
		_ = tier.Stop()
		_ = masterSrv.Close()
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(pduBefore/float64(b.N), "fallback_pdus_before/cycle")
	b.ReportMetric(pduAfter/float64(b.N), "fallback_pdus_after/cycle")
}
