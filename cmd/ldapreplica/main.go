// Command ldapreplica runs a filter-based replica against a master served
// by ldapmaster. Each configured filter is owned by a supervisor that
// drives the full ReSync lifecycle — begin, steady-state poll or persist
// stream, reconnect with capped backoff, resume by cookie — while the
// replica serves contained queries on its own LDAP port (misses are
// answered with a referral to the master).
//
// With -state, each filter's cookie and content are checkpointed durably;
// a restarted replica reloads its content from disk and resumes the master
// session with a poll instead of a full content transfer.
//
// Usage:
//
//	ldapreplica -master 127.0.0.1:3890 -addr 127.0.0.1:3891 \
//	    -filter '(serialnumber=1004*)' -filter '(location=*)' \
//	    -mode persist -state /var/lib/filterdir-replica
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"filterdir"
	"filterdir/internal/ldapnet"
	"filterdir/internal/query"
	"filterdir/internal/supervisor"
)

type filterList []string

func (f *filterList) String() string { return strings.Join(*f, ",") }

func (f *filterList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	master := flag.String("master", "127.0.0.1:3890", "master server address")
	addr := flag.String("addr", "127.0.0.1:3891", "replica listen address")
	mode := flag.String("mode", "poll", `steady-state sync mode: "poll" or "persist"`)
	stateDir := flag.String("state", "", "state directory for durable cookie+content checkpoints (empty disables)")
	interval := flag.Duration("interval", 5*time.Second, "poll interval")
	backoffBase := flag.Duration("backoff", 50*time.Millisecond, "reconnect backoff base")
	backoffMax := flag.Duration("backoff-max", 5*time.Second, "reconnect backoff cap")
	idleTimeout := flag.Duration("idle-timeout", 0, "persist-stream idle timeout (0 = none)")
	cacheCap := flag.Int("cache", 64, "recent user-query cache capacity")
	statusEvery := flag.Duration("status-every", time.Minute, "supervision-counter status report interval (0 disables)")
	var filters filterList
	flag.Var(&filters, "filter", "replicated filter (repeatable)")
	flag.Parse()
	if len(filters) == 0 {
		filters = filterList{"(objectclass=location)"}
	}

	var m supervisor.Mode
	switch *mode {
	case "poll":
		m = supervisor.ModePoll
	case "persist":
		m = supervisor.ModePersist
	default:
		fmt.Fprintf(os.Stderr, "ldapreplica: unknown -mode %q\n", *mode)
		os.Exit(2)
	}

	err := run(*master, *addr, m, *stateDir, *interval, *backoffBase, *backoffMax,
		*idleTimeout, *cacheCap, *statusEvery, filters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldapreplica:", err)
		os.Exit(1)
	}
}

func run(masterAddr, addr string, mode supervisor.Mode, stateDir string,
	interval, backoffBase, backoffMax, idleTimeout time.Duration,
	cacheCap int, statusEvery time.Duration, filters filterList) error {
	rep, err := filterdir.NewFilterReplica(
		filterdir.WithCacheCapacity(cacheCap),
		filterdir.WithContentIndexes("serialnumber", "mail", "dept", "location", "uid"))
	if err != nil {
		return err
	}

	// One supervisor per filter, all applying into the shared replica; each
	// owns its own state subdirectory so checkpoints never interleave.
	sups := make([]*supervisor.Supervisor, 0, len(filters))
	for i, f := range filters {
		spec, err := query.New("", filterdir.ScopeSubtree, f)
		if err != nil {
			return fmt.Errorf("filter %q: %w", f, err)
		}
		cfg := supervisor.Config{
			Master:       masterAddr,
			Spec:         spec,
			Mode:         mode,
			PollInterval: interval,
			IdleTimeout:  idleTimeout,
			BackoffBase:  backoffBase,
			BackoffMax:   backoffMax,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "ldapreplica: "+format+"\n", args...)
			},
		}
		if stateDir != "" {
			cfg.StateDir = filepath.Join(stateDir, fmt.Sprintf("filter%02d", i))
			if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
				return err
			}
		}
		sup, err := supervisor.New(cfg, rep)
		if err != nil {
			return fmt.Errorf("filter %q: %w", f, err)
		}
		sups = append(sups, sup)
	}
	for i, sup := range sups {
		sup.Start()
		fmt.Printf("ldapreplica: supervising %q\n", filters[i])
	}

	backend := ldapnet.NewReplicaBackend(rep, "ldap://"+masterAddr)
	srv, err := ldapnet.Serve(addr, backend)
	if err != nil {
		return err
	}
	fmt.Printf("ldapreplica: serving on %s; %d filters in %s mode\n",
		srv.Addr(), len(sups), map[supervisor.Mode]string{
			supervisor.ModePoll: "poll", supervisor.ModePersist: "persist"}[mode])

	printStatus := func() {
		m := rep.Metrics()
		fmt.Printf("ldapreplica: %d entries; hit ratio %.2f (%d queries)\n",
			rep.EntryCount(), m.HitRatio(), m.Queries)
		for i, sup := range sups {
			fmt.Printf("ldapreplica: %q [%s] %s\n", filters[i], sup.State(), sup.Counters().Snapshot())
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var statusC <-chan time.Time
	if statusEvery > 0 {
		statusTicker := time.NewTicker(statusEvery)
		defer statusTicker.Stop()
		statusC = statusTicker.C
	}
	for {
		select {
		case <-statusC:
			printStatus()
		case <-sig:
			// Graceful shutdown: stop serving queries, then stop each
			// supervisor (writing its final checkpoint) and report the
			// final counters.
			fmt.Println("ldapreplica: shutting down")
			closeErr := srv.Close()
			for i, sup := range sups {
				if err := sup.Stop(); err != nil {
					fmt.Fprintf(os.Stderr, "ldapreplica: stop %q: %v\n", filters[i], err)
				}
			}
			printStatus()
			return closeErr
		}
	}
}
