// Command ldapreplica runs a filter-based replica against a master served
// by ldapmaster: it registers the configured filters, synchronizes their
// content over the wire with the ReSync protocol, serves contained queries
// on its own LDAP port (misses are answered with a referral to the
// master), and keeps polling.
//
// Usage:
//
//	ldapreplica -master 127.0.0.1:3890 -addr 127.0.0.1:3891 \
//	    -filter '(serialnumber=1004*)' -filter '(location=*)' \
//	    -interval 5s
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"filterdir"
	"filterdir/internal/ldapnet"
	"filterdir/internal/query"
)

type filterList []string

func (f *filterList) String() string { return strings.Join(*f, ",") }

func (f *filterList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	master := flag.String("master", "127.0.0.1:3890", "master server address")
	addr := flag.String("addr", "127.0.0.1:3891", "replica listen address")
	interval := flag.Duration("interval", 5*time.Second, "poll interval")
	cacheCap := flag.Int("cache", 64, "recent user-query cache capacity")
	var filters filterList
	flag.Var(&filters, "filter", "replicated filter (repeatable)")
	flag.Parse()
	if len(filters) == 0 {
		filters = filterList{"(objectclass=location)"}
	}

	if err := run(*master, *addr, *interval, *cacheCap, filters); err != nil {
		fmt.Fprintln(os.Stderr, "ldapreplica:", err)
		os.Exit(1)
	}
}

func run(masterAddr, addr string, interval time.Duration, cacheCap int, filters filterList) error {
	client, err := filterdir.DialDirectory(masterAddr)
	if err != nil {
		return err
	}
	defer client.Close()

	rep, err := filterdir.NewFilterReplica(
		filterdir.WithCacheCapacity(cacheCap),
		filterdir.WithContentIndexes("serialnumber", "mail", "dept", "location", "uid"))
	if err != nil {
		return err
	}
	// Static filter set: the adaptive loop runs without a selector, keeping
	// only the session and content management.
	ar := filterdir.NewAdaptiveReplica(rep, nil, filterdir.ClientSupplier(client))
	for _, f := range filters {
		spec, err := query.New("", filterdir.ScopeSubtree, f)
		if err != nil {
			return fmt.Errorf("filter %q: %w", f, err)
		}
		if err := ar.AddFilter(spec); err != nil {
			return fmt.Errorf("initial sync of %q: %w", f, err)
		}
		fmt.Printf("ldapreplica: %q replicated\n", f)
	}

	backend := ldapnet.NewReplicaBackend(rep, "ldap://"+masterAddr)
	srv, err := ldapnet.Serve(addr, backend)
	if err != nil {
		return err
	}
	fmt.Printf("ldapreplica: serving %d entries on %s, polling every %s\n",
		rep.EntryCount(), srv.Addr(), interval)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			before := ar.ResyncTraffic.Updates()
			if err := ar.SyncAll(); err != nil {
				fmt.Fprintf(os.Stderr, "ldapreplica: sync: %v\n", err)
				continue
			}
			if applied := ar.ResyncTraffic.Updates() - before; applied > 0 {
				m := rep.Metrics()
				fmt.Printf("ldapreplica: %d updates applied; %d entries; hit ratio %.2f (%d queries)\n",
					applied, rep.EntryCount(), m.HitRatio(), m.Queries)
			}
		case <-sig:
			fmt.Println("ldapreplica: shutting down")
			if err := ar.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "ldapreplica: end sessions: %v\n", err)
			}
			return srv.Close()
		}
	}
}
