// Command ldapreplica runs a filter-based replica against a master served
// by ldapmaster. Each configured filter is owned by a supervisor that
// drives the full ReSync lifecycle — begin, steady-state poll or persist
// stream, reconnect with capped backoff, resume by cookie — while the
// replica serves contained queries on its own LDAP port (misses are
// answered with a referral to the master).
//
// With -state, each filter's cookie and content are checkpointed durably;
// a restarted replica reloads its content from disk and resumes the master
// session with a poll instead of a full content transfer.
//
// Cascaded topologies: -upstream points the replica at a mid-tier replica
// instead of the master (-master stays the fallback the supervisors divert
// to when the upstream rejects their spec or forgets their session), and
// -serve turns this replica into a mid-tier itself — it runs its own sync
// engine over the replicated content and serves ReSync to downstream
// replicas, admitting only specs provably contained in its filters.
//
// With -serve -adaptive the mid-tier re-tiers itself under shifting demand:
// admission rejections feed a filter selector that widens the tier into
// spare -tier-budget (pulling the widened content from upstream and bumping
// the filter generation so diverted leaves running -watch-filters migrate
// back), and narrows it again when adopted filters decay.
//
// Usage:
//
//	ldapreplica -master 127.0.0.1:3890 -addr 127.0.0.1:3891 \
//	    -filter '(serialnumber=1004*)' -filter '(location=*)' \
//	    -mode persist -state /var/lib/filterdir-replica
//
//	# mid-tier: pulls (location=*) from the master, serves it downstream
//	ldapreplica -master 127.0.0.1:3890 -addr 127.0.0.1:3892 -serve \
//	    -filter '(location=*)'
//
//	# leaf attached to the mid-tier, falling back to the master
//	ldapreplica -master 127.0.0.1:3890 -upstream 127.0.0.1:3892 \
//	    -addr 127.0.0.1:3893 -filter '(location=site001)'
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"filterdir"
	"filterdir/internal/cascade"
	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/edgewrite"
	"filterdir/internal/entry"
	"filterdir/internal/ldapnet"
	"filterdir/internal/metrics"
	"filterdir/internal/persist"
	"filterdir/internal/query"
	"filterdir/internal/supervisor"
	"filterdir/internal/tierctl"
)

type filterList []string

func (f *filterList) String() string { return strings.Join(*f, ",") }

func (f *filterList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// options carries the parsed command line.
type options struct {
	master, upstream, addr string
	serve                  bool
	mode                   supervisor.Mode
	stateDir               string
	interval               time.Duration
	backoffBase            time.Duration
	backoffMax             time.Duration
	idleTimeout            time.Duration
	retryUpstream          time.Duration
	journalLimit           int
	reloadChunk            int
	keepSyncPoints         int
	journalRetention       persist.JournalRetention
	checkpointEvery        time.Duration
	depth                  int
	cacheCap               int
	statusEvery            time.Duration
	edgeWrites             bool
	adaptive               bool
	tierBudget             int
	watchFilters           bool
	filters                filterList
}

func main() {
	var o options
	flag.StringVar(&o.master, "master", "127.0.0.1:3890", "root master server address (the fallback when -upstream is set)")
	flag.StringVar(&o.upstream, "upstream", "", "upstream to synchronize from when it is not the master (e.g. a mid-tier replica)")
	flag.StringVar(&o.addr, "addr", "127.0.0.1:3891", "replica listen address")
	flag.BoolVar(&o.serve, "serve", false, "serve ReSync to downstream replicas (cascade mid-tier mode)")
	mode := flag.String("mode", "poll", `steady-state sync mode: "poll" or "persist"`)
	flag.StringVar(&o.stateDir, "state", "", "state directory for durable cookie+content checkpoints (empty disables)")
	flag.DurationVar(&o.interval, "interval", 5*time.Second, "poll interval")
	flag.DurationVar(&o.backoffBase, "backoff", 50*time.Millisecond, "reconnect backoff base")
	flag.DurationVar(&o.backoffMax, "backoff-max", 5*time.Second, "reconnect backoff cap")
	flag.DurationVar(&o.idleTimeout, "idle-timeout", 0, "persist-stream idle timeout (0 = none)")
	flag.DurationVar(&o.retryUpstream, "retry-upstream", time.Minute, "how long a diverted supervisor stays on the fallback master before re-probing -upstream")
	flag.IntVar(&o.journalLimit, "journal-limit", 4096, "mid-tier store journal bound (with -serve): how far a downstream session may lag before a full reload")
	flag.IntVar(&o.reloadChunk, "reload-chunk", 0, "serve downstream full reloads in resumable chunks of n entries (with -serve; 0 = monolithic)")
	flag.IntVar(&o.keepSyncPoints, "keep-sync-points", 0, "downstream per-session resume history: keep the last n sync points (with -serve; 0 = default 64)")
	journalRetention := flag.String("journal-retention", "", `durable journal retention policy (with -serve and -state), e.g. "bytes=64m,age=1h" (empty = fixed append cadence)`)
	flag.DurationVar(&o.checkpointEvery, "checkpoint-every", 2*time.Second, "mid-tier durability cadence (with -serve and -state)")
	flag.IntVar(&o.depth, "depth", 1, "tier depth below the master (with -serve; reporting only)")
	flag.IntVar(&o.cacheCap, "cache", 64, "recent user-query cache capacity")
	flag.DurationVar(&o.statusEvery, "status-every", time.Minute, "supervision-counter status report interval (0 disables)")
	flag.BoolVar(&o.edgeWrites, "edge-writes", false, "accept LDAP writes here: journal to a per-replica WAL, forward upstream for commit, overlay locally until the CSN echoes back")
	flag.BoolVar(&o.adaptive, "adaptive", false, "run the demand-driven control plane over the tier's filter set: widen on admission rejections, narrow on decay (with -serve)")
	flag.IntVar(&o.tierBudget, "tier-budget", 0, "adaptive filter-set budget in specs, base filters included (with -adaptive; 0 = number of -filter flags + 2)")
	flag.BoolVar(&o.watchFilters, "watch-filters", false, "while diverted to the fallback master, long-poll the upstream for filter-set changes and re-probe the moment it widens")
	flag.Var(&o.filters, "filter", "replicated filter (repeatable)")
	flag.Parse()
	if len(o.filters) == 0 {
		o.filters = filterList{"(objectclass=location)"}
	}

	retention, rerr := persist.ParseJournalRetention(*journalRetention)
	if rerr != nil {
		fmt.Fprintln(os.Stderr, "ldapreplica:", rerr)
		os.Exit(2)
	}
	o.journalRetention = retention

	switch *mode {
	case "poll":
		o.mode = supervisor.ModePoll
	case "persist":
		o.mode = supervisor.ModePersist
	default:
		fmt.Fprintf(os.Stderr, "ldapreplica: unknown -mode %q\n", *mode)
		os.Exit(2)
	}

	var err error
	if o.serve {
		err = runTier(o)
	} else {
		err = runLeaf(o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldapreplica:", err)
		os.Exit(1)
	}
}

// specs parses the -filter list into subtree queries.
func specs(filters filterList) ([]query.Query, error) {
	out := make([]query.Query, 0, len(filters))
	for _, f := range filters {
		spec, err := query.New("", filterdir.ScopeSubtree, f)
		if err != nil {
			return nil, fmt.Errorf("filter %q: %w", f, err)
		}
		out = append(out, spec)
	}
	return out, nil
}

// upstreamOf resolves which address the supervisors synchronize from and
// which (if any) they fall back to.
func upstreamOf(o options) (upstream, fallback string) {
	if o.upstream != "" && o.upstream != o.master {
		return o.upstream, o.master
	}
	return o.master, ""
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ldapreplica: "+format+"\n", args...)
}

// openEdgeWriter opens the WAL-backed edge writer over an upstream
// forwarder. The WAL lives under the state directory when one is
// configured — surviving restarts — and in a throwaway temp directory
// otherwise, which still covers the accept→forward window within one run.
func openEdgeWriter(o options, fwd edgewrite.Forwarder,
	admit func(dit.Change) error, lookup func(dn.DN) (*entry.Entry, bool),
	counters *metrics.WriteCounters) (*edgewrite.Writer, error) {

	dir := ""
	if o.stateDir != "" {
		dir = filepath.Join(o.stateDir, "edgewrite")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	} else {
		tmp, err := os.MkdirTemp("", "filterdir-edgewrite-")
		if err != nil {
			return nil, err
		}
		dir = tmp
	}
	w, err := edgewrite.Open(edgewrite.Config{
		Dir:      dir,
		Forward:  fwd,
		Admit:    admit,
		Lookup:   lookup,
		Counters: counters,
		Logf:     logf,
	})
	if err != nil {
		return nil, err
	}
	if w.RecoveredTorn() {
		logf("edge WAL %s: dropped a torn tail during recovery", dir)
	}
	if n := w.Pending(); n > 0 {
		logf("edge WAL %s: recovered %d pending op(s) for replay", dir, n)
	}
	fmt.Printf("ldapreplica: accepting edge writes (replica id %s, WAL %s)\n", w.ReplicaID(), dir)
	return w, nil
}

// serveLoop runs the status/shutdown select shared by both modes.
func serveLoop(srv *ldapnet.Server, statusEvery time.Duration, printStatus func(), shutdown func()) error {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var statusC <-chan time.Time
	if statusEvery > 0 {
		statusTicker := time.NewTicker(statusEvery)
		defer statusTicker.Stop()
		statusC = statusTicker.C
	}
	for {
		select {
		case <-statusC:
			printStatus()
		case <-sig:
			// Graceful shutdown: stop serving queries, then stop the
			// synchronization machinery and report the final counters.
			fmt.Println("ldapreplica: shutting down")
			closeErr := srv.Close()
			shutdown()
			printStatus()
			return closeErr
		}
	}
}

// runLeaf is the classic consumer replica: one supervisor per filter, no
// downstream service.
func runLeaf(o options) error {
	rep, err := filterdir.NewFilterReplica(
		filterdir.WithCacheCapacity(o.cacheCap),
		filterdir.WithContentIndexes("serialnumber", "mail", "dept", "location", "uid"))
	if err != nil {
		return err
	}
	qs, err := specs(o.filters)
	if err != nil {
		return err
	}
	upstream, fallback := upstreamOf(o)

	// The edge writer must exist before the supervisors so each filter's
	// config can report its applied-CSN watermark (retirement consumes the
	// minimum across all filters).
	var edge *edgewrite.Writer
	var fwd *ldapnet.EdgeForwarder
	writes := &metrics.WriteCounters{}
	if o.edgeWrites {
		fwd = ldapnet.NewEdgeForwarder(upstream)
		fwd.FallbackAddr = fallback
		edge, err = openEdgeWriter(o, fwd,
			edgewrite.Admitter(qs, rep.Store().Get), rep.Store().Get, writes)
		if err != nil {
			fwd.Close()
			return err
		}
	}

	// One supervisor per filter, all applying into the shared replica; each
	// owns its own state subdirectory so checkpoints never interleave.
	sups := make([]*supervisor.Supervisor, 0, len(qs))
	for i, spec := range qs {
		cfg := supervisor.Config{
			Master:             upstream,
			Fallback:           fallback,
			RetryUpstreamAfter: o.retryUpstream,
			Spec:               spec,
			Mode:               o.mode,
			PollInterval:       o.interval,
			IdleTimeout:        o.idleTimeout,
			BackoffBase:        o.backoffBase,
			BackoffMax:         o.backoffMax,
			WatchFilters:       o.watchFilters,
			Logf:               logf,
		}
		if o.stateDir != "" {
			cfg.StateDir = filepath.Join(o.stateDir, fmt.Sprintf("filter%02d", i))
			if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
				return err
			}
		}
		if edge != nil {
			key := spec.Key()
			edge.RegisterSource(key)
			cfg.OnWatermark = func(csn uint64) { edge.SetWatermark(key, csn) }
		}
		sup, err := supervisor.New(cfg, rep)
		if err != nil {
			return fmt.Errorf("filter %q: %w", o.filters[i], err)
		}
		sups = append(sups, sup)
	}
	for i, sup := range sups {
		sup.Start()
		fmt.Printf("ldapreplica: supervising %q against %s\n", o.filters[i], upstream)
	}

	backend := ldapnet.NewReplicaBackend(rep, "ldap://"+o.master)
	if edge != nil {
		rep.SetReadOverlay(edge.Overlay)
		backend.Edge = edge
		edge.Start()
	}
	srv, err := ldapnet.Serve(o.addr, backend)
	if err != nil {
		return err
	}
	fmt.Printf("ldapreplica: serving on %s; %d filters in %s mode\n",
		srv.Addr(), len(sups), map[supervisor.Mode]string{
			supervisor.ModePoll: "poll", supervisor.ModePersist: "persist"}[o.mode])

	printStatus := func() {
		m := rep.Metrics()
		fmt.Printf("ldapreplica: %d entries; hit ratio %.2f (%d queries)\n",
			rep.EntryCount(), m.HitRatio(), m.Queries)
		if edge != nil {
			fmt.Printf("ldapreplica: %s\n", writes.Snapshot())
		}
		for i, sup := range sups {
			fmt.Printf("ldapreplica: %q [%s→%s] %s\n", o.filters[i], sup.State(), sup.Target(), sup.Counters().Snapshot())
		}
	}
	return serveLoop(srv, o.statusEvery, printStatus, func() {
		if edge != nil {
			edge.Close()
			fwd.Close()
		}
		for i, sup := range sups {
			if err := sup.Stop(); err != nil {
				fmt.Fprintf(os.Stderr, "ldapreplica: stop %q: %v\n", o.filters[i], err)
			}
		}
	})
}

// runTier is the cascade mid-tier: the replica both consumes its filters
// from upstream and serves ReSync to downstream replicas.
func runTier(o options) error {
	qs, err := specs(o.filters)
	if err != nil {
		return err
	}
	upstream, fallback := upstreamOf(o)
	stateDir := o.stateDir
	if stateDir != "" {
		stateDir = filepath.Join(stateDir, "cascade")
		if err := os.MkdirAll(stateDir, 0o755); err != nil {
			return err
		}
	}
	tier, err := cascade.New(cascade.Config{
		Upstream:           upstream,
		Fallback:           fallback,
		RetryUpstreamAfter: o.retryUpstream,
		Specs:              qs,
		Depth:              o.depth,
		Mode:               o.mode,
		StateDir:           stateDir,
		CheckpointEvery:    o.checkpointEvery,
		JournalLimit:       o.journalLimit,
		ReloadChunk:        o.reloadChunk,
		KeepSyncPoints:     o.keepSyncPoints,
		JournalRetention:   o.journalRetention,
		ContentIndexes:     []string{"serialnumber", "mail", "dept", "location", "uid"},
		PollInterval:       o.interval,
		IdleTimeout:        o.idleTimeout,
		BackoffBase:        o.backoffBase,
		BackoffMax:         o.backoffMax,
		WatchFilters:       o.watchFilters,
		Logf:               logf,
	})
	if err != nil {
		return err
	}

	var ctrl *tierctl.Controller
	if o.adaptive {
		budget := o.tierBudget
		if budget <= 0 {
			budget = len(qs) + 2
		}
		ctrl, err = tierctl.New(tierctl.Config{Tier: tier, Budget: budget, Logf: logf})
		if err != nil {
			return err
		}
	}

	// A mid-tier always relays downstream edge-write forwards one hop
	// closer to the master; with -edge-writes it also accepts writes from
	// its own LDAP clients through the same forwarder.
	fwd := ldapnet.NewEdgeForwarder(upstream)
	fwd.FallbackAddr = fallback
	var edge *edgewrite.Writer
	writes := &metrics.WriteCounters{}
	if o.edgeWrites {
		edge, err = openEdgeWriter(o, fwd, tier.AdmitWrite, tier.Replica().Store().Get, writes)
		if err != nil {
			fwd.Close()
			return err
		}
		tier.AttachEdgeWriter(edge)
		tier.Replica().SetReadOverlay(edge.Overlay)
	}

	tier.Start()
	for i := range qs {
		fmt.Printf("ldapreplica: supervising %q against %s (serving downstream)\n", o.filters[i], upstream)
	}
	if ctrl != nil {
		ctrl.Start()
		fmt.Printf("ldapreplica: adaptive control plane armed (budget %d specs)\n",
			func() int {
				if o.tierBudget > 0 {
					return o.tierBudget
				}
				return len(qs) + 2
			}())
	}

	backend := ldapnet.NewCascadeBackend(tier.Replica(), tier, "ldap://"+o.master)
	backend.Upstream = fwd
	if edge != nil {
		backend.Edge = edge
		edge.Start()
	}
	srv, err := ldapnet.Serve(o.addr, backend)
	if err != nil {
		return err
	}
	fmt.Printf("ldapreplica: mid-tier serving on %s; %d filters in %s mode, depth %d\n",
		srv.Addr(), len(qs), map[supervisor.Mode]string{
			supervisor.ModePoll: "poll", supervisor.ModePersist: "persist"}[o.mode], o.depth)

	printStatus := func() {
		rep := tier.Replica()
		m := rep.Metrics()
		fmt.Printf("ldapreplica: %d entries; hit ratio %.2f (%d queries)\n",
			rep.EntryCount(), m.HitRatio(), m.Queries)
		fmt.Printf("ldapreplica: %s\n", tier.Counters().Snapshot())
		fmt.Printf("ldapreplica: downstream %s\n", tier.SyncCounters().Snapshot())
		if edge != nil {
			fmt.Printf("ldapreplica: %s\n", writes.Snapshot())
		}
		if ctrl != nil {
			fmt.Printf("ldapreplica: %s\n", ctrl.Counters().Snapshot())
		}
		// The adaptive control plane adds and removes links at runtime, so
		// labels come from the tier's live spec set, not the -filter flags.
		liveSpecs := tier.Specs()
		for i, sup := range tier.Supervisors() {
			label := "?"
			if i < len(liveSpecs) {
				label = liveSpecs[i].FilterString()
			}
			fmt.Printf("ldapreplica: %q [%s→%s] %s\n", label, sup.State(), sup.Target(), sup.Counters().Snapshot())
		}
	}
	return serveLoop(srv, o.statusEvery, printStatus, func() {
		if ctrl != nil {
			ctrl.Stop()
		}
		if edge != nil {
			edge.Close()
		}
		fwd.Close()
		if err := tier.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "ldapreplica: stop tier: %v\n", err)
		}
	})
}
