// Command ldapmaster serves a directory over the LDAP wire protocol. The
// directory is loaded from a durable data directory (snapshot + journal),
// from LDIF, or generated synthetically; with -data, updates are journaled
// to disk and a checkpoint is written on shutdown.
//
// With -chaos, every accepted connection is wrapped in the fault-injection
// layer, so replica recovery can be exercised against a real server:
//
//	ldapmaster -chaos 'drop-every=40,latency=1ms..5ms,seed=7'
//
// Usage:
//
//	ldapmaster -addr 127.0.0.1:3890 -employees 5000
//	ldapmaster -addr 127.0.0.1:3890 -ldif dir.ldif -suffix o=xyz
//	ldapmaster -addr 127.0.0.1:3890 -data /var/lib/filterdir
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"filterdir"
	"filterdir/internal/chaos"
	"filterdir/internal/ldapnet"
	"filterdir/internal/ldif"
	"filterdir/internal/persist"
	"filterdir/internal/resync"
	"filterdir/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:3890", "listen address")
	ldifPath := flag.String("ldif", "", "LDIF file to load (otherwise synthetic)")
	dataDir := flag.String("data", "", "durable data directory (snapshot + journal)")
	journalEvery := flag.Duration("journal-every", 5*time.Second, "journal flush interval with -data")
	suffix := flag.String("suffix", "o=xyz", "naming-context suffix")
	employees := flag.Int("employees", 5000, "synthetic directory population")
	seed := flag.Int64("seed", 1, "deterministic seed for the synthetic directory")
	statusEvery := flag.Duration("status-every", time.Minute, "sync-counter status report interval (0 disables)")
	journalLimit := flag.Int("journal-limit", 0, "bound the in-memory update journal to the most recent n changes (0 = unbounded)")
	shards := flag.Int("shards", 0, "DIT store shard count (0 = GOMAXPROCS, or the FILTERDIR_SHARDS environment override)")
	chaosSpec := flag.String("chaos", "", `fault-injection plan for accepted connections, e.g. "drop-every=40,latency=1ms..5ms,seed=7" (empty disables)`)
	reloadChunk := flag.Int("reload-chunk", 0, "serve full reloads in resumable chunks of n entries (0 = monolithic reloads)")
	keepSyncPoints := flag.Int("keep-sync-points", 0, "per-session resume history: keep the last n sync points (0 = default 64)")
	journalRetention := flag.String("journal-retention", "", `on-disk journal retention policy with -data, e.g. "bytes=64m,age=1h" (empty = checkpoint only on shutdown)`)
	flag.Parse()

	plan, err := chaos.ParsePlan(*chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldapmaster:", err)
		os.Exit(2)
	}
	retention, err := persist.ParseJournalRetention(*journalRetention)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldapmaster:", err)
		os.Exit(2)
	}
	if err := run(*addr, *ldifPath, *dataDir, *journalEvery, *suffix, *employees, *seed, *statusEvery, *journalLimit, *shards, plan, *reloadChunk, *keepSyncPoints, retention); err != nil {
		fmt.Fprintln(os.Stderr, "ldapmaster:", err)
		os.Exit(1)
	}
}

// storeOptions assembles the directory options common to every load path.
func storeOptions(journalLimit, shards int) []filterdir.DirectoryOption {
	opts := []filterdir.DirectoryOption{
		filterdir.WithIndexes("serialnumber", "mail", "dept", "location", "uid"),
	}
	if journalLimit > 0 {
		opts = append(opts, filterdir.WithJournalLimit(journalLimit))
	}
	if shards > 0 {
		opts = append(opts, filterdir.WithShards(shards))
	}
	return opts
}

// printStatus reports the sync counters, store state, fan-out (live
// downstream sessions and connections — in a cascaded topology these count
// mid-tiers, not leaves) and injected-fault totals on stdout.
func printStatus(srv *filterdir.Server, backend *ldapnet.StoreBackend, store *filterdir.Directory, inj *chaos.Injector) {
	c := srv.SyncCounters()
	if c == nil {
		return
	}
	fmt.Printf("ldapmaster: entries=%d journal-trimmed=%d sessions=%d conns=%d | %s\n",
		store.Len(), store.JournalTrimmed(), backend.Engine.Sessions(), srv.ActiveConns(), c.Snapshot())
	fmt.Printf("ldapmaster: shards=%d | %s\n", store.Shards(), store.Counters().Snapshot())
	if w := backend.Writes.Snapshot(); w.Applied > 0 || w.Duplicates > 0 {
		fmt.Printf("ldapmaster: edge writes applied=%d duplicates=%d\n", w.Applied, w.Duplicates)
	}
	if inj != nil {
		fmt.Printf("ldapmaster: %s\n", inj.Stats())
	}
}

func run(addr, ldifPath, dataDir string, journalEvery time.Duration, suffix string, employees int, seed int64, statusEvery time.Duration, journalLimit, shards int, plan chaos.Plan, reloadChunk, keepSyncPoints int, retention persist.JournalRetention) error {
	var store *filterdir.Directory
	var home *persist.Dir
	if dataDir != "" {
		home = &persist.Dir{Path: dataDir}
		st, err := home.Open([]string{suffix}, storeOptions(journalLimit, shards)...)
		if err != nil {
			return err
		}
		store = st
		if store.Len() == 0 && ldifPath == "" {
			// First run: seed with the synthetic directory and checkpoint.
			cfg := workload.DefaultDirectoryConfig(employees)
			cfg.Seed = seed
			cfg.JournalLimit = journalLimit
			cfg.Shards = shards
			dir, err := workload.BuildDirectory(cfg)
			if err != nil {
				return err
			}
			store = dir.Master
			if err := home.Checkpoint(store); err != nil {
				return err
			}
		}
	} else if ldifPath != "" {
		st, err := filterdir.NewDirectory([]string{suffix}, storeOptions(journalLimit, shards)...)
		if err != nil {
			return err
		}
		f, err := os.Open(ldifPath)
		if err != nil {
			return err
		}
		defer f.Close()
		entries, err := ldif.Read(f)
		if err != nil {
			return err
		}
		sort.Slice(entries, func(i, j int) bool {
			return entries[i].DN().Depth() < entries[j].DN().Depth()
		})
		if err := st.Load(entries); err != nil {
			return err
		}
		store = st
	} else {
		cfg := workload.DefaultDirectoryConfig(employees)
		cfg.Seed = seed
		cfg.JournalLimit = journalLimit
		cfg.Shards = shards
		dir, err := workload.BuildDirectory(cfg)
		if err != nil {
			return err
		}
		store = dir.Master
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	var inj *chaos.Injector
	if plan.Active() {
		inj = chaos.New(plan)
		ln = inj.Listener(ln)
		fmt.Println("ldapmaster: chaos plan armed; injected faults count against every connection")
	}
	var engineOpts []resync.EngineOption
	if reloadChunk > 0 {
		engineOpts = append(engineOpts, resync.WithChunkSize(reloadChunk))
	}
	if keepSyncPoints > 0 {
		engineOpts = append(engineOpts, resync.WithSyncPointRetention(keepSyncPoints))
	}
	backend := ldapnet.NewStoreBackend(store, engineOpts...)
	srv := ldapnet.ServeListener(ln, backend)
	fmt.Printf("ldapmaster: serving %d entries on %s (suffix %s)\n", store.Len(), srv.Addr(), suffix)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	// Periodic sync-counter status reports.
	var statusC <-chan time.Time
	if statusEvery > 0 {
		statusTicker := time.NewTicker(statusEvery)
		defer statusTicker.Stop()
		statusC = statusTicker.C
	}

	// shutdown stops accepting and drops live connections first, so no
	// update can land mid-checkpoint, then flushes durable state and prints
	// the final counter snapshot.
	shutdown := func() error {
		closeErr := srv.Close()
		if home != nil {
			if err := home.Checkpoint(store); err != nil {
				fmt.Fprintf(os.Stderr, "ldapmaster: checkpoint: %v\n", err)
			}
		}
		printStatus(srv, backend, store, inj)
		return closeErr
	}

	if home == nil {
		for {
			select {
			case <-statusC:
				printStatus(srv, backend, store, inj)
			case <-sig:
				fmt.Println("ldapmaster: shutting down")
				return shutdown()
			}
		}
	}

	// Durable mode: journal committed changes periodically (folding the
	// journal into a fresh snapshot whenever the retention policy says it
	// has grown too large or too old), checkpoint on shutdown.
	watermark := store.LastCSN()
	ticker := time.NewTicker(journalEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			w, err := home.Maintain(store, watermark, retention)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ldapmaster: journal: %v\n", err)
				continue
			}
			watermark = w
		case <-statusC:
			printStatus(srv, backend, store, inj)
		case <-sig:
			fmt.Println("ldapmaster: checkpointing and shutting down")
			return shutdown()
		}
	}
}
