// Command ldapsearch queries an LDAP server (master or replica) and prints
// the results as LDIF, in the spirit of the classic tool. Referrals are
// either printed or chased.
//
// Usage:
//
//	ldapsearch -h 127.0.0.1:3890 -b o=xyz -s sub '(serialnumber=1004*)' cn mail
//	ldapsearch -h 127.0.0.1:3891 -chase -b '' '(location=site001)'
//	ldapsearch -h 127.0.0.1:3890 -b o=xyz -sort sn '(objectclass=person)'
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"filterdir"
	"filterdir/internal/ldapnet"
	"filterdir/internal/ldif"
	"filterdir/internal/proto"
	"filterdir/internal/query"
)

func main() {
	host := flag.String("h", "127.0.0.1:3890", "server address")
	base := flag.String("b", "", "search base DN")
	scopeStr := flag.String("s", "sub", "scope: base, one, sub")
	sortAttr := flag.String("sort", "", "server-side sort attribute (prefix '-' for descending)")
	chase := flag.Bool("chase", false, "chase referrals (register the referred host as the same address)")
	maxChase := flag.Int("max-chase", 0, "referral chain hop bound when chasing (0 = default)")
	page := flag.Int("page", 0, "RFC 2696 paged results with this page size (0 = off)")
	limit := flag.Int("z", 0, "size limit (0 = unlimited)")
	flag.Parse()

	filterStr := "(objectclass=*)"
	var attrs []string
	if flag.NArg() > 0 {
		filterStr = flag.Arg(0)
		attrs = flag.Args()[1:]
	}
	if err := run(*host, *base, *scopeStr, filterStr, *sortAttr, *chase, *maxChase, *page, *limit, attrs); err != nil {
		fmt.Fprintln(os.Stderr, "ldapsearch:", err)
		os.Exit(1)
	}
}

func run(host, base, scopeStr, filterStr, sortAttr string, chase bool, maxChase, page, limit int, attrs []string) error {
	scope, err := query.ParseScope(scopeStr)
	if err != nil {
		return err
	}
	q, err := query.New(base, scope, filterStr, attrs...)
	if err != nil {
		return err
	}

	var res *ldapnet.SearchResult
	if chase {
		r := ldapnet.NewResolver()
		r.MaxDepth = maxChase
		defer r.Close()
		// Without a directory of hosts, referred symbolic hosts resolve to
		// the contacted server's address; register common names too.
		for _, h := range []string{"master", "hostA", "hostB", "hostC", host} {
			r.Register(h, host)
		}
		res, err = r.SearchChasing(host, q)
		if errors.Is(err, ldapnet.ErrReferralLoop) {
			return fmt.Errorf("%w (the contacted servers refer this query to each other; it cannot complete anywhere — check the topology or query a server that holds the content)", err)
		}
	} else {
		c, cerr := filterdir.DialDirectory(host)
		if cerr != nil {
			return cerr
		}
		defer c.Close()
		if page > 0 {
			res, err = c.SearchPaged(q, page)
		} else {
			var controls []proto.Control
			if sortAttr != "" {
				key := proto.SortKey{Attr: strings.TrimPrefix(sortAttr, "-"), Reverse: strings.HasPrefix(sortAttr, "-")}
				controls = append(controls, proto.NewSortControl(key))
			}
			res, err = c.SearchWith(q, controls...)
		}
	}
	if err != nil {
		var re *ldapnet.ResultError
		if errors.As(err, &re) && re.Code == proto.ResultReferral {
			fmt.Fprintf(os.Stderr, "# referral: %s\n", strings.Join(re.Referrals, " "))
		} else {
			return err
		}
	}

	entries := res.Entries
	if limit > 0 && len(entries) > limit {
		entries = entries[:limit]
	}
	if err := ldif.Write(os.Stdout, entries...); err != nil {
		return err
	}
	for _, ref := range res.Referrals {
		fmt.Printf("\n# search reference: %s\n", ref)
	}
	fmt.Fprintf(os.Stderr, "# %d entries, %d references\n", len(entries), len(res.Referrals))
	return nil
}
