// Command dirsim regenerates the paper's tables and figures on the
// synthetic enterprise directory. Each experiment prints its series as an
// aligned text table (optionally CSV).
//
// Usage:
//
//	dirsim -exp all                       # every table and figure
//	dirsim -exp figure4 -employees 20000  # one figure, larger directory
//	dirsim -exp figure8 -csv              # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"

	"filterdir"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: table1, figure4..figure9, mail-location, overhead, containment-stats, or all")
	employees := flag.Int("employees", 8000, "directory population (person entries)")
	queries := flag.Int("queries", 8000, "measured queries per point")
	warmup := flag.Int("warmup", 8000, "selector warm-up queries")
	updates := flag.Int("updates", 4000, "master updates for traffic experiments")
	seed := flag.Int64("seed", 1, "deterministic seed")
	payload := flag.Int("payload", 512, "filler bytes per employee entry")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	cfg := filterdir.DefaultExperimentConfig()
	cfg.Employees = *employees
	cfg.MeasureQueries = *queries
	cfg.WarmupQueries = *warmup
	cfg.Updates = *updates
	cfg.Seed = *seed
	cfg.PayloadBytes = *payload

	if err := run(*exp, cfg, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "dirsim:", err)
		os.Exit(1)
	}
}

func run(exp string, cfg filterdir.ExperimentConfig, csv bool) error {
	var figs []*filterdir.Figure
	if exp == "all" {
		all, err := filterdir.RunAllExperiments(cfg)
		if err != nil {
			return err
		}
		figs = all
	} else {
		fig, err := filterdir.RunExperiment(exp, cfg)
		if err != nil {
			return err
		}
		figs = []*filterdir.Figure{fig}
	}
	for i, fig := range figs {
		if i > 0 {
			fmt.Println()
		}
		var err error
		if csv {
			err = fig.CSV(os.Stdout)
		} else {
			err = fig.Render(os.Stdout)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
