// Command workloadgen emits the synthetic enterprise directory as LDIF and
// a query trace as LDAP filter lines, for inspection or for loading into
// other tooling.
//
// With -shift-at N the trace changes regime after N queries: geography-
// local lookups are redirected from the first country to the second and the
// block/department popularity rankings are re-randomized — the traffic
// shift that drives the adaptive tiering experiments (EXPERIMENTS.md).
//
// Usage:
//
//	workloadgen -employees 5000 -out dir.ldif -trace trace.txt -n 10000
//	workloadgen -employees 200000 -out /dev/null -trace shift.txt \
//	    -n 200000 -shift-at 100000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"filterdir"
	"filterdir/internal/ldif"
	"filterdir/internal/workload"
)

func main() {
	employees := flag.Int("employees", 5000, "directory population")
	out := flag.String("out", "-", "LDIF output path (- for stdout)")
	tracePath := flag.String("trace", "", "optional query-trace output path")
	n := flag.Int("n", 10000, "trace length in queries")
	seed := flag.Int64("seed", 1, "deterministic seed")
	shiftAt := flag.Int("shift-at", 0, "shift the trace's local geography to the second country after this many queries (0 = no shift)")
	flag.Parse()

	if err := run(*employees, *out, *tracePath, *n, *seed, *shiftAt); err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}
}

func run(employees int, out, tracePath string, n int, seed int64, shiftAt int) error {
	cfg := workload.DefaultDirectoryConfig(employees)
	cfg.Seed = seed
	dir, err := workload.BuildDirectory(cfg)
	if err != nil {
		return err
	}

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	entries := dir.Master.All()
	// Parents before children for re-loadability.
	sort.Slice(entries, func(i, j int) bool {
		if d := entries[i].DN().Depth() - entries[j].DN().Depth(); d != 0 {
			return d < 0
		}
		return entries[i].DN().Norm() < entries[j].DN().Norm()
	})
	if err := ldif.Write(w, entries...); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d entries\n", len(entries))

	if tracePath == "" {
		return nil
	}
	tf, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	defer tf.Close()
	bw := bufio.NewWriter(tf)
	tc := workload.DefaultTraceConfig()
	tc.Seed = seed + 100
	if shiftAt > 0 {
		tc.Phases = []workload.Phase{{
			AfterOps:      shiftAt,
			LocalCountry:  1,
			LocalFraction: tc.LocalFraction,
			ReshuffleSeed: seed + 200,
		}}
	}
	g := workload.NewGenerator(dir, tc)
	for i := 0; i < n; i++ {
		tq := g.Next()
		fmt.Fprintf(bw, "%s\t%s\t%s\n", tq.Query.Base.String(), filterdir.Scope(tq.Query.Scope), tq.Query.FilterString())
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d queries to %s\n", n, tracePath)
	return nil
}
