package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: filterdir
BenchmarkPersistFanout/sessions=100/shared-8         	       1	  1200000 ns/op	        0.990 classify_dedup
BenchmarkPersistFanout/sessions=100/baseline-8       	       1	  9000000 ns/op
BenchmarkTiny-8                                      	       1	      500 ns/op
PASS
`

func parsed(t *testing.T, text string) document {
	t.Helper()
	doc, err := parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParseBenchOutput(t *testing.T) {
	doc := parsed(t, sampleBench)
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	if doc.GoOS != "linux" || doc.GoArch != "amd64" {
		t.Errorf("goos/goarch = %q/%q", doc.GoOS, doc.GoArch)
	}
	// Sorted by qualified name, GOMAXPROCS suffix stripped.
	want := []string{
		"filterdir:BenchmarkPersistFanout/sessions=100/baseline",
		"filterdir:BenchmarkPersistFanout/sessions=100/shared",
		"filterdir:BenchmarkTiny",
	}
	for i, b := range doc.Benchmarks {
		if b.Name != want[i] {
			t.Errorf("benchmark[%d] = %q, want %q", i, b.Name, want[i])
		}
	}
	shared := doc.Benchmarks[1]
	if shared.NsPerOp != 1200000 {
		t.Errorf("shared ns/op = %v", shared.NsPerOp)
	}
	if shared.Metrics["classify_dedup"] != 0.990 {
		t.Errorf("shared classify_dedup = %v", shared.Metrics["classify_dedup"])
	}
}

func TestParseQualifiesAcrossPackages(t *testing.T) {
	doc := parsed(t, `pkg: filterdir/internal/dn
BenchmarkParse-8 10 1000 ns/op
pkg: filterdir/internal/filter
BenchmarkParse-8 10 2000 ns/op
`)
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2 (same name, distinct packages)", len(doc.Benchmarks))
	}
	if doc.Benchmarks[0].Name != "filterdir/internal/dn:BenchmarkParse" ||
		doc.Benchmarks[1].Name != "filterdir/internal/filter:BenchmarkParse" {
		t.Errorf("names = %q, %q", doc.Benchmarks[0].Name, doc.Benchmarks[1].Name)
	}
}

func TestParseKeepsFastestOfRepeatedRuns(t *testing.T) {
	doc := parsed(t, `pkg: filterdir
BenchmarkX-8 1 3000 ns/op 7.0 widgets
BenchmarkX-8 1 1000 ns/op 5.0 widgets
BenchmarkX-8 1 2000 ns/op 6.0 widgets
`)
	if len(doc.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1 (count=3 runs collapse)", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.NsPerOp != 1000 {
		t.Errorf("ns/op = %v, want the minimum 1000", b.NsPerOp)
	}
	if b.Metrics["widgets"] != 5.0 {
		t.Errorf("metrics should come from the fastest run, got %v", b.Metrics["widgets"])
	}
}

func TestDiffGatesRegressions(t *testing.T) {
	base := parsed(t, sampleBench)
	tests := []struct {
		name        string
		current     string
		regressions int
		contains    []string
	}{
		{
			name:        "unchanged",
			current:     sampleBench,
			regressions: 0,
			contains:    []string{"  ok   ", "+0.0%"},
		},
		{
			name: "regression beyond tolerance",
			current: `pkg: filterdir
BenchmarkPersistFanout/sessions=100/shared-8 1 2000000 ns/op
BenchmarkPersistFanout/sessions=100/baseline-8 1 9000000 ns/op
BenchmarkTiny-8 1 500 ns/op
`,
			regressions: 1,
			contains:    []string{"  FAIL ", "+66.7%"},
		},
		{
			name: "improvement and noise-floor skip",
			current: `pkg: filterdir
BenchmarkPersistFanout/sessions=100/shared-8 1 600000 ns/op
BenchmarkPersistFanout/sessions=100/baseline-8 1 9000000 ns/op
BenchmarkTiny-8 1 50000 ns/op
`,
			// Tiny slowed 100x but its baseline is under the noise floor.
			regressions: 0,
			contains:    []string{"-50.0%", "  noise"},
		},
		{
			name: "renames reported but not gated",
			current: `pkg: filterdir
BenchmarkPersistFanout/sessions=100/shared-8 1 1200000 ns/op
BenchmarkPersistFanout/sessions=100/baseline-8 1 9000000 ns/op
BenchmarkRenamed-8 1 500 ns/op
`,
			regressions: 0,
			contains:    []string{"  new   filterdir:BenchmarkRenamed", "  gone  filterdir:BenchmarkTiny"},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			report, n := diff(base, parsed(t, tc.current), 0.20, 100_000)
			if n != tc.regressions {
				t.Errorf("regressions = %d, want %d\n%s", n, tc.regressions, report)
			}
			for _, want := range tc.contains {
				if !strings.Contains(report, want) {
					t.Errorf("report missing %q:\n%s", want, report)
				}
			}
		})
	}
}
