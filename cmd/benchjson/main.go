// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document for benchmark-regression tracking:
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson > BENCH_resync.json
//
// Each benchmark line contributes its name, iteration count, ns/op, and
// every reported metric (B/op, allocs/op, and custom b.ReportMetric units
// such as hit ratios and update-traffic counters). Benchmarks are sorted
// by name so diffs against a checked-in baseline are meaningful.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type document struct {
	Note       string      `json:"note"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	doc := document{Note: "benchmark baseline; regenerate with `make bench`"}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		}
		b, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one `BenchmarkName-P  N  <value> <unit> ...` line.
func parseBenchLine(line string) (benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchmark{}, false
	}
	name := fields[0]
	// Strip the -P GOMAXPROCS suffix for stable names across machines.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: name, Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		b.Metrics[unit] = v
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
