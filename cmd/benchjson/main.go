// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document for benchmark-regression tracking:
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson > BENCH_resync.json
//
// Each benchmark line contributes its name, iteration count, ns/op, and
// every reported metric (B/op, allocs/op, and custom b.ReportMetric units
// such as hit ratios and update-traffic counters). Benchmarks are sorted
// by name so diffs against a checked-in baseline are meaningful.
//
// With -baseline FILE the tool runs in diff mode instead: the fresh
// benchmark output on stdin is compared against the checked-in JSON
// baseline and the per-benchmark ns/op deltas are printed; any benchmark
// slower than the baseline by more than -tolerance (default 20%) fails
// the run with exit status 1 (`make bench-diff`). Benchmarks whose
// baseline ns/op is below -minns (default 5 ms) are reported but never
// gated — at -benchtime=1x a single-digit-millisecond timing swings well
// past 20% run-to-run even as a min-of-3 (GC pauses, scheduler and page
// faults are a fixed cost a short run cannot amortize), so gating them
// would fail clean runs. Large benchmarks can still flake marginally on
// a loaded machine; treat a borderline FAIL as a prompt to rerun on a
// quiet one before hunting a regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

type benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type document struct {
	Note       string      `json:"note"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON to diff against instead of emitting JSON")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression before failing")
	minNs := flag.Float64("minns", 5_000_000, "baseline ns/op below which a benchmark is too noisy to gate")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
			os.Exit(1)
		}
		var base document
		err = json.NewDecoder(f).Decode(&base)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
			os.Exit(1)
		}
		report, regressions := diff(base, doc, *tolerance, *minNs)
		fmt.Print(report)
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond %.0f%%\n",
				regressions, *tolerance*100)
			os.Exit(1)
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` text output into a sorted document.
// Benchmark names are qualified with their package path (two packages may
// both define BenchmarkParse), and repeated runs of one benchmark (`go
// test -count=N`) collapse to the run with the smallest ns/op — the
// standard noise reducer: a GC pause or scheduler hiccup only ever makes a
// run slower, so the minimum is the most repeatable estimate.
func parse(r io.Reader) (document, error) {
	doc := document{Note: "benchmark baseline; regenerate with `make bench`"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	best := make(map[string]int) // qualified name -> index in doc.Benchmarks
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		b, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if pkg != "" {
			b.Name = pkg + ":" + b.Name
		}
		if i, seen := best[b.Name]; seen {
			if b.NsPerOp < doc.Benchmarks[i].NsPerOp {
				doc.Benchmarks[i] = b
			}
			continue
		}
		best[b.Name] = len(doc.Benchmarks)
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return doc, err
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	return doc, nil
}

// diff renders the ns/op comparison of cur against base and counts gated
// regressions: benchmarks present in both documents, at or above the minNs
// noise floor, that slowed down by more than tolerance. Benchmarks only in
// one document are listed but never gate — a rename must not mask (or
// fabricate) a regression silently.
func diff(base, cur document, tolerance, minNs float64) (string, int) {
	baseBy := make(map[string]benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var sb strings.Builder
	regressions := 0
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, c := range cur.Benchmarks {
		seen[c.Name] = true
		b, ok := baseBy[c.Name]
		if !ok {
			fmt.Fprintf(&sb, "  new   %-60s %12.0f ns/op\n", c.Name, c.NsPerOp)
			continue
		}
		if b.NsPerOp <= 0 {
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		mark := "  ok   "
		switch {
		case b.NsPerOp < minNs:
			mark = "  noise"
		case delta > tolerance:
			mark = "  FAIL "
			regressions++
		}
		fmt.Fprintf(&sb, "%s %-60s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
			mark, c.Name, b.NsPerOp, c.NsPerOp, delta*100)
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(&sb, "  gone  %-60s %12.0f ns/op\n", b.Name, b.NsPerOp)
		}
	}
	return sb.String(), regressions
}

// parseBenchLine parses one `BenchmarkName-P  N  <value> <unit> ...` line.
func parseBenchLine(line string) (benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchmark{}, false
	}
	name := fields[0]
	// Strip the -P GOMAXPROCS suffix for stable names across machines.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: name, Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		b.Metrics[unit] = v
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
