// Command ldapmodify applies update operations to an LDAP server.
//
// Usage:
//
//	ldapmodify -h 127.0.0.1:3890 -dn 'cn=x,o=xyz' -replace 'mail=new@x' -add 'phone=123'
//	ldapmodify -h 127.0.0.1:3890 -dn 'cn=x,o=xyz' -deleteattr phone
//	ldapmodify -h 127.0.0.1:3890 -dn 'cn=x,o=xyz' -delete            # delete the entry
//	ldapmodify -h 127.0.0.1:3890 -addentry -dn 'cn=y,o=xyz' -replace 'objectclass=person' -replace 'cn=y' -replace 'sn=y'
//	ldapmodify -h 127.0.0.1:3890 -dn 'cn=x,o=xyz' -rename 'cn=z' -newsuperior 'ou=a,o=xyz'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"filterdir"
)

type kvList []string

func (l *kvList) String() string { return strings.Join(*l, ",") }

func (l *kvList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	host := flag.String("h", "127.0.0.1:3890", "server address")
	dnStr := flag.String("dn", "", "target entry DN")
	del := flag.Bool("delete", false, "delete the entry")
	addEntry := flag.Bool("addentry", false, "add a new entry from -replace pairs")
	rename := flag.String("rename", "", "new RDN (modifyDN)")
	newSuperior := flag.String("newsuperior", "", "new parent DN for -rename")
	var replaces, adds, deletes kvList
	flag.Var(&replaces, "replace", "attr=value to replace (repeatable)")
	flag.Var(&adds, "add", "attr=value to add (repeatable)")
	flag.Var(&deletes, "deleteattr", "attr (or attr=value) to delete (repeatable)")
	flag.Parse()

	if err := run(*host, *dnStr, *del, *addEntry, *rename, *newSuperior, replaces, adds, deletes); err != nil {
		fmt.Fprintln(os.Stderr, "ldapmodify:", err)
		os.Exit(1)
	}
}

func split(kv string) (string, string) {
	attr, val, _ := strings.Cut(kv, "=")
	return attr, val
}

func run(host, dnStr string, del, addEntry bool, rename, newSuperior string,
	replaces, adds, deletes kvList) error {
	if dnStr == "" {
		return fmt.Errorf("-dn is required")
	}
	d, err := filterdir.ParseDN(dnStr)
	if err != nil {
		return err
	}
	c, err := filterdir.DialDirectory(host)
	if err != nil {
		return err
	}
	defer c.Close()

	switch {
	case del:
		if err := c.Delete(d); err != nil {
			return err
		}
		fmt.Printf("deleted %s\n", d)
		return nil

	case addEntry:
		e := filterdir.NewEntry(d)
		for _, kv := range replaces {
			attr, val := split(kv)
			e.Add(attr, val)
		}
		if err := c.Add(e); err != nil {
			return err
		}
		fmt.Printf("added %s\n", d)
		return nil

	case rename != "":
		rdnDN, err := filterdir.ParseDN(rename)
		if err != nil {
			return fmt.Errorf("new RDN: %w", err)
		}
		leaf, ok := rdnDN.Leaf()
		if !ok {
			return fmt.Errorf("empty new RDN")
		}
		superior, _ := d.Parent()
		if newSuperior != "" {
			superior, err = filterdir.ParseDN(newSuperior)
			if err != nil {
				return fmt.Errorf("new superior: %w", err)
			}
		}
		if err := c.ModifyDN(d, leaf, superior); err != nil {
			return err
		}
		fmt.Printf("renamed %s -> %s\n", d, superior.Child(leaf))
		return nil

	default:
		var changes []filterdir.ModifyChange
		for _, kv := range replaces {
			attr, val := split(kv)
			changes = append(changes, filterdir.ModifyChange{
				Op: filterdir.ModifyOpReplace, Attr: filterdir.WireAttribute{Type: attr, Values: []string{val}}})
		}
		for _, kv := range adds {
			attr, val := split(kv)
			changes = append(changes, filterdir.ModifyChange{
				Op: filterdir.ModifyOpAdd, Attr: filterdir.WireAttribute{Type: attr, Values: []string{val}}})
		}
		for _, kv := range deletes {
			attr, val := split(kv)
			ch := filterdir.ModifyChange{Op: filterdir.ModifyOpDelete, Attr: filterdir.WireAttribute{Type: attr}}
			if val != "" {
				ch.Attr.Values = []string{val}
			}
			changes = append(changes, ch)
		}
		if len(changes) == 0 {
			return fmt.Errorf("nothing to do: give -replace/-add/-deleteattr, -delete, -addentry or -rename")
		}
		if err := c.Modify(d, changes); err != nil {
			return err
		}
		fmt.Printf("modified %s (%d changes)\n", d, len(changes))
		return nil
	}
}
