// Command ldapmodify applies update operations to an LDAP server.
//
// Writes may land on a replica running with -edge-writes: the replica
// journals and forwards the op, and a target outside its filters comes back
// as a referral to the master. ldapmodify chases such referrals itself
// (bounded by -max-chase, with loop detection), retries transient
// transport failures (-retry), and bounds each attempt with -timeout. A
// busy result means the replica accepted and journaled the write but the
// upstream commit is still pending — the replica's replay loop finishes it.
//
// Usage:
//
//	ldapmodify -h 127.0.0.1:3890 -dn 'cn=x,o=xyz' -replace 'mail=new@x' -add 'phone=123'
//	ldapmodify -h 127.0.0.1:3890 -dn 'cn=x,o=xyz' -deleteattr phone
//	ldapmodify -h 127.0.0.1:3890 -dn 'cn=x,o=xyz' -delete            # delete the entry
//	ldapmodify -h 127.0.0.1:3890 -addentry -dn 'cn=y,o=xyz' -replace 'objectclass=person' -replace 'cn=y' -replace 'sn=y'
//	ldapmodify -h 127.0.0.1:3890 -dn 'cn=x,o=xyz' -rename 'cn=z' -newsuperior 'ou=a,o=xyz'
//	ldapmodify -h 127.0.0.1:3893 -retry 3 -timeout 2s -dn 'cn=x,o=xyz' -replace 'mail=new@x'
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"filterdir"
	"filterdir/internal/ldapnet"
	"filterdir/internal/proto"
)

type kvList []string

func (l *kvList) String() string { return strings.Join(*l, ",") }

func (l *kvList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// netOptions bounds one write's networking: per-attempt dial/operation
// timeout, transient-failure retries per server, and the referral-chain
// hop limit.
type netOptions struct {
	timeout  time.Duration
	retry    int
	maxChase int
}

func main() {
	host := flag.String("h", "127.0.0.1:3890", "server address")
	dnStr := flag.String("dn", "", "target entry DN")
	del := flag.Bool("delete", false, "delete the entry")
	addEntry := flag.Bool("addentry", false, "add a new entry from -replace pairs")
	rename := flag.String("rename", "", "new RDN (modifyDN)")
	newSuperior := flag.String("newsuperior", "", "new parent DN for -rename")
	var n netOptions
	flag.DurationVar(&n.timeout, "timeout", 5*time.Second, "dial and per-operation timeout (0 = none)")
	flag.IntVar(&n.retry, "retry", 2, "transient-failure retries per server")
	flag.IntVar(&n.maxChase, "max-chase", ldapnet.DefaultMaxChase, "referral-chain hop bound")
	var replaces, adds, deletes kvList
	flag.Var(&replaces, "replace", "attr=value to replace (repeatable)")
	flag.Var(&adds, "add", "attr=value to add (repeatable)")
	flag.Var(&deletes, "deleteattr", "attr (or attr=value) to delete (repeatable)")
	flag.Parse()

	if err := run(*host, *dnStr, *del, *addEntry, *rename, *newSuperior, replaces, adds, deletes, n); err != nil {
		fmt.Fprintln(os.Stderr, "ldapmodify:", err)
		os.Exit(1)
	}
}

func split(kv string) (string, string) {
	attr, val, _ := strings.Cut(kv, "=")
	return attr, val
}

// buildOp translates the flags into a single write closure plus its success
// message, so the chase/retry loop can re-run it verbatim on every server
// in a referral chain.
func buildOp(dnStr string, del, addEntry bool, rename, newSuperior string,
	replaces, adds, deletes kvList) (func(c *filterdir.Client) error, string, error) {
	if dnStr == "" {
		return nil, "", fmt.Errorf("-dn is required")
	}
	d, err := filterdir.ParseDN(dnStr)
	if err != nil {
		return nil, "", err
	}

	switch {
	case del:
		return func(c *filterdir.Client) error { return c.Delete(d) },
			fmt.Sprintf("deleted %s", d), nil

	case addEntry:
		e := filterdir.NewEntry(d)
		for _, kv := range replaces {
			attr, val := split(kv)
			e.Add(attr, val)
		}
		return func(c *filterdir.Client) error { return c.Add(e) },
			fmt.Sprintf("added %s", d), nil

	case rename != "":
		rdnDN, err := filterdir.ParseDN(rename)
		if err != nil {
			return nil, "", fmt.Errorf("new RDN: %w", err)
		}
		leaf, ok := rdnDN.Leaf()
		if !ok {
			return nil, "", fmt.Errorf("empty new RDN")
		}
		superior, _ := d.Parent()
		if newSuperior != "" {
			superior, err = filterdir.ParseDN(newSuperior)
			if err != nil {
				return nil, "", fmt.Errorf("new superior: %w", err)
			}
		}
		return func(c *filterdir.Client) error { return c.ModifyDN(d, leaf, superior) },
			fmt.Sprintf("renamed %s -> %s", d, superior.Child(leaf)), nil

	default:
		var changes []filterdir.ModifyChange
		for _, kv := range replaces {
			attr, val := split(kv)
			changes = append(changes, filterdir.ModifyChange{
				Op: filterdir.ModifyOpReplace, Attr: filterdir.WireAttribute{Type: attr, Values: []string{val}}})
		}
		for _, kv := range adds {
			attr, val := split(kv)
			changes = append(changes, filterdir.ModifyChange{
				Op: filterdir.ModifyOpAdd, Attr: filterdir.WireAttribute{Type: attr, Values: []string{val}}})
		}
		for _, kv := range deletes {
			attr, val := split(kv)
			ch := filterdir.ModifyChange{Op: filterdir.ModifyOpDelete, Attr: filterdir.WireAttribute{Type: attr}}
			if val != "" {
				ch.Attr.Values = []string{val}
			}
			changes = append(changes, ch)
		}
		if len(changes) == 0 {
			return nil, "", fmt.Errorf("nothing to do: give -replace/-add/-deleteattr, -delete, -addentry or -rename")
		}
		return func(c *filterdir.Client) error { return c.Modify(d, changes) },
			fmt.Sprintf("modified %s (%d changes)", d, len(changes)), nil
	}
}

func run(host, dnStr string, del, addEntry bool, rename, newSuperior string,
	replaces, adds, deletes kvList, n netOptions) error {
	apply, okMsg, err := buildOp(dnStr, del, addEntry, rename, newSuperior, replaces, adds, deletes)
	if err != nil {
		return err
	}
	chased, err := chase(host, apply, n)
	if err != nil {
		return err
	}
	fmt.Println(okMsg)
	if len(chased) > 1 {
		fmt.Printf("via %s\n", strings.Join(chased, " -> "))
	}
	return nil
}

// chase runs the write against host, following referral results to the
// named server until one accepts, a (visited) server repeats, or the hop
// bound is hit. It returns the chain of servers visited, in order; on
// failure the error renders the chain so a misrouted write is debuggable.
func chase(host string, apply func(c *filterdir.Client) error, n netOptions) ([]string, error) {
	visited := make(map[string]bool)
	var chain []string
	addr := host
	for {
		if len(chain) >= n.maxChase {
			return chain, fmt.Errorf("referral chain exceeds %d hops: %s",
				n.maxChase, strings.Join(append(chain, addr), " -> "))
		}
		if visited[addr] {
			return chain, fmt.Errorf("referral loop: %s -> %s",
				strings.Join(chain, " -> "), addr)
		}
		visited[addr] = true
		chain = append(chain, addr)

		err := attempt(addr, apply, n)
		if err == nil {
			return chain, nil
		}
		var re *ldapnet.ResultError
		if errors.As(err, &re) {
			switch {
			case re.Code == proto.ResultReferral && len(re.Referrals) > 0:
				next, _, perr := ldapnet.ParseURL(re.Referrals[0])
				if perr != nil {
					return chain, fmt.Errorf("%s referred to unusable URL %q: %w", addr, re.Referrals[0], perr)
				}
				addr = next
				continue
			case re.Code == proto.ResultBusy:
				// The replica journaled the op durably; its replay loop will
				// finish the upstream commit. Not a failure.
				fmt.Printf("accepted at %s; upstream commit pending (journaled, will replay)\n", addr)
				return chain, nil
			}
		}
		if len(chain) > 1 {
			return chain, fmt.Errorf("%w (chain %s)", err, strings.Join(chain, " -> "))
		}
		return chain, err
	}
}

// attempt runs the write once against addr, redialing and retrying up to
// n.retry extra times on transient transport failures. Server verdicts
// (result errors, including referrals) return immediately — retrying
// cannot change them.
func attempt(addr string, apply func(c *filterdir.Client) error, n netOptions) error {
	var err error
	for try := 0; try <= n.retry; try++ {
		if try > 0 {
			time.Sleep(time.Duration(try) * 50 * time.Millisecond)
		}
		var c *filterdir.Client
		c, err = ldapnet.DialTimeout(addr, n.timeout)
		if err != nil {
			continue
		}
		err = apply(c)
		c.Close()
		if err == nil || !ldapnet.IsTransient(err) {
			return err
		}
	}
	return err
}
