module filterdir

go 1.22
