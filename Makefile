GO ?= go

.PHONY: check vet build test bench

## check: the full verification gate (vet, build, race-enabled tests).
check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

## bench: regenerate every paper figure as benchmark metrics.
bench:
	$(GO) test -bench=. -benchmem ./...
