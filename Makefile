GO ?= go

# bench pipes `go test` through benchjson; without pipefail a test failure
# mid-suite would be masked by benchjson's exit 0 and quietly truncate the
# baseline.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

# Oracle sweep controls: make oracle SEED=7 N=5000
# ORACLE_TESTS narrows the sweep to one topology tier, e.g.
#   make oracle ORACLE_TESTS='TestOracleCascadeSweep|TestOracleCascadeWireSweep'
SEED ?= 42
N ?= 1000
ORACLE_TESTS ?= TestOracleSweep|TestOracleWireSweep|TestOracleCascadeSweep|TestOracleCascadeWireSweep|TestOracleEdgeWriteSweep|TestOracleShardSweepFull|TestOracleResumeSweep|TestOracleAdaptiveSweep

.PHONY: check fmt vet build test bench bench-diff oracle fuzz-smoke cover

## check: the full verification gate (format, vet, build, race-enabled tests).
check: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

## BENCH_COUNT: samples per benchmark; benchjson keeps the fastest run so
## the baseline is a min-of-N, not a single GC-perturbed sample. Shared-host
## CI boxes drift between fast and slow phases over a few minutes, so a
## min-of-3 min still swings ~25% between invocations; five samples span
## enough wall clock that the min reliably lands in a comparable phase.
BENCH_COUNT ?= 5

## bench: regenerate every paper figure as benchmark metrics and write the
## machine-readable regression baseline. -run '^$' skips unit tests (make
## test covers those) and -p 1 serializes packages: benchmarks timed while
## other packages' tests chew the same cores swing 30-40% run to run.
bench:
	$(GO) test -run '^$$' -p 1 -bench=. -benchmem -benchtime=1x -count=$(BENCH_COUNT) ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_resync.json

## bench-diff: rerun the benchmarks (min-of-N, serial, matching how the
## baseline was recorded) and compare against the checked-in baseline; fails
## on a regression beyond -tolerance (noise-floored — see cmd/benchjson
## -minns). 30% rather than benchjson's 20% default: measured on the
## single-CPU shared-host CI box, identical code re-benchmarked against its
## own fresh baseline swings 24-38% on whichever long benchmark catches a
## slow host phase, so a 20% gate fails clean runs; a real regression that
## matters here (the order-of-magnitude kind the fan-out and index work
## targets) clears 30% with room to spare.
bench-diff:
	$(GO) test -run '^$$' -p 1 -bench=. -benchmem -benchtime=1x -count=$(BENCH_COUNT) ./... | $(GO) run ./cmd/benchjson -baseline BENCH_resync.json -tolerance 0.30

## oracle: the long randomized model-checking sweep (engine level plus one
## wire-level history per 50 engine histories), including the three-tier
## cascade sweeps (master → mid-tier → leaves). A divergence prints a
## shrunk history and a one-line replay command.
oracle:
	$(GO) test ./internal/oracle -race -run '$(ORACLE_TESTS)' \
		-oracle.seed=$(SEED) -oracle.n=$(N) -v -timeout 30m

## fuzz-smoke: 30 seconds of native fuzzing per wire-parser target.
fuzz-smoke:
	$(GO) test ./internal/ber -run '^$$' -fuzz FuzzParseTLV -fuzztime 30s
	$(GO) test ./internal/filter -run '^$$' -fuzz FuzzParseFilter -fuzztime 30s
	$(GO) test ./internal/dn -run '^$$' -fuzz FuzzParseDN -fuzztime 30s
	$(GO) test ./internal/proto -run '^$$' -fuzz FuzzDecodeWriteRequest -fuzztime 30s
	$(GO) test ./internal/resync -run '^$$' -fuzz FuzzResumeToken -fuzztime 30s

## cover: per-function coverage summary.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 30
