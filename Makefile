GO ?= go

# bench pipes `go test` through benchjson; without pipefail a test failure
# mid-suite would be masked by benchjson's exit 0 and quietly truncate the
# baseline.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

# Oracle sweep controls: make oracle SEED=7 N=5000
# ORACLE_TESTS narrows the sweep to one topology tier, e.g.
#   make oracle ORACLE_TESTS='TestOracleCascadeSweep|TestOracleCascadeWireSweep'
SEED ?= 42
N ?= 1000
ORACLE_TESTS ?= TestOracleSweep|TestOracleWireSweep|TestOracleCascadeSweep|TestOracleCascadeWireSweep|TestOracleEdgeWriteSweep

.PHONY: check fmt vet build test bench bench-diff oracle fuzz-smoke cover

## check: the full verification gate (format, vet, build, race-enabled tests).
check: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

## bench: regenerate every paper figure as benchmark metrics and write the
## machine-readable regression baseline. -count=3 runs each benchmark three
## times; benchjson keeps the fastest run so the baseline is a min-of-3,
## not a single GC-perturbed sample. -run '^$' skips unit tests (make test
## covers those) and -p 1 serializes packages: benchmarks timed while other
## packages' tests chew the same cores swing 30-40% run to run.
bench:
	$(GO) test -run '^$$' -p 1 -bench=. -benchmem -benchtime=1x -count=3 ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_resync.json

## bench-diff: rerun the benchmarks (min-of-3, serial, matching how the
## baseline was recorded) and compare against the checked-in baseline; fails
## on a >20% ns/op regression (noise-floored — see cmd/benchjson -minns).
bench-diff:
	$(GO) test -run '^$$' -p 1 -bench=. -benchmem -benchtime=1x -count=3 ./... | $(GO) run ./cmd/benchjson -baseline BENCH_resync.json

## oracle: the long randomized model-checking sweep (engine level plus one
## wire-level history per 50 engine histories), including the three-tier
## cascade sweeps (master → mid-tier → leaves). A divergence prints a
## shrunk history and a one-line replay command.
oracle:
	$(GO) test ./internal/oracle -race -run '$(ORACLE_TESTS)' \
		-oracle.seed=$(SEED) -oracle.n=$(N) -v -timeout 30m

## fuzz-smoke: 30 seconds of native fuzzing per wire-parser target.
fuzz-smoke:
	$(GO) test ./internal/ber -run '^$$' -fuzz FuzzParseTLV -fuzztime 30s
	$(GO) test ./internal/filter -run '^$$' -fuzz FuzzParseFilter -fuzztime 30s
	$(GO) test ./internal/dn -run '^$$' -fuzz FuzzParseDN -fuzztime 30s
	$(GO) test ./internal/proto -run '^$$' -fuzz FuzzDecodeWriteRequest -fuzztime 30s

## cover: per-function coverage summary.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 30
