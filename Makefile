GO ?= go

.PHONY: check fmt vet build test bench

## check: the full verification gate (format, vet, build, race-enabled tests).
check: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

## bench: regenerate every paper figure as benchmark metrics.
bench:
	$(GO) test -bench=. -benchmem ./...
