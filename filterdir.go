// Package filterdir is a filter-based LDAP directory replication system: an
// implementation of "Filter Based Directory Replication: Algorithms and
// Performance" (Apurva Kumar, ICDCS 2005).
//
// Instead of replicating whole subtrees of a Directory Information Tree,
// a filter-based replica stores exactly the entries matching one or more
// LDAP queries. The package provides:
//
//   - an in-memory LDAP directory (DIT) with indexes, the four update
//     operations, naming contexts, referral objects and an update journal;
//   - RFC 2254 filters with evaluation, templates and the query-containment
//     algorithms of the paper (Propositions 1–3, compiled template pairs);
//   - the two replica models: SubtreeReplica and FilterReplica;
//   - the ReSync synchronization protocol (poll, persist and retain modes)
//     with tombstone / changelog / full-reload baselines;
//   - filter generalization and benefit/size selection ("revolutions");
//   - an LDAP v3 wire protocol (BER over TCP) with referral chasing and the
//     ReSync request controls;
//   - a synthetic enterprise directory and workload generator plus the
//     experiment harness regenerating every table and figure of the paper.
//
// # Quick start
//
//	store, _ := filterdir.NewDirectory([]string{"o=xyz"})
//	e := filterdir.NewEntry(filterdir.MustParseDN("cn=a,o=xyz"))
//	e.Put("objectclass", "person").Put("cn", "a").Put("sn", "a")
//	_ = store.Add(e)
//
//	rep, _ := filterdir.NewFilterReplica()
//	eng := filterdir.NewSyncEngine(store)
//	q := filterdir.MustParseQuery("", filterdir.ScopeSubtree, "(sn=a)")
//	res, _ := eng.Begin(q)
//	rep.AddStored(q, res.Cookie)
//	_ = rep.ApplySync(q, res.Updates)
//	entries, hit, _ := rep.Answer(q)
//
// See the examples directory for runnable scenarios and DESIGN.md for the
// system inventory.
package filterdir

import (
	"time"

	"filterdir/internal/containment"
	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/edgewrite"
	"filterdir/internal/entry"
	"filterdir/internal/filter"
	"filterdir/internal/ldapnet"
	"filterdir/internal/ldif"
	"filterdir/internal/metrics"
	"filterdir/internal/persist"
	"filterdir/internal/proto"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
	"filterdir/internal/selection"
	"filterdir/internal/sim"
	"filterdir/internal/workload"
)

// Core data model.
type (
	// DN is a distinguished name.
	DN = dn.DN
	// RDN is a relative distinguished name component.
	RDN = dn.RDN
	// Entry is a directory entry.
	Entry = entry.Entry
	// Schema validates entries against object-class definitions.
	Schema = entry.Schema
	// Filter is an LDAP search filter AST.
	Filter = filter.Node
	// Query is an LDAP search request (base, scope, filter, attrs) — the
	// paper's unit of replication.
	Query = query.Query
	// Scope is the LDAP search scope.
	Scope = query.Scope
)

// Search scopes.
const (
	ScopeBase        = query.ScopeBase
	ScopeSingleLevel = query.ScopeSingleLevel
	ScopeSubtree     = query.ScopeSubtree
)

// Directory storage and search.
type (
	// Directory is an in-memory DIT partition with search, updates,
	// indexes and the update journal.
	Directory = dit.Store
	// DirectoryOption configures a Directory.
	DirectoryOption = dit.Option
	// SearchResult is a directory search outcome: entries plus referrals.
	SearchResult = dit.Result
	// Context is a naming context (suffix + subordinate referrals).
	Context = dit.Context
)

// Replication.
type (
	// FilterReplica is the paper's proposed replica: entries matching
	// stored LDAP queries plus a cached window of recent user queries.
	FilterReplica = replica.FilterReplica
	// SubtreeReplica is the conventional whole-subtree replica baseline.
	SubtreeReplica = replica.SubtreeReplica
	// ReplicaMetrics counts replica hits, misses and partial answers.
	ReplicaMetrics = replica.Metrics
	// SyncEngine is the master-side ReSync protocol engine.
	SyncEngine = resync.Engine
	// SyncUpdate is one synchronization action (add/delete/modify/retain).
	SyncUpdate = resync.Update
	// SyncApplier applies updates to a replica-side store.
	SyncApplier = resync.Applier
	// Traffic accounts synchronization cost in PDUs and bytes.
	Traffic = resync.Traffic
	// Checker decides query containment with the paper's template
	// optimizations.
	Checker = containment.Checker
	// Selector picks replicated filters by benefit/size ratio.
	Selector = selection.Selector
	// Generalizer derives candidate filters from user queries.
	Generalizer = selection.Generalizer
	// AdaptiveReplica combines a FilterReplica with the selection loop and
	// a synchronization supplier (local engine or wire client).
	AdaptiveReplica = replica.AdaptiveReplica
	// Supplier is the master-side synchronization interface an adaptive
	// replica consumes.
	Supplier = replica.Supplier
)

// Wire protocol.
type (
	// Server serves a directory over the LDAP wire protocol.
	Server = ldapnet.Server
	// Client is an LDAP client with ReSync support.
	Client = ldapnet.Client
	// Resolver chases referrals across a set of named servers.
	Resolver = ldapnet.Resolver
	// ModifyChange is one attribute change of a wire modify request.
	ModifyChange = proto.ModifyChange
	// WireAttribute is an attribute carried on the wire.
	WireAttribute = proto.Attribute
	// ReSyncMode selects the synchronization mode of a wire Sync call.
	ReSyncMode = proto.ReSyncMode
	// WireControl is a raw LDAP request control.
	WireControl = proto.Control
	// SortKey is one key of an RFC 2891 server-side sort request.
	SortKey = proto.SortKey
)

// Wire modify sub-operation codes.
const (
	ModifyOpAdd     = proto.ModifyOpAdd
	ModifyOpDelete  = proto.ModifyOpDelete
	ModifyOpReplace = proto.ModifyOpReplace
)

// ReSync modes for Client.Sync.
const (
	ReSyncModePoll    = proto.ReSyncModePoll
	ReSyncModePersist = proto.ReSyncModePersist
	ReSyncModeSyncEnd = proto.ReSyncModeSyncEnd
	ReSyncModeRetain  = proto.ReSyncModeRetain
)

// NewSortControl builds an RFC 2891 server-side sort request control for
// Client.SearchWith.
func NewSortControl(keys ...SortKey) WireControl { return proto.NewSortControl(keys...) }

// Workload and experiments.
type (
	// WorkloadDirectory is the synthetic enterprise directory.
	WorkloadDirectory = workload.Directory
	// ExperimentConfig sizes the paper-reproduction experiments.
	ExperimentConfig = sim.Config
	// Figure is one reproduced table or figure.
	Figure = metrics.Figure
	// SyncCounters aggregates master-side synchronization activity
	// (polls, PDUs by action, full reloads, classify latency).
	SyncCounters = metrics.SyncCounters
	// SyncSnapshot is a point-in-time copy of SyncCounters.
	SyncSnapshot = metrics.SyncSnapshot

	// EdgeWriter accepts writes at a replica: WAL journal, upstream
	// forwarding to the master sequencer, and a pending overlay giving the
	// writer read-your-writes until the CSN echoes back.
	EdgeWriter = edgewrite.Writer
	// EdgeWriteConfig parameterizes an EdgeWriter.
	EdgeWriteConfig = edgewrite.Config
	// EdgeForwarder carries accepted edge writes upstream over the wire.
	EdgeForwarder = ldapnet.EdgeForwarder
	// WriteCounters tracks the edge-write lifecycle (accepted, forwarded,
	// committed, retired, pending depth, WAL replays).
	WriteCounters = metrics.WriteCounters
	// WireResultError is a server's non-success answer, carrying the result
	// code and any referral URLs.
	WireResultError = ldapnet.ResultError
)

// ParseDN parses an RFC 2253 distinguished name.
func ParseDN(s string) (DN, error) { return dn.Parse(s) }

// MustParseDN is ParseDN that panics on error.
func MustParseDN(s string) DN { return dn.MustParse(s) }

// ParseFilter parses an RFC 2254 filter string.
func ParseFilter(s string) (*Filter, error) { return filter.Parse(s) }

// MustParseFilter is ParseFilter that panics on error.
func MustParseFilter(s string) *Filter { return filter.MustParse(s) }

// NewQuery builds a search request from string forms.
func NewQuery(base string, scope Scope, filterStr string, attrs ...string) (Query, error) {
	return query.New(base, scope, filterStr, attrs...)
}

// MustParseQuery is NewQuery that panics on error.
func MustParseQuery(base string, scope Scope, filterStr string, attrs ...string) Query {
	return query.MustNew(base, scope, filterStr, attrs...)
}

// NewEntry creates an empty entry at the given DN.
func NewEntry(d DN) *Entry { return entry.New(d) }

// DefaultSchema returns the enterprise object classes used by the paper's
// directory.
func DefaultSchema() *Schema { return entry.DefaultSchema() }

// NewDirectory creates a directory serving the given naming-context
// suffixes ("" for the whole DIT).
func NewDirectory(suffixes []string, opts ...DirectoryOption) (*Directory, error) {
	return dit.NewStore(suffixes, opts...)
}

// WithIndexes maintains equality/prefix indexes on the named attributes.
func WithIndexes(attrs ...string) DirectoryOption { return dit.WithIndexes(attrs...) }

// WithSchema enables schema validation on updates.
func WithSchema(s *Schema) DirectoryOption { return dit.WithSchema(s) }

// WithDefaultReferral sets the superior referral URL for foreign targets.
func WithDefaultReferral(url string) DirectoryOption { return dit.WithDefaultReferral(url) }

// WithJournalLimit bounds the in-memory update journal to the most recent n
// changes; sync sessions that fall further behind require a full reload.
func WithJournalLimit(n int) DirectoryOption { return dit.WithJournalLimit(n) }

// WithShards sets the directory's DN-hash shard count (values < 1 select
// the default: $FILTERDIR_SHARDS, else GOMAXPROCS). Shard count never
// changes replication traffic or read results — only contention.
func WithShards(n int) DirectoryOption { return dit.WithShards(n) }

// WithBatchLimit bounds how many pending updates one commit-pipeline batch
// applies per flush.
func WithBatchLimit(n int) DirectoryOption { return dit.WithBatchLimit(n) }

// WithBatchWindow makes writers linger before contending for the commit
// sequencer so concurrent updates accumulate into fewer, larger batches.
func WithBatchWindow(d time.Duration) DirectoryOption { return dit.WithBatchWindow(d) }

// NewFilterReplica creates an empty filter-based replica.
func NewFilterReplica(opts ...replica.FROption) (*FilterReplica, error) {
	return replica.NewFilterReplica(opts...)
}

// WithCacheCapacity bounds the replica's recent-user-query window.
func WithCacheCapacity(n int) replica.FROption { return replica.WithCacheCapacity(n) }

// WithChecker shares a containment checker across replicas.
func WithChecker(c *Checker) replica.FROption { return replica.WithChecker(c) }

// WithContentIndexes indexes the replica's content store.
func WithContentIndexes(attrs ...string) replica.FROption {
	return replica.WithContentIndexes(attrs...)
}

// NewSubtreeReplica creates a subtree replica for the given contexts.
func NewSubtreeReplica(contexts []Context) (*SubtreeReplica, error) {
	return replica.NewSubtreeReplica(contexts)
}

// NewSyncEngine creates the master-side ReSync engine over a directory.
func NewSyncEngine(master *Directory) *SyncEngine { return resync.NewEngine(master) }

// NewAdaptiveReplica wires a filter replica, a selector and a supplier into
// the full Section 6.2 adaptation loop.
func NewAdaptiveReplica(rep *FilterReplica, sel *Selector, sup Supplier) *AdaptiveReplica {
	return replica.NewAdaptiveReplica(rep, sel, sup)
}

// LocalSupplier adapts an in-process sync engine to the Supplier interface.
func LocalSupplier(eng *SyncEngine) Supplier { return replica.LocalSupplier{Engine: eng} }

// ClientSupplier adapts a wire client to the Supplier interface.
func ClientSupplier(c *Client) Supplier { return ldapnet.ClientSupplier{Client: c} }

// NewSyncApplier wraps a replica-side store for applying sync updates.
func NewSyncApplier(store *Directory) *SyncApplier { return resync.NewApplier(store) }

// NewChecker creates a containment checker with an empty plan cache.
func NewChecker() *Checker { return containment.NewChecker() }

// QueryContained reports whether q is semantically contained in qs using a
// fresh checker; reuse a Checker for repeated decisions.
func QueryContained(q, qs Query) bool { return containment.NewChecker().QueryContains(q, qs) }

// NewGeneralizer builds a filter generalizer from rules.
func NewGeneralizer(rules ...selection.Rule) *Generalizer {
	return selection.NewGeneralizer(rules...)
}

// PrefixRule generalizes equality values to prefixes of the given length.
func PrefixRule(attr string, prefixLen int) selection.Rule {
	return selection.PrefixRule{Attr: attr, PrefixLen: prefixLen}
}

// WidenRule drops predicates on an attribute from conjunctions.
func WidenRule(dropAttr string) selection.Rule {
	return selection.WidenRule{DropAttr: dropAttr}
}

// NewSelector builds a benefit/size filter selector: sizeOf estimates a
// candidate's result size, budget bounds the replica in entries, interval
// is the revolution interval in queries (0 = manual revolutions only).
func NewSelector(g *Generalizer, sizeOf func(Query) int, budget, interval int) *Selector {
	return selection.NewSelector(g, sizeOf, budget, interval)
}

// ServeDirectory serves a directory over the wire protocol on addr
// ("127.0.0.1:0" picks a free port).
func ServeDirectory(addr string, master *Directory) (*Server, error) {
	return ldapnet.Serve(addr, ldapnet.NewStoreBackend(master))
}

// DialDirectory connects an LDAP client.
func DialDirectory(addr string) (*Client, error) { return ldapnet.Dial(addr) }

// NewResolver creates a referral-chasing resolver.
func NewResolver() *Resolver { return ldapnet.NewResolver() }

// BuildEnterpriseDirectory builds the synthetic enterprise directory used
// by the paper-reproduction experiments, sized to the given employee count.
func BuildEnterpriseDirectory(totalEmployees int) (*WorkloadDirectory, error) {
	return workload.BuildDirectory(workload.DefaultDirectoryConfig(totalEmployees))
}

// DefaultExperimentConfig returns the test-scale experiment configuration.
func DefaultExperimentConfig() ExperimentConfig { return sim.DefaultConfig() }

// RunExperiment regenerates one of the paper's tables or figures by id
// (table1, figure4 … figure9, mail-location).
func RunExperiment(id string, cfg ExperimentConfig) (*Figure, error) {
	return sim.ByID(id, cfg)
}

// RunAllExperiments regenerates every table and figure.
func RunAllExperiments(cfg ExperimentConfig) ([]*Figure, error) { return sim.All(cfg) }

// WriteLDIF and ReadLDIF move entries through the LDIF interchange format.
var (
	WriteLDIF = ldif.Write
	ReadLDIF  = ldif.Read
)

// DataDir is a durable home for a directory: an LDIF snapshot plus an
// appendable journal of LDIF change records.
type DataDir = persist.Dir

// OpenDataDir loads (or initializes) durable directory state at path.
func OpenDataDir(path string, suffixes []string, opts ...DirectoryOption) (*Directory, error) {
	return persist.Dir{Path: path}.Open(suffixes, opts...)
}
