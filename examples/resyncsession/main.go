// Command resyncsession replays the example ReSync session of Figure 3:
// entries E1..E5 move through their lifecycles while a replica synchronizes
// the content of a search request S with two polls and a persist-mode
// subscription, printing the protocol's message sequence.
package main

import (
	"fmt"
	"log"

	"filterdir"
	"filterdir/internal/dit"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func addEmployee(master *filterdir.Directory, cn, serial string) error {
	e := filterdir.NewEntry(filterdir.MustParseDN("cn=" + cn + ",c=us,o=xyz"))
	e.Put("objectclass", "person", "inetOrgPerson").
		Put("cn", cn).Put("sn", cn).Put("serialNumber", serial)
	return master.Add(e)
}

func printUpdates(label string, updates []filterdir.SyncUpdate) {
	fmt.Printf("%s\n", label)
	if len(updates) == 0 {
		fmt.Println("  (no updates)")
	}
	for _, u := range updates {
		fmt.Printf("  %-7s %s\n", u.Action, u.DN)
	}
	fmt.Println()
}

func run() error {
	master, err := filterdir.NewDirectory([]string{"o=xyz"})
	if err != nil {
		return err
	}
	for _, dnStr := range []string{"o=xyz", "c=us,o=xyz"} {
		e := filterdir.NewEntry(filterdir.MustParseDN(dnStr))
		if dnStr == "o=xyz" {
			e.Put("objectclass", "organization").Put("o", "xyz")
		} else {
			e.Put("objectclass", "country").Put("c", "us")
		}
		if err := master.Add(e); err != nil {
			return err
		}
	}

	// The replicated content: S = all inetOrgPerson entries under o=xyz.
	spec := filterdir.MustParseQuery("o=xyz", filterdir.ScopeSubtree, "(objectclass=inetorgperson)")
	engine := filterdir.NewSyncEngine(master)

	// E1, E2, E3 exist before the session starts.
	for i, cn := range []string{"E1", "E2", "E3"} {
		if err := addEmployee(master, cn, fmt.Sprintf("000%d", i+1)); err != nil {
			return err
		}
	}

	fmt.Println("client -> server: S, (poll, null)")
	res, err := engine.Begin(spec)
	if err != nil {
		return err
	}
	printUpdates("server -> client: initial content, cookie issued", res.Updates)

	// Between the polls: E4 added; E1, E2 deleted; E3 modified in place.
	if err := addEmployee(master, "E4", "0004"); err != nil {
		return err
	}
	if err := master.Delete(filterdir.MustParseDN("cn=E1,c=us,o=xyz")); err != nil {
		return err
	}
	if err := master.Delete(filterdir.MustParseDN("cn=E2,c=us,o=xyz")); err != nil {
		return err
	}
	if err := master.Modify(filterdir.MustParseDN("cn=E3,c=us,o=xyz"),
		[]dit.Mod{{Op: dit.ModReplace, Attr: "serialNumber", Values: []string{"0033"}}}); err != nil {
		return err
	}

	fmt.Println("client -> server: S, (poll, cookie)")
	res2, err := engine.Poll(res.Cookie)
	if err != nil {
		return err
	}
	printUpdates("server -> client: accumulated session history", res2.Updates)

	// Persist mode: the connection stays open; E3 is renamed to E5, which
	// within the content is a delete of the old DN plus an add of the new.
	fmt.Println("client -> server: S, (persist, cookie)")
	sub, err := engine.Persist(res2.Cookie)
	if err != nil {
		return err
	}
	if err := master.ModifyDN(filterdir.MustParseDN("cn=E3,c=us,o=xyz"),
		filterdir.RDN{Attr: "cn", Value: "E5"}, filterdir.MustParseDN("c=us,o=xyz")); err != nil {
		return err
	}
	batch := <-sub.Updates
	printUpdates("server -> client: change notification (E3 renamed to E5)", batch.Updates)

	fmt.Println("client -> server: abandon")
	sub.Close()
	if err := engine.End(res2.Cookie); err != nil {
		return err
	}
	fmt.Println("session ended (mode sync_end); active sessions:", engine.Sessions())
	return nil
}
