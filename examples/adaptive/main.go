// Command adaptive demonstrates dynamic filter selection (Section 6.2): an
// adaptive filter replica serving the synthetic enterprise workload learns
// the hot regions through periodic revolutions and recovers its hit ratio
// after the access pattern shifts.
package main

import (
	"fmt"
	"log"

	"filterdir"
	"filterdir/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Synthetic enterprise directory: employees flat under countries,
	// structured serial numbers, ~30 % in the target geography.
	dir, err := filterdir.BuildEnterpriseDirectory(3000)
	if err != nil {
		return err
	}
	fmt.Printf("directory: %d entries, %d employees\n\n", dir.Master.Len(), dir.EmployeeCount)

	// Generalize serial lookups to block-granularity prefix filters and
	// select under a budget of 8 % of the employee population, revolving
	// every 500 queries. The AdaptiveReplica handles synchronization
	// sessions and content turnover.
	rep, err := filterdir.NewFilterReplica(filterdir.WithContentIndexes("serialnumber"))
	if err != nil {
		return err
	}
	gen := filterdir.NewGeneralizer(
		filterdir.PrefixRule("serialnumber", workload.SerialPrefixLen))
	sizeOf := func(q filterdir.Query) int { return len(dir.Master.MatchAll(q)) }
	sel := filterdir.NewSelector(gen, sizeOf, dir.EmployeeCount*8/100, 500)
	ar := filterdir.NewAdaptiveReplica(rep, sel,
		filterdir.LocalSupplier(filterdir.NewSyncEngine(dir.Master)))
	defer func() {
		if err := ar.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()

	g := workload.NewGenerator(dir, workload.DefaultTraceConfig())

	const window = 500
	hits := 0
	fmt.Printf("%-8s %-10s %-9s %-8s %s\n", "queries", "hit-ratio", "#filters", "entries", "fetch-traffic")
	for i := 1; i <= 4000; i++ {
		hit, err := ar.Serve(g.NextOfKind(workload.KindSerial).Query)
		if err != nil {
			return err
		}
		if hit {
			hits++
		}
		if i%window == 0 {
			fmt.Printf("%-8d %-10.3f %-9d %-8d %d entries\n",
				i, float64(hits)/float64(window), len(ar.StoredFilters()),
				rep.EntryCount(), ar.FetchTraffic.Updates())
			hits = 0
		}
		if i == 2000 {
			// The access pattern shifts: different blocks become hot.
			g.Reshuffle(42)
			fmt.Println("--- access pattern shift ---")
		}
	}

	fmt.Println("\nThe hit ratio collapses at the shift and recovers after the")
	fmt.Println("next revolutions replace cold filters with the new hot regions;")
	fmt.Println("fetch-traffic counts the entries those revolutions transferred.")
	return nil
}
