// Command quickstart builds a small enterprise DIT, replicates a
// generalized filter to a filter-based replica, keeps it synchronized with
// the master, and shows which queries the replica can answer.
package main

import (
	"fmt"
	"log"

	"filterdir"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A master directory holding the o=xyz naming context.
	master, err := filterdir.NewDirectory([]string{"o=xyz"},
		filterdir.WithIndexes("serialnumber", "mail"))
	if err != nil {
		return err
	}
	add := func(dnStr string, attrs map[string][]string) error {
		e := filterdir.NewEntry(filterdir.MustParseDN(dnStr))
		for k, v := range attrs {
			e.Put(k, v...)
		}
		return master.Add(e)
	}
	if err := add("o=xyz", map[string][]string{"objectclass": {"organization"}, "o": {"xyz"}}); err != nil {
		return err
	}
	for _, cc := range []string{"us", "in"} {
		if err := add("c="+cc+",o=xyz", map[string][]string{"objectclass": {"country"}, "c": {cc}}); err != nil {
			return err
		}
	}
	// Employees appear flat under their country entry; serial numbers are
	// structured (country code + department block + sequence).
	people := []struct{ cc, cn, serial string }{
		{"us", "John Doe", "100401"},
		{"us", "Jane Roe", "100402"},
		{"us", "Carl Miller", "100501"},
		{"in", "Asha Rao", "110403"},
	}
	for _, p := range people {
		err := add(fmt.Sprintf("cn=%s,c=%s,o=xyz", p.cn, p.cc), map[string][]string{
			"objectclass":  {"person", "inetOrgPerson"},
			"cn":           {p.cn},
			"sn":           {p.cn},
			"serialNumber": {p.serial},
			"mail":         {p.cn + "@" + p.cc + ".xyz.com"},
		})
		if err != nil {
			return err
		}
	}

	// Replicate the generalized filter (serialNumber=<cc>04*) — the region
	// of semantic locality — over the whole DIT (null base answers
	// minimally directory-enabled applications).
	replica, err := filterdir.NewFilterReplica(filterdir.WithCacheCapacity(8))
	if err != nil {
		return err
	}
	engine := filterdir.NewSyncEngine(master)
	stored := filterdir.MustParseQuery("", filterdir.ScopeSubtree, "(|(serialNumber=1004*)(serialNumber=1104*))")
	initial, err := engine.Begin(stored)
	if err != nil {
		return err
	}
	replica.AddStored(stored, initial.Cookie)
	if err := replica.ApplySync(stored, initial.Updates); err != nil {
		return err
	}
	fmt.Printf("replicated %d of %d entries for %s\n\n",
		replica.EntryCount(), master.Len(), stored.FilterString())

	// Queries contained in the stored filter are answered locally — even
	// across country subtrees (semantic, not spatial, locality).
	queries := []string{
		"(serialNumber=100401)",
		"(serialNumber=110403)",
		"(serialNumber=100501)", // outside the replicated region → miss
	}
	for _, f := range queries {
		q := filterdir.MustParseQuery("", filterdir.ScopeSubtree, f)
		entries, hit, via := replica.Answer(q)
		if hit {
			fmt.Printf("HIT  %-24s -> %d entries (via %s)\n", f, len(entries), via)
		} else {
			fmt.Printf("MISS %-24s -> referral to master\n", f)
		}
	}

	// The master changes; one poll brings the replica back in sync.
	if err := master.Delete(filterdir.MustParseDN("cn=Jane Roe,c=us,o=xyz")); err != nil {
		return err
	}
	poll, err := engine.Poll(initial.Cookie)
	if err != nil {
		return err
	}
	if err := replica.ApplySync(stored, poll.Updates); err != nil {
		return err
	}
	fmt.Printf("\nafter master delete + poll: %d updates, replica holds %d entries\n",
		len(poll.Updates), replica.EntryCount())

	m := replica.Metrics()
	fmt.Printf("replica metrics: %d queries, %d hits, hit ratio %.2f\n",
		m.Queries, m.Hits, m.HitRatio())
	return nil
}
