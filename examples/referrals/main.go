// Command referrals reproduces Figure 2 of the paper over real TCP: three
// LDAP servers jointly serve the o=xyz namespace, and a single subtree
// search issued to the wrong server costs four client-server round trips
// because of the referral mechanism — the distributed-operation overhead
// that partial replication is meant to avoid.
package main

import (
	"fmt"
	"log"

	"filterdir"
	"filterdir/internal/dit"
	"filterdir/internal/ldapnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildStore(suffix, defaultReferral string, entries []map[string][]string) (*filterdir.Directory, error) {
	var opts []filterdir.DirectoryOption
	if defaultReferral != "" {
		opts = append(opts, filterdir.WithDefaultReferral(defaultReferral))
	}
	st, err := filterdir.NewDirectory([]string{suffix}, opts...)
	if err != nil {
		return nil, err
	}
	for _, attrs := range entries {
		e := filterdir.NewEntry(filterdir.MustParseDN(attrs["dn"][0]))
		for k, v := range attrs {
			if k == "dn" {
				continue
			}
			e.Put(k, v...)
		}
		if err := st.Add(e); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func run() error {
	// hostA: the o=xyz context with referral objects for hostB and hostC.
	storeA, err := buildStore("o=xyz", "", []map[string][]string{
		{"dn": {"o=xyz"}, "objectclass": {"organization"}, "o": {"xyz"}},
		{"dn": {"c=us,o=xyz"}, "objectclass": {"country"}, "c": {"us"}},
		{"dn": {"cn=Fred Jones,c=us,o=xyz"}, "objectclass": {"person"}, "cn": {"Fred Jones"}, "sn": {"Jones"}},
		{"dn": {"ou=research,c=us,o=xyz"}, "objectclass": {dit.ReferralClass}, dit.RefAttr: {"ldap://hostB/ou=research,c=us,o=xyz"}},
		{"dn": {"c=in,o=xyz"}, "objectclass": {dit.ReferralClass}, dit.RefAttr: {"ldap://hostC/c=in,o=xyz"}},
	})
	if err != nil {
		return err
	}
	// hostB: the research subtree; its default referral points up to hostA.
	storeB, err := buildStore("ou=research,c=us,o=xyz", "ldap://hostA", []map[string][]string{
		{"dn": {"ou=research,c=us,o=xyz"}, "objectclass": {"organizationalUnit"}, "ou": {"research"}},
		{"dn": {"cn=John Doe,ou=research,c=us,o=xyz"}, "objectclass": {"inetOrgPerson", "person"},
			"cn": {"John Doe"}, "sn": {"Doe"}, "mail": {"john@us.xyz.com"}},
		{"dn": {"cn=Carl Miller,ou=research,c=us,o=xyz"}, "objectclass": {"person"}, "cn": {"Carl Miller"}, "sn": {"Miller"}},
	})
	if err != nil {
		return err
	}
	// hostC: the c=in subtree.
	storeC, err := buildStore("c=in,o=xyz", "ldap://hostA", []map[string][]string{
		{"dn": {"c=in,o=xyz"}, "objectclass": {"country"}, "c": {"in"}},
		{"dn": {"cn=Asha Rao,c=in,o=xyz"}, "objectclass": {"person"}, "cn": {"Asha Rao"}, "sn": {"Rao"}},
	})
	if err != nil {
		return err
	}

	srvA, err := filterdir.ServeDirectory("127.0.0.1:0", storeA)
	if err != nil {
		return err
	}
	defer srvA.Close()
	srvB, err := filterdir.ServeDirectory("127.0.0.1:0", storeB)
	if err != nil {
		return err
	}
	defer srvB.Close()
	srvC, err := filterdir.ServeDirectory("127.0.0.1:0", storeC)
	if err != nil {
		return err
	}
	defer srvC.Close()

	resolver := ldapnet.NewResolver()
	defer resolver.Close()
	resolver.Register("hostA", srvA.Addr())
	resolver.Register("hostB", srvB.Addr())
	resolver.Register("hostC", srvC.Addr())

	fmt.Println("Figure 2: subtree search for o=xyz sent to hostB")
	fmt.Println("  1. hostB does not hold o=xyz -> superior referral to hostA")
	fmt.Println("  2. hostA returns its entries + references for hostB and hostC")
	fmt.Println("  3. client re-searches hostB at ou=research,c=us,o=xyz")
	fmt.Println("  4. client re-searches hostC at c=in,o=xyz")
	fmt.Println()

	q := filterdir.MustParseQuery("o=xyz", filterdir.ScopeSubtree, "(objectclass=*)")
	res, err := resolver.SearchChasing("hostB", q)
	if err != nil {
		return err
	}
	fmt.Printf("entries returned: %d\n", len(res.Entries))
	for _, e := range res.Entries {
		fmt.Printf("  %s\n", e.DN())
	}
	fmt.Printf("\nclient-server round trips: %d (the cost the paper attributes to referrals)\n",
		resolver.RoundTrips())
	return nil
}
