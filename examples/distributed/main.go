// Command distributed runs the full deployment story in one process: a
// durable master served over TCP, an adaptive filter replica synchronizing
// over the wire, and clients using paged and server-side-sorted searches —
// with misses referred from the replica back to the master and chased
// transparently.
package main

import (
	"fmt"
	"log"
	"os"

	"filterdir"
	"filterdir/internal/ldapnet"
	"filterdir/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A durable master: state lives in a snapshot + journal directory.
	dataPath, err := os.MkdirTemp("", "filterdir-distributed-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataPath)

	dir, err := filterdir.BuildEnterpriseDirectory(2000)
	if err != nil {
		return err
	}
	home := filterdir.DataDir{Path: dataPath}
	if err := home.Checkpoint(dir.Master); err != nil {
		return err
	}
	fmt.Printf("master: %d entries, checkpointed to %s\n", dir.Master.Len(), dataPath)

	masterSrv, err := filterdir.ServeDirectory("127.0.0.1:0", dir.Master)
	if err != nil {
		return err
	}
	defer masterSrv.Close()

	// An adaptive replica synchronizes over the wire and serves its own
	// port; uncontained queries get a referral to the master.
	syncClient, err := filterdir.DialDirectory(masterSrv.Addr())
	if err != nil {
		return err
	}
	defer syncClient.Close()

	rep, err := filterdir.NewFilterReplica(filterdir.WithContentIndexes("serialnumber", "location"))
	if err != nil {
		return err
	}
	gen := filterdir.NewGeneralizer(filterdir.PrefixRule("serialnumber", workload.SerialPrefixLen))
	sizeOf := func(q filterdir.Query) int { return len(dir.Master.MatchAll(q)) }
	sel := filterdir.NewSelector(gen, sizeOf, dir.EmployeeCount/10, 200)
	ar := filterdir.NewAdaptiveReplica(rep, sel, filterdir.ClientSupplier(syncClient))
	defer ar.Close()

	// Statically replicate the hot location tree with a slow sync period
	// (different consistency levels for different object types, §3.2).
	locQ := filterdir.MustParseQuery("", filterdir.ScopeSubtree, "(location=*)")
	if err := ar.AddFilter(locQ); err != nil {
		return err
	}
	ar.SetSyncPeriod(locQ, 10)

	replicaSrv, err := ldapnet.Serve("127.0.0.1:0",
		ldapnet.NewReplicaBackend(rep, "ldap://master"))
	if err != nil {
		return err
	}
	defer replicaSrv.Close()
	fmt.Printf("replica: serving on %s (misses referred to master)\n\n", replicaSrv.Addr())

	// Drive the serial workload through the adaptive loop so the replica
	// learns the hot blocks.
	g := workload.NewGenerator(dir, workload.DefaultTraceConfig())
	hits := 0
	for i := 0; i < 1200; i++ {
		hit, err := ar.Serve(g.NextOfKind(workload.KindSerial).Query)
		if err != nil {
			return err
		}
		if hit {
			hits++
		}
	}
	fmt.Printf("adaptive warm-up: %d/1200 hits, %d filters stored, %d entries replicated\n\n",
		hits, len(ar.StoredFilters()), rep.EntryCount())

	// A client resolver talks to the replica and follows its referrals.
	resolver := filterdir.NewResolver()
	defer resolver.Close()
	resolver.Register("replica", replicaSrv.Addr())
	resolver.Register("master", masterSrv.Addr())

	locHit, err := resolver.SearchChasing("replica",
		filterdir.MustParseQuery("", filterdir.ScopeSubtree, "(location=site007)"))
	if err != nil {
		return err
	}
	fmt.Printf("replica answered (location=site007): %d entry, %d total round trips\n",
		len(locHit.Entries), resolver.RoundTrips())

	miss, err := resolver.SearchChasing("replica",
		filterdir.MustParseQuery("o=xyz", filterdir.ScopeSubtree,
			fmt.Sprintf("(mail=%s)", dir.Employees[0].Mail)))
	if err != nil {
		return err
	}
	fmt.Printf("replica referred (mail=...): %d entry via master, %d total round trips\n\n",
		len(miss.Entries), resolver.RoundTrips())

	// Paged, server-side-sorted search straight at the master.
	pageClient, err := filterdir.DialDirectory(masterSrv.Addr())
	if err != nil {
		return err
	}
	defer pageClient.Close()
	paged, err := pageClient.SearchPaged(
		filterdir.MustParseQuery("ou=locations,o=xyz", filterdir.ScopeSubtree, "(objectclass=location)"), 8)
	if err != nil {
		return err
	}
	fmt.Printf("paged search: %d location entries in pages of 8 (%d round trips)\n",
		len(paged.Entries), pageClient.RoundTrips())

	sorted, err := pageClient.SearchWith(
		filterdir.MustParseQuery("ou=locations,o=xyz", filterdir.ScopeSubtree, "(objectclass=location)"),
		filterdir.NewSortControl(filterdir.SortKey{Attr: "location", Reverse: true}))
	if err != nil {
		return err
	}
	fmt.Printf("sorted search: first=%s last=%s (descending)\n",
		sorted.Entries[0].First("location"), sorted.Entries[len(sorted.Entries)-1].First("location"))
	return nil
}
