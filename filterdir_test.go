package filterdir_test

import (
	"fmt"
	"testing"

	"filterdir"
	"filterdir/internal/proto"
	"filterdir/internal/resync"
)

// buildMaster populates a small enterprise master through the public API.
func buildMaster(t *testing.T) *filterdir.Directory {
	t.Helper()
	master, err := filterdir.NewDirectory([]string{"o=xyz"},
		filterdir.WithIndexes("serialnumber", "mail"),
		filterdir.WithSchema(filterdir.DefaultSchema()))
	if err != nil {
		t.Fatal(err)
	}
	add := func(dnStr string, attrs map[string][]string) {
		t.Helper()
		e := filterdir.NewEntry(filterdir.MustParseDN(dnStr))
		for k, v := range attrs {
			e.Put(k, v...)
		}
		if err := master.Add(e); err != nil {
			t.Fatalf("add %s: %v", dnStr, err)
		}
	}
	add("o=xyz", map[string][]string{"objectclass": {"organization"}, "o": {"xyz"}})
	add("c=us,o=xyz", map[string][]string{"objectclass": {"country"}, "c": {"us"}})
	add("c=in,o=xyz", map[string][]string{"objectclass": {"country"}, "c": {"in"}})
	for i := 0; i < 6; i++ {
		cc := "us"
		if i >= 4 {
			cc = "in"
		}
		add(fmt.Sprintf("cn=p%d,c=%s,o=xyz", i, cc), map[string][]string{
			"objectclass":  {"top", "person", "organizationalPerson", "inetOrgPerson"},
			"cn":           {fmt.Sprintf("p%d", i)},
			"sn":           {fmt.Sprintf("s%d", i)},
			"serialNumber": {fmt.Sprintf("%s04%02d", map[string]string{"us": "10", "in": "11"}[cc], i)},
			"mail":         {fmt.Sprintf("p%d@%s.xyz.com", i, cc)},
		})
	}
	return master
}

// TestPublicAPIEndToEnd drives the whole stack through the facade: a master
// served over TCP, a filter replica synchronized over the wire, containment
// answering, and update propagation.
func TestPublicAPIEndToEnd(t *testing.T) {
	master := buildMaster(t)

	srv, err := filterdir.ServeDirectory("127.0.0.1:0", master)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := filterdir.DialDirectory(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Bind("", ""); err != nil {
		t.Fatal(err)
	}

	// Replicate the cross-country generalized filter over the wire.
	rep, err := filterdir.NewFilterReplica(filterdir.WithCacheCapacity(4))
	if err != nil {
		t.Fatal(err)
	}
	spec := filterdir.MustParseQuery("", filterdir.ScopeSubtree, "(|(serialNumber=1004*)(serialNumber=1104*))")
	sync, err := client.Sync(spec, proto.ReSyncModePoll, "")
	if err != nil {
		t.Fatal(err)
	}
	rep.AddStored(spec, sync.Cookie)
	if err := rep.ApplySync(spec, sync.Updates); err != nil {
		t.Fatal(err)
	}
	if rep.EntryCount() != 6 {
		t.Fatalf("replica holds %d entries, want 6", rep.EntryCount())
	}

	// Containment-based answering, spanning both country subtrees.
	entries, hit, _ := rep.Answer(filterdir.MustParseQuery("", filterdir.ScopeSubtree, "(serialNumber=110404)"))
	if !hit || len(entries) != 1 || entries[0].First("cn") != "p4" {
		t.Fatalf("cross-country answer: hit=%v entries=%v", hit, entries)
	}
	if _, hit, _ := rep.Answer(filterdir.MustParseQuery("", filterdir.ScopeSubtree, "(mail=p0@us.xyz.com)")); hit {
		t.Fatal("uncontained query must miss")
	}

	// A master-side update propagates through a wire poll.
	if err := master.Delete(filterdir.MustParseDN("cn=p1,c=us,o=xyz")); err != nil {
		t.Fatal(err)
	}
	poll, err := client.Sync(spec, proto.ReSyncModePoll, sync.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	if len(poll.Updates) != 1 || poll.Updates[0].Action != resync.ActionDelete {
		t.Fatalf("poll = %+v", poll.Updates)
	}
	if err := rep.ApplySync(spec, poll.Updates); err != nil {
		t.Fatal(err)
	}
	if rep.EntryCount() != 5 {
		t.Fatalf("replica holds %d entries after delete", rep.EntryCount())
	}

	// Containment also works standalone through the facade.
	q := filterdir.MustParseQuery("c=us,o=xyz", filterdir.ScopeSubtree, "(serialNumber=100400)")
	if !filterdir.QueryContained(q, spec) {
		t.Error("QueryContained: scoped query not contained in null-base stored query")
	}
}

func TestPublicAPISubtreeReplica(t *testing.T) {
	master := buildMaster(t)
	us := filterdir.MustParseDN("c=us,o=xyz")
	sub, err := filterdir.NewSubtreeReplica([]filterdir.Context{{Suffix: us}})
	if err != nil {
		t.Fatal(err)
	}
	eng := filterdir.NewSyncEngine(master)
	spec := filterdir.Query{Base: us, Scope: filterdir.ScopeSubtree}
	res, err := eng.Begin(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Load parents-first.
	for depth := 0; depth <= 4; depth++ {
		for _, u := range res.Updates {
			if u.DN.Depth() == depth {
				if err := sub.Store().Upsert(u.Entry); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if _, hit := sub.Answer(filterdir.MustParseQuery("c=us,o=xyz", filterdir.ScopeSubtree, "(sn=s0)")); !hit {
		t.Error("scoped query inside the replicated subtree must hit")
	}
	if _, hit := sub.Answer(filterdir.MustParseQuery("", filterdir.ScopeSubtree, "(sn=s0)")); hit {
		t.Error("null-base query must miss a subtree replica")
	}
	m := sub.Metrics()
	if m.Queries != 2 || m.Hits != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestPublicAPISelection(t *testing.T) {
	master := buildMaster(t)
	gen := filterdir.NewGeneralizer(filterdir.PrefixRule("serialnumber", 4))
	sizeOf := func(q filterdir.Query) int { return len(master.MatchAll(q)) }
	sel := filterdir.NewSelector(gen, sizeOf, 10, 0)
	for i := 0; i < 8; i++ {
		sel.Observe(filterdir.MustParseQuery("", filterdir.ScopeSubtree, "(serialnumber=100401)"))
	}
	d := sel.ForceRevolution()
	if d == nil || len(d.Add) != 1 {
		t.Fatalf("revolution delta = %+v", d)
	}
	if got := d.Add[0].FilterString(); got != "(serialnumber=1004*)" {
		t.Errorf("selected filter = %s", got)
	}
}

func TestPublicAPIExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	cfg := filterdir.DefaultExperimentConfig()
	cfg.Employees = 1200
	cfg.MeasureQueries = 800
	cfg.WarmupQueries = 800
	cfg.Updates = 400
	fig, err := filterdir.RunExperiment("table1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fig.SeriesByName("measured %") == nil {
		t.Error("experiment produced no measured series")
	}
}

func TestPublicAPIDurableDirectory(t *testing.T) {
	path := t.TempDir() + "/data"
	master := buildMaster(t)
	home := filterdir.DataDir{Path: path}
	if err := home.Checkpoint(master); err != nil {
		t.Fatal(err)
	}
	w := master.LastCSN()
	if err := master.Delete(filterdir.MustParseDN("cn=p0,c=us,o=xyz")); err != nil {
		t.Fatal(err)
	}
	if _, err := home.AppendChanges(master, w); err != nil {
		t.Fatal(err)
	}
	recovered, err := filterdir.OpenDataDir(path, []string{"o=xyz"})
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Len() != master.Len() {
		t.Errorf("recovered %d entries, want %d", recovered.Len(), master.Len())
	}
	if _, ok := recovered.Get(filterdir.MustParseDN("cn=p0,c=us,o=xyz")); ok {
		t.Error("journaled delete not replayed")
	}
}

func TestPublicAPIPagedSearch(t *testing.T) {
	master := buildMaster(t)
	srv, err := filterdir.ServeDirectory("127.0.0.1:0", master)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := filterdir.DialDirectory(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.SearchPaged(filterdir.MustParseQuery("o=xyz", filterdir.ScopeSubtree, "(objectclass=inetorgperson)"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 6 {
		t.Errorf("paged entries = %d, want 6", len(res.Entries))
	}
	// Sorted search through the facade helper.
	sorted, err := c.SearchWith(
		filterdir.MustParseQuery("o=xyz", filterdir.ScopeSubtree, "(objectclass=inetorgperson)"),
		filterdir.NewSortControl(filterdir.SortKey{Attr: "serialnumber", Reverse: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(sorted.Entries) != 6 {
		t.Fatalf("sorted entries = %d", len(sorted.Entries))
	}
	if sorted.Entries[0].First("serialnumber") < sorted.Entries[5].First("serialnumber") {
		t.Error("descending sort not applied")
	}
}
