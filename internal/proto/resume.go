package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"filterdir/internal/ber"
)

// Resumable chunked reloads (DESIGN.md §14). A full (or reload-sized)
// transfer is serialized from one immutable snapshot into deterministic
// DN-ordered chunks; after each chunk the supplier hands the consumer a
// resume token naming exactly how far the transfer got. A reconnecting
// consumer presents the token and receives only the remainder. The token
// is the consumer's durable claim about received prefix state, so the
// supplier verifies every field — an unknown transfer, a different
// snapshot CSN, an out-of-range chunk index, or a fingerprint that does
// not match the recorded prefix all degrade to a fresh reload from chunk
// zero, never to corruption.

// OIDReSyncResume is attached both to a search request (the consumer
// presenting its token) and to the partial search-done of an incomplete
// chunked reload (the supplier minting the next token): value =
// SEQUENCE { session OCTET STRING, csn INTEGER, chunk INTEGER,
// chunks INTEGER, fingerprint OCTET STRING (8) }.
const OIDReSyncResume = "1.3.6.1.4.1.55555.1.6"

// ErrBadResumeToken marks a token that failed structural decoding. The
// verifier treats it exactly like a stale token: restart from chunk zero.
var ErrBadResumeToken = errors.New("malformed resume token")

// ResumeToken names a position inside one chunked reload: the supplier
// session and snapshot it belongs to, the next chunk the consumer needs,
// the transfer's total chunk count, and the running FNV-1a fingerprint of
// every entry PDU streamed in chunks [0, Chunk).
type ResumeToken struct {
	Session     string
	CSN         uint64
	Chunk       uint32
	Chunks      uint32
	Fingerprint uint64
}

// IsZero reports an absent token.
func (t ResumeToken) IsZero() bool { return t == ResumeToken{} }

// resumeTokenVersion tags the durable text form; a future format bump
// invalidates old checkpoints cleanly (parse error → fresh reload).
const resumeTokenVersion = "rt1"

// String renders the durable text form carried in supervisor checkpoints:
// "rt1:<session>:<csn>:<chunk>:<chunks>:<fp hex>". The session id never
// contains ':' (engine ids are "sess-N@gen"-free "sess-N" strings), but
// ParseResumeTokenString tolerates one anyway by splitting from the right.
func (t ResumeToken) String() string {
	return fmt.Sprintf("%s:%s:%d:%d:%d:%016x",
		resumeTokenVersion, t.Session, t.CSN, t.Chunk, t.Chunks, t.Fingerprint)
}

// ParseResumeTokenString decodes the durable text form; every failure is
// ErrBadResumeToken-typed so callers degrade instead of crash.
func ParseResumeTokenString(s string) (ResumeToken, error) {
	if s == "" {
		return ResumeToken{}, fmt.Errorf("%w: empty", ErrBadResumeToken)
	}
	parts := strings.Split(s, ":")
	if len(parts) < 6 {
		return ResumeToken{}, fmt.Errorf("%w: %d fields", ErrBadResumeToken, len(parts))
	}
	if parts[0] != resumeTokenVersion {
		return ResumeToken{}, fmt.Errorf("%w: version %q", ErrBadResumeToken, parts[0])
	}
	// A ':' inside the session id shifts everything right; rejoin the
	// middle so the four numeric fields always come from the tail.
	tail := parts[len(parts)-4:]
	session := strings.Join(parts[1:len(parts)-4], ":")
	if session == "" {
		return ResumeToken{}, fmt.Errorf("%w: empty session", ErrBadResumeToken)
	}
	csn, err := strconv.ParseUint(tail[0], 10, 64)
	if err != nil {
		return ResumeToken{}, fmt.Errorf("%w: csn %q", ErrBadResumeToken, tail[0])
	}
	chunk, err := strconv.ParseUint(tail[1], 10, 32)
	if err != nil {
		return ResumeToken{}, fmt.Errorf("%w: chunk %q", ErrBadResumeToken, tail[1])
	}
	chunks, err := strconv.ParseUint(tail[2], 10, 32)
	if err != nil {
		return ResumeToken{}, fmt.Errorf("%w: chunks %q", ErrBadResumeToken, tail[2])
	}
	fp, err := strconv.ParseUint(tail[3], 16, 64)
	if err != nil || len(tail[3]) != 16 {
		return ResumeToken{}, fmt.Errorf("%w: fingerprint %q", ErrBadResumeToken, tail[3])
	}
	return ResumeToken{Session: session, CSN: csn, Chunk: uint32(chunk),
		Chunks: uint32(chunks), Fingerprint: fp}, nil
}

// NewReSyncResumeControl builds the resume-token control. Request-side it
// is critical (a supplier that does not understand resumption must refuse
// rather than silently restart a transfer the consumer believes is half
// done); response-side the server reuses the same encoding uncritically.
func NewReSyncResumeControl(t ResumeToken, critical bool) Control {
	var fp [8]byte
	binary.BigEndian.PutUint64(fp[:], t.Fingerprint)
	var body []byte
	body = ber.AppendString(body, ber.ClassUniversal, ber.TagOctetString, t.Session)
	body = ber.AppendInt(body, ber.ClassUniversal, ber.TagInteger, int64(t.CSN))
	body = ber.AppendInt(body, ber.ClassUniversal, ber.TagInteger, int64(t.Chunk))
	body = ber.AppendInt(body, ber.ClassUniversal, ber.TagInteger, int64(t.Chunks))
	body = ber.AppendTLV(body, ber.ClassUniversal, false, ber.TagOctetString, fp[:])
	return Control{OID: OIDReSyncResume, Criticality: critical, Value: ber.AppendSequence(nil, body)}
}

// ParseReSyncResume decodes the resume-token control value. Every failure
// is ErrBadResumeToken-typed: a mutated or truncated token is a protocol
// fact to degrade on, not a crash.
func ParseReSyncResume(c Control) (ResumeToken, error) {
	rd := ber.NewReader(c.Value)
	seq, err := rd.ReadSequence()
	if err != nil {
		return ResumeToken{}, fmt.Errorf("%w: %v", ErrBadResumeToken, err)
	}
	var t ResumeToken
	if t.Session, err = seq.ReadString(); err != nil {
		return ResumeToken{}, fmt.Errorf("%w: session: %v", ErrBadResumeToken, err)
	}
	csn, err := seq.ReadInt()
	if err != nil || csn < 0 {
		return ResumeToken{}, fmt.Errorf("%w: csn", ErrBadResumeToken)
	}
	t.CSN = uint64(csn)
	chunk, err := seq.ReadInt()
	if err != nil || chunk < 0 || chunk > int64(^uint32(0)) {
		return ResumeToken{}, fmt.Errorf("%w: chunk", ErrBadResumeToken)
	}
	t.Chunk = uint32(chunk)
	chunks, err := seq.ReadInt()
	if err != nil || chunks < 0 || chunks > int64(^uint32(0)) {
		return ResumeToken{}, fmt.Errorf("%w: chunks", ErrBadResumeToken)
	}
	t.Chunks = uint32(chunks)
	h, fp, err := seq.Read()
	if err != nil || !h.Is(ber.ClassUniversal, ber.TagOctetString) || len(fp) != 8 {
		return ResumeToken{}, fmt.Errorf("%w: fingerprint", ErrBadResumeToken)
	}
	t.Fingerprint = binary.BigEndian.Uint64(fp)
	return t, nil
}
