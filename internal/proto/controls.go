package proto

import (
	"fmt"

	"filterdir/internal/ber"
)

// Control is an LDAP control attached to a message.
type Control struct {
	OID         string
	Criticality bool
	Value       []byte
}

func (c Control) append(dst []byte) []byte {
	var body []byte
	body = ber.AppendString(body, ber.ClassUniversal, ber.TagOctetString, c.OID)
	if c.Criticality {
		body = ber.AppendBool(body, true)
	}
	if c.Value != nil {
		body = ber.AppendTLV(body, ber.ClassUniversal, false, ber.TagOctetString, c.Value)
	}
	return ber.AppendSequence(dst, body)
}

func parseControls(data []byte) ([]Control, error) {
	rd := ber.NewReader(data)
	var out []Control
	for !rd.Empty() {
		seq, err := rd.ReadSequence()
		if err != nil {
			return nil, fmt.Errorf("control: %w", err)
		}
		var c Control
		if c.OID, err = seq.ReadString(); err != nil {
			return nil, err
		}
		for !seq.Empty() {
			h, content, err := seq.Read()
			if err != nil {
				return nil, err
			}
			switch {
			case h.Is(ber.ClassUniversal, ber.TagBoolean):
				c.Criticality = len(content) == 1 && content[0] != 0
			case h.Is(ber.ClassUniversal, ber.TagOctetString):
				c.Value = append([]byte(nil), content...)
			}
		}
		out = append(out, c)
	}
	return out, nil
}

// Control OIDs (private-enterprise arc chosen for this implementation).
const (
	// OIDReSyncRequest is attached to a search request to run the ReSync
	// protocol: value = SEQUENCE { mode ENUMERATED, cookie OCTET STRING }.
	OIDReSyncRequest = "1.3.6.1.4.1.55555.1.1"
	// OIDReSyncDone is attached to the final search-done of a ReSync
	// response: value = SEQUENCE { cookie OCTET STRING }.
	OIDReSyncDone = "1.3.6.1.4.1.55555.1.2"
	// OIDEntryChange is attached to each update PDU of a ReSync response:
	// value = SEQUENCE { action ENUMERATED, cookie OCTET STRING OPTIONAL,
	// csn INTEGER OPTIONAL }. The cookie appears on the last PDU of a
	// persist-mode batch, naming the sync point the replica reaches by
	// applying the batch; the csn rides beside it, echoing the master CSN
	// the batch syncs the consumer to (the signal an edge-writing replica
	// uses to retire pending ops).
	OIDEntryChange = "1.3.6.1.4.1.55555.1.3"
	// OIDEdgeWrite is attached to an update request forwarded up the
	// cascade by an edge-writing replica: value = SEQUENCE { opid OCTET
	// STRING }. The opid is the replica's durable op identifier; the master
	// dedups by it, making WAL replays after a crash exactly-once.
	OIDEdgeWrite = "1.3.6.1.4.1.55555.1.4"
	// OIDEdgeWriteDone is attached to the update response: value =
	// SEQUENCE { csn INTEGER, duplicate BOOLEAN }. The csn is the
	// master-assigned sequence number the origin replica matches against
	// its ReSync stream; duplicate reports the op id was already applied.
	OIDEdgeWriteDone = "1.3.6.1.4.1.55555.1.5"
	// OIDFiltersWatch is attached to a search request to subscribe to the
	// server's admission-filter generation: value = SEQUENCE { generation
	// INTEGER }. The server holds the operation open until its stored
	// filter set advances past the presented generation (0 = whatever
	// generation is current when the watch is established), then answers
	// the search-done carrying OIDFiltersChanged. A diverted supervisor
	// uses it to re-probe a tier the moment it widens, instead of waiting
	// out the retry timer.
	OIDFiltersWatch = "1.3.6.1.4.1.55555.1.8"
	// OIDFiltersChanged is attached to the search-done answering a filters
	// watch: value = SEQUENCE { generation INTEGER }, the server's current
	// filter generation.
	OIDFiltersChanged = "1.3.6.1.4.1.55555.1.9"
	// OIDPersistentSearch requests change notification on a plain search,
	// per the persistent-search draft the paper builds on.
	OIDPersistentSearch = "2.16.840.1.113730.3.4.3"
)

// NewFiltersWatchControl subscribes to the server's admission-filter
// generation (see OIDFiltersWatch).
func NewFiltersWatchControl(generation uint64) Control {
	var body []byte
	body = ber.AppendInt(body, ber.ClassUniversal, ber.TagInteger, int64(generation))
	return Control{OID: OIDFiltersWatch, Criticality: true, Value: ber.AppendSequence(nil, body)}
}

// ParseFiltersWatch decodes a filters-watch request control.
func ParseFiltersWatch(c Control) (generation uint64, err error) {
	rd := ber.NewReader(c.Value)
	seq, err := rd.ReadSequence()
	if err != nil {
		return 0, fmt.Errorf("filters watch control: %w", err)
	}
	n, err := seq.ReadInt()
	if err != nil {
		return 0, err
	}
	return uint64(n), nil
}

// NewFiltersChangedControl carries the server's current filter generation on
// the search-done answering a watch (see OIDFiltersChanged).
func NewFiltersChangedControl(generation uint64) Control {
	var body []byte
	body = ber.AppendInt(body, ber.ClassUniversal, ber.TagInteger, int64(generation))
	return Control{OID: OIDFiltersChanged, Value: ber.AppendSequence(nil, body)}
}

// ParseFiltersChanged decodes a filters-changed response control.
func ParseFiltersChanged(c Control) (generation uint64, err error) {
	rd := ber.NewReader(c.Value)
	seq, err := rd.ReadSequence()
	if err != nil {
		return 0, fmt.Errorf("filters changed control: %w", err)
	}
	n, err := seq.ReadInt()
	if err != nil {
		return 0, err
	}
	return uint64(n), nil
}

// ReSyncMode is the synchronization mode requested by a replica.
type ReSyncMode int

// ReSync modes per Section 5.2.
const (
	ReSyncModePoll ReSyncMode = iota + 1
	ReSyncModePersist
	ReSyncModeSyncEnd
	// ReSyncModeRetain requests the incomplete-history synchronization of
	// equation (3): unchanged entries are conveyed with retain actions.
	ReSyncModeRetain
)

func (m ReSyncMode) String() string {
	switch m {
	case ReSyncModePoll:
		return "poll"
	case ReSyncModePersist:
		return "persist"
	case ReSyncModeSyncEnd:
		return "sync_end"
	case ReSyncModeRetain:
		return "retain"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ReSyncRequest is the decoded reSyncControl = (mode, cookie).
type ReSyncRequest struct {
	Mode   ReSyncMode
	Cookie string
}

// NewReSyncRequestControl builds the request control.
func NewReSyncRequestControl(mode ReSyncMode, cookie string) Control {
	var body []byte
	body = ber.AppendEnum(body, int64(mode))
	body = ber.AppendString(body, ber.ClassUniversal, ber.TagOctetString, cookie)
	return Control{OID: OIDReSyncRequest, Criticality: true, Value: ber.AppendSequence(nil, body)}
}

// ParseReSyncRequest decodes the control value.
func ParseReSyncRequest(c Control) (ReSyncRequest, error) {
	rd := ber.NewReader(c.Value)
	seq, err := rd.ReadSequence()
	if err != nil {
		return ReSyncRequest{}, fmt.Errorf("resync control: %w", err)
	}
	mode, err := seq.ReadEnum()
	if err != nil {
		return ReSyncRequest{}, err
	}
	cookie, err := seq.ReadString()
	if err != nil {
		return ReSyncRequest{}, err
	}
	return ReSyncRequest{Mode: ReSyncMode(mode), Cookie: cookie}, nil
}

// NewReSyncDoneControl carries the session cookie back on the search-done,
// plus the master CSN the exchange syncs the consumer to (0 omits it, for
// engines without a CSN watermark).
func NewReSyncDoneControl(cookie string, fullReload bool, csn uint64) Control {
	var body []byte
	body = ber.AppendString(body, ber.ClassUniversal, ber.TagOctetString, cookie)
	body = ber.AppendBool(body, fullReload)
	if csn > 0 {
		body = ber.AppendInt(body, ber.ClassUniversal, ber.TagInteger, int64(csn))
	}
	return Control{OID: OIDReSyncDone, Value: ber.AppendSequence(nil, body)}
}

// ParseReSyncDone decodes the done control; csn is 0 when the server did
// not stamp one.
func ParseReSyncDone(c Control) (cookie string, fullReload bool, csn uint64, err error) {
	rd := ber.NewReader(c.Value)
	seq, err := rd.ReadSequence()
	if err != nil {
		return "", false, 0, fmt.Errorf("resync done control: %w", err)
	}
	if cookie, err = seq.ReadString(); err != nil {
		return "", false, 0, err
	}
	if fullReload, err = seq.ReadBool(); err != nil {
		return "", false, 0, err
	}
	if !seq.Empty() {
		n, err := seq.ReadInt()
		if err != nil {
			return "", false, 0, err
		}
		csn = uint64(n)
	}
	return cookie, fullReload, csn, nil
}

// ChangeAction is the client action carried on an update PDU.
type ChangeAction int

// Update actions per Section 5.2.
const (
	ChangeActionAdd ChangeAction = iota + 1
	ChangeActionDelete
	ChangeActionModify
	ChangeActionRetain
)

func (a ChangeAction) String() string {
	switch a {
	case ChangeActionAdd:
		return "add"
	case ChangeActionDelete:
		return "delete"
	case ChangeActionModify:
		return "modify"
	case ChangeActionRetain:
		return "retain"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// NewEntryChangeControl labels an update PDU with its action. A non-empty
// cookie marks the PDU as the last of a pushed batch: applying everything
// up to and including it brings the replica to the named sync point. The
// csn (0 to omit) rides only with a cookie, echoing the master CSN the
// batch syncs the consumer to.
func NewEntryChangeControl(action ChangeAction, cookie string, csn uint64) Control {
	var body []byte
	body = ber.AppendEnum(body, int64(action))
	if cookie != "" {
		body = ber.AppendString(body, ber.ClassUniversal, ber.TagOctetString, cookie)
		if csn > 0 {
			body = ber.AppendInt(body, ber.ClassUniversal, ber.TagInteger, int64(csn))
		}
	}
	return Control{OID: OIDEntryChange, Value: ber.AppendSequence(nil, body)}
}

// ParseEntryChange decodes an entry-change control; cookie is "" (and csn
// 0) except on the final PDU of a pushed batch.
func ParseEntryChange(c Control) (ChangeAction, string, uint64, error) {
	rd := ber.NewReader(c.Value)
	seq, err := rd.ReadSequence()
	if err != nil {
		return 0, "", 0, fmt.Errorf("entry change control: %w", err)
	}
	a, err := seq.ReadEnum()
	if err != nil {
		return 0, "", 0, err
	}
	var cookie string
	var csn uint64
	if !seq.Empty() {
		if cookie, err = seq.ReadString(); err != nil {
			return 0, "", 0, err
		}
	}
	if !seq.Empty() {
		n, err := seq.ReadInt()
		if err != nil {
			return 0, "", 0, err
		}
		csn = uint64(n)
	}
	return ChangeAction(a), cookie, csn, nil
}

// NewEdgeWriteControl marks an update request as an edge-originated write
// forwarded from a replica, carrying the replica's durable op id.
func NewEdgeWriteControl(opID string) Control {
	var body []byte
	body = ber.AppendString(body, ber.ClassUniversal, ber.TagOctetString, opID)
	return Control{OID: OIDEdgeWrite, Criticality: true, Value: ber.AppendSequence(nil, body)}
}

// ParseEdgeWrite decodes an edge-write request control.
func ParseEdgeWrite(c Control) (opID string, err error) {
	rd := ber.NewReader(c.Value)
	seq, err := rd.ReadSequence()
	if err != nil {
		return "", fmt.Errorf("edge write control: %w", err)
	}
	return seq.ReadString()
}

// NewEdgeWriteDoneControl carries the sequencer's answer back on the
// update response: the assigned CSN and whether the op id was a replay.
func NewEdgeWriteDoneControl(csn uint64, duplicate bool) Control {
	var body []byte
	body = ber.AppendInt(body, ber.ClassUniversal, ber.TagInteger, int64(csn))
	body = ber.AppendBool(body, duplicate)
	return Control{OID: OIDEdgeWriteDone, Value: ber.AppendSequence(nil, body)}
}

// ParseEdgeWriteDone decodes an edge-write response control.
func ParseEdgeWriteDone(c Control) (csn uint64, duplicate bool, err error) {
	rd := ber.NewReader(c.Value)
	seq, err := rd.ReadSequence()
	if err != nil {
		return 0, false, fmt.Errorf("edge write done control: %w", err)
	}
	n, err := seq.ReadInt()
	if err != nil {
		return 0, false, err
	}
	if duplicate, err = seq.ReadBool(); err != nil {
		return 0, false, err
	}
	return uint64(n), duplicate, nil
}

// NewPersistentSearchControl requests plain persistent search (changes only
// pushed on the open connection).
func NewPersistentSearchControl() Control {
	var body []byte
	body = ber.AppendInt(body, ber.ClassUniversal, ber.TagInteger, 15) // all change types
	body = ber.AppendBool(body, false)                                 // changesOnly
	body = ber.AppendBool(body, false)                                 // returnECs
	return Control{OID: OIDPersistentSearch, Criticality: true, Value: ber.AppendSequence(nil, body)}
}
