package proto

import (
	"bytes"
	"testing"
)

// writeRequestSeeds builds one well-formed PDU per write operation —
// including the edge-write forwarding control — as the fuzz corpus.
func writeRequestSeeds() [][]byte {
	msgs := []*Message{
		{ID: 1, Op: &AddRequest{DN: "cn=a,o=xyz", Attrs: []Attribute{
			{Type: "objectclass", Values: []string{"person"}},
			{Type: "cn", Values: []string{"a"}},
			{Type: "sn", Values: []string{"a", "b"}},
		}}},
		{ID: 2, Op: &DelRequest{DN: "cn=gone,o=xyz"}},
		{ID: 3, Op: &ModifyRequest{DN: "cn=m,o=xyz", Changes: []ModifyChange{
			{Op: ModifyOpAdd, Attr: Attribute{Type: "phone", Values: []string{"123"}}},
			{Op: ModifyOpDelete, Attr: Attribute{Type: "fax"}},
			{Op: ModifyOpReplace, Attr: Attribute{Type: "mail", Values: []string{"x@y", "z@y"}}},
		}}},
		{ID: 4, Op: &ModifyDNRequest{DN: "cn=r,o=xyz", NewRDN: "cn=s", DeleteOldRDN: true, NewSuperior: "ou=n,o=xyz"}},
		{ID: 5, Op: &AddRequest{DN: "cn=fwd,o=xyz", Attrs: []Attribute{{Type: "sn", Values: []string{"f"}}}},
			Controls: []Control{NewEdgeWriteControl("r1.42")}},
		{ID: 6, Op: &DelRequest{DN: "cn=fwd,o=xyz"},
			Controls: []Control{NewEdgeWriteControl("replica-a.7")}},
	}
	var out [][]byte
	for _, m := range msgs {
		b, err := m.Encode()
		if err != nil {
			panic(err)
		}
		out = append(out, b)
	}
	return out
}

// FuzzDecodeWriteRequest feeds arbitrary bytes to the full message decoder
// with a corpus of well-formed add/delete/modify/modifyDN request PDUs
// (the edge-write ingress surface: a replica accepting writes parses these
// from untrusted clients). Property: Decode never panics, and every
// successfully decoded write request survives an encode→decode→encode
// round trip byte-identically — the stability the WAL replay and
// forwarding paths rely on.
func FuzzDecodeWriteRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x30, 0x03, 0x02, 0x01, 0x01})
	for _, seed := range writeRequestSeeds() {
		f.Add(seed)
		if len(seed) > 4 {
			f.Add(seed[:len(seed)-3]) // truncated mid-operation
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // malformed input must error, not panic
		}
		switch m.Op.(type) {
		case *AddRequest, *DelRequest, *ModifyRequest, *ModifyDNRequest:
		default:
			return
		}
		enc1, err := m.Encode()
		if err != nil {
			t.Fatalf("decoded write request does not re-encode: %v (%+v)", err, m.Op)
		}
		m2, err := Decode(enc1)
		if err != nil {
			t.Fatalf("re-encoded write request does not decode: %v", err)
		}
		enc2, err := m2.Encode()
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("write request round trip unstable:\n  first  %x\n  second %x", enc1, enc2)
		}
	})
}
