package proto

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"

	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/filter"
	"filterdir/internal/query"
)

// roundTrip encodes a message and decodes it back.
func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	enc, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.ID != m.ID {
		t.Errorf("ID = %d, want %d", got.ID, m.ID)
	}
	return got
}

func TestBindRoundTrip(t *testing.T) {
	m := &Message{ID: 1, Op: &BindRequest{Version: 3, Name: "cn=admin", Password: "secret"}}
	got := roundTrip(t, m)
	b, ok := got.Op.(*BindRequest)
	if !ok {
		t.Fatalf("op type %T", got.Op)
	}
	if b.Version != 3 || b.Name != "cn=admin" || b.Password != "secret" {
		t.Errorf("bind fields: %+v", b)
	}

	resp := &Message{ID: 1, Op: &BindResponse{resultOp{Result{Code: ResultSuccess}}}}
	got = roundTrip(t, resp)
	if r, ok := got.Op.(*BindResponse); !ok || r.Code != ResultSuccess {
		t.Errorf("bind response: %#v", got.Op)
	}
}

func TestSearchRequestRoundTrip(t *testing.T) {
	filters := []string{
		"(objectclass=*)",
		"(sn=Doe)",
		"(&(objectclass=inetorgperson)(serialnumber=04*))",
		"(|(a=1)(!(b=2)))",
		"(age>=30)",
		"(age<=30)",
		"(sn=a*b*c)",
		"(sn=*final)",
		"(&)",
		"(|)",
	}
	for _, f := range filters {
		q := query.MustNew("c=us,o=xyz", query.ScopeSubtree, f, "cn", "mail")
		m := &Message{ID: 2, Op: &SearchRequest{Query: q, SizeLimit: 100}}
		got := roundTrip(t, m)
		sr, ok := got.Op.(*SearchRequest)
		if !ok {
			t.Fatalf("op type %T", got.Op)
		}
		if !sr.Query.Base.Equal(q.Base) || sr.Query.Scope != q.Scope {
			t.Errorf("base/scope mismatch for %s", f)
		}
		want := filter.MustParse(f).String()
		if sr.Query.Filter.String() != want {
			t.Errorf("filter round trip: got %s, want %s", sr.Query.Filter, want)
		}
		if !reflect.DeepEqual(sr.Query.Attrs, q.Attrs) {
			t.Errorf("attrs mismatch: %v vs %v", sr.Query.Attrs, q.Attrs)
		}
		if sr.SizeLimit != 100 {
			t.Errorf("size limit = %d", sr.SizeLimit)
		}
	}
}

func TestSearchEntryRoundTrip(t *testing.T) {
	e := entry.New(dn.MustParse("cn=John Doe,c=us,o=xyz"))
	e.Put("objectclass", "person", "inetOrgPerson")
	e.Put("cn", "John Doe")
	e.Put("mail", "j@x")
	m := &Message{ID: 3, Op: EntryToWire(e)}
	got := roundTrip(t, m)
	se, ok := got.Op.(*SearchEntry)
	if !ok {
		t.Fatalf("op type %T", got.Op)
	}
	back, err := se.Entry()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(e) {
		t.Errorf("entry mismatch:\n got %s\nwant %s", back, e)
	}
}

func TestSearchReferenceAndDone(t *testing.T) {
	m := &Message{ID: 4, Op: &SearchReference{URLs: []string{"ldap://hostB/c=us,o=xyz", "ldap://hostC"}}}
	got := roundTrip(t, m)
	ref, ok := got.Op.(*SearchReference)
	if !ok || len(ref.URLs) != 2 || ref.URLs[0] != "ldap://hostB/c=us,o=xyz" {
		t.Errorf("reference: %#v", got.Op)
	}

	done := &Message{ID: 4, Op: &SearchDone{resultOp{Result{
		Code: ResultReferral, Referrals: []string{"ldap://hostA"}}}}}
	got = roundTrip(t, done)
	d, ok := got.Op.(*SearchDone)
	if !ok || d.Code != ResultReferral || len(d.Referrals) != 1 {
		t.Errorf("done: %#v", got.Op)
	}
}

func TestUpdateOpsRoundTrip(t *testing.T) {
	add := &Message{ID: 5, Op: &AddRequest{DN: "cn=x,o=xyz", Attrs: []Attribute{
		{Type: "objectclass", Values: []string{"person"}},
		{Type: "cn", Values: []string{"x"}},
	}}}
	got := roundTrip(t, add)
	a, ok := got.Op.(*AddRequest)
	if !ok || a.DN != "cn=x,o=xyz" || len(a.Attrs) != 2 {
		t.Fatalf("add: %#v", got.Op)
	}

	del := &Message{ID: 6, Op: &DelRequest{DN: "cn=x,o=xyz"}}
	got = roundTrip(t, del)
	if d, ok := got.Op.(*DelRequest); !ok || d.DN != "cn=x,o=xyz" {
		t.Fatalf("del: %#v", got.Op)
	}

	mod := &Message{ID: 7, Op: &ModifyRequest{DN: "cn=x,o=xyz", Changes: []ModifyChange{
		{Op: ModifyOpReplace, Attr: Attribute{Type: "mail", Values: []string{"a@b"}}},
		{Op: ModifyOpDelete, Attr: Attribute{Type: "phone"}},
	}}}
	got = roundTrip(t, mod)
	mm, ok := got.Op.(*ModifyRequest)
	if !ok || len(mm.Changes) != 2 || mm.Changes[0].Op != ModifyOpReplace {
		t.Fatalf("modify: %#v", got.Op)
	}
	if len(mm.Changes[1].Attr.Values) != 0 {
		t.Errorf("empty value set decoded as %v", mm.Changes[1].Attr.Values)
	}

	mdn := &Message{ID: 8, Op: &ModifyDNRequest{DN: "cn=x,o=xyz", NewRDN: "cn=y",
		DeleteOldRDN: true, NewSuperior: "ou=new,o=xyz"}}
	got = roundTrip(t, mdn)
	md, ok := got.Op.(*ModifyDNRequest)
	if !ok || md.NewRDN != "cn=y" || !md.DeleteOldRDN || md.NewSuperior != "ou=new,o=xyz" {
		t.Fatalf("modifyDN: %#v", got.Op)
	}
}

func TestAbandonUnbindRoundTrip(t *testing.T) {
	m := &Message{ID: 9, Op: &AbandonRequest{MessageID: 4}}
	got := roundTrip(t, m)
	if a, ok := got.Op.(*AbandonRequest); !ok || a.MessageID != 4 {
		t.Fatalf("abandon: %#v", got.Op)
	}
	u := &Message{ID: 10, Op: &UnbindRequest{}}
	got = roundTrip(t, u)
	if _, ok := got.Op.(*UnbindRequest); !ok {
		t.Fatalf("unbind: %#v", got.Op)
	}
}

func TestControlsRoundTrip(t *testing.T) {
	m := &Message{ID: 11,
		Op:       &SearchRequest{Query: query.MustNew("o=xyz", query.ScopeSubtree, "(sn=*)")},
		Controls: []Control{NewReSyncRequestControl(ReSyncModePoll, "cookie-7")},
	}
	got := roundTrip(t, m)
	c, ok := got.Control(OIDReSyncRequest)
	if !ok {
		t.Fatal("resync control missing")
	}
	req, err := ParseReSyncRequest(c)
	if err != nil {
		t.Fatal(err)
	}
	if req.Mode != ReSyncModePoll || req.Cookie != "cookie-7" {
		t.Errorf("resync request: %+v", req)
	}
	if !c.Criticality {
		t.Error("resync control must be critical")
	}
}

func TestReSyncDoneControl(t *testing.T) {
	c := NewReSyncDoneControl("sess-9", true, 0)
	cookie, reload, csn, err := ParseReSyncDone(c)
	if err != nil || cookie != "sess-9" || !reload || csn != 0 {
		t.Errorf("done control: %q %v %d %v", cookie, reload, csn, err)
	}
	// The CSN-stamped form carries the supplier's commit watermark.
	c = NewReSyncDoneControl("sess-9", false, 42)
	cookie, reload, csn, err = ParseReSyncDone(c)
	if err != nil || cookie != "sess-9" || reload || csn != 42 {
		t.Errorf("done control with csn: %q %v %d %v", cookie, reload, csn, err)
	}
}

func TestEntryChangeControl(t *testing.T) {
	for _, a := range []ChangeAction{ChangeActionAdd, ChangeActionDelete, ChangeActionModify, ChangeActionRetain} {
		c := NewEntryChangeControl(a, "", 0)
		got, cookie, csn, err := ParseEntryChange(c)
		if err != nil || got != a || cookie != "" || csn != 0 {
			t.Errorf("entry change %v: got %v, %q, %d, %v", a, got, cookie, csn, err)
		}
	}
	// The batch-closing form carries the sync-point cookie and watermark.
	c := NewEntryChangeControl(ChangeActionModify, "sess-3@7", 9)
	got, cookie, csn, err := ParseEntryChange(c)
	if err != nil || got != ChangeActionModify || cookie != "sess-3@7" || csn != 9 {
		t.Errorf("entry change with cookie: got %v, %q, %d, %v", got, cookie, csn, err)
	}
}

func TestReadMessageStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*Message{
		{ID: 1, Op: &BindRequest{Version: 3}},
		{ID: 2, Op: &SearchRequest{Query: query.MustNew("", query.ScopeSubtree, "(objectclass=*)")}},
		{ID: 3, Op: &UnbindRequest{}},
	}
	for _, m := range msgs {
		if err := m.Write(&buf); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i, want := range msgs {
		got, err := ReadMessage(r)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.ID != want.ID {
			t.Errorf("message %d ID = %d", i, got.ID)
		}
	}
	if _, err := ReadMessage(r); err == nil {
		t.Error("expected EOF error after stream end")
	}
}

func TestDecodeGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x30},
		{0x31, 0x00},
		{0x30, 0x03, 0x02, 0x01},
		{0x30, 0x05, 0x02, 0x01, 0x01, 0x02, 0x00},
	}
	for _, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("Decode(% x) succeeded", c)
		}
	}
}

func TestNegatedPredicateEncoding(t *testing.T) {
	// An NNF filter with Neg flags must encode as (!(...)) on the wire.
	f := filter.MustParse("(!(sn=Doe))").NNF()
	q := query.Query{Scope: query.ScopeSubtree, Filter: f}
	m := &Message{ID: 12, Op: &SearchRequest{Query: q}}
	got := roundTrip(t, m)
	sr := got.Op.(*SearchRequest)
	if sr.Query.Filter.String() != "(!(sn=Doe))" {
		t.Errorf("negated predicate round trip: %s", sr.Query.Filter)
	}
}

func TestUnknownApplicationTag(t *testing.T) {
	// A syntactically valid message with an unassigned application tag.
	var body []byte
	body = append(body, 0x02, 0x01, 0x01) // messageID 1
	body = append(body, 0x7d, 0x00)       // application tag 29, empty
	msg := append([]byte{0x30, byte(len(body))}, body...)
	if _, err := Decode(msg); err == nil {
		t.Error("unknown application tag accepted")
	}
}

func TestResultCodeStrings(t *testing.T) {
	cases := map[ResultCode]string{
		ResultSuccess:             "success",
		ResultReferral:            "referral",
		ResultNoSuchObject:        "noSuchObject",
		ResultUnwillingToPerform:  "unwillingToPerform",
		ResultEntryAlreadyExists:  "entryAlreadyExists",
		ResultNotAllowedOnNonLeaf: "notAllowedOnNonLeaf",
		ResultCode(12345):         "resultCode(12345)",
	}
	for code, want := range cases {
		if got := code.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", code, got, want)
		}
	}
}

func TestReSyncModeStrings(t *testing.T) {
	cases := map[ReSyncMode]string{
		ReSyncModePoll:    "poll",
		ReSyncModePersist: "persist",
		ReSyncModeSyncEnd: "sync_end",
		ReSyncModeRetain:  "retain",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestControlNotFound(t *testing.T) {
	m := &Message{ID: 1, Op: &UnbindRequest{}}
	if _, ok := m.Control("1.2.3"); ok {
		t.Error("control found on message without controls")
	}
}

func TestOversizeMessageRejected(t *testing.T) {
	// A framed message claiming an absurd length must be rejected before
	// allocation.
	header := []byte{0x30, 0x84, 0x7f, 0xff, 0xff, 0xff}
	r := bufio.NewReader(bytes.NewReader(header))
	if _, err := ReadMessage(r); err == nil {
		t.Error("oversize message accepted")
	}
}

// TestSharedEncodingEquivalence pins the fan-out encoding contract: a
// message assembled from a pre-encoded op body (EncodeWithOpBody) or from a
// pre-encoded message tail (EncodeMessageTail + EncodeWithTail) must be
// byte-identical to the message encoded whole — a divergence would corrupt
// every session served from the shared memo.
func TestSharedEncodingEquivalence(t *testing.T) {
	e := entry.New(dn.MustParse("cn=Ann,o=xyz"))
	e.Put("objectclass", "person").Put("cn", "Ann").Put("sn", "A")
	ops := []struct {
		name string
		op   Op
	}{
		{"entry", EntryToWire(e)},
		{"dn-only", &SearchEntry{DN: "cn=Ann,o=xyz"}},
	}
	controlSets := [][]Control{
		nil,
		{NewEntryChangeControl(ChangeActionAdd, "", 0)},
		{NewEntryChangeControl(ChangeActionDelete, "sess-9@4", 3)},
	}
	for _, tc := range ops {
		for ci, controls := range controlSets {
			want, err := (&Message{ID: 7, Op: tc.op, Controls: controls}).Encode()
			if err != nil {
				t.Fatalf("%s/%d: Encode: %v", tc.name, ci, err)
			}
			body, err := EncodeOpBody(tc.op)
			if err != nil {
				t.Fatalf("%s/%d: EncodeOpBody: %v", tc.name, ci, err)
			}
			if got := EncodeWithOpBody(7, &SearchEntry{}, body, controls); !bytes.Equal(got, want) {
				t.Errorf("%s/%d: EncodeWithOpBody diverges from Message.Encode", tc.name, ci)
			}
			tail := EncodeMessageTail(&SearchEntry{}, body, controls)
			if got := EncodeWithTail(7, tail); !bytes.Equal(got, want) {
				t.Errorf("%s/%d: EncodeWithTail diverges from Message.Encode", tc.name, ci)
			}
			// The tail is message-ID independent: rewrapping under another
			// ID must equal that message's whole encoding.
			want2, err := (&Message{ID: 123456, Op: tc.op, Controls: controls}).Encode()
			if err != nil {
				t.Fatal(err)
			}
			if got := EncodeWithTail(123456, tail); !bytes.Equal(got, want2) {
				t.Errorf("%s/%d: tail rewrap under new ID diverges", tc.name, ci)
			}
		}
	}
}
