package proto

import (
	"fmt"

	"filterdir/internal/ber"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/query"
)

// Attribute is a wire attribute: a type plus its values.
type Attribute struct {
	Type   string
	Values []string
}

// BindRequest is a simple bind.
type BindRequest struct {
	Version int64
	Name    string
	// Password is the simple-authentication credential (context tag 0).
	Password string
}

func (*BindRequest) appTag() int { return tagBindRequest }

func (b *BindRequest) encodeBody(dst []byte) ([]byte, error) {
	dst = ber.AppendInt(dst, ber.ClassUniversal, ber.TagInteger, b.Version)
	dst = ber.AppendString(dst, ber.ClassUniversal, ber.TagOctetString, b.Name)
	dst = ber.AppendString(dst, ber.ClassContext, 0, b.Password)
	return dst, nil
}

// Result is the common LDAPResult body shared by responses.
type Result struct {
	Code      ResultCode
	MatchedDN string
	Message   string
	Referrals []string
}

func (r *Result) encode(dst []byte) []byte {
	dst = ber.AppendEnum(dst, int64(r.Code))
	dst = ber.AppendString(dst, ber.ClassUniversal, ber.TagOctetString, r.MatchedDN)
	dst = ber.AppendString(dst, ber.ClassUniversal, ber.TagOctetString, r.Message)
	if len(r.Referrals) > 0 {
		var refs []byte
		for _, u := range r.Referrals {
			refs = ber.AppendString(refs, ber.ClassUniversal, ber.TagOctetString, u)
		}
		dst = ber.AppendTLV(dst, ber.ClassContext, true, 3, refs)
	}
	return dst
}

func decodeResult(rd *ber.Reader) (Result, error) {
	var r Result
	code, err := rd.ReadEnum()
	if err != nil {
		return r, err
	}
	r.Code = ResultCode(code)
	if r.MatchedDN, err = rd.ReadString(); err != nil {
		return r, err
	}
	if r.Message, err = rd.ReadString(); err != nil {
		return r, err
	}
	if !rd.Empty() {
		h, content, err := rd.Read()
		if err != nil {
			return r, err
		}
		if h.Is(ber.ClassContext, 3) {
			refs := ber.NewReader(content)
			for !refs.Empty() {
				u, err := refs.ReadString()
				if err != nil {
					return r, err
				}
				r.Referrals = append(r.Referrals, u)
			}
		}
	}
	return r, nil
}

// resultOp is embedded by all plain-result responses.
type resultOp struct {
	Result
}

func (r *resultOp) encodeBody(dst []byte) ([]byte, error) { return r.Result.encode(dst), nil }

// BindResponse, SearchDone and friends are LDAPResult-bodied responses.
type (
	// BindResponse answers a bind.
	BindResponse struct{ resultOp }
	// SearchDone terminates a search result stream.
	SearchDone struct{ resultOp }
	// ModifyResponse answers a modify.
	ModifyResponse struct{ resultOp }
	// AddResponse answers an add.
	AddResponse struct{ resultOp }
	// DelResponse answers a delete.
	DelResponse struct{ resultOp }
	// ModifyDNResponse answers a modifyDN.
	ModifyDNResponse struct{ resultOp }
)

func (*BindResponse) appTag() int     { return tagBindResponse }
func (*SearchDone) appTag() int       { return tagSearchDone }
func (*ModifyResponse) appTag() int   { return tagModifyResponse }
func (*AddResponse) appTag() int      { return tagAddResponse }
func (*DelResponse) appTag() int      { return tagDelResponse }
func (*ModifyDNResponse) appTag() int { return tagModifyDNResponse }

// NewResultOp builds the appropriate response op for a result.
func newResult(code ResultCode, msg string, referrals []string) Result {
	return Result{Code: code, Message: msg, Referrals: referrals}
}

// UnbindRequest ends a connection.
type UnbindRequest struct{}

func (*UnbindRequest) appTag() int                           { return tagUnbindRequest }
func (*UnbindRequest) encodeBody(dst []byte) ([]byte, error) { return dst, nil }

// AbandonRequest cancels an outstanding operation.
type AbandonRequest struct {
	MessageID int64
}

func (*AbandonRequest) appTag() int { return tagAbandonRequest }

func (a *AbandonRequest) encodeBody(dst []byte) ([]byte, error) {
	// AbandonRequest ::= [APPLICATION 16] MessageID — the tag wraps a bare
	// integer, so the content is the integer's content octets.
	rd := ber.AppendInt(nil, ber.ClassUniversal, ber.TagInteger, a.MessageID)
	// Strip the outer header: content starts after identifier+length.
	return append(dst, rd[2:]...), nil
}

// SearchRequest is an LDAP search.
type SearchRequest struct {
	Query query.Query
	// SizeLimit bounds the number of entries returned (0 = unlimited).
	SizeLimit int64
	// TypesOnly requests attribute types without values.
	TypesOnly bool
}

func (*SearchRequest) appTag() int { return tagSearchRequest }

func (s *SearchRequest) encodeBody(dst []byte) ([]byte, error) {
	q := s.Query
	dst = ber.AppendString(dst, ber.ClassUniversal, ber.TagOctetString, q.Base.String())
	dst = ber.AppendEnum(dst, int64(q.Scope))
	dst = ber.AppendEnum(dst, 0) // derefAliases: never
	dst = ber.AppendInt(dst, ber.ClassUniversal, ber.TagInteger, s.SizeLimit)
	dst = ber.AppendInt(dst, ber.ClassUniversal, ber.TagInteger, 0) // timeLimit
	dst = ber.AppendBool(dst, s.TypesOnly)
	f, err := encodeFilter(nil, q.Filter)
	if err != nil {
		return nil, err
	}
	dst = append(dst, f...)
	var attrs []byte
	for _, a := range q.Attrs {
		attrs = ber.AppendString(attrs, ber.ClassUniversal, ber.TagOctetString, a)
	}
	dst = ber.AppendSequence(dst, attrs)
	return dst, nil
}

// SearchEntry carries one result entry.
type SearchEntry struct {
	DN    string
	Attrs []Attribute
}

func (*SearchEntry) appTag() int { return tagSearchEntry }

func (s *SearchEntry) encodeBody(dst []byte) ([]byte, error) {
	dst = ber.AppendString(dst, ber.ClassUniversal, ber.TagOctetString, s.DN)
	var attrs []byte
	for _, a := range s.Attrs {
		var one []byte
		one = ber.AppendString(one, ber.ClassUniversal, ber.TagOctetString, a.Type)
		var vals []byte
		for _, v := range a.Values {
			vals = ber.AppendString(vals, ber.ClassUniversal, ber.TagOctetString, v)
		}
		one = ber.AppendSet(one, vals)
		attrs = ber.AppendSequence(attrs, one)
	}
	dst = ber.AppendSequence(dst, attrs)
	return dst, nil
}

// Entry converts the wire entry to the model type.
func (s *SearchEntry) Entry() (*entry.Entry, error) {
	d, err := dn.Parse(s.DN)
	if err != nil {
		return nil, fmt.Errorf("search entry dn: %w", err)
	}
	e := entry.New(d)
	for _, a := range s.Attrs {
		e.Put(a.Type, a.Values...)
	}
	return e, nil
}

// EntryToWire converts a model entry to the wire form.
func EntryToWire(e *entry.Entry) *SearchEntry {
	se := &SearchEntry{DN: e.DN().String()}
	for _, name := range e.AttributeNames() {
		se.Attrs = append(se.Attrs, Attribute{Type: name, Values: e.Values(name)})
	}
	return se
}

// SearchReference is a continuation referral inside a search stream.
type SearchReference struct {
	URLs []string
}

func (*SearchReference) appTag() int { return tagSearchReference }

func (s *SearchReference) encodeBody(dst []byte) ([]byte, error) {
	for _, u := range s.URLs {
		dst = ber.AppendString(dst, ber.ClassUniversal, ber.TagOctetString, u)
	}
	return dst, nil
}

// AddRequest inserts an entry.
type AddRequest struct {
	DN    string
	Attrs []Attribute
}

func (*AddRequest) appTag() int { return tagAddRequest }

func (a *AddRequest) encodeBody(dst []byte) ([]byte, error) {
	se := SearchEntry{DN: a.DN, Attrs: a.Attrs}
	return se.encodeBody(dst)
}

// DelRequest removes an entry.
type DelRequest struct {
	DN string
}

func (*DelRequest) appTag() int { return tagDelRequest }

func (d *DelRequest) encodeBody(dst []byte) ([]byte, error) {
	// DelRequest ::= [APPLICATION 10] LDAPDN — bare string content.
	return append(dst, d.DN...), nil
}

// ModifyOp codes per RFC 2251.
const (
	ModifyOpAdd     = 0
	ModifyOpDelete  = 1
	ModifyOpReplace = 2
)

// ModifyChange is one change of a modify request.
type ModifyChange struct {
	Op   int64
	Attr Attribute
}

// ModifyRequest alters an entry's attributes.
type ModifyRequest struct {
	DN      string
	Changes []ModifyChange
}

func (*ModifyRequest) appTag() int { return tagModifyRequest }

func (m *ModifyRequest) encodeBody(dst []byte) ([]byte, error) {
	dst = ber.AppendString(dst, ber.ClassUniversal, ber.TagOctetString, m.DN)
	var changes []byte
	for _, c := range m.Changes {
		var one []byte
		one = ber.AppendEnum(one, c.Op)
		var mod []byte
		mod = ber.AppendString(mod, ber.ClassUniversal, ber.TagOctetString, c.Attr.Type)
		var vals []byte
		for _, v := range c.Attr.Values {
			vals = ber.AppendString(vals, ber.ClassUniversal, ber.TagOctetString, v)
		}
		mod = ber.AppendSet(mod, vals)
		one = ber.AppendSequence(one, mod)
		changes = ber.AppendSequence(changes, one)
	}
	dst = ber.AppendSequence(dst, changes)
	return dst, nil
}

// ModifyDNRequest renames or moves an entry.
type ModifyDNRequest struct {
	DN           string
	NewRDN       string
	DeleteOldRDN bool
	NewSuperior  string // context tag 0, optional
}

func (*ModifyDNRequest) appTag() int { return tagModifyDNRequest }

func (m *ModifyDNRequest) encodeBody(dst []byte) ([]byte, error) {
	dst = ber.AppendString(dst, ber.ClassUniversal, ber.TagOctetString, m.DN)
	dst = ber.AppendString(dst, ber.ClassUniversal, ber.TagOctetString, m.NewRDN)
	dst = ber.AppendBool(dst, m.DeleteOldRDN)
	if m.NewSuperior != "" {
		dst = ber.AppendString(dst, ber.ClassContext, 0, m.NewSuperior)
	}
	return dst, nil
}

// decodeOp dispatches on the application tag.
func decodeOp(tag int, content []byte) (Op, error) {
	rd := ber.NewReader(content)
	switch tag {
	case tagBindRequest:
		return decodeBindRequest(rd)
	case tagBindResponse:
		return wrapResult(rd, func(r Result) Op { return &BindResponse{resultOp{r}} })
	case tagUnbindRequest:
		return &UnbindRequest{}, nil
	case tagSearchRequest:
		return decodeSearchRequest(rd)
	case tagSearchEntry:
		return decodeSearchEntry(rd)
	case tagSearchDone:
		return wrapResult(rd, func(r Result) Op { return &SearchDone{resultOp{r}} })
	case tagSearchReference:
		ref := &SearchReference{}
		for !rd.Empty() {
			u, err := rd.ReadString()
			if err != nil {
				return nil, err
			}
			ref.URLs = append(ref.URLs, u)
		}
		return ref, nil
	case tagModifyRequest:
		return decodeModifyRequest(rd)
	case tagModifyResponse:
		return wrapResult(rd, func(r Result) Op { return &ModifyResponse{resultOp{r}} })
	case tagAddRequest:
		se, err := decodeSearchEntry(rd)
		if err != nil {
			return nil, err
		}
		return &AddRequest{DN: se.DN, Attrs: se.Attrs}, nil
	case tagAddResponse:
		return wrapResult(rd, func(r Result) Op { return &AddResponse{resultOp{r}} })
	case tagDelRequest:
		return &DelRequest{DN: string(content)}, nil
	case tagDelResponse:
		return wrapResult(rd, func(r Result) Op { return &DelResponse{resultOp{r}} })
	case tagModifyDNRequest:
		return decodeModifyDNRequest(rd)
	case tagModifyDNResponse:
		return wrapResult(rd, func(r Result) Op { return &ModifyDNResponse{resultOp{r}} })
	case tagAbandonRequest:
		id, err := ber.ParseInt(content)
		if err != nil {
			return nil, err
		}
		return &AbandonRequest{MessageID: id}, nil
	default:
		return nil, fmt.Errorf("ldap: unknown application tag %d", tag)
	}
}

func wrapResult(rd *ber.Reader, mk func(Result) Op) (Op, error) {
	r, err := decodeResult(rd)
	if err != nil {
		return nil, err
	}
	return mk(r), nil
}

func decodeBindRequest(rd *ber.Reader) (*BindRequest, error) {
	var b BindRequest
	var err error
	if b.Version, err = rd.ReadInt(); err != nil {
		return nil, err
	}
	if b.Name, err = rd.ReadString(); err != nil {
		return nil, err
	}
	if !rd.Empty() {
		h, content, err := rd.Read()
		if err != nil {
			return nil, err
		}
		if h.Is(ber.ClassContext, 0) {
			b.Password = string(content)
		}
	}
	return &b, nil
}

func decodeSearchRequest(rd *ber.Reader) (*SearchRequest, error) {
	var s SearchRequest
	baseStr, err := rd.ReadString()
	if err != nil {
		return nil, err
	}
	base, err := dn.Parse(baseStr)
	if err != nil {
		return nil, fmt.Errorf("search base: %w", err)
	}
	scope, err := rd.ReadEnum()
	if err != nil {
		return nil, err
	}
	if _, err := rd.ReadEnum(); err != nil { // derefAliases
		return nil, err
	}
	if s.SizeLimit, err = rd.ReadInt(); err != nil {
		return nil, err
	}
	if _, err := rd.ReadInt(); err != nil { // timeLimit
		return nil, err
	}
	if s.TypesOnly, err = rd.ReadBool(); err != nil {
		return nil, err
	}
	f, err := decodeFilter(rd)
	if err != nil {
		return nil, err
	}
	attrSeq, err := rd.ReadSequence()
	if err != nil {
		return nil, err
	}
	var attrs []string
	for !attrSeq.Empty() {
		a, err := attrSeq.ReadString()
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a)
	}
	s.Query = query.Query{Base: base, Scope: query.Scope(scope), Filter: f, Attrs: attrs}
	return &s, nil
}

func decodeSearchEntry(rd *ber.Reader) (*SearchEntry, error) {
	var s SearchEntry
	var err error
	if s.DN, err = rd.ReadString(); err != nil {
		return nil, err
	}
	attrSeq, err := rd.ReadSequence()
	if err != nil {
		return nil, err
	}
	for !attrSeq.Empty() {
		one, err := attrSeq.ReadSequence()
		if err != nil {
			return nil, err
		}
		var a Attribute
		if a.Type, err = one.ReadString(); err != nil {
			return nil, err
		}
		vals, err := one.ReadExpect(ber.ClassUniversal, ber.TagSet)
		if err != nil {
			return nil, err
		}
		vr := ber.NewReader(vals)
		for !vr.Empty() {
			v, err := vr.ReadString()
			if err != nil {
				return nil, err
			}
			a.Values = append(a.Values, v)
		}
		s.Attrs = append(s.Attrs, a)
	}
	return &s, nil
}

func decodeModifyRequest(rd *ber.Reader) (*ModifyRequest, error) {
	var m ModifyRequest
	var err error
	if m.DN, err = rd.ReadString(); err != nil {
		return nil, err
	}
	changes, err := rd.ReadSequence()
	if err != nil {
		return nil, err
	}
	for !changes.Empty() {
		one, err := changes.ReadSequence()
		if err != nil {
			return nil, err
		}
		var c ModifyChange
		if c.Op, err = one.ReadEnum(); err != nil {
			return nil, err
		}
		mod, err := one.ReadSequence()
		if err != nil {
			return nil, err
		}
		if c.Attr.Type, err = mod.ReadString(); err != nil {
			return nil, err
		}
		vals, err := mod.ReadExpect(ber.ClassUniversal, ber.TagSet)
		if err != nil {
			return nil, err
		}
		vr := ber.NewReader(vals)
		for !vr.Empty() {
			v, err := vr.ReadString()
			if err != nil {
				return nil, err
			}
			c.Attr.Values = append(c.Attr.Values, v)
		}
		m.Changes = append(m.Changes, c)
	}
	return &m, nil
}

func decodeModifyDNRequest(rd *ber.Reader) (*ModifyDNRequest, error) {
	var m ModifyDNRequest
	var err error
	if m.DN, err = rd.ReadString(); err != nil {
		return nil, err
	}
	if m.NewRDN, err = rd.ReadString(); err != nil {
		return nil, err
	}
	if m.DeleteOldRDN, err = rd.ReadBool(); err != nil {
		return nil, err
	}
	if !rd.Empty() {
		h, content, err := rd.Read()
		if err != nil {
			return nil, err
		}
		if h.Is(ber.ClassContext, 0) {
			m.NewSuperior = string(content)
		}
	}
	return &m, nil
}
