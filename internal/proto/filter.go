package proto

import (
	"errors"
	"fmt"

	"filterdir/internal/ber"
	"filterdir/internal/filter"
)

// Filter choice tags per RFC 2251 section 4.5.1.
const (
	filterAnd        = 0
	filterOr         = 1
	filterNot        = 2
	filterEquality   = 3
	filterSubstrings = 4
	filterGreaterEq  = 5
	filterLessEq     = 6
	filterPresent    = 7
	filterApprox     = 8
)

// Substring component tags.
const (
	subInitial = 0
	subAny     = 1
	subFinal   = 2
)

var errNilFilter = errors.New("ldap: nil filter")

// encodeFilter appends the BER encoding of a filter. A nil filter encodes
// as (objectclass=*).
func encodeFilter(dst []byte, f *filter.Node) ([]byte, error) {
	if f == nil {
		return ber.AppendString(dst, ber.ClassContext, filterPresent, "objectclass"), nil
	}
	switch f.Op {
	case filter.True:
		// RFC 4526 absolute true: an and with no children.
		return ber.AppendTLV(dst, ber.ClassContext, true, filterAnd, nil), nil
	case filter.False:
		return ber.AppendTLV(dst, ber.ClassContext, true, filterOr, nil), nil
	case filter.And, filter.Or:
		tag := filterAnd
		if f.Op == filter.Or {
			tag = filterOr
		}
		var inner []byte
		var err error
		for _, c := range f.Children {
			inner, err = encodeFilter(inner, c)
			if err != nil {
				return nil, err
			}
		}
		return ber.AppendTLV(dst, ber.ClassContext, true, tag, inner), nil
	case filter.Not:
		if len(f.Children) == 0 {
			return nil, errNilFilter
		}
		inner, err := encodeFilter(nil, f.Children[0])
		if err != nil {
			return nil, err
		}
		return ber.AppendTLV(dst, ber.ClassContext, true, filterNot, inner), nil
	case filter.EQ, filter.GE, filter.LE:
		tag := filterEquality
		switch f.Op {
		case filter.GE:
			tag = filterGreaterEq
		case filter.LE:
			tag = filterLessEq
		}
		var ava []byte
		ava = ber.AppendString(ava, ber.ClassUniversal, ber.TagOctetString, f.Attr)
		ava = ber.AppendString(ava, ber.ClassUniversal, ber.TagOctetString, f.Value)
		out := ber.AppendTLV(dst, ber.ClassContext, true, tag, ava)
		if f.Neg {
			return wrapNot(dst, out)
		}
		return out, nil
	case filter.Present:
		out := ber.AppendString(dst, ber.ClassContext, filterPresent, f.Attr)
		if f.Neg {
			return wrapNot(dst, out)
		}
		return out, nil
	case filter.Substr:
		if f.Sub == nil {
			return nil, fmt.Errorf("ldap: substring filter without components")
		}
		var body []byte
		body = ber.AppendString(body, ber.ClassUniversal, ber.TagOctetString, f.Attr)
		var subs []byte
		if f.Sub.Initial != "" {
			subs = ber.AppendString(subs, ber.ClassContext, subInitial, f.Sub.Initial)
		}
		for _, a := range f.Sub.Any {
			subs = ber.AppendString(subs, ber.ClassContext, subAny, a)
		}
		if f.Sub.Final != "" {
			subs = ber.AppendString(subs, ber.ClassContext, subFinal, f.Sub.Final)
		}
		body = ber.AppendSequence(body, subs)
		out := ber.AppendTLV(dst, ber.ClassContext, true, filterSubstrings, body)
		if f.Neg {
			return wrapNot(dst, out)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("ldap: cannot encode filter op %v", f.Op)
	}
}

// wrapNot rewraps the just-encoded element (appended to dst) inside a NOT.
func wrapNot(dst, encoded []byte) ([]byte, error) {
	inner := encoded[len(dst):]
	cp := append([]byte(nil), inner...)
	return ber.AppendTLV(dst, ber.ClassContext, true, filterNot, cp), nil
}

// decodeFilter consumes one filter element.
func decodeFilter(rd *ber.Reader) (*filter.Node, error) {
	h, content, err := rd.Read()
	if err != nil {
		return nil, fmt.Errorf("ldap filter: %w", err)
	}
	if h.Class != ber.ClassContext {
		return nil, fmt.Errorf("ldap filter: unexpected class %#x", h.Class)
	}
	switch h.Tag {
	case filterAnd, filterOr:
		inner := ber.NewReader(content)
		var children []*filter.Node
		for !inner.Empty() {
			c, err := decodeFilter(inner)
			if err != nil {
				return nil, err
			}
			children = append(children, c)
		}
		if len(children) == 0 {
			if h.Tag == filterAnd {
				return &filter.Node{Op: filter.True}, nil
			}
			return &filter.Node{Op: filter.False}, nil
		}
		if h.Tag == filterAnd {
			return filter.NewAnd(children...), nil
		}
		return filter.NewOr(children...), nil
	case filterNot:
		inner := ber.NewReader(content)
		c, err := decodeFilter(inner)
		if err != nil {
			return nil, err
		}
		return filter.NewNot(c), nil
	case filterEquality, filterGreaterEq, filterLessEq, filterApprox:
		inner := ber.NewReader(content)
		attr, err := inner.ReadString()
		if err != nil {
			return nil, err
		}
		value, err := inner.ReadString()
		if err != nil {
			return nil, err
		}
		switch h.Tag {
		case filterGreaterEq:
			return filter.NewGE(attr, value), nil
		case filterLessEq:
			return filter.NewLE(attr, value), nil
		default:
			return filter.NewEQ(attr, value), nil
		}
	case filterPresent:
		return filter.NewPresent(string(content)), nil
	case filterSubstrings:
		inner := ber.NewReader(content)
		attr, err := inner.ReadString()
		if err != nil {
			return nil, err
		}
		seq, err := inner.ReadSequence()
		if err != nil {
			return nil, err
		}
		var sub filter.Substring
		for !seq.Empty() {
			ch, cc, err := seq.Read()
			if err != nil {
				return nil, err
			}
			switch ch.Tag {
			case subInitial:
				sub.Initial = string(cc)
			case subAny:
				sub.Any = append(sub.Any, string(cc))
			case subFinal:
				sub.Final = string(cc)
			default:
				return nil, fmt.Errorf("ldap filter: bad substring tag %d", ch.Tag)
			}
		}
		return filter.NewSubstr(attr, sub), nil
	default:
		return nil, fmt.Errorf("ldap filter: unknown choice tag %d", h.Tag)
	}
}
