// Package proto implements the LDAP v3 message layer over BER (a faithful
// subset of RFC 2251): bind, unbind, abandon, search (request, entry,
// reference, done), the four update operations, result codes including
// referral, and the request controls that carry the paper's ReSync
// protocol. Messages are length-delimited BER SEQUENCEs, so they frame
// themselves on a TCP stream.
package proto

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"filterdir/internal/ber"
)

// Application tags of the LDAP protocol ops (RFC 2251).
const (
	tagBindRequest      = 0
	tagBindResponse     = 1
	tagUnbindRequest    = 2
	tagSearchRequest    = 3
	tagSearchEntry      = 4
	tagSearchDone       = 5
	tagModifyRequest    = 6
	tagModifyResponse   = 7
	tagAddRequest       = 8
	tagAddResponse      = 9
	tagDelRequest       = 10
	tagDelResponse      = 11
	tagModifyDNRequest  = 12
	tagModifyDNResponse = 13
	tagAbandonRequest   = 16
	tagSearchReference  = 19
)

// ResultCode is an LDAP result code.
type ResultCode int

// Result codes used by this system.
const (
	ResultSuccess              ResultCode = 0
	ResultOperationsError      ResultCode = 1
	ResultProtocolError        ResultCode = 2
	ResultNoSuchObject         ResultCode = 32
	ResultInvalidCredentials   ResultCode = 49
	ResultEntryAlreadyExists   ResultCode = 68
	ResultNotAllowedOnNonLeaf  ResultCode = 66
	ResultObjectClassViolation ResultCode = 65
	ResultReferral             ResultCode = 10
	ResultBusy                 ResultCode = 51
	ResultUnwillingToPerform   ResultCode = 53
	ResultOther                ResultCode = 80
	// ResultESyncRefreshRequired (RFC 4533) tells a consumer its sync
	// session is gone on the server and it must start over with a new
	// Begin — distinct from transport failure, which is retryable with the
	// same cookie.
	ResultESyncRefreshRequired ResultCode = 4096
)

func (c ResultCode) String() string {
	switch c {
	case ResultSuccess:
		return "success"
	case ResultOperationsError:
		return "operationsError"
	case ResultProtocolError:
		return "protocolError"
	case ResultNoSuchObject:
		return "noSuchObject"
	case ResultInvalidCredentials:
		return "invalidCredentials"
	case ResultEntryAlreadyExists:
		return "entryAlreadyExists"
	case ResultNotAllowedOnNonLeaf:
		return "notAllowedOnNonLeaf"
	case ResultObjectClassViolation:
		return "objectClassViolation"
	case ResultReferral:
		return "referral"
	case ResultBusy:
		return "busy"
	case ResultUnwillingToPerform:
		return "unwillingToPerform"
	case ResultESyncRefreshRequired:
		return "e-syncRefreshRequired"
	default:
		return fmt.Sprintf("resultCode(%d)", int(c))
	}
}

// Op is one LDAP protocol operation.
type Op interface {
	// appTag returns the operation's application tag.
	appTag() int
	// encodeBody appends the operation's BER content (inside the
	// application TLV).
	encodeBody(dst []byte) ([]byte, error)
}

// Message is one LDAPMessage envelope.
type Message struct {
	ID       int64
	Op       Op
	Controls []Control
}

// ErrTooLarge guards against absurd message sizes on the wire.
var ErrTooLarge = errors.New("ldap message too large")

// maxMessageBytes bounds a single message (16 MiB).
const maxMessageBytes = 16 << 20

// Encode serializes the message.
func (m *Message) Encode() ([]byte, error) {
	var body []byte
	body = ber.AppendInt(body, ber.ClassUniversal, ber.TagInteger, m.ID)
	opBody, err := m.Op.encodeBody(nil)
	if err != nil {
		return nil, err
	}
	body = ber.AppendTLV(body, ber.ClassApplication, true, m.Op.appTag(), opBody)
	if len(m.Controls) > 0 {
		var cs []byte
		for _, c := range m.Controls {
			cs = c.append(cs)
		}
		body = ber.AppendTLV(body, ber.ClassContext, true, 0, cs)
	}
	return ber.AppendSequence(nil, body), nil
}

// EncodeOpBody BER-encodes just the operation's application-TLV content.
// The result is envelope-independent, so a PDU fanned out to many
// consumers can be encoded once and wrapped per message with
// EncodeWithOpBody.
func EncodeOpBody(op Op) ([]byte, error) {
	return op.encodeBody(nil)
}

// EncodeMessageTail BER-encodes the message-ID-independent suffix of a
// message: the operation TLV (around a pre-encoded body from EncodeOpBody)
// followed by the controls TLV. A PDU fanned out to many consumers whose
// messages differ only in message ID caches this tail once and wraps it
// per consumer with EncodeWithTail. op supplies only the application tag;
// its fields are not re-encoded.
func EncodeMessageTail(op Op, opBody []byte, controls []Control) []byte {
	tail := ber.AppendTLV(nil, ber.ClassApplication, true, op.appTag(), opBody)
	if len(controls) > 0 {
		var cs []byte
		for _, c := range controls {
			cs = c.append(cs)
		}
		tail = ber.AppendTLV(tail, ber.ClassContext, true, 0, cs)
	}
	return tail
}

// EncodeWithTail serializes a complete message around a pre-encoded tail
// (from EncodeMessageTail): just the message-ID TLV and the outer envelope
// are built here.
func EncodeWithTail(id int64, tail []byte) []byte {
	body := make([]byte, 0, 16+len(tail))
	body = ber.AppendInt(body, ber.ClassUniversal, ber.TagInteger, id)
	body = append(body, tail...)
	return ber.AppendSequence(nil, body)
}

// EncodeWithOpBody serializes a message around a pre-encoded operation
// body (from EncodeOpBody). op supplies only the application tag; its
// fields are not re-encoded. Used when the controls vary per consumer
// (e.g. a per-session cookie), so the tail cannot be shared.
func EncodeWithOpBody(id int64, op Op, opBody []byte, controls []Control) []byte {
	return EncodeWithTail(id, EncodeMessageTail(op, opBody, controls))
}

// Write encodes the message and writes it to w.
func (m *Message) Write(w io.Writer) error {
	enc, err := m.Encode()
	if err != nil {
		return err
	}
	_, err = w.Write(enc)
	return err
}

// ReadMessage reads one message from a buffered stream.
func ReadMessage(r *bufio.Reader) (*Message, error) {
	// Read the outer SEQUENCE header byte-by-byte to learn the length.
	id, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	if id != 0x30 {
		return nil, fmt.Errorf("ldap: bad message header byte %#x", id)
	}
	l, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	length := 0
	if l < 0x80 {
		length = int(l)
	} else {
		n := int(l & 0x7f)
		if n == 0 || n > 4 {
			return nil, fmt.Errorf("ldap: bad length-of-length %d", n)
		}
		for i := 0; i < n; i++ {
			b, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			length = length<<8 | int(b)
		}
	}
	if length < 0 || length > maxMessageBytes {
		return nil, ErrTooLarge
	}
	content := make([]byte, length)
	if _, err := io.ReadFull(r, content); err != nil {
		return nil, err
	}
	return decodeMessage(content)
}

// Decode parses a fully-buffered encoded message.
func Decode(data []byte) (*Message, error) {
	rd := ber.NewReader(data)
	content, err := rd.ReadExpect(ber.ClassUniversal, ber.TagSequence)
	if err != nil {
		return nil, err
	}
	return decodeMessage(content)
}

func decodeMessage(content []byte) (*Message, error) {
	rd := ber.NewReader(content)
	id, err := rd.ReadInt()
	if err != nil {
		return nil, fmt.Errorf("ldap: message id: %w", err)
	}
	h, opContent, err := rd.Read()
	if err != nil {
		return nil, fmt.Errorf("ldap: protocol op: %w", err)
	}
	if h.Class != ber.ClassApplication {
		return nil, fmt.Errorf("ldap: protocol op has class %#x", h.Class)
	}
	op, err := decodeOp(h.Tag, opContent)
	if err != nil {
		return nil, err
	}
	msg := &Message{ID: id, Op: op}
	if !rd.Empty() {
		ch, cs, err := rd.Read()
		if err != nil {
			return nil, fmt.Errorf("ldap: controls: %w", err)
		}
		if ch.Is(ber.ClassContext, 0) {
			controls, err := parseControls(cs)
			if err != nil {
				return nil, err
			}
			msg.Controls = controls
		}
	}
	return msg, nil
}

// Control finds a control by OID.
func (m *Message) Control(oid string) (Control, bool) {
	for _, c := range m.Controls {
		if c.OID == oid {
			return c, true
		}
	}
	return Control{}, false
}
