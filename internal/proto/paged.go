package proto

import (
	"fmt"

	"filterdir/internal/ber"
)

// OIDPagedResults is the RFC 2696 simple paged results control.
const OIDPagedResults = "1.2.840.113556.1.4.319"

// NewPagedControl builds the request/response control: size is the
// requested (or estimated) page size, cookie the continuation state (empty
// to start, and empty in a response when the result is complete).
func NewPagedControl(size int64, cookie string) Control {
	var body []byte
	body = ber.AppendInt(body, ber.ClassUniversal, ber.TagInteger, size)
	body = ber.AppendString(body, ber.ClassUniversal, ber.TagOctetString, cookie)
	return Control{OID: OIDPagedResults, Criticality: true, Value: ber.AppendSequence(nil, body)}
}

// ParsePaged decodes a paged-results control value.
func ParsePaged(c Control) (size int64, cookie string, err error) {
	rd := ber.NewReader(c.Value)
	seq, err := rd.ReadSequence()
	if err != nil {
		return 0, "", fmt.Errorf("paged control: %w", err)
	}
	if size, err = seq.ReadInt(); err != nil {
		return 0, "", err
	}
	if cookie, err = seq.ReadString(); err != nil {
		return 0, "", err
	}
	return size, cookie, nil
}
