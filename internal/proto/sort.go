package proto

import (
	"fmt"

	"filterdir/internal/ber"
)

// Server-side sorting control OIDs per RFC 2891 (the control the paper
// cites as an example of extending LDAP operations).
const (
	OIDSortRequest  = "1.2.840.113556.1.4.473"
	OIDSortResponse = "1.2.840.113556.1.4.474"
)

// SortKey is one key of a server-side sort request.
type SortKey struct {
	Attr string
	// Reverse orders descending.
	Reverse bool
}

// NewSortControl builds the RFC 2891 request control.
func NewSortControl(keys ...SortKey) Control {
	var list []byte
	for _, k := range keys {
		var one []byte
		one = ber.AppendString(one, ber.ClassUniversal, ber.TagOctetString, k.Attr)
		if k.Reverse {
			// reverseOrder [1] BOOLEAN
			one = ber.AppendTLV(one, ber.ClassContext, false, 1, []byte{0xff})
		}
		list = ber.AppendSequence(list, one)
	}
	return Control{OID: OIDSortRequest, Value: ber.AppendSequence(nil, list)}
}

// ParseSortKeys decodes the request control value.
func ParseSortKeys(c Control) ([]SortKey, error) {
	rd := ber.NewReader(c.Value)
	seq, err := rd.ReadSequence()
	if err != nil {
		return nil, fmt.Errorf("sort control: %w", err)
	}
	var keys []SortKey
	for !seq.Empty() {
		one, err := seq.ReadSequence()
		if err != nil {
			return nil, err
		}
		var k SortKey
		if k.Attr, err = one.ReadString(); err != nil {
			return nil, err
		}
		for !one.Empty() {
			h, content, err := one.Read()
			if err != nil {
				return nil, err
			}
			if h.Is(ber.ClassContext, 1) && len(content) == 1 {
				k.Reverse = content[0] != 0
			}
		}
		keys = append(keys, k)
	}
	return keys, nil
}

// NewSortResponseControl reports the sorting outcome (0 = success).
func NewSortResponseControl(code int64) Control {
	var body []byte
	body = ber.AppendEnum(body, code)
	return Control{OID: OIDSortResponse, Value: ber.AppendSequence(nil, body)}
}

// ParseSortResponse decodes the response control's result code.
func ParseSortResponse(c Control) (int64, error) {
	rd := ber.NewReader(c.Value)
	seq, err := rd.ReadSequence()
	if err != nil {
		return 0, fmt.Errorf("sort response control: %w", err)
	}
	return seq.ReadEnum()
}
