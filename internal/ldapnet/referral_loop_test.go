package ldapnet

import (
	"errors"
	"strings"
	"testing"

	"filterdir/internal/query"
	"filterdir/internal/replica"
)

// serveEmptyReplica serves a replica holding no stored queries, so every
// search misses and is answered with a referral to masterURL.
func serveEmptyReplica(t *testing.T, masterURL string) *Server {
	t.Helper()
	rep, err := replica.NewFilterReplica()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", NewReplicaBackend(rep, masterURL))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

// TestReferralLoopDetected: two replicas referring every miss to each other
// form a referral cycle; the chasing resolver must detect the revisit and
// fail with the typed sentinel instead of recursing to the depth bound.
func TestReferralLoopDetected(t *testing.T) {
	srvA := serveEmptyReplica(t, "ldap://hostB")
	srvB := serveEmptyReplica(t, "ldap://hostA")

	r := NewResolver()
	defer r.Close()
	r.Register("hostA", srvA.Addr())
	r.Register("hostB", srvB.Addr())

	_, err := r.SearchChasing("hostA", query.MustNew("o=xyz", query.ScopeSubtree, "(cn=nobody)"))
	if !errors.Is(err, ErrReferralLoop) {
		t.Fatalf("err = %v, want ErrReferralLoop", err)
	}
	// The error narrates the chain so an operator can see the cycle.
	if msg := err.Error(); !strings.Contains(msg, "hostA -> hostB") {
		t.Errorf("error does not render the referral chain: %q", msg)
	}
	// Loop detection fires on the revisit: A, B, then the attempted return
	// to A — two round trips, not DefaultMaxChase.
	if got := r.RoundTrips(); got != 2 {
		t.Errorf("round trips = %d, want 2", got)
	}
}

// TestReferralLoopSameHostDifferentQuery: the visited set is keyed by
// (server, query), so a legitimate re-contact of an earlier host for a
// different subordinate query is NOT flagged as a loop. This is the
// Figure 2 topology shape, asserted against the loop detector directly.
func TestReferralLoopSameHostDifferentQuery(t *testing.T) {
	st := &chaseState{visited: make(map[string]bool)}
	q1 := query.MustNew("o=xyz", query.ScopeSubtree, "(objectclass=*)")
	q2 := query.MustNew("ou=research,c=us,o=xyz", query.ScopeSubtree, "(objectclass=*)")
	st.visited[chaseKey("hostA", q1)] = true
	if st.visited[chaseKey("hostA", q2)] {
		t.Fatal("distinct queries on one host must not collide in the visited set")
	}
	if !st.visited[chaseKey("hostA", q1)] {
		t.Fatal("identical (host, query) pair must collide")
	}
}

// TestReferralDepthBound: a non-repeating chain longer than MaxDepth is cut
// off with a clear hop-count error rather than chased forever.
func TestReferralDepthBound(t *testing.T) {
	// hostA -> hostB -> hostC -> hostD: distinct hosts, so the visited set
	// never fires and only the depth bound can stop the chase.
	srvA := serveEmptyReplica(t, "ldap://hostB")
	srvB := serveEmptyReplica(t, "ldap://hostC")
	srvC := serveEmptyReplica(t, "ldap://hostD")
	srvD := serveEmptyReplica(t, "ldap://hostE")

	r := NewResolver()
	defer r.Close()
	r.MaxDepth = 2
	r.Register("hostA", srvA.Addr())
	r.Register("hostB", srvB.Addr())
	r.Register("hostC", srvC.Addr())
	r.Register("hostD", srvD.Addr())

	_, err := r.SearchChasing("hostA", query.MustNew("o=xyz", query.ScopeSubtree, "(cn=nobody)"))
	if err == nil {
		t.Fatal("unbounded chase succeeded, want depth error")
	}
	if errors.Is(err, ErrReferralLoop) {
		t.Fatalf("distinct-host chain misreported as loop: %v", err)
	}
	if msg := err.Error(); !strings.Contains(msg, "exceeds 2 hops") {
		t.Errorf("error does not name the hop bound: %q", msg)
	}
	// hostA (depth 0), hostB (1), hostC (2); the hop to hostD would be
	// depth 3 and is refused before dialing.
	if got := r.RoundTrips(); got != 3 {
		t.Errorf("round trips = %d, want 3", got)
	}
}
