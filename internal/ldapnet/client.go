package ldapnet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/proto"
	"filterdir/internal/query"
	"filterdir/internal/resync"
)

// DefaultTimeout bounds dials and each request/response I/O operation of a
// Client unless overridden; it keeps a replica from blocking forever on a
// hung master.
const DefaultTimeout = 30 * time.Second

// ResultError is returned when a server answers with a non-success result.
type ResultError struct {
	Code      proto.ResultCode
	Message   string
	Referrals []string
}

func (e *ResultError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("ldap: %s: %s", e.Code, e.Message)
	}
	return "ldap: " + e.Code.String()
}

// Unwrap maps distinguished result codes back to their typed sentinel, so
// errors.Is works identically against a local engine and over the wire: an
// e-syncRefreshRequired response is resync.ErrNoSuchSession (the consumer
// must re-Begin rather than retry its cookie), and a referral result is
// ErrNotContained (a mid-tier replica refusing to supply a sync spec it
// cannot prove containment for — the supervisor diverts to its fallback
// master).
func (e *ResultError) Unwrap() error {
	switch e.Code {
	case proto.ResultESyncRefreshRequired:
		return resync.ErrNoSuchSession
	case proto.ResultReferral:
		return ErrNotContained
	default:
		return nil
	}
}

// IsTransient reports whether err is a transport-level failure (reset,
// timeout, EOF, torn stream) after which the same session cookie may be
// retried on a fresh connection — as opposed to a server result, which
// would just be returned again. Stale-session results in particular are NOT
// transient: the consumer must re-Begin.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var re *ResultError
	return !errors.As(err, &re)
}

// SearchResult collects a search's entries and continuation referrals.
type SearchResult struct {
	Entries   []*entry.Entry
	Referrals []string
}

// SyncResult is a decoded ReSync response.
type SyncResult struct {
	Updates    []resync.Update
	Cookie     string
	FullReload bool
	// UpstreamCSN is the supplier's commit watermark for this response (see
	// resync.PollResult.CSN): applying the updates brings the consumer up to
	// this position in the supplier's journal. Zero when the supplier
	// predates the edge-write protocol.
	UpstreamCSN uint64
	// Resume, when non-nil, marks a partial chunked reload: Cookie is empty
	// and the consumer continues the transfer by presenting the token
	// (SyncResume). FullReload is set only on the transfer's first chunk.
	Resume *proto.ResumeToken
}

// Client is a synchronous LDAP client. Methods are safe for concurrent use
// but execute one operation at a time per connection.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	nextID int64
	// timeout bounds each network read and write (0 = no deadline).
	timeout time.Duration
	// RoundTrips counts request/response exchanges with the server; the
	// referral experiments read it.
	roundTrips int
	closed     bool
}

// DialFunc opens the transport connection for a client. Fault-injection
// layers (internal/chaos) and tests substitute their own; nil means plain
// TCP.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

// netDial is the default TCP DialFunc.
func netDial(addr string, timeout time.Duration) (net.Conn, error) {
	if timeout > 0 {
		return net.DialTimeout("tcp", addr, timeout)
	}
	return net.Dial("tcp", addr)
}

// Dial connects to an LDAP server with DefaultTimeout I/O deadlines.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, DefaultTimeout)
}

// DialTimeout connects to an LDAP server; timeout bounds the dial and every
// subsequent read/write of one message (0 disables deadlines).
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	return DialWith(nil, addr, timeout)
}

// DialWith is DialTimeout through an explicit transport hook (nil = TCP).
func DialWith(dial DialFunc, addr string, timeout time.Duration) (*Client, error) {
	if dial == nil {
		dial = netDial
	}
	conn, err := dial(addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("ldap dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), nextID: 1, timeout: timeout}, nil
}

// SetTimeout changes the per-I/O deadline for subsequent operations
// (0 disables deadlines).
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// armWrite and armRead (re-)arm the connection deadline for one I/O
// operation; with no timeout configured any previous deadline is cleared.
// Callers hold c.mu.
func (c *Client) armWrite() {
	var dl time.Time
	if c.timeout > 0 {
		dl = time.Now().Add(c.timeout)
	}
	_ = c.conn.SetWriteDeadline(dl)
}

func (c *Client) armRead() {
	var dl time.Time
	if c.timeout > 0 {
		dl = time.Now().Add(c.timeout)
	}
	_ = c.conn.SetReadDeadline(dl)
}

// RoundTrips reports the number of request/response exchanges so far.
func (c *Client) RoundTrips() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTrips
}

// Close unbinds and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.armWrite()
	m := &proto.Message{ID: c.nextID, Op: &proto.UnbindRequest{}}
	_ = m.Write(c.conn)
	return c.conn.Close()
}

// request sends a message and returns its ID.
func (c *Client) send(op proto.Op, controls ...proto.Control) (int64, error) {
	id := c.nextID
	c.nextID++
	m := &proto.Message{ID: id, Op: op, Controls: controls}
	c.armWrite()
	if err := m.Write(c.conn); err != nil {
		return 0, fmt.Errorf("ldap send: %w", err)
	}
	c.roundTrips++
	return id, nil
}

// read returns the next message for the given ID. The deadline is re-armed
// per message, so the timeout bounds the idle gap between responses rather
// than the total length of a streamed result.
func (c *Client) read(id int64) (*proto.Message, error) {
	for {
		c.armRead()
		m, err := proto.ReadMessage(c.r)
		if err != nil {
			return nil, err
		}
		if m.ID == id {
			return m, nil
		}
		// Responses to other (abandoned) operations are skipped.
	}
}

// Bind authenticates.
func (c *Client) Bind(name, password string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, err := c.send(&proto.BindRequest{Version: 3, Name: name, Password: password})
	if err != nil {
		return err
	}
	m, err := c.read(id)
	if err != nil {
		return err
	}
	resp, ok := m.Op.(*proto.BindResponse)
	if !ok {
		return fmt.Errorf("ldap bind: unexpected response %T", m.Op)
	}
	if resp.Code != proto.ResultSuccess {
		return &ResultError{Code: resp.Code, Message: resp.Message}
	}
	return nil
}

// Search runs a search and collects the streamed results. A referral result
// code surfaces as a *ResultError carrying the referral URLs together with
// the partial result.
func (c *Client) Search(q query.Query) (*SearchResult, error) {
	return c.SearchWith(q)
}

// SearchWith runs a search with request controls attached (e.g. the
// RFC 2891 server-side sort control).
func (c *Client) SearchWith(q query.Query, controls ...proto.Control) (*SearchResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, err := c.send(&proto.SearchRequest{Query: q}, controls...)
	if err != nil {
		return nil, err
	}
	res := &SearchResult{}
	for {
		m, err := c.read(id)
		if err != nil {
			return res, err
		}
		switch op := m.Op.(type) {
		case *proto.SearchEntry:
			e, err := op.Entry()
			if err != nil {
				return res, err
			}
			res.Entries = append(res.Entries, e)
		case *proto.SearchReference:
			res.Referrals = append(res.Referrals, op.URLs...)
		case *proto.SearchDone:
			if op.Code != proto.ResultSuccess {
				return res, &ResultError{Code: op.Code, Message: op.Message, Referrals: op.Referrals}
			}
			return res, nil
		default:
			return res, fmt.Errorf("ldap search: unexpected response %T", m.Op)
		}
	}
}

// WatchFilters subscribes to the server's admission-filter generation (the
// OIDFiltersWatch control) and blocks until it advances past since (0 =
// whatever generation is current when the watch is established), returning
// the new generation. The wait is deadline-free — the response arrives only
// when the server's filter set actually changes — so use a dedicated
// client; Close from another goroutine cancels the wait. A server that does
// not support the control answers unwillingToPerform immediately.
func (c *Client) WatchFilters(q query.Query, since uint64) (uint64, error) {
	c.mu.Lock()
	id, err := c.send(&proto.SearchRequest{Query: q}, proto.NewFiltersWatchControl(since))
	if err != nil {
		c.mu.Unlock()
		return 0, err
	}
	// Clear the per-op read deadline for the watch's duration and read
	// outside the client lock, so a concurrent Close can cancel the wait.
	_ = c.conn.SetReadDeadline(time.Time{})
	r := c.r
	c.mu.Unlock()
	for {
		m, err := proto.ReadMessage(r)
		if err != nil {
			return 0, err
		}
		if m.ID != id {
			continue
		}
		done, ok := m.Op.(*proto.SearchDone)
		if !ok {
			continue
		}
		if done.Code != proto.ResultSuccess {
			return 0, &ResultError{Code: done.Code, Message: done.Message, Referrals: done.Referrals}
		}
		ctrl, ok := m.Control(proto.OIDFiltersChanged)
		if !ok {
			return 0, fmt.Errorf("filters watch: response missing filters-changed control")
		}
		return proto.ParseFiltersChanged(ctrl)
	}
}

// SearchPaged runs a search with RFC 2696 simple paged results, fetching
// pageSize entries per round trip until the server reports completion.
func (c *Client) SearchPaged(q query.Query, pageSize int) (*SearchResult, error) {
	out := &SearchResult{}
	cookie := ""
	for {
		res, done, next, err := c.searchPage(q, pageSize, cookie)
		if err != nil {
			return out, err
		}
		out.Entries = append(out.Entries, res.Entries...)
		out.Referrals = append(out.Referrals, res.Referrals...)
		if done {
			return out, nil
		}
		cookie = next
	}
}

func (c *Client) searchPage(q query.Query, pageSize int, cookie string) (*SearchResult, bool, string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, err := c.send(&proto.SearchRequest{Query: q}, proto.NewPagedControl(int64(pageSize), cookie))
	if err != nil {
		return nil, false, "", err
	}
	res := &SearchResult{}
	for {
		m, err := c.read(id)
		if err != nil {
			return res, false, "", err
		}
		switch op := m.Op.(type) {
		case *proto.SearchEntry:
			e, err := op.Entry()
			if err != nil {
				return res, false, "", err
			}
			res.Entries = append(res.Entries, e)
		case *proto.SearchReference:
			res.Referrals = append(res.Referrals, op.URLs...)
		case *proto.SearchDone:
			if op.Code != proto.ResultSuccess {
				return res, false, "", &ResultError{Code: op.Code, Message: op.Message, Referrals: op.Referrals}
			}
			pc, ok := m.Control(proto.OIDPagedResults)
			if !ok {
				return res, true, "", nil
			}
			_, next, err := proto.ParsePaged(pc)
			if err != nil {
				return res, false, "", err
			}
			return res, next == "", next, nil
		default:
			return res, false, "", fmt.Errorf("ldap paged search: unexpected response %T", m.Op)
		}
	}
}

// Sync performs one ReSync exchange: an empty cookie begins a session, a
// non-empty cookie polls it; mode selects poll or retain semantics.
func (c *Client) Sync(q query.Query, mode proto.ReSyncMode, cookie string) (*SyncResult, error) {
	return c.syncExchange(q, proto.NewReSyncRequestControl(mode, cookie))
}

// SyncResume continues a chunked reload by presenting a resume token; the
// server responds with the named chunk (or, when it cannot verify the
// token, a restart from chunk zero — FullReload set). The control is
// critical: a supplier that does not understand resumption must refuse
// rather than silently serve a plain search.
func (c *Client) SyncResume(tok proto.ResumeToken) (*SyncResult, error) {
	return c.syncExchange(query.Query{Scope: query.ScopeSubtree},
		proto.NewReSyncRequestControl(proto.ReSyncModePoll, ""),
		proto.NewReSyncResumeControl(tok, true))
}

// syncExchange runs one ReSync request/response cycle with the given
// controls.
func (c *Client) syncExchange(q query.Query, controls ...proto.Control) (*SyncResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, err := c.send(&proto.SearchRequest{Query: q}, controls...)
	if err != nil {
		return nil, err
	}
	res := &SyncResult{}
	for {
		m, err := c.read(id)
		if err != nil {
			return res, err
		}
		switch op := m.Op.(type) {
		case *proto.SearchEntry:
			u, _, _, err := decodeUpdate(m, op)
			if err != nil {
				return res, err
			}
			res.Updates = append(res.Updates, u)
		case *proto.SearchDone:
			if op.Code != proto.ResultSuccess {
				return res, &ResultError{Code: op.Code, Message: op.Message, Referrals: op.Referrals}
			}
			if dc, ok := m.Control(proto.OIDReSyncDone); ok {
				res.Cookie, res.FullReload, res.UpstreamCSN, err = proto.ParseReSyncDone(dc)
				if err != nil {
					return res, err
				}
			}
			if rc, ok := m.Control(proto.OIDReSyncResume); ok {
				tok, err := proto.ParseReSyncResume(rc)
				if err != nil {
					return res, err
				}
				res.Resume = &tok
			}
			return res, nil
		default:
			return res, fmt.Errorf("ldap sync: unexpected response %T", m.Op)
		}
	}
}

// SyncEnd terminates a session.
func (c *Client) SyncEnd(cookie string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, err := c.send(&proto.SearchRequest{Query: query.Query{Scope: query.ScopeBase}},
		proto.NewReSyncRequestControl(proto.ReSyncModeSyncEnd, cookie))
	if err != nil {
		return err
	}
	m, err := c.read(id)
	if err != nil {
		return err
	}
	if done, ok := m.Op.(*proto.SearchDone); ok && done.Code != proto.ResultSuccess {
		return &ResultError{Code: done.Code, Message: done.Message}
	}
	return nil
}

func decodeUpdate(m *proto.Message, op *proto.SearchEntry) (resync.Update, string, uint64, error) {
	action := proto.ChangeActionAdd
	cookie := ""
	csn := uint64(0)
	if cc, ok := m.Control(proto.OIDEntryChange); ok {
		a, ck, n, err := proto.ParseEntryChange(cc)
		if err != nil {
			return resync.Update{}, "", 0, err
		}
		action, cookie, csn = a, ck, n
	}
	d, err := dn.Parse(op.DN)
	if err != nil {
		return resync.Update{}, "", 0, err
	}
	u := resync.Update{DN: d}
	switch action {
	case proto.ChangeActionAdd:
		u.Action = resync.ActionAdd
	case proto.ChangeActionModify:
		u.Action = resync.ActionModify
	case proto.ChangeActionDelete:
		u.Action = resync.ActionDelete
	case proto.ChangeActionRetain:
		u.Action = resync.ActionRetain
	}
	if u.Action == resync.ActionAdd || u.Action == resync.ActionModify {
		e, err := op.Entry()
		if err != nil {
			return resync.Update{}, "", 0, err
		}
		u.Entry = e
	}
	return u, cookie, csn, nil
}

// Add inserts an entry.
func (c *Client) Add(e *entry.Entry) error {
	req := &proto.AddRequest{DN: e.DN().String()}
	for _, name := range e.AttributeNames() {
		req.Attrs = append(req.Attrs, proto.Attribute{Type: name, Values: e.Values(name)})
	}
	return c.simpleOp(req, func(m *proto.Message) (proto.Result, bool) {
		r, ok := m.Op.(*proto.AddResponse)
		if !ok {
			return proto.Result{}, false
		}
		return r.Result, true
	})
}

// Delete removes an entry.
func (c *Client) Delete(d dn.DN) error {
	return c.simpleOp(&proto.DelRequest{DN: d.String()}, func(m *proto.Message) (proto.Result, bool) {
		r, ok := m.Op.(*proto.DelResponse)
		if !ok {
			return proto.Result{}, false
		}
		return r.Result, true
	})
}

// Modify alters an entry.
func (c *Client) Modify(d dn.DN, changes []proto.ModifyChange) error {
	return c.simpleOp(&proto.ModifyRequest{DN: d.String(), Changes: changes},
		func(m *proto.Message) (proto.Result, bool) {
			r, ok := m.Op.(*proto.ModifyResponse)
			if !ok {
				return proto.Result{}, false
			}
			return r.Result, true
		})
}

// ModifyDN renames or moves an entry.
func (c *Client) ModifyDN(old dn.DN, newRDN dn.RDN, newSuperior dn.DN) error {
	req := &proto.ModifyDNRequest{
		DN:           old.String(),
		NewRDN:       newRDN.String(),
		DeleteOldRDN: true,
		NewSuperior:  newSuperior.String(),
	}
	return c.simpleOp(req, func(m *proto.Message) (proto.Result, bool) {
		r, ok := m.Op.(*proto.ModifyDNResponse)
		if !ok {
			return proto.Result{}, false
		}
		return r.Result, true
	})
}

// EdgeWrite forwards an edge-originated update operation upstream with the
// edge-write control attached. On success it returns the CSN the sequencer
// assigned (or previously assigned: duplicate reports a dedup hit from an
// earlier forward of the same op id).
func (c *Client) EdgeWrite(op proto.Op, opID string) (csn uint64, duplicate bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, err := c.send(op, proto.NewEdgeWriteControl(opID))
	if err != nil {
		return 0, false, err
	}
	m, err := c.read(id)
	if err != nil {
		return 0, false, err
	}
	r, ok := writeResult(m)
	if !ok {
		return 0, false, fmt.Errorf("ldap edge write: unexpected response %T", m.Op)
	}
	if r.Code != proto.ResultSuccess {
		return 0, false, &ResultError{Code: r.Code, Message: r.Message, Referrals: r.Referrals}
	}
	dc, ok := m.Control(proto.OIDEdgeWriteDone)
	if !ok {
		return 0, false, errors.New("ldap edge write: server accepted the op without an edge-write-done control")
	}
	return proto.ParseEdgeWriteDone(dc)
}

// writeResult extracts the Result from any of the four update responses.
func writeResult(m *proto.Message) (proto.Result, bool) {
	switch r := m.Op.(type) {
	case *proto.AddResponse:
		return r.Result, true
	case *proto.DelResponse:
		return r.Result, true
	case *proto.ModifyResponse:
		return r.Result, true
	case *proto.ModifyDNResponse:
		return r.Result, true
	}
	return proto.Result{}, false
}

func (c *Client) simpleOp(op proto.Op, extract func(*proto.Message) (proto.Result, bool)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, err := c.send(op)
	if err != nil {
		return err
	}
	m, err := c.read(id)
	if err != nil {
		return err
	}
	r, ok := extract(m)
	if !ok {
		return fmt.Errorf("ldap: unexpected response %T", m.Op)
	}
	if r.Code != proto.ResultSuccess {
		return &ResultError{Code: r.Code, Message: r.Message, Referrals: r.Referrals}
	}
	return nil
}

// --- Persist mode -------------------------------------------------------------

// StreamUpdate is one pushed update of a persist stream. Cookie is
// non-empty on the final update of each pushed batch: a consumer that has
// applied everything up to and including that update holds the named sync
// point and may adopt the cookie as its resume position. CSN rides with the
// cookie (zero elsewhere): the supplier's commit watermark at that sync
// point, used to retire edge-originated writes once they echo back.
type StreamUpdate struct {
	resync.Update
	Cookie string
	CSN    uint64
}

// PersistSession is a persist-mode synchronization over a dedicated
// connection: initial content and subsequent change batches arrive on
// Updates until Close.
type PersistSession struct {
	Updates <-chan StreamUpdate

	client *Client
	id     int64
	once   sync.Once
	stop   chan struct{}
	done   chan struct{}

	mu  sync.Mutex
	err error
}

// Err reports why the stream ended (nil while it is live or after a clean
// SearchDone). A *ResultError carrying e-syncRefreshRequired means the
// session is stale and the consumer must re-Begin; transport errors mean
// the same cookie is retryable.
func (p *PersistSession) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *PersistSession) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// Persist opens a dedicated connection and runs a persist-mode sync. The
// returned session delivers every update (initial content first). The dial
// and request write are bounded by DefaultTimeout; the stream itself has no
// idle timeout (persist connections legitimately sit quiet between
// changes) — use PersistTimeout to bound it.
func Persist(addr string, q query.Query, cookie string) (*PersistSession, error) {
	return PersistTimeout(addr, q, cookie, DefaultTimeout, 0)
}

// PersistTimeout is Persist with explicit deadlines: dialTimeout bounds the
// dial and the initial request write (0 = none); idleTimeout, when
// positive, bounds the gap between streamed messages — a master stalled
// longer than that ends the subscription.
func PersistTimeout(addr string, q query.Query, cookie string, dialTimeout, idleTimeout time.Duration) (*PersistSession, error) {
	return PersistWith(nil, addr, q, cookie, dialTimeout, idleTimeout)
}

// PersistWith is PersistTimeout through an explicit transport hook
// (nil = TCP).
func PersistWith(dial DialFunc, addr string, q query.Query, cookie string, dialTimeout, idleTimeout time.Duration) (*PersistSession, error) {
	c, err := DialWith(dial, addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	id, err := c.send(&proto.SearchRequest{Query: q},
		proto.NewReSyncRequestControl(proto.ReSyncModePersist, cookie))
	c.mu.Unlock()
	if err != nil {
		_ = c.Close()
		return nil, err
	}
	ch := make(chan StreamUpdate, 64)
	ps := &PersistSession{Updates: ch, client: c, id: id,
		stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(ch)
		defer close(ps.done)
		for {
			var dl time.Time
			if idleTimeout > 0 {
				dl = time.Now().Add(idleTimeout)
			}
			_ = c.conn.SetReadDeadline(dl)
			m, err := proto.ReadMessage(c.r)
			if err != nil {
				ps.setErr(err)
				return
			}
			if m.ID != id {
				continue
			}
			switch op := m.Op.(type) {
			case *proto.SearchEntry:
				u, cookie, csn, err := decodeUpdate(m, op)
				if err != nil {
					ps.setErr(err)
					return
				}
				select {
				case ch <- StreamUpdate{Update: u, Cookie: cookie, CSN: csn}:
				case <-ps.stop:
					return
				}
			case *proto.SearchDone:
				if op.Code != proto.ResultSuccess {
					ps.setErr(&ResultError{Code: op.Code, Message: op.Message})
				}
				return
			}
		}
	}()
	return ps, nil
}

// Close abandons the persistent search and closes the connection.
func (p *PersistSession) Close() {
	p.once.Do(func() {
		close(p.stop)
		p.client.mu.Lock()
		_, _ = p.client.send(&proto.AbandonRequest{MessageID: p.id})
		p.client.mu.Unlock()
		_ = p.client.Close()
	})
	<-p.done
}

// --- Referral chasing ----------------------------------------------------------

// Resolver chases referrals across a set of named servers, reproducing the
// distributed operation processing of Figure 2. Host names in LDAP URLs are
// mapped to TCP addresses via the registry.
type Resolver struct {
	// MaxDepth bounds referral chains (0 = DefaultMaxChase). A cascaded
	// topology makes long chains legitimate (leaf → mid → master), so the
	// bound is configurable; genuine cycles are caught separately and
	// immediately by the visited-set check, whatever the depth limit.
	MaxDepth int

	mu      sync.Mutex
	addrs   map[string]string
	clients map[string]*Client
}

// NewResolver creates a resolver with a host registry.
func NewResolver() *Resolver {
	return &Resolver{addrs: make(map[string]string), clients: make(map[string]*Client)}
}

// Register maps a symbolic host name to a TCP address.
func (r *Resolver) Register(host, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addrs[host] = addr
}

// Close closes all pooled client connections.
func (r *Resolver) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.clients {
		_ = c.Close()
	}
	r.clients = make(map[string]*Client)
}

func (r *Resolver) client(host string) (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.clients[host]; ok {
		return c, nil
	}
	addr, ok := r.addrs[host]
	if !ok {
		return nil, fmt.Errorf("ldap resolver: unknown host %q", host)
	}
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	r.clients[host] = c
	return c, nil
}

// RoundTrips sums round trips across all pooled connections.
func (r *Resolver) RoundTrips() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, c := range r.clients {
		n += c.RoundTrips()
	}
	return n
}

// DefaultMaxChase bounds referral chains when Resolver.MaxDepth is unset.
const DefaultMaxChase = 16

// ErrReferralLoop marks a referral chain that revisited a (server, query)
// pair it had already asked: the servers are referring the operation in a
// cycle (e.g. a replica referring to a master that refers back), so no
// amount of chasing can complete it. The wrapped message names the chain.
var ErrReferralLoop = errors.New("referral loop detected")

// chaseState is the per-operation loop-detection state threaded through
// one SearchChasing call: the (host, query) pairs already visited, and the
// visit order for rendering a useful error.
type chaseState struct {
	visited map[string]bool
	chain   []string
}

// chaseKey identifies one (server, query) step of a referral chain. The
// query is part of the key because subordinate references legitimately
// revisit a host with a different base: only re-asking the same question
// of the same server is a cycle.
func chaseKey(host string, q query.Query) string {
	return host + "\x00" + q.Key()
}

// SearchChasing evaluates the query starting at the named server, following
// superior referrals (name resolution) and subordinate references
// (operation completion) until the result is complete. Chains are bounded
// by MaxDepth and cycles across (server, query) pairs are detected
// eagerly, so two servers referring to each other fail with
// ErrReferralLoop on the first revisit instead of burning the depth
// budget.
func (r *Resolver) SearchChasing(host string, q query.Query) (*SearchResult, error) {
	st := &chaseState{visited: make(map[string]bool)}
	return r.chase(host, q, 0, st)
}

func (r *Resolver) maxDepth() int {
	if r.MaxDepth > 0 {
		return r.MaxDepth
	}
	return DefaultMaxChase
}

func (r *Resolver) chase(host string, q query.Query, depth int, st *chaseState) (*SearchResult, error) {
	if depth > r.maxDepth() {
		return nil, fmt.Errorf("ldap resolver: referral chain exceeds %d hops: %s",
			r.maxDepth(), strings.Join(append(st.chain, host), " -> "))
	}
	key := chaseKey(host, q)
	if st.visited[key] {
		return nil, fmt.Errorf("ldap resolver: %w: %s revisits %s",
			ErrReferralLoop, strings.Join(st.chain, " -> "), host)
	}
	st.visited[key] = true
	st.chain = append(st.chain, host)
	c, err := r.client(host)
	if err != nil {
		return nil, err
	}
	res, err := c.Search(q)
	if err != nil {
		var re *ResultError
		if errors.As(err, &re) && re.Code == proto.ResultReferral && len(re.Referrals) > 0 {
			// Superior referral: resend the same request to the referred
			// server (distributed name resolution).
			nextHost, _, perr := ParseURL(re.Referrals[0])
			if perr != nil {
				return nil, perr
			}
			return r.chase(nextHost, q, depth+1, st)
		}
		return res, err
	}
	out := &SearchResult{Entries: res.Entries}
	// Subordinate references: continue the operation with modified bases.
	for _, ref := range res.Referrals {
		refHost, refBase, perr := ParseURL(ref)
		if perr != nil {
			return nil, perr
		}
		sub := q
		if !refBase.IsRoot() {
			sub.Base = refBase
		}
		subRes, err := r.chase(refHost, sub, depth+1, st)
		if err != nil {
			return out, err
		}
		out.Entries = append(out.Entries, subRes.Entries...)
		out.Referrals = append(out.Referrals, subRes.Referrals...)
	}
	return out, nil
}

// ParseURL splits a simplified LDAP URL "ldap://host/base-dn" into its host
// and base DN (root DN when absent).
func ParseURL(u string) (host string, base dn.DN, err error) {
	rest, ok := strings.CutPrefix(u, "ldap://")
	if !ok {
		return "", dn.DN{}, fmt.Errorf("ldap url %q: bad scheme", u)
	}
	host, dnPart, _ := strings.Cut(rest, "/")
	if host == "" {
		return "", dn.DN{}, fmt.Errorf("ldap url %q: missing host", u)
	}
	if dnPart == "" {
		return host, dn.DN{}, nil
	}
	base, err = dn.Parse(dnPart)
	if err != nil {
		return "", dn.DN{}, fmt.Errorf("ldap url %q: %w", u, err)
	}
	return host, base, nil
}
