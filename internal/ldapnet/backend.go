// Package ldapnet runs the LDAP message layer over TCP: a server serving a
// DIT partition (with ReSync protocol support), and a client with referral
// chasing and round-trip accounting — enough to reproduce the distributed
// operation processing of Figure 2 and to synchronize replicas over the
// wire.
package ldapnet

import (
	"errors"
	"fmt"
	"sync"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/edgewrite"
	"filterdir/internal/metrics"
	"filterdir/internal/proto"
	"filterdir/internal/query"
	"filterdir/internal/resync"
)

// parseDN parses a wire DN string.
func parseDN(s string) (dn.DN, error) { return dn.Parse(s) }

// Backend is the server-side service interface.
type Backend interface {
	// Bind authenticates a connection.
	Bind(name, password string) proto.ResultCode
	// Search evaluates a search, returning entries and referrals.
	Search(q query.Query) (*dit.Result, error)
	// ReSyncBegin starts a synchronization session.
	ReSyncBegin(q query.Query) (*resync.PollResult, error)
	// ReSyncPoll continues a session.
	ReSyncPoll(cookie string) (*resync.PollResult, error)
	// ReSyncResume continues a chunked reload from a resume token.
	ReSyncResume(tok proto.ResumeToken) (*resync.PollResult, error)
	// ReSyncRetain runs the incomplete-history mode (equation 3).
	ReSyncRetain(cookie string) (*resync.PollResult, error)
	// ReSyncPersist subscribes to changes after the given cookie.
	ReSyncPersist(cookie string) (*resync.Subscription, error)
	// ReSyncEnd terminates a session.
	ReSyncEnd(cookie string) error
	// Add, Delete, Modify and ModifyDN apply updates.
	Add(e *proto.AddRequest) error
	Delete(d *proto.DelRequest) error
	Modify(m *proto.ModifyRequest) error
	ModifyDN(m *proto.ModifyDNRequest) error
}

// SyncCounterSource is implemented by backends that expose synchronization
// counters; the server then adds its wire-level streaming accounting
// (streamed PDUs, including persist-mode pushes) to the same counters.
type SyncCounterSource interface {
	SyncCounters() *metrics.SyncCounters
}

// EdgeApplier is implemented by backends that can commit edge-originated
// writes forwarded from replicas: the master (assigning the CSN and
// deduplicating replays by op id) and cascade mid-tiers (relaying the op
// upstream unchanged). The server routes update requests carrying the
// edge-write control here.
type EdgeApplier interface {
	EdgeApply(c dit.Change, opID string) (csn uint64, duplicate bool, err error)
}

// ReferralError wraps a write error with referral URLs: the replica does
// not accept the op and the client should retry it at the named server.
type ReferralError struct {
	URLs []string
	Err  error
}

func (e *ReferralError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is.
func (e *ReferralError) Unwrap() error { return e.Err }

// referralsFor extracts referral URLs from a write error.
func referralsFor(err error) []string {
	var re *ReferralError
	if errors.As(err, &re) {
		return re.URLs
	}
	return nil
}

// StoreBackend serves a dit.Store with a resync.Engine, optionally guarded
// by a single bind credential (empty means anonymous access).
type StoreBackend struct {
	Store  *dit.Store
	Engine *resync.Engine
	// BindDN / BindPassword guard non-anonymous access when set.
	BindDN       string
	BindPassword string
	// Writes counts the sequencer side of the edge-write protocol.
	Writes *metrics.WriteCounters

	// edgeSeen dedups replayed edge-write forwards by op id (bounded FIFO):
	// a replica whose commit response was lost replays the op after its WAL
	// recovery, and the recorded CSN is returned instead of applying twice.
	edgeMu    sync.Mutex
	edgeSeen  map[string]uint64
	edgeOrder []string
}

var (
	_ Backend     = (*StoreBackend)(nil)
	_ EdgeApplier = (*StoreBackend)(nil)
)

// maxEdgeDedup bounds the op-id dedup table. Replays arrive promptly (a
// replica re-forwards as soon as it restarts or its retry timer fires), so
// the window only needs to cover the in-flight set, with generous slack.
const maxEdgeDedup = 65536

// NewStoreBackend wraps a store and creates its sync engine; engine
// options (chunked reloads, sync-point retention) pass through.
func NewStoreBackend(store *dit.Store, opts ...resync.EngineOption) *StoreBackend {
	return &StoreBackend{
		Store:    store,
		Engine:   resync.NewEngine(store, opts...),
		Writes:   &metrics.WriteCounters{},
		edgeSeen: make(map[string]uint64),
	}
}

// EdgeApply implements EdgeApplier: the master is the single CSN sequencer.
// The dedup check and the apply run under one lock so concurrent replays of
// the same op id cannot both commit.
func (b *StoreBackend) EdgeApply(c dit.Change, opID string) (uint64, bool, error) {
	b.edgeMu.Lock()
	defer b.edgeMu.Unlock()
	if b.edgeSeen == nil {
		b.edgeSeen = make(map[string]uint64)
	}
	if csn, ok := b.edgeSeen[opID]; ok {
		if b.Writes != nil {
			b.Writes.Duplicates.Add(1)
		}
		return csn, true, nil
	}
	csn, err := b.Store.ApplyCSN(c)
	if err != nil {
		return 0, false, err
	}
	b.edgeSeen[opID] = uint64(csn)
	b.edgeOrder = append(b.edgeOrder, opID)
	if len(b.edgeOrder) > maxEdgeDedup {
		delete(b.edgeSeen, b.edgeOrder[0])
		b.edgeOrder = b.edgeOrder[1:]
	}
	if b.Writes != nil {
		b.Writes.Applied.Add(1)
	}
	return uint64(csn), false, nil
}

// SyncCounters implements SyncCounterSource with the engine's counters.
func (b *StoreBackend) SyncCounters() *metrics.SyncCounters {
	return b.Engine.Counters()
}

// Bind implements Backend.
func (b *StoreBackend) Bind(name, password string) proto.ResultCode {
	if b.BindDN == "" {
		return proto.ResultSuccess
	}
	if name == b.BindDN && password == b.BindPassword {
		return proto.ResultSuccess
	}
	return proto.ResultInvalidCredentials
}

// Search implements Backend.
func (b *StoreBackend) Search(q query.Query) (*dit.Result, error) {
	return b.Store.Search(q)
}

// ReSyncBegin implements Backend.
func (b *StoreBackend) ReSyncBegin(q query.Query) (*resync.PollResult, error) {
	return b.Engine.Begin(q)
}

// ReSyncPoll implements Backend.
func (b *StoreBackend) ReSyncPoll(cookie string) (*resync.PollResult, error) {
	return b.Engine.Poll(cookie)
}

// ReSyncResume implements Backend.
func (b *StoreBackend) ReSyncResume(tok proto.ResumeToken) (*resync.PollResult, error) {
	return b.Engine.ResumeReload(tok)
}

// ReSyncRetain implements Backend.
func (b *StoreBackend) ReSyncRetain(cookie string) (*resync.PollResult, error) {
	return b.Engine.PollRetain(cookie)
}

// ReSyncPersist implements Backend.
func (b *StoreBackend) ReSyncPersist(cookie string) (*resync.Subscription, error) {
	return b.Engine.Persist(cookie)
}

// ReSyncEnd implements Backend.
func (b *StoreBackend) ReSyncEnd(cookie string) error {
	return b.Engine.End(cookie)
}

// Add implements Backend.
func (b *StoreBackend) Add(req *proto.AddRequest) error {
	c, err := changeFromOp(req)
	if err != nil {
		return err
	}
	_, err = b.Store.ApplyCSN(c)
	return err
}

// Delete implements Backend.
func (b *StoreBackend) Delete(req *proto.DelRequest) error {
	c, err := changeFromOp(req)
	if err != nil {
		return err
	}
	_, err = b.Store.ApplyCSN(c)
	return err
}

// Modify implements Backend.
func (b *StoreBackend) Modify(req *proto.ModifyRequest) error {
	c, err := changeFromOp(req)
	if err != nil {
		return err
	}
	_, err = b.Store.ApplyCSN(c)
	return err
}

// ModifyDN implements Backend.
func (b *StoreBackend) ModifyDN(req *proto.ModifyDNRequest) error {
	c, err := changeFromOp(req)
	if err != nil {
		return err
	}
	_, err = b.Store.ApplyCSN(c)
	return err
}

// changeFromOp converts a wire update request into the journal-change form
// shared by the store's apply path, the edge-write WAL, and the upstream
// forwarding client.
func changeFromOp(op proto.Op) (dit.Change, error) {
	switch req := op.(type) {
	case *proto.AddRequest:
		se := proto.SearchEntry{DN: req.DN, Attrs: req.Attrs}
		e, err := se.Entry()
		if err != nil {
			return dit.Change{}, err
		}
		return dit.Change{Type: dit.ChangeAdd, DN: e.DN(), After: e}, nil
	case *proto.DelRequest:
		d, err := parseDN(req.DN)
		if err != nil {
			return dit.Change{}, err
		}
		return dit.Change{Type: dit.ChangeDelete, DN: d}, nil
	case *proto.ModifyRequest:
		d, err := parseDN(req.DN)
		if err != nil {
			return dit.Change{}, err
		}
		mods := make([]dit.Mod, 0, len(req.Changes))
		for _, c := range req.Changes {
			var mop dit.ModOp
			switch c.Op {
			case proto.ModifyOpAdd:
				mop = dit.ModAdd
			case proto.ModifyOpDelete:
				mop = dit.ModDelete
			case proto.ModifyOpReplace:
				mop = dit.ModReplace
			default:
				return dit.Change{}, errors.New("unknown modify op")
			}
			mods = append(mods, dit.Mod{Op: mop, Attr: c.Attr.Type, Values: c.Attr.Values})
		}
		return dit.Change{Type: dit.ChangeModify, DN: d, Mods: mods}, nil
	case *proto.ModifyDNRequest:
		old, err := parseDN(req.DN)
		if err != nil {
			return dit.Change{}, err
		}
		newRDNDN, err := parseDN(req.NewRDN)
		if err != nil {
			return dit.Change{}, err
		}
		leaf, ok := newRDNDN.Leaf()
		if !ok {
			return dit.Change{}, errors.New("empty newRDN")
		}
		var superior dn.DN
		if req.NewSuperior != "" {
			superior, err = parseDN(req.NewSuperior)
			if err != nil {
				return dit.Change{}, err
			}
		} else if p, ok := old.Parent(); ok {
			superior = p
		}
		return dit.Change{Type: dit.ChangeModifyDN, DN: old, NewDN: superior.Child(leaf)}, nil
	default:
		return dit.Change{}, fmt.Errorf("not an update operation: %T", op)
	}
}

// resultCodeFor maps store errors to LDAP result codes.
func resultCodeFor(err error) proto.ResultCode {
	switch {
	case err == nil:
		return proto.ResultSuccess
	case errors.Is(err, dit.ErrNoSuchObject):
		return proto.ResultNoSuchObject
	case errors.Is(err, dit.ErrAlreadyExists):
		return proto.ResultEntryAlreadyExists
	case errors.Is(err, dit.ErrNotLeaf):
		return proto.ResultNotAllowedOnNonLeaf
	case errors.Is(err, dit.ErrSchema):
		return proto.ResultObjectClassViolation
	case errors.Is(err, dit.ErrNoSuchContext):
		return proto.ResultReferral
	case errors.Is(err, ErrNotAnswerable), errors.Is(err, ErrNotContained):
		return proto.ResultReferral
	case errors.Is(err, edgewrite.ErrRejected):
		// The replica's containment gate refused the write; the referral
		// URLs (attached via ReferralError) point the client at the master.
		return proto.ResultReferral
	case errors.Is(err, edgewrite.ErrPending):
		// The write is durably journaled at the replica but its upstream
		// commit is unconfirmed; the client may retry (idempotent at the
		// master once the replay commits) or wait.
		return proto.ResultBusy
	case errors.Is(err, ErrReadOnly):
		return proto.ResultUnwillingToPerform
	case errors.Is(err, resync.ErrNoSuchSession):
		// Stale cookie: the consumer must re-Begin; clients map this code
		// back to resync.ErrNoSuchSession (see ResultError.Unwrap).
		return proto.ResultESyncRefreshRequired
	default:
		// An upstream verdict on a forwarded edge write (e.g. the master
		// answered entryAlreadyExists) relays its code to the edge client.
		var re *ResultError
		if errors.As(err, &re) {
			return re.Code
		}
		return proto.ResultOther
	}
}
