// Package ldapnet runs the LDAP message layer over TCP: a server serving a
// DIT partition (with ReSync protocol support), and a client with referral
// chasing and round-trip accounting — enough to reproduce the distributed
// operation processing of Figure 2 and to synchronize replicas over the
// wire.
package ldapnet

import (
	"errors"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/metrics"
	"filterdir/internal/proto"
	"filterdir/internal/query"
	"filterdir/internal/resync"
)

// parseDN parses a wire DN string.
func parseDN(s string) (dn.DN, error) { return dn.Parse(s) }

// Backend is the server-side service interface.
type Backend interface {
	// Bind authenticates a connection.
	Bind(name, password string) proto.ResultCode
	// Search evaluates a search, returning entries and referrals.
	Search(q query.Query) (*dit.Result, error)
	// ReSyncBegin starts a synchronization session.
	ReSyncBegin(q query.Query) (*resync.PollResult, error)
	// ReSyncPoll continues a session.
	ReSyncPoll(cookie string) (*resync.PollResult, error)
	// ReSyncRetain runs the incomplete-history mode (equation 3).
	ReSyncRetain(cookie string) (*resync.PollResult, error)
	// ReSyncPersist subscribes to changes after the given cookie.
	ReSyncPersist(cookie string) (*resync.Subscription, error)
	// ReSyncEnd terminates a session.
	ReSyncEnd(cookie string) error
	// Add, Delete, Modify and ModifyDN apply updates.
	Add(e *proto.AddRequest) error
	Delete(d *proto.DelRequest) error
	Modify(m *proto.ModifyRequest) error
	ModifyDN(m *proto.ModifyDNRequest) error
}

// SyncCounterSource is implemented by backends that expose synchronization
// counters; the server then adds its wire-level streaming accounting
// (streamed PDUs, including persist-mode pushes) to the same counters.
type SyncCounterSource interface {
	SyncCounters() *metrics.SyncCounters
}

// StoreBackend serves a dit.Store with a resync.Engine, optionally guarded
// by a single bind credential (empty means anonymous access).
type StoreBackend struct {
	Store  *dit.Store
	Engine *resync.Engine
	// BindDN / BindPassword guard non-anonymous access when set.
	BindDN       string
	BindPassword string
}

var _ Backend = (*StoreBackend)(nil)

// NewStoreBackend wraps a store and creates its sync engine.
func NewStoreBackend(store *dit.Store) *StoreBackend {
	return &StoreBackend{Store: store, Engine: resync.NewEngine(store)}
}

// SyncCounters implements SyncCounterSource with the engine's counters.
func (b *StoreBackend) SyncCounters() *metrics.SyncCounters {
	return b.Engine.Counters()
}

// Bind implements Backend.
func (b *StoreBackend) Bind(name, password string) proto.ResultCode {
	if b.BindDN == "" {
		return proto.ResultSuccess
	}
	if name == b.BindDN && password == b.BindPassword {
		return proto.ResultSuccess
	}
	return proto.ResultInvalidCredentials
}

// Search implements Backend.
func (b *StoreBackend) Search(q query.Query) (*dit.Result, error) {
	return b.Store.Search(q)
}

// ReSyncBegin implements Backend.
func (b *StoreBackend) ReSyncBegin(q query.Query) (*resync.PollResult, error) {
	return b.Engine.Begin(q)
}

// ReSyncPoll implements Backend.
func (b *StoreBackend) ReSyncPoll(cookie string) (*resync.PollResult, error) {
	return b.Engine.Poll(cookie)
}

// ReSyncRetain implements Backend.
func (b *StoreBackend) ReSyncRetain(cookie string) (*resync.PollResult, error) {
	return b.Engine.PollRetain(cookie)
}

// ReSyncPersist implements Backend.
func (b *StoreBackend) ReSyncPersist(cookie string) (*resync.Subscription, error) {
	return b.Engine.Persist(cookie)
}

// ReSyncEnd implements Backend.
func (b *StoreBackend) ReSyncEnd(cookie string) error {
	return b.Engine.End(cookie)
}

// Add implements Backend.
func (b *StoreBackend) Add(req *proto.AddRequest) error {
	se := proto.SearchEntry{DN: req.DN, Attrs: req.Attrs}
	e, err := se.Entry()
	if err != nil {
		return err
	}
	return b.Store.Add(e)
}

// Delete implements Backend.
func (b *StoreBackend) Delete(req *proto.DelRequest) error {
	d, err := parseDN(req.DN)
	if err != nil {
		return err
	}
	return b.Store.Delete(d)
}

// Modify implements Backend.
func (b *StoreBackend) Modify(req *proto.ModifyRequest) error {
	d, err := parseDN(req.DN)
	if err != nil {
		return err
	}
	mods := make([]dit.Mod, 0, len(req.Changes))
	for _, c := range req.Changes {
		var op dit.ModOp
		switch c.Op {
		case proto.ModifyOpAdd:
			op = dit.ModAdd
		case proto.ModifyOpDelete:
			op = dit.ModDelete
		case proto.ModifyOpReplace:
			op = dit.ModReplace
		default:
			return errors.New("unknown modify op")
		}
		mods = append(mods, dit.Mod{Op: op, Attr: c.Attr.Type, Values: c.Attr.Values})
	}
	return b.Store.Modify(d, mods)
}

// ModifyDN implements Backend.
func (b *StoreBackend) ModifyDN(req *proto.ModifyDNRequest) error {
	old, err := parseDN(req.DN)
	if err != nil {
		return err
	}
	newRDNDN, err := parseDN(req.NewRDN)
	if err != nil {
		return err
	}
	leaf, ok := newRDNDN.Leaf()
	if !ok {
		return errors.New("empty newRDN")
	}
	var superior = old
	if req.NewSuperior != "" {
		superior, err = parseDN(req.NewSuperior)
		if err != nil {
			return err
		}
	} else if p, ok := old.Parent(); ok {
		superior = p
	}
	return b.Store.ModifyDN(old, leaf, superior)
}

// resultCodeFor maps store errors to LDAP result codes.
func resultCodeFor(err error) proto.ResultCode {
	switch {
	case err == nil:
		return proto.ResultSuccess
	case errors.Is(err, dit.ErrNoSuchObject):
		return proto.ResultNoSuchObject
	case errors.Is(err, dit.ErrAlreadyExists):
		return proto.ResultEntryAlreadyExists
	case errors.Is(err, dit.ErrNotLeaf):
		return proto.ResultNotAllowedOnNonLeaf
	case errors.Is(err, dit.ErrSchema):
		return proto.ResultObjectClassViolation
	case errors.Is(err, dit.ErrNoSuchContext):
		return proto.ResultReferral
	case errors.Is(err, ErrNotAnswerable), errors.Is(err, ErrNotContained):
		return proto.ResultReferral
	case errors.Is(err, ErrReadOnly):
		return proto.ResultUnwillingToPerform
	case errors.Is(err, resync.ErrNoSuchSession):
		// Stale cookie: the consumer must re-Begin; clients map this code
		// back to resync.ErrNoSuchSession (see ResultError.Unwrap).
		return proto.ResultESyncRefreshRequired
	default:
		return proto.ResultOther
	}
}
