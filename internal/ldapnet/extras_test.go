package ldapnet

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/proto"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
	"filterdir/internal/selection"
)

func TestServerSideSort(t *testing.T) {
	store := newTestStore(t)
	srv, _ := startServer(t, store)
	c := dialT(t, srv.Addr())

	q := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)")
	// Ascending by serialnumber.
	res, err := c.SearchWith(q, proto.NewSortControl(proto.SortKey{Attr: "serialnumber"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 5 {
		t.Fatalf("entries = %d", len(res.Entries))
	}
	for i := 1; i < len(res.Entries); i++ {
		prev := res.Entries[i-1].First("serialnumber")
		cur := res.Entries[i].First("serialnumber")
		if prev > cur {
			t.Errorf("not ascending: %s before %s", prev, cur)
		}
	}
	// Descending.
	res, err = c.SearchWith(q, proto.NewSortControl(proto.SortKey{Attr: "serialnumber", Reverse: true}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Entries); i++ {
		if res.Entries[i-1].First("serialnumber") < res.Entries[i].First("serialnumber") {
			t.Error("not descending")
		}
	}
}

func TestSortControlRoundTrip(t *testing.T) {
	c := proto.NewSortControl(
		proto.SortKey{Attr: "sn"},
		proto.SortKey{Attr: "serialnumber", Reverse: true},
	)
	keys, err := proto.ParseSortKeys(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0].Attr != "sn" || keys[0].Reverse || !keys[1].Reverse {
		t.Errorf("keys = %+v", keys)
	}
	resp := proto.NewSortResponseControl(0)
	code, err := proto.ParseSortResponse(resp)
	if err != nil || code != 0 {
		t.Errorf("sort response: %d, %v", code, err)
	}
}

// buildReplica populates a filter replica with one synced stored query.
func buildReplica(t *testing.T, master *StoreBackend) *replica.FilterReplica {
	t.Helper()
	rep, err := replica.NewFilterReplica()
	if err != nil {
		t.Fatal(err)
	}
	spec := query.MustNew("", query.ScopeSubtree, "(serialnumber=04*)")
	res, err := master.Engine.Begin(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep.AddStored(spec, res.Cookie)
	if err := rep.ApplySync(spec, res.Updates); err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestReplicaBackendHitAndReferral(t *testing.T) {
	store := newTestStore(t)
	masterBackend := NewStoreBackend(store)
	masterSrv, err := Serve("127.0.0.1:0", masterBackend)
	if err != nil {
		t.Fatal(err)
	}
	defer masterSrv.Close()

	rep := buildReplica(t, masterBackend)
	repSrv, err := Serve("127.0.0.1:0", NewReplicaBackend(rep, "ldap://master"))
	if err != nil {
		t.Fatal(err)
	}
	defer repSrv.Close()

	c := dialT(t, repSrv.Addr())
	// Contained query: answered locally.
	res, err := c.Search(query.MustNew("", query.ScopeSubtree, "(serialnumber=0401)"))
	if err != nil {
		t.Fatalf("contained query: %v", err)
	}
	if len(res.Entries) != 1 {
		t.Fatalf("entries = %d", len(res.Entries))
	}
	// Uncontained query: referral to master.
	_, err = c.Search(query.MustNew("", query.ScopeSubtree, "(serialnumber=05*)"))
	var re *ResultError
	if !errors.As(err, &re) || re.Code != proto.ResultReferral {
		t.Fatalf("uncontained query: %v", err)
	}
	if len(re.Referrals) != 1 || re.Referrals[0] != "ldap://master" {
		t.Errorf("referrals = %v", re.Referrals)
	}
	// Updates refused.
	e := entry.New(dn.MustParse("cn=x,c=us,o=xyz"))
	e.Put("objectclass", "person").Put("cn", "x").Put("sn", "x")
	if err := c.Add(e); err == nil {
		t.Error("replica accepted an update")
	}
}

func TestReplicaBackendChaseToMaster(t *testing.T) {
	// A resolver chases the replica's referral back to the master and
	// completes the query there.
	store := newTestStore(t)
	masterBackend := NewStoreBackend(store)
	masterSrv, err := Serve("127.0.0.1:0", masterBackend)
	if err != nil {
		t.Fatal(err)
	}
	defer masterSrv.Close()
	rep := buildReplica(t, masterBackend)
	repSrv, err := Serve("127.0.0.1:0", NewReplicaBackend(rep, "ldap://master"))
	if err != nil {
		t.Fatal(err)
	}
	defer repSrv.Close()

	r := NewResolver()
	defer r.Close()
	r.Register("replica", repSrv.Addr())
	r.Register("master", masterSrv.Addr())

	res, err := r.SearchChasing("replica", query.MustNew("o=xyz", query.ScopeSubtree, "(objectclass=country)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 {
		t.Errorf("entries = %d, want 1 (from master)", len(res.Entries))
	}
	if r.RoundTrips() != 2 {
		t.Errorf("round trips = %d, want 2 (replica miss + master)", r.RoundTrips())
	}
}

func TestReplicaBackendReadOnlySync(t *testing.T) {
	rep, err := replica.NewFilterReplica()
	if err != nil {
		t.Fatal(err)
	}
	b := NewReplicaBackend(rep, "ldap://master")
	if _, err := b.ReSyncBegin(query.Query{}); !errors.Is(err, ErrReadOnly) {
		t.Error("ReSyncBegin must be refused")
	}
	if _, err := b.ReSyncPoll("x"); !errors.Is(err, ErrReadOnly) {
		t.Error("ReSyncPoll must be refused")
	}
	if err := b.ReSyncEnd("x"); !errors.Is(err, ErrReadOnly) {
		t.Error("ReSyncEnd must be refused")
	}
}

func TestWireSyncFullReloadAfterTrim(t *testing.T) {
	// A journal-limited master forces a FullReload over the wire; the
	// client-side applier recovers and converges.
	store, err := newTrimStore()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", NewStoreBackend(store))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := dialT(t, srv.Addr())

	spec := query.MustNew("o=xyz", query.ScopeSubtree, "(objectclass=person)")
	res, err := c.Sync(spec, proto.ReSyncModePoll, "")
	if err != nil {
		t.Fatal(err)
	}
	repStore, err := newReplicaDit()
	if err != nil {
		t.Fatal(err)
	}
	ap := resync.NewApplier(repStore)
	if err := ap.Apply(spec, &resync.PollResult{Updates: res.Updates}); err != nil {
		t.Fatal(err)
	}

	// More changes than the journal holds.
	for i := 0; i < 6; i++ {
		e := entry.New(dn.MustParse("cn=t" + string(rune('a'+i)) + ",o=xyz"))
		e.Put("objectclass", "person").Put("cn", "t").Put("sn", "t")
		if err := store.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	res, err = c.Sync(spec, proto.ReSyncModePoll, res.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullReload {
		t.Fatal("expected FullReload flag over the wire")
	}
	if err := ap.Apply(spec, &resync.PollResult{Updates: res.Updates, FullReload: true}); err != nil {
		t.Fatal(err)
	}
	if ok, why := resync.Converged(store, repStore, spec); !ok {
		t.Fatalf("not converged after wire full reload: %s", why)
	}
}

// newTrimStore builds a journal-limited master with one person entry.
func newTrimStore() (*dit.Store, error) {
	store, err := dit.NewStore([]string{"o=xyz"}, dit.WithJournalLimit(2))
	if err != nil {
		return nil, err
	}
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	if err := store.Add(org); err != nil {
		return nil, err
	}
	p := entry.New(dn.MustParse("cn=seed,o=xyz"))
	p.Put("objectclass", "person").Put("cn", "seed").Put("sn", "s")
	if err := store.Add(p); err != nil {
		return nil, err
	}
	return store, nil
}

// newReplicaDit builds an empty whole-DIT replica store.
func newReplicaDit() (*dit.Store, error) {
	return dit.NewStore([]string{""})
}

func TestAdaptiveReplicaOverWire(t *testing.T) {
	// An AdaptiveReplica driven through ClientSupplier behaves like its
	// in-process twin: it learns the hot region, installs the filter over
	// the wire, and polls updates.
	store := newTestStore(t)
	srv, _ := startServer(t, store)
	c := dialT(t, srv.Addr())

	rep, err := replica.NewFilterReplica()
	if err != nil {
		t.Fatal(err)
	}
	gen := selection.NewGeneralizer(selection.PrefixRule{Attr: "serialnumber", PrefixLen: 3})
	sizeOf := func(q query.Query) int { return len(store.MatchAll(q)) }
	sel := selection.NewSelector(gen, sizeOf, 10, 4)
	ar := replica.NewAdaptiveReplica(rep, sel, ClientSupplier{Client: c})

	hot := query.MustNew("", query.ScopeSubtree, "(serialnumber=0401)")
	hits := 0
	for i := 0; i < 12; i++ {
		hit, err := ar.Serve(hot)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			hits++
		}
	}
	if hits < 5 {
		t.Fatalf("adaptive-over-wire never learned: %d hits", hits)
	}

	// Master update propagates through a wire poll.
	if err := store.Modify(dn.MustParse("cn=p1,c=us,o=xyz"),
		[]dit.Mod{{Op: dit.ModReplace, Attr: "sn", Values: []string{"v2"}}}); err != nil {
		t.Fatal(err)
	}
	if err := ar.SyncAll(); err != nil {
		t.Fatal(err)
	}
	entries, hit, _ := rep.Answer(hot)
	if !hit || len(entries) != 1 || entries[0].First("sn") != "v2" {
		t.Fatalf("wire sync failed: %v", entries)
	}
	if err := ar.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClients(t *testing.T) {
	// Many clients search and sync in parallel while the master mutates;
	// run with -race to validate the server's locking.
	store := newTestStore(t)
	srv, _ := startServer(t, store)

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			spec := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)")
			res, err := c.Sync(spec, proto.ReSyncModePoll, "")
			if err != nil {
				errs <- err
				return
			}
			cookie := res.Cookie
			for i := 0; i < 20; i++ {
				if _, err := c.Search(query.MustNew("o=xyz", query.ScopeSubtree, "(sn=*)")); err != nil {
					errs <- err
					return
				}
				poll, err := c.Sync(spec, proto.ReSyncModePoll, cookie)
				if err != nil {
					errs <- err
					return
				}
				cookie = poll.Cookie
			}
			errs <- c.SyncEnd(cookie)
		}(w)
	}
	// A writer mutates the master concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			d := dn.MustParse("cn=p1,c=us,o=xyz")
			_ = store.Modify(d, []dit.Mod{{Op: dit.ModReplace, Attr: "sn",
				Values: []string{fmt.Sprintf("v%d", i)}}})
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

func TestPagedSearch(t *testing.T) {
	store := newTestStore(t)
	srv, _ := startServer(t, store)
	c := dialT(t, srv.Addr())

	q := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)")
	before := c.RoundTrips()
	res, err := c.SearchPaged(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 5 {
		t.Fatalf("paged entries = %d, want 5", len(res.Entries))
	}
	// 5 entries at page size 2 → 3 pages → 3 round trips.
	if got := c.RoundTrips() - before; got != 3 {
		t.Errorf("round trips = %d, want 3", got)
	}
	// Pages must not duplicate or drop entries.
	seen := make(map[string]bool)
	for _, e := range res.Entries {
		if seen[e.DN().Norm()] {
			t.Errorf("duplicate entry %s across pages", e.DN())
		}
		seen[e.DN().Norm()] = true
	}
	// Deterministic DN order across the whole result.
	for i := 1; i < len(res.Entries); i++ {
		if res.Entries[i-1].DN().Norm() > res.Entries[i].DN().Norm() {
			t.Error("paged result not in DN order")
		}
	}
}

func TestPagedSearchWithSort(t *testing.T) {
	store := newTestStore(t)
	srv, _ := startServer(t, store)
	c := dialT(t, srv.Addr())

	// Page manually with a sort control attached: ordering must follow the
	// sort key (descending serial), stable across pages.
	q := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)")
	var all []string
	cookie := ""
	for {
		res, done, next, err := c.searchPageWithSort(q, 2, cookie)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range res.Entries {
			all = append(all, e.First("serialnumber"))
		}
		if done {
			break
		}
		cookie = next
	}
	if len(all) != 5 {
		t.Fatalf("entries = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] < all[i] {
			t.Errorf("sorted paging out of order: %v", all)
		}
	}
}

// searchPageWithSort is a test helper driving one page with both controls.
func (c *Client) searchPageWithSort(q query.Query, pageSize int, cookie string) (*SearchResult, bool, string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, err := c.send(&proto.SearchRequest{Query: q},
		proto.NewPagedControl(int64(pageSize), cookie),
		proto.NewSortControl(proto.SortKey{Attr: "serialnumber", Reverse: true}))
	if err != nil {
		return nil, false, "", err
	}
	res := &SearchResult{}
	for {
		m, err := c.read(id)
		if err != nil {
			return res, false, "", err
		}
		switch op := m.Op.(type) {
		case *proto.SearchEntry:
			e, err := op.Entry()
			if err != nil {
				return res, false, "", err
			}
			res.Entries = append(res.Entries, e)
		case *proto.SearchDone:
			pc, ok := m.Control(proto.OIDPagedResults)
			if !ok {
				return res, true, "", nil
			}
			_, next, err := proto.ParsePaged(pc)
			if err != nil {
				return res, false, "", err
			}
			return res, next == "", next, nil
		}
	}
}

func TestPagedSearchBadCookie(t *testing.T) {
	store := newTestStore(t)
	srv, _ := startServer(t, store)
	c := dialT(t, srv.Addr())
	q := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)")
	_, _, _, err := c.searchPage(q, 2, "not-a-number")
	var re *ResultError
	if !errors.As(err, &re) || re.Code != proto.ResultProtocolError {
		t.Errorf("bad cookie: %v", err)
	}
}
