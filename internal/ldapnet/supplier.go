package ldapnet

import (
	"filterdir/internal/proto"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
)

// ClientSupplier adapts an LDAP client to the replica.Supplier interface, so
// an AdaptiveReplica synchronizes over the wire exactly as it would against
// a local engine.
type ClientSupplier struct {
	Client *Client
}

var _ replica.Supplier = ClientSupplier{}

// SyncBegin implements replica.Supplier.
func (s ClientSupplier) SyncBegin(q query.Query) ([]resync.Update, string, error) {
	res, err := s.Client.Sync(q, proto.ReSyncModePoll, "")
	if err != nil {
		return nil, "", err
	}
	return res.Updates, res.Cookie, nil
}

// SyncPoll implements replica.Supplier.
func (s ClientSupplier) SyncPoll(cookie string) ([]resync.Update, string, bool, error) {
	// The protocol resumes a session by cookie; the query on the request is
	// ignored by the server for an established session.
	res, err := s.Client.Sync(query.Query{Scope: query.ScopeSubtree}, proto.ReSyncModePoll, cookie)
	if err != nil {
		return nil, "", false, err
	}
	return res.Updates, res.Cookie, res.FullReload, nil
}

// SyncEnd implements replica.Supplier.
func (s ClientSupplier) SyncEnd(cookie string) error {
	return s.Client.SyncEnd(cookie)
}
