package ldapnet

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"filterdir/internal/metrics"
)

// Write-queue policy: a connection buffers up to streamQueueCap encoded
// persist-stream messages; a push waits up to enqueueWait for space before
// the stream is torn down (the engine-level slow-consumer policy usually
// trips first — this is the transport backstop). A wedged consumer socket
// is detected by writeTimeout on the drain goroutine's writes.
const (
	streamQueueCap = 64
	enqueueWait    = 250 * time.Millisecond
	writeTimeout   = 30 * time.Second
)

// connWriter serializes all writes to one connection. Synchronous
// request/response traffic writes directly under mu; persist-stream pushes
// go through a bounded queue drained by a dedicated goroutine, so one
// connection's slow consumer exerts backpressure on its own stream instead
// of blocking the engine's broadcaster or other sessions sharing the
// process. Interleaving is at whole-message granularity, which LDAP
// permits across message IDs; all messages of one stream use the queue, so
// they stay ordered among themselves.
type connWriter struct {
	conn  net.Conn
	stats *metrics.SyncCounters // nil when the backend exposes no counters

	mu sync.Mutex // serializes writes to conn

	q      chan []byte
	stop   chan struct{}
	done   chan struct{}
	once   sync.Once
	failed atomic.Bool
}

func newConnWriter(conn net.Conn, stats *metrics.SyncCounters) *connWriter {
	w := &connWriter{
		conn:  conn,
		stats: stats,
		q:     make(chan []byte, streamQueueCap),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go w.drain()
	return w
}

// writeSync writes one encoded message directly; used for synchronous
// request/response traffic.
func (w *connWriter) writeSync(b []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err := w.conn.Write(b)
	return err
}

// enqueue queues one encoded stream message, waiting up to enqueueWait for
// space. A false return means the queue stayed full, the connection already
// failed, or the writer was closed — the stream should be torn down.
//
// A true return guarantees the message reaches the drain goroutine's write
// path: the send is rechecked against w.stop, and drain flushes messages
// queued before the stop, so close() racing an enqueue cannot strand a PDU
// that was reported as delivered (e.g. a stream's final SearchDone during
// connection teardown).
func (w *connWriter) enqueue(b []byte) bool {
	if w.failed.Load() {
		return false
	}
	select {
	case <-w.stop:
		return false
	default:
	}
	select {
	case w.q <- b:
	default:
		t := time.NewTimer(enqueueWait)
		defer t.Stop()
		select {
		case w.q <- b:
		case <-t.C:
			return false
		case <-w.stop:
			return false
		}
	}
	// The send can race close(): if stop is already closed the drain
	// goroutine may have finished its final flush before the message
	// landed, so it must be reported undelivered.
	select {
	case <-w.stop:
		return false
	default:
	}
	if w.stats != nil {
		w.stats.ObserveQueueDepth(len(w.q))
	}
	return true
}

// drain writes queued stream messages in order. After a write failure the
// connection is closed and remaining messages are discarded, so enqueuers
// are never blocked by a dead consumer. On stop, messages already queued
// are flushed before exiting — a successful enqueue promises delivery to
// the socket (unless the connection fails).
func (w *connWriter) drain() {
	defer close(w.done)
	for {
		select {
		case b := <-w.q:
			w.write(b)
		case <-w.stop:
			for {
				select {
				case b := <-w.q:
					w.write(b)
				default:
					return
				}
			}
		}
	}
}

// write sends one queued message to the connection, failing the writer on
// error; writes after a failure are discarded.
func (w *connWriter) write(b []byte) {
	if w.failed.Load() {
		return
	}
	w.mu.Lock()
	_ = w.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	_, err := w.conn.Write(b)
	_ = w.conn.SetWriteDeadline(time.Time{})
	w.mu.Unlock()
	if err != nil {
		w.fail()
	}
}

// fail marks the connection dead and closes it, unblocking its reader.
func (w *connWriter) fail() {
	if w.failed.CompareAndSwap(false, true) {
		_ = w.conn.Close()
	}
}

// close stops the drain goroutine and waits for it.
func (w *connWriter) close() {
	w.once.Do(func() { close(w.stop) })
	<-w.done
}
