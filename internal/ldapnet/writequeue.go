package ldapnet

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"filterdir/internal/metrics"
)

// Write-queue policy: a connection buffers up to streamQueueCap encoded
// persist-stream messages; a push waits up to enqueueWait for space before
// the stream is torn down (the engine-level slow-consumer policy usually
// trips first — this is the transport backstop). A wedged consumer socket
// is detected by writeTimeout on the drain goroutine's writes.
const (
	streamQueueCap = 64
	enqueueWait    = 250 * time.Millisecond
	writeTimeout   = 30 * time.Second
)

// connWriter serializes all writes to one connection. Synchronous
// request/response traffic writes directly under mu; persist-stream pushes
// go through a bounded queue drained by a dedicated goroutine, so one
// connection's slow consumer exerts backpressure on its own stream instead
// of blocking the engine's broadcaster or other sessions sharing the
// process. Interleaving is at whole-message granularity, which LDAP
// permits across message IDs; all messages of one stream use the queue, so
// they stay ordered among themselves.
type connWriter struct {
	conn  net.Conn
	stats *metrics.SyncCounters // nil when the backend exposes no counters

	mu sync.Mutex // serializes writes to conn

	q      chan []byte
	stop   chan struct{}
	done   chan struct{}
	once   sync.Once
	failed atomic.Bool
}

func newConnWriter(conn net.Conn, stats *metrics.SyncCounters) *connWriter {
	w := &connWriter{
		conn:  conn,
		stats: stats,
		q:     make(chan []byte, streamQueueCap),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go w.drain()
	return w
}

// writeSync writes one encoded message directly; used for synchronous
// request/response traffic.
func (w *connWriter) writeSync(b []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err := w.conn.Write(b)
	return err
}

// enqueue queues one encoded stream message, waiting up to enqueueWait for
// space. A false return means the queue stayed full (or the connection
// already failed) and the stream should be torn down.
func (w *connWriter) enqueue(b []byte) bool {
	if w.failed.Load() {
		return false
	}
	if w.stats != nil {
		w.stats.ObserveQueueDepth(len(w.q) + 1)
	}
	select {
	case w.q <- b:
		return true
	default:
	}
	t := time.NewTimer(enqueueWait)
	defer t.Stop()
	select {
	case w.q <- b:
		return true
	case <-t.C:
		return false
	case <-w.stop:
		return false
	}
}

// drain writes queued stream messages in order. After a write failure the
// connection is closed and remaining messages are discarded, so enqueuers
// are never blocked by a dead consumer.
func (w *connWriter) drain() {
	defer close(w.done)
	for {
		select {
		case b := <-w.q:
			if w.failed.Load() {
				continue
			}
			w.mu.Lock()
			_ = w.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
			_, err := w.conn.Write(b)
			_ = w.conn.SetWriteDeadline(time.Time{})
			w.mu.Unlock()
			if err != nil {
				w.fail()
			}
		case <-w.stop:
			return
		}
	}
}

// fail marks the connection dead and closes it, unblocking its reader.
func (w *connWriter) fail() {
	if w.failed.CompareAndSwap(false, true) {
		_ = w.conn.Close()
	}
}

// close stops the drain goroutine and waits for it.
func (w *connWriter) close() {
	w.once.Do(func() { close(w.stop) })
	<-w.done
}
