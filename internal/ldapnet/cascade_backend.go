package ldapnet

import (
	"errors"

	"filterdir/internal/dit"
	"filterdir/internal/edgewrite"
	"filterdir/internal/metrics"
	"filterdir/internal/proto"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
)

// ErrNotContained marks a downstream synchronization spec that is not
// contained in the serving replica's stored queries: the mid-tier cannot
// prove it holds every entry the spec selects, so the session must be
// established upstream instead. On the wire it maps to a referral result;
// the client maps the referral back to this sentinel so a supervisor can
// divert to its fallback master with errors.Is.
var ErrNotContained = errors.New("sync spec not contained in replica's stored queries")

// SyncSupplier is the replica-side supplier surface of a cascade mid-tier:
// the ReSync control served over the tier's own engine, with Begin gated by
// query containment (internal/cascade.Tier implements it).
type SyncSupplier interface {
	SyncBegin(q query.Query) (*resync.PollResult, error)
	SyncPoll(cookie string) (*resync.PollResult, error)
	SyncResume(tok proto.ResumeToken) (*resync.PollResult, error)
	SyncRetain(cookie string) (*resync.PollResult, error)
	SyncPersist(cookie string) (*resync.Subscription, error)
	SyncEnd(cookie string) error
	SyncCounters() *metrics.SyncCounters
}

// FilterWatcher is implemented by suppliers whose admission filter set can
// change at runtime (an adaptive cascade tier). FilterGeneration returns the
// current generation — bumped on every adopt/retire — and a channel that is
// closed when the generation next advances; callers re-fetch after the close.
// A nil channel means the filter set is static.
type FilterWatcher interface {
	FilterGeneration() (uint64, <-chan struct{})
}

// SpecAdmitter is implemented by backends that can answer "would this sync
// spec be admitted right now?" without establishing a session. The server's
// filters-watch fast path uses it: a watcher whose spec is already covered
// by the current filter set is answered immediately instead of parked
// waiting for a generation bump that may never come — closing the race where
// the tier widens between the leaf's rejection and its watch arriving.
type SpecAdmitter interface {
	AdmitSpec(q query.Query) error
}

// CascadeBackend serves a mid-tier cascade replica over the wire: searches
// behave exactly like ReplicaBackend (containment hit → local answer, miss
// → referral), but ReSync operations are served from the tier's own engine
// instead of being refused — the replica acts as a containment-gated
// supplier for downstream replicas. The tier's own content changes only
// through its upstream session; updates submitted here ride the embedded
// ReplicaBackend's edge-write path, and edge-write forwards from
// downstream replicas are relayed one hop closer to the master via
// Upstream — the op id travels unchanged, so the master's dedup sees one
// op no matter how many hops (or replays) it took.
type CascadeBackend struct {
	*ReplicaBackend
	Supplier SyncSupplier
	// Upstream relays edge-write forwards toward the sequencer; nil refuses
	// them (downstream writers then divert to their fallback master).
	Upstream edgewrite.Forwarder
}

var (
	_ Backend           = (*CascadeBackend)(nil)
	_ SyncCounterSource = (*CascadeBackend)(nil)
)

// NewCascadeBackend wraps a filter replica and its tier supplier. masterURL
// is the referral target for search misses and rejected sync specs.
func NewCascadeBackend(rep *replica.FilterReplica, sup SyncSupplier, masterURL string) *CascadeBackend {
	return &CascadeBackend{
		ReplicaBackend: NewReplicaBackend(rep, masterURL),
		Supplier:       sup,
	}
}

// EdgeApply implements EdgeApplier by relaying the forwarded op upstream —
// the mid-tier hop of the edge-write protocol. The tier itself applies
// nothing: the committed change comes back down its ordinary sync session.
func (b *CascadeBackend) EdgeApply(c dit.Change, opID string) (uint64, bool, error) {
	if b.Upstream == nil {
		return 0, false, ErrReadOnly
	}
	return b.Upstream.Forward(c, opID)
}

// SyncCounters implements SyncCounterSource with the tier engine's
// counters, so the server's streaming accounting lands in the same place.
func (b *CascadeBackend) SyncCounters() *metrics.SyncCounters {
	return b.Supplier.SyncCounters()
}

// ReSyncBegin implements Backend: the spec is admitted only when contained
// in the tier's stored queries; a rejection surfaces as a referral carrying
// ErrNotContained semantics.
func (b *CascadeBackend) ReSyncBegin(q query.Query) (*resync.PollResult, error) {
	return b.Supplier.SyncBegin(q)
}

// ReSyncPoll implements Backend via the tier engine.
func (b *CascadeBackend) ReSyncPoll(cookie string) (*resync.PollResult, error) {
	return b.Supplier.SyncPoll(cookie)
}

// ReSyncResume implements Backend via the tier engine: the token names a
// session the tier already admitted, so no containment re-check is needed.
func (b *CascadeBackend) ReSyncResume(tok proto.ResumeToken) (*resync.PollResult, error) {
	return b.Supplier.SyncResume(tok)
}

// ReSyncRetain implements Backend via the tier engine.
func (b *CascadeBackend) ReSyncRetain(cookie string) (*resync.PollResult, error) {
	return b.Supplier.SyncRetain(cookie)
}

// ReSyncPersist implements Backend via the tier engine.
func (b *CascadeBackend) ReSyncPersist(cookie string) (*resync.Subscription, error) {
	return b.Supplier.SyncPersist(cookie)
}

// ReSyncEnd implements Backend via the tier engine.
func (b *CascadeBackend) ReSyncEnd(cookie string) error {
	return b.Supplier.SyncEnd(cookie)
}

// FilterGeneration implements FilterWatcher by delegating to the tier when
// it is adaptive; a static tier reports generation 0 with a nil channel and
// the server refuses the watch.
func (b *CascadeBackend) FilterGeneration() (uint64, <-chan struct{}) {
	if fw, ok := b.Supplier.(FilterWatcher); ok {
		return fw.FilterGeneration()
	}
	return 0, nil
}

// AdmitSpec implements SpecAdmitter against the tier's admission gate, so
// the filters-watch fast path sees exactly the containment decision a
// ReSyncBegin would. Admission side effects (counters, the tier's admission
// observer) fire as for any other admission probe.
func (b *CascadeBackend) AdmitSpec(q query.Query) error {
	if adm, ok := b.Supplier.(interface{ Admit(q query.Query) error }); ok {
		return adm.Admit(q)
	}
	return ErrNotContained
}

// Bind implements Backend (anonymous only, like ReplicaBackend).
func (b *CascadeBackend) Bind(name, password string) proto.ResultCode {
	return b.ReplicaBackend.Bind(name, password)
}
