package ldapnet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"sync"

	"filterdir/internal/entry"
	"filterdir/internal/metrics"
	"filterdir/internal/proto"
	"filterdir/internal/resync"
)

// Server accepts LDAP connections and dispatches them to a Backend.
type Server struct {
	ln      net.Listener
	backend Backend
	// sync receives wire-level streaming accounting when the backend
	// exposes counters (nil otherwise).
	syncStats *metrics.SyncCounters

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server on addr ("127.0.0.1:0" picks a free port).
func Serve(addr string, backend Backend) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ldap server listen: %w", err)
	}
	return ServeListener(ln, backend), nil
}

// ServeListener starts a server on an existing listener; fault-injection
// layers (internal/chaos) and tests wrap the listener before handing it in.
func ServeListener(ln net.Listener, backend Backend) *Server {
	s := &Server{ln: ln, backend: backend, conns: make(map[net.Conn]bool)}
	if src, ok := backend.(SyncCounterSource); ok {
		s.syncStats = src.SyncCounters()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// SyncCounters returns the synchronization counters shared with the
// backend's engine, or nil when the backend exposes none.
func (s *Server) SyncCounters() *metrics.SyncCounters { return s.syncStats }

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ActiveConns reports the number of live client connections — a
// test-visible probe used by the convergence oracle and fault-injection
// tests to observe connection churn.
func (s *Server) ActiveConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Close stops the listener, closes all connections and waits for the
// handler goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	_ = conn.Close()
}

// connState tracks per-connection persistent searches and filter-generation
// watches for abandon, plus the connection's write queue.
type connState struct {
	mu       sync.Mutex
	persists map[int64]*resync.Subscription
	watches  map[int64]chan struct{}
	w        *connWriter
}

func (cs *connState) addPersist(id int64, sub *resync.Subscription) {
	cs.mu.Lock()
	cs.persists[id] = sub
	cs.mu.Unlock()
}

func (cs *connState) takePersist(id int64) *resync.Subscription {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	sub := cs.persists[id]
	delete(cs.persists, id)
	return sub
}

// addWatch registers a filter-generation watch; the returned channel is
// closed when the watch is cancelled (abandon or connection teardown).
func (cs *connState) addWatch(id int64) chan struct{} {
	cancel := make(chan struct{})
	cs.mu.Lock()
	cs.watches[id] = cancel
	cs.mu.Unlock()
	return cancel
}

// dropWatch removes a finished watch without cancelling it (the watch
// goroutine calls this on exit). Channel close is left to cancelWatch and
// closeAll, which delete the entry under the same lock — so each cancel
// channel is closed at most once.
func (cs *connState) dropWatch(id int64) {
	cs.mu.Lock()
	delete(cs.watches, id)
	cs.mu.Unlock()
}

// cancelWatch cancels a pending watch, if any (abandon).
func (cs *connState) cancelWatch(id int64) {
	cs.mu.Lock()
	cancel := cs.watches[id]
	delete(cs.watches, id)
	cs.mu.Unlock()
	if cancel != nil {
		close(cancel)
	}
}

func (cs *connState) closeAll() {
	cs.mu.Lock()
	subs := make([]*resync.Subscription, 0, len(cs.persists))
	for _, sub := range cs.persists {
		subs = append(subs, sub)
	}
	cs.persists = make(map[int64]*resync.Subscription)
	cancels := make([]chan struct{}, 0, len(cs.watches))
	for _, cancel := range cs.watches {
		cancels = append(cancels, cancel)
	}
	cs.watches = make(map[int64]chan struct{})
	cs.mu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
	for _, cancel := range cancels {
		close(cancel)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)
	state := &connState{
		persists: make(map[int64]*resync.Subscription),
		watches:  make(map[int64]chan struct{}),
		w:        newConnWriter(conn, s.syncStats),
	}
	defer state.w.close()
	defer state.closeAll()
	r := bufio.NewReader(conn)
	for {
		msg, err := proto.ReadMessage(r)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Protocol error: nothing sensible to send; drop.
				_ = err
			}
			return
		}
		switch op := msg.Op.(type) {
		case *proto.UnbindRequest:
			return
		case *proto.BindRequest:
			code := s.backend.Bind(op.Name, op.Password)
			s.reply(state, conn, msg.ID, &proto.BindResponse{}, code, "", nil, nil)
		case *proto.AbandonRequest:
			if sub := state.takePersist(op.MessageID); sub != nil {
				sub.Close()
			}
			state.cancelWatch(op.MessageID)
			// Abandon has no response.
		case *proto.SearchRequest:
			s.handleSearch(state, conn, msg, op)
		case *proto.AddRequest:
			s.handleWrite(state, conn, msg, &proto.AddResponse{}, func() error { return s.backend.Add(op) })
		case *proto.DelRequest:
			s.handleWrite(state, conn, msg, &proto.DelResponse{}, func() error { return s.backend.Delete(op) })
		case *proto.ModifyRequest:
			s.handleWrite(state, conn, msg, &proto.ModifyResponse{}, func() error { return s.backend.Modify(op) })
		case *proto.ModifyDNRequest:
			s.handleWrite(state, conn, msg, &proto.ModifyDNResponse{}, func() error { return s.backend.ModifyDN(op) })
		default:
			s.reply(state, conn, msg.ID, &proto.SearchDone{}, proto.ResultProtocolError, "unsupported operation", nil, nil)
		}
	}
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// handleWrite dispatches one update operation. A request carrying the
// edge-write control is an edge-originated op forwarded from a replica: it
// routes to the backend's EdgeApplier (CSN assignment plus dedup by op id
// on the master; upstream relay on a mid-tier) and the assigned CSN rides
// back on the response's edge-write-done control. Plain requests go through
// the Backend write methods — which on an edge-writing replica journal and
// forward the op themselves. Either way, errors carrying referral URLs (a
// replica refusing a write it does not track) surface as LDAP referrals the
// client can chase.
func (s *Server) handleWrite(state *connState, conn net.Conn, msg *proto.Message, resp proto.Op, apply func() error) {
	if c, ok := msg.Control(proto.OIDEdgeWrite); ok {
		opID, err := proto.ParseEdgeWrite(c)
		if err != nil {
			s.reply(state, conn, msg.ID, resp, proto.ResultProtocolError, err.Error(), nil, nil)
			return
		}
		ea, ok := s.backend.(EdgeApplier)
		if !ok {
			s.reply(state, conn, msg.ID, resp, proto.ResultUnwillingToPerform,
				"edge-write forwarding not supported by this server", nil, nil)
			return
		}
		ch, err := changeFromOp(msg.Op)
		if err != nil {
			s.reply(state, conn, msg.ID, resp, proto.ResultProtocolError, err.Error(), nil, nil)
			return
		}
		csn, dup, err := ea.EdgeApply(ch, opID)
		if err != nil {
			s.reply(state, conn, msg.ID, resp, resultCodeFor(err), errText(err), referralsFor(err), nil)
			return
		}
		s.reply(state, conn, msg.ID, resp, proto.ResultSuccess, "", nil,
			[]proto.Control{proto.NewEdgeWriteDoneControl(csn, dup)})
		return
	}
	err := apply()
	s.reply(state, conn, msg.ID, resp, resultCodeFor(err), errText(err), referralsFor(err), nil)
}

// reply sends a single result-bearing response.
func (s *Server) reply(state *connState, conn net.Conn, id int64, op proto.Op,
	code proto.ResultCode, msg string, referrals []string, controls []proto.Control) {
	setResult(op, code, msg, referrals)
	m := &proto.Message{ID: id, Op: op, Controls: controls}
	if enc, err := m.Encode(); err == nil {
		_ = state.w.writeSync(enc)
	}
}

// setResult injects the LDAPResult into a response op.
func setResult(op proto.Op, code proto.ResultCode, msg string, referrals []string) {
	r := proto.Result{Code: code, Message: msg, Referrals: referrals}
	switch t := op.(type) {
	case *proto.BindResponse:
		t.Result = r
	case *proto.SearchDone:
		t.Result = r
	case *proto.AddResponse:
		t.Result = r
	case *proto.DelResponse:
		t.Result = r
	case *proto.ModifyResponse:
		t.Result = r
	case *proto.ModifyDNResponse:
		t.Result = r
	}
}

func (s *Server) send(state *connState, conn net.Conn, m *proto.Message) error {
	enc, err := m.Encode()
	if err != nil {
		return err
	}
	return state.w.writeSync(enc)
}

func (s *Server) handleSearch(state *connState, conn net.Conn, msg *proto.Message, op *proto.SearchRequest) {
	if c, ok := msg.Control(proto.OIDFiltersWatch); ok {
		s.handleFiltersWatch(state, conn, msg.ID, op, c)
		return
	}
	if c, ok := msg.Control(proto.OIDReSyncRequest); ok {
		req, err := proto.ParseReSyncRequest(c)
		if err != nil {
			s.reply(state, conn, msg.ID, &proto.SearchDone{}, proto.ResultProtocolError, err.Error(), nil, nil)
			return
		}
		var resume *proto.ResumeToken
		if rc, ok := msg.Control(proto.OIDReSyncResume); ok {
			tok, err := proto.ParseReSyncResume(rc)
			if err != nil {
				s.reply(state, conn, msg.ID, &proto.SearchDone{}, proto.ResultProtocolError, err.Error(), nil, nil)
				return
			}
			resume = &tok
		}
		s.handleReSync(state, conn, msg.ID, op, req, resume)
		return
	}

	res, err := s.backend.Search(op.Query)
	if err != nil {
		code := resultCodeFor(err)
		var refs []string
		if res != nil {
			refs = res.Referrals
		}
		s.reply(state, conn, msg.ID, &proto.SearchDone{}, code, errText(err), refs, nil)
		return
	}
	// RFC 2891 server-side sorting, applied before streaming (and before
	// paging, per the RFC's required control ordering).
	var doneControls []proto.Control
	if c, ok := msg.Control(proto.OIDSortRequest); ok {
		keys, err := proto.ParseSortKeys(c)
		if err != nil {
			doneControls = append(doneControls, proto.NewSortResponseControl(1))
		} else {
			sortEntries(res.Entries, keys)
			doneControls = append(doneControls, proto.NewSortResponseControl(0))
		}
	}
	// RFC 2696 simple paged results: a deterministic DN order (unless the
	// client sorted) makes the offset cookie stable across pages.
	if c, ok := msg.Control(proto.OIDPagedResults); ok {
		pageSize, cookie, perr := proto.ParsePaged(c)
		if perr != nil || pageSize <= 0 {
			s.reply(state, conn, msg.ID, &proto.SearchDone{}, proto.ResultProtocolError, "bad paged-results control", nil, nil)
			return
		}
		if _, sorted := msg.Control(proto.OIDSortRequest); !sorted {
			sort.Slice(res.Entries, func(i, j int) bool {
				return res.Entries[i].DN().Norm() < res.Entries[j].DN().Norm()
			})
		}
		offset := 0
		if cookie != "" {
			n, err := strconv.Atoi(cookie)
			if err != nil || n < 0 || n > len(res.Entries) {
				s.reply(state, conn, msg.ID, &proto.SearchDone{}, proto.ResultProtocolError, "bad paging cookie", nil, nil)
				return
			}
			offset = n
		}
		end := offset + int(pageSize)
		if end > len(res.Entries) {
			end = len(res.Entries)
		}
		for _, e := range res.Entries[offset:end] {
			if err := s.send(state, conn, &proto.Message{ID: msg.ID, Op: proto.EntryToWire(e)}); err != nil {
				return
			}
		}
		next := ""
		if end < len(res.Entries) {
			next = strconv.Itoa(end)
		}
		doneControls = append(doneControls, proto.NewPagedControl(int64(len(res.Entries)), next))
		s.reply(state, conn, msg.ID, &proto.SearchDone{}, proto.ResultSuccess, "", nil, doneControls)
		return
	}
	limit := int(op.SizeLimit)
	for i, e := range res.Entries {
		if limit > 0 && i >= limit {
			break
		}
		if err := s.send(state, conn, &proto.Message{ID: msg.ID, Op: proto.EntryToWire(e)}); err != nil {
			return
		}
	}
	for _, ref := range res.Referrals {
		if err := s.send(state, conn, &proto.Message{ID: msg.ID, Op: &proto.SearchReference{URLs: []string{ref}}}); err != nil {
			return
		}
	}
	s.reply(state, conn, msg.ID, &proto.SearchDone{}, proto.ResultSuccess, "", nil, doneControls)
}

// sortEntries orders search results by the RFC 2891 sort keys using the
// attributes' ordering rules; entries lacking a key attribute sort last.
func sortEntries(entries []*entry.Entry, keys []proto.SortKey) {
	if len(keys) == 0 {
		return
	}
	sort.SliceStable(entries, func(i, j int) bool {
		for _, k := range keys {
			vi := entries[i].First(k.Attr)
			vj := entries[j].First(k.Attr)
			hi, hj := entries[i].Has(k.Attr), entries[j].Has(k.Attr)
			if hi != hj {
				return hi // present sorts before absent
			}
			if !hi {
				continue
			}
			cmp, ok := entry.CompareOrdered(entry.OrderingFor(k.Attr), vi, vj)
			if !ok || cmp == 0 {
				continue
			}
			if k.Reverse {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
}

// handleReSync implements the server side of Section 5.2: (i) a null cookie
// starts a session with a full content transfer, (ii) a cookie resumes and
// sends accumulated updates, (iii) persist mode keeps the connection open
// streaming further changes, (iv) poll mode returns a cookie to resume. A
// resume-token control continues a chunked reload instead (DESIGN.md §14).
// handleFiltersWatch parks a long-poll subscription against the backend's
// admission-filter generation. The response — a bare SearchDone carrying the
// filters-changed control — is deferred until the generation advances past
// the client's `since` (0 = the generation current when the watch lands), so
// a diverted leaf learns the tier widened without polling. The wait runs in
// its own goroutine: the connection's read loop stays free to process
// abandons, and teardown cancels via connState.closeAll.
func (s *Server) handleFiltersWatch(state *connState, conn net.Conn, id int64, op *proto.SearchRequest, c proto.Control) {
	fw, ok := s.backend.(FilterWatcher)
	if !ok {
		s.reply(state, conn, id, &proto.SearchDone{}, proto.ResultUnwillingToPerform,
			"filters watch not supported by this server", nil, nil)
		return
	}
	since, err := proto.ParseFiltersWatch(c)
	if err != nil {
		s.reply(state, conn, id, &proto.SearchDone{}, proto.ResultProtocolError, err.Error(), nil, nil)
		return
	}
	gen, ch := fw.FilterGeneration()
	if ch == nil {
		// Backend forwards the interface but its filter set is static.
		s.reply(state, conn, id, &proto.SearchDone{}, proto.ResultUnwillingToPerform,
			"filter set is static on this server", nil, nil)
		return
	}
	if since == 0 {
		since = gen
		// Fast path: if the current filter set already admits the watcher's
		// spec, the widening it is waiting for has already happened — answer
		// now instead of parking for a bump that may never come. gen and ch
		// were read before this check, so a widening that races it closes ch
		// and wakes the parked goroutine below.
		if adm, ok := s.backend.(SpecAdmitter); ok && adm.AdmitSpec(op.Query) == nil {
			s.reply(state, conn, id, &proto.SearchDone{}, proto.ResultSuccess, "", nil,
				[]proto.Control{proto.NewFiltersChangedControl(gen)})
			return
		}
	}
	cancel := state.addWatch(id)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer state.dropWatch(id)
		for gen <= since {
			select {
			case <-ch:
			case <-cancel:
				return
			}
			gen, ch = fw.FilterGeneration()
		}
		s.reply(state, conn, id, &proto.SearchDone{}, proto.ResultSuccess, "", nil,
			[]proto.Control{proto.NewFiltersChangedControl(gen)})
	}()
}

func (s *Server) handleReSync(state *connState, conn net.Conn, id int64, op *proto.SearchRequest, req proto.ReSyncRequest, resume *proto.ResumeToken) {
	if req.Mode == proto.ReSyncModeSyncEnd {
		err := s.backend.ReSyncEnd(req.Cookie)
		s.reply(state, conn, id, &proto.SearchDone{}, resultCodeFor(err), errText(err), nil, nil)
		return
	}

	var res *resync.PollResult
	var err error
	switch {
	case resume != nil:
		res, err = s.backend.ReSyncResume(*resume)
	case req.Cookie == "":
		res, err = s.backend.ReSyncBegin(op.Query)
	case req.Mode == proto.ReSyncModeRetain:
		res, err = s.backend.ReSyncRetain(req.Cookie)
	default:
		res, err = s.backend.ReSyncPoll(req.Cookie)
	}
	if err != nil {
		s.reply(state, conn, id, &proto.SearchDone{}, resultCodeFor(err), err.Error(), nil, nil)
		return
	}
	// In persist mode the done control only arrives at stream end, so each
	// batch — including this initial delivery — carries its sync-point
	// cookie on its last entry PDU instead.
	initialCookie := ""
	if req.Mode == proto.ReSyncModePersist {
		initialCookie = res.Cookie
	}
	if err := s.streamUpdates(state, conn, id, res.Updates, initialCookie, res.CSN, res.Enc, false); err != nil {
		return
	}

	if res.Resume != nil {
		// One chunk of a resumable reload: the exchange completes without a
		// cookie, handing the consumer a token for the remainder. A
		// persist-mode consumer drains the chunks the same way and
		// re-subscribes with the completion cookie.
		s.reply(state, conn, id, &proto.SearchDone{}, proto.ResultSuccess, "", nil,
			[]proto.Control{
				proto.NewReSyncDoneControl("", res.FullReload, res.CSN),
				proto.NewReSyncResumeControl(*res.Resume, false),
			})
		return
	}

	if req.Mode == proto.ReSyncModePersist {
		sub, err := s.backend.ReSyncPersist(res.Cookie)
		if err != nil {
			s.reply(state, conn, id, &proto.SearchDone{}, resultCodeFor(err), err.Error(), nil, nil)
			return
		}
		state.addPersist(id, sub)
		// Stream in a separate goroutine so the connection's read loop keeps
		// processing abandon and unbind requests. Pushed batches go through
		// the connection's bounded write queue; the subscription ends via
		// abandon (takePersist), connection teardown (closeAll), engine-side
		// slow-consumer demotion (channel close) or a write failure here.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for batch := range sub.Updates {
				if err := s.streamUpdates(state, conn, id, batch.Updates, batch.Cookie, batch.CSN, batch.Enc, true); err != nil {
					sub.Close()
					return
				}
			}
			// The done must trail the queued batch PDUs of this stream, so
			// it rides the same queue.
			s.streamDone(state, conn, id, res.Cookie)
		}()
		return
	}

	s.reply(state, conn, id, &proto.SearchDone{}, proto.ResultSuccess, "",
		nil, []proto.Control{proto.NewReSyncDoneControl(res.Cookie, res.FullReload, res.CSN)})
}

// errSlowConsumer tears down a persist stream whose connection write queue
// stayed full past the enqueue deadline.
var errSlowConsumer = errors.New("ldapnet: persist consumer too slow, write queue full")

// searchEntryTag supplies only the application tag to the pre-encoded-body
// wrappers; the PDU body comes from the shared memo.
var searchEntryTag = &proto.SearchEntry{}

// streamUpdates sends each update as a search entry PDU labelled with an
// entry-change control; delete and retain actions carry the DN only. A
// non-empty batchCookie is attached to the final PDU so persist-mode
// consumers learn the sync point each pushed batch reaches.
//
// When the batch carries a shared-encoding memo, the PDU is BER-encoded
// once per content view and reused across every session fanned the batch:
// for all but the final update the message differs between sessions only
// in its message ID, so the whole tail (op TLV + entry-change control) is
// cached and only the ID envelope is stamped per consumer; the final
// update carries the per-session cookie, so its control is rebuilt around
// the cached PDU body. Queued mode routes the PDUs through the
// connection's bounded write queue (persist pushes); otherwise they are
// written synchronously.
func (s *Server) streamUpdates(state *connState, conn net.Conn, id int64, updates []resync.Update, batchCookie string, batchCSN uint64, enc *resync.SharedEnc, queued bool) error {
	for i, u := range updates {
		u := u
		var action proto.ChangeAction
		switch u.Action {
		case resync.ActionAdd:
			action = proto.ChangeActionAdd
		case resync.ActionModify:
			action = proto.ChangeActionModify
		case resync.ActionDelete:
			action = proto.ChangeActionDelete
		case resync.ActionRetain:
			action = proto.ChangeActionRetain
		default:
			continue
		}
		// The wire op is built lazily: on the shared-memo hit path the PDU
		// body already exists and converting the entry again per session
		// would cost more than the memo saves.
		mkOp := func() *proto.SearchEntry {
			if u.Entry != nil && (u.Action == resync.ActionAdd || u.Action == resync.ActionModify) {
				return proto.EntryToWire(u.Entry)
			}
			return &proto.SearchEntry{DN: u.DN.String()}
		}
		cookie := ""
		csn := uint64(0)
		if i == len(updates)-1 {
			cookie = batchCookie
			csn = batchCSN
		}
		controls := []proto.Control{proto.NewEntryChangeControl(action, cookie, csn)}
		var msgBytes []byte
		if enc != nil {
			var built bool
			var err error
			if cookie == "" {
				// Session-independent message: share the whole tail and
				// stamp only the message ID.
				var tail []byte
				tail, built, err = enc.GetTail(i, func() ([]byte, error) {
					body, berr := proto.EncodeOpBody(mkOp())
					if berr != nil {
						return nil, berr
					}
					return proto.EncodeMessageTail(searchEntryTag, body, controls), nil
				})
				if err == nil {
					msgBytes = proto.EncodeWithTail(id, tail)
				}
			} else {
				// The per-session cookie control forces a per-session tail;
				// the PDU body is still shared.
				var body []byte
				body, built, err = enc.Get(i, func() ([]byte, error) { return proto.EncodeOpBody(mkOp()) })
				if err == nil {
					msgBytes = proto.EncodeWithOpBody(id, searchEntryTag, body, controls)
				}
			}
			if err != nil {
				return err
			}
			if s.syncStats != nil {
				if built {
					s.syncStats.StreamEncodes.Add(1)
				} else {
					s.syncStats.StreamDedupPDUs.Add(1)
				}
			}
		} else {
			var err error
			msgBytes, err = (&proto.Message{ID: id, Op: mkOp(), Controls: controls}).Encode()
			if err != nil {
				return err
			}
		}
		if queued {
			if !state.w.enqueue(msgBytes) {
				if s.syncStats != nil {
					s.syncStats.StreamQueueDrops.Add(1)
				}
				s.dropConn(conn)
				return errSlowConsumer
			}
		} else if err := state.w.writeSync(msgBytes); err != nil {
			return err
		}
		if s.syncStats != nil {
			s.syncStats.StreamedPDUs.Add(1)
		}
	}
	return nil
}

// streamDone ends a persist stream with its SearchDone, routed through the
// write queue so it trails the stream's queued PDUs.
func (s *Server) streamDone(state *connState, conn net.Conn, id int64, cookie string) {
	op := &proto.SearchDone{}
	setResult(op, proto.ResultSuccess, "", nil)
	m := &proto.Message{ID: id, Op: op,
		Controls: []proto.Control{proto.NewReSyncDoneControl(cookie, false, 0)}}
	b, err := m.Encode()
	if err != nil {
		return
	}
	if !state.w.enqueue(b) {
		s.dropConn(conn)
	}
}
