package ldapnet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"filterdir/internal/dit"
	"filterdir/internal/edgewrite"
	"filterdir/internal/proto"
)

// EdgeForwarder implements edgewrite.Forwarder over the LDAP client: each
// accepted edge write is re-encoded as its update request and sent to the
// upstream server with the edge-write control attached. Transient transport
// failures are retried on a fresh connection with backoff; a referral from
// the upstream (a mid-tier that does not accept forwards) diverts the op to
// the fallback address; a definitive server verdict is wrapped in
// edgewrite.PermanentError so the writer aborts the op instead of replaying
// it forever. Safe for concurrent use.
type EdgeForwarder struct {
	// Addr is the primary upstream (the replica's supplier).
	Addr string
	// FallbackAddr, when set, receives the op after a referral or after the
	// primary's retry budget is exhausted — normally the master.
	FallbackAddr string
	// Dial substitutes the transport (nil = TCP).
	Dial DialFunc
	// Timeout bounds dials and per-message I/O (default DefaultTimeout).
	Timeout time.Duration
	// Retries is the number of extra attempts after a transient failure
	// (default 2, each on a freshly dialed connection).
	Retries int
	// Backoff is the delay between attempts (default 50ms).
	Backoff time.Duration

	mu      sync.Mutex
	clients map[string]*Client
}

// NewEdgeForwarder creates a forwarder to the given upstream address.
func NewEdgeForwarder(addr string) *EdgeForwarder {
	return &EdgeForwarder{Addr: addr}
}

var _ edgewrite.Forwarder = (*EdgeForwarder)(nil)

// Forward implements edgewrite.Forwarder.
func (f *EdgeForwarder) Forward(c dit.Change, opID string) (uint64, bool, error) {
	op, err := opFromChange(c)
	if err != nil {
		return 0, false, &edgewrite.PermanentError{Err: err}
	}
	csn, dup, err := f.forwardTo(f.Addr, op, opID)
	if err == nil {
		return csn, dup, nil
	}
	if f.FallbackAddr != "" && f.FallbackAddr != f.Addr && diverts(err) {
		return f.forwardTo(f.FallbackAddr, op, opID)
	}
	return 0, false, err
}

// diverts reports whether a primary-upstream failure should send the op to
// the fallback: a referral (the upstream refuses to carry forwards — e.g. a
// containment miss at a mid-tier) or an exhausted transient-retry budget.
// Other definitive verdicts (already exists, no such object…) would repeat
// at the master, so they are returned as-is.
func diverts(err error) bool {
	if IsTransient(err) {
		return true
	}
	var re *ResultError
	return errors.As(err, &re) && re.Code == proto.ResultReferral
}

// forwardTo runs the exchange against one address with the retry policy.
func (f *EdgeForwarder) forwardTo(addr string, op proto.Op, opID string) (uint64, bool, error) {
	retries := f.Retries
	if retries <= 0 {
		retries = 2
	}
	attempts := retries + 1
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			backoff := f.Backoff
			if backoff <= 0 {
				backoff = 50 * time.Millisecond
			}
			time.Sleep(backoff)
		}
		cl, err := f.client(addr)
		if err != nil {
			lastErr = err
			continue
		}
		csn, dup, err := cl.EdgeWrite(op, opID)
		if err == nil {
			return csn, dup, nil
		}
		if !IsTransient(err) {
			var re *ResultError
			if errors.As(err, &re) && (re.Code == proto.ResultReferral || re.Code == proto.ResultBusy) {
				// Not a verdict on the op itself: referral diverts, busy is
				// retryable later — keep the op pending.
				return 0, false, err
			}
			return 0, false, &edgewrite.PermanentError{Err: err}
		}
		f.drop(addr, cl)
		lastErr = err
	}
	return 0, false, lastErr
}

// client returns the pooled connection to addr, dialing on first use.
func (f *EdgeForwarder) client(addr string) (*Client, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.clients[addr]; ok {
		return c, nil
	}
	timeout := f.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	c, err := DialWith(f.Dial, addr, timeout)
	if err != nil {
		return nil, err
	}
	if f.clients == nil {
		f.clients = make(map[string]*Client)
	}
	f.clients[addr] = c
	return c, nil
}

// drop discards a connection after a transport failure so the next attempt
// redials.
func (f *EdgeForwarder) drop(addr string, c *Client) {
	f.mu.Lock()
	if f.clients[addr] == c {
		delete(f.clients, addr)
	}
	f.mu.Unlock()
	_ = c.Close()
}

// Close closes all pooled connections.
func (f *EdgeForwarder) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.clients {
		_ = c.Close()
	}
	f.clients = nil
}

// opFromChange re-encodes a journal change as its wire update request — the
// inverse of changeFromOp, used to forward WAL-recovered ops whose original
// PDU is gone.
func opFromChange(c dit.Change) (proto.Op, error) {
	switch c.Type {
	case dit.ChangeAdd:
		if c.After == nil {
			return nil, errors.New("add change without entry")
		}
		req := &proto.AddRequest{DN: c.After.DN().String()}
		for _, name := range c.After.AttributeNames() {
			req.Attrs = append(req.Attrs, proto.Attribute{Type: name, Values: c.After.Values(name)})
		}
		return req, nil
	case dit.ChangeDelete:
		return &proto.DelRequest{DN: c.DN.String()}, nil
	case dit.ChangeModify:
		req := &proto.ModifyRequest{DN: c.DN.String()}
		for _, m := range c.Mods {
			var op int64
			switch m.Op {
			case dit.ModAdd:
				op = proto.ModifyOpAdd
			case dit.ModDelete:
				op = proto.ModifyOpDelete
			case dit.ModReplace:
				op = proto.ModifyOpReplace
			default:
				return nil, fmt.Errorf("unknown mod op %v", m.Op)
			}
			req.Changes = append(req.Changes, proto.ModifyChange{
				Op: op, Attr: proto.Attribute{Type: m.Attr, Values: m.Values}})
		}
		return req, nil
	case dit.ChangeModifyDN:
		leaf, ok := c.NewDN.Leaf()
		if !ok {
			return nil, errors.New("modifyDN change with empty new DN")
		}
		req := &proto.ModifyDNRequest{DN: c.DN.String(), NewRDN: leaf.String(), DeleteOldRDN: true}
		if p, ok := c.NewDN.Parent(); ok {
			req.NewSuperior = p.String()
		}
		return req, nil
	default:
		return nil, fmt.Errorf("unknown change type %v", c.Type)
	}
}
