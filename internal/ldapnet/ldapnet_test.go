package ldapnet

import (
	"errors"
	"fmt"
	"testing"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/proto"
	"filterdir/internal/query"
	"filterdir/internal/resync"
)

// startServer builds a store-backed server on a loopback port.
func startServer(t *testing.T, store *dit.Store) (*Server, *StoreBackend) {
	t.Helper()
	backend := NewStoreBackend(store)
	srv, err := Serve("127.0.0.1:0", backend)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, backend
}

func newTestStore(t *testing.T) *dit.Store {
	t.Helper()
	st, err := dit.NewStore([]string{"o=xyz"}, dit.WithIndexes("serialnumber"))
	if err != nil {
		t.Fatal(err)
	}
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	if err := st.Add(org); err != nil {
		t.Fatal(err)
	}
	us := entry.New(dn.MustParse("c=us,o=xyz"))
	us.Put("objectclass", "country").Put("c", "us")
	if err := st.Add(us); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		e := entry.New(dn.MustParse(fmt.Sprintf("cn=p%d,c=us,o=xyz", i)))
		e.Put("objectclass", "person", "inetOrgPerson").
			Put("cn", fmt.Sprintf("p%d", i)).Put("sn", "x").
			Put("serialNumber", fmt.Sprintf("04%02d", i))
		if err := st.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestBindAndSearch(t *testing.T) {
	srv, _ := startServer(t, newTestStore(t))
	c := dialT(t, srv.Addr())
	if err := c.Bind("", ""); err != nil {
		t.Fatalf("anonymous bind: %v", err)
	}
	res, err := c.Search(query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 5 {
		t.Errorf("entries = %d, want 5", len(res.Entries))
	}
	// Entries carry attributes.
	if res.Entries[0].First("objectclass") == "" {
		t.Error("entry attributes missing")
	}
}

func TestBindCredentials(t *testing.T) {
	store := newTestStore(t)
	backend := NewStoreBackend(store)
	backend.BindDN = "cn=admin"
	backend.BindPassword = "secret"
	srv, err := Serve("127.0.0.1:0", backend)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := dialT(t, srv.Addr())
	if err := c.Bind("cn=admin", "wrong"); err == nil {
		t.Error("bad password accepted")
	}
	if err := c.Bind("cn=admin", "secret"); err != nil {
		t.Errorf("good password rejected: %v", err)
	}
}

func TestSearchErrors(t *testing.T) {
	srv, _ := startServer(t, newTestStore(t))
	c := dialT(t, srv.Addr())
	_, err := c.Search(query.MustNew("cn=missing,o=xyz", query.ScopeBase, ""))
	var re *ResultError
	if !errors.As(err, &re) || re.Code != proto.ResultNoSuchObject {
		t.Errorf("missing base error: %v", err)
	}
}

func TestUpdatesOverWire(t *testing.T) {
	store := newTestStore(t)
	srv, _ := startServer(t, store)
	c := dialT(t, srv.Addr())

	// Add.
	e := entry.New(dn.MustParse("cn=new,c=us,o=xyz"))
	e.Put("objectclass", "person").Put("cn", "new").Put("sn", "n")
	if err := c.Add(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get(e.DN()); !ok {
		t.Fatal("added entry missing from store")
	}
	// Duplicate add surfaces the right code.
	err := c.Add(e)
	var re *ResultError
	if !errors.As(err, &re) || re.Code != proto.ResultEntryAlreadyExists {
		t.Errorf("duplicate add: %v", err)
	}

	// Modify.
	if err := c.Modify(e.DN(), []proto.ModifyChange{
		{Op: proto.ModifyOpReplace, Attr: proto.Attribute{Type: "sn", Values: []string{"renamed"}}},
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := store.Get(e.DN())
	if got.First("sn") != "renamed" {
		t.Error("modify not applied")
	}

	// ModifyDN.
	if err := c.ModifyDN(e.DN(), dn.RDN{Attr: "cn", Value: "moved"}, dn.MustParse("c=us,o=xyz")); err != nil {
		t.Fatal(err)
	}
	moved := dn.MustParse("cn=moved,c=us,o=xyz")
	if _, ok := store.Get(moved); !ok {
		t.Fatal("modifyDN target missing")
	}

	// Delete.
	if err := c.Delete(moved); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get(moved); ok {
		t.Error("delete not applied")
	}
}

func TestSyncOverWire(t *testing.T) {
	store := newTestStore(t)
	srv, _ := startServer(t, store)
	c := dialT(t, srv.Addr())

	spec := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)")
	res, err := c.Sync(spec, proto.ReSyncModePoll, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Updates) != 5 || res.Cookie == "" {
		t.Fatalf("initial sync: %d updates, cookie %q", len(res.Updates), res.Cookie)
	}

	// Replica store applies the wire updates.
	rep, err := dit.NewStore([]string{""})
	if err != nil {
		t.Fatal(err)
	}
	ap := resync.NewApplier(rep)
	if err := ap.Apply(spec, &resync.PollResult{Updates: res.Updates}); err != nil {
		t.Fatal(err)
	}
	if ok, why := resync.Converged(store, rep, spec); !ok {
		t.Fatalf("not converged after wire sync: %s", why)
	}

	// Master changes; poll over the wire.
	if err := store.Modify(dn.MustParse("cn=p1,c=us,o=xyz"),
		[]dit.Mod{{Op: dit.ModReplace, Attr: "sn", Values: []string{"changed"}}}); err != nil {
		t.Fatal(err)
	}
	if err := store.Delete(dn.MustParse("cn=p2,c=us,o=xyz")); err != nil {
		t.Fatal(err)
	}
	res, err = c.Sync(spec, proto.ReSyncModePoll, res.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Updates) != 2 {
		t.Fatalf("poll updates = %d, want 2", len(res.Updates))
	}
	if err := ap.Apply(spec, &resync.PollResult{Updates: res.Updates}); err != nil {
		t.Fatal(err)
	}
	if ok, why := resync.Converged(store, rep, spec); !ok {
		t.Fatalf("not converged after poll: %s", why)
	}

	// End the session; a further poll errors.
	if err := c.SyncEnd(res.Cookie); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sync(spec, proto.ReSyncModePoll, res.Cookie); err == nil {
		t.Error("poll after sync_end must fail")
	}
}

func TestSyncRetainOverWire(t *testing.T) {
	store := newTestStore(t)
	srv, _ := startServer(t, store)
	c := dialT(t, srv.Addr())

	spec := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)")
	res, err := c.Sync(spec, proto.ReSyncModePoll, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Modify(dn.MustParse("cn=p1,c=us,o=xyz"),
		[]dit.Mod{{Op: dit.ModReplace, Attr: "sn", Values: []string{"v2"}}}); err != nil {
		t.Fatal(err)
	}
	ret, err := c.Sync(spec, proto.ReSyncModeRetain, res.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	retains, mods := 0, 0
	for _, u := range ret.Updates {
		switch u.Action {
		case resync.ActionRetain:
			retains++
		case resync.ActionModify:
			mods++
		}
	}
	if retains != 4 || mods != 1 {
		t.Errorf("retain sync: %d retains, %d modifies", retains, mods)
	}
}

func TestPersistOverWire(t *testing.T) {
	store := newTestStore(t)
	srv, _ := startServer(t, store)
	c := dialT(t, srv.Addr())

	spec := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)")
	res, err := c.Sync(spec, proto.ReSyncModePoll, "")
	if err != nil {
		t.Fatal(err)
	}

	ps, err := Persist(srv.Addr(), spec, res.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	// A master-side add is pushed to the subscriber.
	e := entry.New(dn.MustParse("cn=pushed,c=us,o=xyz"))
	e.Put("objectclass", "person").Put("cn", "pushed").Put("sn", "p").Put("serialNumber", "0499")
	if err := store.Add(e); err != nil {
		t.Fatal(err)
	}
	u := <-ps.Updates
	if u.Action != resync.ActionAdd || u.Entry == nil || u.Entry.First("cn") != "pushed" {
		t.Fatalf("pushed update: %+v", u)
	}
}

func TestStaleSessionWireError(t *testing.T) {
	// A stale cookie must surface over the wire as the typed sentinel so
	// clients can distinguish "re-Begin" from retryable transport faults.
	store := newTestStore(t)
	srv, backend := startServer(t, store)
	c := dialT(t, srv.Addr())

	spec := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)")
	res, err := c.Sync(spec, proto.ReSyncModePoll, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.Engine.End(res.Cookie); err != nil {
		t.Fatal(err)
	}

	_, err = c.Sync(spec, proto.ReSyncModePoll, res.Cookie)
	if !errors.Is(err, resync.ErrNoSuchSession) {
		t.Fatalf("poll of ended session: err=%v, want resync.ErrNoSuchSession", err)
	}
	var re *ResultError
	if !errors.As(err, &re) || re.Code != proto.ResultESyncRefreshRequired {
		t.Errorf("result code = %v, want e-syncRefreshRequired", err)
	}
	if IsTransient(err) {
		t.Error("stale session classified as transient; supervisors would retry the dead cookie")
	}
}

func TestFigure2ReferralChasing(t *testing.T) {
	// Three servers jointly serving o=xyz (Figure 2): hostA holds the root
	// context with referrals; hostB holds ou=research,c=us,o=xyz; hostC
	// holds c=in,o=xyz. The client initially contacts hostB.
	storeA, err := dit.NewStore([]string{"o=xyz"})
	if err != nil {
		t.Fatal(err)
	}
	add := func(st *dit.Store, dnStr string, attrs map[string][]string) {
		t.Helper()
		e := entry.New(dn.MustParse(dnStr))
		for k, v := range attrs {
			e.Put(k, v...)
		}
		if err := st.Add(e); err != nil {
			t.Fatalf("add %s: %v", dnStr, err)
		}
	}
	add(storeA, "o=xyz", map[string][]string{"objectclass": {"organization"}, "o": {"xyz"}})
	add(storeA, "c=us,o=xyz", map[string][]string{"objectclass": {"country"}, "c": {"us"}})
	add(storeA, "cn=Fred Jones,c=us,o=xyz", map[string][]string{
		"objectclass": {"person"}, "cn": {"Fred Jones"}, "sn": {"Jones"}})
	add(storeA, "ou=research,c=us,o=xyz", map[string][]string{
		"objectclass": {dit.ReferralClass}, dit.RefAttr: {"ldap://hostB/ou=research,c=us,o=xyz"}})
	add(storeA, "c=in,o=xyz", map[string][]string{
		"objectclass": {dit.ReferralClass}, dit.RefAttr: {"ldap://hostC/c=in,o=xyz"}})

	storeB, err := dit.NewStore([]string{"ou=research,c=us,o=xyz"}, dit.WithDefaultReferral("ldap://hostA"))
	if err != nil {
		t.Fatal(err)
	}
	add(storeB, "ou=research,c=us,o=xyz", map[string][]string{"objectclass": {"organizationalUnit"}, "ou": {"research"}})
	add(storeB, "cn=John Doe,ou=research,c=us,o=xyz", map[string][]string{
		"objectclass": {"person", "inetOrgPerson"}, "cn": {"John Doe"}, "sn": {"Doe"}})
	add(storeB, "cn=Carl Miller,ou=research,c=us,o=xyz", map[string][]string{
		"objectclass": {"person"}, "cn": {"Carl Miller"}, "sn": {"Miller"}})

	storeC, err := dit.NewStore([]string{"c=in,o=xyz"}, dit.WithDefaultReferral("ldap://hostA"))
	if err != nil {
		t.Fatal(err)
	}
	add(storeC, "c=in,o=xyz", map[string][]string{"objectclass": {"country"}, "c": {"in"}})
	add(storeC, "cn=Asha,c=in,o=xyz", map[string][]string{
		"objectclass": {"person"}, "cn": {"Asha"}, "sn": {"A"}})

	srvA, _ := startServer(t, storeA)
	srvB, _ := startServer(t, storeB)
	srvC, _ := startServer(t, storeC)

	r := NewResolver()
	defer r.Close()
	r.Register("hostA", srvA.Addr())
	r.Register("hostB", srvB.Addr())
	r.Register("hostC", srvC.Addr())

	// Client sends the subtree search for o=xyz to hostB, as in Figure 2.
	res, err := r.SearchChasing("hostB", query.MustNew("o=xyz", query.ScopeSubtree, "(objectclass=*)"))
	if err != nil {
		t.Fatal(err)
	}
	// All 8 real entries across the three servers.
	if len(res.Entries) != 8 {
		names := make([]string, 0, len(res.Entries))
		for _, e := range res.Entries {
			names = append(names, e.DN().String())
		}
		t.Fatalf("entries = %d (%v), want 8", len(res.Entries), names)
	}
	// Figure 2 counts four round trips: hostB (referral), hostA (entries +
	// two references), hostB again, hostC.
	if got := r.RoundTrips(); got != 4 {
		t.Errorf("round trips = %d, want 4", got)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	store := newTestStore(t)
	srv, _ := startServer(t, store)
	c := dialT(t, srv.Addr())
	if err := c.Bind("", ""); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Further operations fail rather than hang.
	if _, err := c.Search(query.MustNew("o=xyz", query.ScopeSubtree, "")); err == nil {
		t.Error("search after server close succeeded")
	}
}

func TestParseURL(t *testing.T) {
	host, base, err := ParseURL("ldap://hostB/ou=research,c=us,o=xyz")
	if err != nil || host != "hostB" || base.String() != "ou=research,c=us,o=xyz" {
		t.Errorf("ParseURL: %q %q %v", host, base, err)
	}
	host, base, err = ParseURL("ldap://hostA")
	if err != nil || host != "hostA" || !base.IsRoot() {
		t.Errorf("ParseURL bare: %q %q %v", host, base, err)
	}
	if _, _, err := ParseURL("http://x"); err == nil {
		t.Error("bad scheme accepted")
	}
	if _, _, err := ParseURL("ldap:///dn"); err == nil {
		t.Error("missing host accepted")
	}
}
