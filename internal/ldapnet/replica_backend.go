package ldapnet

import (
	"errors"
	"fmt"

	"filterdir/internal/dit"
	"filterdir/internal/edgewrite"
	"filterdir/internal/proto"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
)

// Errors mapped to wire result codes by the replica backend.
var (
	// ErrNotAnswerable marks a query outside the replica's content; the
	// response is a referral to the master.
	ErrNotAnswerable = errors.New("query not answerable by replica")
	// ErrReadOnly marks update or synchronization operations sent to a
	// read-only replica.
	ErrReadOnly = errors.New("replica is read-only")
)

// ReplicaBackend serves a filter-based replica over the wire: contained
// queries are answered from the replicated content, everything else gets a
// referral to the master — the behaviour Section 3 defines for filter-based
// replicas. Synchronization requests are refused (the replica is a
// consumer, not a supplier). Updates are refused unless an edge-write
// Writer is attached, in which case they are journaled locally and
// forwarded up the cascade (see internal/edgewrite).
type ReplicaBackend struct {
	Replica *replica.FilterReplica
	// MasterURL is the referral target for misses, e.g. "ldap://master".
	MasterURL string
	// Edge, when set, accepts update operations at this replica: admitted
	// ops are WAL-journaled, overlaid on local reads, and forwarded to the
	// master. Nil keeps the replica read-only.
	Edge *edgewrite.Writer
}

var _ Backend = (*ReplicaBackend)(nil)

// NewReplicaBackend wraps a filter replica.
func NewReplicaBackend(rep *replica.FilterReplica, masterURL string) *ReplicaBackend {
	return &ReplicaBackend{Replica: rep, MasterURL: masterURL}
}

// Bind implements Backend (anonymous only).
func (b *ReplicaBackend) Bind(name, password string) proto.ResultCode {
	return proto.ResultSuccess
}

// Search implements Backend: a containment hit is served locally; a miss
// produces a referral to the master.
func (b *ReplicaBackend) Search(q query.Query) (*dit.Result, error) {
	entries, hit, _ := b.Replica.Answer(q)
	if !hit {
		res := &dit.Result{}
		if b.MasterURL != "" {
			res.Referrals = append(res.Referrals, b.MasterURL)
		}
		return res, fmt.Errorf("%w: %s", ErrNotAnswerable, q.FilterString())
	}
	return &dit.Result{Entries: entries}, nil
}

// ReSyncBegin implements Backend (refused).
func (b *ReplicaBackend) ReSyncBegin(query.Query) (*resync.PollResult, error) {
	return nil, ErrReadOnly
}

// ReSyncPoll implements Backend (refused).
func (b *ReplicaBackend) ReSyncPoll(string) (*resync.PollResult, error) {
	return nil, ErrReadOnly
}

// ReSyncResume implements Backend (refused).
func (b *ReplicaBackend) ReSyncResume(proto.ResumeToken) (*resync.PollResult, error) {
	return nil, ErrReadOnly
}

// ReSyncRetain implements Backend (refused).
func (b *ReplicaBackend) ReSyncRetain(string) (*resync.PollResult, error) {
	return nil, ErrReadOnly
}

// ReSyncPersist implements Backend (refused).
func (b *ReplicaBackend) ReSyncPersist(string) (*resync.Subscription, error) {
	return nil, ErrReadOnly
}

// ReSyncEnd implements Backend (refused).
func (b *ReplicaBackend) ReSyncEnd(string) error { return ErrReadOnly }

// Add implements Backend via the edge-write path (ErrReadOnly when none).
func (b *ReplicaBackend) Add(req *proto.AddRequest) error { return b.edgeSubmit(req) }

// Delete implements Backend via the edge-write path (ErrReadOnly when none).
func (b *ReplicaBackend) Delete(req *proto.DelRequest) error { return b.edgeSubmit(req) }

// Modify implements Backend via the edge-write path (ErrReadOnly when none).
func (b *ReplicaBackend) Modify(req *proto.ModifyRequest) error { return b.edgeSubmit(req) }

// ModifyDN implements Backend via the edge-write path (ErrReadOnly when none).
func (b *ReplicaBackend) ModifyDN(req *proto.ModifyDNRequest) error { return b.edgeSubmit(req) }

// edgeSubmit routes an update into the edge-write Writer. A containment
// rejection is dressed as a referral to the master — the client chases it
// exactly like a search miss.
func (b *ReplicaBackend) edgeSubmit(op proto.Op) error {
	if b.Edge == nil {
		return ErrReadOnly
	}
	c, err := changeFromOp(op)
	if err != nil {
		return err
	}
	_, err = b.Edge.Submit(c)
	if errors.Is(err, edgewrite.ErrRejected) && b.MasterURL != "" {
		return &ReferralError{URLs: []string{b.MasterURL}, Err: err}
	}
	return err
}
