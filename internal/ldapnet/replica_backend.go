package ldapnet

import (
	"errors"
	"fmt"

	"filterdir/internal/dit"
	"filterdir/internal/proto"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
)

// Errors mapped to wire result codes by the replica backend.
var (
	// ErrNotAnswerable marks a query outside the replica's content; the
	// response is a referral to the master.
	ErrNotAnswerable = errors.New("query not answerable by replica")
	// ErrReadOnly marks update or synchronization operations sent to a
	// read-only replica.
	ErrReadOnly = errors.New("replica is read-only")
)

// ReplicaBackend serves a filter-based replica over the wire: contained
// queries are answered from the replicated content, everything else gets a
// referral to the master — the behaviour Section 3 defines for filter-based
// replicas. Updates and synchronization requests are refused (the replica
// is a consumer, not a supplier).
type ReplicaBackend struct {
	Replica *replica.FilterReplica
	// MasterURL is the referral target for misses, e.g. "ldap://master".
	MasterURL string
}

var _ Backend = (*ReplicaBackend)(nil)

// NewReplicaBackend wraps a filter replica.
func NewReplicaBackend(rep *replica.FilterReplica, masterURL string) *ReplicaBackend {
	return &ReplicaBackend{Replica: rep, MasterURL: masterURL}
}

// Bind implements Backend (anonymous only).
func (b *ReplicaBackend) Bind(name, password string) proto.ResultCode {
	return proto.ResultSuccess
}

// Search implements Backend: a containment hit is served locally; a miss
// produces a referral to the master.
func (b *ReplicaBackend) Search(q query.Query) (*dit.Result, error) {
	entries, hit, _ := b.Replica.Answer(q)
	if !hit {
		res := &dit.Result{}
		if b.MasterURL != "" {
			res.Referrals = append(res.Referrals, b.MasterURL)
		}
		return res, fmt.Errorf("%w: %s", ErrNotAnswerable, q.FilterString())
	}
	return &dit.Result{Entries: entries}, nil
}

// ReSyncBegin implements Backend (refused).
func (b *ReplicaBackend) ReSyncBegin(query.Query) (*resync.PollResult, error) {
	return nil, ErrReadOnly
}

// ReSyncPoll implements Backend (refused).
func (b *ReplicaBackend) ReSyncPoll(string) (*resync.PollResult, error) {
	return nil, ErrReadOnly
}

// ReSyncRetain implements Backend (refused).
func (b *ReplicaBackend) ReSyncRetain(string) (*resync.PollResult, error) {
	return nil, ErrReadOnly
}

// ReSyncPersist implements Backend (refused).
func (b *ReplicaBackend) ReSyncPersist(string) (*resync.Subscription, error) {
	return nil, ErrReadOnly
}

// ReSyncEnd implements Backend (refused).
func (b *ReplicaBackend) ReSyncEnd(string) error { return ErrReadOnly }

// Add implements Backend (refused).
func (b *ReplicaBackend) Add(*proto.AddRequest) error { return ErrReadOnly }

// Delete implements Backend (refused).
func (b *ReplicaBackend) Delete(*proto.DelRequest) error { return ErrReadOnly }

// Modify implements Backend (refused).
func (b *ReplicaBackend) Modify(*proto.ModifyRequest) error { return ErrReadOnly }

// ModifyDN implements Backend (refused).
func (b *ReplicaBackend) ModifyDN(*proto.ModifyDNRequest) error { return ErrReadOnly }
