package dit

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"filterdir/internal/dn"
	"filterdir/internal/entry"
)

// batchTestStore builds a store with the standard test suffix and a couple
// of container entries.
func batchTestStore(t *testing.T, opts ...Option) *Store {
	t.Helper()
	st, err := NewStore([]string{"o=xyz"}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	if err := st.Add(org); err != nil {
		t.Fatal(err)
	}
	us := entry.New(dn.MustParse("c=us,o=xyz"))
	us.Put("objectclass", "country").Put("c", "us")
	if err := st.Add(us); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestBatchPipelineEquivalence is the commit-pipeline property test: random
// interleaved concurrent updates must yield a journal whose serial replay
// produces identical (CSN, content) state — i.e. batching may reorder
// contention, never semantics. Each worker's ops are independent (its own
// DN space), so any interleaving is valid; the test asserts the journal is
// gapless, CSN-ordered, and replays byte-identically into a single-shard,
// unbatched store.
func TestBatchPipelineEquivalence(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			t.Parallel()
			st := batchTestStore(t, WithShards(shards), WithBatchWindow(100*time.Microsecond))

			const workers, opsPer = 8, 60
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(1000 + w)))
					live := map[int]bool{}
					for i := 0; i < opsPer; i++ {
						slot := rng.Intn(12)
						d := dn.MustParse("cn=w" + strconv.Itoa(w) + "-" + strconv.Itoa(slot) + ",c=us,o=xyz")
						switch {
						case !live[slot]:
							e := entry.New(d)
							e.Put("objectclass", "person").Put("cn", "w"+strconv.Itoa(w)).
								Put("sn", strconv.Itoa(i))
							if err := st.Add(e); err != nil {
								t.Errorf("add: %v", err)
								return
							}
							live[slot] = true
						case rng.Intn(3) == 0:
							if err := st.Delete(d); err != nil {
								t.Errorf("delete: %v", err)
								return
							}
							live[slot] = false
						default:
							mods := []Mod{{Op: ModReplace, Attr: "sn", Values: []string{"m" + strconv.Itoa(i)}}}
							if err := st.Modify(d, mods); err != nil {
								t.Errorf("modify: %v", err)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()

			changes, ok := st.ChangesSince(0)
			if !ok {
				t.Fatal("journal trimmed unexpectedly")
			}
			if got, want := CSN(len(changes)), st.LastCSN(); got != want {
				t.Fatalf("journal has %d records, LastCSN=%d", got, want)
			}
			for i, c := range changes {
				if c.CSN != CSN(i+1) {
					t.Fatalf("journal[%d].CSN = %d, want %d (gapless, ordered)", i, c.CSN, i+1)
				}
			}

			// Serial replay into an unsharded, unbatched reference store.
			ref, err := NewStore([]string{"o=xyz"}, WithShards(1), WithBatchLimit(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range changes {
				csn, err := ref.ApplyCSN(c)
				if err != nil {
					t.Fatalf("replay CSN %d (%s %q): %v", c.CSN, c.Type, c.DN.String(), err)
				}
				if csn != c.CSN {
					t.Fatalf("replay assigned CSN %d, original %d", csn, c.CSN)
				}
			}

			got, want := st.All(), ref.All()
			if len(got) != len(want) {
				t.Fatalf("content mismatch: %d entries live, %d after replay", len(got), len(want))
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("entry %d diverged:\nlive:   %s\nreplay: %s", i, got[i], want[i])
				}
			}

			snap := st.Counters().Snapshot()
			if snap.Batches == 0 || snap.BatchedOps == 0 {
				t.Fatal("commit pipeline never engaged")
			}
			if snap.MaxBatch < 2 {
				t.Logf("note: no multi-op batch formed (max=%d); contention too low", snap.MaxBatch)
			}
			t.Logf("shards=%d: %d ops in %d batches (avg %.1f, max %d), %d shard clones",
				shards, snap.BatchedOps, snap.Batches, snap.AvgBatch(), snap.MaxBatch, snap.ShardClones)
		})
	}
}

// TestBatchLimitBoundsFlush pins the flush rule: a leader drains at most
// batchLimit ops per flush but every submitter still completes (FIFO drain
// guarantees progress past the limit).
func TestBatchLimitBoundsFlush(t *testing.T) {
	st := batchTestStore(t, WithShards(2), WithBatchLimit(4), WithBatchWindow(200*time.Microsecond))
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := entry.New(dn.MustParse("cn=b" + strconv.Itoa(i) + ",c=us,o=xyz"))
			e.Put("objectclass", "person").Put("cn", "b").Put("sn", "b")
			if err := st.Add(e); err != nil {
				t.Errorf("add: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if got := st.Len(); got != n+2 {
		t.Fatalf("Len = %d, want %d", got, n+2)
	}
	snap := st.Counters().Snapshot()
	if snap.MaxBatch > 4 {
		t.Fatalf("MaxBatch = %d exceeds batch limit 4", snap.MaxBatch)
	}
}

// TestBatchErrorIsolation verifies a failing op inside a batch affects only
// its own submitter: the other ops in the batch commit normally and the
// journal stays gapless.
func TestBatchErrorIsolation(t *testing.T) {
	st := batchTestStore(t, WithShards(4), WithBatchWindow(200*time.Microsecond))
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%4 == 0 {
				// Parent does not exist: must fail without poisoning the batch.
				e := entry.New(dn.MustParse("cn=x,ou=nope,o=xyz"))
				e.Put("objectclass", "person").Put("cn", "x").Put("sn", "x")
				errs[i] = st.Add(e)
				return
			}
			e := entry.New(dn.MustParse("cn=e" + strconv.Itoa(i) + ",c=us,o=xyz"))
			e.Put("objectclass", "person").Put("cn", "e").Put("sn", "e")
			errs[i] = st.Add(e)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if i%4 == 0 {
			if !errors.Is(err, ErrNoSuchObject) {
				t.Errorf("op %d: err = %v, want ErrNoSuchObject", i, err)
			}
		} else if err != nil {
			t.Errorf("op %d: %v", i, err)
		}
	}
	changes, _ := st.ChangesSince(0)
	for i, c := range changes {
		if c.CSN != CSN(i+1) {
			t.Fatalf("journal[%d].CSN = %d: failed ops must not burn CSNs", i, c.CSN)
		}
	}
	if got, want := len(changes), 2+n-n/4; got != want {
		t.Fatalf("journal has %d records, want %d", got, want)
	}
}
