package dit

import "time"

// defaultBatchLimit bounds how many pending updates one commit leader
// drains per flush; the rest wait for the next leader, keeping worst-case
// sequencer-lock hold times bounded.
const defaultBatchLimit = 128

// writeOp is one update waiting in the commit pipeline: a closure applied
// by the batch leader with the sequencer lock held, plus its outcome.
type writeOp struct {
	apply func() (CSN, error)
	csn   CSN
	err   error
	done  chan struct{}
}

// submit runs an update through the group-commit pipeline. The op is
// enqueued; whichever submitter wins the sequencer lock becomes the batch
// leader and applies every pending op (up to the batch limit) serially, in
// arrival order, each committing with its own consecutive CSN — so batching
// changes lock traffic and journal-signal frequency, never the per-update
// semantics. The optional batch window is slept before contending so
// concurrent writers accumulate into one flush; it is never slept while
// holding the sequencer lock.
func (s *Store) submit(apply func() (CSN, error)) (CSN, error) {
	op := &writeOp{apply: apply, done: make(chan struct{})}
	s.pendMu.Lock()
	s.pending = append(s.pending, op)
	s.pendMu.Unlock()

	if s.batchWindow > 0 {
		time.Sleep(s.batchWindow)
	}
	for {
		select {
		case <-op.done:
			return op.csn, op.err
		default:
		}
		s.seqMu.Lock()
		select {
		case <-op.done:
			// Another leader flushed us while we waited for the lock.
			s.seqMu.Unlock()
			return op.csn, op.err
		default:
		}
		s.flushLocked()
		s.seqMu.Unlock()
		// The queue drains FIFO, so each flush makes progress toward our
		// op even when it was beyond this batch's limit.
	}
}

// flushLocked drains up to batchLimit pending ops in arrival order and
// applies them with seqMu held: each op validates against, and mutates,
// the current shard states and commits its own journal record. Journal
// trimming and the change signal fire once per batch. Callers hold seqMu.
func (s *Store) flushLocked() {
	s.pendMu.Lock()
	n := len(s.pending)
	if n == 0 {
		s.pendMu.Unlock()
		return
	}
	if s.batchLimit > 0 && n > s.batchLimit {
		n = s.batchLimit
	}
	batch := make([]*writeOp, n)
	copy(batch, s.pending[:n])
	rest := copy(s.pending, s.pending[n:])
	for i := rest; i < len(s.pending); i++ {
		s.pending[i] = nil
	}
	s.pending = s.pending[:rest]
	s.pendMu.Unlock()

	committed := false
	for _, op := range batch {
		op.csn, op.err = op.apply()
		if op.err == nil {
			committed = true
		}
	}
	if committed {
		s.trimLocked()
		close(s.signal)
		s.signal = make(chan struct{})
	}
	s.counters.ObserveBatch(n)
	for _, op := range batch {
		close(op.done)
	}
}

// trimLocked enforces the journal bound once per batch, clamped by the
// lowest outstanding hold: records needed to answer ChangesSince(minHold)
// are kept regardless of the limit, so an active resumable transfer's
// pinned snapshot stays incrementally catch-up-able. Callers hold seqMu.
func (s *Store) trimLocked() {
	if s.journalLimit <= 0 || len(s.journal) <= s.journalLimit {
		return
	}
	drop := len(s.journal) - s.journalLimit
	if floor, held := s.minHoldLocked(); held {
		// Journal CSNs are consecutive, so the count of droppable records
		// (CSN <= floor) is a subtraction, not a scan.
		maxDrop := 0
		if first := s.journal[0].CSN; floor+1 > first {
			maxDrop = int(floor + 1 - first)
			if maxDrop > len(s.journal) {
				maxDrop = len(s.journal)
			}
		}
		if drop > maxDrop {
			drop = maxDrop
		}
	}
	if drop <= 0 {
		return
	}
	s.journal = append(s.journal[:0:0], s.journal[drop:]...)
	s.journalBase += CSN(drop)
	s.journalTrimmed += uint64(drop)
}

// commitLocked stamps and appends one journal record. Trimming and the
// change signal are handled per batch by flushLocked. Callers hold seqMu.
func (s *Store) commitLocked(c Change) CSN {
	c.CSN = s.nextCSN
	s.nextCSN++
	s.journal = append(s.journal, c)
	return c.CSN
}
