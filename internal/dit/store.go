// Package dit implements an in-memory Directory Information Tree: entry
// storage under one or more naming contexts, index-assisted LDAP search,
// the four update operations (add, delete, modify, modifyDN), and an update
// journal with before/after snapshots that the ReSync protocol and its
// baselines consume.
//
// The store is sharded by DN hash with copy-on-write shard states: readers
// freeze an immutable multi-shard view and scan it without holding any
// lock, while writers flow through a group-commit pipeline that batches
// concurrent updates behind one global CSN sequencer (see DESIGN.md §13).
package dit

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/filter"
	"filterdir/internal/metrics"
	"filterdir/internal/query"
)

// Errors reported by store operations.
var (
	ErrNoSuchObject  = errors.New("no such object")
	ErrAlreadyExists = errors.New("entry already exists")
	ErrNotLeaf       = errors.New("entry has children")
	ErrNoSuchContext = errors.New("base not under any naming context")
	ErrSchema        = errors.New("schema violation")
)

// CSN is a change sequence number: a monotonically increasing commit stamp
// assigned to every update.
type CSN uint64

// Referral is the object class marking subordinate-context glue entries; a
// referral entry's "ref" attribute carries the subordinate server URL.
const (
	ReferralClass = "referral"
	RefAttr       = "ref"
)

// ShardsEnv names the environment variable consulted for the shard count
// when WithShards is not given (the CI shards axis sets it); unset or
// invalid falls back to GOMAXPROCS.
const ShardsEnv = "FILTERDIR_SHARDS"

// Context is a naming context held by a store: a subtree suffix plus the
// referral objects that terminate it (Section 2.3: C = (S, R1..Rn)).
type Context struct {
	Suffix    dn.DN
	Referrals []dn.DN
}

// Store is an in-memory DIT partition sharded by DN hash. All methods are
// safe for concurrent use. Multi-entry reads (Search, MatchAll, Snapshot,
// All, Contexts) freeze an immutable copy-on-write view and scan it
// lock-free; updates flow through a batched commit pipeline serialized by
// the global CSN sequencer, so replication consumers observe exactly one
// journal record per update in one global order regardless of shard count.
type Store struct {
	schema   *entry.Schema
	suffixes []dn.DN
	// defaultReferral is returned when a request targets a DN outside every
	// naming context (the "superior referral" of Figure 2).
	defaultReferral string
	indexAttrs      []string

	nshards int
	shards  []*shard

	// seqMu is the global CSN sequencer: a batch leader holds it while
	// applying its whole batch, and multi-shard readers hold it only long
	// enough to freeze a view (never across a scan), so views always land
	// on batch boundaries.
	seqMu          sync.Mutex
	journal        []Change
	journalBase    CSN // CSN of journal[0]; journal may be trimmed
	nextCSN        CSN
	journalLimit   int
	journalTrimmed uint64 // records dropped by the journal limit
	// holds maps hold IDs to their pinned CSNs (see hold.go): the journal
	// suffix after min(holds) survives trimming while any hold is live.
	holds   map[uint64]CSN
	holdSeq uint64
	// signal is closed and replaced once per committed batch; waiters use
	// it for persist-mode notification.
	signal chan struct{}

	// Commit-pipeline queue (guarded by pendMu, drained under seqMu).
	pendMu      sync.Mutex
	pending     []*writeOp
	batchLimit  int
	batchWindow time.Duration

	counters metrics.StoreCounters
}

// Option configures a Store.
type Option func(*Store)

// WithSchema enables schema validation on Add and Modify.
func WithSchema(s *entry.Schema) Option {
	return func(st *Store) { st.schema = s }
}

// WithIndexes maintains equality/prefix indexes for the named attributes.
func WithIndexes(attrs ...string) Option {
	return func(st *Store) {
		for _, a := range attrs {
			st.indexAttrs = append(st.indexAttrs, entry.NormValue(a))
		}
	}
}

// WithDefaultReferral sets the superior referral URL returned for targets
// outside every naming context.
func WithDefaultReferral(url string) Option {
	return func(st *Store) { st.defaultReferral = url }
}

// WithJournalLimit bounds the in-memory journal to the most recent n
// changes; older history is trimmed (consumers then require a full reload).
// Zero means unbounded.
func WithJournalLimit(n int) Option {
	return func(st *Store) { st.journalLimit = n }
}

// WithShards sets the number of DN-hash shards (values < 1 select the
// default: $FILTERDIR_SHARDS, else GOMAXPROCS). Shard count is a pure
// layout choice: the journal, CSN order, and all read results are
// identical across shard counts — the oracle shard sweep enforces it.
func WithShards(n int) Option {
	return func(st *Store) { st.nshards = n }
}

// WithBatchLimit bounds how many pending updates one commit leader applies
// per flush (default 128; values < 1 restore the default).
func WithBatchLimit(n int) Option {
	return func(st *Store) {
		if n < 1 {
			n = defaultBatchLimit
		}
		st.batchLimit = n
	}
}

// WithBatchWindow makes writers wait d before contending for the sequencer,
// accumulating concurrent updates into fewer, larger batches. Zero (the
// default) commits as soon as the sequencer is free.
func WithBatchWindow(d time.Duration) Option {
	return func(st *Store) { st.batchWindow = d }
}

// NewStore creates a store serving the given naming-context suffixes
// ("" for the whole DIT rooted at the null DN).
func NewStore(suffixes []string, opts ...Option) (*Store, error) {
	st := &Store{
		nextCSN:    1,
		signal:     make(chan struct{}),
		batchLimit: defaultBatchLimit,
	}
	for _, s := range suffixes {
		d, err := dn.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("suffix %q: %w", s, err)
		}
		st.suffixes = append(st.suffixes, d)
	}
	if len(st.suffixes) == 0 {
		st.suffixes = []dn.DN{dn.Root}
	}
	for _, o := range opts {
		o(st)
	}
	n := st.nshards
	if n < 1 {
		n = defaultShards()
	}
	st.nshards = n
	st.shards = make([]*shard, n)
	for i := range st.shards {
		st.shards[i] = &shard{state: newShardState(st.indexAttrs)}
	}
	return st, nil
}

// defaultShards resolves the shard count when WithShards is absent.
func defaultShards() int {
	if v := os.Getenv(ShardsEnv); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 1 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Shards returns the store's shard count.
func (s *Store) Shards() int { return len(s.shards) }

// Counters exposes the store's commit-pipeline and snapshot counters.
func (s *Store) Counters() *metrics.StoreCounters { return &s.counters }

// Suffixes returns the naming-context suffixes the store serves.
func (s *Store) Suffixes() []dn.DN {
	out := make([]dn.DN, len(s.suffixes))
	copy(out, s.suffixes)
	return out
}

// Len returns the number of entries held.
func (s *Store) Len() int {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	n := 0
	for _, sh := range s.shards {
		n += len(sh.load().entries)
	}
	return n
}

// LastCSN returns the CSN of the most recent committed change (0 if none).
func (s *Store) LastCSN() CSN {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	return s.nextCSN - 1
}

// Get returns a copy of the entry at d.
func (s *Store) Get(d dn.DN) (*entry.Entry, bool) {
	sh := s.shardFor(d.Norm())
	sh.mu.Lock()
	e, ok := sh.state.entries[d.Norm()]
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	// Stored entries are immutable, so the clone can happen outside the
	// shard lock.
	return e.Clone(), true
}

// holdsTarget reports whether the target DN falls under one of the store's
// naming contexts.
func (s *Store) holdsTarget(d dn.DN) bool {
	for _, suf := range s.suffixes {
		if suf.IsSuffix(d) {
			return true
		}
	}
	return false
}

// Result is the outcome of a search: matching entries (attribute-selected
// copies) plus referral URLs for subordinate or superior naming contexts.
type Result struct {
	Entries   []*entry.Entry
	Referrals []string
}

// Search evaluates an LDAP search against a frozen view of the store.
// Referral objects in the searched region are not descended into; their ref
// URLs are returned as search references. A base outside every naming
// context yields ErrNoSuchContext together with the default (superior)
// referral, mirroring the distributed-operation behaviour of Figure 2.
// Entries and referrals are returned in normalized-DN order, so equal
// content yields byte-equal results regardless of shard count.
func (s *Store) Search(q query.Query) (*Result, error) {
	if !s.holdsTarget(q.Base) {
		res := &Result{}
		if s.defaultReferral != "" {
			res.Referrals = append(res.Referrals, s.defaultReferral)
		}
		return res, fmt.Errorf("%w: %q", ErrNoSuchContext, q.Base.String())
	}
	v := s.freeze()
	baseEntry, ok := v.get(q.Base.Norm())
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchObject, q.Base.String())
	}

	res := &Result{}
	// Distributed name resolution: a referral base is itself a referral.
	if baseEntry.HasObjectClass(ReferralClass) {
		res.Referrals = append(res.Referrals, baseEntry.Values(RefAttr)...)
		return res, nil
	}

	f := q.Filter
	if f == nil {
		f = filter.NewPresent(entry.AttrObjectClass)
	}

	if cands, ok := v.indexCandidates(f); ok {
		for _, norm := range cands {
			e, ok := v.get(norm)
			if !ok {
				continue
			}
			if !q.InScope(e.DN()) || v.crossesReferral(q.Base, e.DN()) {
				continue
			}
			if e.HasObjectClass(ReferralClass) {
				continue // surfaced via the referral registry below
			}
			if f.Matches(e) {
				res.Entries = append(res.Entries, e.Select(q.Attrs))
			}
		}
		v.collectReferrals(q, res)
		sortResult(res)
		return res, nil
	}

	if v.referralFree() {
		// No referral anywhere in the view: the walk's referral pruning and
		// reachability checks are vacuous (a consistent store has no
		// orphans), so region membership reduces to the scope check and the
		// scan can fan out across shards (matchAll's parallel path).
		res.Entries = v.matchAll(q)
		return res, nil
	}
	v.walkRegion(q, baseEntry, res, f)
	sortResult(res)
	return res, nil
}

// referralFree reports whether the view holds no referral objects at all,
// via the per-shard registries — O(shards), not O(entries).
func (v *view) referralFree() bool {
	for _, st := range v.states {
		if len(st.referrals) > 0 {
			return false
		}
	}
	return true
}

func sortResult(res *Result) {
	sortEntries(res.Entries)
	sort.Strings(res.Referrals)
}

func sortEntries(es []*entry.Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].DN().Norm() < es[j].DN().Norm() })
}

// walkRegion scans the base/scope region, collecting matches and referrals.
func (v *view) walkRegion(q query.Query, baseEntry *entry.Entry, res *Result, f *filter.Node) {
	var visit func(e *entry.Entry, depth int)
	visit = func(e *entry.Entry, depth int) {
		if e.HasObjectClass(ReferralClass) && depth > 0 {
			if q.Scope == query.ScopeSubtree || (q.Scope == query.ScopeSingleLevel && depth == 1) {
				res.Referrals = append(res.Referrals, e.Values(RefAttr)...)
			}
			return
		}
		inRegion := false
		switch q.Scope {
		case query.ScopeBase:
			inRegion = depth == 0
		case query.ScopeSingleLevel:
			inRegion = depth == 1
		case query.ScopeSubtree:
			inRegion = true
		}
		if inRegion && f.Matches(e) {
			res.Entries = append(res.Entries, e.Select(q.Attrs))
		}
		if q.Scope == query.ScopeBase && depth == 0 {
			return
		}
		if q.Scope == query.ScopeSingleLevel && depth >= 1 {
			return
		}
		for childNorm := range v.childrenOf(e.DN().Norm()) {
			if c, ok := v.get(childNorm); ok {
				visit(c, depth+1)
			}
		}
	}
	visit(baseEntry, 0)
}

// collectReferrals surfaces referral objects in the region on the
// index-assisted path, which does not walk the tree. Instead of the old
// full-region walk it consults the per-shard referral registries —
// O(referrals·depth), not O(entries) — preserving the walk's semantics: a
// referral counts only when reachable from the base through a complete,
// referral-free chain of parents.
func (v *view) collectReferrals(q query.Query, res *Result) {
	if q.Scope == query.ScopeBase {
		return
	}
	baseNorm := q.Base.Norm()
	baseDepth := q.Base.Depth()
	for _, st := range v.states {
		for norm := range st.referrals {
			e, ok := st.entries[norm]
			if !ok {
				continue
			}
			d := e.DN()
			if !q.Base.IsSuffix(d) || d.Norm() == baseNorm {
				continue
			}
			depth := d.Depth() - baseDepth
			if q.Scope == query.ScopeSingleLevel && depth != 1 {
				continue
			}
			if !v.pathClear(q.Base, d) {
				continue
			}
			res.Referrals = append(res.Referrals, e.Values(RefAttr)...)
		}
	}
}

// pathClear reports whether every strict intermediate between base and
// target exists and is not itself a referral (the walk would have stopped
// at a missing link or an interposed referral).
func (v *view) pathClear(base, target dn.DN) bool {
	cur := target
	for {
		parent, ok := cur.Parent()
		if !ok || parent.Equal(base) {
			return true
		}
		if parent.Depth() < base.Depth() {
			return true
		}
		e, ok := v.get(parent.Norm())
		if !ok || e.HasObjectClass(ReferralClass) {
			return false
		}
		cur = parent
	}
}

// crossesReferral reports whether the path from base down to target passes
// through a referral object (the target then belongs to a subordinate
// context, not to this store's region).
func (v *view) crossesReferral(base, target dn.DN) bool {
	cur := target
	for !cur.Equal(base) {
		parent, ok := cur.Parent()
		if !ok {
			return false
		}
		if e, ok := v.get(parent.Norm()); ok && e.HasObjectClass(ReferralClass) {
			return true
		}
		cur = parent
		if cur.Depth() < base.Depth() {
			return false
		}
	}
	return false
}

// Contexts describes the store's naming contexts with their terminating
// referral objects, as used by subtree-replica metadata.
func (s *Store) Contexts() []Context {
	v := s.freeze()
	var refs []dn.DN
	for _, st := range v.states {
		for norm := range st.referrals {
			if e, ok := st.entries[norm]; ok {
				refs = append(refs, e.DN())
			}
		}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Norm() < refs[j].Norm() })
	out := make([]Context, 0, len(s.suffixes))
	for _, suf := range s.suffixes {
		c := Context{Suffix: suf}
		for _, d := range refs {
			if suf.IsSuffix(d) {
				c.Referrals = append(c.Referrals, d)
			}
		}
		out = append(out, c)
	}
	return out
}

// MatchAll evaluates a query against the store without anchoring at the
// base entry: every held entry in the base/scope region matching the filter
// is returned, in normalized-DN order. Filter-based replicas use this
// because they hold sparse content — matching entries without their
// ancestor chain — so the base of an answerable query need not itself be
// present.
func (s *Store) MatchAll(q query.Query) []*entry.Entry {
	return s.freeze().matchAll(q)
}

// Snapshot returns the last committed CSN together with the entries
// matching q, both taken from one frozen view so the pair is mutually
// consistent. ReSync session setup and reload depend on this: the engine's
// content-group cache treats a session's content as a pure function of
// (spec, CSN), so a commit landing between a CSN read and a content read
// would fabricate a (CSN, content) pair that never existed in the store's
// history. Freezing happens under the sequencer lock, so the view also
// always lands on a commit-batch boundary.
func (s *Store) Snapshot(q query.Query) (CSN, []*entry.Entry) {
	v := s.freeze()
	return v.csn, v.matchAll(q)
}

// parallelScanThreshold is the store size above which the non-indexed
// matchAll path fans the scan out across shards.
const parallelScanThreshold = 2048

func (v *view) matchAll(q query.Query) []*entry.Entry {
	f := q.Filter
	if f == nil {
		f = filter.NewPresent(entry.AttrObjectClass)
	}
	var out []*entry.Entry
	if cands, ok := v.indexCandidates(f); ok {
		for _, norm := range cands {
			e, ok := v.get(norm)
			if !ok {
				continue
			}
			if q.InScope(e.DN()) && f.Matches(e) {
				out = append(out, e.Select(q.Attrs))
			}
		}
		sortEntries(out)
		return out
	}
	scan := func(st *shardState) []*entry.Entry {
		var part []*entry.Entry
		for _, e := range st.entries {
			if q.InScope(e.DN()) && f.Matches(e) {
				part = append(part, e.Select(q.Attrs))
			}
		}
		return part
	}
	if len(v.states) > 1 && v.len() >= parallelScanThreshold {
		// Frozen states are immutable, so shards scan concurrently with no
		// coordination beyond the final merge.
		parts := make([][]*entry.Entry, len(v.states))
		var wg sync.WaitGroup
		for i, st := range v.states {
			wg.Add(1)
			go func(i int, st *shardState) {
				defer wg.Done()
				parts[i] = scan(st)
			}(i, st)
		}
		wg.Wait()
		for _, p := range parts {
			out = append(out, p...)
		}
	} else {
		for _, st := range v.states {
			out = append(out, scan(st)...)
		}
	}
	sortEntries(out)
	return out
}

// All returns a copy of every entry in normalized-DN order; intended for
// tests, dumps and full reloads.
func (s *Store) All() []*entry.Entry {
	v := s.freeze()
	out := make([]*entry.Entry, 0, v.len())
	for _, st := range v.states {
		for _, e := range st.entries {
			out = append(out, e.Clone())
		}
	}
	sortEntries(out)
	return out
}
