// Package dit implements an in-memory Directory Information Tree: entry
// storage under one or more naming contexts, index-assisted LDAP search,
// the four update operations (add, delete, modify, modifyDN), and an update
// journal with before/after snapshots that the ReSync protocol and its
// baselines consume.
package dit

import (
	"errors"
	"fmt"
	"sync"

	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/filter"
	"filterdir/internal/query"
)

// Errors reported by store operations.
var (
	ErrNoSuchObject  = errors.New("no such object")
	ErrAlreadyExists = errors.New("entry already exists")
	ErrNotLeaf       = errors.New("entry has children")
	ErrNoSuchContext = errors.New("base not under any naming context")
	ErrSchema        = errors.New("schema violation")
)

// CSN is a change sequence number: a monotonically increasing commit stamp
// assigned to every update.
type CSN uint64

// Referral is the object class marking subordinate-context glue entries; a
// referral entry's "ref" attribute carries the subordinate server URL.
const (
	ReferralClass = "referral"
	RefAttr       = "ref"
)

// Context is a naming context held by a store: a subtree suffix plus the
// referral objects that terminate it (Section 2.3: C = (S, R1..Rn)).
type Context struct {
	Suffix    dn.DN
	Referrals []dn.DN
}

// Store is an in-memory DIT partition. All methods are safe for concurrent
// use.
type Store struct {
	mu sync.RWMutex

	schema   *entry.Schema
	suffixes []dn.DN
	// defaultReferral is returned when a request targets a DN outside every
	// naming context (the "superior referral" of Figure 2).
	defaultReferral string

	entries  map[string]*entry.Entry    // norm DN -> entry
	children map[string]map[string]bool // parent norm -> child norms
	indexes  map[string]*attrIndex      // indexed attr -> index

	journal      []Change
	journalBase  CSN // CSN of journal[0]; journal may be trimmed
	nextCSN      CSN
	journalLimit int
	// journalTrimmed counts records dropped by the journal limit.
	journalTrimmed uint64

	// signal is closed and replaced on every committed change; waiters use
	// it for persist-mode notification.
	signal chan struct{}
}

// Option configures a Store.
type Option func(*Store)

// WithSchema enables schema validation on Add and Modify.
func WithSchema(s *entry.Schema) Option {
	return func(st *Store) { st.schema = s }
}

// WithIndexes maintains equality/prefix indexes for the named attributes.
func WithIndexes(attrs ...string) Option {
	return func(st *Store) {
		for _, a := range attrs {
			st.indexes[entry.NormValue(a)] = newAttrIndex()
		}
	}
}

// WithDefaultReferral sets the superior referral URL returned for targets
// outside every naming context.
func WithDefaultReferral(url string) Option {
	return func(st *Store) { st.defaultReferral = url }
}

// WithJournalLimit bounds the in-memory journal to the most recent n
// changes; older history is trimmed (consumers then require a full reload).
// Zero means unbounded.
func WithJournalLimit(n int) Option {
	return func(st *Store) { st.journalLimit = n }
}

// NewStore creates a store serving the given naming-context suffixes
// ("" for the whole DIT rooted at the null DN).
func NewStore(suffixes []string, opts ...Option) (*Store, error) {
	st := &Store{
		entries:  make(map[string]*entry.Entry),
		children: make(map[string]map[string]bool),
		indexes:  make(map[string]*attrIndex),
		nextCSN:  1,
		signal:   make(chan struct{}),
	}
	for _, s := range suffixes {
		d, err := dn.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("suffix %q: %w", s, err)
		}
		st.suffixes = append(st.suffixes, d)
	}
	if len(st.suffixes) == 0 {
		st.suffixes = []dn.DN{dn.Root}
	}
	for _, o := range opts {
		o(st)
	}
	return st, nil
}

// Suffixes returns the naming-context suffixes the store serves.
func (s *Store) Suffixes() []dn.DN {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]dn.DN, len(s.suffixes))
	copy(out, s.suffixes)
	return out
}

// Len returns the number of entries held.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// LastCSN returns the CSN of the most recent committed change (0 if none).
func (s *Store) LastCSN() CSN {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextCSN - 1
}

// Get returns a copy of the entry at d.
func (s *Store) Get(d dn.DN) (*entry.Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[d.Norm()]
	if !ok {
		return nil, false
	}
	return e.Clone(), true
}

// holdsTarget reports whether the target DN falls under one of the store's
// naming contexts.
func (s *Store) holdsTarget(d dn.DN) bool {
	for _, suf := range s.suffixes {
		if suf.IsSuffix(d) {
			return true
		}
	}
	return false
}

// Result is the outcome of a search: matching entries (attribute-selected
// copies) plus referral URLs for subordinate or superior naming contexts.
type Result struct {
	Entries   []*entry.Entry
	Referrals []string
}

// Search evaluates an LDAP search against the store. Referral objects in
// the searched region are not descended into; their ref URLs are returned
// as search references. A base outside every naming context yields
// ErrNoSuchContext together with the default (superior) referral, mirroring
// the distributed-operation behaviour of Figure 2.
func (s *Store) Search(q query.Query) (*Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()

	if !s.holdsTarget(q.Base) {
		res := &Result{}
		if s.defaultReferral != "" {
			res.Referrals = append(res.Referrals, s.defaultReferral)
		}
		return res, fmt.Errorf("%w: %q", ErrNoSuchContext, q.Base.String())
	}
	baseEntry, ok := s.entries[q.Base.Norm()]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchObject, q.Base.String())
	}

	res := &Result{}
	// Distributed name resolution: a referral base is itself a referral.
	if baseEntry.HasObjectClass(ReferralClass) {
		res.Referrals = append(res.Referrals, baseEntry.Values(RefAttr)...)
		return res, nil
	}

	f := q.Filter
	if f == nil {
		f = filter.NewPresent(entry.AttrObjectClass)
	}

	if cands, ok := s.indexCandidates(f); ok {
		for _, norm := range cands {
			e, ok := s.entries[norm]
			if !ok {
				continue
			}
			if !q.InScope(e.DN()) || s.crossesReferral(q.Base, e.DN()) {
				continue
			}
			if e.HasObjectClass(ReferralClass) {
				continue // handled by the region walk below
			}
			if f.Matches(e) {
				res.Entries = append(res.Entries, e.Select(q.Attrs))
			}
		}
		// Even with an index, referral objects in the region must surface.
		s.collectReferrals(q, res)
		return res, nil
	}

	s.walkRegion(q, baseEntry, res, f)
	return res, nil
}

// walkRegion scans the base/scope region, collecting matches and referrals.
func (s *Store) walkRegion(q query.Query, baseEntry *entry.Entry, res *Result, f *filter.Node) {
	var visit func(e *entry.Entry, depth int)
	visit = func(e *entry.Entry, depth int) {
		if e.HasObjectClass(ReferralClass) && depth > 0 {
			if q.Scope == query.ScopeSubtree || (q.Scope == query.ScopeSingleLevel && depth == 1) {
				res.Referrals = append(res.Referrals, e.Values(RefAttr)...)
			}
			return
		}
		inRegion := false
		switch q.Scope {
		case query.ScopeBase:
			inRegion = depth == 0
		case query.ScopeSingleLevel:
			inRegion = depth == 1
		case query.ScopeSubtree:
			inRegion = true
		}
		if inRegion && f.Matches(e) {
			res.Entries = append(res.Entries, e.Select(q.Attrs))
		}
		if q.Scope == query.ScopeBase && depth == 0 {
			return
		}
		if q.Scope == query.ScopeSingleLevel && depth >= 1 {
			return
		}
		for childNorm := range s.children[e.DN().Norm()] {
			if c, ok := s.entries[childNorm]; ok {
				visit(c, depth+1)
			}
		}
	}
	visit(baseEntry, 0)
}

// collectReferrals finds referral objects in the region (used on the
// index-assisted path, which does not walk the tree).
func (s *Store) collectReferrals(q query.Query, res *Result) {
	if q.Scope == query.ScopeBase {
		return
	}
	var visit func(norm string, depth int)
	visit = func(norm string, depth int) {
		e, ok := s.entries[norm]
		if !ok {
			return
		}
		if depth > 0 && e.HasObjectClass(ReferralClass) {
			if q.Scope == query.ScopeSubtree || depth == 1 {
				res.Referrals = append(res.Referrals, e.Values(RefAttr)...)
			}
			return
		}
		if q.Scope == query.ScopeSingleLevel && depth >= 1 {
			return
		}
		for child := range s.children[norm] {
			visit(child, depth+1)
		}
	}
	visit(q.Base.Norm(), 0)
}

// crossesReferral reports whether the path from base down to target passes
// through a referral object (the target then belongs to a subordinate
// context, not to this store's region).
func (s *Store) crossesReferral(base, target dn.DN) bool {
	cur := target
	for !cur.Equal(base) {
		parent, ok := cur.Parent()
		if !ok {
			return false
		}
		if e, ok := s.entries[parent.Norm()]; ok && e.HasObjectClass(ReferralClass) {
			return true
		}
		cur = parent
		if cur.Depth() < base.Depth() {
			return false
		}
	}
	return false
}

// Contexts describes the store's naming contexts with their terminating
// referral objects, as used by subtree-replica metadata.
func (s *Store) Contexts() []Context {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Context, 0, len(s.suffixes))
	for _, suf := range s.suffixes {
		c := Context{Suffix: suf}
		for norm, e := range s.entries {
			if e.HasObjectClass(ReferralClass) && suf.IsSuffix(e.DN()) {
				_ = norm
				c.Referrals = append(c.Referrals, e.DN())
			}
		}
		out = append(out, c)
	}
	return out
}

// MatchAll evaluates a query against the store without anchoring at the
// base entry: every held entry in the base/scope region matching the filter
// is returned. Filter-based replicas use this because they hold sparse
// content — matching entries without their ancestor chain — so the base of
// an answerable query need not itself be present.
func (s *Store) MatchAll(q query.Query) []*entry.Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.matchAllLocked(q)
}

// Snapshot returns the last committed CSN together with the entries
// matching q, both read under one lock acquisition so the pair is mutually
// consistent. ReSync session setup and reload depend on this: the engine's
// content-group cache treats a session's content as a pure function of
// (spec, CSN), so a commit landing between a LastCSN read and a MatchAll
// read would fabricate a (CSN, content) pair that never existed in the
// store's history.
func (s *Store) Snapshot(q query.Query) (CSN, []*entry.Entry) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextCSN - 1, s.matchAllLocked(q)
}

func (s *Store) matchAllLocked(q query.Query) []*entry.Entry {
	f := q.Filter
	if f == nil {
		f = filter.NewPresent(entry.AttrObjectClass)
	}
	var out []*entry.Entry
	if cands, ok := s.indexCandidates(f); ok {
		for _, norm := range cands {
			e, ok := s.entries[norm]
			if !ok {
				continue
			}
			if q.InScope(e.DN()) && f.Matches(e) {
				out = append(out, e.Select(q.Attrs))
			}
		}
		return out
	}
	for _, e := range s.entries {
		if q.InScope(e.DN()) && f.Matches(e) {
			out = append(out, e.Select(q.Attrs))
		}
	}
	return out
}

// All returns a copy of every entry (sorted order not guaranteed); intended
// for tests, dumps and full reloads.
func (s *Store) All() []*entry.Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*entry.Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e.Clone())
	}
	return out
}
