package dit

// Snapshot holds (DESIGN.md §14). A hold pins the journal suffix after a
// CSN: while any hold at CSN h is outstanding, trimLocked keeps every
// record with CSN > h, so ChangesSince(h) keeps answering incrementally.
// Resumable chunked transfers take a hold on their snapshot CSN the moment
// the snapshot is frozen — an aggressive journal-retention policy can then
// never destroy the history an in-flight transfer still needs to finish
// with an incremental catch-up poll instead of another full reload.
//
// Holds are deliberately cheap and revocation-free: they only raise the
// trim floor, they never block commits, and releasing one simply lets the
// next batch's trim collect the history.

// Hold pins journal history after a snapshot CSN. Release it exactly once;
// Release is idempotent via the registry (double release of the same Hold
// is a no-op, a Hold is never reused).
type Hold struct {
	id  uint64
	csn CSN
}

// CSN returns the pinned snapshot position.
func (h *Hold) CSN() CSN {
	if h == nil {
		return 0
	}
	return h.csn
}

// Hold registers a trim floor at csn: journal records needed to answer
// ChangesSince(csn) survive trimming until the hold is released.
func (s *Store) Hold(csn CSN) *Hold {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	s.holdSeq++
	h := &Hold{id: s.holdSeq, csn: csn}
	if s.holds == nil {
		s.holds = make(map[uint64]CSN)
	}
	s.holds[h.id] = csn
	return h
}

// Release removes a hold; the next committed batch's trim may then collect
// the history it pinned. Releasing nil or an already-released hold is a
// no-op.
func (s *Store) Release(h *Hold) {
	if h == nil {
		return
	}
	s.seqMu.Lock()
	delete(s.holds, h.id)
	s.seqMu.Unlock()
}

// ActiveHolds reports the number of outstanding holds — an operator gauge
// and a test probe for hold lifecycle leaks.
func (s *Store) ActiveHolds() int {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	return len(s.holds)
}

// minHoldLocked returns the lowest held CSN, if any. Callers hold seqMu.
func (s *Store) minHoldLocked() (CSN, bool) {
	found := false
	var min CSN
	for _, csn := range s.holds {
		if !found || csn < min {
			min, found = csn, true
		}
	}
	return min, found
}
