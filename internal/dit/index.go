package dit

import (
	"maps"
	"sort"
	"strings"

	"filterdir/internal/entry"
	"filterdir/internal/filter"
)

// attrIndex is an equality + ordered-prefix index over one attribute: a map
// from normalized value to the set of entry DNs carrying it, plus a sorted
// value list for prefix scans. Writes append new values to a small pending
// list that is merged into the sorted list once it grows past the
// threshold — at write time, never during lookups, because lookups may run
// against a frozen (shared, immutable) index. Indexes are copy-on-write:
// clone() shares the per-value DN sets until a write privatizes them.
type attrIndex struct {
	byValue map[string]map[string]bool // norm value -> set of norm DNs
	sorted  []string                   // sorted norm values (may contain stale)
	pending []string                   // unsorted recent additions
	cow     bool                       // value sets shared with an ancestor clone
	owned   map[string]bool            // values whose DN set this index owns
}

const pendingMergeThreshold = 256

func newAttrIndex() *attrIndex {
	return &attrIndex{byValue: make(map[string]map[string]bool)}
}

// clone makes a writable copy sharing the per-value DN sets; sorted and
// pending are copied eagerly since merges mutate them in place.
func (ix *attrIndex) clone() *attrIndex {
	return &attrIndex{
		byValue: maps.Clone(ix.byValue),
		sorted:  append([]string(nil), ix.sorted...),
		pending: append([]string(nil), ix.pending...),
		cow:     true,
		owned:   make(map[string]bool),
	}
}

// set returns the writable DN set for a value, privatizing a shared one.
func (ix *attrIndex) set(v string) map[string]bool {
	s, ok := ix.byValue[v]
	if !ok {
		return nil
	}
	if ix.cow && !ix.owned[v] {
		s = maps.Clone(s)
		ix.byValue[v] = s
		ix.owned[v] = true
	}
	return s
}

func (ix *attrIndex) add(value, dnNorm string) {
	v := entry.NormValue(value)
	s := ix.set(v)
	if s == nil {
		s = make(map[string]bool)
		ix.byValue[v] = s
		if ix.cow {
			ix.owned[v] = true
		}
		ix.pending = append(ix.pending, v)
		if len(ix.pending) >= pendingMergeThreshold {
			ix.mergePending()
		}
	}
	s[dnNorm] = true
}

func (ix *attrIndex) remove(value, dnNorm string) {
	v := entry.NormValue(value)
	if s := ix.set(v); s != nil {
		delete(s, dnNorm)
		if len(s) == 0 {
			delete(ix.byValue, v)
			delete(ix.owned, v)
			// The stale value remains in sorted/pending; lookups check
			// byValue for liveness.
		}
	}
}

// lookupEQ returns the DNs carrying the value. Read-only.
func (ix *attrIndex) lookupEQ(value string) []string {
	set := ix.byValue[entry.NormValue(value)]
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	return out
}

// lookupPrefix returns the DNs whose value starts with the prefix.
// Read-only: the sorted list is binary-searched and the (bounded) pending
// list scanned linearly, so it is safe on frozen shared indexes.
func (ix *attrIndex) lookupPrefix(prefix string) []string {
	p := entry.NormValue(prefix)
	var out []string
	seen := make(map[string]bool)
	collect := func(v string) {
		if seen[v] {
			return
		}
		seen[v] = true
		for d := range ix.byValue[v] {
			out = append(out, d)
		}
	}
	for i := sort.SearchStrings(ix.sorted, p); i < len(ix.sorted); i++ {
		v := ix.sorted[i]
		if !strings.HasPrefix(v, p) {
			break
		}
		collect(v)
	}
	for _, v := range ix.pending {
		if strings.HasPrefix(v, p) {
			collect(v)
		}
	}
	return out
}

// mergePending folds pending values into the sorted list. Called only from
// add (writer-owned index), never from lookups.
func (ix *attrIndex) mergePending() {
	if len(ix.pending) == 0 {
		return
	}
	ix.sorted = append(ix.sorted, ix.pending...)
	ix.pending = ix.pending[:0]
	sort.Strings(ix.sorted)
	// Compact exact duplicates introduced by value reuse after deletion.
	out := ix.sorted[:0]
	var last string
	for i, v := range ix.sorted {
		if i > 0 && v == last {
			continue
		}
		last = v
		out = append(out, v)
	}
	ix.sorted = out
}

// indexCandidates derives a candidate DN set from the filter using the
// view's per-shard indexes. ok is false when no index applies and the
// caller must walk the region. The candidate set is a superset of the
// matching entries (the full filter is still evaluated).
func (v *view) indexCandidates(f *filter.Node) ([]string, bool) {
	switch f.Op {
	case filter.EQ:
		if f.Neg {
			return nil, false
		}
		return v.lookupAll(f.Attr, func(ix *attrIndex) []string {
			return ix.lookupEQ(f.Value)
		})
	case filter.Substr:
		if f.Neg || f.Sub == nil || f.Sub.Initial == "" {
			return nil, false
		}
		return v.lookupAll(f.Attr, func(ix *attrIndex) []string {
			return ix.lookupPrefix(f.Sub.Initial)
		})
	case filter.And:
		// Use the smallest candidate set among indexable children.
		var best []string
		found := false
		for _, c := range f.Children {
			if cands, ok := v.indexCandidates(c); ok {
				if !found || len(cands) < len(best) {
					best, found = cands, true
				}
			}
		}
		return best, found
	case filter.Or:
		// A union is a valid candidate set only if every branch is
		// indexable.
		seen := make(map[string]bool)
		for _, c := range f.Children {
			cands, ok := v.indexCandidates(c)
			if !ok {
				return nil, false
			}
			for _, d := range cands {
				seen[d] = true
			}
		}
		out := make([]string, 0, len(seen))
		for d := range seen {
			out = append(out, d)
		}
		return out, true
	}
	return nil, false
}

// lookupAll unions one index lookup across every shard of the view; ok is
// false when the attribute is not indexed. Per-shard results are disjoint
// (each shard indexes only its own entries), so no dedup is needed.
func (v *view) lookupAll(attr string, lookup func(*attrIndex) []string) ([]string, bool) {
	var out []string
	for _, st := range v.states {
		ix, ok := st.indexes[attr]
		if !ok {
			return nil, false
		}
		out = append(out, lookup(ix)...)
	}
	return out, true
}
