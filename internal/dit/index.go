package dit

import (
	"sort"
	"strings"

	"filterdir/internal/entry"
	"filterdir/internal/filter"
)

// attrIndex is an equality + ordered-prefix index over one attribute: a map
// from normalized value to the set of entry DNs carrying it, plus a lazily
// maintained sorted value list for prefix scans. Writes append to a small
// pending list; reads merge it into the sorted main list once it grows.
type attrIndex struct {
	byValue map[string]map[string]bool // norm value -> set of norm DNs
	sorted  []string                   // sorted norm values (may contain stale)
	pending []string                   // unsorted recent additions
}

const pendingMergeThreshold = 4096

func newAttrIndex() *attrIndex {
	return &attrIndex{byValue: make(map[string]map[string]bool)}
}

func (ix *attrIndex) add(value, dnNorm string) {
	v := entry.NormValue(value)
	set, ok := ix.byValue[v]
	if !ok {
		set = make(map[string]bool)
		ix.byValue[v] = set
		ix.pending = append(ix.pending, v)
	}
	set[dnNorm] = true
}

func (ix *attrIndex) remove(value, dnNorm string) {
	v := entry.NormValue(value)
	if set, ok := ix.byValue[v]; ok {
		delete(set, dnNorm)
		if len(set) == 0 {
			delete(ix.byValue, v)
			// The stale value remains in sorted/pending; lookups check
			// byValue for liveness.
		}
	}
}

// lookupEQ returns the DNs carrying the value.
func (ix *attrIndex) lookupEQ(value string) []string {
	set := ix.byValue[entry.NormValue(value)]
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	return out
}

// lookupPrefix returns the DNs whose value starts with the prefix.
func (ix *attrIndex) lookupPrefix(prefix string) []string {
	p := entry.NormValue(prefix)
	ix.mergePending()
	i := sort.SearchStrings(ix.sorted, p)
	var out []string
	var last string
	for ; i < len(ix.sorted); i++ {
		v := ix.sorted[i]
		if !strings.HasPrefix(v, p) {
			break
		}
		if v == last {
			continue // merged duplicates
		}
		last = v
		for d := range ix.byValue[v] {
			out = append(out, d)
		}
	}
	return out
}

func (ix *attrIndex) mergePending() {
	if len(ix.pending) == 0 {
		return
	}
	if len(ix.pending) < pendingMergeThreshold && len(ix.sorted) > 0 {
		// Small pending set: scan it linearly during lookups instead of
		// re-sorting the world. Simpler: merge anyway when a prefix lookup
		// happens — prefix lookups need sorted order.
	}
	ix.sorted = append(ix.sorted, ix.pending...)
	ix.pending = ix.pending[:0]
	sort.Strings(ix.sorted)
	// Compact exact duplicates introduced by value reuse after deletion.
	out := ix.sorted[:0]
	var last string
	for i, v := range ix.sorted {
		if i > 0 && v == last {
			continue
		}
		last = v
		out = append(out, v)
	}
	ix.sorted = out
}

// indexEntry registers all indexed attributes of an entry.
func (s *Store) indexEntry(e *entry.Entry) {
	norm := e.DN().Norm()
	for attr, ix := range s.indexes {
		for _, v := range e.Values(attr) {
			ix.add(v, norm)
		}
	}
}

// unindexEntry removes all indexed attributes of an entry.
func (s *Store) unindexEntry(e *entry.Entry) {
	norm := e.DN().Norm()
	for attr, ix := range s.indexes {
		for _, v := range e.Values(attr) {
			ix.remove(v, norm)
		}
	}
}

// indexCandidates derives a candidate DN set from the filter using the
// store's indexes. ok is false when no index applies and the caller must
// walk the region. The candidate set is a superset of the matching entries
// (the full filter is still evaluated).
func (s *Store) indexCandidates(f *filter.Node) ([]string, bool) {
	switch f.Op {
	case filter.EQ:
		if f.Neg {
			return nil, false
		}
		if ix, ok := s.indexes[f.Attr]; ok {
			return ix.lookupEQ(f.Value), true
		}
	case filter.Substr:
		if f.Neg || f.Sub == nil || f.Sub.Initial == "" {
			return nil, false
		}
		if ix, ok := s.indexes[f.Attr]; ok {
			return ix.lookupPrefix(f.Sub.Initial), true
		}
	case filter.And:
		// Use the smallest candidate set among indexable children.
		var best []string
		found := false
		for _, c := range f.Children {
			if cands, ok := s.indexCandidates(c); ok {
				if !found || len(cands) < len(best) {
					best, found = cands, true
				}
			}
		}
		return best, found
	case filter.Or:
		// A union is a valid candidate set only if every branch is
		// indexable.
		seen := make(map[string]bool)
		for _, c := range f.Children {
			cands, ok := s.indexCandidates(c)
			if !ok {
				return nil, false
			}
			for _, d := range cands {
				seen[d] = true
			}
		}
		out := make([]string, 0, len(seen))
		for d := range seen {
			out = append(out, d)
		}
		return out, true
	}
	return nil, false
}
