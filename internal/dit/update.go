package dit

import (
	"fmt"
	"strings"

	"filterdir/internal/dn"
	"filterdir/internal/entry"
)

// ChangeType identifies an update operation.
type ChangeType int

// The four LDAP update operations.
const (
	ChangeAdd ChangeType = iota + 1
	ChangeDelete
	ChangeModify
	ChangeModifyDN
)

func (t ChangeType) String() string {
	switch t {
	case ChangeAdd:
		return "add"
	case ChangeDelete:
		return "delete"
	case ChangeModify:
		return "modify"
	case ChangeModifyDN:
		return "modifyDN"
	default:
		return fmt.Sprintf("change(%d)", int(t))
	}
}

// Change is one journal record: the operation plus full before/after entry
// snapshots, which let the ReSync engine classify every change against any
// content specification (moved in / moved out / changed within). For
// ChangeModifyDN, DN is the old name and NewDN the new one; subtree moves
// journal one ModifyDN record per moved entry.
type Change struct {
	CSN    CSN
	Type   ChangeType
	DN     dn.DN
	NewDN  dn.DN
	Before *entry.Entry
	After  *entry.Entry
	// Mods records the attribute-level modifications for ChangeModify; it is
	// what a changelog-style consumer sees (changed attributes only).
	Mods []Mod
}

// ModOp is a modify sub-operation kind.
type ModOp int

// Modify sub-operations per RFC 2251.
const (
	ModAdd ModOp = iota + 1
	ModReplace
	ModDelete
)

// Mod is one attribute modification.
type Mod struct {
	Op     ModOp
	Attr   string
	Values []string
}

// commit appends a change to the journal and wakes persist-mode waiters.
// Callers hold s.mu.
func (s *Store) commit(c Change) CSN {
	c.CSN = s.nextCSN
	s.nextCSN++
	s.journal = append(s.journal, c)
	if s.journalLimit > 0 && len(s.journal) > s.journalLimit {
		drop := len(s.journal) - s.journalLimit
		s.journal = append(s.journal[:0:0], s.journal[drop:]...)
		s.journalBase += CSN(drop)
		s.journalTrimmed += uint64(drop)
	}
	close(s.signal)
	s.signal = make(chan struct{})
	return c.CSN
}

// JournalTrimmed returns the total number of journal records dropped by the
// WithJournalLimit bound — the changes sync consumers can no longer replay
// and must cover with a full reload.
func (s *Store) JournalTrimmed() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.journalTrimmed
}

// ChangeSignal returns a channel closed at the next committed change;
// persist-mode consumers re-arm by calling it again after each wakeup.
func (s *Store) ChangeSignal() <-chan struct{} {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.signal
}

// ChangesSince returns all journal records with CSN > after, and ok=false
// when that span has been trimmed from the journal (the consumer must then
// fall back to a full reload).
func (s *Store) ChangesSince(after CSN) (changes []Change, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	first := s.journalBase
	if len(s.journal) > 0 {
		first = s.journal[0].CSN
	}
	if after+1 < first {
		return nil, false
	}
	for _, c := range s.journal {
		if c.CSN > after {
			changes = append(changes, c)
		}
	}
	return changes, true
}

// Add inserts a new entry. The parent must exist unless the entry is a
// naming-context suffix. Schema validation applies when configured.
func (s *Store) Add(e *entry.Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.addLocked(e)
	return err
}

func (s *Store) addLocked(e *entry.Entry) (CSN, error) {
	d := e.DN()
	norm := d.Norm()
	if !s.holdsTarget(d) {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchContext, d.String())
	}
	if _, exists := s.entries[norm]; exists {
		return 0, fmt.Errorf("%w: %q", ErrAlreadyExists, d.String())
	}
	if !s.isSuffixEntry(d) {
		parent, ok := d.Parent()
		if !ok {
			return 0, fmt.Errorf("%w: parent of %q", ErrNoSuchObject, d.String())
		}
		if _, exists := s.entries[parent.Norm()]; !exists {
			return 0, fmt.Errorf("%w: parent %q", ErrNoSuchObject, parent.String())
		}
	}
	if s.schema != nil {
		if err := s.schema.Validate(e); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrSchema, err)
		}
	}
	cp := e.Clone()
	s.entries[norm] = cp
	s.linkChild(d)
	s.indexEntry(cp)
	return s.commit(Change{Type: ChangeAdd, DN: d, After: cp.Clone()}), nil
}

// isSuffixEntry reports whether d is one of the store's context suffixes.
func (s *Store) isSuffixEntry(d dn.DN) bool {
	for _, suf := range s.suffixes {
		if suf.Equal(d) {
			return true
		}
	}
	return false
}

func (s *Store) linkChild(d dn.DN) {
	parent, ok := d.Parent()
	if !ok {
		return
	}
	set, ok := s.children[parent.Norm()]
	if !ok {
		set = make(map[string]bool)
		s.children[parent.Norm()] = set
	}
	set[d.Norm()] = true
}

func (s *Store) unlinkChild(d dn.DN) {
	parent, ok := d.Parent()
	if !ok {
		return
	}
	if set, ok := s.children[parent.Norm()]; ok {
		delete(set, d.Norm())
		if len(set) == 0 {
			delete(s.children, parent.Norm())
		}
	}
}

// Delete removes a leaf entry.
func (s *Store) Delete(d dn.DN) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.deleteLocked(d)
	return err
}

func (s *Store) deleteLocked(d dn.DN) (CSN, error) {
	norm := d.Norm()
	e, ok := s.entries[norm]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchObject, d.String())
	}
	if len(s.children[norm]) > 0 {
		return 0, fmt.Errorf("%w: %q", ErrNotLeaf, d.String())
	}
	delete(s.entries, norm)
	s.unlinkChild(d)
	s.unindexEntry(e)
	return s.commit(Change{Type: ChangeDelete, DN: d, Before: e}), nil
}

// Modify applies attribute modifications to an entry.
func (s *Store) Modify(d dn.DN, mods []Mod) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.modifyLocked(d, mods)
	return err
}

func (s *Store) modifyLocked(d dn.DN, mods []Mod) (CSN, error) {
	norm := d.Norm()
	e, ok := s.entries[norm]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchObject, d.String())
	}
	before := e.Clone()
	after := e.Clone()
	for _, m := range mods {
		switch m.Op {
		case ModAdd:
			after.Add(m.Attr, m.Values...)
		case ModReplace:
			if len(m.Values) == 0 {
				// Replace with no values removes the attribute.
				if after.Has(m.Attr) {
					_ = after.DeleteValues(m.Attr)
				}
			} else {
				after.Put(m.Attr, m.Values...)
			}
		case ModDelete:
			if err := after.DeleteValues(m.Attr, m.Values...); err != nil {
				return 0, fmt.Errorf("modify %q: %w", d.String(), err)
			}
		default:
			return 0, fmt.Errorf("modify %q: unknown mod op %d", d.String(), m.Op)
		}
	}
	if s.schema != nil {
		if err := s.schema.Validate(after); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrSchema, err)
		}
	}
	s.unindexEntry(before)
	s.entries[norm] = after
	s.indexEntry(after)
	return s.commit(Change{Type: ChangeModify, DN: d, Before: before, After: after.Clone(), Mods: cloneMods(mods)}), nil
}

func cloneMods(mods []Mod) []Mod {
	out := make([]Mod, len(mods))
	for i, m := range mods {
		out[i] = Mod{Op: m.Op, Attr: m.Attr, Values: append([]string(nil), m.Values...)}
	}
	return out
}

// ModifyDN renames an entry (and, for non-leaf entries, its whole subtree).
// newSuperior is the new parent DN; pass the current parent for a pure
// rename. The leaf RDN attribute value is updated in the entry when the RDN
// changes. One ModifyDN journal record is committed per moved entry.
func (s *Store) ModifyDN(old dn.DN, newRDN dn.RDN, newSuperior dn.DN) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.modifyDNLocked(old, newRDN, newSuperior)
	return err
}

func (s *Store) modifyDNLocked(old dn.DN, newRDN dn.RDN, newSuperior dn.DN) (CSN, error) {
	oldNorm := old.Norm()
	if _, ok := s.entries[oldNorm]; !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchObject, old.String())
	}
	newDN := newSuperior.Child(newRDN)
	if !s.holdsTarget(newDN) {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchContext, newDN.String())
	}
	if _, exists := s.entries[newDN.Norm()]; exists {
		return 0, fmt.Errorf("%w: %q", ErrAlreadyExists, newDN.String())
	}
	if !newSuperior.IsRoot() {
		if _, ok := s.entries[newSuperior.Norm()]; !ok && !s.isSuffixEntry(newDN) {
			return 0, fmt.Errorf("%w: new superior %q", ErrNoSuchObject, newSuperior.String())
		}
	}
	if old.IsSuffix(newDN) && !old.Equal(newDN) {
		return 0, fmt.Errorf("cannot move %q under itself", old.String())
	}

	// Collect the subtree rooted at old, parents before children.
	var subtree []dn.DN
	var collect func(d dn.DN)
	collect = func(d dn.DN) {
		subtree = append(subtree, d)
		for childNorm := range s.children[d.Norm()] {
			if c, ok := s.entries[childNorm]; ok {
				collect(c.DN())
			}
		}
	}
	collect(old)

	var last CSN
	for _, cur := range subtree {
		tgt, err := dn.Rename(cur, old, newDN)
		if err != nil {
			return 0, err
		}
		e := s.entries[cur.Norm()]
		before := e.Clone()
		delete(s.entries, cur.Norm())
		s.unlinkChild(cur)
		s.unindexEntry(e)

		moved := e
		moved.SetDN(tgt)
		if cur.Equal(old) {
			// Update the naming attribute to match the new RDN.
			oldLeaf, _ := cur.Leaf()
			if !strings.EqualFold(oldLeaf.Attr, newRDN.Attr) || !entry.EqualValues(oldLeaf.Value, newRDN.Value) {
				moved.Put(newRDN.Attr, newRDN.Value)
			}
		}
		s.entries[tgt.Norm()] = moved
		s.linkChild(tgt)
		s.indexEntry(moved)
		last = s.commit(Change{Type: ChangeModifyDN, DN: cur, NewDN: tgt, Before: before, After: moved.Clone()})
	}
	return last, nil
}

// ApplyCSN applies an externally-described change (an edge-originated write
// forwarded up the cascade) and returns the CSN of the committed journal
// record — the sequencing a replica needs to match its pending op against
// the ReSync stream. A subtree ModifyDN commits one record per moved entry
// and returns the last CSN: the whole move is visible once the stream
// reaches it.
func (s *Store) ApplyCSN(c Change) (CSN, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch c.Type {
	case ChangeAdd:
		if c.After == nil {
			return 0, fmt.Errorf("apply add %q: no entry image", c.DN.String())
		}
		return s.addLocked(c.After)
	case ChangeDelete:
		return s.deleteLocked(c.DN)
	case ChangeModify:
		return s.modifyLocked(c.DN, c.Mods)
	case ChangeModifyDN:
		leaf, ok := c.NewDN.Leaf()
		if !ok {
			return 0, fmt.Errorf("apply modifyDN %q: new DN lacks a leaf RDN", c.DN.String())
		}
		superior, _ := c.NewDN.Parent()
		return s.modifyDNLocked(c.DN, leaf, superior)
	default:
		return 0, fmt.Errorf("apply: unknown change type %v", c.Type)
	}
}

// Upsert inserts or replaces an entry without requiring its parent to
// exist. Replica stores use it to apply synchronization actions: filter
// replicas hold sparse content (selected entries without their ancestor
// chains). The change is journaled as an add or modify.
func (s *Store) Upsert(e *entry.Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := e.DN()
	if !s.holdsTarget(d) {
		return fmt.Errorf("%w: %q", ErrNoSuchContext, d.String())
	}
	norm := d.Norm()
	cp := e.Clone()
	if prior, ok := s.entries[norm]; ok {
		s.unindexEntry(prior)
		s.entries[norm] = cp
		s.indexEntry(cp)
		s.commit(Change{Type: ChangeModify, DN: d, Before: prior, After: cp.Clone()})
		return nil
	}
	s.entries[norm] = cp
	s.linkChild(d)
	s.indexEntry(cp)
	s.commit(Change{Type: ChangeAdd, DN: d, After: cp.Clone()})
	return nil
}

// RemoveAny deletes an entry regardless of children (sparse replica content
// does not maintain tree completeness). Removing an absent entry is a
// no-op returning ErrNoSuchObject.
func (s *Store) RemoveAny(d dn.DN) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	norm := d.Norm()
	e, ok := s.entries[norm]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchObject, d.String())
	}
	delete(s.entries, norm)
	s.unlinkChild(d)
	s.unindexEntry(e)
	s.commit(Change{Type: ChangeDelete, DN: d, Before: e})
	return nil
}

// Load bulk-inserts entries without journaling (initial population of a
// master or replica). Parents must precede children in the slice. Schema
// validation applies when configured.
func (s *Store) Load(entries []*entry.Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		d := e.DN()
		norm := d.Norm()
		if !s.holdsTarget(d) {
			return fmt.Errorf("%w: %q", ErrNoSuchContext, d.String())
		}
		if _, exists := s.entries[norm]; exists {
			return fmt.Errorf("%w: %q", ErrAlreadyExists, d.String())
		}
		if s.schema != nil {
			if err := s.schema.Validate(e); err != nil {
				return fmt.Errorf("%w: %v", ErrSchema, err)
			}
		}
		cp := e.Clone()
		s.entries[norm] = cp
		s.linkChild(d)
		s.indexEntry(cp)
	}
	return nil
}
