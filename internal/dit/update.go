package dit

import (
	"fmt"
	"sort"
	"strings"

	"filterdir/internal/dn"
	"filterdir/internal/entry"
)

// ChangeType identifies an update operation.
type ChangeType int

// The four LDAP update operations.
const (
	ChangeAdd ChangeType = iota + 1
	ChangeDelete
	ChangeModify
	ChangeModifyDN
)

func (t ChangeType) String() string {
	switch t {
	case ChangeAdd:
		return "add"
	case ChangeDelete:
		return "delete"
	case ChangeModify:
		return "modify"
	case ChangeModifyDN:
		return "modifyDN"
	default:
		return fmt.Sprintf("change(%d)", int(t))
	}
}

// Change is one journal record: the operation plus full before/after entry
// snapshots, which let the ReSync engine classify every change against any
// content specification (moved in / moved out / changed within). For
// ChangeModifyDN, DN is the old name and NewDN the new one; subtree moves
// journal one ModifyDN record per moved entry.
type Change struct {
	CSN    CSN
	Type   ChangeType
	DN     dn.DN
	NewDN  dn.DN
	Before *entry.Entry
	After  *entry.Entry
	// Mods records the attribute-level modifications for ChangeModify; it is
	// what a changelog-style consumer sees (changed attributes only).
	Mods []Mod
}

// ModOp is a modify sub-operation kind.
type ModOp int

// Modify sub-operations per RFC 2251.
const (
	ModAdd ModOp = iota + 1
	ModReplace
	ModDelete
)

// Mod is one attribute modification.
type Mod struct {
	Op     ModOp
	Attr   string
	Values []string
}

// JournalTrimmed returns the total number of journal records dropped by the
// WithJournalLimit bound — the changes sync consumers can no longer replay
// and must cover with a full reload.
func (s *Store) JournalTrimmed() uint64 {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	return s.journalTrimmed
}

// ChangeSignal returns a channel closed at the next committed batch;
// persist-mode consumers re-arm by calling it again after each wakeup.
func (s *Store) ChangeSignal() <-chan struct{} {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	return s.signal
}

// ChangesSince returns all journal records with CSN > after, and ok=false
// when that span has been trimmed from the journal (the consumer must then
// fall back to a full reload).
func (s *Store) ChangesSince(after CSN) (changes []Change, ok bool) {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	first := s.journalBase
	if len(s.journal) > 0 {
		first = s.journal[0].CSN
	}
	if after+1 < first {
		return nil, false
	}
	for _, c := range s.journal {
		if c.CSN > after {
			changes = append(changes, c)
		}
	}
	return changes, true
}

// Add inserts a new entry. The parent must exist unless the entry is a
// naming-context suffix. Schema validation applies when configured.
func (s *Store) Add(e *entry.Entry) error {
	_, err := s.submit(func() (CSN, error) { return s.addLocked(e) })
	return err
}

// addLocked validates and applies one add with seqMu held (as are all the
// *Locked update ops below, which run only inside a commit leader's batch).
func (s *Store) addLocked(e *entry.Entry) (CSN, error) {
	d := e.DN()
	norm := d.Norm()
	if !s.holdsTarget(d) {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchContext, d.String())
	}
	sh := s.shardFor(norm)
	if _, exists := sh.load().entries[norm]; exists {
		return 0, fmt.Errorf("%w: %q", ErrAlreadyExists, d.String())
	}
	if !s.isSuffixEntry(d) {
		parent, ok := d.Parent()
		if !ok {
			return 0, fmt.Errorf("%w: parent of %q", ErrNoSuchObject, d.String())
		}
		if _, exists := s.shardFor(parent.Norm()).load().entries[parent.Norm()]; !exists {
			return 0, fmt.Errorf("%w: parent %q", ErrNoSuchObject, parent.String())
		}
	}
	if s.schema != nil {
		if err := s.schema.Validate(e); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrSchema, err)
		}
	}
	cp := e.Clone()
	s.insert(cp, norm)
	return s.commitLocked(Change{Type: ChangeAdd, DN: d, After: cp.Clone()}), nil
}

// insert stores an (already validated) entry: the entry, its index terms
// and referral registration on its own shard, the child link on the
// parent's shard.
func (s *Store) insert(e *entry.Entry, norm string) {
	s.write(s.shardFor(norm), func(st *shardState) {
		st.entries[norm] = e
		st.indexEntry(e, norm)
	})
	s.linkChild(e.DN())
}

// remove deletes an entry from its shard and unlinks it from its parent.
func (s *Store) remove(e *entry.Entry, norm string) {
	s.write(s.shardFor(norm), func(st *shardState) {
		delete(st.entries, norm)
		st.unindexEntry(e, norm)
	})
	s.unlinkChild(e.DN())
}

// isSuffixEntry reports whether d is one of the store's context suffixes.
func (s *Store) isSuffixEntry(d dn.DN) bool {
	for _, suf := range s.suffixes {
		if suf.Equal(d) {
			return true
		}
	}
	return false
}

func (s *Store) linkChild(d dn.DN) {
	parent, ok := d.Parent()
	if !ok {
		return
	}
	s.write(s.shardFor(parent.Norm()), func(st *shardState) {
		st.link(parent.Norm(), d.Norm())
	})
}

func (s *Store) unlinkChild(d dn.DN) {
	parent, ok := d.Parent()
	if !ok {
		return
	}
	s.write(s.shardFor(parent.Norm()), func(st *shardState) {
		st.unlink(parent.Norm(), d.Norm())
	})
}

// Delete removes a leaf entry.
func (s *Store) Delete(d dn.DN) error {
	_, err := s.submit(func() (CSN, error) { return s.deleteLocked(d) })
	return err
}

func (s *Store) deleteLocked(d dn.DN) (CSN, error) {
	norm := d.Norm()
	e, ok := s.shardFor(norm).load().entries[norm]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchObject, d.String())
	}
	if len(s.shardFor(norm).load().children[norm]) > 0 {
		return 0, fmt.Errorf("%w: %q", ErrNotLeaf, d.String())
	}
	s.remove(e, norm)
	return s.commitLocked(Change{Type: ChangeDelete, DN: d, Before: e}), nil
}

// Modify applies attribute modifications to an entry.
func (s *Store) Modify(d dn.DN, mods []Mod) error {
	_, err := s.submit(func() (CSN, error) { return s.modifyLocked(d, mods) })
	return err
}

func (s *Store) modifyLocked(d dn.DN, mods []Mod) (CSN, error) {
	norm := d.Norm()
	sh := s.shardFor(norm)
	e, ok := sh.load().entries[norm]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchObject, d.String())
	}
	before := e
	after := e.Clone()
	for _, m := range mods {
		switch m.Op {
		case ModAdd:
			after.Add(m.Attr, m.Values...)
		case ModReplace:
			if len(m.Values) == 0 {
				// Replace with no values removes the attribute.
				if after.Has(m.Attr) {
					_ = after.DeleteValues(m.Attr)
				}
			} else {
				after.Put(m.Attr, m.Values...)
			}
		case ModDelete:
			if err := after.DeleteValues(m.Attr, m.Values...); err != nil {
				return 0, fmt.Errorf("modify %q: %w", d.String(), err)
			}
		default:
			return 0, fmt.Errorf("modify %q: unknown mod op %d", d.String(), m.Op)
		}
	}
	if s.schema != nil {
		if err := s.schema.Validate(after); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrSchema, err)
		}
	}
	s.write(sh, func(st *shardState) {
		st.unindexEntry(before, norm)
		st.entries[norm] = after
		st.indexEntry(after, norm)
	})
	return s.commitLocked(Change{Type: ChangeModify, DN: d, Before: before, After: after.Clone(), Mods: cloneMods(mods)}), nil
}

func cloneMods(mods []Mod) []Mod {
	out := make([]Mod, len(mods))
	for i, m := range mods {
		out[i] = Mod{Op: m.Op, Attr: m.Attr, Values: append([]string(nil), m.Values...)}
	}
	return out
}

// ModifyDN renames an entry (and, for non-leaf entries, its whole subtree).
// newSuperior is the new parent DN; pass the current parent for a pure
// rename. The leaf RDN attribute value is updated in the entry when the RDN
// changes. One ModifyDN journal record is committed per moved entry.
func (s *Store) ModifyDN(old dn.DN, newRDN dn.RDN, newSuperior dn.DN) error {
	_, err := s.submit(func() (CSN, error) { return s.modifyDNLocked(old, newRDN, newSuperior) })
	return err
}

func (s *Store) modifyDNLocked(old dn.DN, newRDN dn.RDN, newSuperior dn.DN) (CSN, error) {
	oldNorm := old.Norm()
	if _, ok := s.shardFor(oldNorm).load().entries[oldNorm]; !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchObject, old.String())
	}
	newDN := newSuperior.Child(newRDN)
	if !s.holdsTarget(newDN) {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchContext, newDN.String())
	}
	if _, exists := s.shardFor(newDN.Norm()).load().entries[newDN.Norm()]; exists {
		return 0, fmt.Errorf("%w: %q", ErrAlreadyExists, newDN.String())
	}
	if !newSuperior.IsRoot() {
		if _, ok := s.shardFor(newSuperior.Norm()).load().entries[newSuperior.Norm()]; !ok && !s.isSuffixEntry(newDN) {
			return 0, fmt.Errorf("%w: new superior %q", ErrNoSuchObject, newSuperior.String())
		}
	}
	if old.IsSuffix(newDN) && !old.Equal(newDN) {
		return 0, fmt.Errorf("cannot move %q under itself", old.String())
	}

	// Collect the subtree rooted at old, parents before children; children
	// are visited in sorted order so the journal record sequence (and hence
	// replication traffic) is identical at every shard count.
	var subtree []dn.DN
	var collect func(d dn.DN)
	collect = func(d dn.DN) {
		subtree = append(subtree, d)
		kids := s.shardFor(d.Norm()).load().children[d.Norm()]
		norms := make([]string, 0, len(kids))
		for childNorm := range kids {
			norms = append(norms, childNorm)
		}
		sort.Strings(norms)
		for _, childNorm := range norms {
			if c, ok := s.shardFor(childNorm).load().entries[childNorm]; ok {
				collect(c.DN())
			}
		}
	}
	collect(old)

	var last CSN
	for _, cur := range subtree {
		tgt, err := dn.Rename(cur, old, newDN)
		if err != nil {
			return 0, err
		}
		e := s.shardFor(cur.Norm()).load().entries[cur.Norm()]
		s.remove(e, cur.Norm())

		// Stored entries are immutable (frozen views and journal records
		// may share them), so the move rewrites a clone.
		moved := e.Clone()
		moved.SetDN(tgt)
		if cur.Equal(old) {
			// Update the naming attribute to match the new RDN.
			oldLeaf, _ := cur.Leaf()
			if !strings.EqualFold(oldLeaf.Attr, newRDN.Attr) || !entry.EqualValues(oldLeaf.Value, newRDN.Value) {
				moved.Put(newRDN.Attr, newRDN.Value)
			}
		}
		s.insert(moved, tgt.Norm())
		last = s.commitLocked(Change{Type: ChangeModifyDN, DN: cur, NewDN: tgt, Before: e, After: moved.Clone()})
	}
	return last, nil
}

// ApplyCSN applies an externally-described change (an edge-originated write
// forwarded up the cascade) and returns the CSN of the committed journal
// record — the sequencing a replica needs to match its pending op against
// the ReSync stream. A subtree ModifyDN commits one record per moved entry
// and returns the last CSN: the whole move is visible once the stream
// reaches it.
func (s *Store) ApplyCSN(c Change) (CSN, error) {
	return s.submit(func() (CSN, error) { return s.applyLocked(c) })
}

func (s *Store) applyLocked(c Change) (CSN, error) {
	switch c.Type {
	case ChangeAdd:
		if c.After == nil {
			return 0, fmt.Errorf("apply add %q: no entry image", c.DN.String())
		}
		return s.addLocked(c.After)
	case ChangeDelete:
		return s.deleteLocked(c.DN)
	case ChangeModify:
		return s.modifyLocked(c.DN, c.Mods)
	case ChangeModifyDN:
		leaf, ok := c.NewDN.Leaf()
		if !ok {
			return 0, fmt.Errorf("apply modifyDN %q: new DN lacks a leaf RDN", c.DN.String())
		}
		superior, _ := c.NewDN.Parent()
		return s.modifyDNLocked(c.DN, leaf, superior)
	default:
		return 0, fmt.Errorf("apply: unknown change type %v", c.Type)
	}
}

// Upsert inserts or replaces an entry without requiring its parent to
// exist. Replica stores use it to apply synchronization actions: filter
// replicas hold sparse content (selected entries without their ancestor
// chains). The change is journaled as an add or modify.
func (s *Store) Upsert(e *entry.Entry) error {
	_, err := s.submit(func() (CSN, error) { return s.upsertLocked(e) })
	return err
}

func (s *Store) upsertLocked(e *entry.Entry) (CSN, error) {
	d := e.DN()
	if !s.holdsTarget(d) {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchContext, d.String())
	}
	norm := d.Norm()
	sh := s.shardFor(norm)
	cp := e.Clone()
	if prior, ok := sh.load().entries[norm]; ok {
		s.write(sh, func(st *shardState) {
			st.unindexEntry(prior, norm)
			st.entries[norm] = cp
			st.indexEntry(cp, norm)
		})
		return s.commitLocked(Change{Type: ChangeModify, DN: d, Before: prior, After: cp.Clone()}), nil
	}
	s.insert(cp, norm)
	return s.commitLocked(Change{Type: ChangeAdd, DN: d, After: cp.Clone()}), nil
}

// RemoveAny deletes an entry regardless of children (sparse replica content
// does not maintain tree completeness). Removing an absent entry is a
// no-op returning ErrNoSuchObject.
func (s *Store) RemoveAny(d dn.DN) error {
	_, err := s.submit(func() (CSN, error) {
		norm := d.Norm()
		e, ok := s.shardFor(norm).load().entries[norm]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrNoSuchObject, d.String())
		}
		s.remove(e, norm)
		return s.commitLocked(Change{Type: ChangeDelete, DN: d, Before: e}), nil
	})
	return err
}

// Load bulk-inserts entries without journaling (initial population of a
// master or replica). Parents must precede children in the slice. Schema
// validation applies when configured.
func (s *Store) Load(entries []*entry.Entry) error {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	for _, e := range entries {
		d := e.DN()
		norm := d.Norm()
		if !s.holdsTarget(d) {
			return fmt.Errorf("%w: %q", ErrNoSuchContext, d.String())
		}
		if _, exists := s.shardFor(norm).load().entries[norm]; exists {
			return fmt.Errorf("%w: %q", ErrAlreadyExists, d.String())
		}
		if s.schema != nil {
			if err := s.schema.Validate(e); err != nil {
				return fmt.Errorf("%w: %v", ErrSchema, err)
			}
		}
		s.insert(e.Clone(), norm)
	}
	return nil
}
