package dit

import (
	"errors"
	"fmt"
	"testing"

	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/query"
)

// buildSmallDIT creates the o=xyz tree of Figure 1/2 on a single store.
func buildSmallDIT(t *testing.T, opts ...Option) *Store {
	t.Helper()
	st, err := NewStore([]string{"o=xyz"}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	add := func(dnStr string, attrs map[string][]string) {
		e := entry.New(dn.MustParse(dnStr))
		for k, v := range attrs {
			e.Put(k, v...)
		}
		if err := st.Add(e); err != nil {
			t.Fatalf("add %s: %v", dnStr, err)
		}
	}
	add("o=xyz", map[string][]string{"objectclass": {"organization"}, "o": {"xyz"}})
	add("c=us,o=xyz", map[string][]string{"objectclass": {"country"}, "c": {"us"}})
	add("ou=research,c=us,o=xyz", map[string][]string{"objectclass": {"organizationalUnit"}, "ou": {"research"}})
	add("cn=John Doe,ou=research,c=us,o=xyz", map[string][]string{
		"objectclass":  {"top", "person", "organizationalPerson", "inetOrgPerson"},
		"cn":           {"John Doe", "John M Doe"},
		"sn":           {"Doe"},
		"serialNumber": {"0456"},
		"mail":         {"john@us.xyz.com"},
	})
	add("cn=Fred Jones,c=us,o=xyz", map[string][]string{
		"objectclass": {"person"}, "cn": {"Fred Jones"}, "sn": {"Jones"},
		"serialNumber": {"0457"},
	})
	add("cn=Carl Miller,ou=research,c=us,o=xyz", map[string][]string{
		"objectclass": {"person"}, "cn": {"Carl Miller"}, "sn": {"Miller"},
		"serialNumber": {"0501"},
	})
	return st
}

func mustSearch(t *testing.T, st *Store, base string, scope query.Scope, f string) *Result {
	t.Helper()
	res, err := st.Search(query.MustNew(base, scope, f))
	if err != nil {
		t.Fatalf("search base=%q scope=%v filter=%q: %v", base, scope, f, err)
	}
	return res
}

func TestSearchScopes(t *testing.T) {
	st := buildSmallDIT(t)
	tests := []struct {
		name  string
		base  string
		scope query.Scope
		f     string
		want  int
	}{
		{"subtree all", "o=xyz", query.ScopeSubtree, "(objectclass=*)", 6},
		{"subtree persons", "o=xyz", query.ScopeSubtree, "(sn=*)", 3},
		{"one level of country", "c=us,o=xyz", query.ScopeSingleLevel, "(objectclass=*)", 2},
		{"base", "c=us,o=xyz", query.ScopeBase, "(objectclass=*)", 1},
		{"base no match", "c=us,o=xyz", query.ScopeBase, "(sn=Doe)", 0},
		{"subtree filter", "o=xyz", query.ScopeSubtree, "(sn=Doe)", 1},
		{"research subtree", "ou=research,c=us,o=xyz", query.ScopeSubtree, "(objectclass=person)", 2},
		{"serial prefix", "o=xyz", query.ScopeSubtree, "(serialnumber=04*)", 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := mustSearch(t, st, tt.base, tt.scope, tt.f)
			if len(res.Entries) != tt.want {
				t.Errorf("got %d entries, want %d", len(res.Entries), tt.want)
			}
		})
	}
}

func TestSearchErrors(t *testing.T) {
	st := buildSmallDIT(t)
	_, err := st.Search(query.MustNew("cn=missing,o=xyz", query.ScopeBase, ""))
	if !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("missing base: got %v, want ErrNoSuchObject", err)
	}
	_, err = st.Search(query.MustNew("o=other", query.ScopeSubtree, ""))
	if !errors.Is(err, ErrNoSuchContext) {
		t.Errorf("foreign base: got %v, want ErrNoSuchContext", err)
	}
}

func TestDefaultReferral(t *testing.T) {
	st := buildSmallDIT(t)
	stB, err := NewStore([]string{"ou=research,c=us,o=xyz"}, WithDefaultReferral("ldap://hostA"))
	if err != nil {
		t.Fatal(err)
	}
	_ = st
	res, err := stB.Search(query.MustNew("o=xyz", query.ScopeSubtree, ""))
	if !errors.Is(err, ErrNoSuchContext) {
		t.Fatalf("expected ErrNoSuchContext, got %v", err)
	}
	if len(res.Referrals) != 1 || res.Referrals[0] != "ldap://hostA" {
		t.Errorf("default referral = %v", res.Referrals)
	}
}

func TestReferralObjects(t *testing.T) {
	// hostA of Figure 2: holds o=xyz with referrals to hostB and hostC.
	st, err := NewStore([]string{"o=xyz"})
	if err != nil {
		t.Fatal(err)
	}
	add := func(e *entry.Entry) {
		t.Helper()
		if err := st.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	add(org)
	us := entry.New(dn.MustParse("c=us,o=xyz"))
	us.Put("objectclass", "country").Put("c", "us")
	add(us)
	person := entry.New(dn.MustParse("cn=Ann,c=us,o=xyz"))
	person.Put("objectclass", "person").Put("cn", "Ann").Put("sn", "A")
	add(person)
	refB := entry.New(dn.MustParse("ou=research,c=us,o=xyz"))
	refB.Put("objectclass", ReferralClass).Put(RefAttr, "ldap://hostB/ou=research,c=us,o=xyz")
	add(refB)
	refC := entry.New(dn.MustParse("c=in,o=xyz"))
	refC.Put("objectclass", ReferralClass).Put(RefAttr, "ldap://hostC/c=in,o=xyz")
	add(refC)

	res := mustSearch(t, st, "o=xyz", query.ScopeSubtree, "(objectclass=*)")
	// Three real entries (o=xyz, c=us, cn=Ann) and two referrals.
	if len(res.Entries) != 3 {
		t.Errorf("entries = %d, want 3", len(res.Entries))
	}
	if len(res.Referrals) != 2 {
		t.Errorf("referrals = %v, want 2", res.Referrals)
	}

	// Searching at a referral object itself returns its URL.
	res = mustSearch(t, st, "ou=research,c=us,o=xyz", query.ScopeSubtree, "(objectclass=*)")
	if len(res.Entries) != 0 || len(res.Referrals) != 1 {
		t.Errorf("referral base: entries=%d referrals=%v", len(res.Entries), res.Referrals)
	}

	// One-level search at c=us sees the person and the research referral.
	res = mustSearch(t, st, "c=us,o=xyz", query.ScopeSingleLevel, "(objectclass=*)")
	if len(res.Entries) != 1 || len(res.Referrals) != 1 {
		t.Errorf("one-level: entries=%d referrals=%v", len(res.Entries), res.Referrals)
	}

	ctxs := st.Contexts()
	if len(ctxs) != 1 || len(ctxs[0].Referrals) != 2 {
		t.Errorf("Contexts = %+v", ctxs)
	}
}

func TestAddErrors(t *testing.T) {
	st := buildSmallDIT(t)
	dup := entry.New(dn.MustParse("c=us,o=xyz"))
	dup.Put("objectclass", "country").Put("c", "us")
	if err := st.Add(dup); !errors.Is(err, ErrAlreadyExists) {
		t.Errorf("duplicate add: %v", err)
	}
	orphan := entry.New(dn.MustParse("cn=x,ou=missing,o=xyz"))
	orphan.Put("objectclass", "person").Put("cn", "x").Put("sn", "x")
	if err := st.Add(orphan); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("orphan add: %v", err)
	}
	foreign := entry.New(dn.MustParse("cn=x,o=other"))
	foreign.Put("objectclass", "person")
	if err := st.Add(foreign); !errors.Is(err, ErrNoSuchContext) {
		t.Errorf("foreign add: %v", err)
	}
}

func TestSchemaEnforcement(t *testing.T) {
	st, err := NewStore([]string{"o=xyz"}, WithSchema(entry.DefaultSchema()))
	if err != nil {
		t.Fatal(err)
	}
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	if err := st.Add(org); err != nil {
		t.Fatal(err)
	}
	bad := entry.New(dn.MustParse("cn=x,o=xyz"))
	bad.Put("objectclass", "person").Put("cn", "x") // missing sn
	if err := st.Add(bad); !errors.Is(err, ErrSchema) {
		t.Errorf("schema add: %v", err)
	}
	good := entry.New(dn.MustParse("cn=x,o=xyz"))
	good.Put("objectclass", "person").Put("cn", "x").Put("sn", "x")
	if err := st.Add(good); err != nil {
		t.Fatal(err)
	}
	// A modify that strips a required attribute must fail.
	err = st.Modify(good.DN(), []Mod{{Op: ModDelete, Attr: "sn"}})
	if !errors.Is(err, ErrSchema) {
		t.Errorf("schema modify: %v", err)
	}
}

func TestDelete(t *testing.T) {
	st := buildSmallDIT(t)
	country := dn.MustParse("c=us,o=xyz")
	if err := st.Delete(country); !errors.Is(err, ErrNotLeaf) {
		t.Errorf("delete non-leaf: %v", err)
	}
	person := dn.MustParse("cn=John Doe,ou=research,c=us,o=xyz")
	if err := st.Delete(person); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(person); ok {
		t.Error("entry still present after delete")
	}
	if err := st.Delete(person); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("double delete: %v", err)
	}
	// Index no longer returns it.
	res := mustSearch(t, st, "o=xyz", query.ScopeSubtree, "(serialnumber=0456)")
	if len(res.Entries) != 0 {
		t.Error("deleted entry still found via index")
	}
}

func TestModify(t *testing.T) {
	st := buildSmallDIT(t)
	d := dn.MustParse("cn=John Doe,ou=research,c=us,o=xyz")
	err := st.Modify(d, []Mod{
		{Op: ModReplace, Attr: "mail", Values: []string{"jdoe@us.xyz.com"}},
		{Op: ModAdd, Attr: "telephoneNumber", Values: []string{"1234"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := st.Get(d)
	if e.First("mail") != "jdoe@us.xyz.com" || e.First("telephoneNumber") != "1234" {
		t.Errorf("modify not applied: %s", e)
	}
	if err := st.Modify(d, []Mod{{Op: ModDelete, Attr: "nosuch"}}); err == nil {
		t.Error("deleting absent attribute must fail")
	}
	// Replace with no values removes the attribute.
	if err := st.Modify(d, []Mod{{Op: ModReplace, Attr: "telephoneNumber"}}); err != nil {
		t.Fatal(err)
	}
	e, _ = st.Get(d)
	if e.Has("telephoneNumber") {
		t.Error("replace-with-nothing did not remove attribute")
	}
}

func TestModifyUpdatesIndex(t *testing.T) {
	st := buildSmallDIT(t, WithIndexes("serialnumber"))
	d := dn.MustParse("cn=John Doe,ou=research,c=us,o=xyz")
	if err := st.Modify(d, []Mod{{Op: ModReplace, Attr: "serialNumber", Values: []string{"0999"}}}); err != nil {
		t.Fatal(err)
	}
	res := mustSearch(t, st, "o=xyz", query.ScopeSubtree, "(serialnumber=0999)")
	if len(res.Entries) != 1 {
		t.Errorf("new value not indexed: %d", len(res.Entries))
	}
	res = mustSearch(t, st, "o=xyz", query.ScopeSubtree, "(serialnumber=0456)")
	if len(res.Entries) != 0 {
		t.Errorf("old value still indexed: %d", len(res.Entries))
	}
}

func TestModifyDNRename(t *testing.T) {
	st := buildSmallDIT(t)
	old := dn.MustParse("cn=Fred Jones,c=us,o=xyz")
	if err := st.ModifyDN(old, dn.RDN{Attr: "cn", Value: "Freddy Jones"}, dn.MustParse("c=us,o=xyz")); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(old); ok {
		t.Error("old DN still present")
	}
	e, ok := st.Get(dn.MustParse("cn=Freddy Jones,c=us,o=xyz"))
	if !ok {
		t.Fatal("new DN missing")
	}
	if !e.HasValue("cn", "Freddy Jones") {
		t.Errorf("naming attribute not updated: %v", e.Values("cn"))
	}
}

func TestModifyDNSubtreeMove(t *testing.T) {
	st := buildSmallDIT(t)
	// Move ou=research under a new ou=labs parent.
	labs := entry.New(dn.MustParse("ou=labs,o=xyz"))
	labs.Put("objectclass", "organizationalUnit").Put("ou", "labs")
	if err := st.Add(labs); err != nil {
		t.Fatal(err)
	}
	old := dn.MustParse("ou=research,c=us,o=xyz")
	if err := st.ModifyDN(old, dn.RDN{Attr: "ou", Value: "research"}, dn.MustParse("ou=labs,o=xyz")); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(dn.MustParse("cn=John Doe,ou=research,c=us,o=xyz")); ok {
		t.Error("descendant not moved")
	}
	if _, ok := st.Get(dn.MustParse("cn=John Doe,ou=research,ou=labs,o=xyz")); !ok {
		t.Error("descendant missing at new location")
	}
	// Search finds the person at the new location via index and scan alike.
	res := mustSearch(t, st, "ou=labs,o=xyz", query.ScopeSubtree, "(sn=Doe)")
	if len(res.Entries) != 1 {
		t.Errorf("search after move: %d entries", len(res.Entries))
	}
}

func TestModifyDNErrors(t *testing.T) {
	st := buildSmallDIT(t)
	if err := st.ModifyDN(dn.MustParse("cn=missing,o=xyz"), dn.RDN{Attr: "cn", Value: "x"}, dn.MustParse("o=xyz")); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("rename missing: %v", err)
	}
	// Moving an entry under itself must fail.
	if err := st.ModifyDN(dn.MustParse("c=us,o=xyz"), dn.RDN{Attr: "c", Value: "us"}, dn.MustParse("ou=research,c=us,o=xyz")); err == nil {
		t.Error("move under self must fail")
	}
	// Target collision.
	if err := st.ModifyDN(dn.MustParse("cn=Fred Jones,c=us,o=xyz"), dn.RDN{Attr: "cn", Value: "Carl Miller"}, dn.MustParse("ou=research,c=us,o=xyz")); !errors.Is(err, ErrAlreadyExists) {
		t.Errorf("collision: %v", err)
	}
}

func TestJournal(t *testing.T) {
	st := buildSmallDIT(t)
	start := st.LastCSN()
	d := dn.MustParse("cn=Fred Jones,c=us,o=xyz")
	if err := st.Modify(d, []Mod{{Op: ModReplace, Attr: "mail", Values: []string{"f@x"}}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(d); err != nil {
		t.Fatal(err)
	}
	changes, ok := st.ChangesSince(start)
	if !ok {
		t.Fatal("journal trimmed unexpectedly")
	}
	if len(changes) != 2 {
		t.Fatalf("changes = %d, want 2", len(changes))
	}
	if changes[0].Type != ChangeModify || changes[0].Before == nil || changes[0].After == nil {
		t.Errorf("modify change malformed: %+v", changes[0])
	}
	if changes[0].Before.First("mail") == changes[0].After.First("mail") {
		t.Error("before/after snapshots identical")
	}
	if changes[1].Type != ChangeDelete || changes[1].Before == nil {
		t.Errorf("delete change malformed: %+v", changes[1])
	}
	if changes[0].CSN >= changes[1].CSN {
		t.Error("CSNs not increasing")
	}
}

func TestJournalTrim(t *testing.T) {
	st := buildSmallDIT(t, WithJournalLimit(3))
	d := dn.MustParse("cn=Fred Jones,c=us,o=xyz")
	for i := 0; i < 6; i++ {
		if err := st.Modify(d, []Mod{{Op: ModReplace, Attr: "mail", Values: []string{fmt.Sprintf("f%d@x", i)}}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := st.ChangesSince(0); ok {
		t.Error("expected trimmed journal to report ok=false for ancient CSN")
	}
	changes, ok := st.ChangesSince(st.LastCSN() - 2)
	if !ok || len(changes) != 2 {
		t.Errorf("recent span: ok=%v len=%d", ok, len(changes))
	}
}

func TestChangeSignal(t *testing.T) {
	st := buildSmallDIT(t)
	sig := st.ChangeSignal()
	select {
	case <-sig:
		t.Fatal("signal fired before change")
	default:
	}
	d := dn.MustParse("cn=Fred Jones,c=us,o=xyz")
	if err := st.Modify(d, []Mod{{Op: ModReplace, Attr: "mail", Values: []string{"x@y"}}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sig:
	default:
		t.Fatal("signal did not fire after change")
	}
}

func TestUpsertAndRemoveAnySparse(t *testing.T) {
	st, err := NewStore([]string{""}) // whole-DIT replica store
	if err != nil {
		t.Fatal(err)
	}
	// Upsert an entry with no parents present (sparse content).
	e := entry.New(dn.MustParse("cn=John Doe,ou=research,c=us,o=xyz"))
	e.Put("objectclass", "person").Put("cn", "John Doe").Put("sn", "Doe").Put("serialnumber", "0456")
	if err := st.Upsert(e); err != nil {
		t.Fatal(err)
	}
	q := query.MustNew("", query.ScopeSubtree, "(serialnumber=0456)")
	if got := st.MatchAll(q); len(got) != 1 {
		t.Fatalf("MatchAll = %d entries", len(got))
	}
	// Upsert again replaces.
	e.Put("mail", "j@x")
	if err := st.Upsert(e); err != nil {
		t.Fatal(err)
	}
	if got := st.MatchAll(q); len(got) != 1 || got[0].First("mail") != "j@x" {
		t.Fatalf("upsert replace failed: %v", got)
	}
	if err := st.RemoveAny(e.DN()); err != nil {
		t.Fatal(err)
	}
	if got := st.MatchAll(q); len(got) != 0 {
		t.Error("entry still present after RemoveAny")
	}
	if err := st.RemoveAny(e.DN()); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("double RemoveAny: %v", err)
	}
}

func TestMatchAllScope(t *testing.T) {
	st := buildSmallDIT(t)
	got := st.MatchAll(query.MustNew("c=us,o=xyz", query.ScopeSingleLevel, "(objectclass=*)"))
	if len(got) != 2 {
		t.Errorf("one-level MatchAll = %d, want 2", len(got))
	}
	got = st.MatchAll(query.MustNew("ou=research,c=us,o=xyz", query.ScopeSubtree, "(sn=*)"))
	if len(got) != 2 {
		t.Errorf("subtree MatchAll = %d, want 2", len(got))
	}
}

func TestIndexedSearchMatchesScan(t *testing.T) {
	plain := buildSmallDIT(t)
	indexed := buildSmallDIT(t, WithIndexes("serialnumber", "sn", "mail"))
	queries := []string{
		"(serialnumber=0456)",
		"(serialnumber=04*)",
		"(sn=Doe)",
		"(&(sn=Doe)(serialnumber=0456))",
		"(|(sn=Doe)(sn=Miller))",
		"(mail=*@us.xyz.com)",
		"(&(objectclass=person)(serialnumber=05*))",
	}
	for _, f := range queries {
		a := mustSearch(t, plain, "o=xyz", query.ScopeSubtree, f)
		b := mustSearch(t, indexed, "o=xyz", query.ScopeSubtree, f)
		if len(a.Entries) != len(b.Entries) {
			t.Errorf("filter %s: scan=%d indexed=%d", f, len(a.Entries), len(b.Entries))
		}
	}
}

func TestIndexPrefixAfterChurn(t *testing.T) {
	st, err := NewStore([]string{"o=xyz"}, WithIndexes("serialnumber"))
	if err != nil {
		t.Fatal(err)
	}
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	if err := st.Add(org); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		e := entry.New(dn.MustParse(fmt.Sprintf("cn=p%d,o=xyz", i)))
		e.Put("objectclass", "person").Put("cn", fmt.Sprintf("p%d", i)).
			Put("sn", "x").Put("serialnumber", fmt.Sprintf("%04d", i))
		if err := st.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	// Delete every third entry, then query prefixes.
	for i := 0; i < 200; i += 3 {
		if err := st.Delete(dn.MustParse(fmt.Sprintf("cn=p%d,o=xyz", i))); err != nil {
			t.Fatal(err)
		}
	}
	res := mustSearch(t, st, "o=xyz", query.ScopeSubtree, "(serialnumber=001*)")
	want := 0
	for i := 10; i <= 19; i++ {
		if i%3 != 0 {
			want++
		}
	}
	if len(res.Entries) != want {
		t.Errorf("prefix after churn: got %d, want %d", len(res.Entries), want)
	}
}

func TestLoadBulk(t *testing.T) {
	st, err := NewStore([]string{"o=xyz"})
	if err != nil {
		t.Fatal(err)
	}
	var batch []*entry.Entry
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	batch = append(batch, org)
	for i := 0; i < 50; i++ {
		e := entry.New(dn.MustParse(fmt.Sprintf("cn=p%d,o=xyz", i)))
		e.Put("objectclass", "person").Put("cn", fmt.Sprintf("p%d", i)).Put("sn", "x")
		batch = append(batch, e)
	}
	if err := st.Load(batch); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 51 {
		t.Errorf("Len = %d, want 51", st.Len())
	}
	if st.LastCSN() != 0 {
		t.Errorf("Load must not journal, LastCSN = %d", st.LastCSN())
	}
}

// BenchmarkSearchIndexed measures the two search paths the sharded store
// optimizes, each across shard counts: "point" is an indexed equality hit
// (10k entries, answered from the attribute index without a tree walk);
// "scan" is an unindexed filter over the same population, which the store
// evaluates with one goroutine per shard once the view is large enough.
func BenchmarkSearchIndexed(b *testing.B) {
	build := func(shards int) *Store {
		st, _ := NewStore([]string{"o=xyz"}, WithShards(shards), WithIndexes("serialnumber"))
		org := entry.New(dn.MustParse("o=xyz"))
		org.Put("objectclass", "organization").Put("o", "xyz")
		_ = st.Add(org)
		// 40k entries keeps the scan sub-benchmarks well above the
		// bench-diff noise floor: at 10k the full scan sat right at ~5ms,
		// where a -benchtime=1x min-of-3 swings past the 20% gate on
		// scheduler noise alone (see cmd/benchjson -minns).
		var batch []*entry.Entry
		for i := 0; i < 40000; i++ {
			e := entry.New(dn.MustParse(fmt.Sprintf("cn=p%d,o=xyz", i)))
			e.Put("objectclass", "person").Put("cn", fmt.Sprintf("p%d", i)).
				Put("sn", "x").Put("serialnumber", fmt.Sprintf("%06d", i))
			batch = append(batch, e)
		}
		_ = st.Load(batch)
		return st
	}
	point := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=005000)")
	scan := query.MustNew("o=xyz", query.ScopeSubtree, "(cn=p5000)")
	for _, shards := range []int{1, 2, 8} {
		st := build(shards)
		b.Run(fmt.Sprintf("point/shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := st.Search(point)
				if err != nil || len(res.Entries) != 1 {
					b.Fatalf("res=%v err=%v", res, err)
				}
			}
		})
		b.Run(fmt.Sprintf("scan/shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := st.Search(scan)
				if err != nil || len(res.Entries) != 1 {
					b.Fatalf("res=%v err=%v", res, err)
				}
			}
		})
	}
}

func BenchmarkSearchScanVsIndex(b *testing.B) {
	build := func(opts ...Option) *Store {
		st, _ := NewStore([]string{"o=xyz"}, opts...)
		org := entry.New(dn.MustParse("o=xyz"))
		org.Put("objectclass", "organization").Put("o", "xyz")
		_ = st.Add(org)
		var batch []*entry.Entry
		for i := 0; i < 5000; i++ {
			e := entry.New(dn.MustParse(fmt.Sprintf("cn=p%d,o=xyz", i)))
			e.Put("objectclass", "person").Put("cn", fmt.Sprintf("p%d", i)).
				Put("sn", "x").Put("serialnumber", fmt.Sprintf("%06d", i))
			batch = append(batch, e)
		}
		_ = st.Load(batch)
		return st
	}
	q := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=002500)")
	b.Run("scan", func(b *testing.B) {
		st := build()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Search(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		st := build(WithIndexes("serialnumber"))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Search(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
