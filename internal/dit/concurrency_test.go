package dit

import (
	"fmt"
	"sync"
	"testing"

	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/query"
)

// TestConcurrentSearchAndUpdate hammers the store with parallel readers and
// writers; run with -race to validate the locking discipline.
func TestConcurrentSearchAndUpdate(t *testing.T) {
	st, err := NewStore([]string{"o=xyz"}, WithIndexes("serialnumber"))
	if err != nil {
		t.Fatal(err)
	}
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	if err := st.Add(org); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		e := entry.New(dn.MustParse(fmt.Sprintf("cn=p%d,o=xyz", i)))
		e.Put("objectclass", "person").Put("cn", fmt.Sprintf("p%d", i)).
			Put("sn", "x").Put("serialnumber", fmt.Sprintf("%04d", i))
		if err := st.Add(e); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Writers: modify, add, delete, rename in parallel.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				target := dn.MustParse(fmt.Sprintf("cn=p%d,o=xyz", w*50+i%50))
				switch i % 4 {
				case 0:
					if err := st.Modify(target, []Mod{{Op: ModReplace, Attr: "sn",
						Values: []string{fmt.Sprintf("v%d", i)}}}); err != nil {
						continue // may have been deleted or renamed
					}
				case 1:
					e := entry.New(dn.MustParse(fmt.Sprintf("cn=w%d-%d,o=xyz", w, i)))
					e.Put("objectclass", "person").Put("cn", "w").Put("sn", "w").
						Put("serialnumber", fmt.Sprintf("9%d%02d", w, i%100))
					if err := st.Add(e); err != nil {
						errs <- err
						return
					}
				case 2:
					_ = st.Delete(target) // contention errors are expected
				case 3:
					_ = st.ModifyDN(target, dn.RDN{Attr: "cn", Value: fmt.Sprintf("r%d-%d", w, i)},
						dn.MustParse("o=xyz"))
				}
			}
		}(w)
	}

	// Readers: searches via index and scan, journal reads, sync signal.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := st.Search(query.MustNew("o=xyz", query.ScopeSubtree,
					fmt.Sprintf("(serialnumber=%04d)", i%220))); err != nil {
					errs <- err
					return
				}
				st.MatchAll(query.MustNew("", query.ScopeSubtree, "(sn=*)"))
				st.ChangesSince(0)
				st.LastCSN()
				select {
				case <-st.ChangeSignal():
				default:
				}
			}
		}(r)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The journal is internally consistent: CSNs strictly increase.
	changes, ok := st.ChangesSince(0)
	if !ok {
		t.Fatal("journal trimmed unexpectedly")
	}
	for i := 1; i < len(changes); i++ {
		if changes[i].CSN <= changes[i-1].CSN {
			t.Fatalf("journal CSNs not increasing at %d", i)
		}
	}
}

// TestSnapshotAtomic pins the Snapshot contract the resync group cache
// relies on: the returned (csn, entries) pair must be exactly the store's
// content at that CSN, never a mix of two commits. Each committed add
// grows the content by one, so at CSN base+k the match count must be
// initial+k; separate LastCSN/MatchAll reads racing the writer would break
// that equality. Run with -race.
func TestSnapshotAtomic(t *testing.T) {
	st, err := NewStore([]string{"o=xyz"})
	if err != nil {
		t.Fatal(err)
	}
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	if err := st.Add(org); err != nil {
		t.Fatal(err)
	}
	base := st.LastCSN()
	initial := len(st.MatchAll(query.MustNew("", query.ScopeSubtree, "(objectclass=*)")))

	const adds = 500
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < adds; i++ {
			e := entry.New(dn.MustParse(fmt.Sprintf("cn=s%d,o=xyz", i)))
			e.Put("objectclass", "person").Put("cn", fmt.Sprintf("s%d", i)).Put("sn", "x")
			if err := st.Add(e); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	q := query.MustNew("", query.ScopeSubtree, "(objectclass=*)")
	for {
		csn, entries := st.Snapshot(q)
		if want := initial + int(csn-base); len(entries) != want {
			t.Fatalf("Snapshot at CSN %d returned %d entries, want %d", csn, len(entries), want)
		}
		select {
		case <-done:
			return
		default:
		}
	}
}
