package dit

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/query"
)

// TestSnapshotImmutableUnderCommits is the copy-on-write stress test:
// readers hold old frozen snapshots and keep re-reading them while the
// batch pipeline commits continuously. Every snapshot must stay frozen at
// its CSN — same entry count, same per-entry attribute bytes, no entry ever
// observed mid-mutation — no matter how many commits land after it. Run
// with -race: before copy-on-write states, the writer's in-place map and
// index mutations raced exactly this access pattern.
func TestSnapshotImmutableUnderCommits(t *testing.T) {
	for _, shards := range []int{1, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			t.Parallel()
			st, err := NewStore([]string{"o=xyz"},
				WithShards(shards), WithIndexes("serialnumber"),
				WithBatchWindow(50*time.Microsecond))
			if err != nil {
				t.Fatal(err)
			}
			org := entry.New(dn.MustParse("o=xyz"))
			org.Put("objectclass", "organization").Put("o", "xyz")
			if err := st.Add(org); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 64; i++ {
				e := entry.New(dn.MustParse(fmt.Sprintf("cn=seed%d,o=xyz", i)))
				e.Put("objectclass", "person").Put("cn", fmt.Sprintf("seed%d", i)).
					Put("sn", "seed").Put("serialnumber", fmt.Sprintf("%04d", i))
				if err := st.Add(e); err != nil {
					t.Fatal(err)
				}
			}
			q := query.MustNew("", query.ScopeSubtree, "(objectclass=person)")

			stop := make(chan struct{})
			var writers sync.WaitGroup
			for w := 0; w < 3; w++ {
				writers.Add(1)
				go func(w int) {
					defer writers.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						d := dn.MustParse("cn=churn" + strconv.Itoa(w) + "-" + strconv.Itoa(i) + ",o=xyz")
						e := entry.New(d)
						e.Put("objectclass", "person").Put("cn", "churn").
							Put("sn", strconv.Itoa(i)).Put("serialnumber", fmt.Sprintf("9%d%03d", w, i%1000))
						if err := st.Add(e); err != nil {
							t.Errorf("add: %v", err)
							return
						}
						if i%2 == 0 {
							_ = st.Modify(d, []Mod{{Op: ModReplace, Attr: "sn", Values: []string{"mut" + strconv.Itoa(i)}}})
						}
						if i%3 == 0 {
							_ = st.Delete(d)
						}
					}
				}(w)
			}

			// Readers: freeze a view, fingerprint a full scan of it, then
			// re-scan the same frozen view repeatedly while commits pile up
			// behind it. A frozen view must replay the identical result
			// every time — each re-scan walks the shared shard maps
			// lock-free, so any writer mutating them in place (instead of
			// cloning) is a race and a fingerprint divergence.
			var readers sync.WaitGroup
			for r := 0; r < 4; r++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					for round := 0; round < 20; round++ {
						v := st.freeze()
						entries := v.matchAll(q)
						fp := make([]string, len(entries))
						for i, e := range entries {
							fp[i] = e.String()
						}
						for check := 0; check < 10; check++ {
							again := v.matchAll(q)
							if len(again) != len(fp) {
								t.Errorf("frozen view at CSN %d changed size: %d -> %d entries",
									v.csn, len(fp), len(again))
								return
							}
							for i, e := range again {
								if got := e.String(); got != fp[i] {
									t.Errorf("frozen view at CSN %d mutated: entry %d was %q, now %q",
										v.csn, i, fp[i], got)
									return
								}
							}
							// Point reads through the frozen view must stay
							// stable too (index and child maps are shared).
							if _, ok := v.get(dn.MustParse("o=xyz").Norm()); !ok {
								t.Error("frozen view lost its base entry")
								return
							}
							time.Sleep(100 * time.Microsecond)
						}
					}
				}()
			}
			readers.Wait()
			close(stop)
			writers.Wait()

			snap := st.Counters().Snapshot()
			if snap.ShardClones == 0 {
				t.Error("no shard states were cloned: copy-on-write never engaged")
			}
			if snap.Freezes == 0 {
				t.Error("no freezes recorded")
			}
			t.Logf("shards=%d: %d freezes, %d shard clones, %d batches (max %d)",
				shards, snap.Freezes, snap.ShardClones, snap.Batches, snap.MaxBatch)
		})
	}
}
