package dit

import (
	"fmt"
	"testing"

	"filterdir/internal/dn"
)

// churn commits n modifies against the John Doe entry, growing the journal
// by n records.
func churn(t *testing.T, st *Store, n int) {
	t.Helper()
	d := dn.MustParse("cn=John Doe,ou=research,c=us,o=xyz")
	for i := 0; i < n; i++ {
		if err := st.Modify(d, []Mod{{Op: ModReplace, Attr: "sn", Values: []string{fmt.Sprintf("v%d", i)}}}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHoldPinsJournal: while a hold is outstanding at CSN h, aggressive
// trimming keeps ChangesSince(h) answerable; releasing it lets the next
// commit's trim collect the pinned history.
func TestHoldPinsJournal(t *testing.T) {
	tests := []struct {
		name  string
		limit int // journal bound
		churn int // commits while the hold is live
	}{
		{"limit 2, churn far past it", 2, 12},
		{"limit 4, churn just past it", 4, 6},
		{"limit 1, maximal pressure", 1, 20},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			st := buildSmallDIT(t, WithJournalLimit(tt.limit))
			snap := st.LastCSN()
			h := st.Hold(snap)
			if got := st.ActiveHolds(); got != 1 {
				t.Fatalf("active holds = %d, want 1", got)
			}

			churn(t, st, tt.churn)
			changes, ok := st.ChangesSince(snap)
			if !ok {
				t.Fatalf("hold at %d did not survive trimming (limit %d, %d commits)", snap, tt.limit, tt.churn)
			}
			if len(changes) != tt.churn {
				t.Errorf("ChangesSince(%d) = %d changes, want %d", snap, len(changes), tt.churn)
			}

			st.Release(h)
			st.Release(h) // double release is a no-op
			if got := st.ActiveHolds(); got != 0 {
				t.Fatalf("active holds after release = %d, want 0", got)
			}
			// The release itself does not trim; the next committed batch does.
			churn(t, st, tt.limit+1)
			if _, ok := st.ChangesSince(snap); ok {
				t.Error("released hold still pins the journal after the next trim")
			}
		})
	}
}

// TestHoldFloorIsMinimum: with several holds outstanding the oldest pins
// the journal; releasing it moves the floor up to the next survivor.
func TestHoldFloorIsMinimum(t *testing.T) {
	st := buildSmallDIT(t, WithJournalLimit(2))
	older := st.LastCSN()
	hOld := st.Hold(older)
	churn(t, st, 5)
	newer := st.LastCSN()
	hNew := st.Hold(newer)

	churn(t, st, 8)
	if _, ok := st.ChangesSince(older); !ok {
		t.Fatal("oldest hold did not pin the journal")
	}

	st.Release(hOld)
	churn(t, st, 8)
	if _, ok := st.ChangesSince(older); ok {
		t.Error("journal still answers from the released older hold")
	}
	if changes, ok := st.ChangesSince(newer); !ok {
		t.Error("newer hold lost history when the older one was released")
	} else if len(changes) != 16 {
		t.Errorf("ChangesSince(newer) = %d changes, want 16", len(changes))
	}
	st.Release(hNew)
}

// TestHoldDoesNotBlockCommits: a hold raises the trim floor only — commits
// proceed, records at or before the held CSN stay collectible, and only
// the suffix the hold actually needs is retained.
func TestHoldDoesNotBlockCommits(t *testing.T) {
	st := buildSmallDIT(t, WithJournalLimit(2))
	before := st.LastCSN()
	h := st.Hold(before)
	churn(t, st, 10)
	if got := st.LastCSN(); got != before+10 {
		t.Fatalf("LastCSN advanced %d, want 10", got-before)
	}
	// History up to the hold is fair game; the suffix after it is not.
	if trimmed := st.JournalTrimmed(); trimmed > uint64(before) {
		t.Errorf("journal trimmed %d records, want <= %d (pinned suffix must survive)", trimmed, before)
	}
	if changes, ok := st.ChangesSince(before); !ok || len(changes) != 10 {
		t.Errorf("ChangesSince(hold) = %d changes ok=%v, want 10 true", len(changes), ok)
	}
	st.Release(h)
}
