package dit

import (
	"hash/fnv"
	"maps"
	"sync"

	"filterdir/internal/entry"
)

// shard is one DN-hash partition of the store. The mutex guards the
// published state pointer, the state's frozen flag, and every mutation of
// the state's maps; it is never held across a scan. Readers either take a
// frozen multi-shard view (and then scan lock-free — frozen states are
// immutable) or read point-wise under the shard lock.
type shard struct {
	mu    sync.Mutex
	state *shardState
}

// shardState is the copy-on-write unit: the entries, child links, indexes
// and referral registry of one shard. Once a reader freezes a state it is
// never mutated again — the next write to the shard clones it first. A
// clone shares inner structures (child sets, per-attribute indexes) with
// its parent until they are written, tracked by the own* maps.
type shardState struct {
	entries   map[string]*entry.Entry    // norm DN -> entry (entries are immutable)
	children  map[string]map[string]bool // parent norm -> child norms
	indexes   map[string]*attrIndex      // indexed attr -> index
	referrals map[string]bool            // norm DNs of referral entries in this shard

	// frozen marks the state as pinned by a reader view; set under the
	// shard lock, checked by writers before mutating.
	frozen bool
	// cow marks a cloned state whose inner structures are still shared
	// with an ancestor; ownChild/ownIdx record which have been privatized.
	cow      bool
	ownChild map[string]bool
	ownIdx   map[string]bool
}

func newShardState(indexAttrs []string) *shardState {
	st := &shardState{
		entries:   make(map[string]*entry.Entry),
		children:  make(map[string]map[string]bool),
		indexes:   make(map[string]*attrIndex),
		referrals: make(map[string]bool),
	}
	for _, a := range indexAttrs {
		st.indexes[a] = newAttrIndex()
	}
	return st
}

// clone makes a writable copy of a frozen state: outer maps are copied,
// inner child sets and indexes stay shared until first write.
func (st *shardState) clone() *shardState {
	return &shardState{
		entries:   maps.Clone(st.entries),
		children:  maps.Clone(st.children),
		indexes:   maps.Clone(st.indexes),
		referrals: maps.Clone(st.referrals),
		cow:       true,
		ownChild:  make(map[string]bool),
		ownIdx:    make(map[string]bool),
	}
}

// childSet returns the writable child set for a parent norm, privatizing a
// shared one first. Creates the set when absent.
func (st *shardState) childSet(parentNorm string) map[string]bool {
	set, ok := st.children[parentNorm]
	if !ok {
		set = make(map[string]bool)
		st.children[parentNorm] = set
		if st.cow {
			st.ownChild[parentNorm] = true
		}
		return set
	}
	if st.cow && !st.ownChild[parentNorm] {
		set = maps.Clone(set)
		st.children[parentNorm] = set
		st.ownChild[parentNorm] = true
	}
	return set
}

// index returns the writable index for an attribute, privatizing a shared
// one first (nil when the attribute is not indexed).
func (st *shardState) index(attr string) *attrIndex {
	ix, ok := st.indexes[attr]
	if !ok {
		return nil
	}
	if st.cow && !st.ownIdx[attr] {
		ix = ix.clone()
		st.indexes[attr] = ix
		st.ownIdx[attr] = true
	}
	return ix
}

func (st *shardState) link(parentNorm, childNorm string) {
	st.childSet(parentNorm)[childNorm] = true
}

func (st *shardState) unlink(parentNorm, childNorm string) {
	if _, ok := st.children[parentNorm]; !ok {
		return
	}
	set := st.childSet(parentNorm)
	delete(set, childNorm)
	if len(set) == 0 {
		delete(st.children, parentNorm)
		delete(st.ownChild, parentNorm)
	}
}

// indexEntry registers all indexed attributes of an entry, and its referral
// class in the shard's referral registry.
func (st *shardState) indexEntry(e *entry.Entry, norm string) {
	for attr := range st.indexes {
		for _, v := range e.Values(attr) {
			st.index(attr).add(v, norm)
		}
	}
	if e.HasObjectClass(ReferralClass) {
		st.referrals[norm] = true
	}
}

// unindexEntry removes all indexed attributes of an entry.
func (st *shardState) unindexEntry(e *entry.Entry, norm string) {
	for attr := range st.indexes {
		for _, v := range e.Values(attr) {
			st.index(attr).remove(v, norm)
		}
	}
	delete(st.referrals, norm)
}

// shardFor routes a normalized DN to its shard (FNV-1a; stable across runs
// and shard-count-independent inputs, so replication traffic cannot observe
// the layout).
func (s *Store) shardFor(norm string) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(norm))
	return s.shards[h.Sum64()%uint64(len(s.shards))]
}

// load returns the shard's current published state. Safe for the commit
// leader (state pointers are only replaced under seqMu) and for any caller
// that immediately re-checks under the shard lock.
func (sh *shard) load() *shardState {
	sh.mu.Lock()
	st := sh.state
	sh.mu.Unlock()
	return st
}

// write runs fn against a writable state for the shard: if the published
// state is frozen it is cloned and the clone published first. Called only
// with seqMu held (one writer at a time); the shard lock is held across fn
// so point readers never observe a map mid-mutation.
func (s *Store) write(sh *shard, fn func(st *shardState)) {
	sh.mu.Lock()
	st := sh.state
	if st.frozen {
		st = st.clone()
		sh.state = st
		s.counters.ShardClones.Add(1)
	}
	fn(st)
	sh.mu.Unlock()
}

// view is a frozen multi-shard snapshot: one immutable state per shard plus
// the CSN it reflects. Scans over a view take no locks.
type view struct {
	s      *Store
	states []*shardState
	csn    CSN
}

// freeze pins the current state of every shard under the sequencer lock, so
// the view is consistent with a batch boundary: a commit leader holds seqMu
// for the whole batch, hence a view never observes half a batch and its CSN
// is exact.
func (s *Store) freeze() *view {
	v := &view{s: s, states: make([]*shardState, len(s.shards))}
	s.seqMu.Lock()
	for i, sh := range s.shards {
		sh.mu.Lock()
		sh.state.frozen = true
		v.states[i] = sh.state
		sh.mu.Unlock()
	}
	v.csn = s.nextCSN - 1
	s.seqMu.Unlock()
	s.counters.Freezes.Add(1)
	return v
}

func (v *view) stateFor(norm string) *shardState {
	if len(v.states) == 1 {
		return v.states[0]
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(norm))
	return v.states[h.Sum64()%uint64(len(v.states))]
}

func (v *view) get(norm string) (*entry.Entry, bool) {
	e, ok := v.stateFor(norm).entries[norm]
	return e, ok
}

// childrenOf returns the child-norm set of a parent (routed by the parent's
// norm; child links live on the parent's shard).
func (v *view) childrenOf(parentNorm string) map[string]bool {
	return v.stateFor(parentNorm).children[parentNorm]
}

func (v *view) len() int {
	n := 0
	for _, st := range v.states {
		n += len(st.entries)
	}
	return n
}
