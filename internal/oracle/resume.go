package oracle

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"filterdir/internal/entry"
	"filterdir/internal/ldapnet"
	"filterdir/internal/metrics"
	"filterdir/internal/proto"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
	"filterdir/internal/sim"
	"filterdir/internal/supervisor"
)

// The resume oracle (this file) is the crash/resume gate for resumable
// chunked full transfers (DESIGN.md §14). Per history it serializes one
// reload shape — a synthetic DIT whose selected content spans several
// chunks — and then replays that transfer under every interesting cut:
//
//   - an uncut baseline, which also measures the exact client-side byte
//     offset at which each chunk's exchange completes;
//   - a cut at every chunk boundary (the supervisor has applied chunk k
//     and holds the token for chunk k+1), with a burst of journal-trimming
//     churn committed at the instant of the cut so the transfer's pinned
//     snapshot is under real retention pressure;
//   - a cut strictly inside every chunk, at the byte midpoint between the
//     baseline's boundary offsets;
//   - a forged token (flipped fingerprint) and a stale token (presented to
//     a supplier with no record of the session).
//
// Every run must end byte-identically converged with the reference model,
// and progress must be monotone: the supplier serves at most one full
// reload's worth of chunks plus one re-sent chunk per cut. A cut at a
// boundary re-sends nothing — reconnecting transfers only the remainder.

// ResumeConfig parameterizes a resumable-reload oracle run.
type ResumeConfig struct {
	// Seed derives every history; equal seeds replay equal runs.
	Seed int64
	// Histories is the number of independent reload shapes swept.
	Histories int
	// Entries is the base synthetic DIT leaf count; each history grows it
	// by a seed-derived amount so chunk geometries vary (default 15).
	Entries int
	// ChunkSize is the reload chunk size (0 = derived per history, 3..8).
	ChunkSize int
}

func (c *ResumeConfig) fillDefaults() {
	if c.Histories <= 0 {
		c.Histories = 2
	}
	if c.Entries <= 0 {
		c.Entries = 15
	}
}

// resumeShape derives the history's reload geometry from its seed, so a
// -oracle.n=1 replay reruns the same shape.
func resumeShape(cfg ResumeConfig, hseed int64) (entries, chunk int) {
	mod := func(n int64, m int64) int {
		r := n % m
		if r < 0 {
			r += m
		}
		return int(r)
	}
	entries = cfg.Entries + mod(hseed, 5)*4
	chunk = cfg.ChunkSize
	if chunk <= 0 {
		chunk = 3 + mod(hseed, 6)
	}
	if entries <= 2*chunk {
		entries = 2*chunk + 3 // at least three chunks, so interior cuts exist
	}
	return entries, chunk
}

// synthResumeConfig bounds the journal tightly: the boundary-cut churn
// bursts overflow it, so only the transfer's snapshot hold keeps the
// post-reload catch-up poll answerable.
func synthResumeConfig(hseed int64, entries int) sim.SynthConfig {
	return sim.SynthConfig{Seed: hseed, Entries: entries, JournalLimit: 4}
}

// resumeChurn is the number of operations committed at a boundary cut;
// it exceeds the journal bound so an unpinned snapshot would be trimmed.
const resumeChurn = 6

// RunResume executes a resumable-reload oracle run.
func RunResume(cfg ResumeConfig) *Report {
	cfg.fillDefaults()
	rep := &Report{}
	for h := 0; h < cfg.Histories; h++ {
		hseed := historySeed(cfg.Seed, h)
		if f := runResume(cfg, hseed, rep); f != nil {
			f.Replay = fmt.Sprintf(
				"go test ./internal/oracle -run TestOracleResumeSweep -oracle.seed=%d -oracle.n=1", hseed)
			rep.Failure = f
			return rep
		}
		rep.Histories++
	}
	return rep
}

// resumeKill describes where one attempt cuts the replica's connection.
// The zero value is the uncut baseline.
type resumeKill struct {
	afterChunks int   // >0: close the conn once this many chunk exchanges applied
	atByte      int64 // >0: fail conn #1 reads past this cumulative byte offset
	churn       int   // ops committed at the cut (boundary cuts only)
}

// resumeResult carries one attempt's measurements.
type resumeResult struct {
	boundaries []int64 // cumulative conn-#1 bytes when chunk i's exchange applied
	exchanges  int64
	sup        metrics.ReplicaSnapshot
	eng        metrics.SyncSnapshot
}

func runResume(cfg ResumeConfig, hseed int64, rep *Report) *Failure {
	entries, chunk := resumeShape(cfg, hseed)
	spec := query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(cn=e*)")
	nchunks := (entries + chunk - 1) / chunk
	fail := func(format string, args ...any) *Failure {
		return &Failure{HistorySeed: hseed, Msg: fmt.Sprintf(format, args...)}
	}

	// Uncut baseline: pins the clean-geometry counters and measures the
	// byte offset of every chunk boundary for the mid-chunk cuts below.
	base, f := resumeAttempt(hseed, entries, chunk, spec, resumeKill{}, nchunks, rep)
	if f != nil {
		return f
	}
	if len(base.boundaries) != nchunks {
		return fail("baseline applied %d chunk exchanges, want %d", len(base.boundaries), nchunks)
	}
	for i := 1; i < nchunks; i++ {
		if base.boundaries[i] <= base.boundaries[i-1] {
			return fail("baseline boundary offsets not increasing: %v", base.boundaries)
		}
	}
	if base.eng.Begins != 1 || base.eng.ChunkedReloads != 1 || base.eng.ReloadChunks != int64(nchunks) ||
		base.eng.ResumeRejects != 0 || base.eng.FullReloads != 0 {
		return fail("baseline engine counters begins=%d chunked=%d chunks=%d rejects=%d reloads=%d, want 1/1/%d/0/0",
			base.eng.Begins, base.eng.ChunkedReloads, base.eng.ReloadChunks,
			base.eng.ResumeRejects, base.eng.FullReloads, nchunks)
	}
	if base.sup.ChunkResumes != int64(nchunks-1) {
		return fail("baseline replica resumed %d chunks, want %d", base.sup.ChunkResumes, nchunks-1)
	}

	// Boundary cuts: the consumer has applied chunk b-1 and holds the token
	// for chunk b when the connection dies and the churn burst lands.
	// Reconnecting must transfer only the remaining chunks — ReloadChunks
	// stays at exactly one full reload — and the churn must surface as
	// incremental updates after the transfer, never as a second reload
	// (the pinned snapshot survived the journal trim).
	for b := 1; b < nchunks; b++ {
		res, f := resumeAttempt(hseed, entries, chunk, spec,
			resumeKill{afterChunks: b, churn: resumeChurn}, nchunks, rep)
		if f != nil {
			return f
		}
		if res.sup.Reconnects < 1 {
			return fail("boundary cut %d/%d: replica never reconnected", b, nchunks)
		}
		if res.eng.Begins != 1 || res.eng.ChunkedReloads != 1 {
			return fail("boundary cut %d/%d: transfer restarted (begins=%d chunked reloads=%d), want a resume",
				b, nchunks, res.eng.Begins, res.eng.ChunkedReloads)
		}
		if res.eng.ReloadChunks != int64(nchunks) {
			return fail("boundary cut %d/%d: served %d chunk exchanges, want exactly %d (only the remainder)",
				b, nchunks, res.eng.ReloadChunks, nchunks)
		}
		if res.eng.ResumeRejects != 0 {
			return fail("boundary cut %d/%d: %d resume tokens rejected", b, nchunks, res.eng.ResumeRejects)
		}
		if res.eng.FullReloads != 0 {
			return fail("boundary cut %d/%d: catch-up degraded to %d full reloads — the transfer's snapshot hold did not pin the journal through the churn trim",
				b, nchunks, res.eng.FullReloads)
		}
		// The reconnect's token presentation is accounted as a session
		// resume; the remaining same-connection continuations as chunk
		// resumes — together still one exchange per outstanding chunk.
		if res.sup.Resumes < 1 || res.sup.ChunkResumes != int64(nchunks-2) {
			return fail("boundary cut %d/%d: resumes=%d chunk resumes=%d, want >=1 and exactly %d",
				b, nchunks, res.sup.Resumes, res.sup.ChunkResumes, nchunks-2)
		}
	}

	// Mid-chunk cuts: the connection dies at the byte midpoint of chunk j's
	// exchange. The interrupted chunk is the bounded per-attempt overhead —
	// it is served twice, everything else exactly once. Inside chunk 0 no
	// token exists yet, so the only legal recovery is a clean re-Begin.
	for j := 0; j < nchunks; j++ {
		at := base.boundaries[0] / 2
		if j > 0 {
			at = (base.boundaries[j-1] + base.boundaries[j]) / 2
		}
		res, f := resumeAttempt(hseed, entries, chunk, spec, resumeKill{atByte: at}, nchunks, rep)
		if f != nil {
			return f
		}
		if res.sup.Reconnects < 1 {
			return fail("mid-chunk cut %d (byte %d): replica never reconnected", j, at)
		}
		if res.eng.ReloadChunks != int64(nchunks+1) {
			return fail("mid-chunk cut %d (byte %d): served %d chunk exchanges, want %d (one full reload plus the interrupted chunk)",
				j, at, res.eng.ReloadChunks, nchunks+1)
		}
		if res.eng.FullReloads != 0 || res.eng.ResumeRejects != 0 {
			return fail("mid-chunk cut %d (byte %d): reloads=%d rejects=%d, want 0/0",
				j, at, res.eng.FullReloads, res.eng.ResumeRejects)
		}
		if j == 0 {
			if res.eng.Begins != 2 || res.eng.ChunkedReloads != 2 {
				return fail("mid-chunk-0 cut: begins=%d chunked reloads=%d, want a clean restart (2/2): no token exists before the first chunk applies",
					res.eng.Begins, res.eng.ChunkedReloads)
			}
		} else if res.eng.Begins != 1 || res.eng.ChunkedReloads != 1 ||
			res.sup.Resumes < 1 || res.sup.ChunkResumes != int64(nchunks-2) {
			return fail("mid-chunk cut %d: begins=%d chunked reloads=%d resumes=%d chunk resumes=%d, want 1/1/>=1/%d (the interrupted fetch is retried via the token, nothing else repeats)",
				j, res.eng.Begins, res.eng.ChunkedReloads, res.sup.Resumes, res.sup.ChunkResumes, nchunks-2)
		}
	}

	return checkResumeTokenSafety(hseed, entries, chunk, spec, rep)
}

// resumeAttempt runs one supervisor-driven transfer against a fresh master
// built from (hseed, entries) — identical stores serialize identical chunk
// streams, so byte offsets measured on the baseline attempt are exact cut
// positions on every later one.
func resumeAttempt(hseed int64, entries, chunk int, spec query.Query, kill resumeKill, wantChunks int, rep *Report) (*resumeResult, *Failure) {
	st, err := sim.BuildSynthStore(synthResumeConfig(hseed, entries))
	if err != nil {
		return nil, &Failure{HistorySeed: hseed, Msg: "build synthetic store: " + err.Error()}
	}
	mdl := newModel(st)
	gen := sim.NewOpGen(synthResumeConfig(hseed, entries))
	backend := ldapnet.NewStoreBackend(st, resync.WithChunkSize(chunk))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, &Failure{HistorySeed: hseed, Msg: "listen: " + err.Error()}
	}
	srv := ldapnet.ServeListener(ln, backend)
	defer srv.Close()

	dialer := &resumeDialer{atByte: kill.atByte}
	frep, err := replica.NewFilterReplica()
	if err != nil {
		return nil, &Failure{HistorySeed: hseed, Msg: "new replica: " + err.Error()}
	}

	// mu guards the model and the boundary samples: the OnApplied hook runs
	// in the supervision loop, the convergence wait in this goroutine.
	var (
		mu         sync.Mutex
		boundaries []int64
		applies    int
		cut        bool
		churnErr   error
	)
	sup, err := supervisor.New(supervisor.Config{
		Master:       ln.Addr().String(),
		Spec:         spec,
		Mode:         supervisor.ModePoll,
		PollInterval: 3 * time.Millisecond,
		BackoffBase:  2 * time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
		DialTimeout:  2 * time.Second,
		Seed:         hseed,
		Dial:         dialer.dial,
		OnApplied: func(int) {
			mu.Lock()
			defer mu.Unlock()
			applies++
			if len(boundaries) < wantChunks {
				boundaries = append(boundaries, dialer.bytes.Load())
			}
			if kill.afterChunks > 0 && applies == kill.afterChunks && !cut {
				cut = true
				// Commit the churn while the transfer's snapshot hold is the
				// only thing pinning the bounded journal, then cut the wire.
				for i := 0; i < kill.churn; i++ {
					op := gen.Next()
					if !mdl.valid(op) {
						continue
					}
					if err := sim.ApplyOp(st, op); err != nil && churnErr == nil {
						churnErr = err
						return
					}
					mdl.apply(op)
				}
				dialer.killFirst()
			}
		},
	}, frep)
	if err != nil {
		return nil, &Failure{HistorySeed: hseed, Msg: "new supervisor: " + err.Error()}
	}
	sup.Start()
	defer sup.Stop()

	deadline := time.Now().Add(15 * time.Second)
	for {
		mu.Lock()
		ref := mdl.selection(spec)
		cerr := churnErr
		mu.Unlock()
		if cerr != nil {
			return nil, &Failure{HistorySeed: hseed, Msg: "churn op rejected by store: " + cerr.Error()}
		}
		got := wireSnapshot(frep)
		diff := describeDiff(got, ref)
		if diff == "" {
			break
		}
		if time.Now().After(deadline) {
			return nil, &Failure{HistorySeed: hseed, Msg: fmt.Sprintf(
				"replica did not converge within 15s after cut %+v (state %v, %d exchanges):\n%s",
				kill, sup.State(), sup.Exchanges(), diff)}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := sup.Stop(); err != nil {
		return nil, &Failure{HistorySeed: hseed, Msg: "stop supervisor: " + err.Error()}
	}

	if rep != nil {
		rep.Events++
		rep.Polls += int(sup.Exchanges())
	}
	mu.Lock()
	defer mu.Unlock()
	return &resumeResult{
		boundaries: boundaries,
		exchanges:  sup.Exchanges(),
		sup:        sup.Counters().Snapshot(),
		eng:        backend.Engine.Counters().Snapshot(),
	}, nil
}

// checkResumeTokenSafety drives raw-client transfers to verify token
// verification: a forged fingerprint restarts the reload from chunk zero
// on the same session, and a token presented to a supplier with no record
// of the session is refused outright so the consumer re-Begins cleanly.
// Both recoveries must still deliver exactly one full, correct content.
func checkResumeTokenSafety(hseed int64, entries, chunk int, spec query.Query, rep *Report) *Failure {
	fail := func(format string, args ...any) *Failure {
		return &Failure{HistorySeed: hseed, Msg: fmt.Sprintf(format, args...)}
	}
	st, err := sim.BuildSynthStore(synthResumeConfig(hseed, entries))
	if err != nil {
		return fail("build synthetic store: %v", err)
	}
	ref := newModel(st).selection(spec)

	serve := func() (*ldapnet.StoreBackend, *ldapnet.Client, func(), *Failure) {
		backend := ldapnet.NewStoreBackend(st, resync.WithChunkSize(chunk))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, nil, fail("listen: %v", err)
		}
		srv := ldapnet.ServeListener(ln, backend)
		c, err := ldapnet.Dial(ln.Addr().String())
		if err != nil {
			srv.Close()
			return nil, nil, nil, fail("dial: %v", err)
		}
		return backend, c, func() { c.Close(); srv.Close() }, nil
	}

	// complete drains a started transfer by following its tokens, returning
	// the collected content and the total update count.
	complete := func(c *ldapnet.Client, first *ldapnet.SyncResult) (map[string]*entry.Entry, int, *Failure) {
		got := make(map[string]*entry.Entry)
		total := 0
		cur := first
		for {
			for _, u := range cur.Updates {
				got[u.DN.Norm()] = u.Entry
			}
			total += len(cur.Updates)
			if cur.Resume == nil {
				break
			}
			next, err := c.SyncResume(*cur.Resume)
			if err != nil {
				return nil, 0, fail("continue transfer: %v", err)
			}
			cur = next
		}
		if cur.Cookie == "" {
			return nil, 0, fail("transfer ended without a completion cookie")
		}
		return got, total, nil
	}

	backendA, cA, closeA, f := serve()
	if f != nil {
		return f
	}
	defer closeA()
	res, err := cA.Sync(spec, proto.ReSyncModePoll, "")
	if err != nil {
		return fail("begin: %v", err)
	}
	if res.Resume == nil || !res.FullReload {
		return fail("begin of %d entries (chunk %d) was not a chunked reload", entries, chunk)
	}

	// Forged fingerprint: the supplier must not serve a remainder it cannot
	// verify — it restarts from chunk zero and the consumer still ends with
	// exactly one full content.
	forged := *res.Resume
	forged.Fingerprint ^= 0x6b6b6b6b6b6b6b6b
	r, err := cA.SyncResume(forged)
	if err != nil {
		return fail("forged token: err=%v, want a degraded restart from chunk zero", err)
	}
	if !r.FullReload {
		return fail("forged fingerprint resumed mid-transfer instead of restarting from chunk zero")
	}
	if got := backendA.Engine.Counters().Snapshot().ResumeRejects; got != 1 {
		return fail("forged token: %d resume rejects recorded, want 1", got)
	}
	got, total, f := complete(cA, r)
	if f != nil {
		return f
	}
	if diff := describeDiff(got, ref); diff != "" {
		return fail("content after forged-token restart diverged:\n%s", diff)
	}
	if total != len(ref) {
		return fail("forged-token restart transferred %d updates, want exactly one full reload of %d", total, len(ref))
	}
	if rep != nil {
		rep.Events++
	}

	// Stale token: a supplier that has no record of the session (here: a
	// fresh incarnation) refuses the token outright; the consumer re-Begins
	// from scratch and converges.
	backendB, cB, closeB, f := serve()
	if f != nil {
		return f
	}
	defer closeB()
	if _, err := cB.SyncResume(*res.Resume); !errors.Is(err, resync.ErrNoSuchSession) {
		return fail("stale token on a fresh supplier: err=%v, want ErrNoSuchSession", err)
	}
	if gotRej := backendB.Engine.Counters().Snapshot().ResumeRejects; gotRej != 1 {
		return fail("stale token: %d resume rejects recorded, want 1", gotRej)
	}
	r0, err := cB.Sync(spec, proto.ReSyncModePoll, "")
	if err != nil {
		return fail("re-begin after stale token: %v", err)
	}
	got, total, f = complete(cB, r0)
	if f != nil {
		return f
	}
	if diff := describeDiff(got, ref); diff != "" {
		return fail("content after stale-token restart diverged:\n%s", diff)
	}
	if total != len(ref) {
		return fail("stale-token restart transferred %d updates, want exactly one full reload of %d", total, len(ref))
	}
	if rep != nil {
		rep.Events++
	}
	return nil
}

// resumeDialer dials plain TCP and meters connection #1: reads are counted
// (chunk-boundary byte offsets are sampled from the counter) and optionally
// cut at an exact cumulative offset. Reconnects get ordinary connections —
// each attempt's fault fires at most once.
type resumeDialer struct {
	atByte int64
	conns  atomic.Int32
	bytes  atomic.Int64
	first  atomic.Value // net.Conn: connection #1, for boundary cuts
}

func (d *resumeDialer) dial(addr string, timeout time.Duration) (net.Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if d.conns.Add(1) > 1 {
		return c, nil
	}
	d.first.Store(c)
	return &meteredConn{Conn: c, d: d}, nil
}

// killFirst cuts connection #1 (no-op before the first dial).
func (d *resumeDialer) killFirst() {
	if c, ok := d.first.Load().(net.Conn); ok {
		_ = c.Close()
	}
}

// meteredConn counts reads and enforces the dialer's byte budget: the read
// that would cross it is truncated to end exactly on the budget, and the
// next one closes the connection — a transport cut at a precise offset of
// the chunk stream.
type meteredConn struct {
	net.Conn
	d *resumeDialer
}

func (m *meteredConn) Read(p []byte) (int, error) {
	if limit := m.d.atByte; limit > 0 {
		read := m.d.bytes.Load()
		if read >= limit {
			_ = m.Conn.Close()
			return 0, fmt.Errorf("oracle: connection cut at byte %d", read)
		}
		if int64(len(p)) > limit-read {
			p = p[:limit-read]
		}
	}
	n, err := m.Conn.Read(p)
	m.d.bytes.Add(int64(n))
	return n, err
}
