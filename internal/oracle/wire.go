package oracle

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"filterdir/internal/chaos"
	"filterdir/internal/entry"
	"filterdir/internal/ldapnet"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
	"filterdir/internal/sim"
	"filterdir/internal/supervisor"
)

// WireConfig parameterizes a wire-level oracle run: a real ldapnet master
// serving a TCP listener, one supervisor-driven FilterReplica per spec, and
// (optionally) chaos fault injection on both sides of the connection.
type WireConfig struct {
	Seed      int64
	Histories int
	Steps     int
	// Chaos wraps listener and dialer in a fault injector (dropped
	// connections, refused dials, latency jitter).
	Chaos bool
	// Specs overrides the replicated content specifications (empty: specs()).
	Specs []query.Query
}

// specList resolves the run's content specifications.
func (c WireConfig) specList() []query.Query {
	if len(c.Specs) > 0 {
		return c.Specs
	}
	return specs()
}

func (c *WireConfig) fillDefaults() {
	if c.Histories <= 0 {
		c.Histories = 2
	}
	if c.Steps <= 0 {
		c.Steps = 24
	}
}

// synthWireConfig mirrors synthConfig but with a journal bound large
// enough that bursts between polls fit; every third seed still forces
// trim-induced full reloads under load.
func synthWireConfig(hseed int64) sim.SynthConfig {
	cfg := sim.SynthConfig{Seed: hseed}
	if hseed%3 == 2 || hseed%3 == -2 {
		cfg.JournalLimit = 32
	}
	return cfg
}

// genWireHistory generates a wire-level history: operations, convergence
// checkpoints, and server-side stale-session injections. Polls themselves
// are driven autonomously by the supervisors; EvPoll here means "wait
// until every replica has converged to the reference selection".
func genWireHistory(cfg WireConfig, hseed int64) []Event {
	gen := sim.NewOpGen(synthWireConfig(hseed))
	rng := rand.New(rand.NewSource(hseed*1315423911 + 31))
	nReps := len(cfg.specList())
	events := make([]Event, 0, cfg.Steps+1)
	for i := 0; i < cfg.Steps; i++ {
		r := rng.Float64()
		switch {
		case r < 0.72:
			events = append(events, Event{Kind: EvOp, Op: gen.Next()})
		case r < 0.92:
			events = append(events, Event{Kind: EvPoll})
		default:
			events = append(events, Event{Kind: EvEnd, Rep: rng.Intn(nReps)})
		}
	}
	return append(events, Event{Kind: EvPoll})
}

// RunWire executes a wire-level oracle run. Histories alternate between
// poll and persist steady-state modes so both supervisor loops are
// checked end to end.
func RunWire(cfg WireConfig) *Report {
	cfg.fillDefaults()
	rep := &Report{}
	for h := 0; h < cfg.Histories; h++ {
		hseed := historySeed(cfg.Seed, h)
		// Derive the mode from the history seed (odd stride alternates it
		// across h) so a -oracle.n=1 replay reruns the same mode.
		mode := supervisor.ModePoll
		if hseed%2 != 0 {
			mode = supervisor.ModePersist
		}
		events := genWireHistory(cfg, hseed)
		if f := runWire(cfg, hseed, mode, events, rep); f != nil {
			f.History = events
			f.Minimal = shrinkWire(cfg, hseed, mode, events)
			f.Replay = replayCmd("TestOracleWireSweep", hseed, cfg.Steps)
			rep.Failure = f
			return rep
		}
		rep.Histories++
	}
	return rep
}

// shrinkWire is the bounded wire-level shrinker: re-running a wire history
// spins up real listeners and supervisors, so the re-execution budget is
// kept small and the original history is reported if shrinking stalls.
func shrinkWire(cfg WireConfig, hseed int64, mode supervisor.Mode, events []Event) []Event {
	budget := 24
	return shrinkEvents(events, func(ev []Event) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return runWire(cfg, hseed, mode, ev, nil) != nil
	})
}

func runWire(cfg WireConfig, hseed int64, mode supervisor.Mode, events []Event, rep *Report) (failure *Failure) {
	st, err := sim.BuildSynthStore(synthWireConfig(hseed))
	if err != nil {
		return &Failure{HistorySeed: hseed, Msg: "build synthetic store: " + err.Error()}
	}
	mdl := newModel(st)
	backend := ldapnet.NewStoreBackend(st)

	// Retains must never reach a poll/persist consumer (the replica's
	// ApplySync rejects them); count them at the source.
	var tmu sync.Mutex
	var retains int
	backend.Engine.SetObserver(func(_ string, ups []resync.Update, _ bool) {
		tmu.Lock()
		defer tmu.Unlock()
		for _, u := range ups {
			if u.Action == resync.ActionRetain {
				retains++
			}
			if rep != nil {
				rep.Traffic.Add(u)
			}
		}
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return &Failure{HistorySeed: hseed, Msg: "listen: " + err.Error()}
	}
	addr := ln.Addr().String()
	lnUse := ln
	var dial ldapnet.DialFunc
	if cfg.Chaos {
		inj := chaos.New(chaos.Plan{
			Seed:               hseed,
			DropEveryNOps:      89,
			RefuseEveryNthConn: 9,
			LatencyMax:         300 * time.Microsecond,
		})
		lnUse = inj.Listener(ln)
		dial = inj.Dial(nil)
	}
	srv := ldapnet.ServeListener(lnUse, backend)
	defer srv.Close()

	type wireRep struct {
		frep *replica.FilterReplica
		sup  *supervisor.Supervisor
	}
	var wreps []*wireRep
	defer func() {
		for _, w := range wreps {
			_ = w.sup.Stop()
		}
		if rep != nil {
			for _, w := range wreps {
				rep.Polls += int(w.sup.Exchanges())
			}
			snap := backend.Engine.Counters().Snapshot()
			rep.SharedClassifyHits += snap.SharedClassifyHits
			rep.SharedClassifyMisses += snap.SharedClassifyMisses
			rep.StreamEncodes += snap.StreamEncodes
			rep.StreamDedupPDUs += snap.StreamDedupPDUs
		}
	}()
	wspecs := cfg.specList()
	for i, spec := range wspecs {
		frep, err := replica.NewFilterReplica()
		if err != nil {
			return &Failure{HistorySeed: hseed, Msg: "new replica: " + err.Error()}
		}
		sup, err := supervisor.New(supervisor.Config{
			Master:       addr,
			Spec:         spec,
			Mode:         mode,
			PollInterval: 3 * time.Millisecond,
			IdleTimeout:  300 * time.Millisecond,
			BackoffBase:  2 * time.Millisecond,
			BackoffMax:   40 * time.Millisecond,
			DialTimeout:  2 * time.Second,
			Seed:         hseed + int64(i),
			Dial:         dial,
		}, frep)
		if err != nil {
			return &Failure{HistorySeed: hseed, Msg: "new supervisor: " + err.Error()}
		}
		sup.Start()
		wreps = append(wreps, &wireRep{frep: frep, sup: sup})
	}

	for i, ev := range events {
		if rep != nil {
			rep.Events++
		}
		switch ev.Kind {
		case EvOp:
			if !mdl.valid(ev.Op) {
				continue
			}
			if err := sim.ApplyOp(st, ev.Op); err != nil {
				return &Failure{HistorySeed: hseed, Step: i,
					Msg: fmt.Sprintf("op %q valid in model but rejected by store: %v", ev.Op, err)}
			}
			mdl.apply(ev.Op)
		case EvPoll: // checkpoint: wait for every replica to converge
			for ri, w := range wreps {
				if f := waitConverged(w.frep, w.sup, mdl, wspecs[ri], ri, hseed); f != nil {
					f.Step = i
					return f
				}
			}
		case EvEnd: // operator abandons the session server-side
			if c := wreps[ev.Rep].sup.Cookie(); c != "" {
				_ = backend.Engine.End(c)
			}
		}
	}

	tmu.Lock()
	defer tmu.Unlock()
	if retains > 0 {
		return &Failure{HistorySeed: hseed,
			Msg: fmt.Sprintf("master emitted %d retain PDUs to poll/persist consumers", retains)}
	}
	return nil
}

// waitConverged blocks until the replica's content equals the reference
// selection, or reports a divergence after the deadline.
func waitConverged(frep *replica.FilterReplica, sup *supervisor.Supervisor, mdl model, spec query.Query, ri int, hseed int64) *Failure {
	ref := mdl.selection(spec)
	deadline := time.Now().Add(15 * time.Second)
	for {
		got := wireSnapshot(frep)
		diff := describeDiff(got, ref)
		if diff == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return &Failure{HistorySeed: hseed, Msg: fmt.Sprintf(
				"replica r%d (%q) did not converge within 15s (state %v, %d exchanges):\n%s",
				ri, spec, sup.State(), sup.Exchanges(), diff)}
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// wireSnapshot captures the replica's held content by normalized DN.
func wireSnapshot(frep *replica.FilterReplica) map[string]*entry.Entry {
	out := make(map[string]*entry.Entry)
	for _, e := range frep.Store().All() {
		out[e.DN().Norm()] = e
	}
	return out
}
