package oracle

import (
	"fmt"
	"strings"
)

// Failure describes one divergence between the real stack and the
// reference model.
type Failure struct {
	HistorySeed int64   // per-history seed: replays this history alone
	Step        int     // event index at which the divergence surfaced
	Msg         string  // what diverged
	History     []Event // the full failing history
	Minimal     []Event // shrunk reproducing subsequence
	Replay      string  // one-line go test command replaying the history
}

// Format renders the failure for a test log: the divergence, the minimal
// reproducing history, and the replay command.
func (f *Failure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "oracle divergence (history seed %d, step %d):\n%s\n", f.HistorySeed, f.Step, f.Msg)
	if len(f.Minimal) > 0 {
		fmt.Fprintf(&b, "\nminimal reproducing history (%d of %d events):\n", len(f.Minimal), len(f.History))
		for i, ev := range f.Minimal {
			fmt.Fprintf(&b, "  %2d. %s\n", i+1, ev)
		}
	}
	if f.Replay != "" {
		fmt.Fprintf(&b, "\nreplay: %s\n", f.Replay)
	}
	return b.String()
}

// shrinkEvents reduces a failing history to a smaller one that still
// fails, ddmin style: repeatedly remove chunks of halving size, keeping a
// candidate whenever fails() still reports a divergence. The result is
// 1-minimal with respect to the final chunk size reached within the
// re-execution budget.
func shrinkEvents(events []Event, fails func([]Event) bool) []Event {
	cur := append([]Event(nil), events...)
	budget := 400
	for size := len(cur) / 2; size >= 1; size /= 2 {
		for start := 0; start < len(cur) && budget > 0; {
			end := start + size
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]Event, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			budget--
			if len(cand) > 0 && fails(cand) {
				cur = cand // chunk was irrelevant; retry same offset
			} else {
				start = end
			}
		}
		if budget <= 0 {
			break
		}
	}
	return cur
}
