package oracle

import (
	"fmt"
	"net"
	"time"

	"filterdir/internal/cascade"
	"filterdir/internal/entry"
	"filterdir/internal/ldapnet"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/sim"
	"filterdir/internal/supervisor"
	"filterdir/internal/tierctl"
)

// AdaptiveConfig parameterizes the adaptive-tiering oracle: a wire-level
// master → adaptive tier → leaves topology where the tier starts too narrow
// for the offered traffic and the tierctl control plane must widen it live.
type AdaptiveConfig struct {
	Seed      int64
	Histories int
	// Steps is the number of synthetic master operations applied per phase
	// (before and after the traffic shift).
	Steps int
}

func (c *AdaptiveConfig) fillDefaults() {
	if c.Histories <= 0 {
		c.Histories = 1
	}
	if c.Steps <= 0 {
		c.Steps = 24
	}
}

// RunAdaptive executes adaptive-tiering histories. Each history stages a
// mid-run locality shift — a new leaf population arrives whose spec the
// tier's configured filter set does not cover — and then checks the whole
// adaptive loop end to end:
//
//   - the rejected leaf diverts to the fallback master (static behavior);
//   - the control plane observes the rejection, adopts the uncovered spec
//     into spare budget and re-syncs the widened content from upstream;
//   - the filters-changed notification (not the re-probe timer, which is set
//     far beyond the test deadline) brings the diverted leaf back, and its
//     fallback session at the master is released;
//   - the stored set stays within budget, and the final tier content is
//     FNV-byte-identical to a reference tier statically configured with the
//     widened filter set from the start.
func RunAdaptive(cfg AdaptiveConfig) *Report {
	cfg.fillDefaults()
	rep := &Report{}
	for h := 0; h < cfg.Histories; h++ {
		hseed := historySeed(cfg.Seed, h)
		if f := runAdaptive(hseed, cfg.Steps, rep); f != nil {
			f.Replay = replayCmd("TestOracleAdaptiveSweep", hseed, cfg.Steps)
			rep.Failure = f
			return rep
		}
		rep.Histories++
	}
	return rep
}

// adaptiveSelection is the reference content for an adaptive tier: the union
// of the master model's selections over the tier's current filter set.
func adaptiveSelection(mdl model, specs []query.Query) map[string]*entry.Entry {
	out := make(map[string]*entry.Entry)
	for _, spec := range specs {
		for norm, e := range mdl.selection(spec) {
			out[norm] = e
		}
	}
	return out
}

// waitAdaptiveConverged blocks until the tier's store equals the union
// selection of its (live, possibly changing) filter set.
func waitAdaptiveConverged(tier *cascade.Tier, mdl model, hseed int64, what string) *Failure {
	deadline := time.Now().Add(15 * time.Second)
	for {
		specs := tier.Specs()
		ref := adaptiveSelection(mdl, specs)
		got := make(map[string]*entry.Entry)
		for _, e := range tier.Replica().Store().All() {
			got[e.DN().Norm()] = e
		}
		diff := describeDiff(got, ref)
		if diff == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return &Failure{HistorySeed: hseed, Msg: fmt.Sprintf(
				"%s did not converge on %d specs within 15s:\n%s", what, len(specs), diff)}
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// runAdaptive stands up one adaptive history. No chaos: the cascade oracle
// already covers lossy links, and adaptation timing is the subject here.
func runAdaptive(hseed int64, steps int, rep *Report) *Failure {
	st, err := sim.BuildSynthStore(synthWireConfig(hseed))
	if err != nil {
		return &Failure{HistorySeed: hseed, Msg: "build synthetic store: " + err.Error()}
	}
	mdl := newModel(st)
	backend := ldapnet.NewStoreBackend(st)

	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return &Failure{HistorySeed: hseed, Msg: "listen: " + err.Error()}
	}
	masterAddr := lnA.Addr().String()
	masterSrv := ldapnet.ServeListener(lnA, backend)
	defer masterSrv.Close()

	baseSpec := query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(grp=0)")
	moverSpec := query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(grp=1)")

	// The adaptive tier starts with only the base spec...
	tier, err := cascade.New(cascade.Config{
		Upstream:     masterAddr,
		Specs:        []query.Query{baseSpec},
		PollInterval: 3 * time.Millisecond,
		BackoffBase:  2 * time.Millisecond,
		BackoffMax:   40 * time.Millisecond,
		DialTimeout:  2 * time.Second,
		Seed:         hseed,
	})
	if err != nil {
		return &Failure{HistorySeed: hseed, Msg: "new tier: " + err.Error()}
	}
	tier.Start()
	defer tier.Stop()

	// ...while the reference tier is statically widened from the start: the
	// adapted tier's final content must be byte-identical to it.
	refTier, err := cascade.New(cascade.Config{
		Upstream:     masterAddr,
		Specs:        []query.Query{baseSpec, moverSpec},
		PollInterval: 3 * time.Millisecond,
		BackoffBase:  2 * time.Millisecond,
		BackoffMax:   40 * time.Millisecond,
		DialTimeout:  2 * time.Second,
		Seed:         hseed + 9901,
	})
	if err != nil {
		return &Failure{HistorySeed: hseed, Msg: "new reference tier: " + err.Error()}
	}
	refTier.Start()
	defer refTier.Stop()

	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return &Failure{HistorySeed: hseed, Msg: "listen: " + err.Error()}
	}
	tierAddr := lnB.Addr().String()
	tierSrv := ldapnet.ServeListener(lnB,
		ldapnet.NewCascadeBackend(tier.Replica(), tier, "ldap://"+masterAddr))
	defer tierSrv.Close()

	ctrl, err := tierctl.New(tierctl.Config{
		Tier:     tier,
		Budget:   2,
		Interval: 4 * time.Millisecond,
	})
	if err != nil {
		return &Failure{HistorySeed: hseed, Msg: "new controller: " + err.Error()}
	}
	ctrl.Start()
	defer ctrl.Stop()

	type wireLeaf struct {
		frep *replica.FilterReplica
		sup  *supervisor.Supervisor
		spec query.Query
	}
	newLeaf := func(spec query.Query, mode supervisor.Mode, i int) (*wireLeaf, *Failure) {
		frep, err := replica.NewFilterReplica()
		if err != nil {
			return nil, &Failure{HistorySeed: hseed, Msg: "new replica: " + err.Error()}
		}
		sup, err := supervisor.New(supervisor.Config{
			Master:   tierAddr,
			Fallback: masterAddr,
			// Far beyond the adaptation deadline below: only the
			// filters-changed watch can bring a diverted leaf back in time.
			RetryUpstreamAfter: 10 * time.Minute,
			WatchFilters:       true,
			Spec:               spec,
			Mode:               mode,
			PollInterval:       3 * time.Millisecond,
			IdleTimeout:        300 * time.Millisecond,
			BackoffBase:        2 * time.Millisecond,
			BackoffMax:         40 * time.Millisecond,
			DialTimeout:        2 * time.Second,
			Seed:               hseed + int64(i),
		}, frep)
		if err != nil {
			return nil, &Failure{HistorySeed: hseed, Msg: "new supervisor: " + err.Error()}
		}
		sup.Start()
		return &wireLeaf{frep: frep, sup: sup, spec: spec}, nil
	}

	var leaves []*wireLeaf
	defer func() {
		for _, w := range leaves {
			_ = w.sup.Stop()
		}
	}()
	if rep != nil {
		defer func() {
			for _, w := range leaves {
				rep.Polls += int(w.sup.Exchanges())
			}
		}()
	}

	gen := sim.NewOpGen(synthWireConfig(hseed))
	applyOps := func(n int) *Failure {
		for i := 0; i < n; i++ {
			op := gen.Next()
			if !mdl.valid(op) {
				continue
			}
			if err := sim.ApplyOp(st, op); err != nil {
				return &Failure{HistorySeed: hseed, Step: i,
					Msg: fmt.Sprintf("op %q valid in model but rejected by store: %v", op, err)}
			}
			mdl.apply(op)
			if rep != nil {
				rep.Events++
			}
		}
		return nil
	}
	waitFor := func(what string, d time.Duration, cond func() (bool, string)) *Failure {
		end := time.Now().Add(d)
		for {
			ok, detail := cond()
			if ok {
				return nil
			}
			if time.Now().After(end) {
				return &Failure{HistorySeed: hseed,
					Msg: fmt.Sprintf("%s not reached within %v: %s", what, d, detail)}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitLeaf := func(w *wireLeaf, ri int) *Failure {
		return waitConverged(w.frep, w.sup, mdl, w.spec, ri, hseed)
	}

	// Phase A: stable traffic within the configured filter set.
	inside, f := newLeaf(query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(&(grp=0)(val>=2))"),
		supervisor.ModePersist, 0)
	if f != nil {
		return f
	}
	leaves = append(leaves, inside)
	if f := applyOps(steps); f != nil {
		return f
	}
	if f := waitAdaptiveConverged(tier, mdl, hseed, "adaptive tier (phase A)"); f != nil {
		return f
	}
	if f := waitLeaf(inside, 0); f != nil {
		return f
	}

	// Phase B: the locality shift. Content appears in the new region (named
	// outside the op generator's e<N> namespace, so churn never deletes it —
	// the widened reload below always has something to pull), and a new leaf
	// population arrives whose spec the tier cannot serve; it must be
	// rejected and diverted first.
	for i := 0; i < 3; i++ {
		op := sim.Op{Kind: sim.OpAdd, Name: fmt.Sprintf("w%d", i+1), Grp: 1, Val: i}
		if err := sim.ApplyOp(st, op); err != nil {
			return &Failure{HistorySeed: hseed, Msg: fmt.Sprintf("seed shift entry %q: %v", op, err)}
		}
		mdl.apply(op)
	}
	mover, f := newLeaf(moverSpec, supervisor.ModePoll, 1)
	if f != nil {
		return f
	}
	leaves = append(leaves, mover)
	if f := waitFor("mover divert to fallback master", 10*time.Second, func() (bool, string) {
		if mover.sup.Counters().UpstreamFallbacks.Load() < 1 {
			return false, "no upstream fallback recorded"
		}
		return true, ""
	}); f != nil {
		return f
	}
	if got := tier.Counters().Rejected.Load(); got < 1 {
		return &Failure{HistorySeed: hseed,
			Msg: fmt.Sprintf("tier rejected %d sessions, want >= 1 (mover spec %q)", got, moverSpec)}
	}

	// The control plane must now adopt the mover's spec, re-sync the widened
	// content, bump the filter generation, and the filters-changed watch must
	// bring the mover back — well before its 10-minute re-probe timer.
	if f := waitFor("mover migration back to the tier", 10*time.Second, func() (bool, string) {
		if got := mover.sup.Target(); got != tierAddr {
			return false, fmt.Sprintf("mover target = %s (tier specs %d, gen %d)",
				got, len(tier.Specs()), func() uint64 { g, _ := tier.FilterGeneration(); return g }())
		}
		return true, ""
	}); f != nil {
		return f
	}
	// ...and the mover's fallback session at the master must be released:
	// only the two tier links and the two reference-tier links remain.
	wantSessions := len(tier.Specs()) + len(refTier.Specs())
	if f := waitFor("fallback session release at the master", 10*time.Second, func() (bool, string) {
		if got := backend.Engine.Sessions(); got != wantSessions {
			return false, fmt.Sprintf("master engine holds %d sessions, want %d", got, wantSessions)
		}
		return true, ""
	}); f != nil {
		return f
	}

	// Phase C: post-shift traffic flows through the widened tier.
	if f := applyOps(steps); f != nil {
		return f
	}
	if f := waitAdaptiveConverged(tier, mdl, hseed, "adaptive tier (phase C)"); f != nil {
		return f
	}
	for ri, w := range leaves {
		if f := waitLeaf(w, ri); f != nil {
			return f
		}
	}
	if f := waitAdaptiveConverged(refTier, mdl, hseed, "reference tier"); f != nil {
		return f
	}

	// Budget and control-plane accounting.
	if got := len(tier.Specs()); got > 2 {
		return &Failure{HistorySeed: hseed,
			Msg: fmt.Sprintf("adaptive tier holds %d specs, budget is 2", got)}
	}
	tc := ctrl.Counters().Snapshot()
	if tc.RejectionsObserved < 1 {
		return &Failure{HistorySeed: hseed, Msg: "control plane observed no rejections"}
	}
	if tc.Generalizations < 1 {
		return &Failure{HistorySeed: hseed, Msg: "control plane never widened the tier"}
	}
	if tc.LeavesMigratedBack < 1 {
		return &Failure{HistorySeed: hseed, Msg: "no diverted leaf was recorded as migrated back"}
	}
	// Widening volume is accounted asynchronously, once the adopted link
	// reports synced — wait for it rather than racing it.
	if f := waitFor("widening re-sync accounting", 10*time.Second, func() (bool, string) {
		if got := ctrl.Counters().WidenResyncEntries.Load(); got < 1 {
			return false, "widening re-sync pulled no entries"
		}
		return true, ""
	}); f != nil {
		return f
	}

	// Final check: the adapted tier is byte-identical to the statically
	// widened reference.
	gotFNV := foldEntries(0, tier.Replica().Store().All())
	wantFNV := foldEntries(0, refTier.Replica().Store().All())
	if gotFNV != wantFNV {
		diff := describeDiff(storeSnapshot(tier.Replica()), storeSnapshot(refTier.Replica()))
		return &Failure{HistorySeed: hseed, Msg: fmt.Sprintf(
			"adapted tier content %016x differs from statically-widened reference %016x:\n%s",
			gotFNV, wantFNV, diff)}
	}
	return nil
}
