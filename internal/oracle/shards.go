package oracle

// Shard sweep: the sharded DIT store must be observationally identical to
// the single-shard store. This file replays the SAME engine-level oracle
// histories (flat, three-tier cascade, edge-write) at several shard counts
// and asserts two fingerprints agree bit-for-bit at every count:
//
//   - TrafficHash: every update PDU the harness observed, folded in order —
//     shard routing must never reorder, duplicate, or reword wire traffic;
//   - ContentHash: every replica's final content plus the master store at
//     the end of each history — shard routing must never change what
//     converges.
//
// The sweep is only meaningful because history generation is
// shard-oblivious (generators call synthConfig with shards=0) and all
// multi-entry store reads return DN-sorted results regardless of which
// shard each entry lives on.

import (
	"fmt"
	"sort"

	"filterdir/internal/entry"
	"filterdir/internal/resync"
)

// FNV-1a, folded incrementally so hashes chain across histories.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func foldString(h uint64, s string) uint64 {
	if h == 0 {
		h = fnvOffset64
	}
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	// Fold a terminator so ("ab","c") and ("a","bc") differ.
	h ^= 0xff
	h *= fnvPrime64
	return h
}

// foldUpdates folds one exchange's update PDUs in wire order.
func foldUpdates(h uint64, ups []resync.Update) uint64 {
	for _, u := range ups {
		h = foldString(h, u.Action.String())
		h = foldString(h, u.DN.Norm())
		if u.Entry != nil {
			h = foldString(h, u.Entry.String())
		}
	}
	return h
}

// foldContent folds a replica content map in normalized-DN order.
func foldContent(h uint64, m map[string]*entry.Entry) uint64 {
	norms := make([]string, 0, len(m))
	for norm := range m {
		norms = append(norms, norm)
	}
	sort.Strings(norms)
	for _, norm := range norms {
		h = foldString(h, norm)
		h = foldString(h, m[norm].String())
	}
	return h
}

// foldEntries folds an already-ordered entry list (e.g. Store.All()).
func foldEntries(h uint64, entries []*entry.Entry) uint64 {
	for _, e := range entries {
		h = foldString(h, e.String())
	}
	return h
}

// ShardSweepConfig parameterizes one sweep: each runner replays Histories
// histories of Steps events at every shard count in Shards.
type ShardSweepConfig struct {
	Seed      int64
	Histories int
	Steps     int
	Shards    []int
}

func (c *ShardSweepConfig) fillDefaults() {
	if c.Histories <= 0 {
		c.Histories = 6
	}
	if c.Steps <= 0 {
		c.Steps = 40
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 2, 8}
	}
}

// ShardPoint is one (runner, shard count) measurement.
type ShardPoint struct {
	Runner      string
	Shards      int
	TrafficHash uint64
	ContentHash uint64
}

// ShardSweepReport carries every measurement plus the first failure — a
// divergence inside a runner, or a hash mismatch across shard counts.
type ShardSweepReport struct {
	Points  []ShardPoint
	Failure *Failure
}

// RunShardSweep replays identical flat, cascade, and edge-write histories
// at each configured shard count and asserts byte-identical traffic and
// final content. Any mismatch names the runner and both hash pairs.
func RunShardSweep(cfg ShardSweepConfig) *ShardSweepReport {
	cfg.fillDefaults()
	out := &ShardSweepReport{}
	runners := []struct {
		name string
		run  func(shards int) (*Report, *Failure)
	}{
		{"flat", func(shards int) (*Report, *Failure) {
			rep := Run(Config{Seed: cfg.Seed, Histories: cfg.Histories, Steps: cfg.Steps, Shards: shards})
			return rep, rep.Failure
		}},
		{"cascade", func(shards int) (*Report, *Failure) {
			rep := RunCascade(CascadeConfig{Seed: cfg.Seed, Histories: cfg.Histories, Steps: cfg.Steps, Shards: shards})
			return rep, rep.Failure
		}},
		{"edgewrite", func(shards int) (*Report, *Failure) {
			rep := RunEdge(EdgeConfig{Seed: cfg.Seed, Histories: cfg.Histories, Steps: cfg.Steps, Shards: shards})
			return rep, rep.Failure
		}},
	}
	for _, r := range runners {
		var base ShardPoint
		for i, shards := range cfg.Shards {
			rep, f := r.run(shards)
			if f != nil {
				out.Failure = f
				return out
			}
			pt := ShardPoint{Runner: r.name, Shards: shards,
				TrafficHash: rep.TrafficHash, ContentHash: rep.ContentHash}
			out.Points = append(out.Points, pt)
			if i == 0 {
				base = pt
				continue
			}
			if pt.TrafficHash != base.TrafficHash {
				out.Failure = &Failure{HistorySeed: cfg.Seed, Msg: fmt.Sprintf(
					"%s runner: wire traffic diverges across shard counts: shards=%d hash=%016x, shards=%d hash=%016x",
					r.name, base.Shards, base.TrafficHash, pt.Shards, pt.TrafficHash)}
				return out
			}
			if pt.ContentHash != base.ContentHash {
				out.Failure = &Failure{HistorySeed: cfg.Seed, Msg: fmt.Sprintf(
					"%s runner: final content diverges across shard counts: shards=%d hash=%016x, shards=%d hash=%016x",
					r.name, base.Shards, base.ContentHash, pt.Shards, pt.ContentHash)}
				return out
			}
		}
	}
	return out
}
