package oracle

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/edgewrite"
	"filterdir/internal/entry"
	"filterdir/internal/query"
	"filterdir/internal/resync"
	"filterdir/internal/sim"
)

// Edge-write history events, appended to the shared Event grammar.
const (
	// EvEdgeWrite submits one write at the edge replica (payload in Event.W).
	EvEdgeWrite EventKind = 100 + iota
	// EvEdgeCrash kills the edge writer mid-flight and reopens it from its
	// WAL — the crash-recovery halves of the prepare→commit exchange.
	EvEdgeCrash
	// EvEdgeReplay runs one background replay pass (re-forwards journaled
	// ops whose commit is unconfirmed).
	EvEdgeReplay
)

// Edge write kinds carried by EdgeWrite.Kind.
const (
	edgeAdd = iota
	edgeModify
	edgeDelete
)

// EdgeWrite is the EvEdgeWrite payload: the op shape is pinned at history
// generation time so shrinking replays identically, while targets of
// modify/delete resolve at execution time against the replica's own live
// edge entries (Pick % len), the same drop-if-invalid convention the
// classic histories use for shrunk-away adds.
type EdgeWrite struct {
	Kind int
	Seq  int // add: unique entry name suffix ("ew<Seq>")
	Val  int // add/modify: the val attribute written
	Pick int // modify/delete: index into the live own-write set
}

func (w EdgeWrite) String() string {
	switch w.Kind {
	case edgeAdd:
		return fmt.Sprintf("add ew%d (val=%d)", w.Seq, w.Val)
	case edgeModify:
		return fmt.Sprintf("modify own[%d] val=%d", w.Pick, w.Val)
	case edgeDelete:
		return fmt.Sprintf("delete own[%d]", w.Pick)
	default:
		return fmt.Sprintf("edge-write(%d)", w.Kind)
	}
}

// EdgeConfig parameterizes an edge-write oracle run.
type EdgeConfig struct {
	Seed      int64
	Histories int
	Steps     int
	// Shards overrides the master store's shard count (0 = store default);
	// see the shard sweep in shards.go.
	Shards int
}

func (c *EdgeConfig) fillDefaults() {
	if c.Histories <= 0 {
		c.Histories = 12
	}
	if c.Steps <= 0 {
		c.Steps = 60
	}
}

// edgeSequencer is the harness's master: it applies forwarded ops to the
// real store under the dedup-by-op-id contract and injects the two chaos
// faults the 2PC-style exchange must survive — a transport failure before
// the op reaches the sequencer (kill-before-forward) and a lost commit
// response after the op was applied (kill-after-forward). Both are
// deterministic in the forward-call count, so histories replay and shrink
// exactly.
type edgeSequencer struct {
	st      *dit.Store
	mdl     model
	seen    map[string]uint64
	applies map[string]int
	calls   int
	chaos   bool
	rep     *Report
}

func (m *edgeSequencer) Forward(c dit.Change, opID string) (uint64, bool, error) {
	m.calls++
	if m.chaos && m.calls%7 == 0 {
		return 0, false, fmt.Errorf("injected: connection lost before forward")
	}
	if csn, ok := m.seen[opID]; ok {
		if m.rep != nil {
			m.rep.EdgeDuplicates++
		}
		return csn, true, nil
	}
	csn, err := m.st.ApplyCSN(c)
	if err != nil {
		// A definitive sequencer verdict, not a transport fault.
		return 0, false, &edgewrite.PermanentError{Err: err}
	}
	m.applies[opID]++
	m.seen[opID] = uint64(csn)
	m.mdl.applyChange(m.st, c)
	if m.rep != nil {
		m.rep.EdgeApplied++
	}
	if m.chaos && m.calls%11 == 0 {
		// Applied and sequenced, but the replica never hears: the op stays
		// journaled-uncommitted and must replay into the dedup table.
		return 0, false, fmt.Errorf("injected: commit response lost after apply")
	}
	return uint64(csn), false, nil
}

// applyChange mirrors one master-applied change into the reference model,
// reading the authoritative post-image back from the store.
func (m model) applyChange(st *dit.Store, c dit.Change) {
	switch c.Type {
	case dit.ChangeAdd, dit.ChangeModify:
		if e, ok := st.Get(c.DN); ok {
			m[c.DN.Norm()] = e.Clone()
		}
	case dit.ChangeDelete:
		delete(m, c.DN.Norm())
	case dit.ChangeModifyDN:
		delete(m, c.DN.Norm())
		if e, ok := st.Get(c.NewDN); ok {
			m[c.NewDN.Norm()] = e.Clone()
		}
	}
}

// edgeHarness drives one edge-write history: a master store + engine, one
// leaf replica polling one spec, and an edge writer journaling to a real
// on-disk WAL that survives EvEdgeCrash reopens.
type edgeHarness struct {
	cfg    EdgeConfig
	seed   int64
	seq    *edgeSequencer
	eng    *resync.Engine
	gen    *sim.OpGen
	spec   query.Query
	key    string
	leaf   *replicaSt
	w      *edgewrite.Writer
	walDir string
	rep    *Report

	// Own-write expectations: what the writing client must read back, by
	// normalized DN (nil = must be absent), plus the live targets
	// modify/delete events can pick from.
	own     map[string]*entry.Entry
	ownDNs  []dn.DN
	wfails  int // forward failures surfaced as ErrPending (for the log)
	mustRYW bool
}

// edgeSpec is the leaf's replicated content: every (grp=1) entry, which all
// edge adds are generated to match, plus the synthetic churn in that group.
func edgeSpec() query.Query {
	return query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(grp=1)")
}

func (h *edgeHarness) fail(format string, args ...any) *Failure {
	return &Failure{HistorySeed: h.seed, Msg: fmt.Sprintf(format, args...)}
}

// openWriter (re)opens the edge writer over the history's WAL directory.
func (h *edgeHarness) openWriter() error {
	w, err := edgewrite.Open(edgewrite.Config{
		Dir:       h.walDir,
		ReplicaID: "oracle-leaf",
		Forward:   h.seq,
		Admit: edgewrite.Admitter([]query.Query{h.spec}, func(d dn.DN) (*entry.Entry, bool) {
			e, ok := h.leaf.content[d.Norm()]
			return e, ok
		}),
		Lookup: func(d dn.DN) (*entry.Entry, bool) {
			e, ok := h.leaf.content[d.Norm()]
			return e, ok
		},
	})
	if err != nil {
		return err
	}
	w.RegisterSource(h.key)
	h.w = w
	return nil
}

// runEdge executes one edge-write history, returning the first divergence.
func runEdge(cfg EdgeConfig, hseed int64, events []Event, rep *Report) *Failure {
	st, err := sim.BuildSynthStore(synthConfig(hseed, cfg.Shards))
	if err != nil {
		return &Failure{HistorySeed: hseed, Msg: "build synthetic store: " + err.Error()}
	}
	walDir, err := os.MkdirTemp("", "oracle-edgewal-")
	if err != nil {
		return &Failure{HistorySeed: hseed, Msg: "wal dir: " + err.Error()}
	}
	defer os.RemoveAll(walDir)

	h := &edgeHarness{
		cfg:    cfg,
		seed:   hseed,
		seq:    &edgeSequencer{st: st, mdl: newModel(st), seen: make(map[string]uint64), applies: make(map[string]int), chaos: true, rep: rep},
		eng:    resync.NewEngine(st),
		spec:   edgeSpec(),
		leaf:   &replicaSt{content: make(map[string]*entry.Entry)},
		own:    make(map[string]*entry.Entry),
		rep:    rep,
		walDir: walDir,
	}
	h.leaf.spec = h.spec
	h.key = h.spec.Key()
	if err := h.openWriter(); err != nil {
		return h.fail("open edge writer: %v", err)
	}

	for i, ev := range events {
		if rep != nil {
			rep.Events++
		}
		if f := h.exec(ev); f != nil {
			f.Step = i
			return f
		}
	}
	if f := h.finish(); f != nil {
		return f
	}
	if rep != nil {
		rep.ContentHash = foldContent(rep.ContentHash, h.leaf.content)
		rep.ContentHash = foldEntries(rep.ContentHash, st.All())
	}
	return nil
}

func (h *edgeHarness) exec(ev Event) *Failure {
	switch ev.Kind {
	case EvOp:
		if !h.seq.mdl.valid(ev.Op) {
			return nil
		}
		if err := sim.ApplyOp(h.seq.st, ev.Op); err != nil {
			return h.fail("op %q valid in model but rejected by store: %v", ev.Op, err)
		}
		h.seq.mdl.apply(ev.Op)
		return nil
	case EvPoll:
		return h.doPoll(ev.Lost)
	case EvEdgeWrite:
		return h.doWrite(ev.W)
	case EvEdgeCrash:
		h.w.Close()
		if err := h.openWriter(); err != nil {
			return h.fail("reopen edge writer after crash: %v", err)
		}
		return h.checkReadYourWrites("crash recovery")
	case EvEdgeReplay:
		h.w.Replay()
		return h.checkReadYourWrites("replay")
	}
	return h.fail("unknown event kind %d in edge history", ev.Kind)
}

// doPoll runs one leaf sync exchange and feeds the response's CSN
// watermark to the writer — the echo that retires pending ops.
func (h *edgeHarness) doPoll(lost bool) *Failure {
	r := h.leaf
	var res *resync.PollResult
	var err error
	full := false
	if !r.begun {
		res, err = h.eng.Begin(r.spec)
		full = true
	} else {
		res, err = h.eng.Poll(r.cookie)
		if errors.Is(err, resync.ErrNoSuchSession) && !lost {
			r.content = make(map[string]*entry.Entry)
			r.begun = false
			res, err = h.eng.Begin(r.spec)
			full = true
		}
	}
	if lost {
		return nil
	}
	if err != nil {
		return h.fail("poll %q: %v", r.spec, err)
	}
	if h.rep != nil {
		h.rep.Polls++
		h.rep.TrafficHash = foldUpdates(h.rep.TrafficHash, res.Updates)
	}
	if full || res.FullReload {
		r.content = make(map[string]*entry.Entry)
		for _, u := range res.Updates {
			if u.Action != resync.ActionAdd {
				return h.fail("full transfer contains %s PDU for %s", u.Action, u.DN)
			}
			r.content[u.DN.Norm()] = u.Entry
		}
	} else {
		for _, u := range res.Updates {
			switch u.Action {
			case resync.ActionAdd, resync.ActionModify:
				r.content[u.DN.Norm()] = u.Entry
			case resync.ActionDelete:
				delete(r.content, u.DN.Norm())
			default:
				return h.fail("unexpected %s PDU in poll", u.Action)
			}
		}
	}
	r.cookie = res.Cookie
	r.begun = true

	if res.CSN == 0 {
		return h.fail("poll response carried no CSN watermark")
	}
	h.w.SetWatermark(h.key, res.CSN)

	// The poll synced the leaf to the master's current state, so the
	// replica must converge and every committed edge op must have retired.
	if diff := describeDiff(r.content, h.seq.mdl.selection(r.spec)); diff != "" {
		return h.fail("replica diverged after poll:\n%s", diff)
	}
	if p, u := h.w.Pending(), h.w.PendingUncommitted(); p != u {
		return h.fail("poll synced to CSN %d but %d committed ops failed to retire", res.CSN, p-u)
	}
	return h.checkReadYourWrites("poll")
}

// doWrite submits one edge write and records what the writing client must
// now read back.
func (h *edgeHarness) doWrite(wv EdgeWrite) *Failure {
	var c dit.Change
	var want *entry.Entry
	var norm string
	switch wv.Kind {
	case edgeAdd:
		e := sim.SynthEntry("ew"+strconv.Itoa(wv.Seq), 1, wv.Val)
		norm = e.DN().Norm()
		if _, ok := h.seq.mdl[norm]; ok {
			return nil // replayed under shrinking with the add already live
		}
		if _, ok := h.own[norm]; ok {
			return nil
		}
		c = dit.Change{Type: dit.ChangeAdd, DN: e.DN(), After: e}
		want = e
	case edgeModify, edgeDelete:
		// Only target settled entries (all prior writes retired and synced):
		// the overlay computes images from synced content, so an unsettled
		// base would make the read-your-writes expectation ambiguous.
		if h.w.Pending() != 0 || len(h.ownDNs) == 0 {
			return nil
		}
		d := h.ownDNs[wv.Pick%len(h.ownDNs)]
		norm = d.Norm()
		base, held := h.leaf.content[norm]
		if !held {
			return nil
		}
		if wv.Kind == edgeModify {
			c = dit.Change{Type: dit.ChangeModify, DN: d, Mods: []dit.Mod{
				{Op: dit.ModReplace, Attr: "val", Values: []string{strconv.Itoa(wv.Val)}}}}
			want = base.Clone().Put("val", strconv.Itoa(wv.Val))
		} else {
			c = dit.Change{Type: dit.ChangeDelete, DN: d}
		}
	default:
		return h.fail("unknown edge write kind %d", wv.Kind)
	}

	_, err := h.w.Submit(c)
	switch {
	case err == nil:
	case errors.Is(err, edgewrite.ErrPending):
		h.wfails++
	case errors.Is(err, edgewrite.ErrRejected):
		return nil // target not held locally yet; a real replica refers the client
	default:
		return h.fail("edge %s refused: %v", wv, err)
	}

	if h.rep != nil {
		h.rep.EdgeAccepted++
	}
	h.own[norm] = want
	switch wv.Kind {
	case edgeAdd:
		h.ownDNs = append(h.ownDNs, c.DN)
	case edgeDelete:
		for i, d := range h.ownDNs {
			if d.Norm() == norm {
				h.ownDNs = append(h.ownDNs[:i], h.ownDNs[i+1:]...)
				break
			}
		}
	}
	h.mustRYW = true
	return h.checkReadYourWrites("submit")
}

// checkReadYourWrites asserts the writing client's view: every own write —
// from the moment Submit accepted it, through crash recovery and replay,
// past retirement — is reflected in the overlaid answer, and every own
// delete stays invisible.
func (h *edgeHarness) checkReadYourWrites(phase string) *Failure {
	if !h.mustRYW {
		return nil
	}
	entries := make([]*entry.Entry, 0, len(h.leaf.content))
	for _, e := range h.leaf.content {
		entries = append(entries, e)
	}
	answer := h.w.Overlay(h.spec, entries)
	byNorm := make(map[string]*entry.Entry, len(answer))
	for _, e := range answer {
		byNorm[e.DN().Norm()] = e
	}
	for norm, want := range h.own {
		got, ok := byNorm[norm]
		switch {
		case want == nil && ok:
			return h.fail("%s: own delete of %s is visible again (read-your-writes broken)", phase, norm)
		case want != nil && !ok:
			return h.fail("%s: own write of %s invisible to the writer (read-your-writes broken)", phase, norm)
		case want != nil && !got.Equal(want):
			return h.fail("%s: own write of %s reads back wrong:\n  got  %s\n  want %s", phase, norm, got, want)
		}
	}
	return nil
}

// finish drains the history: chaos off, replay until every journaled op
// commits, one final poll to echo the last CSN, then the convergence,
// overlay-identity and exactly-once assertions.
func (h *edgeHarness) finish() *Failure {
	defer h.w.Close()
	h.seq.chaos = false
	for i := 0; i < 100 && h.w.PendingUncommitted() > 0; i++ {
		h.w.Replay()
	}
	if n := h.w.PendingUncommitted(); n != 0 {
		return h.fail("drain: %d ops still uncommitted with chaos disabled", n)
	}
	if f := h.doPoll(false); f != nil {
		return f
	}
	if n := h.w.Pending(); n != 0 {
		return h.fail("drain: %d ops still pending after the final CSN echo", n)
	}

	// With nothing pending the overlay must be the identity: the writer's
	// view and every other client's view are byte-identical.
	entries := make([]*entry.Entry, 0, len(h.leaf.content))
	for _, e := range h.leaf.content {
		entries = append(entries, e)
	}
	answer := h.w.Overlay(h.spec, entries)
	if len(answer) != len(entries) {
		return h.fail("overlay not identity after drain: %d entries in, %d out", len(entries), len(answer))
	}
	got := make(map[string]*entry.Entry, len(answer))
	for _, e := range answer {
		got[e.DN().Norm()] = e
	}
	if diff := describeDiff(got, h.seq.mdl.selection(h.spec)); diff != "" {
		return h.fail("writer's drained view diverged from reference:\n%s", diff)
	}

	// Exactly-once at the sequencer: every forwarded op id applied once, no
	// matter how many crashes and replays its commit took.
	for id, n := range h.seq.applies {
		if n != 1 {
			return h.fail("op %s applied %d times at the sequencer (want exactly once)", id, n)
		}
	}
	return nil
}

// genEdgeHistory generates one edge-write history: master churn, leaf
// polls (some lost), edge writes, replay passes and writer crashes.
func genEdgeHistory(cfg EdgeConfig, hseed int64) []Event {
	gen := sim.NewOpGen(synthConfig(hseed, 0))
	rng := rand.New(rand.NewSource(hseed*2654435761 + 131))
	seq := 0
	events := make([]Event, 0, cfg.Steps+1)
	for i := 0; i < cfg.Steps; i++ {
		r := rng.Float64()
		switch {
		case r < 0.28:
			events = append(events, Event{Kind: EvOp, Op: gen.Next()})
		case r < 0.50:
			seq++
			events = append(events, Event{Kind: EvEdgeWrite,
				W: EdgeWrite{Kind: edgeAdd, Seq: seq, Val: rng.Intn(5)}})
		case r < 0.58:
			events = append(events, Event{Kind: EvEdgeWrite,
				W: EdgeWrite{Kind: edgeModify, Pick: rng.Intn(1 << 16), Val: rng.Intn(5)}})
		case r < 0.63:
			events = append(events, Event{Kind: EvEdgeWrite,
				W: EdgeWrite{Kind: edgeDelete, Pick: rng.Intn(1 << 16)}})
		case r < 0.82:
			events = append(events, Event{Kind: EvPoll, Lost: rng.Float64() < 0.25})
		case r < 0.92:
			events = append(events, Event{Kind: EvEdgeReplay})
		default:
			events = append(events, Event{Kind: EvEdgeCrash})
		}
	}
	return append(events, Event{Kind: EvPoll})
}

// RunEdge executes an edge-write oracle run: each history drives the edge
// writer (real WAL on disk, crash/reopen, chaos-faulted forwards) against
// the sequencer and the leaf's sync stream, asserting read-your-writes at
// every step and byte-identical convergence plus exactly-once application
// at the end.
func RunEdge(cfg EdgeConfig) *Report {
	cfg.fillDefaults()
	rep := &Report{}
	for hn := 0; hn < cfg.Histories; hn++ {
		hseed := historySeed(cfg.Seed, hn)
		events := genEdgeHistory(cfg, hseed)
		if f := runEdge(cfg, hseed, events, rep); f != nil {
			f.History = events
			f.Minimal = shrinkEvents(events, func(ev []Event) bool {
				return runEdge(cfg, hseed, ev, nil) != nil
			})
			f.Replay = replayCmd("TestOracleEdgeWriteSweep", hseed, cfg.Steps)
			rep.Failure = f
			return rep
		}
		rep.Histories++
	}
	return rep
}
