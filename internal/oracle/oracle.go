// Package oracle is a deterministic, seed-replayable model-checking harness
// for the ReSync protocol: it generates random operation histories over the
// synthetic DIT (internal/sim), interleaved with poll / persist / retain /
// sync_end session events and fault schedules, maintains a brute-force
// reference model of what each filter's replica content must be, and drives
// the real stack at two levels:
//
//   - engine level (this file): an in-process resync.Engine, with lost
//     responses, corrupted cookies, server-side session ends and persist
//     subscriptions driven event by event;
//   - wire level (wire.go): a full loop through an ldapnet master and
//     supervisor replicas, with internal/chaos fault injection.
//
// After every sync point it asserts that replica content equals the
// reference selection and that update traffic never exceeds the minimal net
// set except via legal retain actions. On failure the history is shrunk to
// a minimal reproducing sequence (shrink.go) and a one-line -seed replay
// command is reported.
package oracle

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"filterdir/internal/dit"
	"filterdir/internal/entry"
	"filterdir/internal/query"
	"filterdir/internal/resync"
	"filterdir/internal/sim"
)

// Config parameterizes an engine-level oracle run.
type Config struct {
	// Seed derives every history; equal seeds replay equal runs.
	Seed int64
	// Histories is the number of independent histories to check.
	Histories int
	// Steps is the number of events per history (a few final polls are
	// appended so every history ends with a convergence check).
	Steps int
	// BreakE10 is a test-only fault injection: the simulated consumer drops
	// every delete PDU, modeling an engine that loses E10 classifications.
	// A correct oracle must detect the divergence and shrink it.
	BreakE10 bool
	// Specs overrides the default replicated content specifications, e.g.
	// with many sessions over one shared filter to exercise the
	// content-group fan-out layer. Empty means specs().
	Specs []query.Query
	// Shards overrides the master store's shard count (0 = store default).
	// Histories are shard-oblivious: the shard sweep (shards.go) replays the
	// same seeds at several counts and asserts identical hashes.
	Shards int
}

// specList resolves the run's content specifications.
func (c Config) specList() []query.Query {
	if len(c.Specs) > 0 {
		return c.Specs
	}
	return specs()
}

func (c *Config) fillDefaults() {
	if c.Histories <= 0 {
		c.Histories = 20
	}
	if c.Steps <= 0 {
		c.Steps = 50
	}
}

// Report summarizes a run. Failure is nil when every history converged.
type Report struct {
	Histories int // histories completed without divergence
	Events    int // events executed
	Polls     int // synchronization exchanges performed
	Traffic   resync.Traffic
	Failure   *Failure

	// Content-group fan-out accounting, accumulated across histories:
	// shared-interval classification reuse on the engine, and shared-PDU
	// encoding reuse on the wire (wire runs only).
	SharedClassifyHits   int64
	SharedClassifyMisses int64
	StreamEncodes        int64
	StreamDedupPDUs      int64

	// Edge-write accounting (edge.go sweeps only): ops accepted at the
	// replica, ops the sequencer actually applied, and replayed forwards
	// answered from the dedup table instead of re-applied.
	EdgeAccepted   int64
	EdgeApplied    int64
	EdgeDuplicates int64

	// Shard-sweep fingerprints (shards.go): TrafficHash folds every update
	// PDU the harness observed, in order; ContentHash folds every final
	// replica content and the master store at the end of each history. Equal
	// seeds must produce equal hashes at every shard count.
	TrafficHash uint64
	ContentHash uint64
}

// historySeed derives the h-th history's seed, so a failing history is
// replayable in isolation with -oracle.seed=<seed> -oracle.n=1.
func historySeed(seed int64, h int) int64 { return seed + int64(h)*1_000_003 }

// synthConfig derives the synthetic-DIT shape from the history seed; every
// third seed bounds the journal so full-reload degradation is exercised.
// Shards only affects store construction — history generation must stay
// byte-identical across shard counts, so generators pass 0.
func synthConfig(hseed int64, shards int) sim.SynthConfig {
	cfg := sim.SynthConfig{Seed: hseed, Shards: shards}
	if hseed%3 == 2 || hseed%3 == -2 {
		cfg.JournalLimit = 8
	}
	return cfg
}

// specs returns the content specifications replicated by the oracle:
// equality, conjunctive-with-ordering, disjunctive, and substring filters,
// the last with an attribute selection so suppression of modifies confined
// to unselected attributes is exercised.
func specs() []query.Query {
	return []query.Query{
		query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(grp=1)"),
		query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(&(grp=0)(val>=2))"),
		query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(|(grp=2)(val=0))"),
		query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(cn=e*)", "cn", "grp"),
	}
}

// sharedSpecs builds the fan-out stress spec set: n replicas over ONE
// content — cycling through the plain spelling, an attribute-selected view
// of it, and a containment-equivalent (absorption) spelling — plus a final
// odd-one-out replica whose filter shares no group with the rest. The
// grouped engine must be observationally identical to per-session
// classification for every one of them.
func sharedSpecs(n int) []query.Query {
	out := make([]query.Query, 0, n+1)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			out = append(out, query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(grp=1)"))
		case 1:
			out = append(out, query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(grp=1)", "cn", "grp"))
		default:
			out = append(out, query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(|(grp=1)(&(grp=1)(val>=0)))"))
		}
	}
	return append(out, query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(&(grp=0)(val>=2))"))
}

// --- Reference model ------------------------------------------------------

// model is the brute-force reference: every entry of the DIT by normalized
// DN, maintained by replaying the same operations applied to the real
// store, using the same entry constructors (sim.SynthEntry).
type model map[string]*entry.Entry

func newModel(st *dit.Store) model {
	m := make(model)
	for _, e := range st.All() {
		m[e.DN().Norm()] = e.Clone()
	}
	return m
}

// valid reports whether the operation applies to the current state; ops
// invalidated by shrinking (e.g. a modify whose add was removed) are
// skipped on both the store and the model.
func (m model) valid(op sim.Op) bool {
	_, ok := m[op.DN().Norm()]
	switch op.Kind {
	case sim.OpAdd:
		return !ok
	case sim.OpDelete, sim.OpModify:
		return ok
	case sim.OpModDN:
		_, newOk := m[op.NewDN().Norm()]
		return ok && !newOk
	}
	return false
}

// apply mutates the model exactly as dit.Store applies the operation.
func (m model) apply(op sim.Op) {
	norm := op.DN().Norm()
	switch op.Kind {
	case sim.OpAdd:
		m[norm] = sim.SynthEntry(op.Name, op.Grp, op.Val)
	case sim.OpDelete:
		delete(m, norm)
	case sim.OpModify:
		e := m[norm].Clone()
		e.Put("grp", strconv.Itoa(op.Grp))
		e.Put("val", strconv.Itoa(op.Val))
		m[norm] = e
	case sim.OpModDN:
		e := m[norm].Clone()
		delete(m, norm)
		e.SetDN(op.NewDN())
		e.Put("cn", op.NewName) // store updates the naming attribute
		m[op.NewDN().Norm()] = e
	}
}

// selection computes the reference replica content for a spec: the selected
// views of every model entry in the spec's base/scope region matching its
// filter.
func (m model) selection(spec query.Query) map[string]*entry.Entry {
	out := make(map[string]*entry.Entry)
	for norm, e := range m {
		if !spec.InScope(e.DN()) {
			continue
		}
		if spec.Filter != nil && !spec.Filter.Matches(e) {
			continue
		}
		out[norm] = e.Select(spec.Attrs)
	}
	return out
}

// --- Engine-level harness -------------------------------------------------

// replicaSt is the simulated consumer of one spec: the cookie it has
// adopted and the content it has applied.
type replicaSt struct {
	spec    query.Query
	cookie  string
	content map[string]*entry.Entry
	begun   bool
}

type harness struct {
	cfg  Config
	seed int64
	st   *dit.Store
	eng  *resync.Engine
	mdl  model
	reps []*replicaSt
	rep  *Report // accumulates stats; nil during shrinking re-runs
	step int
}

// runEngine executes one event history against a fresh engine, returning
// the first divergence (nil if the history converges throughout).
func runEngine(cfg Config, hseed int64, events []Event, rep *Report) *Failure {
	st, err := sim.BuildSynthStore(synthConfig(hseed, cfg.Shards))
	if err != nil {
		return &Failure{HistorySeed: hseed, Msg: "build synthetic store: " + err.Error()}
	}
	h := &harness{cfg: cfg, seed: hseed, st: st, eng: resync.NewEngine(st), mdl: newModel(st), rep: rep}
	if rep != nil {
		h.eng.SetObserver(func(_ string, ups []resync.Update, _ bool) {
			for _, u := range ups {
				rep.Traffic.Add(u)
			}
			rep.TrafficHash = foldUpdates(rep.TrafficHash, ups)
		})
		defer func() {
			snap := h.eng.Counters().Snapshot()
			rep.SharedClassifyHits += snap.SharedClassifyHits
			rep.SharedClassifyMisses += snap.SharedClassifyMisses
		}()
	}
	for _, spec := range cfg.specList() {
		h.reps = append(h.reps, &replicaSt{spec: spec, content: make(map[string]*entry.Entry)})
	}
	for i, ev := range events {
		h.step = i
		if rep != nil {
			rep.Events++
		}
		if f := h.exec(ev); f != nil {
			f.Step = i
			return f
		}
	}
	if rep != nil {
		for _, r := range h.reps {
			rep.ContentHash = foldContent(rep.ContentHash, r.content)
		}
		rep.ContentHash = foldEntries(rep.ContentHash, st.All())
	}
	return nil
}

func (h *harness) exec(ev Event) *Failure {
	switch ev.Kind {
	case EvOp:
		if !h.mdl.valid(ev.Op) {
			return nil // invalidated by shrinking; skip on both sides
		}
		if err := sim.ApplyOp(h.st, ev.Op); err != nil {
			return h.fail("op %q valid in model but rejected by store: %v", ev.Op, err)
		}
		h.mdl.apply(ev.Op)
		return nil
	case EvPoll:
		return h.doPoll(h.reps[ev.Rep], ev.Lost)
	case EvRetain:
		return h.doRetain(h.reps[ev.Rep], ev.Lost)
	case EvPersist:
		return h.doPersist(h.reps[ev.Rep])
	case EvBadCookie:
		return h.doBadCookie(h.reps[ev.Rep])
	case EvEnd:
		r := h.reps[ev.Rep]
		if r.begun {
			_ = h.eng.End(r.cookie) // replica learns on its next exchange
		}
		return nil
	}
	return h.fail("unknown event kind %d", ev.Kind)
}

func (h *harness) fail(format string, args ...any) *Failure {
	return &Failure{HistorySeed: h.seed, Msg: fmt.Sprintf(format, args...)}
}

// doPoll performs one poll exchange for the replica. With lost set the
// server-side exchange still happens but the replica never sees the
// response — the at-least-once delivery case the cookie protocol exists
// for.
func (h *harness) doPoll(r *replicaSt, lost bool) *Failure {
	var res *resync.PollResult
	var err error
	fullTransfer := false
	if !r.begun {
		res, err = h.eng.Begin(r.spec)
		fullTransfer = true
	} else {
		res, err = h.eng.Poll(r.cookie)
		if errors.Is(err, resync.ErrNoSuchSession) && !lost {
			// Stale session: drop content and re-begin, like the supervisor.
			r.content = make(map[string]*entry.Entry)
			r.begun = false
			res, err = h.eng.Begin(r.spec)
			fullTransfer = true
		}
	}
	if lost {
		return nil // response dropped on the wire; replica state untouched
	}
	if err != nil {
		return h.fail("poll %q: %v", r.spec, err)
	}
	return h.adopt(r, res, fullTransfer || res.FullReload)
}

// adopt applies an exchange's updates to the replica, checks minimality
// (full transfers must be pure add sets; incremental responses must equal
// the net difference exactly), adopts the cookie, and checks convergence.
func (h *harness) adopt(r *replicaSt, res *resync.PollResult, fullTransfer bool) *Failure {
	if h.rep != nil {
		h.rep.Polls++
	}
	ref := h.mdl.selection(r.spec)
	before := copyContent(r.content)
	if fullTransfer {
		r.content = make(map[string]*entry.Entry)
		for _, u := range res.Updates {
			if u.Action != resync.ActionAdd {
				return h.fail("full transfer for %q contains %s PDU for %s", r.spec, u.Action, u.DN)
			}
			r.content[u.DN.Norm()] = u.Entry
		}
	} else {
		if f := h.applyIncremental(r, res.Updates); f != nil {
			return f
		}
		if f := h.checkMinimal(r.spec, before, ref, res.Updates, "poll"); f != nil {
			return f
		}
	}
	r.cookie = res.Cookie
	r.begun = true
	return h.checkConverged(r, ref, "poll")
}

// applyIncremental applies a net update set to the replica content.
func (h *harness) applyIncremental(r *replicaSt, updates []resync.Update) *Failure {
	for _, u := range updates {
		norm := u.DN.Norm()
		switch u.Action {
		case resync.ActionAdd, resync.ActionModify:
			r.content[norm] = u.Entry
		case resync.ActionDelete:
			if !h.cfg.BreakE10 { // test-only injected consumer fault
				delete(r.content, norm)
			}
		case resync.ActionRetain:
			return h.fail("retain PDU outside retain mode for %q (dn %s)", r.spec, u.DN)
		default:
			return h.fail("unknown action %v for %q", u.Action, r.spec)
		}
	}
	return nil
}

// checkMinimal asserts the update set is exactly the net difference between
// the replica's pre-exchange content and the reference selection: nothing
// missing, nothing redundant, no duplicates.
func (h *harness) checkMinimal(spec query.Query, before, ref map[string]*entry.Entry, updates []resync.Update, phase string) *Failure {
	wantAdd := make(map[string]*entry.Entry)
	wantMod := make(map[string]*entry.Entry)
	wantDel := make(map[string]bool)
	for norm, ent := range ref {
		b, held := before[norm]
		switch {
		case !held:
			wantAdd[norm] = ent
		case !b.Equal(ent):
			wantMod[norm] = ent
		}
	}
	for norm := range before {
		if _, ok := ref[norm]; !ok {
			wantDel[norm] = true
		}
	}
	seen := make(map[string]bool)
	var adds, mods, dels int
	for _, u := range updates {
		norm := u.DN.Norm()
		key := u.Action.String() + " " + norm
		if seen[key] {
			return h.fail("%s for %q: duplicate %s", phase, spec, key)
		}
		seen[key] = true
		switch u.Action {
		case resync.ActionAdd:
			want, ok := wantAdd[norm]
			if !ok {
				return h.fail("%s for %q: redundant add of %s (not in minimal set)", phase, spec, u.DN)
			}
			if !u.Entry.Equal(want) {
				return h.fail("%s for %q: add of %s carries wrong entry:\n  got  %s\n  want %s", phase, spec, u.DN, u.Entry, want)
			}
			adds++
		case resync.ActionModify:
			want, ok := wantMod[norm]
			if !ok {
				return h.fail("%s for %q: redundant modify of %s (net-unchanged or unheld)", phase, spec, u.DN)
			}
			if !u.Entry.Equal(want) {
				return h.fail("%s for %q: modify of %s carries wrong entry:\n  got  %s\n  want %s", phase, spec, u.DN, u.Entry, want)
			}
			mods++
		case resync.ActionDelete:
			if !wantDel[norm] {
				return h.fail("%s for %q: redundant delete of %s", phase, spec, u.DN)
			}
			dels++
		case resync.ActionRetain:
			return h.fail("%s for %q: retain PDU outside retain mode", phase, spec)
		}
	}
	if adds != len(wantAdd) || mods != len(wantMod) || dels != len(wantDel) {
		return h.fail("%s for %q: update set not minimal-complete: got %d/%d/%d add/mod/del, want %d/%d/%d",
			phase, spec, adds, mods, dels, len(wantAdd), len(wantMod), len(wantDel))
	}
	return nil
}

// checkConverged asserts replica content equals the reference selection.
func (h *harness) checkConverged(r *replicaSt, ref map[string]*entry.Entry, phase string) *Failure {
	if diff := describeDiff(r.content, ref); diff != "" {
		return h.fail("%s for %q: replica diverged from reference:\n%s", phase, r.spec, diff)
	}
	return nil
}

// doRetain performs one incomplete-history (equation 3) exchange: the
// consumer keeps what is mentioned (retain keeps the held copy) and drops
// everything unmentioned.
func (h *harness) doRetain(r *replicaSt, lost bool) *Failure {
	if !r.begun {
		return h.doPoll(r, lost)
	}
	res, err := h.eng.PollRetain(r.cookie)
	if lost {
		return nil
	}
	if errors.Is(err, resync.ErrNoSuchSession) {
		r.content = make(map[string]*entry.Entry)
		r.begun = false
		return h.doPoll(r, false)
	}
	if err != nil {
		return h.fail("retain poll %q: %v", r.spec, err)
	}
	if h.rep != nil {
		h.rep.Polls++
	}
	ref := h.mdl.selection(r.spec)
	newContent := make(map[string]*entry.Entry)
	seen := make(map[string]bool)
	for _, u := range res.Updates {
		norm := u.DN.Norm()
		if seen[norm] {
			return h.fail("retain poll %q: %s mentioned twice", r.spec, u.DN)
		}
		seen[norm] = true
		switch u.Action {
		case resync.ActionAdd, resync.ActionModify:
			newContent[norm] = u.Entry
		case resync.ActionRetain:
			held, ok := r.content[norm]
			if !ok {
				return h.fail("retain poll %q: retain of %s which the replica does not hold", r.spec, u.DN)
			}
			newContent[norm] = held
		case resync.ActionDelete:
			return h.fail("retain poll %q: delete PDU in retain mode for %s", r.spec, u.DN)
		}
	}
	// Every selected entry must be mentioned exactly once and nothing else:
	// the consumer's drop-unmentioned rule is only sound then.
	if len(res.Updates) != len(ref) {
		return h.fail("retain poll %q: mentioned %d entries, selection has %d", r.spec, len(res.Updates), len(ref))
	}
	r.content = newContent
	r.cookie = res.Cookie
	return h.checkConverged(r, ref, "retain poll")
}

// doPersist upgrades the replica's session to persist mode at its current
// cookie, drains the pending batch (the master is quiescent during the
// event, so at most one batch is due), applies it, and downgrades again —
// exercising rollback-without-ack plus recompute, including
// modify-then-revert intervals under persist mode.
func (h *harness) doPersist(r *replicaSt) *Failure {
	if !r.begun {
		return h.doPoll(r, false)
	}
	sub, err := h.eng.Persist(r.cookie)
	if errors.Is(err, resync.ErrNoSuchSession) {
		// Unknown or ended sync point: the consumer must poll instead (and
		// will receive a reload or re-begin).
		return h.doPoll(r, false)
	}
	if err != nil {
		return h.fail("persist %q: %v", r.spec, err)
	}
	ref := h.mdl.selection(r.spec)
	before := copyContent(r.content)
	var drained []resync.Update
	if describeDiff(r.content, ref) != "" {
		// Updates are due: exactly one batch covers the whole interval.
		select {
		case b, ok := <-sub.Updates:
			if !ok {
				// Stream ended (journal no longer covers the position): the
				// consumer falls back to a poll, which carries the reload.
				sub.Close()
				return h.doPoll(r, false)
			}
			if f := h.applyIncremental(r, b.Updates); f != nil {
				sub.Close()
				return f
			}
			r.cookie = b.Cookie
			drained = b.Updates
		case <-time.After(2 * time.Second):
			sub.Close()
			return h.fail("persist %q: replica out of date but no batch pushed:\n%s", r.spec, describeDiff(r.content, ref))
		}
	}
	sub.Close()
	if h.rep != nil {
		h.rep.Polls++
	}
	if f := h.checkMinimal(r.spec, before, ref, drained, "persist"); f != nil {
		return f
	}
	return h.checkConverged(r, ref, "persist")
}

// doBadCookie polls with a corrupted generation: the only safe engine
// answer is a full reload.
func (h *harness) doBadCookie(r *replicaSt) *Failure {
	if !r.begun {
		return nil
	}
	res, err := h.eng.Poll(corruptCookie(r.cookie))
	if errors.Is(err, resync.ErrNoSuchSession) {
		return nil // corrupt session id part; nothing to check
	}
	if err != nil {
		return h.fail("corrupt-cookie poll %q: %v", r.spec, err)
	}
	if !res.FullReload {
		return h.fail("corrupt-cookie poll %q: engine answered incrementally to an unknown sync point", r.spec)
	}
	return h.adopt(r, res, true)
}

// corruptCookie replaces the generation part with one that never existed.
func corruptCookie(cookie string) string {
	if i := strings.LastIndexByte(cookie, '@'); i >= 0 {
		return cookie[:i] + "@999999999"
	}
	return cookie + "@999999999"
}

// --- helpers --------------------------------------------------------------

func copyContent(m map[string]*entry.Entry) map[string]*entry.Entry {
	out := make(map[string]*entry.Entry, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// describeDiff renders the difference between replica content and the
// reference selection ("" when equal).
func describeDiff(got, want map[string]*entry.Entry) string {
	var lines []string
	for norm, w := range want {
		g, ok := got[norm]
		switch {
		case !ok:
			lines = append(lines, fmt.Sprintf("  missing %s (want %s)", norm, w))
		case !g.Equal(w):
			lines = append(lines, fmt.Sprintf("  stale   %s:\n    got  %s\n    want %s", norm, g, w))
		}
	}
	for norm, g := range got {
		if _, ok := want[norm]; !ok {
			lines = append(lines, fmt.Sprintf("  ghost   %s (held %s, not selected)", norm, g))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Run executes an engine-level oracle run: cfg.Histories independent
// histories, each checked event by event. On the first divergence the
// history is shrunk and the run stops.
func Run(cfg Config) *Report {
	cfg.fillDefaults()
	rep := &Report{}
	for h := 0; h < cfg.Histories; h++ {
		hseed := historySeed(cfg.Seed, h)
		events := genHistory(cfg, hseed)
		if f := runEngine(cfg, hseed, events, rep); f != nil {
			f.History = events
			f.Minimal = shrinkEvents(events, func(ev []Event) bool {
				return runEngine(cfg, hseed, ev, nil) != nil
			})
			f.Replay = replayCmd("TestOracleSweep", hseed, cfg.Steps)
			rep.Failure = f
			return rep
		}
		rep.Histories++
	}
	return rep
}

func replayCmd(test string, hseed int64, steps int) string {
	return fmt.Sprintf("go test ./internal/oracle -run %s -oracle.seed=%d -oracle.n=1 -oracle.steps=%d",
		test, hseed, steps)
}
