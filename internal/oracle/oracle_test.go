package oracle

import (
	"flag"
	"testing"

	"filterdir/internal/supervisor"
)

// Sweep controls; see `make oracle`. A failing history prints its own
// one-line replay command using these flags.
var (
	oracleSeed  = flag.Int64("oracle.seed", 42, "base seed for oracle sweep histories")
	oracleN     = flag.Int("oracle.n", 0, "number of sweep histories (0 skips the sweep tests)")
	oracleSteps = flag.Int("oracle.steps", 80, "events per sweep history")
)

// TestOracleQuick is the tier-1 engine-level oracle run: a small
// deterministic batch of histories checked after every sync point.
func TestOracleQuick(t *testing.T) {
	rep := Run(Config{Seed: 42, Histories: 12, Steps: 40})
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	t.Logf("oracle quick: %d histories, %d events, %d exchanges, traffic %+v",
		rep.Histories, rep.Events, rep.Polls, rep.Traffic)
}

// TestOracleQuickWire drives the full wire loop (ldapnet master,
// supervisor replicas, chaos injection) for two short histories — one
// poll-mode, one persist-mode.
func TestOracleQuickWire(t *testing.T) {
	if testing.Short() {
		t.Skip("wire oracle skipped in -short mode")
	}
	rep := RunWire(WireConfig{Seed: 42, Histories: 2, Steps: 12, Chaos: true})
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	t.Logf("oracle quick wire: %d histories, %d events, %d exchanges, traffic %+v",
		rep.Histories, rep.Events, rep.Polls, rep.Traffic)
}

// TestOracleSweep is the long engine-level sweep, enabled by -oracle.n.
func TestOracleSweep(t *testing.T) {
	if *oracleN <= 0 {
		t.Skip("sweep disabled; run via make oracle or -oracle.n=N")
	}
	rep := Run(Config{Seed: *oracleSeed, Histories: *oracleN, Steps: *oracleSteps})
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	t.Logf("oracle sweep: %d histories, %d events, %d exchanges, traffic %+v",
		rep.Histories, rep.Events, rep.Polls, rep.Traffic)
}

// TestOracleWireSweep is the long wire-level sweep: one wire history per
// 50 engine histories requested (at least one).
func TestOracleWireSweep(t *testing.T) {
	if *oracleN <= 0 {
		t.Skip("sweep disabled; run via make oracle or -oracle.n=N")
	}
	n := (*oracleN + 49) / 50
	rep := RunWire(WireConfig{Seed: *oracleSeed, Histories: n, Steps: *oracleSteps / 3, Chaos: true})
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	t.Logf("oracle wire sweep: %d histories, %d events, %d exchanges, traffic %+v",
		rep.Histories, rep.Events, rep.Polls, rep.Traffic)
}

// TestOracleCascadeQuick is the tier-1 three-tier oracle run: a mid-tier
// replica fed from the master engine serves leaves from its own engine;
// every leaf exchange is checked for exact minimality and convergence
// against the mid's store, and every history ends with a transitive
// convergence check against the master's reference model.
func TestOracleCascadeQuick(t *testing.T) {
	rep := RunCascade(CascadeConfig{Seed: 42, Histories: 10, Steps: 40})
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	t.Logf("oracle cascade quick: %d histories, %d events, %d exchanges",
		rep.Histories, rep.Events, rep.Polls)
}

// TestOracleCascadeQuickWire stands up the real three-tier topology —
// ldapnet master, cascade.Tier, supervisor leaves including a rejected
// outsider — with chaos on both links.
func TestOracleCascadeQuickWire(t *testing.T) {
	if testing.Short() {
		t.Skip("wire oracle skipped in -short mode")
	}
	rep := RunCascadeWire(CascadeWireConfig{Seed: 42, Histories: 1, Steps: 18})
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	t.Logf("oracle cascade wire: %d histories, %d events, %d exchanges",
		rep.Histories, rep.Events, rep.Polls)
}

// TestOracleCascadeSweep is the long three-tier engine sweep.
func TestOracleCascadeSweep(t *testing.T) {
	if *oracleN <= 0 {
		t.Skip("sweep disabled; run via make oracle or -oracle.n=N")
	}
	rep := RunCascade(CascadeConfig{Seed: *oracleSeed, Histories: *oracleN, Steps: *oracleSteps})
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	t.Logf("oracle cascade sweep: %d histories, %d events, %d exchanges",
		rep.Histories, rep.Events, rep.Polls)
}

// TestOracleCascadeWireSweep is the long three-tier wire sweep: one wire
// history per 50 engine histories requested (at least one).
func TestOracleCascadeWireSweep(t *testing.T) {
	if *oracleN <= 0 {
		t.Skip("sweep disabled; run via make oracle or -oracle.n=N")
	}
	n := (*oracleN + 49) / 50
	rep := RunCascadeWire(CascadeWireConfig{Seed: *oracleSeed, Histories: n, Steps: *oracleSteps / 4})
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	t.Logf("oracle cascade wire sweep: %d histories, %d events, %d exchanges",
		rep.Histories, rep.Events, rep.Polls)
}

// TestOracleEdgeWriteQuick is the tier-1 edge-write oracle run: writes
// accepted at a leaf replica, journaled to a real on-disk WAL, forwarded to
// the sequencer under deterministic chaos (lost forwards, lost commit
// responses, writer crashes mid-exchange), with read-your-writes asserted
// at every step and byte-identical convergence plus exactly-once
// application asserted at the end of every history.
func TestOracleEdgeWriteQuick(t *testing.T) {
	rep := RunEdge(EdgeConfig{Seed: 42, Histories: 10, Steps: 50})
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	if rep.EdgeAccepted == 0 || rep.EdgeApplied == 0 {
		t.Fatalf("edge machinery never engaged: accepted=%d applied=%d", rep.EdgeAccepted, rep.EdgeApplied)
	}
	if rep.EdgeDuplicates == 0 {
		t.Error("no replayed forward ever hit the dedup table; lost-response chaos did not engage")
	}
	t.Logf("oracle edge quick: %d histories, %d events, %d exchanges, edge accepted=%d applied=%d dedup=%d",
		rep.Histories, rep.Events, rep.Polls, rep.EdgeAccepted, rep.EdgeApplied, rep.EdgeDuplicates)
}

// TestOracleEdgeWriteSweep is the long edge-write sweep, enabled by
// -oracle.n (see `make oracle ORACLE_TESTS=TestOracleEdgeWriteSweep`).
func TestOracleEdgeWriteSweep(t *testing.T) {
	if *oracleN <= 0 {
		t.Skip("sweep disabled; run via make oracle or -oracle.n=N")
	}
	rep := RunEdge(EdgeConfig{Seed: *oracleSeed, Histories: *oracleN, Steps: *oracleSteps})
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	t.Logf("oracle edge sweep: %d histories, %d events, %d exchanges, edge accepted=%d applied=%d dedup=%d",
		rep.Histories, rep.Events, rep.Polls, rep.EdgeAccepted, rep.EdgeApplied, rep.EdgeDuplicates)
}

// TestOracleSharedFilterHistories runs the fan-out stress spec set — many
// replicas over one shared filter (including an attribute-selected view and
// a containment-equivalent spelling) plus one odd-one-out — through the
// engine-level oracle. The grouped engine must be observationally
// indistinguishable from per-session classification: every replica
// converges at every sync point and every incremental batch stays minimal.
// It also asserts the grouping actually engaged: shared classifications
// were reused across members, not recomputed per session.
func TestOracleSharedFilterHistories(t *testing.T) {
	rep := Run(Config{Seed: 42, Histories: 10, Steps: 50, Specs: sharedSpecs(5)})
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	if rep.SharedClassifyHits == 0 {
		t.Error("no shared-classification reuse recorded across same-filter replicas")
	}
	t.Logf("shared-filter oracle: %d histories, %d events, %d exchanges, classify hits/misses=%d/%d",
		rep.Histories, rep.Events, rep.Polls, rep.SharedClassifyHits, rep.SharedClassifyMisses)
}

// TestOracleSharedFilterWireDedup drives the wire loop with persist-mode
// supervisors over the shared-filter spec set and asserts the master
// BER-encoded shared update PDUs once per view, re-sending the bytes to the
// remaining streams (wire-level fan-out dedup) — while every replica still
// converges.
func TestOracleSharedFilterWireDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wire oracle skipped in -short mode")
	}
	cfg := WireConfig{Seed: 42, Histories: 1, Steps: 24, Specs: sharedSpecs(4)}
	cfg.fillDefaults()
	hseed := historySeed(cfg.Seed, 0)
	events := genWireHistory(cfg, hseed)
	rep := &Report{}
	if f := runWire(cfg, hseed, supervisor.ModePersist, events, rep); f != nil {
		t.Fatal(f.Format())
	}
	if rep.StreamDedupPDUs == 0 {
		t.Errorf("no shared-PDU encoding reuse on same-filter persist streams (encodes=%d)",
			rep.StreamEncodes)
	}
	t.Logf("wire dedup: %d events, %d exchanges, stream encodes=%d dedup=%d",
		rep.Events, rep.Polls, rep.StreamEncodes, rep.StreamDedupPDUs)
}

// TestOracleShardSweep is the tier-1 shard-equivalence gate: identical
// flat, cascade, and edge-write histories replayed at shard counts 1, 2,
// and 8 must produce byte-identical wire traffic and final content (FNV
// fingerprints over every update PDU and every converged replica). Any
// routing, ordering, or batching behavior that leaks the shard count into
// observable protocol behavior fails here.
func TestOracleShardSweep(t *testing.T) {
	rep := RunShardSweep(ShardSweepConfig{Seed: 42, Histories: 6, Steps: 40, Shards: []int{1, 2, 8}})
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	for _, pt := range rep.Points {
		t.Logf("%-9s shards=%d traffic=%016x content=%016x",
			pt.Runner, pt.Shards, pt.TrafficHash, pt.ContentHash)
	}
}

// TestOracleShardSweepFull is the long shard-equivalence sweep, enabled by
// -oracle.n (see `make oracle`). History count is split across the three
// runners and shard counts so the sweep's total work tracks -oracle.n.
func TestOracleShardSweepFull(t *testing.T) {
	if *oracleN <= 0 {
		t.Skip("sweep disabled; run via make oracle or -oracle.n=N")
	}
	n := (*oracleN + 8) / 9
	rep := RunShardSweep(ShardSweepConfig{Seed: *oracleSeed, Histories: n, Steps: *oracleSteps, Shards: []int{1, 2, 8}})
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	for _, pt := range rep.Points {
		t.Logf("%-9s shards=%d traffic=%016x content=%016x",
			pt.Runner, pt.Shards, pt.TrafficHash, pt.ContentHash)
	}
}

// TestOracleResumeQuick is the tier-1 crash/resume gate for resumable
// chunked reloads: per history the same transfer is replayed with the
// connection cut at every chunk boundary (with journal-trimming churn
// committed at the instant of the cut) and at the byte midpoint of every
// chunk, plus forged- and stale-token presentations. Asserts byte-identical
// convergence, monotone progress (at most one full reload of chunks plus
// one re-sent chunk per cut), and clean restarts on unverifiable tokens.
func TestOracleResumeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("wire oracle skipped in -short mode")
	}
	rep := RunResume(ResumeConfig{Seed: 42, Histories: 2})
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	t.Logf("oracle resume quick: %d histories, %d attempts, %d exchanges",
		rep.Histories, rep.Events, rep.Polls)
}

// TestOracleResumeSweep is the long crash/resume sweep: one history per 25
// engine histories requested, with larger reload shapes (entry count and
// chunk size derived from each history seed).
func TestOracleResumeSweep(t *testing.T) {
	if *oracleN <= 0 {
		t.Skip("sweep disabled; run via make oracle or -oracle.n=N")
	}
	n := (*oracleN + 24) / 25
	rep := RunResume(ResumeConfig{Seed: *oracleSeed, Histories: n, Entries: 60})
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	t.Logf("oracle resume sweep: %d histories, %d attempts, %d exchanges",
		rep.Histories, rep.Events, rep.Polls)
}

// TestOracleAdaptiveQuick is the tier-1 adaptive-tiering gate: a wire-level
// master → adaptive tier → leaves run where the tier starts too narrow, a
// mid-run locality shift diverts a leaf to the fallback master, and the
// tierctl control plane must widen the tier, fire the filters-changed watch,
// migrate the leaf back, release its fallback session, and end up
// byte-identical to a statically-widened reference tier — all within budget.
func TestOracleAdaptiveQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("wire oracle skipped in -short mode")
	}
	rep := RunAdaptive(AdaptiveConfig{Seed: 42, Histories: 1, Steps: 20})
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	t.Logf("oracle adaptive quick: %d histories, %d events, %d exchanges",
		rep.Histories, rep.Events, rep.Polls)
}

// TestOracleAdaptiveSweep is the long adaptive-tiering sweep: one history
// per 25 engine histories requested (at least one).
func TestOracleAdaptiveSweep(t *testing.T) {
	if *oracleN <= 0 {
		t.Skip("sweep disabled; run via make oracle or -oracle.n=N")
	}
	n := (*oracleN + 24) / 25
	rep := RunAdaptive(AdaptiveConfig{Seed: *oracleSeed, Histories: n, Steps: *oracleSteps / 2})
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	t.Logf("oracle adaptive sweep: %d histories, %d events, %d exchanges",
		rep.Histories, rep.Events, rep.Polls)
}

// TestOracleDetectsDroppedDeletes is the oracle's own acceptance test:
// with the consumer-side E10 fault injected (delete PDUs dropped), the
// oracle must flag a divergence, shrink the history to a reproducing
// subsequence, and emit a replay command.
func TestOracleDetectsDroppedDeletes(t *testing.T) {
	rep := Run(Config{Seed: 42, Histories: 8, Steps: 60, BreakE10: true})
	f := rep.Failure
	if f == nil {
		t.Fatal("oracle missed the injected E10 fault: no divergence reported")
	}
	if len(f.Minimal) == 0 {
		t.Fatal("failure reported without a shrunk history")
	}
	if len(f.Minimal) > len(f.History) {
		t.Fatalf("shrunk history longer than original: %d > %d", len(f.Minimal), len(f.History))
	}
	if f.Replay == "" {
		t.Fatal("failure reported without a replay command")
	}
	// The minimal history must still reproduce under the same fault.
	if runEngine(Config{BreakE10: true}, f.HistorySeed, f.Minimal, nil) == nil {
		t.Fatal("shrunk history does not reproduce the divergence")
	}
	// ...and a correct consumer must pass it.
	if clean := runEngine(Config{}, f.HistorySeed, f.Minimal, nil); clean != nil {
		t.Fatalf("shrunk history fails even without the injected fault:\n%s", clean.Msg)
	}
	t.Logf("injected E10 fault detected and shrunk %d -> %d events:\n%s",
		len(f.History), len(f.Minimal), f.Format())
}

// TestCorruptCookie pins the corruption helper used by EvBadCookie.
func TestCorruptCookie(t *testing.T) {
	if got := corruptCookie("sess-3@17"); got != "sess-3@999999999" {
		t.Fatalf("corruptCookie: got %q", got)
	}
	if got := corruptCookie("nogen"); got != "nogen@999999999" {
		t.Fatalf("corruptCookie: got %q", got)
	}
}
