package oracle

import (
	"fmt"
	"math/rand"

	"filterdir/internal/sim"
)

// EventKind enumerates the oracle's history grammar.
type EventKind int

const (
	// EvOp applies one directory operation (add/delete/modify/modDN) to
	// the master.
	EvOp EventKind = iota + 1
	// EvPoll performs one poll exchange for replica Rep; with Lost set the
	// response is dropped on the wire after the server processed it.
	EvPoll
	// EvRetain performs one incomplete-history (retain-mode) exchange.
	EvRetain
	// EvPersist upgrades replica Rep to persist mode at its cookie, drains
	// the due batch, and downgrades again.
	EvPersist
	// EvBadCookie polls with a corrupted generation; the engine must
	// answer with a full reload.
	EvBadCookie
	// EvEnd ends replica Rep's session server-side (operator abandon /
	// restart); the replica only learns at its next exchange.
	EvEnd
)

// Event is one step of a history.
type Event struct {
	Kind EventKind
	Rep  int    // replica index for session events
	Lost bool   // EvPoll/EvRetain: response discarded in flight
	Op   sim.Op // EvOp payload

	// W is the EvEdgeWrite payload (edge.go histories only).
	W EdgeWrite
}

func (e Event) String() string {
	lost := ""
	if e.Lost {
		lost = " (response lost)"
	}
	switch e.Kind {
	case EvOp:
		return "op: " + e.Op.String()
	case EvPoll:
		return fmt.Sprintf("poll r%d%s", e.Rep, lost)
	case EvRetain:
		return fmt.Sprintf("retain-poll r%d%s", e.Rep, lost)
	case EvPersist:
		return fmt.Sprintf("persist-drain r%d", e.Rep)
	case EvBadCookie:
		return fmt.Sprintf("poll r%d with corrupt cookie", e.Rep)
	case EvEnd:
		return fmt.Sprintf("sync_end r%d (server side)", e.Rep)
	case EvEdgeWrite:
		return "edge " + e.W.String()
	case EvEdgeCrash:
		return "edge crash + WAL reopen"
	case EvEdgeReplay:
		return "edge replay pass"
	default:
		return fmt.Sprintf("event(%d)", int(e.Kind))
	}
}

// genHistory generates the event sequence for one history,
// deterministically from its seed. Operation generation (sim.OpGen) and
// event-kind selection use independent streams so shrinking one does not
// perturb the other. Every history ends with one poll per replica so the
// final state is always convergence-checked.
func genHistory(cfg Config, hseed int64) []Event {
	gen := sim.NewOpGen(synthConfig(hseed, 0))
	rng := rand.New(rand.NewSource(hseed*2654435761 + 97))
	nReps := len(cfg.specList())
	events := make([]Event, 0, cfg.Steps+nReps)
	for i := 0; i < cfg.Steps; i++ {
		r := rng.Float64()
		rep := rng.Intn(nReps)
		switch {
		case r < 0.52:
			events = append(events, Event{Kind: EvOp, Op: gen.Next()})
		case r < 0.72:
			events = append(events, Event{Kind: EvPoll, Rep: rep})
		case r < 0.78:
			events = append(events, Event{Kind: EvPoll, Rep: rep, Lost: true})
		case r < 0.86:
			events = append(events, Event{Kind: EvPersist, Rep: rep})
		case r < 0.92:
			events = append(events, Event{Kind: EvRetain, Rep: rep, Lost: rng.Float64() < 0.3})
		case r < 0.96:
			events = append(events, Event{Kind: EvBadCookie, Rep: rep})
		default:
			events = append(events, Event{Kind: EvEnd, Rep: rep})
		}
	}
	for i := 0; i < nReps; i++ {
		events = append(events, Event{Kind: EvPoll, Rep: i})
	}
	return events
}
