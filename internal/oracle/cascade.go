package oracle

// Cascade (three-tier) oracle: master → mid-tier → leaves.
//
// The engine-level harness models the mid-tier exactly as internal/cascade
// builds it: a FilterReplica fed by a session against the master engine,
// with its own resync.Engine over the replica's store serving the leaves.
// After every leaf exchange the oracle asserts the leaf's content equals
// the brute-force selection over the MID's store, and that incremental
// responses are the exact net difference (transitive equation 3) — in
// particular across master-side journal trims, where the mid absorbs a
// full reload as mass delete+add and the leaves still receive minimal
// deltas. After every mid exchange the mid itself is checked against the
// global reference model.
//
// The wire-level harness stands up the real stack: an ldapnet master, a
// cascade.Tier in the middle served through ldapnet.CascadeBackend, and
// supervisor-driven leaves — one of them with a spec the tier cannot prove
// contained, which must divert to the fallback master — with chaos fault
// injection on both links.

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"filterdir/internal/cascade"
	"filterdir/internal/chaos"
	"filterdir/internal/entry"
	"filterdir/internal/ldapnet"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
	"filterdir/internal/sim"
	"filterdir/internal/supervisor"
)

// CascadeConfig parameterizes an engine-level cascade oracle run.
type CascadeConfig struct {
	Seed      int64
	Histories int
	Steps     int
	// Shards overrides the master store's shard count (0 = store default);
	// see the shard sweep in shards.go.
	Shards int
}

func (c *CascadeConfig) fillDefaults() {
	if c.Histories <= 0 {
		c.Histories = 8
	}
	if c.Steps <= 0 {
		c.Steps = 40
	}
}

// cascadeMidSpec is the mid-tier's replicated content: a disjunction wide
// enough to contain every leaf spec below.
func cascadeMidSpec() query.Query {
	return query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(|(grp=0)(grp=1))")
}

// cascadeLeafSpecs are the downstream specs, all provably contained in the
// mid spec: a disjunct member, a conjunctive narrowing, and an
// attribute-selected view.
func cascadeLeafSpecs() []query.Query {
	return []query.Query{
		query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(grp=1)"),
		query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(&(grp=0)(val>=2))"),
		query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(grp=1)", "cn", "grp"),
	}
}

// midSt is the simulated mid-tier: a FilterReplica holding the mid spec's
// content (fed from the master engine) and a downstream engine over its
// store.
type midSt struct {
	spec   query.Query
	frep   *replica.FilterReplica
	eng    *resync.Engine
	cookie string
	begun  bool
}

// cascadeHarness extends the engine harness: h.eng/h.st/h.mdl are the
// master; mid and leaves form the lower tiers.
type cascadeHarness struct {
	*harness
	mid    *midSt
	leaves []*replicaSt
}

// genCascadeHistory mixes master operations, mid-tier sync exchanges and
// leaf polls (both with lost responses), and server-side leaf session
// ends. Rep == len(leaves) encodes "mid sync"; lower values name a leaf. A
// mid sync plus one poll per leaf is appended so every history ends with a
// full transitive convergence check.
func genCascadeHistory(cfg CascadeConfig, hseed int64) []Event {
	gen := sim.NewOpGen(synthConfig(hseed, 0))
	rng := rand.New(rand.NewSource(hseed*2654435761 + 17))
	nLeaves := len(cascadeLeafSpecs())
	events := make([]Event, 0, cfg.Steps+nLeaves+1)
	for i := 0; i < cfg.Steps; i++ {
		r := rng.Float64()
		switch {
		case r < 0.55:
			events = append(events, Event{Kind: EvOp, Op: gen.Next()})
		case r < 0.72:
			events = append(events, Event{Kind: EvPoll, Rep: nLeaves, Lost: rng.Float64() < 0.15})
		case r < 0.94:
			events = append(events, Event{Kind: EvPoll, Rep: rng.Intn(nLeaves), Lost: rng.Float64() < 0.15})
		default:
			events = append(events, Event{Kind: EvEnd, Rep: rng.Intn(nLeaves)})
		}
	}
	events = append(events, Event{Kind: EvPoll, Rep: nLeaves})
	for i := 0; i < nLeaves; i++ {
		events = append(events, Event{Kind: EvPoll, Rep: i})
	}
	return events
}

// runCascadeEngine executes one cascade history, returning the first
// divergence (nil if the history converges throughout).
func runCascadeEngine(hseed int64, shards int, events []Event, rep *Report) *Failure {
	st, err := sim.BuildSynthStore(synthConfig(hseed, shards))
	if err != nil {
		return &Failure{HistorySeed: hseed, Msg: "build synthetic store: " + err.Error()}
	}
	frep, err := replica.NewFilterReplica()
	if err != nil {
		return &Failure{HistorySeed: hseed, Msg: "new mid replica: " + err.Error()}
	}
	h := &cascadeHarness{
		harness: &harness{seed: hseed, st: st, eng: resync.NewEngine(st), mdl: newModel(st), rep: rep},
		mid:     &midSt{spec: cascadeMidSpec(), frep: frep, eng: resync.NewEngine(frep.Store())},
	}
	if rep != nil {
		// Fold both tiers' update streams: master→mid and mid→leaf traffic
		// must be byte-identical across shard counts.
		fold := func(_ string, ups []resync.Update, _ bool) {
			rep.TrafficHash = foldUpdates(rep.TrafficHash, ups)
		}
		h.eng.SetObserver(fold)
		h.mid.eng.SetObserver(fold)
	}
	for _, spec := range cascadeLeafSpecs() {
		h.leaves = append(h.leaves, &replicaSt{spec: spec, content: make(map[string]*entry.Entry)})
	}
	nLeaves := len(h.leaves)
	for i, ev := range events {
		if rep != nil {
			rep.Events++
		}
		var f *Failure
		switch {
		case ev.Kind == EvOp:
			if !h.mdl.valid(ev.Op) {
				continue
			}
			if err := sim.ApplyOp(h.st, ev.Op); err != nil {
				f = h.fail("op %q valid in model but rejected by store: %v", ev.Op, err)
			} else {
				h.mdl.apply(ev.Op)
			}
		case ev.Kind == EvPoll && ev.Rep == nLeaves:
			f = h.midSync(ev.Lost)
		case ev.Kind == EvPoll:
			f = h.leafPoll(h.leaves[ev.Rep], ev.Lost)
		case ev.Kind == EvEnd:
			if r := h.leaves[ev.Rep]; r.begun {
				_ = h.mid.eng.End(r.cookie) // leaf learns on its next poll
			}
		}
		if f != nil {
			f.Step = i
			return f
		}
	}
	// The history tail forced a mid sync and a poll per leaf, so every leaf
	// must now transitively equal the selection over the MASTER's model —
	// the equation-3 composition across two tiers.
	for _, r := range h.leaves {
		if diff := describeDiff(r.content, h.mdl.selection(r.spec)); diff != "" {
			return h.fail("leaf %q not transitively converged to master content:\n%s", r.spec, diff)
		}
	}
	if rep != nil {
		rep.ContentHash = foldContent(rep.ContentHash, storeSnapshot(h.mid.frep))
		for _, r := range h.leaves {
			rep.ContentHash = foldContent(rep.ContentHash, r.content)
		}
		rep.ContentHash = foldEntries(rep.ContentHash, st.All())
	}
	return nil
}

// midSync performs one mid-tier exchange against the master engine and
// applies it to the mid replica exactly as cascade.Tier's supervisor does:
// incremental batches through ApplySync, full transfers by re-adding the
// stored query (a mass delete+add in the mid store's journal, which the
// downstream engine absorbs into net deltas).
func (h *cascadeHarness) midSync(lost bool) *Failure {
	m := h.mid
	var res *resync.PollResult
	var err error
	full := false
	if !m.begun {
		res, err = h.eng.Begin(m.spec)
		full = true
	} else {
		res, err = h.eng.Poll(m.cookie)
		if errors.Is(err, resync.ErrNoSuchSession) && !lost {
			res, err = h.eng.Begin(m.spec)
			full = true
		}
	}
	if lost {
		return nil // response dropped; mid re-polls its old sync point later
	}
	if err != nil {
		return h.fail("mid sync %q: %v", m.spec, err)
	}
	if h.rep != nil {
		h.rep.Polls++
	}
	if full || res.FullReload {
		for _, u := range res.Updates {
			if u.Action != resync.ActionAdd {
				return h.fail("mid full transfer contains %s PDU for %s", u.Action, u.DN)
			}
		}
		m.frep.RemoveStored(m.spec)
		m.frep.AddStored(m.spec, res.Cookie)
	}
	if err := m.frep.ApplySync(m.spec, res.Updates); err != nil {
		return h.fail("mid apply %q: %v", m.spec, err)
	}
	m.cookie, m.begun = res.Cookie, true
	if diff := describeDiff(storeSnapshot(m.frep), h.mdl.selection(m.spec)); diff != "" {
		return h.fail("mid tier diverged from master reference:\n%s", diff)
	}
	return nil
}

// leafSelection is the leaf's reference content: the brute-force selection
// over the MID's store (not the master's model) — a leaf can only be as
// fresh as its supplier.
func (h *cascadeHarness) leafSelection(spec query.Query) map[string]*entry.Entry {
	out := make(map[string]*entry.Entry)
	for _, e := range h.mid.frep.Store().All() {
		if !spec.InScope(e.DN()) {
			continue
		}
		if spec.Filter != nil && !spec.Filter.Matches(e) {
			continue
		}
		out[e.DN().Norm()] = e.Select(spec.Attrs)
	}
	return out
}

// leafPoll performs one leaf exchange against the mid-tier engine, with
// exact-minimality and convergence checks against the mid's store.
func (h *cascadeHarness) leafPoll(r *replicaSt, lost bool) *Failure {
	var res *resync.PollResult
	var err error
	full := false
	if !r.begun {
		res, err = h.mid.eng.Begin(r.spec)
		full = true
	} else {
		res, err = h.mid.eng.Poll(r.cookie)
		if errors.Is(err, resync.ErrNoSuchSession) && !lost {
			r.content = make(map[string]*entry.Entry)
			r.begun = false
			res, err = h.mid.eng.Begin(r.spec)
			full = true
		}
	}
	if lost {
		return nil
	}
	if err != nil {
		return h.fail("leaf poll %q: %v", r.spec, err)
	}
	if h.rep != nil {
		h.rep.Polls++
	}
	ref := h.leafSelection(r.spec)
	before := copyContent(r.content)
	if full || res.FullReload {
		r.content = make(map[string]*entry.Entry)
		for _, u := range res.Updates {
			if u.Action != resync.ActionAdd {
				return h.fail("leaf full transfer for %q contains %s PDU for %s", r.spec, u.Action, u.DN)
			}
			r.content[u.DN.Norm()] = u.Entry
		}
	} else {
		if f := h.applyIncremental(r, res.Updates); f != nil {
			return f
		}
		if f := h.checkMinimal(r.spec, before, ref, res.Updates, "cascade leaf poll"); f != nil {
			return f
		}
	}
	r.cookie, r.begun = res.Cookie, true
	if diff := describeDiff(r.content, ref); diff != "" {
		return h.fail("leaf %q diverged from mid-tier reference:\n%s", r.spec, diff)
	}
	return nil
}

// storeSnapshot captures a replica store's content by normalized DN.
func storeSnapshot(frep *replica.FilterReplica) map[string]*entry.Entry {
	out := make(map[string]*entry.Entry)
	for _, e := range frep.Store().All() {
		out[e.DN().Norm()] = e
	}
	return out
}

// RunCascade executes an engine-level cascade oracle run.
func RunCascade(cfg CascadeConfig) *Report {
	cfg.fillDefaults()
	rep := &Report{}
	for h := 0; h < cfg.Histories; h++ {
		hseed := historySeed(cfg.Seed, h)
		events := genCascadeHistory(cfg, hseed)
		if f := runCascadeEngine(hseed, cfg.Shards, events, rep); f != nil {
			f.History = events
			f.Minimal = shrinkEvents(events, func(ev []Event) bool {
				return runCascadeEngine(hseed, cfg.Shards, ev, nil) != nil
			})
			f.Replay = replayCmd("TestOracleCascadeSweep", hseed, cfg.Steps)
			rep.Failure = f
			return rep
		}
		rep.Histories++
	}
	return rep
}

// --- Wire-level cascade -----------------------------------------------------

// CascadeWireConfig parameterizes a wire-level three-tier run. Chaos is
// always on, on both the master↔tier and tier↔leaf links.
type CascadeWireConfig struct {
	Seed      int64
	Histories int
	Steps     int
}

func (c *CascadeWireConfig) fillDefaults() {
	if c.Histories <= 0 {
		c.Histories = 1
	}
	if c.Steps <= 0 {
		c.Steps = 18
	}
}

// genCascadeWireHistory: operations, convergence checkpoints, and
// server-side session ends against the TIER's engine (leaf sessions live
// at the mid-tier, not the master).
func genCascadeWireHistory(cfg CascadeWireConfig, hseed int64, nLeaves int) []Event {
	gen := sim.NewOpGen(synthWireConfig(hseed))
	rng := rand.New(rand.NewSource(hseed*40503 + 7))
	events := make([]Event, 0, cfg.Steps+1)
	for i := 0; i < cfg.Steps; i++ {
		r := rng.Float64()
		switch {
		case r < 0.72:
			events = append(events, Event{Kind: EvOp, Op: gen.Next()})
		case r < 0.92:
			events = append(events, Event{Kind: EvPoll})
		default:
			events = append(events, Event{Kind: EvEnd, Rep: rng.Intn(nLeaves)})
		}
	}
	return append(events, Event{Kind: EvPoll})
}

// RunCascadeWire executes wire-level three-tier histories.
func RunCascadeWire(cfg CascadeWireConfig) *Report {
	cfg.fillDefaults()
	rep := &Report{}
	for h := 0; h < cfg.Histories; h++ {
		hseed := historySeed(cfg.Seed, h)
		events := genCascadeWireHistory(cfg, hseed, 2)
		if f := runCascadeWire(hseed, events, rep); f != nil {
			f.History = events
			f.Replay = replayCmd("TestOracleCascadeWireSweep", hseed, cfg.Steps)
			rep.Failure = f
			return rep
		}
		rep.Histories++
	}
	return rep
}

// runCascadeWire stands up master → cascade.Tier → leaves with chaos on
// both links, plus one leaf whose spec the tier must reject (diverting it
// to the fallback master) and one leaf attached directly to the master for
// the indistinguishability check.
func runCascadeWire(hseed int64, events []Event, rep *Report) *Failure {
	st, err := sim.BuildSynthStore(synthWireConfig(hseed))
	if err != nil {
		return &Failure{HistorySeed: hseed, Msg: "build synthetic store: " + err.Error()}
	}
	mdl := newModel(st)
	backend := ldapnet.NewStoreBackend(st)

	chaosPlan := func(seed int64) chaos.Plan {
		return chaos.Plan{
			Seed:               seed,
			DropEveryNOps:      89,
			RefuseEveryNthConn: 9,
			LatencyMax:         300 * time.Microsecond,
		}
	}

	// Master link (tier and direct/fallback consumers dial through injA).
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return &Failure{HistorySeed: hseed, Msg: "listen: " + err.Error()}
	}
	injA := chaos.New(chaosPlan(hseed))
	masterAddr := lnA.Addr().String()
	masterSrv := ldapnet.ServeListener(injA.Listener(lnA), backend)
	defer masterSrv.Close()

	// Mid-tier over the real cascade subsystem.
	tier, err := cascade.New(cascade.Config{
		Upstream:     masterAddr,
		Specs:        []query.Query{cascadeMidSpec()},
		PollInterval: 3 * time.Millisecond,
		BackoffBase:  2 * time.Millisecond,
		BackoffMax:   40 * time.Millisecond,
		DialTimeout:  2 * time.Second,
		Seed:         hseed,
		Dial:         injA.Dial(nil),
	})
	if err != nil {
		return &Failure{HistorySeed: hseed, Msg: "new tier: " + err.Error()}
	}
	tier.Start()
	defer tier.Stop()

	// Tier link (leaves dial through injB).
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return &Failure{HistorySeed: hseed, Msg: "listen: " + err.Error()}
	}
	injB := chaos.New(chaosPlan(hseed + 101))
	tierAddr := lnB.Addr().String()
	tierSrv := ldapnet.ServeListener(injB.Listener(lnB),
		ldapnet.NewCascadeBackend(tier.Replica(), tier, "ldap://"+masterAddr))
	defer tierSrv.Close()

	type wireLeaf struct {
		frep *replica.FilterReplica
		sup  *supervisor.Supervisor
		spec query.Query
	}
	newLeaf := func(spec query.Query, upstream, fallback string, mode supervisor.Mode, dial ldapnet.DialFunc, i int) (*wireLeaf, *Failure) {
		frep, err := replica.NewFilterReplica()
		if err != nil {
			return nil, &Failure{HistorySeed: hseed, Msg: "new replica: " + err.Error()}
		}
		sup, err := supervisor.New(supervisor.Config{
			Master:             upstream,
			Fallback:           fallback,
			RetryUpstreamAfter: time.Hour,
			Spec:               spec,
			Mode:               mode,
			PollInterval:       3 * time.Millisecond,
			IdleTimeout:        300 * time.Millisecond,
			BackoffBase:        2 * time.Millisecond,
			BackoffMax:         40 * time.Millisecond,
			DialTimeout:        2 * time.Second,
			Seed:               hseed + int64(i),
			Dial:               dial,
		}, frep)
		if err != nil {
			return nil, &Failure{HistorySeed: hseed, Msg: "new supervisor: " + err.Error()}
		}
		sup.Start()
		return &wireLeaf{frep: frep, sup: sup, spec: spec}, nil
	}

	leafSpecs := cascadeLeafSpecs()[:2]
	var leaves []*wireLeaf
	defer func() {
		for _, w := range leaves {
			_ = w.sup.Stop()
		}
	}()
	for i, spec := range leafSpecs {
		mode := supervisor.ModePoll
		if i%2 == 1 {
			mode = supervisor.ModePersist
		}
		w, f := newLeaf(spec, tierAddr, masterAddr, mode, injB.Dial(nil), i)
		if f != nil {
			return f
		}
		leaves = append(leaves, w)
	}
	// The outsider's spec is not contained in the tier's stored queries:
	// it must be rejected and diverted to the fallback master.
	outSpec := query.MustNew(sim.SynthSuffix, query.ScopeSubtree, "(grp=2)")
	outsider, f := newLeaf(outSpec, tierAddr, masterAddr, supervisor.ModePoll, injB.Dial(nil), 7)
	if f != nil {
		return f
	}
	leaves = append(leaves, outsider)
	// Control replica: same spec as leaves[0], attached directly to the
	// master — the cascaded leaf must be indistinguishable from it.
	direct, f := newLeaf(leafSpecs[0], masterAddr, "", supervisor.ModePoll, injA.Dial(nil), 11)
	if f != nil {
		return f
	}
	leaves = append(leaves, direct)

	if rep != nil {
		defer func() {
			for _, w := range leaves {
				rep.Polls += int(w.sup.Exchanges())
			}
		}()
	}

	for i, ev := range events {
		if rep != nil {
			rep.Events++
		}
		switch ev.Kind {
		case EvOp:
			if !mdl.valid(ev.Op) {
				continue
			}
			if err := sim.ApplyOp(st, ev.Op); err != nil {
				return &Failure{HistorySeed: hseed, Step: i,
					Msg: fmt.Sprintf("op %q valid in model but rejected by store: %v", ev.Op, err)}
			}
			mdl.apply(ev.Op)
		case EvPoll: // checkpoint: tier first, then every leaf
			if f := waitTierConverged(tier, mdl, hseed); f != nil {
				f.Step = i
				return f
			}
			for ri, w := range leaves {
				if f := waitConverged(w.frep, w.sup, mdl, w.spec, ri, hseed); f != nil {
					f.Step = i
					return f
				}
			}
		case EvEnd: // operator abandons a leaf session at the TIER
			if c := leaves[ev.Rep].sup.Cookie(); c != "" {
				_ = tier.Engine().End(c)
			}
		}
	}

	// Topology assertions: the outsider was rejected by the tier and now
	// synchronizes against the fallback master; the cascaded leaf is
	// indistinguishable from the directly-attached control.
	if got := tier.Counters().Rejected.Load(); got < 1 {
		return &Failure{HistorySeed: hseed,
			Msg: fmt.Sprintf("tier rejected %d sessions, want >= 1 (outsider spec %q)", got, outSpec)}
	}
	if got := outsider.sup.Counters().UpstreamFallbacks.Load(); got < 1 {
		return &Failure{HistorySeed: hseed, Msg: "outsider leaf never diverted to the fallback master"}
	}
	if got := outsider.sup.Target(); got != masterAddr {
		return &Failure{HistorySeed: hseed,
			Msg: fmt.Sprintf("outsider target = %s, want fallback master %s", got, masterAddr)}
	}
	if got := tier.Counters().Admitted.Load(); got < int64(len(leafSpecs)) {
		return &Failure{HistorySeed: hseed,
			Msg: fmt.Sprintf("tier admitted %d sessions, want >= %d", got, len(leafSpecs))}
	}
	if diff := describeDiff(wireSnapshot(leaves[0].frep), wireSnapshot(direct.frep)); diff != "" {
		return &Failure{HistorySeed: hseed,
			Msg: "leaf-via-tier differs from leaf-attached-direct after convergence:\n" + diff}
	}
	return nil
}

// waitTierConverged blocks until the tier's store equals the reference
// selection of the mid spec.
func waitTierConverged(tier *cascade.Tier, mdl model, hseed int64) *Failure {
	spec := cascadeMidSpec()
	ref := mdl.selection(spec)
	deadline := time.Now().Add(15 * time.Second)
	for {
		got := make(map[string]*entry.Entry)
		for _, e := range tier.Replica().Store().All() {
			got[e.DN().Norm()] = e
		}
		diff := describeDiff(got, ref)
		if diff == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return &Failure{HistorySeed: hseed, Msg: fmt.Sprintf(
				"mid tier (%q) did not converge within 15s:\n%s", spec, diff)}
		}
		time.Sleep(2 * time.Millisecond)
	}
}
