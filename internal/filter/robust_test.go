package filter

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseNeverPanics feeds the parser random byte soup and structured
// garbage; it must return errors, never panic, and anything it accepts must
// survive a print/reparse round trip.
func TestParseNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	alphabet := []byte("()&|!=<>~*\\abz019 _.")
	for i := 0; i < 20000; i++ {
		n := r.Intn(40)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[r.Intn(len(alphabet))]
		}
		s := string(b)
		f, err := Parse(s)
		if err != nil {
			continue
		}
		printed := f.String()
		rt, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q, printed %q, reparse failed: %v", s, printed, err)
		}
		if rt.String() != printed {
			t.Fatalf("unstable round trip: %q -> %q -> %q", s, printed, rt.String())
		}
	}
}

// TestParseDeepNesting guards the parser against stack abuse from deeply
// nested filters.
func TestParseDeepNesting(t *testing.T) {
	depth := 10000
	s := strings.Repeat("(!", depth) + "(a=1)" + strings.Repeat(")", depth)
	f, err := Parse(s)
	if err != nil {
		// Rejecting is acceptable; panicking is not (the call above would
		// have crashed the test).
		return
	}
	// Normalization of a deep NOT chain must also hold up.
	n := f.Normalize()
	if n == nil {
		t.Fatal("normalize returned nil")
	}
}

// TestNormalizeIdempotent checks Normalize(Normalize(f)) == Normalize(f).
func TestNormalizeIdempotent(t *testing.T) {
	filters := []string{
		"(&(b=2)(a=1)(&(c=3)(d=4)))",
		"(|(a=1)(|(b=2)(a=1)))",
		"(!(|(a=1)(b=2)))",
		"(&(objectclass=*)(sn=smi*))",
		"(&)",
		"(|)",
	}
	for _, s := range filters {
		once := MustParse(s).Normalize()
		twice := once.Normalize()
		if once.String() != twice.String() {
			t.Errorf("Normalize not idempotent for %s: %s vs %s", s, once, twice)
		}
	}
}

// TestTemplateStableUnderNormalize checks that equal filters modulo value
// differences keep equal templates after normalization.
func TestTemplateStableUnderNormalize(t *testing.T) {
	a := MustParse("(&(div=sw)(dept=2406))").Normalize().Template()
	b := MustParse("(&(dept=11)(div=hw))").Normalize().Template()
	if a != b {
		t.Errorf("templates diverge after normalize: %q vs %q", a, b)
	}
}
