package filter

import (
	"strings"
)

// String renders the filter in RFC 2254 form with required escaping. Negated
// predicates (from NNF) render as (!(...)).
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *Node) write(b *strings.Builder) {
	if n == nil {
		return
	}
	if n.Neg {
		b.WriteString("(!")
		pos := *n
		pos.Neg = false
		pos.write(b)
		b.WriteByte(')')
		return
	}
	switch n.Op {
	case And, Or:
		b.WriteByte('(')
		if n.Op == And {
			b.WriteByte('&')
		} else {
			b.WriteByte('|')
		}
		for _, c := range n.Children {
			c.write(b)
		}
		b.WriteByte(')')
	case Not:
		b.WriteString("(!")
		if len(n.Children) > 0 {
			n.Children[0].write(b)
		}
		b.WriteByte(')')
	case EQ:
		b.WriteByte('(')
		b.WriteString(n.Attr)
		b.WriteByte('=')
		b.WriteString(escapeAssertion(n.Value))
		b.WriteByte(')')
	case GE:
		b.WriteByte('(')
		b.WriteString(n.Attr)
		b.WriteString(">=")
		b.WriteString(escapeAssertion(n.Value))
		b.WriteByte(')')
	case LE:
		b.WriteByte('(')
		b.WriteString(n.Attr)
		b.WriteString("<=")
		b.WriteString(escapeAssertion(n.Value))
		b.WriteByte(')')
	case Present:
		b.WriteByte('(')
		b.WriteString(n.Attr)
		b.WriteString("=*)")
	case Substr:
		b.WriteByte('(')
		b.WriteString(n.Attr)
		b.WriteByte('=')
		writeSubstring(b, n.Sub)
		b.WriteByte(')')
	case True:
		b.WriteString("(&)")
	case False:
		b.WriteString("(|)")
	}
}

func writeSubstring(b *strings.Builder, s *Substring) {
	if s == nil {
		b.WriteByte('*')
		return
	}
	b.WriteString(escapeAssertion(s.Initial))
	b.WriteByte('*')
	for _, a := range s.Any {
		b.WriteString(escapeAssertion(a))
		b.WriteByte('*')
	}
	b.WriteString(escapeAssertion(s.Final))
}

// escapeAssertion applies RFC 2254 escaping: '*', '(', ')', '\' and NUL are
// written as backslash plus two hex digits.
func escapeAssertion(s string) string {
	if !strings.ContainsAny(s, "*()\\\x00") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '*':
			b.WriteString(`\2a`)
		case '(':
			b.WriteString(`\28`)
		case ')':
			b.WriteString(`\29`)
		case '\\':
			b.WriteString(`\5c`)
		case 0:
			b.WriteString(`\00`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}
