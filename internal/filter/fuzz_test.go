package filter

import "testing"

// FuzzParseFilter feeds arbitrary strings to the LDAP filter parser.
// Property: Parse never panics, and for every accepted filter the printed
// form is a parse/print fixed point: it parses again and prints
// identically (the canonical form the containment checker keys on).
func FuzzParseFilter(f *testing.F) {
	f.Add("(cn=e*)")
	f.Add("(&(grp=0)(val>=2))")
	f.Add("(|(grp=2)(val=0))")
	f.Add("(!(objectclass=person))")
	f.Add("(&(a=1)(|(b=*)(c<=3))(!(d=x\\2ay)))")
	f.Add("(cn=*mid*dle*)")
	f.Add("(cn>=)")
	f.Add("(&)")
	f.Add("((a=b))")
	f.Add("(a=b")
	f.Add("")
	f.Add("(objectclass=*)")

	f.Fuzz(func(t *testing.T, s string) {
		n, err := Parse(s)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		printed := n.String()
		n2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed filter %q (from %q) does not re-parse: %v", printed, s, err)
		}
		if again := n2.String(); again != printed {
			t.Fatalf("print not a fixed point: %q -> %q (input %q)", printed, again, s)
		}
	})
}
