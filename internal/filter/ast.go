// Package filter implements LDAP search filters per RFC 2254: parsing,
// printing, evaluation against entries, canonical normalization, templates
// (query prototypes with assertion values elided), negation normal form, and
// disjunctive normal form. These are the building blocks of the paper's
// query-containment machinery (internal/containment).
package filter

import (
	"errors"
	"sort"
	"strings"
)

// Op identifies the kind of a filter node.
type Op int

// Filter node kinds. And/Or/Not are boolean combinators; the remainder are
// simple predicates on a single attribute.
const (
	And Op = iota + 1
	Or
	Not
	EQ      // (attr=value) equality
	GE      // (attr>=value) greater-or-equal
	LE      // (attr<=value) less-or-equal
	Present // (attr=*)
	Substr  // (attr=initial*any*...*final)
	True    // (&) absolute true, RFC 4526
	False   // (|) absolute false, RFC 4526
)

func (o Op) String() string {
	switch o {
	case And:
		return "AND"
	case Or:
		return "OR"
	case Not:
		return "NOT"
	case EQ:
		return "EQ"
	case GE:
		return "GE"
	case LE:
		return "LE"
	case Present:
		return "PRESENT"
	case Substr:
		return "SUBSTR"
	case True:
		return "TRUE"
	case False:
		return "FALSE"
	default:
		return "INVALID"
	}
}

// Substring is the decomposition of a substring assertion
// initial*any1*any2*...*final. Empty components are absent.
type Substring struct {
	Initial string
	Any     []string
	Final   string
}

// clone returns a deep copy.
func (s *Substring) clone() *Substring {
	if s == nil {
		return nil
	}
	c := &Substring{Initial: s.Initial, Final: s.Final}
	c.Any = append(c.Any, s.Any...)
	return c
}

// Node is a filter AST node. Combinator nodes (And, Or, Not) use Children;
// predicate nodes use Attr plus Value or Sub. Neg marks a negated predicate
// in negation normal form (it is never produced by Parse, only by NNF).
type Node struct {
	Op       Op
	Children []*Node
	Attr     string // normalized lower-case attribute type
	Value    string // assertion value for EQ/GE/LE
	Sub      *Substring
	Neg      bool
}

// ErrTooComplex reports a normal-form expansion exceeding safe bounds.
var ErrTooComplex = errors.New("filter too complex")

// NewEQ builds an equality predicate.
func NewEQ(attr, value string) *Node {
	return &Node{Op: EQ, Attr: strings.ToLower(attr), Value: value}
}

// NewGE builds a greater-or-equal predicate.
func NewGE(attr, value string) *Node {
	return &Node{Op: GE, Attr: strings.ToLower(attr), Value: value}
}

// NewLE builds a less-or-equal predicate.
func NewLE(attr, value string) *Node {
	return &Node{Op: LE, Attr: strings.ToLower(attr), Value: value}
}

// NewPresent builds a presence predicate (attr=*).
func NewPresent(attr string) *Node {
	return &Node{Op: Present, Attr: strings.ToLower(attr)}
}

// NewSubstr builds a substring predicate.
func NewSubstr(attr string, sub Substring) *Node {
	return &Node{Op: Substr, Attr: strings.ToLower(attr), Sub: &sub}
}

// NewAnd conjoins filters.
func NewAnd(children ...*Node) *Node { return &Node{Op: And, Children: children} }

// NewOr disjoins filters.
func NewOr(children ...*Node) *Node { return &Node{Op: Or, Children: children} }

// NewNot negates a filter.
func NewNot(child *Node) *Node { return &Node{Op: Not, Children: []*Node{child}} }

// Clone returns a deep copy of the filter.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Op: n.Op, Attr: n.Attr, Value: n.Value, Neg: n.Neg, Sub: n.Sub.clone()}
	for _, ch := range n.Children {
		c.Children = append(c.Children, ch.Clone())
	}
	return c
}

// IsPredicate reports whether the node is a simple predicate (not a
// combinator or constant).
func (n *Node) IsPredicate() bool {
	switch n.Op {
	case EQ, GE, LE, Present, Substr:
		return true
	default:
		return false
	}
}

// IsPositive reports whether the filter contains no NOT operators and no
// negated predicates. The paper's Propositions 2 and 3 apply to positive
// filters.
func (n *Node) IsPositive() bool {
	if n.Op == Not || n.Neg {
		return false
	}
	for _, c := range n.Children {
		if !c.IsPositive() {
			return false
		}
	}
	return true
}

// Attrs returns the sorted set of attribute types referenced by the filter.
func (n *Node) Attrs() []string {
	set := make(map[string]bool)
	n.walk(func(m *Node) {
		if m.IsPredicate() {
			set[m.Attr] = true
		}
	})
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Predicates returns the predicate nodes in left-to-right order.
func (n *Node) Predicates() []*Node {
	var out []*Node
	n.walk(func(m *Node) {
		if m.IsPredicate() {
			out = append(out, m)
		}
	})
	return out
}

// Size returns the number of nodes in the filter.
func (n *Node) Size() int {
	count := 0
	n.walk(func(*Node) { count++ })
	return count
}

func (n *Node) walk(f func(*Node)) {
	if n == nil {
		return
	}
	f(n)
	for _, c := range n.Children {
		c.walk(f)
	}
}
