package filter

import (
	"errors"
	"fmt"
	"strings"
)

// ErrInvalidFilter reports a malformed RFC 2254 filter string.
var ErrInvalidFilter = errors.New("invalid filter")

// Parse parses an RFC 2254 filter string such as
// (&(objectclass=inetOrgPerson)(departmentNumber=240*)). The approximate
// match operator "~=" is accepted and treated as equality. (&) parses to the
// absolute-true filter and (|) to absolute-false (RFC 4526).
func Parse(s string) (*Node, error) {
	p := &parser{s: strings.TrimSpace(s)}
	n, err := p.parseFilter()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("%w: trailing data at offset %d in %q", ErrInvalidFilter, p.pos, p.s)
	}
	return n, nil
}

// MustParse is Parse that panics on error; intended for tests and constants.
func MustParse(s string) *Node {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	s   string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%w: %s at offset %d in %q",
		ErrInvalidFilter, fmt.Sprintf(format, args...), p.pos, p.s)
}

func (p *parser) peek() (byte, bool) {
	if p.pos >= len(p.s) {
		return 0, false
	}
	return p.s[p.pos], true
}

func (p *parser) expect(c byte) error {
	if got, ok := p.peek(); !ok || got != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *parser) parseFilter() (*Node, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	c, ok := p.peek()
	if !ok {
		return nil, p.errf("unexpected end of input")
	}
	var n *Node
	var err error
	switch c {
	case '&':
		p.pos++
		n, err = p.parseSet(And)
	case '|':
		p.pos++
		n, err = p.parseSet(Or)
	case '!':
		p.pos++
		var child *Node
		child, err = p.parseFilter()
		if err == nil {
			n = NewNot(child)
		}
	default:
		n, err = p.parseSimple()
	}
	if err != nil {
		return nil, err
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return n, nil
}

// parseSet parses the children of an AND/OR set. Empty sets produce the
// RFC 4526 constants: (&) is TRUE, (|) is FALSE.
func (p *parser) parseSet(op Op) (*Node, error) {
	var children []*Node
	for {
		c, ok := p.peek()
		if !ok {
			return nil, p.errf("unterminated filter set")
		}
		if c == ')' {
			break
		}
		child, err := p.parseFilter()
		if err != nil {
			return nil, err
		}
		children = append(children, child)
	}
	if len(children) == 0 {
		if op == And {
			return &Node{Op: True}, nil
		}
		return &Node{Op: False}, nil
	}
	return &Node{Op: op, Children: children}, nil
}

// parseSimple parses attr OP value up to the closing parenthesis.
func (p *parser) parseSimple() (*Node, error) {
	start := p.pos
	for {
		c, ok := p.peek()
		if !ok {
			return nil, p.errf("unterminated predicate")
		}
		if c == '=' || c == '>' || c == '<' || c == '~' {
			break
		}
		if c == '(' || c == ')' {
			return nil, p.errf("unexpected %q in attribute type", string(c))
		}
		p.pos++
	}
	attr := strings.ToLower(strings.TrimSpace(p.s[start:p.pos]))
	if attr == "" {
		return nil, p.errf("empty attribute type")
	}

	var op Op
	switch p.s[p.pos] {
	case '=':
		op = EQ
		p.pos++
	case '>', '<', '~':
		kind := p.s[p.pos]
		p.pos++
		if err := p.expect('='); err != nil {
			return nil, err
		}
		switch kind {
		case '>':
			op = GE
		case '<':
			op = LE
		default:
			op = EQ // approx treated as equality
		}
	}

	raw, err := p.scanValue()
	if err != nil {
		return nil, err
	}
	if op != EQ {
		v, err := unescapeAssertion(raw)
		if err != nil {
			return nil, p.errf("bad assertion value: %v", err)
		}
		if strings.Contains(raw, "*") {
			return nil, p.errf("wildcard not allowed with ordering match")
		}
		return &Node{Op: op, Attr: attr, Value: v}, nil
	}
	// Equality family: presence, substring, or plain equality.
	if raw == "*" {
		return &Node{Op: Present, Attr: attr}, nil
	}
	if strings.Contains(raw, "*") {
		sub, err := parseSubstring(raw)
		if err != nil {
			return nil, p.errf("bad substring: %v", err)
		}
		return &Node{Op: Substr, Attr: attr, Sub: sub}, nil
	}
	v, err := unescapeAssertion(raw)
	if err != nil {
		return nil, p.errf("bad assertion value: %v", err)
	}
	return &Node{Op: EQ, Attr: attr, Value: v}, nil
}

// scanValue reads the raw (still-escaped) assertion value up to the closing
// parenthesis of the predicate.
func (p *parser) scanValue() (string, error) {
	start := p.pos
	for {
		c, ok := p.peek()
		if !ok {
			return "", p.errf("unterminated assertion value")
		}
		if c == ')' {
			return p.s[start:p.pos], nil
		}
		if c == '(' {
			return "", p.errf("unescaped '(' in assertion value")
		}
		if c == '\\' {
			// RFC 2254 escape: backslash plus two hex digits.
			if p.pos+2 >= len(p.s) || !isHex(p.s[p.pos+1]) || !isHex(p.s[p.pos+2]) {
				return "", p.errf("bad escape sequence")
			}
			p.pos += 3
			continue
		}
		p.pos++
	}
}

// parseSubstring splits a raw substring assertion on unescaped stars.
func parseSubstring(raw string) (*Substring, error) {
	parts := strings.Split(raw, "*")
	if len(parts) < 2 {
		return nil, errors.New("no wildcard")
	}
	out := make([]string, len(parts))
	for i, part := range parts {
		v, err := unescapeAssertion(part)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	sub := &Substring{Initial: out[0], Final: out[len(out)-1]}
	for _, mid := range out[1 : len(out)-1] {
		if mid != "" {
			sub.Any = append(sub.Any, mid)
		}
	}
	if sub.Initial == "" && sub.Final == "" && len(sub.Any) == 0 {
		return nil, errors.New("substring with no components (use presence)")
	}
	return sub, nil
}

// unescapeAssertion resolves RFC 2254 \XX escapes.
func unescapeAssertion(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		if i+2 >= len(s) || !isHex(s[i+1]) || !isHex(s[i+2]) {
			return "", errors.New("bad escape sequence")
		}
		b.WriteByte(hexVal(s[i+1])<<4 | hexVal(s[i+2]))
		i += 2
	}
	return b.String(), nil
}

func isHex(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func hexVal(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	default:
		return c - 'A' + 10
	}
}
