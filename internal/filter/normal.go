package filter

import (
	"fmt"
	"sort"
)

// Normalize returns a canonical equivalent filter: nested same-op sets are
// flattened, duplicate children removed, children sorted by their canonical
// string, single-child sets collapsed, double negations eliminated, and
// boolean constants folded. Two filters with the same Normalize().String()
// are syntactically equivalent.
func (n *Node) Normalize() *Node {
	if n == nil {
		return nil
	}
	switch n.Op {
	case And, Or:
		var kids []*Node
		for _, c := range n.Children {
			nc := c.Normalize()
			// Flatten nested same-op sets.
			if nc.Op == n.Op {
				kids = append(kids, nc.Children...)
				continue
			}
			// Constant folding.
			if nc.Op == True {
				if n.Op == Or {
					return &Node{Op: True}
				}
				continue // True inside And is a no-op
			}
			if nc.Op == False {
				if n.Op == And {
					return &Node{Op: False}
				}
				continue // False inside Or is a no-op
			}
			kids = append(kids, nc)
		}
		if len(kids) == 0 {
			if n.Op == And {
				return &Node{Op: True}
			}
			return &Node{Op: False}
		}
		// Sort and deduplicate by canonical string.
		sort.Slice(kids, func(i, j int) bool { return kids[i].String() < kids[j].String() })
		uniq := kids[:1]
		for _, k := range kids[1:] {
			if k.String() != uniq[len(uniq)-1].String() {
				uniq = append(uniq, k)
			}
		}
		if len(uniq) == 1 {
			return uniq[0]
		}
		return &Node{Op: n.Op, Children: uniq}
	case Not:
		if len(n.Children) == 0 {
			return &Node{Op: False}
		}
		c := n.Children[0].Normalize()
		switch c.Op {
		case Not:
			return c.Children[0]
		case True:
			return &Node{Op: False}
		case False:
			return &Node{Op: True}
		}
		if c.Neg {
			cc := c.Clone()
			cc.Neg = false
			return cc
		}
		return NewNot(c)
	default:
		return n.Clone()
	}
}

// NNF converts the filter to negation normal form: NOT nodes are pushed down
// through AND/OR via De Morgan's laws until they apply only to predicates,
// which are marked with Neg. The result contains no Not nodes.
func (n *Node) NNF() *Node {
	return nnf(n, false)
}

func nnf(n *Node, negate bool) *Node {
	if n == nil {
		return nil
	}
	switch n.Op {
	case True:
		if negate {
			return &Node{Op: False}
		}
		return &Node{Op: True}
	case False:
		if negate {
			return &Node{Op: True}
		}
		return &Node{Op: False}
	case Not:
		if len(n.Children) == 0 {
			return &Node{Op: False}
		}
		return nnf(n.Children[0], !negate)
	case And, Or:
		op := n.Op
		if negate {
			if op == And {
				op = Or
			} else {
				op = And
			}
		}
		out := &Node{Op: op}
		for _, c := range n.Children {
			out.Children = append(out.Children, nnf(c, negate))
		}
		return out
	default:
		c := n.Clone()
		if negate {
			c.Neg = !c.Neg
		}
		return c
	}
}

// Literal is a possibly-negated simple predicate appearing in a DNF conjunct.
type Literal struct {
	// Pred is a predicate node (EQ/GE/LE/Present/Substr) with Neg cleared.
	Pred *Node
	// Negated reports whether the literal is the predicate's negation.
	Negated bool
}

// String renders the literal as a filter fragment.
func (l Literal) String() string {
	if l.Negated {
		return "(!" + l.Pred.String() + ")"
	}
	return l.Pred.String()
}

// maxDNFConjuncts bounds DNF expansion. The paper's filters are small
// (template-driven, a handful of predicates); anything past this bound is
// pathological and containment falls back to a conservative answer.
const maxDNFConjuncts = 4096

// DNF converts the filter into disjunctive normal form: a slice of
// conjuncts, each a slice of literals. An empty outer slice means the filter
// is unsatisfiable (False); a conjunct of length zero means True.
// Returns ErrTooComplex if expansion would exceed maxDNFConjuncts conjuncts.
func (n *Node) DNF() ([][]Literal, error) {
	return dnf(n.NNF())
}

func dnf(n *Node) ([][]Literal, error) {
	switch n.Op {
	case True:
		return [][]Literal{{}}, nil
	case False:
		return nil, nil
	case Or:
		var out [][]Literal
		for _, c := range n.Children {
			d, err := dnf(c)
			if err != nil {
				return nil, err
			}
			out = append(out, d...)
			if len(out) > maxDNFConjuncts {
				return nil, fmt.Errorf("%w: DNF exceeds %d conjuncts", ErrTooComplex, maxDNFConjuncts)
			}
		}
		return out, nil
	case And:
		out := [][]Literal{{}}
		for _, c := range n.Children {
			d, err := dnf(c)
			if err != nil {
				return nil, err
			}
			if len(d) == 0 {
				return nil, nil // conjunct with False is False
			}
			if len(out)*len(d) > maxDNFConjuncts {
				return nil, fmt.Errorf("%w: DNF exceeds %d conjuncts", ErrTooComplex, maxDNFConjuncts)
			}
			next := make([][]Literal, 0, len(out)*len(d))
			for _, a := range out {
				for _, b := range d {
					merged := make([]Literal, 0, len(a)+len(b))
					merged = append(merged, a...)
					merged = append(merged, b...)
					next = append(next, merged)
				}
			}
			out = next
		}
		return out, nil
	case Not:
		// NNF removed all Not nodes.
		return nil, fmt.Errorf("%w: unexpected NOT in NNF", ErrTooComplex)
	default:
		pred := n.Clone()
		neg := pred.Neg
		pred.Neg = false
		return [][]Literal{{{Pred: pred, Negated: neg}}}, nil
	}
}
