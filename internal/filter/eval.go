package filter

import (
	"filterdir/internal/entry"
)

// Matches evaluates the filter against an entry using the standard matching
// rules (case-insensitive equality and substrings, integer-aware ordering).
// A predicate on an absent attribute evaluates to false; its negation
// therefore evaluates to true, matching LDAP's treatment of Undefined under
// NOT for the purposes of this system (strict three-valued semantics would
// make (!(a=b)) undefined for entries lacking a; the paper's replication
// algorithms operate on positive filters where the distinction never
// arises).
func (n *Node) Matches(e *entry.Entry) bool {
	if n == nil {
		return true
	}
	res := n.matchesPositive(e)
	if n.Neg {
		return !res
	}
	return res
}

func (n *Node) matchesPositive(e *entry.Entry) bool {
	switch n.Op {
	case True:
		return true
	case False:
		return false
	case And:
		for _, c := range n.Children {
			if !c.Matches(e) {
				return false
			}
		}
		return true
	case Or:
		for _, c := range n.Children {
			if c.Matches(e) {
				return true
			}
		}
		return false
	case Not:
		if len(n.Children) == 0 {
			return false
		}
		return !n.Children[0].Matches(e)
	case Present:
		return e.Has(n.Attr)
	case EQ:
		for _, v := range e.Values(n.Attr) {
			if entry.EqualValues(v, n.Value) {
				return true
			}
		}
		return false
	case GE:
		kind := entry.OrderingFor(n.Attr)
		for _, v := range e.Values(n.Attr) {
			if cmp, ok := entry.CompareOrdered(kind, v, n.Value); ok && cmp >= 0 {
				return true
			}
		}
		return false
	case LE:
		kind := entry.OrderingFor(n.Attr)
		for _, v := range e.Values(n.Attr) {
			if cmp, ok := entry.CompareOrdered(kind, v, n.Value); ok && cmp <= 0 {
				return true
			}
		}
		return false
	case Substr:
		if n.Sub == nil {
			return e.Has(n.Attr)
		}
		for _, v := range e.Values(n.Attr) {
			if entry.MatchSubstring(v, n.Sub.Initial, n.Sub.Any, n.Sub.Final) {
				return true
			}
		}
		return false
	default:
		return false
	}
}
