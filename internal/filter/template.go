package filter

import (
	"strings"
)

// Template returns the filter's template string per Section 3.4.2 of the
// paper: the RFC 2254 representation with every assertion value replaced by
// the "_" character. Substring assertions keep their wildcard structure with
// each non-empty component replaced by "_", so (sn=smi*) has template (sn=_*)
// and (sn=*mi*th) has template (sn=*_*_). Presence assertions keep "*".
//
// Two queries generated from the same application prototype produce the same
// template, which is what makes template-indexed containment effective.
func (n *Node) Template() string {
	var b strings.Builder
	writeTemplate(&b, n)
	return b.String()
}

func writeTemplate(b *strings.Builder, n *Node) {
	if n == nil {
		return
	}
	if n.Neg {
		b.WriteString("(!")
		pos := *n
		pos.Neg = false
		writeTemplate(b, &pos)
		b.WriteByte(')')
		return
	}
	switch n.Op {
	case And, Or:
		b.WriteByte('(')
		if n.Op == And {
			b.WriteByte('&')
		} else {
			b.WriteByte('|')
		}
		for _, c := range n.Children {
			writeTemplate(b, c)
		}
		b.WriteByte(')')
	case Not:
		b.WriteString("(!")
		if len(n.Children) > 0 {
			writeTemplate(b, n.Children[0])
		}
		b.WriteByte(')')
	case EQ:
		b.WriteByte('(')
		b.WriteString(n.Attr)
		b.WriteString("=_)")
	case GE:
		b.WriteByte('(')
		b.WriteString(n.Attr)
		b.WriteString(">=_)")
	case LE:
		b.WriteByte('(')
		b.WriteString(n.Attr)
		b.WriteString("<=_)")
	case Present:
		b.WriteByte('(')
		b.WriteString(n.Attr)
		b.WriteString("=*)")
	case Substr:
		b.WriteByte('(')
		b.WriteString(n.Attr)
		b.WriteByte('=')
		writeSubstringTemplate(b, n.Sub)
		b.WriteByte(')')
	case True:
		b.WriteString("(&)")
	case False:
		b.WriteString("(|)")
	}
}

func writeSubstringTemplate(b *strings.Builder, s *Substring) {
	if s == nil {
		b.WriteByte('*')
		return
	}
	if s.Initial != "" {
		b.WriteByte('_')
	}
	b.WriteByte('*')
	for range s.Any {
		b.WriteString("_*")
	}
	if s.Final != "" {
		b.WriteByte('_')
	}
}

// TemplateOf parses a filter string and returns its template; it is a
// convenience for workload and metadata code.
func TemplateOf(s string) (string, error) {
	n, err := Parse(s)
	if err != nil {
		return "", err
	}
	return n.Normalize().Template(), nil
}

// SlotValues returns the assertion values of the filter's predicates in the
// left-to-right order that Template visits them. Presence predicates
// contribute no slots; substring predicates contribute one slot per
// non-empty component (initial, each any, final). For two filters with equal
// templates, slot i of one corresponds to slot i of the other — the basis of
// Proposition 3 same-template containment.
func (n *Node) SlotValues() []string {
	var out []string
	collectSlots(n, &out)
	return out
}

func collectSlots(n *Node, out *[]string) {
	if n == nil {
		return
	}
	switch n.Op {
	case And, Or, Not:
		for _, c := range n.Children {
			collectSlots(c, out)
		}
	case EQ, GE, LE:
		*out = append(*out, n.Value)
	case Substr:
		if n.Sub == nil {
			return
		}
		if n.Sub.Initial != "" {
			*out = append(*out, n.Sub.Initial)
		}
		*out = append(*out, n.Sub.Any...)
		if n.Sub.Final != "" {
			*out = append(*out, n.Sub.Final)
		}
	}
}
