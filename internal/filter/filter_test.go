package filter

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"filterdir/internal/dn"
	"filterdir/internal/entry"
)

func TestParseValid(t *testing.T) {
	tests := []struct {
		in  string
		op  Op
		str string // expected canonical String(), "" means same as in
	}{
		{in: "(sn=Doe)", op: EQ},
		{in: "(objectclass=*)", op: Present},
		{in: "(age>=30)", op: GE},
		{in: "(age<=30)", op: LE},
		{in: "(sn~=doe)", op: EQ, str: "(sn=doe)"},
		{in: "(sn=smith*)", op: Substr},
		{in: "(sn=*smith)", op: Substr},
		{in: "(sn=s*mi*th)", op: Substr},
		{in: "(&(sn=Doe)(givenName=John))", op: And, str: "(&(sn=Doe)(givenname=John))"},
		{in: "(|(sn=Doe)(sn=Smith))", op: Or},
		{in: "(!(sn=Doe))", op: Not},
		{in: "(&(objectclass=inetOrgPerson)(departmentNumber=240*))", op: And, str: "(&(objectclass=inetOrgPerson)(departmentnumber=240*))"},
		{in: "(&)", op: True},
		{in: "(|)", op: False},
		{in: "(cn=a\\2ab)", op: EQ, str: "(cn=a\\2ab)"},
		{in: "(SN=Doe)", op: EQ, str: "(sn=Doe)"},
		{in: "(&(a=1)(|(b=2)(c=3)))", op: And},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			n, err := Parse(tt.in)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if n.Op != tt.op {
				t.Errorf("Op = %v, want %v", n.Op, tt.op)
			}
			want := tt.str
			if want == "" {
				want = tt.in
			}
			if got := n.String(); got != want {
				t.Errorf("String() = %q, want %q", got, want)
			}
		})
	}
}

func TestParseInvalid(t *testing.T) {
	bad := []string{
		"",
		"sn=Doe",
		"(sn=Doe",
		"(sn=Doe))",
		"((sn=Doe))",
		"(=x)",
		"(sn>30)",
		"(sn>=3*0)",
		"(!(sn=a)(sn=b))",
		"(&(sn=a)",
		"(sn=a\\zz)",
		"(sn=a(b)",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	filters := []string{
		"(sn=Doe)",
		"(&(sn=Doe)(givenName=John))",
		"(|(a=1)(b=2)(c=3))",
		"(!(&(a=1)(b=2)))",
		"(sn=smi*th*son)",
		"(serialNumber=04*)",
		"(cn=John \\28Jack\\29 Doe)",
		"(&(objectclass=inetOrgPerson)(departmentNumber=2406))",
	}
	for _, s := range filters {
		n, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		rt, err := Parse(n.String())
		if err != nil {
			t.Errorf("reparse of %q -> %q: %v", s, n.String(), err)
			continue
		}
		if rt.String() != n.String() {
			t.Errorf("round trip unstable: %q -> %q -> %q", s, n.String(), rt.String())
		}
	}
}

func testEntry() *entry.Entry {
	e := entry.New(dn.MustParse("cn=John Doe,ou=research,c=us,o=xyz"))
	e.Put("objectclass", "top", "person", "inetOrgPerson")
	e.Put("cn", "John Doe", "John M Doe")
	e.Put("sn", "Doe")
	e.Put("serialNumber", "0456")
	e.Put("departmentNumber", "2406")
	e.Put("age", "35")
	e.Put("mail", "john@us.xyz.com")
	return e
}

func TestMatches(t *testing.T) {
	e := testEntry()
	tests := []struct {
		f    string
		want bool
	}{
		{"(sn=Doe)", true},
		{"(sn=doe)", true}, // case-insensitive
		{"(sn=Smith)", false},
		{"(cn=John M Doe)", true}, // any value matches
		{"(objectclass=*)", true},
		{"(missing=*)", false},
		{"(age>=30)", true},
		{"(age>=40)", false},
		{"(age<=35)", true},
		{"(age<=34)", false},
		{"(serialNumber=04*)", true},
		{"(serialNumber=05*)", false},
		{"(serialNumber=*56)", true},
		{"(serialNumber=0*5*)", true},
		{"(mail=*@us.xyz.com)", true},
		{"(&(sn=Doe)(age>=30))", true},
		{"(&(sn=Doe)(age>=40))", false},
		{"(|(sn=Smith)(sn=Doe))", true},
		{"(|(sn=Smith)(sn=Jones))", false},
		{"(!(sn=Smith))", true},
		{"(!(sn=Doe))", false},
		{"(!(missing=x))", true},
		{"(&)", true},
		{"(|)", false},
		{"(&(objectclass=inetOrgPerson)(departmentNumber=240*))", true},
		{"(serialNumber>=0400)", true}, // integer-aware: 456 >= 400
		{"(serialNumber<=0100)", false},
	}
	for _, tt := range tests {
		n := MustParse(tt.f)
		if got := n.Matches(e); got != tt.want {
			t.Errorf("Matches(%s) = %v, want %v", tt.f, got, tt.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"(&(b=2)(a=1))", "(&(a=1)(b=2))"},
		{"(&(a=1)(&(b=2)(c=3)))", "(&(a=1)(b=2)(c=3))"},
		{"(|(a=1)(|(b=2)))", "(|(a=1)(b=2))"},
		{"(&(a=1)(a=1))", "(a=1)"},
		{"(!(!(a=1)))", "(a=1)"},
		{"(&(a=1)(&))", "(a=1)"},
		{"(|(a=1)(|))", "(a=1)"},
		{"(&(a=1)(|))", "(|)"},
		{"(|(a=1)(&))", "(&)"},
		{"(&(b=2)(a=1)(b=2))", "(&(a=1)(b=2))"},
	}
	for _, tt := range tests {
		got := MustParse(tt.in).Normalize().String()
		if got != tt.want {
			t.Errorf("Normalize(%s) = %s, want %s", tt.in, got, tt.want)
		}
	}
}

func TestNNF(t *testing.T) {
	e := testEntry()
	filters := []string{
		"(!(&(sn=Doe)(age>=30)))",
		"(!(|(sn=Doe)(sn=Smith)))",
		"(!(!(sn=Doe)))",
		"(&(!(sn=Smith))(age>=30))",
		"(!(&(a=1)(|(b=2)(!(c=3)))))",
	}
	for _, f := range filters {
		n := MustParse(f)
		nn := n.NNF()
		// NNF must contain no Not nodes.
		nn.walk(func(m *Node) {
			if m.Op == Not {
				t.Errorf("NNF(%s) contains NOT: %s", f, nn)
			}
		})
		if n.Matches(e) != nn.Matches(e) {
			t.Errorf("NNF(%s) changed semantics on test entry", f)
		}
	}
}

func TestDNF(t *testing.T) {
	n := MustParse("(&(|(a=1)(b=2))(|(c=3)(d=4)))")
	d, err := n.DNF()
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 4 {
		t.Fatalf("DNF conjunct count = %d, want 4", len(d))
	}
	for _, conj := range d {
		if len(conj) != 2 {
			t.Errorf("conjunct size = %d, want 2", len(conj))
		}
	}

	// False has empty DNF.
	d, err = MustParse("(|)").DNF()
	if err != nil || len(d) != 0 {
		t.Errorf("DNF(false) = %v, %v", d, err)
	}
	// True has one empty conjunct.
	d, err = MustParse("(&)").DNF()
	if err != nil || len(d) != 1 || len(d[0]) != 0 {
		t.Errorf("DNF(true) = %v, %v", d, err)
	}

	// Negation distributes.
	d, err = MustParse("(!(&(a=1)(b=2)))").DNF()
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 || !d[0][0].Negated || !d[1][0].Negated {
		t.Errorf("DNF of negated conjunction wrong: %v", d)
	}
}

func TestDNFTooComplex(t *testing.T) {
	// (|(a=1)(a=2)) ^ 13 under AND explodes past the cap.
	or := MustParse("(|(a=1)(a=2))")
	and := &Node{Op: And}
	for i := 0; i < 13; i++ {
		and.Children = append(and.Children, or.Clone())
	}
	if _, err := and.DNF(); !errors.Is(err, ErrTooComplex) {
		t.Errorf("expected ErrTooComplex, got %v", err)
	}
}

func TestDNFPreservesSemantics(t *testing.T) {
	e := testEntry()
	filters := []string{
		"(&(|(sn=Doe)(sn=Smith))(age>=30))",
		"(!(&(sn=Doe)(age>=40)))",
		"(|(&(a=1)(b=2))(sn=Doe))",
		"(&(objectclass=inetOrgPerson)(|(serialNumber=04*)(serialNumber=05*)))",
	}
	for _, f := range filters {
		n := MustParse(f)
		d, err := n.DNF()
		if err != nil {
			t.Fatalf("DNF(%s): %v", f, err)
		}
		// Evaluate DNF manually.
		got := false
		for _, conj := range d {
			all := true
			for _, lit := range conj {
				m := lit.Pred.Matches(e)
				if lit.Negated {
					m = !m
				}
				if !m {
					all = false
					break
				}
			}
			if all {
				got = true
				break
			}
		}
		if got != n.Matches(e) {
			t.Errorf("DNF(%s) evaluates to %v, filter evaluates to %v", f, got, n.Matches(e))
		}
	}
}

func TestTemplate(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"(sn=Doe)", "(sn=_)"},
		{"(uid=jdoe)", "(uid=_)"},
		{"(&(cn=John)(ou=research))", "(&(cn=_)(ou=_))"},
		{"(&(sn=Doe)(givenName=John))", "(&(sn=_)(givenname=_))"},
		{"(sn=smi*)", "(sn=_*)"},
		{"(sn=*son)", "(sn=*_)"},
		{"(sn=s*mi*th)", "(sn=_*_*_)"},
		{"(objectclass=*)", "(objectclass=*)"},
		{"(age>=30)", "(age>=_)"},
		{"(!(sn=Doe))", "(!(sn=_))"},
		{"(serialNumber=04*)", "(serialnumber=_*)"},
	}
	for _, tt := range tests {
		got := MustParse(tt.in).Template()
		if got != tt.want {
			t.Errorf("Template(%s) = %s, want %s", tt.in, got, tt.want)
		}
	}
}

func TestTemplateGroupsPrototypes(t *testing.T) {
	// Queries from the same prototype share a template.
	a := MustParse("(&(dept=2406)(div=software))").Normalize().Template()
	b := MustParse("(&(div=hardware)(dept=11))").Normalize().Template()
	if a != b {
		t.Errorf("same-prototype queries differ: %q vs %q", a, b)
	}
	c := MustParse("(dept=2406)").Normalize().Template()
	if a == c {
		t.Error("different prototypes must not share a template")
	}
}

func TestSlotValues(t *testing.T) {
	n := MustParse("(&(sn=Doe)(age>=30)(mail=*@us.xyz.com))")
	got := n.SlotValues()
	want := []string{"Doe", "30", "@us.xyz.com"}
	if len(got) != len(want) {
		t.Fatalf("SlotValues = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("slot %d = %q, want %q", i, got[i], want[i])
		}
	}
	// Presence contributes no slots.
	if n := MustParse("(objectclass=*)"); len(n.SlotValues()) != 0 {
		t.Error("presence predicate must have no slots")
	}
	// Substring slots in order.
	sub := MustParse("(sn=a*b*c)")
	gotSub := sub.SlotValues()
	if len(gotSub) != 3 || gotSub[0] != "a" || gotSub[1] != "b" || gotSub[2] != "c" {
		t.Errorf("substring slots = %v", gotSub)
	}
}

func TestAttrsAndPredicates(t *testing.T) {
	n := MustParse("(&(sn=Doe)(|(age>=30)(sn=Smith))(objectclass=*))")
	attrs := n.Attrs()
	want := []string{"age", "objectclass", "sn"}
	if len(attrs) != len(want) {
		t.Fatalf("Attrs = %v", attrs)
	}
	for i := range want {
		if attrs[i] != want[i] {
			t.Errorf("Attrs[%d] = %q, want %q", i, attrs[i], want[i])
		}
	}
	if len(n.Predicates()) != 4 {
		t.Errorf("Predicates count = %d, want 4", len(n.Predicates()))
	}
}

func TestIsPositive(t *testing.T) {
	if !MustParse("(&(a=1)(b=2))").IsPositive() {
		t.Error("conjunction of predicates is positive")
	}
	if MustParse("(!(a=1))").IsPositive() {
		t.Error("negation is not positive")
	}
	if MustParse("(&(a=1)(!(b=2)))").IsPositive() {
		t.Error("nested negation is not positive")
	}
	nn := MustParse("(!(a=1))").NNF()
	if nn.IsPositive() {
		t.Error("NNF-negated predicate is not positive")
	}
}

// genValue produces a safe assertion value from arbitrary bytes.
func genValue(raw string) string {
	var b strings.Builder
	for _, r := range raw {
		if r > ' ' && r < 127 {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "v"
	}
	return b.String()
}

func TestQuickParsePrintRoundTrip(t *testing.T) {
	f := func(a, b string, op uint8) bool {
		va, vb := genValue(a), genValue(b)
		var n *Node
		switch op % 5 {
		case 0:
			n = NewEQ("cn", va)
		case 1:
			n = NewAnd(NewEQ("sn", va), NewGE("age", vb))
		case 2:
			n = NewOr(NewEQ("sn", va), NewNot(NewEQ("cn", vb)))
		case 3:
			n = NewSubstr("sn", Substring{Initial: va, Final: vb})
		case 4:
			n = NewAnd(NewPresent("objectclass"), NewLE("age", va))
		}
		rt, err := Parse(n.String())
		if err != nil {
			t.Logf("reparse failed for %q: %v", n.String(), err)
			return false
		}
		return rt.String() == n.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickNormalizePreservesSemantics(t *testing.T) {
	e := testEntry()
	f := func(sel uint8, v1, v2 string) bool {
		a, b := genValue(v1), genValue(v2)
		cands := []*Node{
			NewAnd(NewEQ("sn", a), NewOr(NewEQ("cn", b), NewGE("age", "30"))),
			NewNot(NewAnd(NewEQ("sn", a), NewEQ("cn", b))),
			NewOr(NewAnd(NewEQ("sn", "Doe")), NewNot(NewNot(NewEQ("cn", a)))),
			NewAnd(NewEQ("sn", a), &Node{Op: True}),
			NewOr(NewEQ("sn", a), &Node{Op: False}),
		}
		n := cands[int(sel)%len(cands)]
		return n.Matches(e) == n.Normalize().Matches(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickNNFPreservesSemantics(t *testing.T) {
	e := testEntry()
	f := func(sel uint8, v1 string) bool {
		a := genValue(v1)
		cands := []*Node{
			NewNot(NewAnd(NewEQ("sn", a), NewGE("age", "30"))),
			NewNot(NewOr(NewEQ("sn", a), NewNot(NewEQ("cn", "John Doe")))),
			NewAnd(NewNot(NewEQ("sn", a)), NewPresent("mail")),
		}
		n := cands[int(sel)%len(cands)]
		return n.Matches(e) == n.NNF().Matches(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParse(b *testing.B) {
	s := "(&(objectclass=inetOrgPerson)(departmentNumber=240*)(age>=30))"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatches(b *testing.B) {
	e := testEntry()
	n := MustParse("(&(objectclass=inetOrgPerson)(serialNumber=04*)(age>=30))")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !n.Matches(e) {
			b.Fatal("expected match")
		}
	}
}
