// Package replica implements the two directory replication models the paper
// compares:
//
//   - SubtreeReplica (Section 3.4.1): holds one or more replication contexts
//     (subtree suffix + subordinate referrals); a query is answerable when
//     its base lies inside a context and not under a referral, and counts as
//     a hit only when the answer generates no referrals.
//   - FilterReplica (Section 3.4.2): holds entries matching one or more
//     stored LDAP queries (generalized filters kept in sync via ReSync) plus
//     a window of recently-performed user queries cached verbatim; an
//     incoming query is answerable when it is semantically contained in any
//     stored or cached query.
package replica

import (
	"sync"

	"filterdir/internal/dit"
	"filterdir/internal/query"
)

// Metrics counts replica outcomes. Hit-ratio is Hits / Queries; the paper
// defines a hit as a query completely answered without generating referrals.
type Metrics struct {
	Queries uint64
	Hits    uint64
	Misses  uint64
	// Partial counts subtree-replica answers that produced referrals
	// (Section 3.1.3) — they are not hits.
	Partial uint64
	// ContainmentChecks counts stored/cached queries examined.
	ContainmentChecks uint64
	// EntriesReturned counts entries served from the replica.
	EntriesReturned uint64
}

// HitRatio returns Hits / Queries (0 for no queries).
func (m Metrics) HitRatio() float64 {
	if m.Queries == 0 {
		return 0
	}
	return float64(m.Hits) / float64(m.Queries)
}

// SubtreeReplica is a conventional partial replica holding whole subtrees.
type SubtreeReplica struct {
	store    *dit.Store
	contexts []dit.Context

	mu sync.Mutex
	m  Metrics
}

// NewSubtreeReplica creates a replica for the given replication contexts.
// The content store accepts entries under any context suffix.
func NewSubtreeReplica(contexts []dit.Context) (*SubtreeReplica, error) {
	suffixes := make([]string, len(contexts))
	for i, c := range contexts {
		suffixes[i] = c.Suffix.String()
	}
	st, err := dit.NewStore(suffixes)
	if err != nil {
		return nil, err
	}
	return &SubtreeReplica{store: st, contexts: contexts}, nil
}

// Store exposes the content store for loading and synchronization.
func (r *SubtreeReplica) Store() *dit.Store { return r.store }

// CanAnswer implements the paper's isContained(b, C) algorithm: the query
// base must equal a context suffix or lie inside a context without falling
// under one of its subordinate referrals.
func (r *SubtreeReplica) CanAnswer(q query.Query) bool {
	for _, c := range r.contexts {
		if c.Suffix.Equal(q.Base) {
			return true
		}
		if !c.Suffix.IsSuffix(q.Base) {
			continue
		}
		under := false
		for _, ref := range c.Referrals {
			if ref.IsSuffix(q.Base) {
				under = true
				break
			}
		}
		if under {
			return false
		}
		return true
	}
	return false
}

// Answer attempts to serve the query. hit is true only for a complete
// answer (no referrals); on a miss or partial answer the caller must chase
// the master.
func (r *SubtreeReplica) Answer(q query.Query) (res *dit.Result, hit bool) {
	r.mu.Lock()
	r.m.Queries++
	r.mu.Unlock()
	if !r.CanAnswer(q) {
		r.miss()
		return nil, false
	}
	res, err := r.store.Search(q)
	if err != nil {
		r.miss()
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(res.Referrals) > 0 {
		// Partially answered (Section 3.1.3): referrals for subordinate
		// contexts do not contribute to hit-ratio.
		r.m.Partial++
		return res, false
	}
	r.m.Hits++
	r.m.EntriesReturned += uint64(len(res.Entries))
	return res, true
}

func (r *SubtreeReplica) miss() {
	r.mu.Lock()
	r.m.Misses++
	r.mu.Unlock()
}

// Metrics returns a snapshot of the counters.
func (r *SubtreeReplica) Metrics() Metrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m
}

// EntryCount returns the number of replicated entries.
func (r *SubtreeReplica) EntryCount() int { return r.store.Len() }
