package replica

import (
	"fmt"
	"sync"

	"filterdir/internal/containment"
	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/query"
	"filterdir/internal/resync"
)

// StoredQuery is the meta information kept for one replicated query.
type StoredQuery struct {
	Query query.Query
	// Cookie is the ReSync session cookie synchronizing this query's
	// content (empty for un-synced cached queries).
	Cookie string
	// Hits counts incoming queries answered via this stored query; the
	// selection algorithm's benefit statistic.
	Hits uint64
}

// FilterReplica is the paper's proposed replica: entries matching one or
// more stored LDAP queries, plus a bounded window of recently performed
// user queries cached verbatim. Entry storage is shared and reference
// counted: an entry is dropped when the last query covering it is removed.
type FilterReplica struct {
	store   *dit.Store
	checker *containment.Checker

	mu sync.Mutex
	// stored indexes replicated queries by filter template; same-template
	// candidates are checked with Proposition 3 before any cross-template
	// work.
	stored map[string][]*StoredQuery
	// cache is the FIFO window of recently performed user queries.
	cache    []*StoredQuery
	cacheCap int

	// refs tracks which owners (stored-query keys or cache slots) cover
	// each entry; ownerDNs is the inverse; dns maps the normalized DN back
	// to the parsed DN for removal.
	refs     map[string]map[string]bool
	ownerDNs map[string]map[string]bool
	dns      map[string]dn.DN

	contentIndexes []string
	journalLimit   int

	// overlay, when set, post-processes Answer hits with the replica's
	// pending edge writes (read-your-writes: a locally accepted update is
	// visible before its CSN echoes back down the sync stream). Set once
	// during wiring, before the replica serves queries.
	overlay func(q query.Query, entries []*entry.Entry) []*entry.Entry

	m Metrics
}

// Option configures a FilterReplica.
type FROption func(*FilterReplica)

// WithChecker shares a containment checker (and its compiled template-pair
// plans) across replicas.
func WithChecker(c *containment.Checker) FROption {
	return func(r *FilterReplica) { r.checker = c }
}

// WithCacheCapacity bounds the recently-performed user-query window
// (default 0: user-query caching disabled).
func WithCacheCapacity(n int) FROption {
	return func(r *FilterReplica) { r.cacheCap = n }
}

// WithContentIndexes maintains equality/prefix indexes on the replica's
// content store.
func WithContentIndexes(attrs ...string) FROption {
	return func(r *FilterReplica) { r.contentIndexes = attrs }
}

// WithJournalLimit bounds the content store's update journal. A cascade
// mid-tier serving ReSync to downstream replicas needs the journal for
// incremental classification, but unbounded history would grow without
// limit; past the bound a lagging downstream session degrades soundly to a
// full reload (0 = unbounded, the default for plain consumer replicas).
func WithJournalLimit(n int) FROption {
	return func(r *FilterReplica) { r.journalLimit = n }
}

// NewFilterReplica creates an empty filter-based replica.
func NewFilterReplica(opts ...FROption) (*FilterReplica, error) {
	r := &FilterReplica{
		stored:   make(map[string][]*StoredQuery),
		refs:     make(map[string]map[string]bool),
		ownerDNs: make(map[string]map[string]bool),
		dns:      make(map[string]dn.DN),
	}
	for _, o := range opts {
		o(r)
	}
	if r.checker == nil {
		r.checker = containment.NewChecker()
	}
	var ditOpts []dit.Option
	if len(r.contentIndexes) > 0 {
		ditOpts = append(ditOpts, dit.WithIndexes(r.contentIndexes...))
	}
	if r.journalLimit > 0 {
		ditOpts = append(ditOpts, dit.WithJournalLimit(r.journalLimit))
	}
	st, err := dit.NewStore([]string{""}, ditOpts...)
	if err != nil {
		return nil, err
	}
	r.store = st
	return r, nil
}

// AddStored registers a replicated query's meta information; content
// arrives via ApplySync. It returns the stored-query handle.
func (r *FilterReplica) AddStored(q query.Query, cookie string) *StoredQuery {
	nq := q.Normalize()
	sq := &StoredQuery{Query: nq, Cookie: cookie}
	tpl := nq.Template()
	r.mu.Lock()
	r.stored[tpl] = append(r.stored[tpl], sq)
	r.mu.Unlock()
	return sq
}

// RemoveStored drops a replicated query and releases the content it alone
// covered. It returns the stored query (for session teardown) or nil.
func (r *FilterReplica) RemoveStored(q query.Query) *StoredQuery {
	nq := q.Normalize()
	key := ownerKey(nq)
	tpl := nq.Template()
	r.mu.Lock()
	defer r.mu.Unlock()
	list := r.stored[tpl]
	for i, sq := range list {
		if ownerKey(sq.Query) == key {
			r.stored[tpl] = append(list[:i], list[i+1:]...)
			if len(r.stored[tpl]) == 0 {
				delete(r.stored, tpl)
			}
			r.dropOwnerLocked(key)
			return sq
		}
	}
	return nil
}

// ApplySync applies ReSync updates for a stored query's content.
func (r *FilterReplica) ApplySync(q query.Query, updates []resync.Update) error {
	key := ownerKey(q.Normalize())
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, u := range updates {
		switch u.Action {
		case resync.ActionAdd, resync.ActionModify:
			if err := r.addRefLocked(key, u.Entry); err != nil {
				return err
			}
		case resync.ActionDelete:
			r.delRefLocked(key, u.DN.Norm())
		default:
			return fmt.Errorf("unsupported sync action %v", u.Action)
		}
	}
	return nil
}

// CacheQuery inserts a just-answered user query and its result into the
// cache window, evicting the oldest cached query when full. Cached queries
// are not synchronized (Section 7.4: cached for a short window, not
// updated).
func (r *FilterReplica) CacheQuery(q query.Query, result []*entry.Entry) error {
	if r.cacheCap <= 0 {
		return nil
	}
	nq := q.Normalize()
	key := "cache:" + ownerKey(nq)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.cache {
		if "cache:"+ownerKey(c.Query) == key {
			return nil // already cached
		}
	}
	if len(r.cache) >= r.cacheCap {
		old := r.cache[0]
		r.cache = r.cache[1:]
		r.dropOwnerLocked("cache:" + ownerKey(old.Query))
	}
	r.cache = append(r.cache, &StoredQuery{Query: nq})
	for _, e := range result {
		if err := r.addRefLocked(key, e); err != nil {
			return err
		}
	}
	return nil
}

// Answer attempts to serve the query from replicated or cached content.
// via reports which stored query answered ("" on miss).
//
// The result is evaluated against the containing query's own content, not
// the whole shared store: q ⊆ container guarantees every entry matching q
// lies in the container's content, and restricting to it keeps stale
// entries held only by unrelated cached queries out of fresh answers.
func (r *FilterReplica) Answer(q query.Query) (entries []*entry.Entry, hit bool, via string) {
	nq := q.Normalize()
	r.mu.Lock()
	r.m.Queries++
	container, ownerID := r.findContainerLocked(nq)
	if container == nil {
		r.m.Misses++
		r.mu.Unlock()
		return nil, false, ""
	}
	container.Hits++
	r.m.Hits++
	norms := make([]string, 0, len(r.ownerDNs[ownerID]))
	for norm := range r.ownerDNs[ownerID] {
		norms = append(norms, norm)
	}
	dns := make([]dn.DN, 0, len(norms))
	for _, norm := range norms {
		if d, ok := r.dns[norm]; ok {
			dns = append(dns, d)
		}
	}
	r.mu.Unlock()

	f := nq.Filter
	for _, d := range dns {
		if !nq.InScope(d) {
			continue
		}
		e, ok := r.store.Get(d)
		if !ok {
			continue
		}
		if f == nil || f.Matches(e) {
			entries = append(entries, e.Select(nq.Attrs))
		}
	}
	if r.overlay != nil {
		entries = r.overlay(nq, entries)
	}
	r.mu.Lock()
	r.m.EntriesReturned += uint64(len(entries))
	r.mu.Unlock()
	return entries, true, container.Query.String()
}

// SetReadOverlay installs the pending-edge-write projection applied to
// every Answer hit (see internal/edgewrite.Writer.Overlay). Install during
// wiring, before concurrent readers exist; nil removes it.
func (r *FilterReplica) SetReadOverlay(overlay func(q query.Query, entries []*entry.Entry) []*entry.Entry) {
	r.overlay = overlay
}

// findContainerLocked locates a stored or cached query semantically
// containing nq, returning it with its content-owner id. Same-template
// stored queries are checked first (Proposition 3 via the checker's fast
// path), then the remaining templates, then the cache window.
func (r *FilterReplica) findContainerLocked(nq query.Query) (*StoredQuery, string) {
	tpl := nq.Template()
	if list, ok := r.stored[tpl]; ok {
		for _, sq := range list {
			r.m.ContainmentChecks++
			if r.checker.QueryContains(nq, sq.Query) {
				return sq, ownerKey(sq.Query)
			}
		}
	}
	for t, list := range r.stored {
		if t == tpl {
			continue
		}
		for _, sq := range list {
			r.m.ContainmentChecks++
			if r.checker.QueryContains(nq, sq.Query) {
				return sq, ownerKey(sq.Query)
			}
		}
	}
	for _, cq := range r.cache {
		r.m.ContainmentChecks++
		if r.checker.QueryContains(nq, cq.Query) {
			return cq, "cache:" + ownerKey(cq.Query)
		}
	}
	return nil, ""
}

// addRefLocked stores the entry and records owner coverage.
func (r *FilterReplica) addRefLocked(key string, e *entry.Entry) error {
	if e == nil {
		return fmt.Errorf("nil entry in sync update")
	}
	if err := r.store.Upsert(e); err != nil {
		return err
	}
	norm := e.DN().Norm()
	r.dns[norm] = e.DN()
	if r.refs[norm] == nil {
		r.refs[norm] = make(map[string]bool)
	}
	r.refs[norm][key] = true
	if r.ownerDNs[key] == nil {
		r.ownerDNs[key] = make(map[string]bool)
	}
	r.ownerDNs[key][norm] = true
	return nil
}

// delRefLocked releases one owner's claim; the entry is removed with its
// last reference.
func (r *FilterReplica) delRefLocked(key, norm string) {
	if set, ok := r.refs[norm]; ok {
		delete(set, key)
		if len(set) == 0 {
			delete(r.refs, norm)
			_ = r.removeByNorm(norm)
		}
	}
	if set, ok := r.ownerDNs[key]; ok {
		delete(set, norm)
	}
}

func (r *FilterReplica) dropOwnerLocked(key string) {
	for norm := range r.ownerDNs[key] {
		if set, ok := r.refs[norm]; ok {
			delete(set, key)
			if len(set) == 0 {
				delete(r.refs, norm)
				_ = r.removeByNorm(norm)
			}
		}
	}
	delete(r.ownerDNs, key)
}

// removeByNorm removes an entry from the content store by normalized DN.
func (r *FilterReplica) removeByNorm(norm string) error {
	d, ok := r.dns[norm]
	if !ok {
		return nil
	}
	delete(r.dns, norm)
	return r.store.RemoveAny(d)
}

// Metrics returns a snapshot of the counters.
func (r *FilterReplica) Metrics() Metrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m
}

// EntryCount returns the number of entries held.
func (r *FilterReplica) EntryCount() int { return r.store.Len() }

// StoredCount returns the number of replicated (synced) queries.
func (r *FilterReplica) StoredCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, l := range r.stored {
		n += len(l)
	}
	return n
}

// CachedCount returns the number of cached user queries.
func (r *FilterReplica) CachedCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}

// StoredQueries returns the replicated queries (copies of the meta info).
func (r *FilterReplica) StoredQueries() []StoredQuery {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []StoredQuery
	for _, l := range r.stored {
		for _, sq := range l {
			out = append(out, *sq)
		}
	}
	return out
}

// Store exposes the content store (read-mostly; used by experiments).
func (r *FilterReplica) Store() *dit.Store { return r.store }

// ownerKey is the canonical identity of a query used for reference
// counting.
func ownerKey(q query.Query) string { return q.Key() }
