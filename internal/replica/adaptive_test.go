package replica

import (
	"fmt"
	"testing"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/query"
	"filterdir/internal/resync"
	"filterdir/internal/selection"
)

// adaptiveFixture builds a master with two serial blocks of five persons
// each (040x and 050x) and an adaptive replica selecting 3-character prefix
// filters under the given budget.
func adaptiveFixture(t *testing.T, budget, interval int) (*dit.Store, *AdaptiveReplica) {
	t.Helper()
	master, err := dit.NewStore([]string{"o=xyz"})
	if err != nil {
		t.Fatal(err)
	}
	addAdaptive := func(dnStr string, attrs map[string]string, classes ...string) {
		t.Helper()
		e := entry.New(dn.MustParse(dnStr))
		e.Put("objectclass", classes...)
		for k, v := range attrs {
			e.Put(k, v)
		}
		if err := master.Add(e); err != nil {
			t.Fatalf("add %s: %v", dnStr, err)
		}
	}
	addAdaptive("o=xyz", map[string]string{"o": "xyz"}, "organization")
	addAdaptive("c=us,o=xyz", map[string]string{"c": "us"}, "country")
	for block := 4; block <= 5; block++ {
		for i := 0; i < 5; i++ {
			cn := fmt.Sprintf("b%d-%d", block, i)
			addAdaptive(fmt.Sprintf("cn=%s,c=us,o=xyz", cn), map[string]string{
				"cn": cn, "sn": cn,
				"serialnumber": fmt.Sprintf("0%d0%d", block, i),
				"div":          "sw",
			}, "person", "inetOrgPerson")
		}
	}
	rep, err := NewFilterReplica()
	if err != nil {
		t.Fatal(err)
	}
	gen := selection.NewGeneralizer(selection.PrefixRule{Attr: "serialnumber", PrefixLen: 3})
	sizeOf := func(q query.Query) int { return len(master.MatchAll(q)) }
	sel := selection.NewSelector(gen, sizeOf, budget, interval)
	sup := LocalSupplier{Engine: resync.NewEngine(master)}
	return master, NewAdaptiveReplica(rep, sel, sup)
}

func TestAdaptiveReplicaLearnsHotRegion(t *testing.T) {
	_, ar := adaptiveFixture(t, 8, 5)
	hot := query.MustNew("", query.ScopeSubtree, "(serialnumber=0403)")

	// The first queries miss; after a revolution the block filter (040*)
	// is installed and subsequent queries hit.
	var hits int
	for i := 0; i < 20; i++ {
		hit, err := ar.Serve(hot)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			hits++
		}
	}
	if hits < 10 {
		t.Fatalf("adaptive replica never learned: %d hits of 20", hits)
	}
	if len(ar.StoredFilters()) == 0 {
		t.Fatal("no filters stored")
	}
	if ar.FetchTraffic.Updates() == 0 {
		t.Error("fetch traffic not accounted")
	}
}

func TestAdaptiveReplicaSyncAll(t *testing.T) {
	master, ar := adaptiveFixture(t, 8, 3)
	hot := query.MustNew("", query.ScopeSubtree, "(serialnumber=0401)")
	for i := 0; i < 6; i++ {
		if _, err := ar.Serve(hot); err != nil {
			t.Fatal(err)
		}
	}
	if len(ar.StoredFilters()) == 0 {
		t.Fatal("setup: no stored filters")
	}
	// Master-side change inside the stored content propagates on SyncAll.
	if err := master.Modify(dn.MustParse("cn=b4-1,c=us,o=xyz"),
		[]dit.Mod{{Op: dit.ModReplace, Attr: "div", Values: []string{"changed"}}}); err != nil {
		t.Fatal(err)
	}
	if err := ar.SyncAll(); err != nil {
		t.Fatal(err)
	}
	if ar.ResyncTraffic.Modifies != 1 {
		t.Errorf("resync traffic = %+v, want 1 modify", ar.ResyncTraffic)
	}
	entries, hit, _ := ar.Replica.Answer(hot)
	if !hit || len(entries) != 1 || entries[0].First("div") != "changed" {
		t.Fatalf("stale content after SyncAll: %v", entries)
	}
}

func TestAdaptiveReplicaClose(t *testing.T) {
	_, ar := adaptiveFixture(t, 8, 3)
	hot := query.MustNew("", query.ScopeSubtree, "(serialnumber=0401)")
	for i := 0; i < 6; i++ {
		if _, err := ar.Serve(hot); err != nil {
			t.Fatal(err)
		}
	}
	sup := ar.Supplier.(LocalSupplier)
	if sup.Engine.Sessions() == 0 {
		t.Fatal("setup: no sessions")
	}
	if err := ar.Close(); err != nil {
		t.Fatal(err)
	}
	if sup.Engine.Sessions() != 0 {
		t.Errorf("sessions leaked after Close: %d", sup.Engine.Sessions())
	}
}

func TestAdaptiveReplicaEviction(t *testing.T) {
	// Budget of 5 holds exactly one block of five entries.
	master, ar := adaptiveFixture(t, 5, 6)
	_ = master
	// Phase 1: block 040x hot.
	q1 := query.MustNew("", query.ScopeSubtree, "(serialnumber=0401)")
	for i := 0; i < 6; i++ {
		if _, err := ar.Serve(q1); err != nil {
			t.Fatal(err)
		}
	}
	first := fmt.Sprintf("%v", ar.StoredFilters())
	// Phase 2: block 050x hot; the budget of 4 forces eviction.
	q2 := query.MustNew("", query.ScopeSubtree, "(serialnumber=0501)")
	for i := 0; i < 12; i++ {
		if _, err := ar.Serve(q2); err != nil {
			t.Fatal(err)
		}
	}
	second := fmt.Sprintf("%v", ar.StoredFilters())
	if first == second {
		t.Errorf("stored set did not adapt: %s", second)
	}
	// Sessions track the stored set: one per filter.
	sup := ar.Supplier.(LocalSupplier)
	if got, want := sup.Engine.Sessions(), len(ar.StoredFilters()); got != want {
		t.Errorf("sessions = %d, stored filters = %d", got, want)
	}
}

func TestPerFilterSyncPeriods(t *testing.T) {
	// Section 3.2: a filter replica gives different object types different
	// consistency levels. The fast filter polls every tick, the slow one
	// every third tick.
	master, ar := adaptiveFixture(t, 10, 0)
	fast := query.MustNew("", query.ScopeSubtree, "(serialnumber=040*)")
	slow := query.MustNew("", query.ScopeSubtree, "(serialnumber=050*)")
	if err := ar.AddFilter(fast); err != nil {
		t.Fatal(err)
	}
	if err := ar.AddFilter(slow); err != nil {
		t.Fatal(err)
	}
	ar.SetSyncPeriod(slow, 3)

	touch := func(cn string) {
		t.Helper()
		if err := master.Modify(dn.MustParse("cn="+cn+",c=us,o=xyz"),
			[]dit.Mod{{Op: dit.ModAdd, Attr: "description", Values: []string{fmt.Sprintf("t%d", ar.ResyncTraffic.Updates())}}}); err != nil {
			t.Fatal(err)
		}
	}

	freshFast := func() string {
		es, _, _ := ar.Replica.Answer(query.MustNew("", query.ScopeSubtree, "(serialnumber=0401)"))
		return es[0].First("description")
	}
	freshSlow := func() string {
		es, _, _ := ar.Replica.Answer(query.MustNew("", query.ScopeSubtree, "(serialnumber=0501)"))
		return es[0].First("description")
	}

	// Tick 1: both targets change; only the fast filter syncs.
	touch("b4-1")
	touch("b5-1")
	if err := ar.SyncDue(); err != nil {
		t.Fatal(err)
	}
	if freshFast() == "" {
		t.Error("fast filter stale after tick 1")
	}
	if freshSlow() != "" {
		t.Error("slow filter synced too early")
	}
	// Ticks 2 and 3: the slow filter becomes due on tick 3.
	if err := ar.SyncDue(); err != nil {
		t.Fatal(err)
	}
	if freshSlow() != "" {
		t.Error("slow filter synced on tick 2")
	}
	if err := ar.SyncDue(); err != nil {
		t.Fatal(err)
	}
	if freshSlow() == "" {
		t.Error("slow filter still stale after its period elapsed")
	}
	// Clearing the period makes it sync every tick again.
	ar.SetSyncPeriod(slow, 0)
	touch("b5-2")
	if err := ar.SyncDue(); err != nil {
		t.Fatal(err)
	}
	es, _, _ := ar.Replica.Answer(query.MustNew("", query.ScopeSubtree, "(serialnumber=0502)"))
	if es[0].First("description") == "" {
		t.Error("cleared period did not restore per-tick sync")
	}
}
