package replica

import (
	"fmt"
	"testing"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/query"
	"filterdir/internal/resync"
)

// buildMaster creates a master DIT with employees in two countries and a
// research referral inside c=us.
func buildMaster(t testing.TB) *dit.Store {
	t.Helper()
	st, err := dit.NewStore([]string{"o=xyz"})
	if err != nil {
		t.Fatal(err)
	}
	add := func(dnStr string, cls string, attrs map[string]string) {
		e := entry.New(dn.MustParse(dnStr))
		e.Put("objectclass", cls)
		for k, v := range attrs {
			e.Put(k, v)
		}
		if err := st.Add(e); err != nil {
			t.Fatalf("add %s: %v", dnStr, err)
		}
	}
	add("o=xyz", "organization", map[string]string{"o": "xyz"})
	add("c=us,o=xyz", "country", map[string]string{"c": "us"})
	add("c=in,o=xyz", "country", map[string]string{"c": "in"})
	for i := 0; i < 10; i++ {
		cc := "us"
		if i >= 6 {
			cc = "in"
		}
		add(fmt.Sprintf("cn=p%d,c=%s,o=xyz", i, cc), "inetOrgPerson", map[string]string{
			"cn": fmt.Sprintf("p%d", i), "sn": "x",
			"serialnumber": fmt.Sprintf("04%02d", i),
			"dept":         fmt.Sprintf("24%02d", i%4),
			"div":          "sw",
		})
	}
	return st
}

func TestSubtreeReplicaCanAnswer(t *testing.T) {
	us := dn.MustParse("c=us,o=xyz")
	research := dn.MustParse("ou=research,c=us,o=xyz")
	r, err := NewSubtreeReplica([]dit.Context{{Suffix: us, Referrals: []dn.DN{research}}})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		base string
		want bool
	}{
		{"c=us,o=xyz", true},                   // suffix itself
		{"cn=p1,c=us,o=xyz", true},             // inside
		{"ou=research,c=us,o=xyz", false},      // at subordinate referral
		{"cn=x,ou=research,c=us,o=xyz", false}, // under subordinate referral
		{"c=in,o=xyz", false},                  // other subtree
		{"o=xyz", false},                       // above suffix
		{"", false},                            // null base (minimally enabled apps)
	}
	for _, tt := range tests {
		q := query.MustNew(tt.base, query.ScopeSubtree, "(objectclass=*)")
		if got := r.CanAnswer(q); got != tt.want {
			t.Errorf("CanAnswer(base=%q) = %v, want %v", tt.base, got, tt.want)
		}
	}
}

func TestSubtreeReplicaAnswerAndPartial(t *testing.T) {
	master := buildMaster(t)
	us := dn.MustParse("c=us,o=xyz")
	r, err := NewSubtreeReplica([]dit.Context{{Suffix: us}})
	if err != nil {
		t.Fatal(err)
	}
	// Replicate the us subtree.
	usContent := master.MatchAll(query.MustNew("c=us,o=xyz", query.ScopeSubtree, ""))
	if err := r.Store().Load(sortParentsFirst(usContent)); err != nil {
		t.Fatal(err)
	}

	// Complete answer.
	res, hit := r.Answer(query.MustNew("c=us,o=xyz", query.ScopeSubtree, "(serialnumber=0401)"))
	if !hit || len(res.Entries) != 1 {
		t.Fatalf("hit=%v entries=%v", hit, res)
	}
	// Null-base miss.
	if _, hit := r.Answer(query.MustNew("", query.ScopeSubtree, "(serialnumber=0401)")); hit {
		t.Error("null-base query must miss a subtree replica")
	}
	m := r.Metrics()
	if m.Queries != 2 || m.Hits != 1 || m.Misses != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.HitRatio() != 0.5 {
		t.Errorf("hit ratio = %v", m.HitRatio())
	}
}

func TestSubtreeReplicaPartialAnswer(t *testing.T) {
	// A replica whose context contains a subordinate referral: queries
	// whose region touches the referral are only partially answered.
	us := dn.MustParse("c=us,o=xyz")
	research := dn.MustParse("ou=research,c=us,o=xyz")
	r, err := NewSubtreeReplica([]dit.Context{{Suffix: us, Referrals: []dn.DN{research}}})
	if err != nil {
		t.Fatal(err)
	}
	country := entry.New(us)
	country.Put("objectclass", "country").Put("c", "us")
	ref := entry.New(research)
	ref.Put("objectclass", dit.ReferralClass).Put(dit.RefAttr, "ldap://hostB")
	person := entry.New(dn.MustParse("cn=p1,c=us,o=xyz"))
	person.Put("objectclass", "person").Put("cn", "p1").Put("sn", "x")
	if err := r.Store().Load([]*entry.Entry{country, ref, person}); err != nil {
		t.Fatal(err)
	}

	res, hit := r.Answer(query.MustNew("c=us,o=xyz", query.ScopeSubtree, "(objectclass=*)"))
	if hit {
		t.Error("query over a region with a subordinate referral must not be a hit")
	}
	if res == nil || len(res.Referrals) != 1 {
		t.Fatalf("expected partial answer with referral, got %+v", res)
	}
	if m := r.Metrics(); m.Partial != 1 {
		t.Errorf("partial not counted: %+v", m)
	}
}

// syncStored registers a query on the replica and syncs its content from
// the master via a fresh ReSync session.
func syncStored(t testing.TB, master *dit.Store, eng *resync.Engine, r *FilterReplica, q query.Query) string {
	t.Helper()
	res, err := eng.Begin(q)
	if err != nil {
		t.Fatal(err)
	}
	r.AddStored(q, res.Cookie)
	if err := r.ApplySync(q, res.Updates); err != nil {
		t.Fatal(err)
	}
	return res.Cookie
}

func TestFilterReplicaAnswersContainedQueries(t *testing.T) {
	master := buildMaster(t)
	eng := resync.NewEngine(master)
	r, err := NewFilterReplica(WithContentIndexes("serialnumber", "dept"))
	if err != nil {
		t.Fatal(err)
	}
	// Replicate the generalized serial-number prefix filter over the whole
	// DIT (null base: answers minimally-directory-enabled applications).
	gen := query.MustNew("", query.ScopeSubtree, "(serialnumber=04*)")
	syncStored(t, master, eng, r, gen)

	// Specific user query contained in the generalized filter.
	q := query.MustNew("", query.ScopeSubtree, "(serialnumber=0403)")
	entries, hit, via := r.Answer(q)
	if !hit {
		t.Fatal("expected hit")
	}
	if len(entries) != 1 || entries[0].First("cn") != "p3" {
		t.Fatalf("entries = %v", entries)
	}
	if via == "" {
		t.Error("via not reported")
	}

	// Cross-country semantic locality (Section 3.1.2): entries from both
	// country subtrees are served by one filter.
	q = query.MustNew("", query.ScopeSubtree, "(serialnumber=0407)")
	entries, hit, _ = r.Answer(q)
	if !hit || len(entries) != 1 {
		t.Fatalf("cross-country hit failed: hit=%v n=%d", hit, len(entries))
	}

	// Not contained: different prefix.
	if _, hit, _ := r.Answer(query.MustNew("", query.ScopeSubtree, "(serialnumber=0599)")); hit {
		t.Error("uncontained query must miss")
	}

	m := r.Metrics()
	if m.Queries != 3 || m.Hits != 2 || m.Misses != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestFilterReplicaSyncKeepsAnswersFresh(t *testing.T) {
	master := buildMaster(t)
	eng := resync.NewEngine(master)
	r, err := NewFilterReplica()
	if err != nil {
		t.Fatal(err)
	}
	gen := query.MustNew("", query.ScopeSubtree, "(serialnumber=04*)")
	cookie := syncStored(t, master, eng, r, gen)

	// Master-side update: p3's dept changes.
	if err := master.Modify(dn.MustParse("cn=p3,c=us,o=xyz"),
		[]dit.Mod{{Op: dit.ModReplace, Attr: "dept", Values: []string{"9999"}}}); err != nil {
		t.Fatal(err)
	}
	poll, err := eng.Poll(cookie)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ApplySync(gen, poll.Updates); err != nil {
		t.Fatal(err)
	}
	entries, hit, _ := r.Answer(query.MustNew("", query.ScopeSubtree, "(serialnumber=0403)"))
	if !hit || len(entries) != 1 || entries[0].First("dept") != "9999" {
		t.Fatalf("stale answer after sync: %v", entries)
	}

	// Master-side delete leaves the replica consistent.
	if err := master.Delete(dn.MustParse("cn=p3,c=us,o=xyz")); err != nil {
		t.Fatal(err)
	}
	poll, err = eng.Poll(cookie)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ApplySync(gen, poll.Updates); err != nil {
		t.Fatal(err)
	}
	entries, hit, _ = r.Answer(query.MustNew("", query.ScopeSubtree, "(serialnumber=0403)"))
	if !hit {
		t.Fatal("query still contained, must hit")
	}
	if len(entries) != 0 {
		t.Errorf("deleted entry still served: %v", entries)
	}
}

func TestFilterReplicaRefCounting(t *testing.T) {
	master := buildMaster(t)
	eng := resync.NewEngine(master)
	r, err := NewFilterReplica()
	if err != nil {
		t.Fatal(err)
	}
	// Two overlapping stored queries: serial 04* covers all ten, dept 2400
	// covers a subset of the same entries.
	q1 := query.MustNew("", query.ScopeSubtree, "(serialnumber=04*)")
	q2 := query.MustNew("", query.ScopeSubtree, "(dept=2400)")
	syncStored(t, master, eng, r, q1)
	syncStored(t, master, eng, r, q2)
	if r.EntryCount() != 10 {
		t.Fatalf("EntryCount = %d, want 10", r.EntryCount())
	}
	// Removing q1 keeps the q2-covered entries.
	r.RemoveStored(q1)
	if r.StoredCount() != 1 {
		t.Errorf("StoredCount = %d", r.StoredCount())
	}
	want := len(master.MatchAll(q2))
	if r.EntryCount() != want {
		t.Errorf("EntryCount after removal = %d, want %d", r.EntryCount(), want)
	}
	// Queries against q2's content still hit.
	if _, hit, _ := r.Answer(query.MustNew("", query.ScopeSubtree, "(dept=2400)")); !hit {
		t.Error("q2 content lost")
	}
	// q1's queries now miss.
	if _, hit, _ := r.Answer(query.MustNew("", query.ScopeSubtree, "(serialnumber=0401)")); hit {
		t.Error("q1 removed but still answering")
	}
}

func TestFilterReplicaUserQueryCache(t *testing.T) {
	master := buildMaster(t)
	r, err := NewFilterReplica(WithCacheCapacity(2))
	if err != nil {
		t.Fatal(err)
	}
	q1 := query.MustNew("", query.ScopeSubtree, "(serialnumber=0401)")
	q2 := query.MustNew("", query.ScopeSubtree, "(serialnumber=0402)")
	q3 := query.MustNew("", query.ScopeSubtree, "(serialnumber=0403)")

	// Miss, then cache from the master result.
	if _, hit, _ := r.Answer(q1); hit {
		t.Fatal("empty replica must miss")
	}
	if err := r.CacheQuery(q1, master.MatchAll(q1)); err != nil {
		t.Fatal(err)
	}
	// Temporal locality: the repeat hits.
	if _, hit, _ := r.Answer(q1); !hit {
		t.Fatal("cached query must hit")
	}
	// Fill the window; q1 evicts.
	if err := r.CacheQuery(q2, master.MatchAll(q2)); err != nil {
		t.Fatal(err)
	}
	if err := r.CacheQuery(q3, master.MatchAll(q3)); err != nil {
		t.Fatal(err)
	}
	if r.CachedCount() != 2 {
		t.Fatalf("CachedCount = %d, want 2", r.CachedCount())
	}
	if _, hit, _ := r.Answer(q1); hit {
		t.Error("evicted query must miss")
	}
	if _, hit, _ := r.Answer(q3); !hit {
		t.Error("fresh cached query must hit")
	}
	// Caching the same query twice is a no-op.
	if err := r.CacheQuery(q3, master.MatchAll(q3)); err != nil {
		t.Fatal(err)
	}
	if r.CachedCount() != 2 {
		t.Errorf("duplicate caching changed count: %d", r.CachedCount())
	}
}

func TestFilterReplicaFlatNamespaceSelective(t *testing.T) {
	// Section 3.3: a flat namespace (all employees under one container) can
	// be partially replicated by filter but not by subtree.
	master := buildMaster(t)
	eng := resync.NewEngine(master)
	r, err := NewFilterReplica()
	if err != nil {
		t.Fatal(err)
	}
	gen := query.MustNew("c=us,o=xyz", query.ScopeSubtree, "(serialnumber=040*)")
	syncStored(t, master, eng, r, gen)
	// Only the matching children of the flat container are held.
	if r.EntryCount() >= 7 {
		t.Errorf("selective replication held %d entries", r.EntryCount())
	}
	if _, hit, _ := r.Answer(query.MustNew("c=us,o=xyz", query.ScopeSubtree, "(serialnumber=0402)")); !hit {
		t.Error("selective content must answer contained query")
	}
}

// sortParentsFirst orders entries by DN depth so Load sees parents first.
func sortParentsFirst(entries []*entry.Entry) []*entry.Entry {
	out := append([]*entry.Entry(nil), entries...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].DN().Depth() < out[j-1].DN().Depth(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestStaleCachedEntryDoesNotLeakIntoFreshAnswers(t *testing.T) {
	// A cached user query holds a stale copy of an entry; a fresh query
	// contained in a synced stored filter must not be answered with it.
	master := buildMaster(t)
	eng := resync.NewEngine(master)
	r, err := NewFilterReplica(WithCacheCapacity(4))
	if err != nil {
		t.Fatal(err)
	}
	stored := query.MustNew("", query.ScopeSubtree, "(serialnumber=04*)")
	cookie := syncStored(t, master, eng, r, stored)

	// Cache a user query whose result includes p3 (serial 0403).
	cq := query.MustNew("", query.ScopeSubtree, "(cn=p3)")
	if err := r.CacheQuery(cq, master.MatchAll(cq)); err != nil {
		t.Fatal(err)
	}

	// The master moves p3 out of the stored content; the stored filter
	// syncs, the cache (per the paper) does not.
	if err := master.Modify(dn.MustParse("cn=p3,c=us,o=xyz"),
		[]dit.Mod{{Op: dit.ModReplace, Attr: "serialNumber", Values: []string{"0999"}}}); err != nil {
		t.Fatal(err)
	}
	poll, err := eng.Poll(cookie)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ApplySync(stored, poll.Updates); err != nil {
		t.Fatal(err)
	}

	// Fresh contained query: the stale cached copy (still carrying 0403)
	// must not surface.
	entries, hit, via := r.Answer(query.MustNew("", query.ScopeSubtree, "(serialnumber=0403)"))
	if !hit {
		t.Fatal("query contained in synced filter must hit")
	}
	if len(entries) != 0 {
		t.Fatalf("stale entry leaked into fresh answer via %s: %v", via, entries)
	}
	// The cached query itself still answers (staleness is its documented
	// contract).
	entries, hit, _ = r.Answer(cq)
	if !hit || len(entries) != 1 {
		t.Fatalf("cached query answer: hit=%v n=%d", hit, len(entries))
	}
}
