package replica

import (
	"fmt"
	"sort"

	"filterdir/internal/dn"
	"filterdir/internal/query"
	"filterdir/internal/resync"
	"filterdir/internal/selection"
)

// Supplier is the master-side synchronization interface an adaptive replica
// consumes. It is implemented locally by resync.Engine (via LocalSupplier)
// and remotely by the LDAP client (ldapnet.ClientSupplier), so a replica
// adapts the same way in-process and over the wire.
type Supplier interface {
	// SyncBegin starts a session for the content of q, returning the
	// initial content and the session cookie.
	SyncBegin(q query.Query) (updates []resync.Update, cookie string, err error)
	// SyncPoll returns the net updates since the last poll. fullReload
	// reports that the content was resent from scratch.
	SyncPoll(cookie string) (updates []resync.Update, newCookie string, fullReload bool, err error)
	// SyncEnd terminates a session.
	SyncEnd(cookie string) error
}

// LocalSupplier adapts a resync.Engine to the Supplier interface.
type LocalSupplier struct {
	Engine *resync.Engine
}

var _ Supplier = LocalSupplier{}

// SyncBegin implements Supplier.
func (s LocalSupplier) SyncBegin(q query.Query) ([]resync.Update, string, error) {
	res, err := s.Engine.Begin(q)
	if err != nil {
		return nil, "", err
	}
	return res.Updates, res.Cookie, nil
}

// SyncPoll implements Supplier.
func (s LocalSupplier) SyncPoll(cookie string) ([]resync.Update, string, bool, error) {
	res, err := s.Engine.Poll(cookie)
	if err != nil {
		return nil, "", false, err
	}
	return res.Updates, res.Cookie, res.FullReload, nil
}

// SyncEnd implements Supplier.
func (s LocalSupplier) SyncEnd(cookie string) error { return s.Engine.End(cookie) }

// AdaptiveReplica combines a FilterReplica with the Section 6.2 selection
// loop: every answered query feeds the candidate statistics, revolutions
// install and release filters, and stored content is kept synchronized
// through the Supplier. The two update-traffic components of Section 7.3
// are accounted separately.
type AdaptiveReplica struct {
	Replica  *FilterReplica
	Selector *selection.Selector
	Supplier Supplier

	cookies map[string]string
	specs   map[string]query.Query
	periods map[string]int
	tick    int

	// ResyncTraffic accumulates component (i): keeping stored filters in
	// sync with the master.
	ResyncTraffic resync.Traffic
	// FetchTraffic accumulates component (ii): initial content transfers
	// for newly selected filters.
	FetchTraffic resync.Traffic
}

// NewAdaptiveReplica wires the pieces together.
func NewAdaptiveReplica(rep *FilterReplica, sel *selection.Selector, sup Supplier) *AdaptiveReplica {
	return &AdaptiveReplica{
		Replica:  rep,
		Selector: sel,
		Supplier: sup,
		cookies:  make(map[string]string),
		specs:    make(map[string]query.Query),
	}
}

// Serve answers one user query and feeds the selection statistics. The
// observed query's base is generalized to the root so candidates answer
// minimally-directory-enabled applications too.
func (a *AdaptiveReplica) Serve(q query.Query) (hit bool, err error) {
	_, hit, _ = a.Replica.Answer(q)
	obs := q
	obs.Base = dn.Root
	if d := a.Selector.Observe(obs); d != nil {
		if err := a.ApplyDelta(d); err != nil {
			return hit, err
		}
	}
	return hit, nil
}

// ApplyDelta installs a revolution outcome: removed filters release their
// content and session, added filters begin synchronization.
func (a *AdaptiveReplica) ApplyDelta(d *selection.Delta) error {
	if d == nil {
		return nil
	}
	for _, q := range d.Remove {
		if err := a.RemoveFilter(q); err != nil {
			return err
		}
	}
	for _, q := range d.Add {
		if err := a.AddFilter(q); err != nil {
			return err
		}
	}
	return nil
}

// AddFilter begins replicating a query (idempotent).
func (a *AdaptiveReplica) AddFilter(q query.Query) error {
	key := q.Normalize().Key()
	if _, ok := a.cookies[key]; ok {
		return nil
	}
	updates, cookie, err := a.Supplier.SyncBegin(q)
	if err != nil {
		return fmt.Errorf("begin sync %s: %w", q.FilterString(), err)
	}
	a.Replica.AddStored(q, cookie)
	if err := a.Replica.ApplySync(q, updates); err != nil {
		return err
	}
	for _, u := range updates {
		a.FetchTraffic.Add(u)
	}
	a.cookies[key] = cookie
	a.specs[key] = q
	return nil
}

// RemoveFilter stops replicating a query and releases its content.
func (a *AdaptiveReplica) RemoveFilter(q query.Query) error {
	key := q.Normalize().Key()
	cookie, ok := a.cookies[key]
	if !ok {
		return nil
	}
	delete(a.cookies, key)
	delete(a.specs, key)
	a.Replica.RemoveStored(q)
	return a.Supplier.SyncEnd(cookie)
}

// SyncAll polls every stored filter's session and applies the updates,
// regardless of configured periods.
func (a *AdaptiveReplica) SyncAll() error {
	keys := make([]string, 0, len(a.cookies))
	for k := range a.cookies {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if err := a.syncOne(key); err != nil {
			return err
		}
	}
	return nil
}

// Close ends every session.
func (a *AdaptiveReplica) Close() error {
	var firstErr error
	for key, cookie := range a.cookies {
		if err := a.Supplier.SyncEnd(cookie); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(a.cookies, key)
		delete(a.specs, key)
	}
	return firstErr
}

// StoredFilters returns the currently replicated queries.
func (a *AdaptiveReplica) StoredFilters() []query.Query {
	out := make([]query.Query, 0, len(a.specs))
	for _, q := range a.specs {
		out = append(out, q)
	}
	return out
}

// --- Per-filter consistency levels (Section 3.2) ------------------------------
//
// A filter-based replica can give different object types different
// consistency levels: the location tree may tolerate hourly staleness while
// people data polls every few seconds. Periods are expressed in ticks of
// the caller's clock (SyncDue is typically driven by one ticker).

// SetSyncPeriod assigns a poll period (in ticks) to a replicated filter;
// filters without a period sync on every SyncDue call. Period 0 restores
// the default.
func (a *AdaptiveReplica) SetSyncPeriod(q query.Query, period int) {
	key := q.Normalize().Key()
	if a.periods == nil {
		a.periods = make(map[string]int)
	}
	if period <= 0 {
		delete(a.periods, key)
		return
	}
	a.periods[key] = period
}

// SyncDue advances the replica's clock by one tick and polls exactly the
// filters whose period divides the new tick (filters without a period poll
// every tick).
func (a *AdaptiveReplica) SyncDue() error {
	a.tick++
	keys := make([]string, 0, len(a.cookies))
	for k := range a.cookies {
		if p := a.periods[k]; p <= 1 || a.tick%p == 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		if err := a.syncOne(key); err != nil {
			return err
		}
	}
	return nil
}

// syncOne polls a single filter's session and applies the updates.
func (a *AdaptiveReplica) syncOne(key string) error {
	updates, newCookie, fullReload, err := a.Supplier.SyncPoll(a.cookies[key])
	if err != nil {
		return fmt.Errorf("poll %s: %w", a.specs[key].FilterString(), err)
	}
	if fullReload {
		spec := a.specs[key]
		a.Replica.RemoveStored(spec)
		a.Replica.AddStored(spec, newCookie)
	}
	if err := a.Replica.ApplySync(a.specs[key], updates); err != nil {
		return err
	}
	a.cookies[key] = newCookie
	for _, u := range updates {
		a.ResyncTraffic.Add(u)
	}
	return nil
}
