package resync

import (
	"sync"
)

// Subscription is a persist-mode synchronization: after the initial content
// (or the updates since the resumed cookie) is delivered, subsequent content
// changes are pushed on Updates until Close is called — the protocol's
// "persist" mode, equivalent to a persistent search held open per filter.
type Subscription struct {
	// Updates delivers batches of net updates. The channel is closed when
	// the subscription ends.
	Updates <-chan []Update

	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// Close ends the subscription and waits for its goroutine to exit.
func (s *Subscription) Close() {
	s.closeOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Persist upgrades a session to persist mode: the returned subscription
// first delivers any updates accumulated since the session cookie, then
// pushes each further change batch as it commits. The session remains
// registered; Close leaves it resumable by cookie (poll mode), matching the
// protocol's mode switch in Figure 3.
func (e *Engine) Persist(cookie string) (*Subscription, error) {
	sess, err := e.lookup(cookie)
	if err != nil {
		return nil, err
	}
	e.stats.PersistStreams.Add(1)

	ch := make(chan []Update, 1)
	sub := &Subscription{
		Updates: ch,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go func() {
		defer close(sub.done)
		defer close(ch)
		for {
			// Arm the signal before polling so commits between poll and wait
			// are not missed.
			sig := e.store.ChangeSignal()
			sess.mu.Lock()
			if sess.ended {
				sess.mu.Unlock()
				return
			}
			res, err := e.poll(sess)
			sess.mu.Unlock()
			if err != nil {
				return
			}
			if len(res.Updates) > 0 {
				select {
				case ch <- res.Updates:
				case <-sub.stop:
					return
				}
			}
			select {
			case <-sig:
			case <-sub.stop:
				return
			}
		}
	}()
	return sub, nil
}
