package resync

import (
	"fmt"
	"sync"
)

// Batch is one pushed unit of a persist-mode subscription: the updates of
// one committed change interval plus the cookie naming the sync point the
// replica reaches by applying them. A consumer that adopts the cookie (and
// presents it when it later polls) acknowledges everything up to the batch;
// a consumer that crashes mid-stream re-presents its last adopted cookie
// and the missed batches are recomputed.
type Batch struct {
	Updates []Update
	Cookie  string
	// CSN is the master-position watermark the batch syncs the consumer to
	// (see PollResult.CSN).
	CSN uint64
	// Enc, when non-nil, memoizes the wire encoding of each update: a
	// batch fanned out to many sessions of one content view is BER-encoded
	// once, not once per session.
	Enc *SharedEnc
}

// SharedEnc memoizes wire encodings per update of a shared batch: the
// BER-encoded PDU body, and — for updates whose controls carry no
// per-session state — the whole message tail (op TLV + controls), so the
// per-consumer work shrinks to stamping a message ID. Safe for concurrent
// use; the zero value is ready.
type SharedEnc struct {
	mu   sync.Mutex
	enc  map[int][]byte
	tail map[int][]byte
}

// Get returns the cached PDU-body encoding of update i, building and
// caching it via build on first use. The second result reports whether
// build ran (i.e. this call paid for the encoding).
func (s *SharedEnc) Get(i int, build func() ([]byte, error)) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return memo(&s.enc, i, build)
}

// GetTail is Get for the message-ID-independent tail of update i. Callers
// must only share tails for updates whose controls are identical across
// consumers (in particular: no per-session cookie).
func (s *SharedEnc) GetTail(i int, build func() ([]byte, error)) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return memo(&s.tail, i, build)
}

// memo resolves index i in *m, building on first use. The caller holds the
// SharedEnc lock, so build must not call back into Get/GetTail.
func memo(m *map[int][]byte, i int, build func() ([]byte, error)) ([]byte, bool, error) {
	if b, ok := (*m)[i]; ok {
		return b, false, nil
	}
	b, err := build()
	if err != nil {
		return nil, true, err
	}
	if *m == nil {
		*m = make(map[int][]byte)
	}
	(*m)[i] = b
	return b, true, nil
}

// Subscription is a persist-mode synchronization: after the initial content
// (or the updates since the resumed cookie) is delivered, subsequent content
// changes are pushed on Updates until Close is called — the protocol's
// "persist" mode, equivalent to a persistent search held open per filter.
type Subscription struct {
	// Updates delivers batches of net updates. The channel is closed when
	// the subscription ends — including when the master's journal history
	// no longer covers the stream position (the consumer must fall back to
	// a poll, which will carry the full reload) and when the slow-consumer
	// policy demotes a lagging stream back to poll mode.
	Updates <-chan Batch

	closeOnce sync.Once
	detach    func()
}

// Close ends the subscription. On return the stream no longer advances the
// session; it stays registered and resumable by cookie.
func (s *Subscription) Close() {
	s.closeOnce.Do(s.detach)
}

// Persist upgrades a session to persist mode: the returned subscription
// pushes each change batch committed after the presented sync point. The
// cookie must name a live sync point; newer unacknowledged points are
// rolled back (their updates will be re-pushed) but nothing is
// acknowledged — a streamed batch is only acknowledged when the consumer
// later presents its cookie. The session remains registered; Close leaves
// it resumable by cookie (poll mode), matching the protocol's mode switch
// in Figure 3.
//
// Grouped sessions are served by their group's broadcaster — one update
// cycle per commit for the whole group — behind a bounded per-subscriber
// queue with the slow-consumer policy described in group.go. Ungrouped
// sessions keep a dedicated streaming goroutine.
func (e *Engine) Persist(cookie string) (*Subscription, error) {
	sess, err := e.lookup(cookie)
	if err != nil {
		return nil, err
	}
	_, gen := splitCookie(cookie)
	sess.mu.Lock()
	ok := !sess.ended && sess.rollbackTo(gen)
	if ok {
		// The presented cookie proves the consumer holds the content of any
		// completed chunked transfer; release its pinned snapshot.
		e.settleTransfer(sess)
	}
	sess.mu.Unlock()
	if !ok {
		// An unknown sync point cannot be streamed from incrementally; the
		// consumer must poll (getting a full reload) and re-subscribe.
		return nil, fmt.Errorf("%w: %q", ErrNoSuchSession, cookie)
	}
	e.stats.PersistStreams.Add(1)
	if sess.group != nil {
		return sess.group.attach(sess), nil
	}
	return e.persistSolo(sess), nil
}

// persistSolo streams one ungrouped session from a dedicated goroutine.
func (e *Engine) persistSolo(sess *session) *Subscription {
	ch := make(chan Batch, 1)
	stop := make(chan struct{})
	done := make(chan struct{})
	sub := &Subscription{
		Updates: ch,
		detach: func() {
			close(stop)
			<-done
		},
	}
	go func() {
		defer close(done)
		defer close(ch)
		for {
			// Arm the signal before polling so commits between poll and wait
			// are not missed.
			sig := e.store.ChangeSignal()
			sess.mu.Lock()
			if sess.ended {
				sess.mu.Unlock()
				return
			}
			res, err := e.poll(sess)
			sess.mu.Unlock()
			if err != nil {
				return
			}
			if res.FullReload {
				// The journal no longer covers the stream position; a push
				// stream cannot convey a reload. End the stream — the
				// consumer's fallback poll re-delivers the content.
				return
			}
			if len(res.Updates) > 0 {
				select {
				case ch <- Batch{Updates: res.Updates, Cookie: res.Cookie, CSN: res.CSN}:
				case <-stop:
					return
				}
			}
			select {
			case <-sig:
			case <-stop:
				return
			}
		}
	}()
	return sub
}
