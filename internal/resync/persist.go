package resync

import (
	"fmt"
	"sync"
)

// Batch is one pushed unit of a persist-mode subscription: the updates of
// one committed change interval plus the cookie naming the sync point the
// replica reaches by applying them. A consumer that adopts the cookie (and
// presents it when it later polls) acknowledges everything up to the batch;
// a consumer that crashes mid-stream re-presents its last adopted cookie
// and the missed batches are recomputed.
type Batch struct {
	Updates []Update
	Cookie  string
}

// Subscription is a persist-mode synchronization: after the initial content
// (or the updates since the resumed cookie) is delivered, subsequent content
// changes are pushed on Updates until Close is called — the protocol's
// "persist" mode, equivalent to a persistent search held open per filter.
type Subscription struct {
	// Updates delivers batches of net updates. The channel is closed when
	// the subscription ends — including when the master's journal history
	// no longer covers the stream position, in which case the consumer
	// must fall back to a poll (which will carry the full reload).
	Updates <-chan Batch

	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// Close ends the subscription and waits for its goroutine to exit.
func (s *Subscription) Close() {
	s.closeOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Persist upgrades a session to persist mode: the returned subscription
// pushes each change batch committed after the presented sync point. The
// cookie must name a live sync point; newer unacknowledged points are
// rolled back (their updates will be re-pushed) but nothing is
// acknowledged — a streamed batch is only acknowledged when the consumer
// later presents its cookie. The session remains registered; Close leaves
// it resumable by cookie (poll mode), matching the protocol's mode switch
// in Figure 3.
func (e *Engine) Persist(cookie string) (*Subscription, error) {
	sess, err := e.lookup(cookie)
	if err != nil {
		return nil, err
	}
	_, gen := splitCookie(cookie)
	sess.mu.Lock()
	ok := !sess.ended && sess.rollbackTo(gen)
	sess.mu.Unlock()
	if !ok {
		// An unknown sync point cannot be streamed from incrementally; the
		// consumer must poll (getting a full reload) and re-subscribe.
		return nil, fmt.Errorf("%w: %q", ErrNoSuchSession, cookie)
	}
	e.stats.PersistStreams.Add(1)

	ch := make(chan Batch, 1)
	sub := &Subscription{
		Updates: ch,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go func() {
		defer close(sub.done)
		defer close(ch)
		for {
			// Arm the signal before polling so commits between poll and wait
			// are not missed.
			sig := e.store.ChangeSignal()
			sess.mu.Lock()
			if sess.ended {
				sess.mu.Unlock()
				return
			}
			res, err := e.poll(sess)
			sess.mu.Unlock()
			if err != nil {
				return
			}
			if res.FullReload {
				// The journal no longer covers the stream position; a push
				// stream cannot convey a reload. End the stream — the
				// consumer's fallback poll re-delivers the content.
				return
			}
			if len(res.Updates) > 0 {
				select {
				case ch <- Batch{Updates: res.Updates, Cookie: res.Cookie}:
				case <-sub.stop:
					return
				}
			}
			select {
			case <-sig:
			case <-sub.stop:
				return
			}
		}
	}()
	return sub, nil
}
