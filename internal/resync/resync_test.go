package resync

import (
	"fmt"
	"math/rand"
	"testing"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/query"
)

// newMaster builds a master with a handful of person entries under c=us.
func newMaster(t testing.TB) *dit.Store {
	t.Helper()
	st, err := dit.NewStore([]string{"o=xyz"})
	if err != nil {
		t.Fatal(err)
	}
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	if err := st.Add(org); err != nil {
		t.Fatal(err)
	}
	us := entry.New(dn.MustParse("c=us,o=xyz"))
	us.Put("objectclass", "country").Put("c", "us")
	if err := st.Add(us); err != nil {
		t.Fatal(err)
	}
	return st
}

func addPerson(t testing.TB, st *dit.Store, cn, serial, dept string) dn.DN {
	t.Helper()
	d := dn.MustParse(fmt.Sprintf("cn=%s,c=us,o=xyz", cn))
	e := entry.New(d)
	e.Put("objectclass", "person", "inetOrgPerson").
		Put("cn", cn).Put("sn", cn).
		Put("serialNumber", serial).Put("dept", dept)
	if err := st.Add(e); err != nil {
		t.Fatal(err)
	}
	return d
}

func newReplicaStore(t testing.TB) *dit.Store {
	t.Helper()
	st, err := dit.NewStore([]string{""})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

var specSerial04 = query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)")

func TestBeginSendsContent(t *testing.T) {
	master := newMaster(t)
	addPerson(t, master, "a", "0401", "1")
	addPerson(t, master, "b", "0402", "1")
	addPerson(t, master, "c", "0501", "1") // outside content

	eng := NewEngine(master)
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Updates) != 2 {
		t.Fatalf("initial content = %d updates, want 2", len(res.Updates))
	}
	for _, u := range res.Updates {
		if u.Action != ActionAdd || u.Entry == nil {
			t.Errorf("initial update malformed: %+v", u)
		}
	}
	if res.Cookie == "" {
		t.Error("no cookie returned")
	}
}

func TestPollClassification(t *testing.T) {
	master := newMaster(t)
	a := addPerson(t, master, "a", "0401", "1")
	b := addPerson(t, master, "b", "0402", "1")
	addPerson(t, master, "c", "0501", "1")

	eng := NewEngine(master)
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	cookie := res.Cookie

	// E11: modify inside content.
	if err := master.Modify(a, []dit.Mod{{Op: dit.ModReplace, Attr: "dept", Values: []string{"9"}}}); err != nil {
		t.Fatal(err)
	}
	// E10: modify out of content.
	if err := master.Modify(b, []dit.Mod{{Op: dit.ModReplace, Attr: "serialNumber", Values: []string{"0999"}}}); err != nil {
		t.Fatal(err)
	}
	// E01: new entry in content.
	addPerson(t, master, "d", "0403", "2")
	// Out-of-content change: must not appear.
	if err := master.Modify(dn.MustParse("cn=c,c=us,o=xyz"), []dit.Mod{{Op: dit.ModReplace, Attr: "dept", Values: []string{"7"}}}); err != nil {
		t.Fatal(err)
	}

	res, err = eng.Poll(cookie)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]Action{}
	for _, u := range res.Updates {
		got[u.DN.String()] = u.Action
	}
	want := map[string]Action{
		"cn=a,c=us,o=xyz": ActionModify,
		"cn=b,c=us,o=xyz": ActionDelete,
		"cn=d,c=us,o=xyz": ActionAdd,
	}
	if len(got) != len(want) {
		t.Fatalf("updates = %v, want %v", got, want)
	}
	for d, act := range want {
		if got[d] != act {
			t.Errorf("update for %s = %v, want %v", d, got[d], act)
		}
	}
	// Delete PDUs carry no entry.
	for _, u := range res.Updates {
		if u.Action == ActionDelete && u.Entry != nil {
			t.Error("delete update must carry DN only")
		}
	}
}

func TestPollCoalescesToNet(t *testing.T) {
	master := newMaster(t)
	eng := NewEngine(master)
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	cookie := res.Cookie

	// Add then delete within one interval: net nothing.
	d := addPerson(t, master, "x", "0404", "1")
	if err := master.Delete(d); err != nil {
		t.Fatal(err)
	}
	// Add then modify: net one add with final state.
	e := addPerson(t, master, "y", "0405", "1")
	if err := master.Modify(e, []dit.Mod{{Op: dit.ModReplace, Attr: "dept", Values: []string{"42"}}}); err != nil {
		t.Fatal(err)
	}

	res, err = eng.Poll(cookie)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Updates) != 1 {
		t.Fatalf("net updates = %d, want 1 (%v)", len(res.Updates), res.Updates)
	}
	u := res.Updates[0]
	if u.Action != ActionAdd || u.Entry.First("dept") != "42" {
		t.Errorf("net add with final state expected, got %v dept=%q", u.Action, u.Entry.First("dept"))
	}
}

func TestModifyDNWithinContent(t *testing.T) {
	// Figure 3: a rename that keeps the entry in content is a delete of the
	// old DN plus an add of the new DN (E3 -> E5).
	master := newMaster(t)
	old := addPerson(t, master, "e3", "0403", "1")
	eng := NewEngine(master)
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	cookie := res.Cookie

	if err := master.ModifyDN(old, dn.RDN{Attr: "cn", Value: "e5"}, dn.MustParse("c=us,o=xyz")); err != nil {
		t.Fatal(err)
	}
	res, err = eng.Poll(cookie)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Updates) != 2 {
		t.Fatalf("rename updates = %d, want 2 (%v)", len(res.Updates), res.Updates)
	}
	acts := map[string]Action{}
	for _, u := range res.Updates {
		acts[u.DN.String()] = u.Action
	}
	if acts["cn=e3,c=us,o=xyz"] != ActionDelete || acts["cn=e5,c=us,o=xyz"] != ActionAdd {
		t.Errorf("rename classification wrong: %v", acts)
	}
}

func TestFigure3Session(t *testing.T) {
	// Reproduce the message sequence of Figure 3: initial poll returns
	// E1,E2,E3 as adds; the second poll sees E4 added, E1,E2 deleted, E3
	// modified; persist mode then delivers E3 renamed to E5 (delete+add).
	master := newMaster(t)
	spec := query.MustNew("o=xyz", query.ScopeSubtree, "(objectclass=inetorgperson)")
	e1 := addPerson(t, master, "E1", "0001", "1")
	e2 := addPerson(t, master, "E2", "0002", "1")
	e3 := addPerson(t, master, "E3", "0003", "1")

	eng := NewEngine(master)
	res, err := eng.Begin(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Updates) != 3 {
		t.Fatalf("initial = %d, want 3", len(res.Updates))
	}
	cookie := res.Cookie

	addPerson(t, master, "E4", "0004", "1")
	if err := master.Delete(e1); err != nil {
		t.Fatal(err)
	}
	if err := master.Delete(e2); err != nil {
		t.Fatal(err)
	}
	if err := master.Modify(e3, []dit.Mod{{Op: dit.ModReplace, Attr: "dept", Values: []string{"2"}}}); err != nil {
		t.Fatal(err)
	}

	res, err = eng.Poll(cookie)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Action]int{}
	for _, u := range res.Updates {
		counts[u.Action]++
	}
	if counts[ActionAdd] != 1 || counts[ActionDelete] != 2 || counts[ActionModify] != 1 {
		t.Fatalf("poll 2 = %v", counts)
	}

	// Persist mode: rename E3 -> E5.
	sub, err := eng.Persist(res.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	if err := master.ModifyDN(e3, dn.RDN{Attr: "cn", Value: "E5"}, dn.MustParse("c=us,o=xyz")); err != nil {
		t.Fatal(err)
	}
	batch := <-sub.Updates
	sub.Close()
	acts := map[string]Action{}
	for _, u := range batch.Updates {
		acts[u.DN.String()] = u.Action
	}
	if batch.Cookie == "" {
		t.Error("pushed batch carried no sync-point cookie")
	}
	if acts["cn=E3,c=us,o=xyz"] != ActionDelete || acts["cn=E5,c=us,o=xyz"] != ActionAdd {
		t.Errorf("persist rename = %v", acts)
	}
	if err := eng.End(res.Cookie); err != nil {
		t.Fatal(err)
	}
	if eng.Sessions() != 0 {
		t.Error("session not removed by End")
	}
}

func TestFullReloadAfterTrim(t *testing.T) {
	masterBase, err := dit.NewStore([]string{"o=xyz"}, dit.WithJournalLimit(2))
	if err != nil {
		t.Fatal(err)
	}
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	if err := masterBase.Add(org); err != nil {
		t.Fatal(err)
	}
	us := entry.New(dn.MustParse("c=us,o=xyz"))
	us.Put("objectclass", "country").Put("c", "us")
	if err := masterBase.Add(us); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(masterBase)
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	cookie := res.Cookie
	// Generate more changes than the journal holds.
	for i := 0; i < 5; i++ {
		addPerson(t, masterBase, fmt.Sprintf("p%d", i), fmt.Sprintf("040%d", i), "1")
	}
	res, err = eng.Poll(cookie)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullReload {
		t.Fatal("expected FullReload after journal trim")
	}
	if len(res.Updates) != 5 {
		t.Errorf("reload carried %d entries, want 5", len(res.Updates))
	}
}

func TestApplierConvergence(t *testing.T) {
	master := newMaster(t)
	a := addPerson(t, master, "a", "0401", "1")
	addPerson(t, master, "b", "0402", "1")

	eng := NewEngine(master)
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	replica := newReplicaStore(t)
	ap := NewApplier(replica)
	if err := ap.Apply(specSerial04, res); err != nil {
		t.Fatal(err)
	}
	if ok, why := Converged(master, replica, specSerial04); !ok {
		t.Fatalf("not converged after initial sync: %s", why)
	}

	if err := master.Modify(a, []dit.Mod{{Op: dit.ModReplace, Attr: "dept", Values: []string{"8"}}}); err != nil {
		t.Fatal(err)
	}
	addPerson(t, master, "c", "0403", "1")
	res, err = eng.Poll(res.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.Apply(specSerial04, res); err != nil {
		t.Fatal(err)
	}
	if ok, why := Converged(master, replica, specSerial04); !ok {
		t.Fatalf("not converged after poll: %s", why)
	}
	if ap.Traffic.Updates() == 0 || ap.Traffic.Bytes == 0 {
		t.Error("traffic not accounted")
	}
}

// randomUpdates drives a random mutation stream against the master.
var randomUpdateSeq int

func randomUpdates(t testing.TB, r *rand.Rand, master *dit.Store, people []dn.DN, steps int) []dn.DN {
	t.Helper()
	serial := func() string { return fmt.Sprintf("0%d%02d", 4+r.Intn(2), r.Intn(100)) }
	randomUpdateSeq++
	next := randomUpdateSeq * 100000
	for i := 0; i < steps; i++ {
		switch op := r.Intn(10); {
		case op < 3 || len(people) == 0: // add
			d := dn.MustParse(fmt.Sprintf("cn=r%d,c=us,o=xyz", next))
			next++
			e := entry.New(d)
			e.Put("objectclass", "person", "inetOrgPerson").Put("cn", fmt.Sprintf("r%d", next)).
				Put("sn", "r").Put("serialNumber", serial()).Put("dept", fmt.Sprintf("%d", r.Intn(5)))
			if err := master.Add(e); err != nil {
				t.Fatal(err)
			}
			people = append(people, d)
		case op < 6: // modify (possibly moving in/out of content)
			d := people[r.Intn(len(people))]
			if _, ok := master.Get(d); !ok {
				continue
			}
			if err := master.Modify(d, []dit.Mod{{Op: dit.ModReplace, Attr: "serialNumber", Values: []string{serial()}}}); err != nil {
				t.Fatal(err)
			}
		case op < 8: // delete
			idx := r.Intn(len(people))
			d := people[idx]
			if _, ok := master.Get(d); !ok {
				continue
			}
			if err := master.Delete(d); err != nil {
				t.Fatal(err)
			}
			people = append(people[:idx], people[idx+1:]...)
		default: // rename
			idx := r.Intn(len(people))
			d := people[idx]
			if _, ok := master.Get(d); !ok {
				continue
			}
			newRDN := dn.RDN{Attr: "cn", Value: fmt.Sprintf("m%d", next)}
			next++
			if err := master.ModifyDN(d, newRDN, dn.MustParse("c=us,o=xyz")); err != nil {
				t.Fatal(err)
			}
			people[idx] = dn.MustParse(newRDN.String() + ",c=us,o=xyz")
		}
	}
	return people
}

func TestConvergenceUnderRandomStream(t *testing.T) {
	// Property: after any interleaving of updates and polls, the replica
	// content equals the master content — ReSync's convergence guarantee.
	for seed := int64(1); seed <= 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		master := newMaster(t)
		var people []dn.DN
		for i := 0; i < 20; i++ {
			people = append(people, addPerson(t, master, fmt.Sprintf("s%d", i), fmt.Sprintf("04%02d", i), "1"))
		}
		eng := NewEngine(master)
		res, err := eng.Begin(specSerial04)
		if err != nil {
			t.Fatal(err)
		}
		replica := newReplicaStore(t)
		ap := NewApplier(replica)
		if err := ap.Apply(specSerial04, res); err != nil {
			t.Fatal(err)
		}
		cookie := res.Cookie
		for round := 0; round < 8; round++ {
			people = randomUpdates(t, r, master, people, 15)
			res, err := eng.Poll(cookie)
			if err != nil {
				t.Fatal(err)
			}
			cookie = res.Cookie
			if err := ap.Apply(specSerial04, res); err != nil {
				t.Fatal(err)
			}
			if ok, why := Converged(master, replica, specSerial04); !ok {
				t.Fatalf("seed %d round %d: %s", seed, round, why)
			}
		}
	}
}

func TestRetainModeConverges(t *testing.T) {
	master := newMaster(t)
	var people []dn.DN
	for i := 0; i < 10; i++ {
		people = append(people, addPerson(t, master, fmt.Sprintf("s%d", i), fmt.Sprintf("04%02d", i), "1"))
	}
	eng := NewEngine(master)
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	replica := newReplicaStore(t)
	ap := NewApplier(replica)
	if err := ap.Apply(specSerial04, res); err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(3))
	randomUpdates(t, r, master, people, 25)
	ret, err := eng.PollRetain(res.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.ApplyRetain(specSerial04, ret); err != nil {
		t.Fatal(err)
	}
	if ok, why := Converged(master, replica, specSerial04); !ok {
		t.Fatalf("retain mode did not converge: %s", why)
	}
	// Retain actions must appear for unchanged entries.
	hasRetain := false
	for _, u := range ret.Updates {
		if u.Action == ActionRetain {
			hasRetain = true
			if u.Entry != nil {
				t.Error("retain update must carry DN only")
			}
		}
	}
	if !hasRetain {
		t.Error("expected retain actions for unchanged entries")
	}
}

func TestTombstoneSendsAllDeletes(t *testing.T) {
	master := newMaster(t)
	in := addPerson(t, master, "in", "0401", "1")
	out := addPerson(t, master, "out", "0901", "1")

	ts := NewTombstoneServer(master)
	res, sess := ts.Begin(specSerial04)
	if len(res.Updates) != 1 {
		t.Fatalf("initial tombstone content = %d", len(res.Updates))
	}
	// Delete both: a ReSync session would ship one delete; tombstones ship
	// both DNs.
	if err := master.Delete(in); err != nil {
		t.Fatal(err)
	}
	if err := master.Delete(out); err != nil {
		t.Fatal(err)
	}
	res, ok := ts.Poll(sess)
	if !ok {
		t.Fatal("tombstone poll failed")
	}
	deletes := 0
	for _, u := range res.Updates {
		if u.Action == ActionDelete {
			deletes++
		}
	}
	if deletes != 2 {
		t.Errorf("tombstone deletes = %d, want 2 (all deleted DNs)", deletes)
	}
}

func TestChangelogDoesNotConverge(t *testing.T) {
	// The paper's failure case inverted: an entry is modified INTO the
	// content; the changelog record carries only the changed attributes, so
	// a consumer that does not hold the entry cannot construct it.
	master := newMaster(t)
	d := addPerson(t, master, "mover", "0901", "1") // outside content

	spec := specSerial04
	cs := NewChangelogServer(master)
	initial := master.MatchAll(query.Query{Base: spec.Base, Scope: spec.Scope, Filter: spec.Filter})
	consumer := NewChangelogConsumer(spec, initial)
	last := master.LastCSN()

	if err := master.Modify(d, []dit.Mod{{Op: dit.ModReplace, Attr: "serialNumber", Values: []string{"0404"}}}); err != nil {
		t.Fatal(err)
	}
	records, last, ok := cs.Since(spec, last)
	if !ok {
		t.Fatal("changelog trimmed")
	}
	consumer.Apply(records)
	_ = last

	// Master content now holds the mover; consumer does not.
	masterContent := master.MatchAll(query.Query{Base: spec.Base, Scope: spec.Scope, Filter: spec.Filter})
	if len(masterContent) != 1 {
		t.Fatalf("master content = %d, want 1", len(masterContent))
	}
	if len(consumer.Entries) != 0 {
		t.Fatalf("consumer should have missed the move-in, holds %d", len(consumer.Entries))
	}
}

func TestChangelogModifyOutAndDelete(t *testing.T) {
	// The paper's exact sequence: modify out of content, then delete. The
	// consumer holding the entry applies the mods, detects the move-out,
	// and the subsequent delete is harmless — but the server had to ship
	// both records because it could not classify them.
	master := newMaster(t)
	d := addPerson(t, master, "victim", "0401", "1")

	spec := specSerial04
	cs := NewChangelogServer(master)
	initial := master.MatchAll(query.Query{Base: spec.Base, Scope: spec.Scope, Filter: spec.Filter})
	consumer := NewChangelogConsumer(spec, initial)
	last := master.LastCSN()

	if err := master.Modify(d, []dit.Mod{{Op: dit.ModReplace, Attr: "serialNumber", Values: []string{"0901"}}}); err != nil {
		t.Fatal(err)
	}
	if err := master.Delete(d); err != nil {
		t.Fatal(err)
	}
	records, _, ok := cs.Since(spec, last)
	if !ok {
		t.Fatal("changelog trimmed")
	}
	if len(records) != 2 {
		t.Fatalf("changelog shipped %d records, want 2 (cannot classify)", len(records))
	}
	consumer.Apply(records)
	if len(consumer.Entries) != 0 {
		t.Error("consumer failed to drop the moved-out entry")
	}
}

func TestResyncTrafficBeatsBaselines(t *testing.T) {
	// Quantitative comparison on one workload: ReSync ships the minimal
	// set; retain mode adds retain PDUs; full reload ships everything.
	master := newMaster(t)
	var people []dn.DN
	for i := 0; i < 40; i++ {
		people = append(people, addPerson(t, master, fmt.Sprintf("p%d", i), fmt.Sprintf("04%02d", i), "1"))
	}
	eng := NewEngine(master)
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	cookieA := res.Cookie
	resB, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	cookieB := resB.Cookie

	// One small change.
	if err := master.Modify(people[0], []dit.Mod{{Op: dit.ModReplace, Attr: "dept", Values: []string{"9"}}}); err != nil {
		t.Fatal(err)
	}

	polled, err := eng.Poll(cookieA)
	if err != nil {
		t.Fatal(err)
	}
	retained, err := eng.PollRetain(cookieB)
	if err != nil {
		t.Fatal(err)
	}
	reload := FullReload(master, specSerial04)

	var tPoll, tRetain, tReload Traffic
	for _, u := range polled.Updates {
		tPoll.Add(u)
	}
	for _, u := range retained.Updates {
		tRetain.Add(u)
	}
	for _, u := range reload {
		tReload.Add(u)
	}
	if tPoll.Updates() != 1 {
		t.Errorf("resync shipped %d updates, want 1", tPoll.Updates())
	}
	if !(tPoll.Bytes < tRetain.Bytes && tRetain.Bytes < tReload.Bytes) {
		t.Errorf("expected resync < retain < reload bytes, got %d / %d / %d",
			tPoll.Bytes, tRetain.Bytes, tReload.Bytes)
	}
}

func TestPersistSubscriptionCloseIdempotent(t *testing.T) {
	master := newMaster(t)
	eng := NewEngine(master)
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := eng.Persist(res.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	sub.Close()
	sub.Close() // must not panic or hang
	if _, err := eng.Persist("nope"); err == nil {
		t.Error("Persist with bad cookie must fail")
	}
}

func TestPollUnknownCookie(t *testing.T) {
	eng := NewEngine(newMaster(t))
	if _, err := eng.Poll("bogus"); err == nil {
		t.Error("expected error for unknown cookie")
	}
	if err := eng.End("bogus"); err == nil {
		t.Error("expected error ending unknown cookie")
	}
}

func TestTrafficAccounting(t *testing.T) {
	e := entry.New(dn.MustParse("cn=a,o=xyz"))
	e.Put("objectclass", "person").Put("cn", "a").Put("sn", "a")
	var tr Traffic
	tr.Add(Update{Action: ActionAdd, DN: e.DN(), Entry: e})
	tr.Add(Update{Action: ActionModify, DN: e.DN(), Entry: e})
	tr.Add(Update{Action: ActionDelete, DN: e.DN()})
	tr.Add(Update{Action: ActionRetain, DN: e.DN()})
	if tr.Adds != 1 || tr.Modifies != 1 || tr.Deletes != 1 || tr.Retains != 1 {
		t.Errorf("traffic counts: %+v", tr)
	}
	if tr.Updates() != 4 {
		t.Errorf("Updates() = %d", tr.Updates())
	}
	// A delete PDU is far smaller than an entry-bearing one.
	del := Update{Action: ActionDelete, DN: e.DN()}
	add := Update{Action: ActionAdd, DN: e.DN(), Entry: e}
	if del.ByteSize() >= add.ByteSize() {
		t.Errorf("delete PDU size %d not below add size %d", del.ByteSize(), add.ByteSize())
	}
	var total Traffic
	total.Merge(tr)
	total.Merge(tr)
	if total.Updates() != 8 || total.Bytes != 2*tr.Bytes {
		t.Errorf("Merge: %+v", total)
	}
}

func TestActionStrings(t *testing.T) {
	want := map[Action]string{
		ActionAdd: "add", ActionDelete: "delete",
		ActionModify: "modify", ActionRetain: "retain",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("Action(%d).String() = %q, want %q", a, a.String(), s)
		}
	}
	if Action(99).String() == "" {
		t.Error("unknown action must still render")
	}
}
