package resync

import (
	"fmt"
	"testing"
	"time"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/query"
)

// TestGroupMembership pins the content-group admission rules: grouping keys
// on (base, scope, filter) after normalization, falls back to the
// containment checker for equivalent-but-not-identical filters, and ignores
// the attribute selection entirely.
func TestGroupMembership(t *testing.T) {
	mk := func(base string, scope query.Scope, f string, attrs ...string) query.Query {
		return query.MustNew(base, scope, f, attrs...)
	}
	tests := []struct {
		name       string
		specs      []query.Query
		wantGroups int
		wantEquiv  int64 // joins resolved via the containment probe
	}{
		{
			name: "identical specs share a group",
			specs: []query.Query{
				mk("o=xyz", query.ScopeSubtree, "(serialnumber=04*)"),
				mk("o=xyz", query.ScopeSubtree, "(serialnumber=04*)"),
			},
			wantGroups: 1,
		},
		{
			name: "normalization-equal filters alias without a containment probe",
			specs: []query.Query{
				mk("o=xyz", query.ScopeSubtree, "(&(dept=eng)(serialnumber=04*))"),
				mk("O=XYZ", query.ScopeSubtree, "(&(serialnumber=04*)(dept=eng))"),
			},
			wantGroups: 1,
		},
		{
			name: "containment-equivalent filters join one group",
			specs: []query.Query{
				mk("o=xyz", query.ScopeSubtree, "(dept=eng)"),
				// Absorption: (a) == (|(a)(&(a)(b))). Normalization does not
				// reduce this, so only the mutual-containment probe can admit
				// it to the existing group.
				mk("o=xyz", query.ScopeSubtree, "(|(dept=eng)(&(dept=eng)(sn=a*)))"),
			},
			wantGroups: 1,
			wantEquiv:  1,
		},
		{
			name: "different filters get separate groups",
			specs: []query.Query{
				mk("o=xyz", query.ScopeSubtree, "(dept=eng)"),
				mk("o=xyz", query.ScopeSubtree, "(dept=mkt)"),
			},
			wantGroups: 2,
		},
		{
			name: "attribute selection does not split a group",
			specs: []query.Query{
				mk("o=xyz", query.ScopeSubtree, "(serialnumber=04*)", "cn"),
				mk("o=xyz", query.ScopeSubtree, "(serialnumber=04*)", "sn", "mail"),
				mk("o=xyz", query.ScopeSubtree, "(serialnumber=04*)"),
			},
			wantGroups: 1,
		},
		{
			name: "scope difference splits groups",
			specs: []query.Query{
				mk("o=xyz", query.ScopeSubtree, "(serialnumber=04*)"),
				mk("o=xyz", query.ScopeSingleLevel, "(serialnumber=04*)"),
			},
			wantGroups: 2,
		},
		{
			name: "base difference splits groups",
			specs: []query.Query{
				mk("o=xyz", query.ScopeSubtree, "(serialnumber=04*)"),
				mk("c=us,o=xyz", query.ScopeSubtree, "(serialnumber=04*)"),
			},
			wantGroups: 2,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			eng := NewEngine(newMaster(t))
			var cookies []string
			for i, spec := range tt.specs {
				res, err := eng.Begin(spec)
				if err != nil {
					t.Fatalf("begin %d: %v", i, err)
				}
				cookies = append(cookies, res.Cookie)
			}
			if got := eng.Groups(); got != tt.wantGroups {
				t.Errorf("Groups() = %d, want %d", got, tt.wantGroups)
			}
			snap := eng.Counters().Snapshot()
			if snap.GroupJoins != int64(len(tt.specs)) {
				t.Errorf("GroupJoins = %d, want %d", snap.GroupJoins, len(tt.specs))
			}
			if snap.GroupEquivJoins != tt.wantEquiv {
				t.Errorf("GroupEquivJoins = %d, want %d", snap.GroupEquivJoins, tt.wantEquiv)
			}
			for _, c := range cookies {
				if err := eng.End(c); err != nil {
					t.Fatalf("end %s: %v", c, err)
				}
			}
			if got := eng.Groups(); got != 0 {
				t.Errorf("Groups() after all ends = %d, want 0", got)
			}
			snap = eng.Counters().Snapshot()
			if snap.GroupLeaves != int64(len(tt.specs)) {
				t.Errorf("GroupLeaves = %d, want %d", snap.GroupLeaves, len(tt.specs))
			}
		})
	}
}

// TestGroupEquivalentKeysDiffer guards the premise of the containment-probe
// case above: the absorption pair must NOT collapse to one normalized key,
// or the table test would silently stop exercising the equivalence path.
func TestGroupEquivalentKeysDiffer(t *testing.T) {
	a := query.MustNew("o=xyz", query.ScopeSubtree, "(dept=eng)")
	b := query.MustNew("o=xyz", query.ScopeSubtree, "(|(dept=eng)(&(dept=eng)(sn=a*)))")
	if contentKey(a) == contentKey(b) {
		t.Fatalf("absorption pair normalized to one key %q; pick a harder equivalence", contentKey(a))
	}
	eng := NewEngine(newMaster(t))
	if !eng.equivalentSpecs(a, b) {
		t.Fatal("containment checker cannot prove the absorption pair equivalent")
	}
}

// TestGroupSharedClassificationDistinctViews runs two sessions of one
// content group with different attribute selections across the same change
// intervals: the E01/E10/E11 classification is computed once and shared
// (one miss, then hits), while the update batches — including minimal-update
// suppression — are evaluated per view.
func TestGroupSharedClassificationDistinctViews(t *testing.T) {
	master := newMaster(t)
	p := addPerson(t, master, "p", "0401", "1")
	eng := NewEngine(master)

	specCN := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)", "cn")
	specDept := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)", "dept")
	resA, err := eng.Begin(specCN)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := eng.Begin(specDept)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Groups() != 1 {
		t.Fatalf("Groups() = %d, want 1 (attrs must not split)", eng.Groups())
	}

	// Interval 1: one add. Both sessions cross it; first poll classifies,
	// second reuses the cached interval.
	addPerson(t, master, "q", "0402", "7")
	resA, err = eng.Poll(resA.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	resB, err = eng.Poll(resB.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	snap := eng.Counters().Snapshot()
	if snap.SharedClassifyMisses != 1 || snap.SharedClassifyHits != 1 {
		t.Errorf("after interval 1: misses=%d hits=%d, want 1/1",
			snap.SharedClassifyMisses, snap.SharedClassifyHits)
	}
	if len(resA.Updates) != 1 || len(resB.Updates) != 1 {
		t.Fatalf("adds: A=%d B=%d, want 1 each", len(resA.Updates), len(resB.Updates))
	}
	// Same classification, different views: A sees cn, not dept; B the reverse.
	if got := resA.Updates[0].Entry.First("cn"); got != "q" {
		t.Errorf("view cn: cn=%q, want %q", got, "q")
	}
	if got := resA.Updates[0].Entry.First("dept"); got != "" {
		t.Errorf("view cn leaked dept=%q", got)
	}
	if got := resB.Updates[0].Entry.First("dept"); got != "7" {
		t.Errorf("view dept: dept=%q, want %q", got, "7")
	}
	if got := resB.Updates[0].Entry.First("cn"); got != "" {
		t.Errorf("view dept leaked cn=%q", got)
	}

	// Interval 2: modify an attribute only view B selects. The shared
	// classification says E11 for both; the per-view minimal-update check
	// suppresses the PDU for A (its selected view is net-unchanged) and
	// ships it to B.
	if err := master.Modify(p, []dit.Mod{{Op: dit.ModReplace, Attr: "dept", Values: []string{"9"}}}); err != nil {
		t.Fatal(err)
	}
	before := eng.Counters().Snapshot()
	resA, err = eng.Poll(resA.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	resB, err = eng.Poll(resB.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	snap = eng.Counters().Snapshot()
	if d := snap.SharedClassifyMisses - before.SharedClassifyMisses; d != 1 {
		t.Errorf("interval 2 misses = %d, want 1", d)
	}
	if d := snap.SharedClassifyHits - before.SharedClassifyHits; d != 1 {
		t.Errorf("interval 2 hits = %d, want 1", d)
	}
	if len(resA.Updates) != 0 {
		t.Errorf("view cn got %d updates for a dept-only modify, want 0 (suppressed)", len(resA.Updates))
	}
	if len(resB.Updates) != 1 || resB.Updates[0].Action != ActionModify ||
		resB.Updates[0].Entry.First("dept") != "9" {
		t.Errorf("view dept modify batch wrong: %+v", resB.Updates)
	}
	if d := snap.SuppressedModifies - before.SuppressedModifies; d != 1 {
		t.Errorf("SuppressedModifies delta = %d, want 1", d)
	}
}

// TestGroupLeaveAndTeardown verifies sync_end group bookkeeping: a leaving
// member does not disturb the group while peers remain, the last member out
// frees all registry state (groups, aliases, cached intervals), and a later
// Begin founds a fresh group.
func TestGroupLeaveAndTeardown(t *testing.T) {
	master := newMaster(t)
	addPerson(t, master, "a", "0401", "1")
	eng := NewEngine(master)

	resA, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	// Second member joins through a containment-equivalent spelling so the
	// teardown must also clear its alias key.
	equiv := query.MustNew("o=xyz", query.ScopeSubtree, "(|(serialnumber=04*)(&(serialnumber=04*)(sn=zz*)))")
	resB, err := eng.Begin(equiv)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Groups() != 1 {
		t.Fatalf("Groups() = %d, want 1", eng.Groups())
	}
	sessA, err := eng.lookup(resA.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	g := sessA.group
	if g == nil {
		t.Fatal("session has no group")
	}

	// Classify one interval so the group holds cached state to free.
	addPerson(t, master, "b", "0402", "1")
	if _, err := eng.Poll(resA.Cookie); err != nil {
		t.Fatal(err)
	}

	if err := eng.End(resA.Cookie); err != nil {
		t.Fatal(err)
	}
	if eng.Groups() != 1 {
		t.Errorf("Groups() after first leave = %d, want 1", eng.Groups())
	}
	g.mu.Lock()
	members, cached := g.members, len(g.intervals)
	g.mu.Unlock()
	if members != 1 {
		t.Errorf("members after first leave = %d, want 1", members)
	}
	if cached == 0 {
		t.Error("expected a cached interval before teardown")
	}

	if err := eng.End(resB.Cookie); err != nil {
		t.Fatal(err)
	}
	if eng.Groups() != 0 {
		t.Errorf("Groups() after last leave = %d, want 0", eng.Groups())
	}
	eng.groupMu.Lock()
	aliases := len(eng.aliases)
	eng.groupMu.Unlock()
	if aliases != 0 {
		t.Errorf("alias registry holds %d keys after teardown, want 0", aliases)
	}
	g.mu.Lock()
	cached = len(g.intervals)
	g.mu.Unlock()
	if cached != 0 {
		t.Errorf("torn-down group retains %d cached intervals", cached)
	}

	// A new session founds a fresh group, not a resurrected one.
	resC, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	sessC, err := eng.lookup(resC.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	if sessC.group == g {
		t.Error("new session joined the torn-down group")
	}
	if eng.Groups() != 1 {
		t.Errorf("Groups() = %d, want 1", eng.Groups())
	}
}

// TestGroupEndClosesSubscriptions: ending the last member of a group while
// it holds live persist subscriptions must close their channels (the wire
// layer reads the close as a clean stream end).
func TestGroupEndClosesSubscriptions(t *testing.T) {
	master := newMaster(t)
	eng := NewEngine(master)
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := eng.Persist(res.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.End(res.Cookie); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-sub.Updates:
		if ok {
			t.Error("expected channel close, got a batch")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscription channel not closed by End of last member")
	}
	sub.Close() // idempotent after engine-side teardown
}

// TestGroupedPersistFanout drives one change burst into a group with many
// persist subscribers and checks every subscriber converges to the same
// batch content while the classification ran once per interval, not once
// per subscriber.
func TestGroupedPersistFanout(t *testing.T) {
	master := newMaster(t)
	eng := NewEngine(master)

	const nSubs = 8
	type stream struct {
		cookie string
		sub    *Subscription
	}
	var streams []stream
	for i := 0; i < nSubs; i++ {
		res, err := eng.Begin(specSerial04)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := eng.Persist(res.Cookie)
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, stream{cookie: res.Cookie, sub: sub})
	}
	if eng.Groups() != 1 {
		t.Fatalf("Groups() = %d, want 1", eng.Groups())
	}

	addPerson(t, master, "fan", "0401", "1")

	deadline := time.After(5 * time.Second)
	for i, s := range streams {
		select {
		case batch, ok := <-s.sub.Updates:
			if !ok {
				t.Fatalf("stream %d closed before delivering", i)
			}
			if len(batch.Updates) != 1 || batch.Updates[0].Action != ActionAdd {
				t.Errorf("stream %d batch = %+v", i, batch.Updates)
			}
			if batch.Cookie == "" {
				t.Errorf("stream %d batch has no cookie", i)
			}
			if batch.Enc == nil {
				t.Errorf("stream %d batch has no shared encoding memo", i)
			}
		case <-deadline:
			t.Fatalf("stream %d never received the fan-out batch", i)
		}
	}

	snap := eng.Counters().Snapshot()
	if snap.SharedClassifyMisses == 0 {
		t.Error("no shared classification recorded")
	}
	if snap.SharedClassifyHits < int64(nSubs-1) {
		t.Errorf("SharedClassifyHits = %d, want >= %d (classify once, reuse for the rest)",
			snap.SharedClassifyHits, nSubs-1)
	}

	for _, s := range streams {
		s.sub.Close()
		if err := eng.End(s.cookie); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Groups() != 0 {
		t.Errorf("Groups() = %d after all ends, want 0", eng.Groups())
	}
}

// TestUngroupedEngineStillConverges exercises the WithoutGrouping ablation
// path end to end — it must classify per session and never hand out shared
// state, while producing the same update stream.
func TestUngroupedEngineStillConverges(t *testing.T) {
	master := newMaster(t)
	addPerson(t, master, "a", "0401", "1")
	eng := NewEngine(master, WithoutGrouping())
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Groups() != 0 {
		t.Errorf("ungrouped engine reports %d groups", eng.Groups())
	}
	replica := newReplicaStore(t)
	ap := NewApplier(replica)
	if err := ap.Apply(specSerial04, res); err != nil {
		t.Fatal(err)
	}
	addPerson(t, master, "b", "0402", "1")
	res, err = eng.Poll(res.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	if res.Enc != nil {
		t.Error("ungrouped poll returned a shared encoding memo")
	}
	if err := ap.Apply(specSerial04, res); err != nil {
		t.Fatal(err)
	}
	if ok, why := Converged(master, replica, specSerial04); !ok {
		t.Fatalf("ungrouped engine did not converge: %s", why)
	}
	snap := eng.Counters().Snapshot()
	if snap.GroupJoins != 0 || snap.SharedClassifyMisses != 0 {
		t.Errorf("ungrouped engine touched group counters: %+v", snap)
	}
}

// sweepEqualContent asserts two poll results carry the same update set.
func sweepEqualContent(t *testing.T, tag string, a, b []Update) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: update counts differ: %d vs %d", tag, len(a), len(b))
	}
	am := map[string]Action{}
	for _, u := range a {
		am[u.DN.String()] = u.Action
	}
	for _, u := range b {
		if am[u.DN.String()] != u.Action {
			t.Errorf("%s: %s: %v vs %v", tag, u.DN, am[u.DN.String()], u.Action)
		}
	}
}

// TestGroupedMatchesUngrouped is the oracle-in-miniature: the same change
// stream polled through a grouped and an ungrouped engine must yield
// identical update sets — the fan-out layer must be invisible.
func TestGroupedMatchesUngrouped(t *testing.T) {
	run := func(opts ...EngineOption) ([]Update, []Update) {
		master := newMaster(t)
		for i := 0; i < 6; i++ {
			addPerson(t, master, fmt.Sprintf("s%d", i), fmt.Sprintf("04%02d", i), "1")
		}
		eng := NewEngine(master, opts...)
		r1, err := eng.Begin(specSerial04)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := eng.Begin(specSerial04)
		if err != nil {
			t.Fatal(err)
		}
		// One burst: E01, E10, E11 all present.
		addPerson(t, master, "new", "0490", "2")
		if err := master.Modify(dn.MustParse("cn=s0,c=us,o=xyz"), []dit.Mod{{Op: dit.ModReplace, Attr: "serialNumber", Values: []string{"0900"}}}); err != nil {
			t.Fatal(err)
		}
		if err := master.Modify(dn.MustParse("cn=s1,c=us,o=xyz"), []dit.Mod{{Op: dit.ModReplace, Attr: "dept", Values: []string{"3"}}}); err != nil {
			t.Fatal(err)
		}
		p1, err := eng.Poll(r1.Cookie)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := eng.Poll(r2.Cookie)
		if err != nil {
			t.Fatal(err)
		}
		return p1.Updates, p2.Updates
	}
	ga, gb := run()
	ua, ub := run(WithoutGrouping())
	sweepEqualContent(t, "grouped sessions agree", ga, gb)
	sweepEqualContent(t, "ungrouped sessions agree", ua, ub)
	sweepEqualContent(t, "grouped == ungrouped", ga, ua)
}
