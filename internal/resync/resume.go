package resync

import (
	"fmt"

	"filterdir/internal/dit"
	"filterdir/internal/proto"
)

// Resumable chunked reloads (DESIGN.md §14). A full content transfer —
// Begin's initial content or a reload after the journal stopped covering
// the session's sync point — is serialized from one immutable store
// snapshot into deterministic DN-ordered chunks. Each exchange carries one
// chunk; an incomplete exchange ends with a resume token (snapshot CSN,
// next chunk index, running content fingerprint) instead of a cookie, and
// a reconnecting consumer presents the token to receive only the
// remainder. The snapshot's journal position is pinned with a store hold
// for the transfer's lifetime, so an aggressive journal-retention policy
// can never force the post-reload catch-up poll into yet another reload.
//
// Safety over cleverness: any token the supplier cannot prove belongs to
// the recorded transfer — unknown session, different snapshot CSN, wrong
// chunk geometry, or a prefix fingerprint that does not match — restarts
// the reload from chunk zero. A stale or forged token can cost wire bytes,
// never correctness.

// transfer is one in-flight (or just-completed) chunked reload of a
// session. The update slice is the full DN-ordered selected content at
// snapCSN; fps[i] is the running FNV-1a fingerprint of chunks [0, i), so
// any acknowledged prefix can be verified when a token comes back.
type transfer struct {
	snapCSN   dit.CSN
	gen       uint64 // generation of the completion cookie
	chunkSize int
	updates   []Update
	fps       []uint64
	done      bool // final chunk handed out; awaiting cookie presentation
	hold      *dit.Hold
}

// nchunks returns the transfer's total chunk count.
func (t *transfer) nchunks() uint32 {
	return uint32((len(t.updates) + t.chunkSize - 1) / t.chunkSize)
}

// matches verifies a presented token against the recorded transfer. Chunk
// indexes at or before the furthest point handed out are acceptable — a
// consumer may legitimately re-present an older token after losing the
// response that superseded it.
func (t *transfer) matches(tok proto.ResumeToken) bool {
	return uint64(t.snapCSN) == tok.CSN &&
		t.nchunks() == tok.Chunks &&
		tok.Chunk > 0 && tok.Chunk < tok.Chunks &&
		t.fps[tok.Chunk] == tok.Fingerprint
}

// FNV-1a, matching the oracle's traffic fingerprint fold.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func foldFPString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	h ^= 0xff
	h *= fnvPrime64
	return h
}

// foldFPUpdate folds one update PDU into the running content fingerprint.
func foldFPUpdate(h uint64, u Update) uint64 {
	h = foldFPString(h, u.Action.String())
	h = foldFPString(h, u.DN.Norm())
	if u.Entry != nil {
		h = foldFPString(h, u.Entry.String())
	}
	return h
}

// chunked reports whether a full transfer of these updates should be
// served in resumable chunks.
func (e *Engine) chunked(updates []Update) bool {
	return e.chunkSize > 0 && len(updates) > e.chunkSize
}

// beginTransfer records a chunked reload for the session and emits chunk
// zero. The session is already positioned at the transfer's final sync
// point (content map, points, csn) — only the consumer lags, chunk by
// chunk, until the final exchange hands it the completion cookie. The
// caller holds sess.mu.
func (e *Engine) beginTransfer(sess *session, updates []Update, csn dit.CSN) *PollResult {
	e.dropTransfer(sess) // supersede any previous transfer
	tr := &transfer{
		snapCSN:   csn,
		gen:       sess.genSeq,
		chunkSize: e.chunkSize,
		updates:   updates,
		hold:      e.store.Hold(csn),
	}
	n := int(tr.nchunks())
	tr.fps = make([]uint64, n+1)
	h := uint64(fnvOffset64)
	tr.fps[0] = h
	for i := 0; i < n; i++ {
		lo, hi := i*tr.chunkSize, (i+1)*tr.chunkSize
		if hi > len(updates) {
			hi = len(updates)
		}
		for _, u := range updates[lo:hi] {
			h = foldFPUpdate(h, u)
		}
		tr.fps[i+1] = h
	}
	sess.transfer = tr
	e.stats.ChunkedReloads.Add(1)
	return e.emitChunk(sess, tr, 0)
}

// emitChunk produces chunk k of the transfer: the final chunk carries the
// completion cookie (and marks the transfer done), every earlier one a
// token for its successor. The caller holds sess.mu.
func (e *Engine) emitChunk(sess *session, tr *transfer, k uint32) *PollResult {
	lo := int(k) * tr.chunkSize
	hi := lo + tr.chunkSize
	if hi > len(tr.updates) {
		hi = len(tr.updates)
	}
	res := &PollResult{Updates: tr.updates[lo:hi], FullReload: k == 0}
	if hi == len(tr.updates) {
		tr.done = true
		res.Cookie = cookieString(sess.id, tr.gen)
		res.CSN = e.stampCSN(tr.snapCSN)
	} else {
		res.Resume = &proto.ResumeToken{
			Session:     sess.id,
			CSN:         uint64(tr.snapCSN),
			Chunk:       k + 1,
			Chunks:      tr.nchunks(),
			Fingerprint: tr.fps[k+1],
		}
	}
	e.stats.ReloadChunks.Add(1)
	e.countPDUs(res.Updates)
	e.observe(sess.id, res.Updates, k == 0)
	return res
}

// ResumeReload continues a chunked reload from a presented token. An
// unknown or ended session is the consumer's signal to re-Begin
// (ErrNoSuchSession, e-syncRefreshRequired on the wire); any other
// mismatch — stale snapshot, forged fingerprint, wrong geometry — degrades
// to a fresh reload from chunk zero. A valid token yields exactly the
// chunk it names, so reconnecting transfers only the remainder.
func (e *Engine) ResumeReload(tok proto.ResumeToken) (*PollResult, error) {
	e.mu.Lock()
	sess, ok := e.sessions[tok.Session]
	e.mu.Unlock()
	if !ok {
		e.stats.ResumeRejects.Add(1)
		return nil, fmt.Errorf("%w: resume %q", ErrNoSuchSession, tok.Session)
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.ended {
		e.stats.ResumeRejects.Add(1)
		return nil, fmt.Errorf("%w: resume %q", ErrNoSuchSession, tok.Session)
	}
	e.stats.Resumes.Add(1)
	tr := sess.transfer
	if tr == nil || !tr.matches(tok) {
		e.stats.ResumeRejects.Add(1)
		return e.reload(sess), nil
	}
	return e.emitChunk(sess, tr, tok.Chunk), nil
}

// settleTransfer releases a completed transfer once the consumer has
// proved — by presenting a cookie that resolved to a live sync point —
// that it holds the transferred content. The caller holds sess.mu.
func (e *Engine) settleTransfer(sess *session) {
	if tr := sess.transfer; tr != nil && tr.done {
		e.dropTransfer(sess)
	}
}

// dropTransfer releases the session's transfer (if any) and its pinned
// snapshot. The caller holds sess.mu.
func (e *Engine) dropTransfer(sess *session) {
	if tr := sess.transfer; tr != nil {
		e.store.Release(tr.hold)
		sess.transfer = nil
	}
}
