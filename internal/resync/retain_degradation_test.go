package resync

import (
	"testing"
	"time"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
)

// These tests pin the engine's bounded-history degradation contract: an
// exchange is incremental exactly while the session's resume history and
// the master's journal both cover the replica's sync point; outside that
// window the engine must degrade to a full reload (or, in retain mode, a
// full transfer) — and an E10 moved-out entry must never be dropped
// silently on any path.

// consumerContent simulates a poll-mode consumer applying a result to its
// held DN set (full reloads replace the content wholesale).
func consumerContent(held map[string]bool, res *PollResult) map[string]bool {
	if res.FullReload {
		held = make(map[string]bool)
	}
	for _, u := range res.Updates {
		switch u.Action {
		case ActionAdd, ActionModify:
			held[u.DN.Norm()] = true
		case ActionDelete:
			delete(held, u.DN.Norm())
		}
	}
	return held
}

func TestBoundedHistoryDegradation(t *testing.T) {
	cases := []struct {
		name string
		// journalLimit bounds the master journal (0: unbounded).
		journalLimit int
		// persistBatches accumulates this many unacknowledged persist-mode
		// sync points on the session before the consumer's stale poll.
		persistBatches int
		// directChanges applies this many changes with no subscriber.
		directChanges int
		wantReload    bool
	}{
		// The sync point is still in the resume history and the journal:
		// the E10 delete must arrive as an explicit minimal update.
		{name: "in window stays incremental", directChanges: 10},
		// More unacknowledged persist batches than the sync-point retention
		// policy keeps evict the consumer's sync point from the resume
		// history: only a full reload is safe.
		{name: "sync point evicted by unacked persist batches",
			persistBatches: defaultSyncPointRetention + 6, wantReload: true},
		// The journal no longer covers the sync point: full reload even
		// though the resume history still has the point.
		{name: "journal trim forces reload", journalLimit: 4,
			directChanges: 10, wantReload: true},
		// Same change count with a journal that covers it: incremental.
		{name: "journal within limit stays incremental", journalLimit: 16,
			directChanges: 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var opts []dit.Option
			if tc.journalLimit > 0 {
				opts = append(opts, dit.WithJournalLimit(tc.journalLimit))
			}
			st, err := dit.NewStore([]string{"o=xyz"}, opts...)
			if err != nil {
				t.Fatal(err)
			}
			master := storeWithBase(t, st)
			a := addPerson(t, master, "a", "0401", "1")
			victim := addPerson(t, master, "victim", "0402", "1")

			eng := NewEngine(master)
			res, err := eng.Begin(specSerial04)
			if err != nil {
				t.Fatal(err)
			}
			c1 := res.Cookie
			held := consumerContent(make(map[string]bool), res)
			if !held[victim.Norm()] {
				t.Fatalf("victim not in initial content")
			}

			// The first change moves the victim out of the content (E10);
			// the rest are in-content modifies of entry a.
			change := func(i int) {
				if i == 0 {
					mustModify(t, master, victim, "serialNumber", "0999")
					return
				}
				mustModify(t, master, a, "dept", "d"+string(rune('a'+i%20)))
			}

			switch {
			case tc.persistBatches > 0:
				sub, err := eng.Persist(c1)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < tc.persistBatches; i++ {
					change(i)
					select {
					case <-sub.Updates: // delivered but never acknowledged
					case <-time.After(5 * time.Second):
						t.Fatalf("no persist batch for change %d", i)
					}
				}
				sub.Close()
			default:
				for i := 0; i < tc.directChanges; i++ {
					change(i)
				}
			}

			// The consumer never saw any of it and re-polls its durable
			// sync point.
			res, err = eng.Poll(c1)
			if err != nil {
				t.Fatal(err)
			}
			if res.FullReload != tc.wantReload {
				t.Fatalf("FullReload = %v, want %v", res.FullReload, tc.wantReload)
			}
			if tc.wantReload {
				for _, u := range res.Updates {
					if u.Action != ActionAdd {
						t.Errorf("reload carries %s for %s, want adds only", u.Action, u.DN)
					}
					if u.DN.Norm() == victim.Norm() {
						t.Errorf("reload still carries moved-out victim %s", u.DN)
					}
				}
			} else {
				var sawDelete bool
				for _, u := range res.Updates {
					if u.DN.Norm() == victim.Norm() {
						if u.Action != ActionDelete {
							t.Errorf("victim carried as %s, want delete", u.Action)
						}
						sawDelete = true
					}
				}
				if !sawDelete {
					t.Fatalf("incremental poll dropped the E10 delete for %s", victim)
				}
			}

			// On either path the consumer must converge: the victim is gone.
			held = consumerContent(held, res)
			if held[victim.Norm()] {
				t.Fatalf("consumer still holds moved-out victim after %s",
					map[bool]string{true: "reload", false: "incremental poll"}[res.FullReload])
			}
			if !held[a.Norm()] {
				t.Fatalf("consumer lost in-content entry a")
			}
		})
	}
}

// TestRetainStaleGeneration pins the retain-mode soundness fix: a
// DN-only retain may only reference entries the replica provably holds.
// After a lost retain response the presented generation is gone (retain
// mode keeps a single resumable point), so the engine must degrade to a
// full transfer — every content entry shipped with its attributes, zero
// retains.
func TestRetainStaleGeneration(t *testing.T) {
	master := newMaster(t)
	addPerson(t, master, "a", "0401", "1")

	eng := NewEngine(master)
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	c1 := res.Cookie
	held := consumerContent(make(map[string]bool), res)

	// An entry moves into the content, and the retain response carrying it
	// is lost in flight: the replica never learns of b.
	b := addPerson(t, master, "b", "0402", "1")
	if _, err := eng.PollRetain(c1); err != nil {
		t.Fatal(err)
	}

	// The replica re-polls its durable cookie. Before the fix the engine
	// classified against its post-lost-response state and emitted a DN-only
	// retain for b — an entry the replica cannot materialize.
	res, err = eng.PollRetain(c1)
	if err != nil {
		t.Fatal(err)
	}
	newHeld := make(map[string]bool)
	for _, u := range res.Updates {
		if u.Action == ActionRetain {
			t.Errorf("retain PDU for %s after stale generation; full transfer required", u.DN)
			continue
		}
		if u.Entry == nil {
			t.Errorf("%s for %s carries no entry", u.Action, u.DN)
		}
		newHeld[u.DN.Norm()] = true
	}
	_ = held
	if !newHeld[b.Norm()] {
		t.Fatalf("full transfer after stale generation misses moved-in entry %s", b)
	}
}

// TestRetainDropUnmentioned pins equation 3's consumer contract at a known
// generation: unchanged held entries come back as cheap retains, and a
// moved-out entry is simply unmentioned — dropping unmentioned entries
// converges without any delete PDU.
func TestRetainDropUnmentioned(t *testing.T) {
	master := newMaster(t)
	a := addPerson(t, master, "a", "0401", "1")
	victim := addPerson(t, master, "victim", "0402", "1")

	eng := NewEngine(master)
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	c1 := res.Cookie

	mustModify(t, master, victim, "serialNumber", "0999") // E10

	res, err = eng.PollRetain(c1)
	if err != nil {
		t.Fatal(err)
	}
	var retains int
	mentioned := make(map[string]bool)
	for _, u := range res.Updates {
		mentioned[u.DN.Norm()] = true
		if u.Action == ActionRetain {
			retains++
		}
		if u.Action == ActionDelete {
			t.Errorf("delete PDU in retain mode for %s", u.DN)
		}
	}
	if retains == 0 {
		t.Error("no retain PDUs at a known generation; unchanged entries should be retained")
	}
	if mentioned[victim.Norm()] {
		t.Errorf("moved-out victim mentioned in retain result")
	}
	if !mentioned[a.Norm()] {
		t.Errorf("unchanged in-content entry a not mentioned; drop-unmentioned would lose it")
	}
}

// storeWithBase populates the standard o=xyz / c=us base entries into an
// existing (possibly journal-limited) store.
func storeWithBase(t testing.TB, st *dit.Store) *dit.Store {
	t.Helper()
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	if err := st.Add(org); err != nil {
		t.Fatal(err)
	}
	us := entry.New(dn.MustParse("c=us,o=xyz"))
	us.Put("objectclass", "country").Put("c", "us")
	if err := st.Add(us); err != nil {
		t.Fatal(err)
	}
	return st
}

func mustModify(t testing.TB, st *dit.Store, d dn.DN, attr, value string) {
	t.Helper()
	if err := st.Modify(d, []dit.Mod{{Op: dit.ModReplace, Attr: attr, Values: []string{value}}}); err != nil {
		t.Fatal(err)
	}
}
