package resync

import (
	"errors"
	"fmt"

	"filterdir/internal/dit"
	"filterdir/internal/query"
)

// Applier applies synchronization updates to a replica-side store, keeping
// per-spec traffic accounting.
type Applier struct {
	Store   *dit.Store
	Traffic Traffic
}

// NewApplier wraps a replica store.
func NewApplier(store *dit.Store) *Applier {
	return &Applier{Store: store}
}

// Apply applies a poll result for the given content spec. On FullReload the
// spec's prior local content is discarded first. Retain updates are only
// valid in results produced by PollRetain; use ApplyRetain for those.
func (a *Applier) Apply(spec query.Query, res *PollResult) error {
	if res.FullReload {
		if err := a.dropContent(spec); err != nil {
			return err
		}
	}
	for _, u := range res.Updates {
		a.Traffic.Add(u)
		switch u.Action {
		case ActionAdd, ActionModify:
			if err := a.Store.Upsert(u.Entry); err != nil {
				return fmt.Errorf("apply %s %q: %w", u.Action, u.DN.String(), err)
			}
		case ActionDelete:
			if err := a.Store.RemoveAny(u.DN); err != nil && !errors.Is(err, dit.ErrNoSuchObject) {
				return fmt.Errorf("apply delete %q: %w", u.DN.String(), err)
			}
		case ActionRetain:
			return fmt.Errorf("retain action outside retain-mode sync for %q", u.DN.String())
		}
	}
	return nil
}

// ApplyRetain applies an equation-(3) retain-mode result: mentioned entries
// are upserted or retained, and every held in-content entry that was not
// mentioned is discarded.
func (a *Applier) ApplyRetain(spec query.Query, res *PollResult) error {
	mentioned := make(map[string]bool, len(res.Updates))
	for _, u := range res.Updates {
		a.Traffic.Add(u)
		mentioned[u.DN.Norm()] = true
		switch u.Action {
		case ActionAdd, ActionModify:
			if err := a.Store.Upsert(u.Entry); err != nil {
				return fmt.Errorf("apply %s %q: %w", u.Action, u.DN.String(), err)
			}
		case ActionRetain:
			// Nothing to do: the entry is unchanged and already held.
		case ActionDelete:
			if err := a.Store.RemoveAny(u.DN); err != nil && !errors.Is(err, dit.ErrNoSuchObject) {
				return err
			}
		}
	}
	for _, held := range a.Store.MatchAll(stripAttrs(spec)) {
		if !mentioned[held.DN().Norm()] {
			if err := a.Store.RemoveAny(held.DN()); err != nil && !errors.Is(err, dit.ErrNoSuchObject) {
				return err
			}
		}
	}
	return nil
}

// dropContent removes the spec's current local content.
func (a *Applier) dropContent(spec query.Query) error {
	for _, held := range a.Store.MatchAll(stripAttrs(spec)) {
		if err := a.Store.RemoveAny(held.DN()); err != nil && !errors.Is(err, dit.ErrNoSuchObject) {
			return err
		}
	}
	return nil
}

// Converged reports whether the replica's content for spec equals the
// master's, entry for entry.
func Converged(master, replica *dit.Store, spec query.Query) (bool, string) {
	ms := master.MatchAll(stripAttrs(spec))
	rs := replica.MatchAll(stripAttrs(spec))
	mMap := make(map[string]int, len(ms))
	for i, e := range ms {
		mMap[e.DN().Norm()] = i
	}
	if len(ms) != len(rs) {
		return false, fmt.Sprintf("master holds %d entries, replica %d", len(ms), len(rs))
	}
	for _, re := range rs {
		i, ok := mMap[re.DN().Norm()]
		if !ok {
			return false, fmt.Sprintf("replica holds %q not in master content", re.DN().String())
		}
		if !ms[i].Select(spec.Attrs).Equal(re.Select(spec.Attrs)) {
			return false, fmt.Sprintf("entry %q differs", re.DN().String())
		}
	}
	return true, ""
}
