package resync

import (
	"errors"
	"fmt"
	"testing"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/proto"
	"filterdir/internal/query"
)

// FuzzResumeToken drives arbitrary byte strings and field combinations
// through the resume-token codec and the engine's verifier. Invariants:
//
//   - ParseResumeTokenString never panics; on success, String() round-trips
//     to a token that re-encodes to the same text (encode→decode→encode
//     stability), and the BER control codec round-trips it too.
//   - Failures are ErrBadResumeToken-typed, never a panic.
//   - The engine never accepts a token for the wrong snapshot: ResumeReload
//     on an arbitrary token either errors with ErrNoSuchSession, restarts
//     from chunk zero, or — only when every verified field matches the live
//     transfer — returns the named chunk.
func FuzzResumeToken(f *testing.F) {
	f.Add("rt1:sess-1:5:1:4:00000cbf29ce4846", uint64(5), uint32(1), uint32(4), uint64(0xcbf29ce4846))
	f.Add("", uint64(0), uint32(0), uint32(0), uint64(0))
	f.Add("rt1:s:0:0:0:0000000000000000", ^uint64(0), ^uint32(0), ^uint32(0), ^uint64(0))
	f.Add("rt2:sess-1:5:1:4:00000cbf29ce4846", uint64(1), uint32(2), uint32(3), uint64(4))
	f.Add("rt1:a:b:c:d:e", uint64(10), uint32(1), uint32(2), uint64(14695981039346656037))

	master, err := newFuzzMaster()
	if err != nil {
		f.Fatal(err)
	}
	eng := NewEngine(master, WithChunkSize(2))
	spec := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)")
	res, err := eng.Begin(spec)
	if err != nil {
		f.Fatal(err)
	}
	if res.Resume == nil {
		f.Fatal("fuzz master content not chunked")
	}
	live := *res.Resume

	f.Fuzz(func(t *testing.T, text string, csn uint64, chunk, chunks uint32, fp uint64) {
		// Codec: parse arbitrary text; a parse failure must be typed, a
		// success must re-encode identically and survive the BER control
		// round-trip.
		tok, err := proto.ParseResumeTokenString(text)
		if err != nil {
			if !errors.Is(err, proto.ErrBadResumeToken) {
				t.Fatalf("parse error not ErrBadResumeToken-typed: %v", err)
			}
		} else {
			if got := tok.String(); got != text {
				// Canonical form may differ from a non-canonical input only
				// in ways the parser rejects; a parsed token must re-encode
				// stably through a second decode.
				tok2, err := proto.ParseResumeTokenString(got)
				if err != nil || tok2 != tok {
					t.Fatalf("encode→decode→encode unstable: %q → %+v → %q (%v)", text, tok, got, err)
				}
			}
			roundTripControl(t, tok)
		}

		// Constructed token: String/Parse and BER round-trips are exact for
		// any non-degenerate field values (sessions with ':' still parse —
		// the session is rejoined from the middle fields; an empty session
		// is unrepresentable and must fail typed).
		made := proto.ResumeToken{Session: text, CSN: csn, Chunk: chunk, Chunks: chunks, Fingerprint: fp}
		back, err := proto.ParseResumeTokenString(made.String())
		if text == "" {
			if !errors.Is(err, proto.ErrBadResumeToken) {
				t.Fatalf("empty-session token parse: err = %v, want ErrBadResumeToken", err)
			}
		} else if err != nil || back != made {
			t.Fatalf("constructed token round-trip: %+v → %q → %+v (%v)", made, made.String(), back, err)
		}
		roundTripControl(t, made)

		// Verifier: an arbitrary token never panics the engine and never
		// yields a chunk for the wrong snapshot or geometry. (A re-presented
		// older token of the live transfer is legitimately accepted, so only
		// the snapshot-identity fields are asserted here; fingerprint
		// verification is pinned by the deterministic unit tests.)
		probe := proto.ResumeToken{Session: live.Session, CSN: csn, Chunk: chunk, Chunks: chunks, Fingerprint: fp}
		got, err := eng.ResumeReload(probe)
		if err != nil {
			t.Fatalf("resume on live session errored: %v", err)
		}
		if !got.FullReload &&
			(probe.CSN != live.CSN || probe.Chunks != live.Chunks ||
				probe.Chunk == 0 || probe.Chunk >= probe.Chunks) {
			t.Fatalf("engine accepted wrong-snapshot token %+v (live %+v)", probe, live)
		}
		if got.FullReload {
			// The probe superseded the transfer; re-arm for the next input.
			if got.Resume == nil {
				t.Fatal("restart of oversized content not chunked")
			}
			live = *got.Resume
		}

		if tok.Session != live.Session {
			if _, err := eng.ResumeReload(tok); err != nil && !errors.Is(err, ErrNoSuchSession) {
				t.Fatalf("unknown-session resume: err = %v, want ErrNoSuchSession", err)
			}
		}
	})
}

// roundTripControl BER-encodes a token as its wire control and decodes it
// back, requiring exact equality — except for CSNs past the int64 range,
// which the BER integer cannot carry and the decoder must refuse typed.
func roundTripControl(t *testing.T, tok proto.ResumeToken) {
	t.Helper()
	ctl := proto.NewReSyncResumeControl(tok, true)
	back, err := proto.ParseReSyncResume(ctl)
	if tok.CSN >= 1<<63 {
		if !errors.Is(err, proto.ErrBadResumeToken) {
			t.Fatalf("out-of-range CSN control decode: err = %v, want ErrBadResumeToken", err)
		}
		return
	}
	if err != nil {
		t.Fatalf("decode control for %+v: %v", tok, err)
	}
	if back != tok {
		t.Fatalf("control round-trip: %+v → %+v", tok, back)
	}
}

// newFuzzMaster builds a small chunkable master without testing.T helpers
// (fuzz setup runs outside a test context).
func newFuzzMaster() (*dit.Store, error) {
	st, err := dit.NewStore([]string{"o=xyz"})
	if err != nil {
		return nil, err
	}
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	if err := st.Add(org); err != nil {
		return nil, err
	}
	us := entry.New(dn.MustParse("c=us,o=xyz"))
	us.Put("objectclass", "country").Put("c", "us")
	if err := st.Add(us); err != nil {
		return nil, err
	}
	for i := 0; i < 7; i++ {
		d := dn.MustParse(fmt.Sprintf("cn=f%d,c=us,o=xyz", i))
		e := entry.New(d)
		e.Put("objectclass", "person").Put("cn", fmt.Sprintf("f%d", i)).
			Put("serialNumber", fmt.Sprintf("04%02d", i))
		if err := st.Add(e); err != nil {
			return nil, err
		}
	}
	return st, nil
}
