package resync

import (
	"testing"

	"filterdir/internal/dit"
	"filterdir/internal/query"
)

// TestModifyThenRevertSuppressed is the regression test for update-set
// minimality (equation 3): an entry modified and then reverted within one
// synchronization interval is net-unchanged, so the poll must carry no
// update for it.
func TestModifyThenRevertSuppressed(t *testing.T) {
	master := newMaster(t)
	a := addPerson(t, master, "a", "0401", "1")
	eng := NewEngine(master)
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}

	if err := master.Modify(a, []dit.Mod{{Op: dit.ModReplace, Attr: "dept", Values: []string{"9"}}}); err != nil {
		t.Fatal(err)
	}
	if err := master.Modify(a, []dit.Mod{{Op: dit.ModReplace, Attr: "dept", Values: []string{"1"}}}); err != nil {
		t.Fatal(err)
	}

	poll, err := eng.Poll(res.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	if len(poll.Updates) != 0 {
		t.Fatalf("modify-then-revert produced %d updates, want 0: %+v", len(poll.Updates), poll.Updates)
	}
	if got := eng.Counters().Snapshot().SuppressedModifies; got < 1 {
		t.Errorf("SuppressedModifies = %d, want >= 1", got)
	}

	// The interval must still be consumed: a later real change arrives.
	if err := master.Modify(a, []dit.Mod{{Op: dit.ModReplace, Attr: "dept", Values: []string{"7"}}}); err != nil {
		t.Fatal(err)
	}
	poll2, err := eng.Poll(res.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	if len(poll2.Updates) != 1 || poll2.Updates[0].Action != ActionModify {
		t.Fatalf("real modify after revert: got %+v, want one modify", poll2.Updates)
	}
}

// TestRevertOutsideSelectedAttrs checks suppression under attribute
// selection: a change confined to attributes outside the session's
// requested set is invisible to the replica and must produce no update.
func TestRevertOutsideSelectedAttrs(t *testing.T) {
	master := newMaster(t)
	a := addPerson(t, master, "a", "0401", "1")
	eng := NewEngine(master)
	spec := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)", "cn", "serialNumber")
	res, err := eng.Begin(spec)
	if err != nil {
		t.Fatal(err)
	}

	// dept is not in the selected attribute set; this churn is invisible.
	if err := master.Modify(a, []dit.Mod{{Op: dit.ModReplace, Attr: "dept", Values: []string{"5"}}}); err != nil {
		t.Fatal(err)
	}
	poll, err := eng.Poll(res.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	if len(poll.Updates) != 0 {
		t.Fatalf("unselected-attr modify produced %d updates, want 0", len(poll.Updates))
	}

	// A change to a selected attribute still flows.
	if err := master.Modify(a, []dit.Mod{{Op: dit.ModReplace, Attr: "cn", Values: []string{"a2"}}}); err != nil {
		t.Fatal(err)
	}
	poll2, err := eng.Poll(res.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	if len(poll2.Updates) != 1 || poll2.Updates[0].Action != ActionModify {
		t.Fatalf("selected-attr modify: got %+v, want one modify", poll2.Updates)
	}
}
