package resync

import (
	"fmt"
	"testing"
	"time"
)

// These tests pin the `keep last_n` sync-point retention policy
// (WithSyncPointRetention). Sync points accumulate only while
// unacknowledged — persist-mode pushes append one point per batch until
// the consumer proves a position by presenting its cookie — so the window
// is exercised by streaming batches to a consumer that never acknowledges
// and then resuming from its last-known cookie: inside the window the
// resume is incremental, beyond it the session degrades to exactly one
// full reload whose cookie is live again.

// streamBatches streams m single-update batches to a subscriber that
// consumes but never acknowledges them, growing the session's
// unacknowledged point history by m.
func streamBatches(t *testing.T, eng *Engine, cookie string, m int, serialBase int) {
	t.Helper()
	sub, err := eng.Persist(cookie)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < m; i++ {
		addPerson(t, eng.store, fmt.Sprintf("r%02d", i), fmt.Sprintf("04%02d", serialBase+i), "1")
		select {
		case b := <-sub.Updates:
			if len(b.Updates) == 0 {
				t.Fatalf("push %d: empty batch", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("push %d never arrived", i)
		}
	}
}

func TestSyncPointRetentionUnacked(t *testing.T) {
	for _, keep := range []int{2, 3, 5} {
		t.Run(fmt.Sprintf("keep=%d within window", keep), func(t *testing.T) {
			master, _ := chunkedMaster(t, 4)
			eng := NewEngine(master, WithSyncPointRetention(keep))
			res, err := eng.Begin(specSerial04)
			if err != nil {
				t.Fatal(err)
			}
			// keep-1 unacknowledged pushes: the subscription cookie is the
			// oldest of keep retained points, still inside the window.
			streamBatches(t, eng, res.Cookie, keep-1, 50)
			r, err := eng.Poll(res.Cookie)
			if err != nil {
				t.Fatal(err)
			}
			if r.FullReload {
				t.Fatalf("cookie with %d unacked pushes (keep=%d) degraded to a reload", keep-1, keep)
			}
			if len(r.Updates) != keep-1 {
				t.Errorf("resume re-sent %d updates, want the %d unacknowledged", len(r.Updates), keep-1)
			}
			if got := eng.Counters().Snapshot().FullReloads; got != 0 {
				t.Errorf("full reloads = %d, want 0", got)
			}
		})
		t.Run(fmt.Sprintf("keep=%d evicted", keep), func(t *testing.T) {
			master, _ := chunkedMaster(t, 4)
			eng := NewEngine(master, WithSyncPointRetention(keep))
			res, err := eng.Begin(specSerial04)
			if err != nil {
				t.Fatal(err)
			}
			// keep+2 unacknowledged pushes evict the subscription cookie's
			// point: the only safe answer to presenting it is the full
			// content.
			streamBatches(t, eng, res.Cookie, keep+2, 50)
			r, err := eng.Poll(res.Cookie)
			if err != nil {
				t.Fatal(err)
			}
			if !r.FullReload {
				t.Fatal("evicted cookie did not degrade to a full reload")
			}
			if got := eng.Counters().Snapshot().FullReloads; got != 1 {
				t.Errorf("full reloads = %d, want 1", got)
			}
			// The reload's cookie is a live resume point.
			addPerson(t, master, "after", "0499", "1")
			r2, err := eng.Poll(r.Cookie)
			if err != nil {
				t.Fatal(err)
			}
			if r2.FullReload || len(r2.Updates) != 1 {
				t.Errorf("post-reload poll: full=%v updates=%d, want incremental single update",
					r2.FullReload, len(r2.Updates))
			}
		})
	}
}

// TestAcknowledgedCookieCollapsesHistory: presenting a cookie acknowledges
// it and drops the points before it — so after a successful poll only the
// acknowledged base and newer points remain, independent of how large the
// retention window is.
func TestAcknowledgedCookieCollapsesHistory(t *testing.T) {
	master, _ := chunkedMaster(t, 4)
	eng := NewEngine(master, WithSyncPointRetention(32))
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	cookies := []string{res.Cookie}
	for i := 0; i < 3; i++ {
		addPerson(t, master, fmt.Sprintf("r%02d", i), fmt.Sprintf("04%02d", 50+i), "1")
		r, err := eng.Poll(cookies[len(cookies)-1])
		if err != nil {
			t.Fatal(err)
		}
		cookies = append(cookies, r.Cookie)
	}
	// The previously acknowledged cookie is the session's base: resumable.
	r, err := eng.Poll(cookies[len(cookies)-2])
	if err != nil {
		t.Fatal(err)
	}
	if r.FullReload {
		t.Error("previous acknowledged cookie degraded to a reload")
	}
	// The Begin cookie was superseded by later acknowledgments: despite the
	// wide retention window it is gone, because each acknowledgment proves
	// the consumer moved past it.
	r, err = eng.Poll(cookies[0])
	if err != nil {
		t.Fatal(err)
	}
	if !r.FullReload {
		t.Error("acknowledged-past cookie resumed incrementally, want reload")
	}
}

// TestSyncPointRetentionDefault: without the option the engine keeps the
// documented default of 64 points, so a consumer can lag a long push
// backlog and still resume incrementally.
func TestSyncPointRetentionDefault(t *testing.T) {
	master, _ := chunkedMaster(t, 4)
	eng := NewEngine(master)
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	streamBatches(t, eng, res.Cookie, 10, 50)
	r, err := eng.Poll(res.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	if r.FullReload {
		t.Error("cookie 10 unacked pushes old degraded under the default retention of 64")
	}
}
