package resync

import (
	"errors"
	"fmt"
	"testing"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/proto"
)

// These tests pin the resumable chunked reload contract (resume.go): a full
// transfer larger than the chunk size is served one chunk per exchange, each
// non-final chunk handing out a resume token; a valid token yields exactly
// the chunk it names; anything the supplier cannot verify restarts from
// chunk zero; and the snapshot hold is released only when the consumer
// proves completion by presenting the cookie.

// drainChunks follows a chunked transfer from its first result to the
// completion cookie, applying each chunk to held and recording the token
// chain (tokens[i] is the token returned with chunk i; the final chunk has
// none).
func drainChunks(t *testing.T, eng *Engine, res *PollResult, held map[string]bool) (map[string]bool, []proto.ResumeToken, *PollResult) {
	t.Helper()
	var tokens []proto.ResumeToken
	for i := 0; ; i++ {
		held = consumerContent(held, res)
		if res.Resume == nil {
			if res.Cookie == "" {
				t.Fatalf("chunk %d: neither token nor cookie", i)
			}
			return held, tokens, res
		}
		if res.Cookie != "" {
			t.Fatalf("chunk %d carries both token and cookie", i)
		}
		tokens = append(tokens, *res.Resume)
		next, err := eng.ResumeReload(*res.Resume)
		if err != nil {
			t.Fatalf("resume chunk %d: %v", i+1, err)
		}
		if next.FullReload {
			t.Fatalf("resume chunk %d unexpectedly restarted from zero", i+1)
		}
		res = next
		if i > 1000 {
			t.Fatal("chunk loop did not terminate")
		}
	}
}

func chunkedMaster(t *testing.T, n int, opts ...dit.Option) (*dit.Store, []string) {
	t.Helper()
	st, err := dit.NewStore([]string{"o=xyz"}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	storeWithBase(t, st)
	var norms []string
	for i := 0; i < n; i++ {
		d := addPerson(t, st, fmt.Sprintf("p%03d", i), fmt.Sprintf("04%02d", i), "1")
		norms = append(norms, d.Norm())
	}
	return st, norms
}

func TestChunkedBeginConverges(t *testing.T) {
	master, norms := chunkedMaster(t, 10)
	eng := NewEngine(master, WithChunkSize(3))

	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resume == nil {
		t.Fatal("10-entry content with chunk size 3 not chunked")
	}
	if !res.FullReload {
		t.Fatal("chunk zero must carry FullReload")
	}
	if len(res.Updates) != 3 {
		t.Fatalf("chunk zero has %d updates, want 3", len(res.Updates))
	}

	held, tokens, final := drainChunks(t, eng, res, make(map[string]bool))
	if len(tokens) != 3 { // chunks 0..3: tokens after chunks 0,1,2
		t.Fatalf("token chain length = %d, want 3", len(tokens))
	}
	for i, tok := range tokens {
		if tok.Chunk != uint32(i+1) || tok.Chunks != 4 {
			t.Errorf("token %d = chunk %d/%d, want %d/4", i, tok.Chunk, tok.Chunks, i+1)
		}
	}
	if len(held) != len(norms) {
		t.Fatalf("consumer holds %d entries, want %d", len(held), len(norms))
	}
	for _, n := range norms {
		if !held[n] {
			t.Errorf("consumer missing %s", n)
		}
	}

	// The completion cookie is live: the next poll is incremental.
	a := addPerson(t, master, "extra", "0499", "1")
	next, err := eng.Poll(final.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	if next.FullReload {
		t.Fatal("post-transfer poll degraded to reload")
	}
	held = consumerContent(held, next)
	if !held[a.Norm()] {
		t.Fatal("post-transfer poll missed the new entry")
	}

	snap := eng.Counters().Snapshot()
	if snap.ChunkedReloads != 1 || snap.ReloadChunks != 4 {
		t.Errorf("counters: chunked=%d chunks=%d, want 1/4", snap.ChunkedReloads, snap.ReloadChunks)
	}
	if snap.ResumeRejects != 0 {
		t.Errorf("spurious resume rejects: %d", snap.ResumeRejects)
	}
}

func TestChunkedMatchesMonolithic(t *testing.T) {
	// The chunked transfer must deliver byte-identical content to a
	// monolithic reload of the same snapshot.
	master, _ := chunkedMaster(t, 9)

	mono := NewEngine(master)
	mres, err := mono.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}

	chunked := NewEngine(master, WithChunkSize(4))
	res, err := chunked.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	var got []Update
	for {
		got = append(got, res.Updates...)
		if res.Resume == nil {
			break
		}
		res, err = chunked.ResumeReload(*res.Resume)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(mres.Updates) {
		t.Fatalf("chunked total = %d updates, monolithic = %d", len(got), len(mres.Updates))
	}
	for i := range got {
		if got[i].DN.Norm() != mres.Updates[i].DN.Norm() {
			t.Fatalf("update %d: chunked %s, monolithic %s (order must be deterministic)",
				i, got[i].DN, mres.Updates[i].DN)
		}
		if got[i].Entry.String() != mres.Updates[i].Entry.String() {
			t.Fatalf("update %d: entry bytes differ", i)
		}
	}
}

func TestResumeRetransmitsOnlyNamedChunk(t *testing.T) {
	master, _ := chunkedMaster(t, 10)
	eng := NewEngine(master, WithChunkSize(3))

	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	tok1 := *res.Resume // names chunk 1

	// Advance to chunk 2, then "lose" its response and re-present tok1's
	// successor... first walk forward once.
	res2, err := eng.ResumeReload(tok1)
	if err != nil {
		t.Fatal(err)
	}
	tok2 := *res2.Resume // names chunk 2

	// Reconnect presenting the older token: chunk 1 again, verbatim.
	again, err := eng.ResumeReload(tok1)
	if err != nil {
		t.Fatal(err)
	}
	if again.FullReload {
		t.Fatal("re-presented valid token restarted from zero")
	}
	if len(again.Updates) != len(res2.Updates) {
		t.Fatalf("retransmitted chunk has %d updates, original %d", len(again.Updates), len(res2.Updates))
	}
	for i := range again.Updates {
		if again.Updates[i].DN.Norm() != res2.Updates[i].DN.Norm() {
			t.Fatal("retransmitted chunk differs from original")
		}
	}
	if *again.Resume != tok2 {
		t.Fatalf("retransmitted chunk token = %+v, want %+v", *again.Resume, tok2)
	}
}

func TestForgedTokenRestartsFromZero(t *testing.T) {
	master, _ := chunkedMaster(t, 10)
	eng := NewEngine(master, WithChunkSize(3))

	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		forge func(proto.ResumeToken) proto.ResumeToken
	}{
		{"flipped fingerprint", func(tok proto.ResumeToken) proto.ResumeToken {
			tok.Fingerprint ^= 1
			return tok
		}},
		{"wrong snapshot csn", func(tok proto.ResumeToken) proto.ResumeToken {
			tok.CSN += 100
			return tok
		}},
		{"wrong chunk geometry", func(tok proto.ResumeToken) proto.ResumeToken {
			tok.Chunks++
			return tok
		}},
		{"chunk zero", func(tok proto.ResumeToken) proto.ResumeToken {
			tok.Chunk = 0
			return tok
		}},
		{"chunk out of range", func(tok proto.ResumeToken) proto.ResumeToken {
			tok.Chunk = tok.Chunks
			return tok
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := eng.Counters().Snapshot().ResumeRejects
			got, err := eng.ResumeReload(tc.forge(*res.Resume))
			if err != nil {
				t.Fatalf("forged token must degrade, not error: %v", err)
			}
			if !got.FullReload {
				t.Fatal("forged token did not restart from chunk zero")
			}
			if eng.Counters().Snapshot().ResumeRejects != before+1 {
				t.Error("reject not counted")
			}
			// The restart is itself resumable; keep the fresh token for the
			// next subtest round (res.Resume stays from the prior transfer,
			// which the restart superseded — refresh it).
			res = got
		})
	}
}

func TestStaleTokenAfterSupersession(t *testing.T) {
	master, _ := chunkedMaster(t, 10)
	eng := NewEngine(master, WithChunkSize(3))

	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	old := *res.Resume

	// New content commits, and a forged token forces a fresh transfer at a
	// newer snapshot CSN, superseding the first.
	addPerson(t, master, "late", "0498", "1")
	forged := old
	forged.Fingerprint ^= 1
	fresh, err := eng.ResumeReload(forged)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.FullReload || fresh.Resume == nil {
		t.Fatal("expected a fresh chunked restart")
	}
	if fresh.Resume.CSN == old.CSN {
		t.Fatal("fresh transfer did not advance the snapshot CSN")
	}

	// The token from the superseded transfer no longer verifies.
	got, err := eng.ResumeReload(old)
	if err != nil {
		t.Fatal(err)
	}
	if !got.FullReload {
		t.Fatal("stale token accepted after supersession")
	}
}

func TestResumeUnknownSession(t *testing.T) {
	master, _ := chunkedMaster(t, 10)
	eng := NewEngine(master, WithChunkSize(3))
	_, err := eng.ResumeReload(proto.ResumeToken{Session: "sess-99", CSN: 1, Chunk: 1, Chunks: 2})
	if !errors.Is(err, ErrNoSuchSession) {
		t.Fatalf("unknown session: err = %v, want ErrNoSuchSession", err)
	}

	// An ended session equally refuses resumption.
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	tok := *res.Resume
	if err := eng.End(cookieString(tok.Session, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ResumeReload(tok); !errors.Is(err, ErrNoSuchSession) {
		t.Fatalf("ended session: err = %v, want ErrNoSuchSession", err)
	}
}

func TestTransferHoldLifecycle(t *testing.T) {
	// The transfer pins its snapshot from first chunk to cookie
	// presentation — not merely to final-chunk delivery — so the post-reload
	// catch-up poll cannot be forced into another reload by journal trim.
	master, _ := chunkedMaster(t, 10, dit.WithJournalLimit(4))
	eng := NewEngine(master, WithChunkSize(3))

	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	if got := master.ActiveHolds(); got != 1 {
		t.Fatalf("holds during transfer = %d, want 1", got)
	}

	// Far more commits than the journal limit land mid-transfer; the hold
	// must keep the snapshot's suffix covered.
	for i := 0; i < 12; i++ {
		mustModify(t, master, dn.MustParse("cn=p000,c=us,o=xyz"), "dept", fmt.Sprintf("d%d", i))
	}

	held, _, final := drainChunks(t, eng, res, make(map[string]bool))
	if got := master.ActiveHolds(); got != 1 {
		t.Fatalf("holds after final chunk (cookie not yet presented) = %d, want 1", got)
	}

	next, err := eng.Poll(final.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	if next.FullReload {
		t.Fatal("catch-up poll after pinned transfer degraded to reload")
	}
	held = consumerContent(held, next)
	if len(held) != 10 {
		t.Fatalf("consumer holds %d entries after catch-up, want 10", len(held))
	}
	if got := master.ActiveHolds(); got != 0 {
		t.Fatalf("holds after cookie presented = %d, want 0", got)
	}

	// With the hold gone the journal trims back to its limit on the next
	// commit.
	mustModify(t, master, dn.MustParse("cn=p001,c=us,o=xyz"), "dept", "z")
	if _, ok := master.ChangesSince(0); ok {
		t.Fatal("journal still covers CSN 0 after hold release; trim did not resume")
	}
}

func TestEndReleasesTransferHold(t *testing.T) {
	master, _ := chunkedMaster(t, 10)
	eng := NewEngine(master, WithChunkSize(3))
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	if master.ActiveHolds() != 1 {
		t.Fatal("no hold during transfer")
	}
	if err := eng.End(cookieString(res.Resume.Session, 1)); err != nil {
		t.Fatal(err)
	}
	if got := master.ActiveHolds(); got != 0 {
		t.Fatalf("holds after End = %d, want 0", got)
	}
}

func TestPersistSettlesTransferHold(t *testing.T) {
	// Upgrading to persist mode with the completion cookie also proves the
	// consumer holds the content; the pinned snapshot is released.
	master, _ := chunkedMaster(t, 10)
	eng := NewEngine(master, WithChunkSize(3))
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	_, _, final := drainChunks(t, eng, res, make(map[string]bool))
	sub, err := eng.Persist(final.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if got := master.ActiveHolds(); got != 0 {
		t.Fatalf("holds after persist upgrade = %d, want 0", got)
	}
}

func TestSmallReloadStaysMonolithic(t *testing.T) {
	master, _ := chunkedMaster(t, 3)
	eng := NewEngine(master, WithChunkSize(8))
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resume != nil {
		t.Fatal("content at or under the chunk size must not be chunked")
	}
	if res.Cookie == "" || len(res.Updates) != 3 {
		t.Fatalf("monolithic begin malformed: cookie=%q updates=%d", res.Cookie, len(res.Updates))
	}
	if master.ActiveHolds() != 0 {
		t.Fatal("monolithic begin left a hold")
	}
}

func TestTrimTriggeredReloadIsChunked(t *testing.T) {
	// A reload forced by journal trim rides the same chunked path as Begin.
	master, _ := chunkedMaster(t, 10, dit.WithJournalLimit(2))
	eng := NewEngine(master, WithChunkSize(3))
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	held, _, final := drainChunks(t, eng, res, make(map[string]bool))

	// Present the cookie once so the transfer's hold is released — until
	// then the pinned snapshot deliberately keeps the poll incremental.
	settled, err := eng.Poll(final.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	cookie := settled.Cookie

	// Push the journal past the session's sync point.
	for i := 0; i < 6; i++ {
		mustModify(t, master, dn.MustParse("cn=p002,c=us,o=xyz"), "dept", fmt.Sprintf("t%d", i))
	}
	res, err = eng.Poll(cookie)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullReload || res.Resume == nil {
		t.Fatalf("trimmed poll: FullReload=%v Resume=%v, want chunked reload", res.FullReload, res.Resume)
	}
	held, _, final = drainChunks(t, eng, res, held)
	if len(held) != 10 {
		t.Fatalf("consumer holds %d entries after chunked reload, want 10", len(held))
	}
}
