package resync

import (
	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/query"
)

// This file implements the synchronization baselines the paper compares
// ReSync against (Section 5.2):
//
//   - retain mode (equation 3): the server has no per-session leave history;
//     it sends the DNs of unchanged in-content entries as retain actions
//     plus full entries for changed in-content ones. The consumer deletes
//     whatever it holds that was not mentioned. Converges, at the cost of
//     one retain PDU per unchanged entry.
//   - tombstone sync: deleted entries leave only a DN-bearing tombstone, so
//     the server cannot tell whether a deleted entry was in the content —
//     every deleted DN since the last poll is transmitted.
//   - changelog sync: modify records carry only the changed attributes, so
//     the server cannot evaluate content membership of modifies; it ships
//     raw records and the consumer applies what it can. An entry modified
//     INTO the content is lost (the record lacks the full entry), so the
//     mechanism does not converge.
//   - full reload: the entire content is resent on every poll.

// PollRetain performs an incomplete-history synchronization per equation
// (3): for every entry currently in the content, either a retain action
// (unchanged since the session's last sync point) or an add/modify with the
// full entry. The session's content map tells adds from modifies. The
// consumer must discard held entries not mentioned in the result.
func (e *Engine) PollRetain(cookie string) (*PollResult, error) {
	sess, err := e.lookup(cookie)
	if err != nil {
		return nil, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.ended {
		return nil, ErrNoSuchSession
	}
	e.stats.RetainPolls.Add(1)
	// The session's content map describes the replica only if the replica
	// is positioned at a known sync point: rewind to the presented
	// generation, rolling back state from responses the replica evidently
	// never applied. If the point is gone (lost response whose state was
	// already replaced, or evicted history), nothing can be proven held —
	// a DN-only retain would then reference an entry the replica may never
	// have received. Degrade to a full transfer: clear the held set so
	// every content entry ships as a full entry and nothing is retained.
	_, gen := splitCookie(cookie)
	if !sess.rewindTo(gen) {
		sess.content = make(map[string]dn.DN)
	}
	// Which DNs changed at all since the sync point? With trimmed history,
	// everything is considered changed.
	changedDNs := make(map[string]bool)
	haveHistory := false
	if changes, ok := e.store.ChangesSince(sess.csn); ok {
		haveHistory = true
		for _, c := range changes {
			changedDNs[c.DN.Norm()] = true
			if c.Type == dit.ChangeModifyDN {
				changedDNs[c.NewDN.Norm()] = true
			}
		}
	}

	res := &PollResult{}
	// Atomic (csn, entries) read: the session may belong to a content group,
	// whose shared-interval cache requires the content map to be exactly the
	// store's content at the recorded CSN (see Engine.Begin).
	csn, entries := e.store.Snapshot(stripAttrs(sess.spec))
	newContent := make(map[string]dn.DN, len(entries))
	for _, ent := range entries {
		norm := ent.DN().Norm()
		newContent[norm] = ent.DN()
		_, held := sess.content[norm]
		unchanged := haveHistory && !changedDNs[norm]
		switch {
		case unchanged && held:
			res.Updates = append(res.Updates, Update{Action: ActionRetain, DN: ent.DN()})
		case held:
			sel := ent.Select(sess.spec.Attrs)
			res.Updates = append(res.Updates, Update{Action: ActionModify, DN: sel.DN(), Entry: sel})
		default:
			sel := ent.Select(sess.spec.Attrs)
			res.Updates = append(res.Updates, Update{Action: ActionAdd, DN: sel.DN(), Entry: sel})
		}
	}
	// Retain mode has no per-point resume history (it exists to model an
	// incomplete-history server): the session state is replaced wholesale
	// and only the new point is resumable.
	sess.content = newContent
	sess.csn = csn
	sess.genSeq++
	sess.points = []syncPoint{{gen: sess.genSeq, csn: csn}}
	res.Cookie = cookieString(sess.id, sess.genSeq)
	e.countPDUs(res.Updates)
	e.observe(sess.id, res.Updates, false)
	return res, nil
}

// TombstoneServer models a master that keeps tombstones instead of
// per-session leave history. Adds and in-content modifies are classified
// exactly (before-images are available for those), but deletions are known
// only by DN — so every deletion since the poll point is transmitted,
// whether or not it affected the content.
type TombstoneServer struct {
	store *dit.Store
}

// NewTombstoneServer wraps a master store.
func NewTombstoneServer(store *dit.Store) *TombstoneServer {
	return &TombstoneServer{store: store}
}

// TombstoneSession is consumer state for tombstone-based sync.
type TombstoneSession struct {
	Spec    query.Query
	lastCSN dit.CSN
	content map[string]bool
}

// Begin starts a tombstone session with a full content transfer.
func (ts *TombstoneServer) Begin(spec query.Query) (*PollResult, *TombstoneSession) {
	sess := &TombstoneSession{Spec: spec, lastCSN: ts.store.LastCSN(), content: make(map[string]bool)}
	res := &PollResult{}
	for _, ent := range ts.store.MatchAll(stripAttrs(spec)) {
		sess.content[ent.DN().Norm()] = true
		res.Updates = append(res.Updates, Update{Action: ActionAdd, DN: ent.DN(), Entry: ent})
	}
	return res, sess
}

// Poll returns updates since the last poll: exact adds/modifies/moved-out
// deletes, plus a delete PDU for EVERY tombstoned (deleted) entry since the
// sync point regardless of content membership — the overhead the paper
// attributes to tombstones.
func (ts *TombstoneServer) Poll(sess *TombstoneSession) (*PollResult, bool) {
	changes, ok := ts.store.ChangesSince(sess.lastCSN)
	if !ok {
		return nil, false
	}
	res := &PollResult{}
	inContent := func(ent *entry.Entry) bool {
		if ent == nil {
			return false
		}
		return sess.Spec.InScope(ent.DN()) && specFilter(sess.Spec).Matches(ent)
	}
	for _, c := range changes {
		switch c.Type {
		case dit.ChangeAdd:
			if inContent(c.After) {
				res.Updates = append(res.Updates, Update{Action: ActionAdd, DN: c.DN, Entry: c.After})
				sess.content[c.DN.Norm()] = true
			}
		case dit.ChangeModify:
			norm := c.DN.Norm()
			was := sess.content[norm]
			is := inContent(c.After)
			switch {
			case was && is:
				res.Updates = append(res.Updates, Update{Action: ActionModify, DN: c.DN, Entry: c.After})
			case was && !is:
				res.Updates = append(res.Updates, Update{Action: ActionDelete, DN: c.DN})
				delete(sess.content, norm)
			case !was && is:
				res.Updates = append(res.Updates, Update{Action: ActionAdd, DN: c.DN, Entry: c.After})
				sess.content[norm] = true
			}
		case dit.ChangeModifyDN:
			oldNorm := c.DN.Norm()
			if sess.content[oldNorm] {
				res.Updates = append(res.Updates, Update{Action: ActionDelete, DN: c.DN})
				delete(sess.content, oldNorm)
			}
			if inContent(c.After) {
				res.Updates = append(res.Updates, Update{Action: ActionAdd, DN: c.NewDN, Entry: c.After})
				sess.content[c.NewDN.Norm()] = true
			}
		case dit.ChangeDelete:
			// The tombstone carries no attributes: the server cannot decide
			// content membership and must ship the DN unconditionally.
			res.Updates = append(res.Updates, Update{Action: ActionDelete, DN: c.DN})
			delete(sess.content, c.DN.Norm())
		}
	}
	if len(changes) > 0 {
		sess.lastCSN = changes[len(changes)-1].CSN
	}
	return res, true
}

// ChangelogRecord is a raw changelog entry as shipped to consumers: the
// operation, the DN, and for modifies only the changed attributes.
type ChangelogRecord struct {
	Type  dit.ChangeType
	DN    dn.DN
	NewDN dn.DN
	// Entry is the full entry for adds (the changelog stores the add
	// payload); nil otherwise.
	Entry *entry.Entry
	Mods  []dit.Mod
}

// ByteSize estimates the record's wire size.
func (r ChangelogRecord) ByteSize() int {
	n := len(r.DN.String()) + 8
	if r.Entry != nil {
		n += r.Entry.ByteSize()
	}
	for _, m := range r.Mods {
		n += len(m.Attr) + 4
		for _, v := range m.Values {
			n += len(v) + 2
		}
	}
	return n
}

// ChangelogServer ships raw changelog records in scope; it cannot evaluate
// the filter for modify records (no before/after images in a changelog).
type ChangelogServer struct {
	store *dit.Store
}

// NewChangelogServer wraps a master store.
func NewChangelogServer(store *dit.Store) *ChangelogServer {
	return &ChangelogServer{store: store}
}

// Since returns the raw changelog records with CSN greater than after whose
// target lies in the base/scope region of spec. Records for adds carry the
// full entry (and are filtered, since the server can evaluate an add); all
// modify/delete/modifyDN records in scope must be shipped.
func (cs *ChangelogServer) Since(spec query.Query, after dit.CSN) ([]ChangelogRecord, dit.CSN, bool) {
	changes, ok := cs.store.ChangesSince(after)
	if !ok {
		return nil, after, false
	}
	var out []ChangelogRecord
	last := after
	region := query.Query{Base: spec.Base, Scope: spec.Scope}
	for _, c := range changes {
		last = c.CSN
		switch c.Type {
		case dit.ChangeAdd:
			if region.InScope(c.DN) && specFilter(spec).Matches(c.After) {
				out = append(out, ChangelogRecord{Type: c.Type, DN: c.DN, Entry: c.After})
			}
		case dit.ChangeModify:
			if region.InScope(c.DN) {
				out = append(out, ChangelogRecord{Type: c.Type, DN: c.DN, Mods: c.Mods})
			}
		case dit.ChangeDelete:
			if region.InScope(c.DN) {
				out = append(out, ChangelogRecord{Type: c.Type, DN: c.DN})
			}
		case dit.ChangeModifyDN:
			if region.InScope(c.DN) || region.InScope(c.NewDN) {
				out = append(out, ChangelogRecord{Type: c.Type, DN: c.DN, NewDN: c.NewDN})
			}
		}
	}
	return out, last, true
}

// ChangelogConsumer applies raw changelog records to a replica content set.
// Modify records can only be applied to held entries; an entry modified
// into the content is silently missed — the convergence failure the paper
// describes. Bytes counts shipped record sizes.
type ChangelogConsumer struct {
	Spec    query.Query
	Entries map[string]*entry.Entry // norm DN -> held entry
	Bytes   int
	Records int
	// MissedMoveIns counts modify records that would have moved an unheld
	// entry into the content (detectable only by this test harness, not by
	// a real consumer).
	MissedMoveIns int
}

// NewChangelogConsumer creates a consumer holding the initial content.
func NewChangelogConsumer(spec query.Query, initial []*entry.Entry) *ChangelogConsumer {
	c := &ChangelogConsumer{Spec: spec, Entries: make(map[string]*entry.Entry, len(initial))}
	for _, e := range initial {
		c.Entries[e.DN().Norm()] = e.Clone()
	}
	return c
}

// Apply consumes records, mutating the held content.
func (c *ChangelogConsumer) Apply(records []ChangelogRecord) {
	for _, r := range records {
		c.Records++
		c.Bytes += r.ByteSize()
		switch r.Type {
		case dit.ChangeAdd:
			if specFilter(c.Spec).Matches(r.Entry) && c.Spec.InScope(r.DN) {
				c.Entries[r.DN.Norm()] = r.Entry.Clone()
			}
		case dit.ChangeDelete:
			delete(c.Entries, r.DN.Norm())
		case dit.ChangeModify:
			held, ok := c.Entries[r.DN.Norm()]
			if !ok {
				// The record lacks the full entry; a real consumer cannot
				// construct it. Convergence is lost if the modify moved the
				// entry into the content.
				continue
			}
			applyMods(held, r.Mods)
			if !specFilter(c.Spec).Matches(held) {
				delete(c.Entries, r.DN.Norm())
			}
		case dit.ChangeModifyDN:
			if held, ok := c.Entries[r.DN.Norm()]; ok {
				delete(c.Entries, r.DN.Norm())
				held.SetDN(r.NewDN)
				if c.Spec.InScope(r.NewDN) {
					c.Entries[r.NewDN.Norm()] = held
				}
			}
		}
	}
}

func applyMods(e *entry.Entry, mods []dit.Mod) {
	for _, m := range mods {
		switch m.Op {
		case dit.ModAdd:
			e.Add(m.Attr, m.Values...)
		case dit.ModReplace:
			if len(m.Values) == 0 {
				if e.Has(m.Attr) {
					_ = e.DeleteValues(m.Attr)
				}
			} else {
				e.Put(m.Attr, m.Values...)
			}
		case dit.ModDelete:
			_ = e.DeleteValues(m.Attr, m.Values...)
		}
	}
}

// FullReload returns the entire current content as add actions — the
// maximal-traffic baseline.
func FullReload(store *dit.Store, spec query.Query) []Update {
	entries := store.MatchAll(stripAttrs(spec))
	out := make([]Update, 0, len(entries))
	for _, ent := range entries {
		sel := ent.Select(spec.Attrs)
		out = append(out, Update{Action: ActionAdd, DN: sel.DN(), Entry: sel})
	}
	return out
}
