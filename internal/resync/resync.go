// Package resync implements the paper's ReSync filter-synchronization
// protocol (Section 5) on the master side, the replica-side applier, and
// the baseline mechanisms it is compared against (tombstones, changelogs,
// full reload, and the incomplete-history "retain" mode of equation 3).
//
// A replica registers a content specification — an LDAP query — and then
// polls (or subscribes, in persist mode). Using the DIT update journal's
// before/after snapshots, the master classifies every change against the
// content:
//
//	E01 (moved in)      → add action, full entry
//	E10 (moved out)     → delete action, DN only
//	E11 (changed within) → modify action, full entry
//
// Changes within one poll interval are coalesced to the net difference, so
// the update set is minimal. A modifyDN that keeps an entry inside the
// content is, per the paper, a delete of the old DN followed by an add of
// the new DN — which is exactly what per-DN net classification produces.
package resync

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"filterdir/internal/containment"
	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/metrics"
	"filterdir/internal/proto"
	"filterdir/internal/query"
)

// Action is the client-side action carried by an update PDU.
type Action int

// Update actions per Section 5.2.
const (
	ActionAdd Action = iota + 1
	ActionDelete
	ActionModify
	ActionRetain
)

func (a Action) String() string {
	switch a {
	case ActionAdd:
		return "add"
	case ActionDelete:
		return "delete"
	case ActionModify:
		return "modify"
	case ActionRetain:
		return "retain"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Update is one synchronization PDU: for add and modify the complete entry
// is sent; for delete and retain only the DN.
type Update struct {
	Action Action
	DN     dn.DN
	Entry  *entry.Entry
}

// ByteSize estimates the PDU's wire size for traffic accounting.
func (u Update) ByteSize() int {
	if u.Entry != nil {
		return u.Entry.ByteSize() + 8
	}
	return len(u.DN.String()) + 8
}

// Traffic accumulates synchronization cost in PDUs and bytes.
type Traffic struct {
	Adds, Deletes, Modifies, Retains int
	Bytes                            int
}

// Add accounts one update.
func (t *Traffic) Add(u Update) {
	switch u.Action {
	case ActionAdd:
		t.Adds++
	case ActionDelete:
		t.Deletes++
	case ActionModify:
		t.Modifies++
	case ActionRetain:
		t.Retains++
	}
	t.Bytes += u.ByteSize()
}

// Updates returns the total number of update PDUs.
func (t *Traffic) Updates() int { return t.Adds + t.Deletes + t.Modifies + t.Retains }

// Merge adds another traffic record into t.
func (t *Traffic) Merge(o Traffic) {
	t.Adds += o.Adds
	t.Deletes += o.Deletes
	t.Modifies += o.Modifies
	t.Retains += o.Retains
	t.Bytes += o.Bytes
}

// Errors returned by the engine.
var (
	ErrNoSuchSession = errors.New("no such resync session")
)

// Engine is the master-side ReSync protocol engine, layered on a DIT store
// and its update journal. Safe for concurrent use.
//
// Concurrency model: mu is a short-lived registry lock guarding only the
// sessions map and ID counter. Each session carries its own mutex
// serializing polls of that session, so a slow synchronization (e.g. a
// trimmed-journal full reload) on one replica never blocks another
// replica's poll — the underlying dit.Store is RWMutex-protected, so
// concurrent MatchAll/ChangesSince reads proceed in parallel.
type Engine struct {
	store *dit.Store
	stats *metrics.SyncCounters

	mu       sync.Mutex // guards sessions and nextID only; never held across store reads
	sessions map[string]*session
	nextID   uint64

	obsMu sync.Mutex // guards obs; separate so observe never touches mu
	obs   Observer

	// Content-group fan-out (group.go). groupMu guards the registries;
	// each group carries its own lock for member/cache/broadcast state.
	grouping bool
	checker  *containment.Checker
	groupMu  sync.Mutex
	groups   map[string]*group   // founding content key -> group
	aliases  map[string]*group   // every resolved content key -> group
	regions  map[string][]*group // base/scope region key -> groups in it

	// Persist slow-consumer policy knobs (see group.syncOne).
	persistQueueCap int
	demoteAfter     int

	// Retention and resumability knobs: keepPoints is the `keep last_n`
	// sync-point history policy (replacing the old fixed 64-point bound);
	// chunkSize > 0 serializes full reloads into resumable chunks of that
	// many entries (resume.go).
	keepPoints int
	chunkSize  int

	// watermark maps a local store CSN to the master-position watermark
	// stamped on poll results (identity when nil — the master serving its
	// own store). A cascade mid-tier installs a mapping to its upstream
	// CSNs so edge-writing consumers can match pending ops, which are
	// sequenced by the master, against a stream served by the tier.
	watermarkMu sync.Mutex
	watermark   func(dit.CSN) uint64
}

// SetWatermarkFunc installs (or clears, with nil) the local-CSN → master
// watermark mapping stamped on every poll result. The function must be
// conservative: return only master positions provably covered by the local
// content at the given CSN, and be monotone in it.
func (e *Engine) SetWatermarkFunc(fn func(dit.CSN) uint64) {
	e.watermarkMu.Lock()
	e.watermark = fn
	e.watermarkMu.Unlock()
}

// stampCSN resolves the watermark for a local CSN.
func (e *Engine) stampCSN(csn dit.CSN) uint64 {
	e.watermarkMu.Lock()
	fn := e.watermark
	e.watermarkMu.Unlock()
	if fn == nil {
		return uint64(csn)
	}
	return fn(csn)
}

// Observer receives every update batch the engine emits, right before it is
// returned (or pushed) to the consumer: the session ID, the batch, and
// whether it is a full content transfer. The convergence oracle uses it to
// account server-side update traffic. The callback runs while the session's
// lock is held and must not call back into the engine.
type Observer func(sessionID string, updates []Update, fullReload bool)

// SetObserver installs (or clears, with nil) the emission observer.
func (e *Engine) SetObserver(fn Observer) {
	e.obsMu.Lock()
	e.obs = fn
	e.obsMu.Unlock()
}

// observe notifies the installed observer, if any, of an emitted batch.
func (e *Engine) observe(id string, updates []Update, fullReload bool) {
	e.obsMu.Lock()
	fn := e.obs
	e.obsMu.Unlock()
	if fn != nil {
		fn(id, updates, fullReload)
	}
}

// session records the per-replica synchronization state: the content
// specification, the CSN up to which the replica is synchronized, and the
// DN set of the content at that CSN (the basis for classifying moves in and
// out — the "session history" of the paper).
//
// Delivery is at-least-once: every response carries a cookie naming the
// sync point ("sess-N@gen") it brings the replica to, and the session keeps
// a bounded history of recent points with undo records. A replica that
// lost a response re-presents its previous cookie; the engine rolls the
// content map back to that point and recomputes, so a dropped connection
// never loses updates. Presenting a cookie acknowledges its point —
// anything older is discarded.
type session struct {
	id string

	// mu serializes synchronization exchanges of this session; ended is set
	// (under mu) by End so that a poll racing a concurrent End cannot
	// advance a deregistered session and hand its cookie back as live.
	mu    sync.Mutex
	ended bool

	spec    query.Query
	group   *group // content group, nil when grouping is disabled
	viewKey string // attribute-selection key within the group
	genSeq  uint64
	csn     dit.CSN          // CSN of the newest sync point
	content map[string]dn.DN // norm DN -> DN of entries in content at csn
	// points is the resumable history, oldest (last acknowledged) first;
	// the final element matches csn/content.
	points []syncPoint
	// transfer is the session's in-flight (or just-completed) chunked
	// reload, nil outside one (resume.go).
	transfer *transfer
}

// syncPoint is one replica-visible synchronization state.
type syncPoint struct {
	gen  uint64
	csn  dit.CSN
	undo []undoOp // restores the previous (older) point's content map
}

// undoOp reverts one content-map key to its value at the previous point.
type undoOp struct {
	norm    string
	dn      dn.DN
	present bool
}

// defaultSyncPointRetention bounds the per-session resume history when no
// WithSyncPointRetention policy is configured. A replica further behind
// than the retained window (e.g. a persist stream that outlived many
// unacknowledged batches) falls back to a full reload.
const defaultSyncPointRetention = 64

// cookieString renders the wire cookie for a sync point of a session.
func cookieString(id string, gen uint64) string {
	return id + "@" + strconv.FormatUint(gen, 10)
}

// splitCookie separates a wire cookie into session ID and generation. A
// cookie without a parseable generation resolves to gen 0, which matches no
// sync point.
func splitCookie(cookie string) (id string, gen uint64) {
	i := strings.LastIndexByte(cookie, '@')
	if i < 0 {
		return cookie, 0
	}
	g, err := strconv.ParseUint(cookie[i+1:], 10, 64)
	if err != nil {
		return cookie, 0
	}
	return cookie[:i], g
}

// rollbackTo rolls the content map back to the sync point gen, discarding
// newer points — responses the replica evidently never applied, which will
// be recomputed. Older points are kept: rollback alone does not prove the
// replica holds gen durably. Reports whether the point was found.
func (sess *session) rollbackTo(gen uint64) bool {
	idx := -1
	for i, p := range sess.points {
		if p.gen == gen {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for j := len(sess.points) - 1; j > idx; j-- {
		for _, u := range sess.points[j].undo {
			if u.present {
				sess.content[u.norm] = u.dn
			} else {
				delete(sess.content, u.norm)
			}
		}
	}
	sess.points = sess.points[:idx+1]
	sess.csn = sess.points[idx].csn
	return true
}

// rewindTo repositions the session at the sync point the replica proved it
// holds by presenting gen: newer points are rolled back, and — since
// presenting a cookie acknowledges it — older points are dropped.
func (sess *session) rewindTo(gen uint64) bool {
	if !sess.rollbackTo(gen) {
		return false
	}
	base := sess.points[len(sess.points)-1]
	base.undo = nil
	sess.points = append(sess.points[:0], base)
	return true
}

// setContent records an insertion or replacement in the content map with
// its undo. A no-op write (same DN) records nothing.
func (sess *session) setContent(norm string, d dn.DN, undo *[]undoOp) {
	if old, ok := sess.content[norm]; ok {
		if old.SameSpelling(d) {
			return
		}
		*undo = append(*undo, undoOp{norm: norm, dn: old, present: true})
	} else {
		*undo = append(*undo, undoOp{norm: norm})
	}
	sess.content[norm] = d
}

// delContent records a deletion from the content map with its undo.
func (sess *session) delContent(norm string, undo *[]undoOp) {
	if old, ok := sess.content[norm]; ok {
		*undo = append(*undo, undoOp{norm: norm, dn: old, present: true})
		delete(sess.content, norm)
	}
}

// EngineOption configures NewEngine.
type EngineOption func(*Engine)

// WithoutGrouping disables the content-group fan-out layer: every session
// classifies and streams independently, as in the pre-fan-out engine. Used
// as the ablation baseline in benchmarks.
func WithoutGrouping() EngineOption {
	return func(e *Engine) { e.grouping = false }
}

// WithSlowConsumerPolicy overrides the persist fan-out queue capacity and
// the number of consecutive coalesced (skipped) cycles after which a
// lagging subscriber is demoted to poll mode.
func WithSlowConsumerPolicy(queueCap, demoteAfter int) EngineOption {
	return func(e *Engine) {
		if queueCap > 0 {
			e.persistQueueCap = queueCap
		}
		if demoteAfter > 0 {
			e.demoteAfter = demoteAfter
		}
	}
}

// WithSyncPointRetention sets the `keep last_n` policy for the per-session
// resume history: a session retains at most n sync points (its newest
// always included), and a replica presenting anything older degrades to a
// full reload. Values < 1 restore the default (64).
func WithSyncPointRetention(n int) EngineOption {
	return func(e *Engine) {
		if n < 1 {
			n = defaultSyncPointRetention
		}
		e.keepPoints = n
	}
}

// WithChunkSize makes full reloads resumable: a reload larger than n
// entries is served as deterministic DN-ordered chunks of n, each exchange
// handing the consumer a resume token for the remainder (resume.go). Zero
// (the default) keeps reloads monolithic.
func WithChunkSize(n int) EngineOption {
	return func(e *Engine) {
		if n < 0 {
			n = 0
		}
		e.chunkSize = n
	}
}

// Default slow-consumer policy: a subscriber buffers up to 4 batches; a
// subscriber that stays full for 8 consecutive update cycles is demoted.
const (
	defaultPersistQueueCap = 4
	defaultDemoteAfter     = 8
)

// NewEngine creates an engine over the master store.
func NewEngine(store *dit.Store, opts ...EngineOption) *Engine {
	e := &Engine{
		store:           store,
		stats:           &metrics.SyncCounters{},
		sessions:        make(map[string]*session),
		grouping:        true,
		checker:         containment.NewChecker(),
		groups:          make(map[string]*group),
		aliases:         make(map[string]*group),
		regions:         make(map[string][]*group),
		persistQueueCap: defaultPersistQueueCap,
		demoteAfter:     defaultDemoteAfter,
		keepPoints:      defaultSyncPointRetention,
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Counters exposes the engine's synchronization counters; callers may read
// them concurrently (and the wire server adds its streaming accounting).
func (e *Engine) Counters() *metrics.SyncCounters { return e.stats }

// lookup resolves a cookie to its session under one registry-lock
// acquisition; the generation part is ignored here.
func (e *Engine) lookup(cookie string) (*session, error) {
	id, _ := splitCookie(cookie)
	e.mu.Lock()
	defer e.mu.Unlock()
	sess, ok := e.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchSession, cookie)
	}
	return sess, nil
}

// countPDUs accounts a produced update batch by action.
func (e *Engine) countPDUs(updates []Update) {
	for _, u := range updates {
		switch u.Action {
		case ActionAdd:
			e.stats.PDUAdds.Add(1)
		case ActionDelete:
			e.stats.PDUDeletes.Add(1)
		case ActionModify:
			e.stats.PDUModifies.Add(1)
		case ActionRetain:
			e.stats.PDURetains.Add(1)
		}
	}
}

// PollResult is the outcome of one poll: the update sequence, the cookie
// resuming the session, and whether the content was reloaded from scratch
// (journal history no longer covered the replica's sync point).
type PollResult struct {
	Updates    []Update
	Cookie     string
	FullReload bool
	// CSN is the master-position watermark the exchange syncs the consumer
	// to (the engine's store CSN on a master, the mapped upstream CSN on a
	// cascade tier; 0 when unknown). An edge-writing replica retires a
	// pending op once every source's CSN reaches the op's assigned CSN.
	CSN uint64
	// Enc, when non-nil, memoizes the wire encoding of Updates, shared
	// with every other session of the same content view crossing the same
	// change interval (group.go).
	Enc *SharedEnc
	// Resume, when non-nil, marks the result as one chunk of a resumable
	// reload: the exchange is incomplete, Cookie is empty, and the consumer
	// continues by presenting the token (ResumeReload). FullReload is set
	// only on chunk zero — the consumer clears held content there and
	// appends on later chunks.
	Resume *proto.ResumeToken
}

// Begin starts a synchronization session for the content of spec: the
// entire current content is returned as add actions together with the
// session cookie (the null-cookie case of Section 5.2). The sync CSN and
// the content are read atomically (Store.Snapshot): the group cache keys
// shared classifications by (spec, CSN) only, so a content map that did
// not match its CSN would be replayed onto every other member standing at
// that CSN and diverge them permanently.
func (e *Engine) Begin(spec query.Query) (*PollResult, error) {
	csn, entries := e.store.Snapshot(stripAttrs(spec))
	sess := &session{spec: spec, viewKey: viewKey(spec.Attrs), genSeq: 1, csn: csn, content: make(map[string]dn.DN, len(entries))}
	sess.group = e.joinGroup(spec)
	sess.points = []syncPoint{{gen: 1, csn: csn}}
	updates := make([]Update, 0, len(entries))
	for _, ent := range entries {
		sess.content[ent.DN().Norm()] = ent.DN()
		sel := ent.Select(spec.Attrs)
		updates = append(updates, Update{Action: ActionAdd, DN: sel.DN(), Entry: sel})
	}
	e.mu.Lock()
	e.nextID++
	sess.id = "sess-" + strconv.FormatUint(e.nextID, 10)
	e.sessions[sess.id] = sess
	e.mu.Unlock()
	e.stats.Begins.Add(1)
	if e.chunked(updates) {
		sess.mu.Lock()
		defer sess.mu.Unlock()
		return e.beginTransfer(sess, updates, csn), nil
	}
	res := &PollResult{Updates: updates, CSN: e.stampCSN(csn), Cookie: cookieString(sess.id, 1)}
	e.countPDUs(res.Updates)
	e.observe(sess.id, res.Updates, true)
	return res, nil
}

// Poll returns the net content updates accumulated since the previous
// poll of the session identified by cookie. When the master's journal no
// longer covers the session's sync point, the full content is re-sent with
// FullReload set.
func (e *Engine) Poll(cookie string) (*PollResult, error) {
	sess, err := e.lookup(cookie)
	if err != nil {
		return nil, err
	}
	_, gen := splitCookie(cookie)
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.ended {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchSession, cookie)
	}
	e.stats.Polls.Add(1)
	if !sess.rewindTo(gen) {
		// The presented sync point is no longer in the resume history (or
		// never existed): the only safe answer is the full content.
		return e.reload(sess), nil
	}
	// Presenting a cookie at (or past) a completed chunked transfer proves
	// the consumer holds its content; the pinned snapshot can be let go.
	e.settleTransfer(sess)
	return e.poll(sess)
}

// poll runs one synchronization exchange from the session's newest sync
// point; the caller holds sess.mu.
func (e *Engine) poll(sess *session) (*PollResult, error) {
	changes, ok := e.store.ChangesSince(sess.csn)
	if !ok {
		return e.reload(sess), nil
	}

	res := &PollResult{}
	start := time.Now()
	updates, undo, enc := e.classifyFor(sess, changes)
	res.Updates = updates
	res.Enc = enc
	e.stats.ObserveClassify(time.Since(start))
	csn := sess.csn
	if len(changes) > 0 {
		csn = changes[len(changes)-1].CSN
	}
	last := &sess.points[len(sess.points)-1]
	if len(updates) == 0 && len(undo) == 0 {
		// Nothing the replica must apply: advance the current point in
		// place so idle polls do not grow the resume history, and the
		// replica keeps presenting the same cookie.
		last.csn = csn
		sess.csn = csn
		res.Cookie = cookieString(sess.id, last.gen)
	} else {
		sess.genSeq++
		sess.csn = csn
		sess.points = append(sess.points, syncPoint{gen: sess.genSeq, csn: csn, undo: undo})
		if len(sess.points) > e.keepPoints {
			sess.points = sess.points[1:]
			sess.points[0].undo = nil
		}
		res.Cookie = cookieString(sess.id, sess.genSeq)
	}
	res.CSN = e.stampCSN(csn)
	e.countPDUs(res.Updates)
	e.observe(sess.id, res.Updates, false)
	return res, nil
}

// reload re-sends the full content and resets the session's resume history
// to the new sync point — used when journal history no longer covers the
// session's sync point, or the replica presented an unknown one. The sync
// point and the content are read atomically (Store.Snapshot): content
// purity w.r.t. CSN is load-bearing for the group's shared-interval cache,
// so a commit between the two reads must not be able to skew the pair.
// The caller holds sess.mu.
func (e *Engine) reload(sess *session) *PollResult {
	e.stats.FullReloads.Add(1)
	csn, entries := e.store.Snapshot(stripAttrs(sess.spec))
	sess.genSeq++
	sess.csn = csn
	sess.content = make(map[string]dn.DN, len(entries))
	sess.points = []syncPoint{{gen: sess.genSeq, csn: csn}}
	updates := make([]Update, 0, len(entries))
	for _, ent := range entries {
		sess.content[ent.DN().Norm()] = ent.DN()
		sel := ent.Select(sess.spec.Attrs)
		updates = append(updates, Update{Action: ActionAdd, DN: sel.DN(), Entry: sel})
	}
	if e.chunked(updates) {
		return e.beginTransfer(sess, updates, csn)
	}
	// A monolithic reload supersedes any in-flight chunked transfer.
	e.dropTransfer(sess)
	res := &PollResult{Cookie: cookieString(sess.id, sess.genSeq), FullReload: true, CSN: e.stampCSN(csn), Updates: updates}
	e.countPDUs(res.Updates)
	e.observe(sess.id, res.Updates, true)
	return res
}

// End terminates a session (mode "sync_end"). The session is deregistered
// and marked ended under its own lock, so an exchange racing the End either
// completes first or observes the termination and fails. The session also
// leaves its content group; the last member out frees the group's shared
// state.
func (e *Engine) End(cookie string) error {
	id, _ := splitCookie(cookie)
	e.mu.Lock()
	sess, ok := e.sessions[id]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoSuchSession, cookie)
	}
	delete(e.sessions, id)
	e.mu.Unlock()
	sess.mu.Lock()
	sess.ended = true
	e.dropTransfer(sess)
	sess.mu.Unlock()
	e.leaveGroup(sess.group)
	e.stats.Ends.Add(1)
	return nil
}

// Sessions returns the number of active sessions.
func (e *Engine) Sessions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sessions)
}

// SessionSpec identifies one active session for control-plane inspection.
type SessionSpec struct {
	ID   string
	Spec query.Query
}

// SessionSpecs snapshots the active sessions' ids and specs. The tier
// control plane reads them as a live demand signal and to decide which
// downstream sessions a narrowing revolution must re-refer.
func (e *Engine) SessionSpecs() []SessionSpec {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SessionSpec, 0, len(e.sessions))
	for id, sess := range e.sessions {
		out = append(out, SessionSpec{ID: id, Spec: sess.spec})
	}
	return out
}

// Kick ends every active session whose spec fails the keep predicate,
// returning the ended session ids. A kicked consumer's next exchange gets
// ErrNoSuchSession — the graceful re-referral of a narrowing tier: a
// cascaded leaf supervisor reacts by re-beginning at its fallback master,
// so no update is lost. Persist streams attached to kicked sessions close
// on their next broadcast cycle (the broadcaster reaps ended sessions).
func (e *Engine) Kick(keep func(query.Query) bool) []string {
	e.mu.Lock()
	var ids []string
	for id, sess := range e.sessions {
		if !keep(sess.spec) {
			ids = append(ids, id)
		}
	}
	e.mu.Unlock()
	for _, id := range ids {
		// The bare id is a valid cookie for End (generation part ignored);
		// a session concurrently ended by its consumer is already gone.
		_ = e.End(id)
	}
	return ids
}

// specFilter returns the spec's filter, defaulting to match-all presence.
func specFilter(q query.Query) filterNode {
	if q.Filter == nil {
		return matchAll{}
	}
	return q.Filter
}

// filterNode is the evaluation interface shared by real filters and the
// match-all default.
type filterNode interface {
	Matches(*entry.Entry) bool
}

type matchAll struct{}

func (matchAll) Matches(*entry.Entry) bool { return true }

// stripAttrs widens the spec to all attributes for content computation; the
// requested attribute selection is applied when building update PDUs.
func stripAttrs(q query.Query) query.Query {
	out := q
	out.Attrs = nil
	return out
}
