package resync

import (
	"testing"
	"time"
)

// These tests pin the interaction between no-op-modify suppression and
// generation-cookie rollback: when a response is lost and the interval is
// re-derived from an older sync point, a modify-then-revert pair must
// still coalesce to nothing (suppressed), the cookie must advance in
// place, and a subsequent real change must surface as exactly one modify.
// The oracle (internal/oracle) hammers the same interaction randomly;
// these are the deterministic regressions.

func TestSuppressionSurvivesPollRollback(t *testing.T) {
	master := newMaster(t)
	a := addPerson(t, master, "a", "0401", "1")

	eng := NewEngine(master)
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	c1 := res.Cookie

	// A modify inside the content, whose poll response is lost in flight.
	mustModify(t, master, a, "dept", "9")
	if res, err = eng.Poll(c1); err != nil {
		t.Fatal(err)
	}
	if len(res.Updates) != 1 || res.Updates[0].Action != ActionModify {
		t.Fatalf("lost interval: got %v, want one modify", res.Updates)
	}

	// The change is reverted before the consumer re-polls its durable
	// cookie: the engine rolls back to c1's generation and must coalesce
	// the modify-revert pair to a suppressed, empty update set.
	mustModify(t, master, a, "dept", "1")
	before := eng.Counters().SuppressedModifies.Load()
	res, err = eng.Poll(c1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Updates) != 0 || res.FullReload {
		t.Fatalf("modify-then-revert across rollback: got %v (reload=%v), want empty", res.Updates, res.FullReload)
	}
	if got := eng.Counters().SuppressedModifies.Load(); got != before+1 {
		t.Errorf("SuppressedModifies = %d, want %d", got, before+1)
	}
	// Nothing to resend and no content movement: the cookie advances in
	// place rather than minting a new resumable point.
	if res.Cookie != c1 {
		t.Errorf("cookie advanced to %q on a suppressed empty poll, want %q", res.Cookie, c1)
	}

	// A real change afterwards must surface as exactly one modify.
	mustModify(t, master, a, "dept", "5")
	res, err = eng.Poll(res.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Updates) != 1 || res.Updates[0].Action != ActionModify {
		t.Fatalf("post-revert change: got %v, want one modify", res.Updates)
	}
	if got := res.Updates[0].Entry.First("dept"); got != "5" {
		t.Errorf("modify carries dept=%q, want 5", got)
	}
}

func TestSuppressionSurvivesPersistRollback(t *testing.T) {
	master := newMaster(t)
	a := addPerson(t, master, "a", "0401", "1")

	eng := NewEngine(master)
	res, err := eng.Begin(specSerial04)
	if err != nil {
		t.Fatal(err)
	}
	c1 := res.Cookie

	// A persist consumer receives two batches (modify, then revert) but
	// crashes without acknowledging either.
	sub, err := eng.Persist(c1)
	if err != nil {
		t.Fatal(err)
	}
	recv := func(what string) Batch {
		select {
		case b := <-sub.Updates:
			return b
		case <-time.After(5 * time.Second):
			t.Fatalf("no persist batch for %s", what)
			return Batch{}
		}
	}
	mustModify(t, master, a, "dept", "9")
	if b := recv("modify"); len(b.Updates) != 1 || b.Updates[0].Action != ActionModify {
		t.Fatalf("persist modify batch: got %v", b.Updates)
	}
	mustModify(t, master, a, "dept", "1")
	if b := recv("revert"); len(b.Updates) != 1 || b.Updates[0].Action != ActionModify {
		t.Fatalf("persist revert batch: got %v", b.Updates)
	}
	sub.Close()

	// The restarted consumer resumes from its durable cookie c1. Persist
	// mode never acknowledged, so the engine still has the point; the
	// whole modify-revert interval must coalesce to a suppressed no-op.
	before := eng.Counters().SuppressedModifies.Load()
	res, err = eng.Poll(c1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Updates) != 0 || res.FullReload {
		t.Fatalf("resume after unacked persist batches: got %v (reload=%v), want empty", res.Updates, res.FullReload)
	}
	if got := eng.Counters().SuppressedModifies.Load(); got != before+1 {
		t.Errorf("SuppressedModifies = %d, want %d", got, before+1)
	}

	// And the session remains live for real changes.
	mustModify(t, master, a, "dept", "7")
	res, err = eng.Poll(res.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Updates) != 1 || res.Updates[0].Action != ActionModify {
		t.Fatalf("post-resume change: got %v, want one modify", res.Updates)
	}
}
