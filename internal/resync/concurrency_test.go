package resync

import (
	"errors"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/query"
)

// TestConcurrentBeginPollEnd hammers one engine with concurrent session
// lifecycles while a writer mutates the store; run with -race. It verifies
// the registry/per-session locking protocol: no torn state, and a poll
// racing an End either completes or reports ErrNoSuchSession — never a
// successful poll of a deregistered session.
func TestConcurrentBeginPollEnd(t *testing.T) {
	master := newMaster(t)
	eng := NewEngine(master)
	spec := query.MustNew("o=xyz", query.ScopeSubtree, "(objectclass=person)")

	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		rng := rand.New(rand.NewSource(7))
		// Add/delete pairs keep the store bounded. Snapshot reads are
		// lock-free against writers now (copy-on-write shard states), so an
		// unbounded writer would no longer be throttled by reader locks and
		// would grow the store — and every Begin's O(n) content scan — for
		// the whole run. The store-level snapshot-immutability guarantees
		// this writer used to exercise are pinned directly by
		// dit.TestSnapshotImmutableUnderCommits; here the writer only has
		// to keep commits flowing under the session lifecycle churn.
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			slot := strconv.Itoa(i % 512)
			d := dn.MustParse("cn=w" + slot + ",c=us,o=xyz")
			e := entry.New(d)
			e.Put("objectclass", "person").Put("cn", "w"+slot).
				Put("sn", "w").Put("serialNumber", "04"+strconv.Itoa(i%100))
			if err := master.Add(e); err != nil {
				if !errors.Is(err, dit.ErrAlreadyExists) {
					t.Errorf("writer add: %v", err)
					return
				}
				_ = master.Delete(d)
				continue
			}
			if rng.Intn(2) == 0 {
				_ = master.Delete(d)
			}
		}
	}()

	const workers, rounds = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				res, err := eng.Begin(spec)
				if err != nil {
					t.Errorf("begin: %v", err)
					return
				}
				cookie := res.Cookie
				// Two goroutines poll the same session concurrently; the
				// session lock serializes them.
				var inner sync.WaitGroup
				for g := 0; g < 2; g++ {
					inner.Add(1)
					go func() {
						defer inner.Done()
						if _, err := eng.Poll(cookie); err != nil && !errors.Is(err, ErrNoSuchSession) {
							t.Errorf("poll: %v", err)
						}
					}()
				}
				// End races the polls above.
				if err := eng.End(cookie); err != nil && !errors.Is(err, ErrNoSuchSession) {
					t.Errorf("end: %v", err)
				}
				inner.Wait()
				// After End returned, the cookie must be dead.
				if _, err := eng.Poll(cookie); !errors.Is(err, ErrNoSuchSession) {
					t.Errorf("poll after end: err=%v, want ErrNoSuchSession", err)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	writers.Wait()

	if n := eng.Sessions(); n != 0 {
		t.Errorf("sessions left registered = %d, want 0", n)
	}
	snap := eng.Counters().Snapshot()
	if snap.Begins != workers*rounds || snap.Ends != workers*rounds {
		t.Errorf("counters begins=%d ends=%d, want %d each", snap.Begins, snap.Ends, workers*rounds)
	}
}

// TestSlowSessionDoesNotBlockOthers pins one session mid-synchronization
// (holding its per-session lock, as a slow trimmed-journal full reload
// would) and verifies another session's poll still completes, while the
// pinned session's own poll waits for the lock. Under the old engine-global
// mutex the second poll deadlocked behind the first.
func TestSlowSessionDoesNotBlockOthers(t *testing.T) {
	master, err := dit.NewStore([]string{"o=xyz"}, dit.WithJournalLimit(4))
	if err != nil {
		t.Fatal(err)
	}
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	if err := master.Add(org); err != nil {
		t.Fatal(err)
	}
	us := entry.New(dn.MustParse("c=us,o=xyz"))
	us.Put("objectclass", "country").Put("c", "us")
	if err := master.Add(us); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(master)
	spec := query.MustNew("o=xyz", query.ScopeSubtree, "(objectclass=person)")

	resA, err := eng.Begin(spec)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := eng.Begin(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Overflow the 4-change journal so session A needs a full reload.
	cookieB := resB.Cookie
	for i := 0; i < 8; i++ {
		addPerson(t, master, "p"+strconv.Itoa(i), "040"+strconv.Itoa(i), "1")
		// Keep B current so only A falls behind the trimmed history.
		if i == 3 {
			resB, err := eng.Poll(cookieB)
			if err != nil {
				t.Fatal(err)
			}
			cookieB = resB.Cookie
		}
	}
	resB2, err := eng.Poll(cookieB)
	if err != nil {
		t.Fatal(err)
	}
	cookieB = resB2.Cookie

	sessA, err := eng.lookup(resA.Cookie)
	if err != nil {
		t.Fatal(err)
	}
	sessA.mu.Lock() // simulate A stuck mid-full-reload

	// A's own poll must block on the session lock...
	aDone := make(chan *PollResult, 1)
	go func() {
		res, err := eng.Poll(resA.Cookie)
		if err != nil {
			t.Errorf("poll A: %v", err)
		}
		aDone <- res
	}()
	select {
	case <-aDone:
		t.Fatal("poll of locked session returned while lock held")
	case <-time.After(50 * time.Millisecond):
	}

	// ...while B's poll proceeds unimpeded.
	bDone := make(chan struct{})
	go func() {
		defer close(bDone)
		if _, err := eng.Poll(cookieB); err != nil {
			t.Errorf("poll B: %v", err)
		}
	}()
	select {
	case <-bDone:
	case <-time.After(2 * time.Second):
		t.Fatal("session B's poll blocked behind session A")
	}

	sessA.mu.Unlock()
	select {
	case res := <-aDone:
		if res != nil && !res.FullReload {
			t.Error("session A expected a full reload after journal trim")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("session A's poll never completed")
	}

	snap := eng.Counters().Snapshot()
	if snap.FullReloads < 1 {
		t.Errorf("FullReloads = %d, want >= 1", snap.FullReloads)
	}
	if master.JournalTrimmed() == 0 {
		t.Error("store reported no trimmed journal records")
	}
}

// TestConcurrentGroupJoinLeaveDemotion hammers the content-group fan-out
// layer under -race: workers churn Begin/Persist/Poll/End across several
// specs (so groups form and tear down repeatedly) while a writer drives
// update cycles, and deliberately slow subscribers force the coalesce →
// demote slow-consumer path. The invariants: no data race, every torn-down
// stream's channel closes, and the registries drain to empty.
func TestConcurrentGroupJoinLeaveDemotion(t *testing.T) {
	master := newMaster(t)
	// Tiny queue, hair-trigger demotion: two consecutive full-queue cycles
	// close the stream.
	eng := NewEngine(master, WithSlowConsumerPolicy(1, 2))
	specs := []query.Query{
		query.MustNew("o=xyz", query.ScopeSubtree, "(objectclass=person)"),
		query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)"),
		query.MustNew("o=xyz", query.ScopeSubtree, "(&(objectclass=person)(serialnumber=04*))", "cn"),
	}

	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		rng := rand.New(rand.NewSource(11))
		// Churn within a rotating window so the store stays bounded: with
		// lock-free snapshot reads the writer is never throttled by the
		// readers, and an unbounded add stream would grow every content
		// scan and classification interval for the whole run.
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			slot := strconv.Itoa(i % 256)
			d := dn.MustParse("cn=g" + slot + ",c=us,o=xyz")
			e := entry.New(d)
			e.Put("objectclass", "person").Put("cn", "g"+slot).
				Put("sn", "g").Put("serialNumber", "04"+strconv.Itoa(i%100))
			if err := master.Add(e); err != nil {
				if !errors.Is(err, dit.ErrAlreadyExists) {
					t.Errorf("writer add: %v", err)
					return
				}
				_ = master.Delete(d)
				continue
			}
			if rng.Intn(3) == 0 {
				_ = master.Delete(d)
			}
		}
	}()

	const workers, rounds = 6, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < rounds; i++ {
				spec := specs[rng.Intn(len(specs))]
				res, err := eng.Begin(spec)
				if err != nil {
					t.Errorf("begin: %v", err)
					return
				}
				cookie := res.Cookie
				switch rng.Intn(3) {
				case 0:
					// Healthy persist consumer: drain a few batches, close.
					sub, err := eng.Persist(cookie)
					if err != nil {
						t.Errorf("persist: %v", err)
						return
					}
					timeout := time.After(20 * time.Millisecond)
				drain:
					for {
						select {
						case b, ok := <-sub.Updates:
							if !ok {
								break drain
							}
							cookie = b.Cookie
						case <-timeout:
							break drain
						}
					}
					sub.Close()
				case 1:
					// Slow consumer: subscribe, then drain with exponentially
					// growing gaps. Demotion fires only when the 1-deep queue
					// stays full across consecutive update cycles, i.e. when
					// the consumer's drain gap exceeds a few cycle periods —
					// a fixed gap would bake in an assumption about how fast
					// the contended broadcaster cycles, so the gap doubles
					// until it is slower than any plausible cycle rate and
					// the engine must demote the stream by closing the
					// channel.
					sub, err := eng.Persist(cookie)
					if err != nil {
						t.Errorf("persist: %v", err)
						return
					}
					deadline := time.Now().Add(15 * time.Second)
					gap := 2 * time.Millisecond
					closed := false
					for !closed {
						if time.Now().After(deadline) {
							t.Error("slow subscriber never demoted")
							break
						}
						time.Sleep(gap)
						if gap < time.Second {
							gap *= 2
						}
						select {
						case _, ok := <-sub.Updates:
							closed = !ok
						default:
						}
					}
					sub.Close()
				default:
					// Plain poller.
					if res, err := eng.Poll(cookie); err == nil {
						cookie = res.Cookie
					} else if !errors.Is(err, ErrNoSuchSession) {
						t.Errorf("poll: %v", err)
					}
				}
				if err := eng.End(cookie); err != nil && !errors.Is(err, ErrNoSuchSession) {
					t.Errorf("end: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	writers.Wait()

	if n := eng.Sessions(); n != 0 {
		t.Errorf("sessions left registered = %d, want 0", n)
	}
	if n := eng.Groups(); n != 0 {
		t.Errorf("groups left registered = %d, want 0", n)
	}
	snap := eng.Counters().Snapshot()
	if snap.GroupJoins != workers*rounds || snap.GroupLeaves != workers*rounds {
		t.Errorf("group joins=%d leaves=%d, want %d each",
			snap.GroupJoins, snap.GroupLeaves, workers*rounds)
	}
	if snap.SlowDemotions == 0 {
		t.Error("no slow-consumer demotions recorded")
	}
	if snap.CoalescedCycles < snap.SlowDemotions {
		t.Errorf("coalesced=%d < demotions=%d: demotion without prior coalescing",
			snap.CoalescedCycles, snap.SlowDemotions)
	}
}
