package resync

import (
	"sort"
	"sync"
	"sync/atomic"

	"filterdir/internal/containment"
	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/query"
)

// Content-group fan-out (DESIGN.md §10). Sessions whose (base, scope,
// filter) triples are equal — or provably equivalent via the containment
// checker — share a content group. A session's content map is a pure
// function of (spec, CSN), so every member standing at the same sync CSN
// classifies the same change interval to the same result; the group caches
// that classification and each member applies it as a cheap content-map
// delta replay, keeping its own generation cookies and undo history intact.
// Attribute selection stays per-session: members are sub-grouped into
// views (one per distinct attrs list) and the selected update batch is
// built once per view.

// contentKey canonicalizes the part of a spec that determines content
// membership — attrs are a per-session presentation concern.
func contentKey(q query.Query) string {
	n := stripAttrs(q).Normalize()
	return n.Base.Norm() + "\x00" + n.Scope.String() + "\x00" + n.FilterString()
}

// regionKey canonicalizes a spec's base/scope region. Two specs can only be
// content-equivalent if their regions contain each other, and mutual
// ScopeContains holds exactly for an identical normalized (base, scope) —
// so the equivalence probe in joinGroup need only consider groups sharing
// this key, instead of running the containment checker against every group.
func regionKey(q query.Query) string {
	return q.Base.Norm() + "\x00" + q.Scope.String()
}

// viewKey canonicalizes an attribute selection within a group.
func viewKey(attrs []string) string {
	if len(attrs) == 0 {
		return "*"
	}
	sorted := make([]string, len(attrs))
	copy(sorted, attrs)
	sort.Strings(sorted)
	key := ""
	for i, a := range sorted {
		if i > 0 {
			key += ","
		}
		key += a
	}
	return key
}

// equivalentSpecs reports whether two specs denote the same content: their
// base/scope regions contain each other and their filters contain each
// other (both decided by the paper's containment machinery).
func (e *Engine) equivalentSpecs(a, b query.Query) bool {
	return containment.ScopeContains(a, b) && containment.ScopeContains(b, a) &&
		e.checker.FilterContains(a.Filter, b.Filter) &&
		e.checker.FilterContains(b.Filter, a.Filter)
}

// rawUpdate is one classified net change before attribute selection: add
// and modify carry the full-attribute final entry (plus, for modify, the
// start-of-interval snapshot that the per-view suppression check needs);
// delete carries only the DN the replica holds.
type rawUpdate struct {
	action Action
	dn     dn.DN
	ent    *entry.Entry
	prior  *entry.Entry
}

// contentOp is one content-map transition of the interval; replaying the
// list through setContent/delContent yields the member's undo record.
type contentOp struct {
	norm    string
	dn      dn.DN
	present bool
}

// viewBatch is the update set of one interval as seen through one
// attribute selection, plus its shared wire-encoding memo.
type viewBatch struct {
	updates    []Update
	suppressed int64
	enc        *SharedEnc
}

// sharedInterval is one classified change interval (fromCSN → toCSN),
// computed once per group and consumed by every member that crosses it.
type sharedInterval struct {
	from, to dit.CSN
	raws     []rawUpdate
	delta    []contentOp

	mu    sync.Mutex
	views map[string]*viewBatch
}

// view returns the interval's update batch under one attribute selection,
// building (and memoizing) it on first use.
func (si *sharedInterval) view(key string, attrs []string) *viewBatch {
	si.mu.Lock()
	defer si.mu.Unlock()
	if vb, ok := si.views[key]; ok {
		return vb
	}
	vb := &viewBatch{enc: &SharedEnc{}}
	for _, r := range si.raws {
		switch r.action {
		case ActionAdd:
			sel := r.ent.Select(attrs)
			vb.updates = append(vb.updates, Update{Action: ActionAdd, DN: sel.DN(), Entry: sel})
		case ActionDelete:
			vb.updates = append(vb.updates, Update{Action: ActionDelete, DN: r.dn})
		case ActionModify:
			sel := r.ent.Select(attrs)
			// Minimal update set (equation 3): an entry whose selected view
			// is net-unchanged over the interval — modify-then-revert, or
			// modifies confined to unselected attributes — produces no PDU.
			if r.prior != nil {
				pv := r.prior.Select(attrs)
				if pv.Equal(sel) && pv.DN().SameSpelling(sel.DN()) {
					vb.suppressed++
					continue
				}
			}
			vb.updates = append(vb.updates, Update{Action: ActionModify, DN: sel.DN(), Entry: sel})
		}
	}
	si.views[key] = vb
	return vb
}

// maxSharedIntervals bounds the per-group interval cache. Members of one
// group poll at similar cadence, so they cross the same few intervals; a
// straggler beyond the window just classifies its own (larger) interval.
const maxSharedIntervals = 8

// group is one shared-content fan-out unit.
type group struct {
	e      *Engine
	key    string      // content key of the founding member
	region string      // base/scope region key, for the engine's region index
	spec   query.Query // founding spec, attrs stripped

	// cycleMu is held by the broadcaster for the span of one update cycle;
	// Subscription.Close takes it (empty) so that after Close returns the
	// broadcaster is provably not mid-sync on the closed stream's session.
	cycleMu sync.Mutex

	// served counts update PDUs classified for this group's members — a
	// live demand signal the tier control plane reads through GroupLoads.
	served atomic.Uint64

	mu        sync.Mutex
	members   int
	aliasKeys []string // every content key resolved to this group
	intervals []*sharedInterval

	// Persist broadcaster state: one goroutine per group pushes update
	// batches to all subscribers; it runs only while subscribers exist.
	subs  map[*Subscription]*subscriber
	wake  chan struct{}
	bstop chan struct{}
	bdone chan struct{}
}

// subscriber is one persist-mode member stream with its bounded queue.
type subscriber struct {
	sub    *Subscription
	sess   *session
	ch     chan Batch
	missed int // consecutive cycles skipped because ch was full
}

func newGroup(e *Engine, key string, spec query.Query) *group {
	return &group{
		e:    e,
		key:  key,
		spec: spec,
		subs: make(map[*Subscription]*subscriber),
		wake: make(chan struct{}, 1),
	}
}

// joinGroup finds or creates the content group for spec and adds a member.
// Returns nil when grouping is disabled.
func (e *Engine) joinGroup(spec query.Query) *group {
	if !e.grouping {
		return nil
	}
	key := contentKey(spec)
	rkey := regionKey(spec)
	e.groupMu.Lock()
	g := e.aliases[key]
	equiv := false
	if g == nil {
		// No identical group: probe same-region groups for provable filter
		// equivalence, so e.g. (&(a=1)(b=2)) joins (&(b=2)(a=1)). The
		// region index keeps this proportional to groups over the same
		// base/scope rather than all groups, since the containment checks
		// run under groupMu on every first-of-its-key Begin.
		for _, cand := range e.regions[rkey] {
			if e.equivalentSpecs(spec, cand.spec) {
				g = cand
				equiv = true
				break
			}
		}
		if g != nil {
			e.aliases[key] = g
			g.aliasKeys = append(g.aliasKeys, key)
		}
	}
	if g == nil {
		g = newGroup(e, key, stripAttrs(spec))
		g.aliasKeys = []string{key}
		g.region = rkey
		e.groups[key] = g
		e.aliases[key] = g
		e.regions[rkey] = append(e.regions[rkey], g)
	}
	g.mu.Lock()
	g.members++
	g.mu.Unlock()
	e.groupMu.Unlock()
	e.stats.GroupJoins.Add(1)
	if equiv {
		e.stats.GroupEquivJoins.Add(1)
	}
	return g
}

// leaveGroup removes a member; the last member out frees the group's
// cached state and stops its broadcaster.
func (e *Engine) leaveGroup(g *group) {
	if g == nil {
		return
	}
	e.groupMu.Lock()
	g.mu.Lock()
	g.members--
	last := g.members == 0
	if last {
		for _, k := range g.aliasKeys {
			delete(e.aliases, k)
		}
		delete(e.groups, g.key)
		peers := e.regions[g.region]
		for i, cand := range peers {
			if cand == g {
				peers[i] = peers[len(peers)-1]
				peers = peers[:len(peers)-1]
				break
			}
		}
		if len(peers) == 0 {
			delete(e.regions, g.region)
		} else {
			e.regions[g.region] = peers
		}
		g.intervals = nil
		g.stopLocked()
	}
	g.mu.Unlock()
	e.groupMu.Unlock()
	e.stats.GroupLeaves.Add(1)
}

// Groups reports the number of live content groups — an operator gauge and
// a test probe for last-member teardown.
func (e *Engine) Groups() int {
	e.groupMu.Lock()
	defer e.groupMu.Unlock()
	return len(e.groups)
}

// GroupLoad is one content group's live demand snapshot: its founding spec
// (attrs stripped), current membership, and cumulative update PDUs
// classified for it. The tier control plane folds these into its benefit
// accounting — a group that keeps serving updates to members is demand the
// covering stored filter should be credited for.
type GroupLoad struct {
	Spec    query.Query
	Members int
	Updates uint64
}

// GroupLoads snapshots every live content group's demand counters.
func (e *Engine) GroupLoads() []GroupLoad {
	e.groupMu.Lock()
	defer e.groupMu.Unlock()
	out := make([]GroupLoad, 0, len(e.groups))
	for _, g := range e.groups {
		g.mu.Lock()
		members := g.members
		g.mu.Unlock()
		out = append(out, GroupLoad{Spec: g.spec, Members: members, Updates: g.served.Load()})
	}
	return out
}

// lookupInterval returns the cached classification for [from, to], if any.
func (g *group) lookupInterval(from, to dit.CSN) *sharedInterval {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, si := range g.intervals {
		if si.from == from && si.to == to {
			return si
		}
	}
	return nil
}

// storeInterval caches a classification, keeping the first result when two
// members raced on the same interval.
func (g *group) storeInterval(si *sharedInterval) *sharedInterval {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, have := range g.intervals {
		if have.from == si.from && have.to == si.to {
			return have
		}
	}
	g.intervals = append(g.intervals, si)
	if len(g.intervals) > maxSharedIntervals {
		g.intervals = g.intervals[1:]
	}
	return si
}

// classifyFor produces one session's update batch and undo record for a
// change interval: the raw classification is computed once per group (or
// inline for ungrouped engines), the session's content map replays the
// interval's delta, and the attribute-selected batch comes from the
// per-view overlay. The caller holds sess.mu.
func (e *Engine) classifyFor(sess *session, changes []dit.Change) ([]Update, []undoOp, *SharedEnc) {
	if len(changes) == 0 {
		return nil, nil, nil
	}
	g := sess.group
	if g == nil {
		si := computeInterval(sess.spec, sess.content, changes)
		undo := applyInterval(sess, si)
		vb := si.view(sess.viewKey, sess.spec.Attrs)
		if vb.suppressed > 0 {
			e.stats.SuppressedModifies.Add(vb.suppressed)
		}
		return vb.updates, undo, nil
	}
	from, to := sess.csn, changes[len(changes)-1].CSN
	si := g.lookupInterval(from, to)
	if si == nil {
		si = computeInterval(g.spec, sess.content, changes)
		si.from, si.to = from, to
		si = g.storeInterval(si)
		e.stats.SharedClassifyMisses.Add(1)
	} else {
		e.stats.SharedClassifyHits.Add(1)
	}
	undo := applyInterval(sess, si)
	vb := si.view(sess.viewKey, sess.spec.Attrs)
	if vb.suppressed > 0 {
		e.stats.SuppressedModifies.Add(vb.suppressed)
	}
	g.served.Add(uint64(len(vb.updates)))
	return vb.updates, undo, vb.enc
}

// applyInterval replays the interval's content-map transitions through the
// session, producing the undo record for its new sync point.
func applyInterval(sess *session, si *sharedInterval) []undoOp {
	var undo []undoOp
	for _, op := range si.delta {
		if op.present {
			sess.setContent(op.norm, op.dn, &undo)
		} else {
			sess.delContent(op.norm, &undo)
		}
	}
	return undo
}

// computeInterval replays journal changes against the start-of-interval
// content, classifying every touched DN to its net E01/E10/E11 action.
// content is read, never written: the per-session delta replay owns
// content-map mutation. The result is valid for every session of the spec
// standing at the interval's starting CSN — a session's content is a pure
// function of (spec, CSN).
func computeInterval(spec query.Query, content map[string]dn.DN, changes []dit.Change) *sharedInterval {
	// initial[norm] records whether the DN was in content at the start of
	// the interval; firstBefore holds the entry snapshot at that point, the
	// reference for net-change detection; finalEnt tracks the final entry
	// snapshot per DN.
	initial := make(map[string]bool)
	firstBefore := make(map[string]*entry.Entry)
	finalEnt := make(map[string]*entry.Entry)
	finalIn := make(map[string]bool)
	finalDN := make(map[string]dn.DN)
	changed := make(map[string]bool)

	note := func(d dn.DN, before bool, prior *entry.Entry) {
		norm := d.Norm()
		if _, seen := initial[norm]; !seen {
			initial[norm] = before
			firstBefore[norm] = prior
		}
		changed[norm] = true
		finalDN[norm] = d
	}
	inContent := func(ent *entry.Entry) bool {
		return ent != nil && spec.InScope(ent.DN()) && specFilter(spec).Matches(ent)
	}

	for _, c := range changes {
		switch c.Type {
		case dit.ChangeAdd, dit.ChangeModify:
			norm := c.DN.Norm()
			_, wasIn := content[norm]
			note(c.DN, wasIn, c.Before)
			finalIn[norm] = inContent(c.After)
			finalEnt[norm] = c.After
		case dit.ChangeDelete:
			norm := c.DN.Norm()
			_, wasIn := content[norm]
			note(c.DN, wasIn, c.Before)
			finalIn[norm] = false
			finalEnt[norm] = nil
		case dit.ChangeModifyDN:
			oldNorm := c.DN.Norm()
			_, wasIn := content[oldNorm]
			note(c.DN, wasIn, c.Before)
			finalIn[oldNorm] = false
			finalEnt[oldNorm] = nil
			newNorm := c.NewDN.Norm()
			_, newWasIn := content[newNorm]
			note(c.NewDN, newWasIn, nil)
			finalIn[newNorm] = inContent(c.After)
			finalEnt[newNorm] = c.After
		}
	}

	si := &sharedInterval{views: make(map[string]*viewBatch)}
	norms := make([]string, 0, len(changed))
	for norm := range changed {
		norms = append(norms, norm)
	}
	sort.Strings(norms)
	for _, norm := range norms {
		was, is := initial[norm], finalIn[norm]
		switch {
		case !was && is:
			ent := finalEnt[norm]
			si.raws = append(si.raws, rawUpdate{action: ActionAdd, ent: ent})
			si.delta = append(si.delta, contentOp{norm: norm, dn: ent.DN(), present: true})
		case was && !is:
			d := finalDN[norm]
			if held, ok := content[norm]; ok {
				d = held
			}
			si.raws = append(si.raws, rawUpdate{action: ActionDelete, dn: d})
			si.delta = append(si.delta, contentOp{norm: norm})
		case was && is:
			ent := finalEnt[norm]
			si.raws = append(si.raws, rawUpdate{action: ActionModify, ent: ent, prior: firstBefore[norm]})
			si.delta = append(si.delta, contentOp{norm: norm, dn: ent.DN(), present: true})
		}
	}
	return si
}

// attach adds a persist subscriber to the group, starting the broadcaster
// if it is not running, and kicks a cycle so a stream resumed behind the
// head receives its due batch promptly.
func (g *group) attach(sess *session) *Subscription {
	ch := make(chan Batch, g.e.persistQueueCap)
	sub := &Subscription{Updates: ch}
	st := &subscriber{sub: sub, sess: sess, ch: ch}
	sub.detach = func() {
		g.remove(sub)
		// Barrier: wait out any in-flight update cycle so the session is
		// quiescent once Close returns (matching the old per-stream
		// goroutine join).
		g.cycleMu.Lock()
		//lint:ignore SA2001 empty critical section is the barrier
		g.cycleMu.Unlock()
	}
	g.mu.Lock()
	g.subs[sub] = st
	if g.bstop == nil {
		// Join the previous broadcaster (if a stop is still in flight)
		// before starting its replacement, so one group never runs two
		// broadcasters — syncOne's non-blocking queue send relies on being
		// the only sender observing free space.
		join := g.bdone
		stop := make(chan struct{})
		done := make(chan struct{})
		g.bstop, g.bdone = stop, done
		g.mu.Unlock()
		if join != nil {
			<-join
		}
		go g.broadcast(stop, done)
	} else {
		g.mu.Unlock()
	}
	g.kick()
	return sub
}

// remove detaches a subscriber and closes its channel; the last subscriber
// out stops the broadcaster.
func (g *group) remove(sub *Subscription) {
	g.mu.Lock()
	g.removeLocked(sub)
	g.mu.Unlock()
}

func (g *group) removeLocked(sub *Subscription) {
	st, ok := g.subs[sub]
	if !ok {
		return
	}
	delete(g.subs, sub)
	close(st.ch)
	if len(g.subs) == 0 {
		g.stopLocked()
	}
}

// stopLocked stops the broadcaster (if running) and closes any remaining
// subscriber channels; the caller holds g.mu. bdone is deliberately kept:
// the stopping broadcaster closes it on exit, and the next attach waits on
// it before starting a replacement (single-broadcaster invariant).
func (g *group) stopLocked() {
	for sub, st := range g.subs {
		delete(g.subs, sub)
		close(st.ch)
	}
	if g.bstop != nil {
		close(g.bstop)
		g.bstop = nil
	}
}

// kick nudges the broadcaster outside the store's change signal, e.g. for
// a freshly attached subscriber.
func (g *group) kick() {
	select {
	case g.wake <- struct{}{}:
	default:
	}
}

// broadcast is the group's persist fan-out loop: on every store commit (or
// kick) it runs one update cycle over all subscribers. The change signal is
// armed before the cycle so commits landing mid-cycle are not missed.
func (g *group) broadcast(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		sig := g.e.store.ChangeSignal()
		g.cycle()
		select {
		case <-sig:
		case <-g.wake:
		case <-stop:
			return
		}
	}
}

// cycle synchronizes every subscriber once. The shared-interval cache
// makes this one real classification plus a map-delta replay per member.
func (g *group) cycle() {
	g.cycleMu.Lock()
	defer g.cycleMu.Unlock()
	g.mu.Lock()
	subs := make([]*subscriber, 0, len(g.subs))
	for _, st := range g.subs {
		subs = append(subs, st)
	}
	g.mu.Unlock()
	for _, st := range subs {
		g.syncOne(st)
	}
}

// syncOne advances one subscriber by one poll and queues the batch.
//
// Slow-consumer policy: a subscriber whose queue is full is skipped — its
// session stays at its old sync point, so the next successful cycle emits
// one net batch covering the whole backlog (coalescing, not buffering).
// After demoteAfter consecutive skips the stream is closed and the
// consumer falls back to poll mode (the wire maps this to a clean stream
// end; the session itself stays resumable by cookie).
func (g *group) syncOne(st *subscriber) {
	e := g.e
	g.mu.Lock()
	if _, live := g.subs[st.sub]; !live {
		g.mu.Unlock()
		return
	}
	if len(st.ch) == cap(st.ch) {
		st.missed++
		e.stats.CoalescedCycles.Add(1)
		if st.missed >= e.demoteAfter {
			e.stats.SlowDemotions.Add(1)
			g.removeLocked(st.sub)
		}
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()

	st.sess.mu.Lock()
	if st.sess.ended {
		st.sess.mu.Unlock()
		g.remove(st.sub)
		return
	}
	res, err := e.poll(st.sess)
	st.sess.mu.Unlock()
	if err != nil || res.FullReload {
		// A push stream cannot convey a reload; end it — the consumer's
		// fallback poll re-delivers the content.
		g.remove(st.sub)
		return
	}
	st.missed = 0
	if len(res.Updates) == 0 {
		return
	}
	batch := Batch{Updates: res.Updates, Cookie: res.Cookie, CSN: res.CSN, Enc: res.Enc}
	g.mu.Lock()
	if _, live := g.subs[st.sub]; live {
		// Space was observed above and this goroutine is the only sender,
		// so the send cannot block.
		select {
		case st.ch <- batch:
		default:
		}
	}
	g.mu.Unlock()
}
