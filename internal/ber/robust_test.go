package ber

import (
	"math/rand"
	"testing"
)

// TestReaderNeverPanics decodes random byte soup; every outcome must be a
// clean error or a structurally valid element, never a panic or an
// out-of-bounds slice.
func TestReaderNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 50000; i++ {
		n := r.Intn(32)
		b := make([]byte, n)
		r.Read(b)
		rd := NewReader(b)
		for !rd.Empty() {
			h, content, err := rd.Read()
			if err != nil {
				break
			}
			if h.Length != len(content) {
				t.Fatalf("header length %d != content %d for % x", h.Length, len(content), b)
			}
		}
	}
}

// TestParseIntNeverPanics checks integer decoding over random content.
func TestParseIntNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 10000; i++ {
		n := r.Intn(12)
		b := make([]byte, n)
		r.Read(b)
		_, _ = ParseInt(b)
	}
}

// TestMutatedMessages flips bytes in valid encodings; the decoder must
// reject or re-decode cleanly, never panic.
func TestMutatedMessages(t *testing.T) {
	var valid []byte
	valid = AppendInt(valid, ClassUniversal, TagInteger, 123456)
	valid = AppendString(valid, ClassUniversal, TagOctetString, "hello world")
	inner := append([]byte(nil), valid...)
	valid = AppendSequence(nil, inner)

	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		mut := append([]byte(nil), valid...)
		flips := 1 + r.Intn(3)
		for j := 0; j < flips; j++ {
			mut[r.Intn(len(mut))] ^= byte(1 << r.Intn(8))
		}
		rd := NewReader(mut)
		for !rd.Empty() {
			if _, _, err := rd.Read(); err != nil {
				break
			}
		}
	}
}
