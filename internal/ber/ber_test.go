package ber

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestIntRoundTrip(t *testing.T) {
	values := []int64{0, 1, -1, 127, 128, -128, -129, 255, 256, 1 << 20, -(1 << 20), 1<<40 + 3, -(1 << 40)}
	for _, v := range values {
		enc := AppendInt(nil, ClassUniversal, TagInteger, v)
		r := NewReader(enc)
		got, err := r.ReadInt()
		if err != nil {
			t.Errorf("ReadInt(%d): %v", v, err)
			continue
		}
		if got != v {
			t.Errorf("int round trip: got %d, want %d", got, v)
		}
		if !r.Empty() {
			t.Errorf("leftover bytes after %d", v)
		}
	}
}

func TestQuickIntRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		enc := AppendInt(nil, ClassUniversal, TagInteger, v)
		got, err := NewReader(enc).ReadInt()
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	values := []string{"", "a", "hello world", strings.Repeat("x", 127),
		strings.Repeat("y", 128), strings.Repeat("z", 70000), "\x00\xff binary"}
	for _, v := range values {
		enc := AppendString(nil, ClassUniversal, TagOctetString, v)
		got, err := NewReader(enc).ReadString()
		if err != nil {
			t.Errorf("ReadString(len %d): %v", len(v), err)
			continue
		}
		if got != v {
			t.Errorf("string round trip failed for len %d", len(v))
		}
	}
}

func TestBoolRoundTrip(t *testing.T) {
	for _, v := range []bool{true, false} {
		enc := AppendBool(nil, v)
		got, err := NewReader(enc).ReadBool()
		if err != nil || got != v {
			t.Errorf("bool round trip: got %v, %v", got, err)
		}
	}
}

func TestEnumRoundTrip(t *testing.T) {
	enc := AppendEnum(nil, 42)
	got, err := NewReader(enc).ReadEnum()
	if err != nil || got != 42 {
		t.Errorf("enum round trip: %d, %v", got, err)
	}
}

func TestNestedSequence(t *testing.T) {
	var inner []byte
	inner = AppendInt(inner, ClassUniversal, TagInteger, 7)
	inner = AppendString(inner, ClassUniversal, TagOctetString, "abc")
	enc := AppendSequence(nil, inner)
	seq, err := NewReader(enc).ReadSequence()
	if err != nil {
		t.Fatal(err)
	}
	n, err := seq.ReadInt()
	if err != nil || n != 7 {
		t.Fatalf("int in seq: %d, %v", n, err)
	}
	s, err := seq.ReadString()
	if err != nil || s != "abc" {
		t.Fatalf("string in seq: %q, %v", s, err)
	}
	if !seq.Empty() {
		t.Error("sequence not fully consumed")
	}
}

func TestContextTags(t *testing.T) {
	enc := AppendString(nil, ClassContext, 3, "value")
	h, content, err := NewReader(enc).Read()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Is(ClassContext, 3) || string(content) != "value" {
		t.Errorf("context tag: %+v %q", h, content)
	}
}

func TestApplicationConstructed(t *testing.T) {
	inner := AppendInt(nil, ClassUniversal, TagInteger, 3)
	enc := AppendTLV(nil, ClassApplication, true, 4, inner)
	h, content, err := NewReader(enc).Read()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Is(ClassApplication, 4) || !h.Constructed {
		t.Errorf("application header: %+v", h)
	}
	n, err := NewReader(content).ReadInt()
	if err != nil || n != 3 {
		t.Errorf("nested int: %d, %v", n, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		{},                 // empty
		{0x02},             // no length
		{0x02, 0x05, 0x01}, // truncated content
		{0x02, 0x85},       // length-of-length too big
		{0x02, 0x81},       // missing long length byte
		{0x1f, 0x01, 0x00}, // high tag number
		{0x02, 0x82, 0xff}, // truncated long length
	}
	for _, c := range cases {
		if _, _, err := NewReader(c).Read(); err == nil {
			t.Errorf("Read(% x) succeeded, want error", c)
		}
	}
	// Wrong tag.
	enc := AppendBool(nil, true)
	if _, err := NewReader(enc).ReadInt(); !errors.Is(err, ErrBadTag) {
		t.Errorf("ReadInt on boolean: %v", err)
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	enc := AppendInt(nil, ClassUniversal, TagInteger, 5)
	r := NewReader(enc)
	h, err := r.Peek()
	if err != nil || !h.Is(ClassUniversal, TagInteger) {
		t.Fatalf("Peek: %+v, %v", h, err)
	}
	n, err := r.ReadInt()
	if err != nil || n != 5 {
		t.Errorf("Read after Peek: %d, %v", n, err)
	}
}

func TestLongLengths(t *testing.T) {
	for _, n := range []int{127, 128, 255, 256, 65535, 65536, 1 << 20} {
		payload := bytes.Repeat([]byte{0xab}, n)
		enc := AppendTLV(nil, ClassUniversal, false, TagOctetString, payload)
		h, content, err := NewReader(enc).Read()
		if err != nil {
			t.Fatalf("len %d: %v", n, err)
		}
		if h.Length != n || !bytes.Equal(content, payload) {
			t.Errorf("len %d round trip failed", n)
		}
	}
}

func TestMultipleElements(t *testing.T) {
	var enc []byte
	enc = AppendInt(enc, ClassUniversal, TagInteger, 1)
	enc = AppendString(enc, ClassUniversal, TagOctetString, "two")
	enc = AppendBool(enc, true)
	r := NewReader(enc)
	if v, _ := r.ReadInt(); v != 1 {
		t.Error("first element")
	}
	if s, _ := r.ReadString(); s != "two" {
		t.Error("second element")
	}
	if b, _ := r.ReadBool(); !b {
		t.Error("third element")
	}
	if !r.Empty() {
		t.Error("reader not empty")
	}
}
