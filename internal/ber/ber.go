// Package ber implements the subset of ASN.1 Basic Encoding Rules that the
// LDAP message layer requires: definite-length TLV encoding of booleans,
// integers, enumerateds, octet strings, sequences and sets, with universal,
// application and context-specific tag classes (tag numbers below 31).
package ber

import (
	"errors"
	"fmt"
)

// Class is the BER tag class.
type Class byte

// Tag classes.
const (
	ClassUniversal   Class = 0x00
	ClassApplication Class = 0x40
	ClassContext     Class = 0x80
)

// Universal tag numbers used by LDAP.
const (
	TagBoolean     = 0x01
	TagInteger     = 0x02
	TagOctetString = 0x04
	TagEnumerated  = 0x0a
	TagSequence    = 0x10
	TagSet         = 0x11
)

// Errors reported by the decoder.
var (
	ErrTruncated = errors.New("ber: truncated element")
	ErrBadLength = errors.New("ber: bad length")
	ErrBadTag    = errors.New("ber: unexpected tag")
)

// Header describes one decoded TLV header.
type Header struct {
	Class       Class
	Constructed bool
	Tag         int
	// Length is the content length in bytes.
	Length int
}

// Is reports whether the header matches the class/tag pair.
func (h Header) Is(class Class, tag int) bool {
	return h.Class == class && h.Tag == tag
}

// appendHeader writes identifier and length octets.
func appendHeader(dst []byte, class Class, constructed bool, tag, length int) []byte {
	id := byte(class)
	if constructed {
		id |= 0x20
	}
	id |= byte(tag & 0x1f)
	dst = append(dst, id)
	switch {
	case length < 0x80:
		dst = append(dst, byte(length))
	case length <= 0xff:
		dst = append(dst, 0x81, byte(length))
	case length <= 0xffff:
		dst = append(dst, 0x82, byte(length>>8), byte(length))
	case length <= 0xffffff:
		dst = append(dst, 0x83, byte(length>>16), byte(length>>8), byte(length))
	default:
		dst = append(dst, 0x84, byte(length>>24), byte(length>>16), byte(length>>8), byte(length))
	}
	return dst
}

// AppendTLV appends a complete TLV element.
func AppendTLV(dst []byte, class Class, constructed bool, tag int, content []byte) []byte {
	dst = appendHeader(dst, class, constructed, tag, len(content))
	return append(dst, content...)
}

// AppendInt appends an INTEGER (or other primitive carrying an integer, per
// the supplied class/tag) in minimal two's-complement form.
func AppendInt(dst []byte, class Class, tag int, v int64) []byte {
	content := encodeInt(v)
	return AppendTLV(dst, class, false, tag, content)
}

func encodeInt(v int64) []byte {
	n := 1
	for m := v; m > 0x7f || m < -0x80; m >>= 8 {
		n++
	}
	out := make([]byte, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = byte(v)
		v >>= 8
	}
	return out
}

// AppendString appends an OCTET STRING (or string-bearing primitive with
// the supplied class/tag).
func AppendString(dst []byte, class Class, tag int, s string) []byte {
	return AppendTLV(dst, class, false, tag, []byte(s))
}

// AppendBool appends a BOOLEAN.
func AppendBool(dst []byte, v bool) []byte {
	b := byte(0x00)
	if v {
		b = 0xff
	}
	return AppendTLV(dst, ClassUniversal, false, TagBoolean, []byte{b})
}

// AppendEnum appends an ENUMERATED.
func AppendEnum(dst []byte, v int64) []byte {
	return AppendInt(dst, ClassUniversal, TagEnumerated, v)
}

// AppendSequence appends a SEQUENCE with the given encoded content.
func AppendSequence(dst []byte, content []byte) []byte {
	return AppendTLV(dst, ClassUniversal, true, TagSequence, content)
}

// AppendSet appends a SET with the given encoded content.
func AppendSet(dst []byte, content []byte) []byte {
	return AppendTLV(dst, ClassUniversal, true, TagSet, content)
}

// Reader decodes TLV elements from a byte slice.
type Reader struct {
	data []byte
	pos  int
}

// NewReader wraps encoded bytes.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// Empty reports whether all input was consumed.
func (r *Reader) Empty() bool { return r.pos >= len(r.data) }

// Rest returns the unconsumed bytes.
func (r *Reader) Rest() []byte { return r.data[r.pos:] }

// Peek decodes the next header without consuming it.
func (r *Reader) Peek() (Header, error) {
	save := r.pos
	h, _, err := r.Read()
	r.pos = save
	return h, err
}

// Read consumes the next TLV, returning its header and content bytes.
func (r *Reader) Read() (Header, []byte, error) {
	if r.pos >= len(r.data) {
		return Header{}, nil, ErrTruncated
	}
	id := r.data[r.pos]
	h := Header{
		Class:       Class(id & 0xc0),
		Constructed: id&0x20 != 0,
		Tag:         int(id & 0x1f),
	}
	if h.Tag == 0x1f {
		return Header{}, nil, fmt.Errorf("%w: high tag numbers unsupported", ErrBadTag)
	}
	r.pos++
	if r.pos >= len(r.data) {
		return Header{}, nil, ErrTruncated
	}
	l := r.data[r.pos]
	r.pos++
	length := 0
	if l < 0x80 {
		length = int(l)
	} else {
		n := int(l & 0x7f)
		if n == 0 || n > 4 {
			return Header{}, nil, fmt.Errorf("%w: length-of-length %d", ErrBadLength, n)
		}
		if r.pos+n > len(r.data) {
			return Header{}, nil, ErrTruncated
		}
		for i := 0; i < n; i++ {
			length = length<<8 | int(r.data[r.pos])
			r.pos++
		}
		if length < 0 {
			return Header{}, nil, ErrBadLength
		}
	}
	if r.pos+length > len(r.data) {
		return Header{}, nil, ErrTruncated
	}
	h.Length = length
	content := r.data[r.pos : r.pos+length]
	r.pos += length
	return h, content, nil
}

// ReadExpect consumes the next TLV and verifies its class and tag.
func (r *Reader) ReadExpect(class Class, tag int) ([]byte, error) {
	h, content, err := r.Read()
	if err != nil {
		return nil, err
	}
	if !h.Is(class, tag) {
		return nil, fmt.Errorf("%w: got class %#x tag %d, want class %#x tag %d",
			ErrBadTag, h.Class, h.Tag, class, tag)
	}
	return content, nil
}

// ReadSequence consumes a SEQUENCE and returns a Reader over its content.
func (r *Reader) ReadSequence() (*Reader, error) {
	content, err := r.ReadExpect(ClassUniversal, TagSequence)
	if err != nil {
		return nil, err
	}
	return NewReader(content), nil
}

// ReadInt consumes an INTEGER.
func (r *Reader) ReadInt() (int64, error) {
	content, err := r.ReadExpect(ClassUniversal, TagInteger)
	if err != nil {
		return 0, err
	}
	return ParseInt(content)
}

// ReadEnum consumes an ENUMERATED.
func (r *Reader) ReadEnum() (int64, error) {
	content, err := r.ReadExpect(ClassUniversal, TagEnumerated)
	if err != nil {
		return 0, err
	}
	return ParseInt(content)
}

// ReadString consumes an OCTET STRING.
func (r *Reader) ReadString() (string, error) {
	content, err := r.ReadExpect(ClassUniversal, TagOctetString)
	if err != nil {
		return "", err
	}
	return string(content), nil
}

// ReadBool consumes a BOOLEAN.
func (r *Reader) ReadBool() (bool, error) {
	content, err := r.ReadExpect(ClassUniversal, TagBoolean)
	if err != nil {
		return false, err
	}
	if len(content) != 1 {
		return false, fmt.Errorf("%w: boolean of %d bytes", ErrBadLength, len(content))
	}
	return content[0] != 0, nil
}

// ParseInt decodes two's-complement integer content.
func ParseInt(content []byte) (int64, error) {
	if len(content) == 0 {
		return 0, fmt.Errorf("%w: empty integer", ErrBadLength)
	}
	if len(content) > 8 {
		return 0, fmt.Errorf("%w: integer of %d bytes", ErrBadLength, len(content))
	}
	v := int64(0)
	if content[0]&0x80 != 0 {
		v = -1
	}
	for _, b := range content {
		v = v<<8 | int64(b)
	}
	return v, nil
}
