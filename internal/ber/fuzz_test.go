package ber

import (
	"bytes"
	"testing"
)

// FuzzParseTLV feeds arbitrary bytes to the TLV reader. Property: Read
// never panics, and every successfully decoded TLV re-encodes (AppendTLV)
// to bytes that decode to the identical header and content — the
// parse/serialize fixed point the safe re-encode path relies on.
func FuzzParseTLV(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendInt(nil, ClassUniversal, TagInteger, 123456))
	f.Add(AppendString(nil, ClassUniversal, TagOctetString, "cn=e1,ou=oracle"))
	f.Add(AppendBool(nil, true))
	f.Add(AppendSequence(nil, AppendInt(nil, ClassUniversal, TagInteger, -7)))
	f.Add(AppendSet(nil, AppendString(nil, ClassContext, 0, "x")))
	f.Add([]byte{0x30, 0x80, 0x01, 0x02})                   // indefinite length
	f.Add([]byte{0x1f, 0x81, 0x01, 0x01, 0x00})             // high tag number
	f.Add([]byte{0x04, 0x85, 0x01, 0x01, 0x01, 0x01, 0x01}) // 5-byte length of length
	f.Add([]byte{0x02, 0x7f})                               // truncated content

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		for !r.Empty() {
			h, content, err := r.Read()
			if err != nil {
				return // malformed input must error, not panic
			}
			if h.Length != len(content) {
				t.Fatalf("header length %d != content length %d", h.Length, len(content))
			}
			enc := AppendTLV(nil, h.Class, h.Constructed, h.Tag, content)
			h2, content2, err := NewReader(enc).Read()
			if err != nil {
				t.Fatalf("re-encoded TLV does not decode: %v (header %+v)", err, h)
			}
			if h2.Class != h.Class || h2.Constructed != h.Constructed || h2.Tag != h.Tag {
				t.Fatalf("re-encode changed header: %+v -> %+v", h, h2)
			}
			if !bytes.Equal(content, content2) {
				t.Fatalf("re-encode changed content: %x -> %x", content, content2)
			}
		}
	})
}
