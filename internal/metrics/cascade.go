package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// CascadeCounters aggregates mid-tier (cascade) replica activity: the
// containment admission gate for downstream sessions, upstream batches
// flowing through the tier, the apply→rebroadcast latency of the
// propagation path, and tier durability. All fields are atomic so the
// tier's hot paths (supervisor apply, engine emission) never take a lock
// to account an event.
type CascadeCounters struct {
	// TierDepth is the configured distance from the master (gauge; 1 =
	// directly below the master).
	TierDepth atomic.Int64
	// DownstreamSessions is the number of live downstream ReSync sessions
	// served by the tier's engine (gauge, refreshed on session events).
	DownstreamSessions atomic.Int64

	// Containment admission gate.
	AdmitChecks atomic.Int64 // downstream Begin specs checked
	Admitted    atomic.Int64 // specs proven contained and admitted
	Rejected    atomic.Int64 // specs referred upstream (not contained)

	// Upstream propagation.
	UpstreamBatches atomic.Int64 // upstream exchanges applied to the tier store
	UpstreamUpdates atomic.Int64 // update PDUs applied from upstream

	// Apply→rebroadcast latency: for each upstream batch, the time until
	// the tier's engine first emits a downstream batch covering it.
	RebroadcastNanos    atomic.Int64
	Rebroadcasts        atomic.Int64
	RebroadcastMaxNanos atomic.Int64

	// Durability.
	Checkpoints    atomic.Int64 // full snapshot checkpoints written
	JournalAppends atomic.Int64 // incremental journal appends written
	Restores       atomic.Int64 // cold starts that restored durable state
}

// ObserveRebroadcast records one apply→rebroadcast latency sample.
func (c *CascadeCounters) ObserveRebroadcast(d time.Duration) {
	n := int64(d)
	c.RebroadcastNanos.Add(n)
	c.Rebroadcasts.Add(1)
	for {
		cur := c.RebroadcastMaxNanos.Load()
		if n <= cur || c.RebroadcastMaxNanos.CompareAndSwap(cur, n) {
			return
		}
	}
}

// CascadeSnapshot is a point-in-time copy of the counters.
type CascadeSnapshot struct {
	TierDepth, DownstreamSessions  int64
	AdmitChecks, Admitted          int64
	Rejected                       int64
	UpstreamBatches                int64
	UpstreamUpdates                int64
	Rebroadcasts                   int64
	AvgRebroadcast, MaxRebroadcast time.Duration
	Checkpoints, JournalAppends    int64
	Restores                       int64
}

// Snapshot copies the current counter values.
func (c *CascadeCounters) Snapshot() CascadeSnapshot {
	s := CascadeSnapshot{
		TierDepth:          c.TierDepth.Load(),
		DownstreamSessions: c.DownstreamSessions.Load(),
		AdmitChecks:        c.AdmitChecks.Load(),
		Admitted:           c.Admitted.Load(),
		Rejected:           c.Rejected.Load(),
		UpstreamBatches:    c.UpstreamBatches.Load(),
		UpstreamUpdates:    c.UpstreamUpdates.Load(),
		Rebroadcasts:       c.Rebroadcasts.Load(),
		MaxRebroadcast:     time.Duration(c.RebroadcastMaxNanos.Load()),
		Checkpoints:        c.Checkpoints.Load(),
		JournalAppends:     c.JournalAppends.Load(),
		Restores:           c.Restores.Load(),
	}
	if s.Rebroadcasts > 0 {
		s.AvgRebroadcast = time.Duration(c.RebroadcastNanos.Load() / s.Rebroadcasts)
	}
	return s
}

// String renders a compact status line for operator output.
func (s CascadeSnapshot) String() string {
	return fmt.Sprintf(
		"cascade: depth=%d downstream=%d | admit=%d/%d rejected=%d | upstream-batches=%d applied=%d | rebroadcast avg=%s max=%s (%d) | ckpt=%d appends=%d restores=%d",
		s.TierDepth, s.DownstreamSessions, s.Admitted, s.AdmitChecks, s.Rejected,
		s.UpstreamBatches, s.UpstreamUpdates,
		s.AvgRebroadcast, s.MaxRebroadcast, s.Rebroadcasts,
		s.Checkpoints, s.JournalAppends, s.Restores)
}
