package metrics

import (
	"strings"
	"testing"
)

func sample() *Figure {
	fig := &Figure{
		ID: "test", Title: "Test figure",
		XLabel: "x", YLabel: "y",
		Notes: []string{"a note"},
	}
	a := fig.AddSeries("alpha")
	a.Add(1, 0.5)
	a.Add(2, 0.7)
	b := fig.AddSeries("beta")
	b.Add(1, 0.1)
	b.Add(3, 0.9)
	return fig
}

func TestAddSeriesStable(t *testing.T) {
	// Series handles must stay valid as more series are appended (they are
	// pointers, immune to slice reallocation).
	fig := &Figure{ID: "t"}
	var handles []*Series
	for i := 0; i < 20; i++ {
		handles = append(handles, fig.AddSeries(strings.Repeat("s", i+1)))
	}
	for i, h := range handles {
		h.Add(1, float64(i))
	}
	for i, s := range fig.Series {
		if len(s.Points) != 1 || s.Points[0].Y != float64(i) {
			t.Fatalf("series %d lost its points: %+v", i, s.Points)
		}
	}
}

func TestRender(t *testing.T) {
	var sb strings.Builder
	if err := sample().Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Test figure", "alpha", "beta", "a note", "0.5000", "0.9000", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	if err := sample().CSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "x,alpha,beta" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) != 4 { // header + x=1,2,3
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[1] != "1,0.5,0.1" {
		t.Errorf("csv row = %q", lines[1])
	}
	// Missing point renders as empty field.
	if lines[2] != "2,0.7," {
		t.Errorf("csv sparse row = %q", lines[2])
	}
}

func TestLookups(t *testing.T) {
	fig := sample()
	if s := fig.SeriesByName("alpha"); s == nil {
		t.Fatal("SeriesByName failed")
	}
	if s := fig.SeriesByName("gamma"); s != nil {
		t.Fatal("missing series found")
	}
	a := fig.SeriesByName("alpha")
	if y, ok := a.YAt(2); !ok || y != 0.7 {
		t.Errorf("YAt(2) = %v, %v", y, ok)
	}
	if _, ok := a.YAt(99); ok {
		t.Error("YAt on missing x succeeded")
	}
	if a.MaxY() != 0.7 {
		t.Errorf("MaxY = %v", a.MaxY())
	}
	var empty Series
	if empty.MaxY() != 0 {
		t.Error("empty MaxY != 0")
	}
}
