package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestSyncCountersSnapshot(t *testing.T) {
	var c SyncCounters
	c.Begins.Add(2)
	c.Polls.Add(5)
	c.PDUAdds.Add(3)
	c.PDUDeletes.Add(1)
	c.PDUModifies.Add(4)
	c.SuppressedModifies.Add(2)
	c.FullReloads.Add(1)
	c.ObserveClassify(10 * time.Millisecond)
	c.ObserveClassify(20 * time.Millisecond)

	s := c.Snapshot()
	if s.Begins != 2 || s.Polls != 5 || s.FullReloads != 1 {
		t.Errorf("snapshot = %+v", s)
	}
	if got := s.PDUs(); got != 8 {
		t.Errorf("PDUs() = %d, want 8", got)
	}
	if s.AvgClassify != 15*time.Millisecond {
		t.Errorf("AvgClassify = %v, want 15ms", s.AvgClassify)
	}
	line := s.String()
	for _, want := range []string{"polls=5", "add=3", "suppressed=2", "full-reloads=1"} {
		if !strings.Contains(line, want) {
			t.Errorf("String() missing %q: %s", want, line)
		}
	}
}

func TestSyncSnapshotZero(t *testing.T) {
	var c SyncCounters
	s := c.Snapshot()
	if s.AvgClassify != 0 {
		t.Errorf("zero-sample AvgClassify = %v", s.AvgClassify)
	}
	if s.PDUs() != 0 {
		t.Errorf("zero PDUs() = %d", s.PDUs())
	}
}

// TestRenderDuplicateX pins the indexed Render/CSV lookup to the original
// semantics: when a series holds several points at the same X, the first
// one wins.
func TestRenderDuplicateX(t *testing.T) {
	fig := &Figure{ID: "dup", Title: "dup"}
	s := fig.AddSeries("s")
	s.Add(1, 0.25)
	s.Add(1, 0.75)

	var sb strings.Builder
	if err := fig.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 || lines[1] != "1,0.25" {
		t.Errorf("csv with duplicate X = %q, want first point to win", lines)
	}
}
