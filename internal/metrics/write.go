package metrics

import (
	"fmt"
	"sync/atomic"
)

// WriteCounters aggregates edge-write activity. On a replica they count the
// local accept→forward→commit→retire lifecycle of edge-originated writes;
// on the master they count the sequencer side (applied ops and dedup hits
// from replayed forwards). All fields are atomic so the write path never
// takes a lock to account an event.
type WriteCounters struct {
	// Replica side: the edge-write lifecycle.
	Accepted  atomic.Int64 // ops admitted and journaled to the WAL
	Rejected  atomic.Int64 // ops refused by the containment gate (referred to master)
	Forwarded atomic.Int64 // forward attempts sent upstream (includes retries)
	Committed atomic.Int64 // ops assigned a CSN by the master
	Retired   atomic.Int64 // ops whose CSN echoed back down the ReSync stream
	// WALReplays counts ops re-forwarded from the WAL after a crash or a
	// failed forward (the at-least-once half of the exactly-once story; the
	// master's dedup supplies the other half).
	WALReplays atomic.Int64

	// Pending-overlay depth (gauge + high-water).
	Pending          atomic.Int64
	PendingHighWater atomic.Int64

	// Master side: the CSN sequencer.
	Applied    atomic.Int64 // edge ops applied and assigned a CSN
	Duplicates atomic.Int64 // replayed forwards answered from the dedup table
}

// ObservePending records the current pending-overlay depth, maintaining the
// high-water mark.
func (c *WriteCounters) ObservePending(depth int) {
	n := int64(depth)
	c.Pending.Store(n)
	for {
		cur := c.PendingHighWater.Load()
		if n <= cur || c.PendingHighWater.CompareAndSwap(cur, n) {
			return
		}
	}
}

// WriteSnapshot is a point-in-time copy of the counters.
type WriteSnapshot struct {
	Accepted, Rejected   int64
	Forwarded, Committed int64
	Retired, WALReplays  int64
	Pending, PendingHigh int64
	Applied, Duplicates  int64
}

// Snapshot copies the current counter values.
func (c *WriteCounters) Snapshot() WriteSnapshot {
	return WriteSnapshot{
		Accepted:    c.Accepted.Load(),
		Rejected:    c.Rejected.Load(),
		Forwarded:   c.Forwarded.Load(),
		Committed:   c.Committed.Load(),
		Retired:     c.Retired.Load(),
		WALReplays:  c.WALReplays.Load(),
		Pending:     c.Pending.Load(),
		PendingHigh: c.PendingHighWater.Load(),
		Applied:     c.Applied.Load(),
		Duplicates:  c.Duplicates.Load(),
	}
}

// String renders a compact status line for operator output.
func (s WriteSnapshot) String() string {
	return fmt.Sprintf(
		"writes: accepted=%d rejected=%d | forwarded=%d committed=%d retired=%d replays=%d | pending=%d (high=%d) | applied=%d dup=%d",
		s.Accepted, s.Rejected, s.Forwarded, s.Committed, s.Retired, s.WALReplays,
		s.Pending, s.PendingHigh, s.Applied, s.Duplicates)
}
