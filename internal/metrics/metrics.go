// Package metrics provides the labelled data series and rendering helpers
// the experiment harness uses to report each reproduced table and figure.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Point is one measurement: X is the swept parameter, Y the metric.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Figure is a reproduced table or figure: metadata plus one or more series.
type Figure struct {
	ID     string // e.g. "figure4"
	Title  string
	XLabel string
	YLabel string
	Series []*Series
	Notes  []string
}

// AddSeries appends a series and returns it for incremental filling.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Render writes an aligned text table: one row per X value, one column per
// series.
func (f *Figure) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "   %s\n", n)
	}

	// Collect the union of X values in order.
	xs := f.xValues()
	idx := f.seriesIndexes()
	// Header.
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %20s", s.Name)
	}
	b.WriteString("\n")
	for _, x := range xs {
		fmt.Fprintf(&b, "%-14.4g", x)
		for i := range f.Series {
			if y, ok := idx[i][x]; ok {
				fmt.Fprintf(&b, " %20.4f", y)
			} else {
				fmt.Fprintf(&b, " %20s", "-")
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "   (y-axis: %s)\n", f.YLabel)
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the figure as x,series1,series2,... rows.
func (f *Figure) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("x")
	for _, s := range f.Series {
		b.WriteString(",")
		b.WriteString(strings.ReplaceAll(s.Name, ",", ";"))
	}
	b.WriteString("\n")
	idx := f.seriesIndexes()
	for _, x := range f.xValues() {
		fmt.Fprintf(&b, "%g", x)
		for i := range f.Series {
			if y, ok := idx[i][x]; ok {
				fmt.Fprintf(&b, ",%g", y)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *Figure) xValues() []float64 {
	seen := make(map[float64]bool)
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

// seriesIndexes builds one X→Y map per series so Render and CSV resolve
// each (x, series) cell in O(1) instead of rescanning the points slice.
// The first point at a given X wins, matching lookup's semantics.
func (f *Figure) seriesIndexes() []map[float64]float64 {
	idx := make([]map[float64]float64, len(f.Series))
	for i, s := range f.Series {
		m := make(map[float64]float64, len(s.Points))
		for _, p := range s.Points {
			if _, ok := m[p.X]; !ok {
				m[p.X] = p.Y
			}
		}
		idx[i] = m
	}
	return idx
}

func lookup(s *Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// SeriesByName finds a series in the figure (nil if absent); used by tests
// asserting curve shapes.
func (f *Figure) SeriesByName(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// YAt returns the series' Y at the given X (ok=false when absent).
func (s *Series) YAt(x float64) (float64, bool) {
	return lookup(s, x)
}

// MaxY returns the largest Y value in the series (0 for empty).
func (s *Series) MaxY() float64 {
	max := 0.0
	for _, p := range s.Points {
		if p.Y > max {
			max = p.Y
		}
	}
	return max
}
