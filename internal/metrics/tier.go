package metrics

import (
	"fmt"
	"sync/atomic"
)

// TierCounters aggregates the adaptive control plane's activity on one
// cascade tier (internal/tierctl): the demand signals it consumed, the
// filter-set changes it applied, and the downstream effects — leaves
// migrating back from the fallback master and the re-sync volume widening
// cost. All fields are atomic; the control loop and status reporting never
// contend.
type TierCounters struct {
	// FilterGeneration mirrors the tier's current filter generation
	// (gauge; bumps on every adopt/retire).
	FilterGeneration atomic.Int64
	// StoredFilters is the current size of the tier's filter set (gauge).
	StoredFilters atomic.Int64

	// Demand signals consumed.
	RejectionsObserved atomic.Int64 // admission rejections fed to the selector
	ServingCredits     atomic.Int64 // stored-filter credits from live sessions/groups

	// Filter-set changes applied.
	Generalizations atomic.Int64 // filters adopted (tier widened)
	Revolutions     atomic.Int64 // narrowing passes applied (filters retired)
	FiltersRetired  atomic.Int64 // filters dropped by revolutions

	// Downstream effects.
	LeavesMigratedBack atomic.Int64 // previously rejected specs later admitted
	LeavesReferred     atomic.Int64 // downstream sessions re-referred by a narrowing
	WidenResyncEntries atomic.Int64 // entries pulled from upstream by adoptions
	WidenResyncBytes   atomic.Int64 // approximate bytes of that widening re-sync
}

// TierSnapshot is a point-in-time copy of the counters.
type TierSnapshot struct {
	FilterGeneration, StoredFilters      int64
	RejectionsObserved, ServingCredits   int64
	Generalizations, Revolutions         int64
	FiltersRetired                       int64
	LeavesMigratedBack, LeavesReferred   int64
	WidenResyncEntries, WidenResyncBytes int64
}

// Snapshot copies the current counter values.
func (c *TierCounters) Snapshot() TierSnapshot {
	return TierSnapshot{
		FilterGeneration:   c.FilterGeneration.Load(),
		StoredFilters:      c.StoredFilters.Load(),
		RejectionsObserved: c.RejectionsObserved.Load(),
		ServingCredits:     c.ServingCredits.Load(),
		Generalizations:    c.Generalizations.Load(),
		Revolutions:        c.Revolutions.Load(),
		FiltersRetired:     c.FiltersRetired.Load(),
		LeavesMigratedBack: c.LeavesMigratedBack.Load(),
		LeavesReferred:     c.LeavesReferred.Load(),
		WidenResyncEntries: c.WidenResyncEntries.Load(),
		WidenResyncBytes:   c.WidenResyncBytes.Load(),
	}
}

// String renders a compact status line for operator output.
func (s TierSnapshot) String() string {
	return fmt.Sprintf(
		"tierctl: gen=%d filters=%d | rejections=%d credits=%d | widened=%d revolutions=%d retired=%d | migrated-back=%d referred=%d | widen-resync=%d entries/%dB",
		s.FilterGeneration, s.StoredFilters,
		s.RejectionsObserved, s.ServingCredits,
		s.Generalizations, s.Revolutions, s.FiltersRetired,
		s.LeavesMigratedBack, s.LeavesReferred,
		s.WidenResyncEntries, s.WidenResyncBytes)
}
