package metrics

import (
	"fmt"
	"sync/atomic"
)

// StoreCounters aggregates DIT-store commit-pipeline and snapshot activity:
// write batches flushed by the group-commit leader, copy-on-write shard
// clones forced by frozen snapshots, and multi-shard freezes taken by
// readers. All fields are atomic so the counters can sit on the commit hot
// path without a lock.
type StoreCounters struct {
	// Commit pipeline.
	Batches    atomic.Int64 // batches flushed by a commit leader
	BatchedOps atomic.Int64 // updates committed through the pipeline
	MaxBatch   atomic.Int64 // largest single batch flushed

	// Copy-on-write snapshots.
	Freezes     atomic.Int64 // multi-shard frozen views taken by readers
	ShardClones atomic.Int64 // shard states cloned because a frozen view pinned them
}

// ObserveBatch folds one flushed batch into the counters.
func (c *StoreCounters) ObserveBatch(size int) {
	c.Batches.Add(1)
	c.BatchedOps.Add(int64(size))
	n := int64(size)
	for {
		cur := c.MaxBatch.Load()
		if n <= cur || c.MaxBatch.CompareAndSwap(cur, n) {
			return
		}
	}
}

// StoreSnapshot is a point-in-time copy of the counters.
type StoreSnapshot struct {
	Batches, BatchedOps, MaxBatch int64
	Freezes, ShardClones          int64
}

// Snapshot copies the current counter values.
func (c *StoreCounters) Snapshot() StoreSnapshot {
	return StoreSnapshot{
		Batches:     c.Batches.Load(),
		BatchedOps:  c.BatchedOps.Load(),
		MaxBatch:    c.MaxBatch.Load(),
		Freezes:     c.Freezes.Load(),
		ShardClones: c.ShardClones.Load(),
	}
}

// AvgBatch returns the mean ops per flushed batch (0 when none flushed).
func (s StoreSnapshot) AvgBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedOps) / float64(s.Batches)
}

// String renders a compact status line for operator output.
func (s StoreSnapshot) String() string {
	return fmt.Sprintf(
		"store: batches=%d ops=%d avg-batch=%.1f max-batch=%d | snapshots: freezes=%d shard-clones=%d",
		s.Batches, s.BatchedOps, s.AvgBatch(), s.MaxBatch, s.Freezes, s.ShardClones)
}
