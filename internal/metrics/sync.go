package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// SyncCounters aggregates master-side ReSync activity: session lifecycle
// events, update PDUs by action, full reloads, persist streaming, and the
// classification latency of the poll hot path. All fields are atomic, so
// the counters can sit on concurrent hot paths without a lock; readers
// take a consistent-enough view via Snapshot.
type SyncCounters struct {
	// Session lifecycle.
	Begins      atomic.Int64 // sessions started (null-cookie syncs)
	Polls       atomic.Int64 // poll-mode exchanges served
	RetainPolls atomic.Int64 // retain-mode (equation 3) exchanges served
	Ends        atomic.Int64 // sessions terminated by sync_end

	// Update PDUs produced by classification, by action.
	PDUAdds     atomic.Int64
	PDUDeletes  atomic.Int64
	PDUModifies atomic.Int64
	PDURetains  atomic.Int64

	// SuppressedModifies counts net-unchanged modify PDUs dropped by the
	// minimal-update-set check (e.g. modify-then-revert intervals).
	SuppressedModifies atomic.Int64

	// FullReloads counts polls answered with a full content transfer
	// because the journal no longer covered the session's sync point.
	FullReloads atomic.Int64

	// Resumable chunked reloads. ChunkedReloads counts full transfers
	// serialized into chunks; ReloadChunks counts chunk exchanges served
	// (including retransmissions after a resume); Resumes counts
	// presented resume tokens; ResumeRejects counts tokens refused —
	// unknown session, stale snapshot, or fingerprint mismatch — each
	// degrading to a restart from chunk zero.
	ChunkedReloads atomic.Int64
	ReloadChunks   atomic.Int64
	Resumes        atomic.Int64
	ResumeRejects  atomic.Int64

	// PersistStreams counts sessions upgraded to persist mode.
	PersistStreams atomic.Int64
	// StreamedPDUs counts update PDUs written to the wire by the server,
	// including persist-mode pushes.
	StreamedPDUs atomic.Int64

	// Classification latency: total nanoseconds and observations.
	ClassifyNanos atomic.Int64
	Classifies    atomic.Int64

	// Content-group fan-out. GroupJoins counts sessions that joined a
	// content group (GroupEquivJoins the subset admitted by containment
	// equivalence rather than an identical key); GroupLeaves counts
	// departures on sync_end.
	GroupJoins      atomic.Int64
	GroupEquivJoins atomic.Int64
	GroupLeaves     atomic.Int64

	// Shared-classification cache: a miss classifies a change interval for
	// real; a hit reuses another group member's result. The dedup ratio of
	// the master's hottest path is Hits/(Hits+Misses).
	SharedClassifyHits   atomic.Int64
	SharedClassifyMisses atomic.Int64

	// Persist fan-out slow-consumer policy: CoalescedCycles counts update
	// cycles deferred because a subscriber's queue was full (the lagging
	// session is left at its old sync point, so the next batch coalesces
	// the backlog); SlowDemotions counts subscriptions closed after too
	// many consecutive deferrals, demoting the consumer to poll mode.
	CoalescedCycles atomic.Int64
	SlowDemotions   atomic.Int64

	// Wire-level dedup on the persist broadcast path: StreamEncodes counts
	// PDU bodies actually BER-encoded, StreamDedupPDUs counts PDUs written
	// from an already-encoded shared body.
	StreamEncodes   atomic.Int64
	StreamDedupPDUs atomic.Int64

	// Per-connection write-queue pressure: StreamQueueDrops counts persist
	// streams torn down because the connection's bounded write queue stayed
	// full past the enqueue deadline; StreamQueueHighWater is the deepest
	// queue observed.
	StreamQueueDrops     atomic.Int64
	StreamQueueHighWater atomic.Int64
}

// ObserveQueueDepth folds one observed write-queue depth into the
// high-water mark.
func (c *SyncCounters) ObserveQueueDepth(depth int) {
	d := int64(depth)
	for {
		cur := c.StreamQueueHighWater.Load()
		if d <= cur || c.StreamQueueHighWater.CompareAndSwap(cur, d) {
			return
		}
	}
}

// ObserveClassify records one poll's classification latency.
func (c *SyncCounters) ObserveClassify(d time.Duration) {
	c.ClassifyNanos.Add(int64(d))
	c.Classifies.Add(1)
}

// SyncSnapshot is a point-in-time copy of the counters.
type SyncSnapshot struct {
	Begins, Polls, RetainPolls, Ends             int64
	PDUAdds, PDUDeletes, PDUModifies, PDURetains int64
	SuppressedModifies                           int64
	FullReloads                                  int64
	ChunkedReloads, ReloadChunks                 int64
	Resumes, ResumeRejects                       int64
	PersistStreams, StreamedPDUs                 int64
	Classifies                                   int64
	AvgClassify                                  time.Duration

	GroupJoins, GroupEquivJoins, GroupLeaves int64
	SharedClassifyHits, SharedClassifyMisses int64
	CoalescedCycles, SlowDemotions           int64
	StreamEncodes, StreamDedupPDUs           int64
	StreamQueueDrops, StreamQueueHighWater   int64
}

// Snapshot copies the current counter values.
func (c *SyncCounters) Snapshot() SyncSnapshot {
	s := SyncSnapshot{
		Begins:             c.Begins.Load(),
		Polls:              c.Polls.Load(),
		RetainPolls:        c.RetainPolls.Load(),
		Ends:               c.Ends.Load(),
		PDUAdds:            c.PDUAdds.Load(),
		PDUDeletes:         c.PDUDeletes.Load(),
		PDUModifies:        c.PDUModifies.Load(),
		PDURetains:         c.PDURetains.Load(),
		SuppressedModifies: c.SuppressedModifies.Load(),
		FullReloads:        c.FullReloads.Load(),
		ChunkedReloads:     c.ChunkedReloads.Load(),
		ReloadChunks:       c.ReloadChunks.Load(),
		Resumes:            c.Resumes.Load(),
		ResumeRejects:      c.ResumeRejects.Load(),
		PersistStreams:     c.PersistStreams.Load(),
		StreamedPDUs:       c.StreamedPDUs.Load(),
		Classifies:         c.Classifies.Load(),

		GroupJoins:           c.GroupJoins.Load(),
		GroupEquivJoins:      c.GroupEquivJoins.Load(),
		GroupLeaves:          c.GroupLeaves.Load(),
		SharedClassifyHits:   c.SharedClassifyHits.Load(),
		SharedClassifyMisses: c.SharedClassifyMisses.Load(),
		CoalescedCycles:      c.CoalescedCycles.Load(),
		SlowDemotions:        c.SlowDemotions.Load(),
		StreamEncodes:        c.StreamEncodes.Load(),
		StreamDedupPDUs:      c.StreamDedupPDUs.Load(),
		StreamQueueDrops:     c.StreamQueueDrops.Load(),
		StreamQueueHighWater: c.StreamQueueHighWater.Load(),
	}
	if s.Classifies > 0 {
		s.AvgClassify = time.Duration(c.ClassifyNanos.Load() / s.Classifies)
	}
	return s
}

// ClassifyDedupRatio returns the fraction of classification demand served
// from the shared per-group cache (0 when nothing was classified).
func (s SyncSnapshot) ClassifyDedupRatio() float64 {
	total := s.SharedClassifyHits + s.SharedClassifyMisses
	if total == 0 {
		return 0
	}
	return float64(s.SharedClassifyHits) / float64(total)
}

// PDUs returns the total update PDUs produced across all actions.
func (s SyncSnapshot) PDUs() int64 {
	return s.PDUAdds + s.PDUDeletes + s.PDUModifies + s.PDURetains
}

// String renders a compact status line for operator output.
func (s SyncSnapshot) String() string {
	return fmt.Sprintf(
		"sync: begins=%d polls=%d retain=%d ends=%d persist=%d | pdus=%d (add=%d del=%d mod=%d ret=%d suppressed=%d) streamed=%d | full-reloads=%d (chunked=%d chunks=%d resumes=%d rejects=%d) classify-avg=%s | groups: joins=%d (equiv=%d) leaves=%d classify-dedup=%.2f enc-dedup=%d/%d | slow: coalesced=%d demoted=%d qdrops=%d qmax=%d",
		s.Begins, s.Polls, s.RetainPolls, s.Ends, s.PersistStreams,
		s.PDUs(), s.PDUAdds, s.PDUDeletes, s.PDUModifies, s.PDURetains,
		s.SuppressedModifies, s.StreamedPDUs, s.FullReloads,
		s.ChunkedReloads, s.ReloadChunks, s.Resumes, s.ResumeRejects, s.AvgClassify,
		s.GroupJoins, s.GroupEquivJoins, s.GroupLeaves, s.ClassifyDedupRatio(),
		s.StreamDedupPDUs, s.StreamEncodes,
		s.CoalescedCycles, s.SlowDemotions, s.StreamQueueDrops, s.StreamQueueHighWater)
}
