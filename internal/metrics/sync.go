package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// SyncCounters aggregates master-side ReSync activity: session lifecycle
// events, update PDUs by action, full reloads, persist streaming, and the
// classification latency of the poll hot path. All fields are atomic, so
// the counters can sit on concurrent hot paths without a lock; readers
// take a consistent-enough view via Snapshot.
type SyncCounters struct {
	// Session lifecycle.
	Begins      atomic.Int64 // sessions started (null-cookie syncs)
	Polls       atomic.Int64 // poll-mode exchanges served
	RetainPolls atomic.Int64 // retain-mode (equation 3) exchanges served
	Ends        atomic.Int64 // sessions terminated by sync_end

	// Update PDUs produced by classification, by action.
	PDUAdds     atomic.Int64
	PDUDeletes  atomic.Int64
	PDUModifies atomic.Int64
	PDURetains  atomic.Int64

	// SuppressedModifies counts net-unchanged modify PDUs dropped by the
	// minimal-update-set check (e.g. modify-then-revert intervals).
	SuppressedModifies atomic.Int64

	// FullReloads counts polls answered with a full content transfer
	// because the journal no longer covered the session's sync point.
	FullReloads atomic.Int64

	// PersistStreams counts sessions upgraded to persist mode.
	PersistStreams atomic.Int64
	// StreamedPDUs counts update PDUs written to the wire by the server,
	// including persist-mode pushes.
	StreamedPDUs atomic.Int64

	// Classification latency: total nanoseconds and observations.
	ClassifyNanos atomic.Int64
	Classifies    atomic.Int64
}

// ObserveClassify records one poll's classification latency.
func (c *SyncCounters) ObserveClassify(d time.Duration) {
	c.ClassifyNanos.Add(int64(d))
	c.Classifies.Add(1)
}

// SyncSnapshot is a point-in-time copy of the counters.
type SyncSnapshot struct {
	Begins, Polls, RetainPolls, Ends             int64
	PDUAdds, PDUDeletes, PDUModifies, PDURetains int64
	SuppressedModifies                           int64
	FullReloads                                  int64
	PersistStreams, StreamedPDUs                 int64
	Classifies                                   int64
	AvgClassify                                  time.Duration
}

// Snapshot copies the current counter values.
func (c *SyncCounters) Snapshot() SyncSnapshot {
	s := SyncSnapshot{
		Begins:             c.Begins.Load(),
		Polls:              c.Polls.Load(),
		RetainPolls:        c.RetainPolls.Load(),
		Ends:               c.Ends.Load(),
		PDUAdds:            c.PDUAdds.Load(),
		PDUDeletes:         c.PDUDeletes.Load(),
		PDUModifies:        c.PDUModifies.Load(),
		PDURetains:         c.PDURetains.Load(),
		SuppressedModifies: c.SuppressedModifies.Load(),
		FullReloads:        c.FullReloads.Load(),
		PersistStreams:     c.PersistStreams.Load(),
		StreamedPDUs:       c.StreamedPDUs.Load(),
		Classifies:         c.Classifies.Load(),
	}
	if s.Classifies > 0 {
		s.AvgClassify = time.Duration(c.ClassifyNanos.Load() / s.Classifies)
	}
	return s
}

// PDUs returns the total update PDUs produced across all actions.
func (s SyncSnapshot) PDUs() int64 {
	return s.PDUAdds + s.PDUDeletes + s.PDUModifies + s.PDURetains
}

// String renders a compact status line for operator output.
func (s SyncSnapshot) String() string {
	return fmt.Sprintf(
		"sync: begins=%d polls=%d retain=%d ends=%d persist=%d | pdus=%d (add=%d del=%d mod=%d ret=%d suppressed=%d) streamed=%d | full-reloads=%d classify-avg=%s",
		s.Begins, s.Polls, s.RetainPolls, s.Ends, s.PersistStreams,
		s.PDUs(), s.PDUAdds, s.PDUDeletes, s.PDUModifies, s.PDURetains,
		s.SuppressedModifies, s.StreamedPDUs, s.FullReloads, s.AvgClassify)
}
