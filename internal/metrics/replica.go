package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// ReplicaCounters aggregates replica-side supervision activity: connection
// lifecycle, session resumption, persist-stream fallbacks and durable
// checkpointing. All fields are atomic so the supervisor's hot loop never
// takes a lock to account an attempt.
type ReplicaCounters struct {
	// Connection lifecycle.
	Dials      atomic.Int64 // connection attempts (including the first)
	Reconnects atomic.Int64 // reconnects after a transport failure

	// Session lifecycle.
	Begins        atomic.Int64 // full Begin exchanges (null cookie)
	Resumes       atomic.Int64 // sessions resumed by cookie after a restart or reconnect
	StaleSessions atomic.Int64 // ErrNoSuchSession responses handled by re-Begin
	FullReloads   atomic.Int64 // polls answered with a full content transfer
	ChunkResumes  atomic.Int64 // chunked-reload continuations by resume token

	// Steady state.
	Polls          atomic.Int64 // poll exchanges completed
	StreamBatches  atomic.Int64 // persist-stream batches applied
	Fallbacks      atomic.Int64 // persist streams that died and fell back to polling
	Demotions      atomic.Int64 // streams abandoned for a poll-mode cooldown after repeated fast deaths
	UpdatesApplied atomic.Int64 // update PDUs applied to the local content

	// Cascade topology: supervisors diverted from their configured
	// upstream (a mid-tier replica) to the fallback master after a
	// containment rejection, a stale session, or a failed upstream probe.
	UpstreamFallbacks atomic.Int64

	// Durability.
	Checkpoints atomic.Int64 // cookie+content checkpoints written

	// Backoff: total time slept and number of waits.
	BackoffNanos atomic.Int64
	BackoffWaits atomic.Int64
}

// ObserveBackoff records one backoff sleep.
func (c *ReplicaCounters) ObserveBackoff(d time.Duration) {
	c.BackoffNanos.Add(int64(d))
	c.BackoffWaits.Add(1)
}

// ReplicaSnapshot is a point-in-time copy of the counters.
type ReplicaSnapshot struct {
	Dials, Reconnects                          int64
	Begins, Resumes, StaleSessions             int64
	FullReloads, ChunkResumes                  int64
	Polls, StreamBatches, Fallbacks, Demotions int64
	UpdatesApplied, Checkpoints                int64
	UpstreamFallbacks                          int64
	BackoffWaits                               int64
	BackoffTotal                               time.Duration
}

// Snapshot copies the current counter values.
func (c *ReplicaCounters) Snapshot() ReplicaSnapshot {
	return ReplicaSnapshot{
		Dials:             c.Dials.Load(),
		Reconnects:        c.Reconnects.Load(),
		Begins:            c.Begins.Load(),
		Resumes:           c.Resumes.Load(),
		StaleSessions:     c.StaleSessions.Load(),
		FullReloads:       c.FullReloads.Load(),
		ChunkResumes:      c.ChunkResumes.Load(),
		Polls:             c.Polls.Load(),
		StreamBatches:     c.StreamBatches.Load(),
		Fallbacks:         c.Fallbacks.Load(),
		Demotions:         c.Demotions.Load(),
		UpdatesApplied:    c.UpdatesApplied.Load(),
		UpstreamFallbacks: c.UpstreamFallbacks.Load(),
		Checkpoints:       c.Checkpoints.Load(),
		BackoffWaits:      c.BackoffWaits.Load(),
		BackoffTotal:      time.Duration(c.BackoffNanos.Load()),
	}
}

// String renders a compact status line for operator output.
func (s ReplicaSnapshot) String() string {
	return fmt.Sprintf(
		"replica: dials=%d reconnects=%d | begins=%d resumes=%d stale=%d full-reloads=%d chunk-resumes=%d | polls=%d stream-batches=%d fallbacks=%d demotions=%d applied=%d upstream-fallbacks=%d | checkpoints=%d backoff=%s/%d",
		s.Dials, s.Reconnects, s.Begins, s.Resumes, s.StaleSessions, s.FullReloads, s.ChunkResumes,
		s.Polls, s.StreamBatches, s.Fallbacks, s.Demotions, s.UpdatesApplied,
		s.UpstreamFallbacks, s.Checkpoints, s.BackoffTotal, s.BackoffWaits)
}
