package edgewrite

import (
	"fmt"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/query"
)

// Admitter builds a Config.Admit gate from a replica's content specs: an
// add is accepted when the new entry falls under one of the specs (scope
// and filter — the replica will hold the entry once it syncs back, so the
// overlay has somewhere to live); a delete, modify or rename is accepted
// when the target is held locally. Everything else is the master's
// business — the rejection surfaces as ErrRejected, which the wire layer
// dresses as a referral.
func Admitter(specs []query.Query, lookup func(dn.DN) (*entry.Entry, bool)) func(dit.Change) error {
	normalized := make([]query.Query, len(specs))
	for i, q := range specs {
		normalized[i] = q.Normalize()
	}
	covered := func(e *entry.Entry) bool {
		for _, q := range normalized {
			if !q.InScope(e.DN()) {
				continue
			}
			if q.Filter == nil || q.Filter.Matches(e) {
				return true
			}
		}
		return false
	}
	return func(c dit.Change) error {
		switch c.Type {
		case dit.ChangeAdd:
			if c.After == nil {
				return fmt.Errorf("add without entry")
			}
			if !covered(c.After) {
				return fmt.Errorf("entry %s outside this replica's content specs", c.After.DN())
			}
			return nil
		case dit.ChangeDelete, dit.ChangeModify, dit.ChangeModifyDN:
			if lookup == nil {
				return fmt.Errorf("no local content to target")
			}
			if _, ok := lookup(c.DN); !ok {
				return fmt.Errorf("entry %s not held by this replica", c.DN)
			}
			return nil
		default:
			return fmt.Errorf("unknown change type %v", c.Type)
		}
	}
}
