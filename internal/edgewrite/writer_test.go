package edgewrite

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/query"
)

// fakeMaster is an in-memory sequencer with the master's dedup-by-op-id
// contract: the first forward of an id is applied and assigned the next
// CSN, replays are answered from the dedup table. Applies counts real
// applications — the exactly-once assertion reads it.
type fakeMaster struct {
	mu      sync.Mutex
	next    uint64
	seen    map[string]uint64
	applies int
	fail    error // when set, Forward fails without applying
}

func newFakeMaster() *fakeMaster { return &fakeMaster{seen: make(map[string]uint64)} }

func (m *fakeMaster) Forward(c dit.Change, opID string) (uint64, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail != nil {
		return 0, false, m.fail
	}
	if csn, ok := m.seen[opID]; ok {
		return csn, true, nil
	}
	m.next++
	m.seen[opID] = m.next
	m.applies++
	return m.next, false, nil
}

func (m *fakeMaster) setFail(err error) {
	m.mu.Lock()
	m.fail = err
	m.mu.Unlock()
}

func (m *fakeMaster) applied() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.applies
}

func personAdd(dnStr, sn string) dit.Change {
	d := dn.MustParse(dnStr)
	e := entry.New(d).Put("objectclass", "person").Put("cn", d.String()).Put("sn", sn)
	return dit.Change{Type: dit.ChangeAdd, DN: d, After: e}
}

func subtreeQuery(t *testing.T, filter string) query.Query {
	t.Helper()
	q, err := query.New("", query.ScopeSubtree, filter)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func openTestWriter(t *testing.T, dir string, fwd Forwarder) *Writer {
	t.Helper()
	w, err := Open(Config{Dir: dir, ReplicaID: "r1", Forward: fwd, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestSubmitCommitRetire walks one op through the full lifecycle: submit →
// forward → commit → visible on the overlay → CSN echo → retired, with the
// WAL compacted once nothing is pending.
func TestSubmitCommitRetire(t *testing.T) {
	dir := t.TempDir()
	m := newFakeMaster()
	w := openTestWriter(t, dir, m)
	w.RegisterSource("f0")

	csn, err := w.Submit(personAdd("cn=new,o=xyz", "new"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if csn != 1 {
		t.Fatalf("csn = %d, want 1", csn)
	}

	// Read-your-writes: the pending add joins a matching query's answer.
	q := subtreeQuery(t, "(sn=new)")
	got := w.Overlay(q, nil)
	if len(got) != 1 || got[0].DN().Norm() != dn.MustParse("cn=new,o=xyz").Norm() {
		t.Fatalf("overlay before echo = %v, want the pending add", got)
	}

	// The CSN echoes back down the sync stream: the op retires and the
	// overlay empties.
	w.SetWatermark("f0", csn)
	if n := w.Pending(); n != 0 {
		t.Fatalf("pending after echo = %d, want 0", n)
	}
	if got := w.Overlay(q, nil); len(got) != 0 {
		t.Fatalf("overlay after echo = %v, want empty", got)
	}

	// Everything retired → both journals compacted.
	for _, name := range []string{opsName, stateName} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != 0 {
			t.Fatalf("%s not compacted: %q", name, b)
		}
	}
}

// TestWatermarkMinOverSources pins retirement to the slowest sync source: a
// query may be answered via any stored filter, so an op stays on the
// overlay until every filter's session has synced past its CSN.
func TestWatermarkMinOverSources(t *testing.T) {
	m := newFakeMaster()
	w := openTestWriter(t, t.TempDir(), m)
	w.RegisterSource("f0")
	w.RegisterSource("f1")

	csn, err := w.Submit(personAdd("cn=a,o=xyz", "a"))
	if err != nil {
		t.Fatal(err)
	}
	w.SetWatermark("f0", csn)
	if n := w.Pending(); n != 1 {
		t.Fatalf("pending with one lagging source = %d, want 1", n)
	}
	// A regressed watermark must not retire anything either.
	w.SetWatermark("f1", 0)
	if n := w.Pending(); n != 1 {
		t.Fatalf("pending after regression = %d, want 1", n)
	}
	w.SetWatermark("f1", csn)
	if n := w.Pending(); n != 0 {
		t.Fatalf("pending with all sources past = %d, want 0", n)
	}
}

// TestForwardFailureReplaysExactlyOnce is the crash between journal append
// and forward: the submit returns ErrPending, the reopened writer re-arms
// the op, and the replay reaches the master exactly once.
func TestForwardFailureReplaysExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	m := newFakeMaster()
	m.setFail(errors.New("upstream unreachable"))

	w := openTestWriter(t, dir, m)
	_, err := w.Submit(personAdd("cn=b,o=xyz", "b"))
	if !errors.Is(err, ErrPending) {
		t.Fatalf("Submit with dead upstream = %v, want ErrPending", err)
	}
	if n := w.PendingUncommitted(); n != 1 {
		t.Fatalf("uncommitted = %d, want 1", n)
	}
	w.Close() // crash before the forward ever succeeded

	m.setFail(nil)
	w2 := openTestWriter(t, dir, m)
	if n := w2.PendingUncommitted(); n != 1 {
		t.Fatalf("recovered uncommitted = %d, want 1", n)
	}
	w2.Replay()
	w2.Replay() // a second replay must hit the dedup table, not re-apply
	if got := m.applied(); got != 1 {
		t.Fatalf("master applied %d times, want exactly 1", got)
	}
	if n := w2.PendingUncommitted(); n != 0 {
		t.Fatalf("uncommitted after replay = %d, want 0", n)
	}
}

// TestCrashBetweenCommitAndRetire reopens a WAL holding a committed but
// unretired op: the overlay must re-arm (the CSN has not echoed back yet)
// and the watermark echo must retire it — without a second forward.
func TestCrashBetweenCommitAndRetire(t *testing.T) {
	dir := t.TempDir()
	m := newFakeMaster()
	w := openTestWriter(t, dir, m)
	w.RegisterSource("f0")
	csn, err := w.Submit(personAdd("cn=c,o=xyz", "c"))
	if err != nil {
		t.Fatal(err)
	}
	w.Close() // crash after the commit ack, before the CSN echoed back

	w2 := openTestWriter(t, dir, m)
	w2.RegisterSource("f0")
	if n, u := w2.Pending(), w2.PendingUncommitted(); n != 1 || u != 0 {
		t.Fatalf("recovered pending=%d uncommitted=%d, want 1/0", n, u)
	}
	q := subtreeQuery(t, "(sn=c)")
	if got := w2.Overlay(q, nil); len(got) != 1 {
		t.Fatalf("overlay not re-armed after recovery: %v", got)
	}
	w2.Replay() // must be a no-op for committed ops
	if got := m.applied(); got != 1 {
		t.Fatalf("master applied %d times, want exactly 1", got)
	}
	w2.SetWatermark("f0", csn)
	if n := w2.Pending(); n != 0 {
		t.Fatalf("pending after echo = %d, want 0", n)
	}
}

// TestTornTailRecovery mirrors TestTornCheckpointRecovery for the edge WAL:
// a crash mid-append leaves a partial final block, recovery drops exactly
// that block, repairs the file, and never reuses the lost op's id.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	m := newFakeMaster()
	m.setFail(errors.New("down")) // keep everything uncommitted
	w := openTestWriter(t, dir, m)
	for i := 0; i < 3; i++ {
		_, err := w.Submit(personAdd(fmt.Sprintf("cn=t%d,o=xyz", i), "t"))
		if !errors.Is(err, ErrPending) {
			t.Fatal(err)
		}
	}
	w.Close()

	// Tear the tail: chop the journal mid-way through the final block's
	// header, as a crash inside appendSync would.
	path := filepath.Join(dir, opsName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := strings.LastIndex(string(b), "opid: ") + len("opid: r1")
	if err := os.WriteFile(path, b[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	m.setFail(nil)
	w2 := openTestWriter(t, dir, m)
	if !w2.RecoveredTorn() {
		t.Fatal("RecoveredTorn = false after a torn tail")
	}
	if n := w2.Pending(); n != 2 {
		t.Fatalf("recovered %d ops, want 2 (torn third dropped)", n)
	}
	// The repair rewrote the file: a re-read parses clean.
	w2.Replay()
	if got := m.applied(); got != 2 {
		t.Fatalf("master applied %d, want 2", got)
	}

	// The torn op's id must not be reused: the persisted floor advanced past
	// it before it was minted.
	_, err = w2.Submit(personAdd("cn=t9,o=xyz", "t"))
	if err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	for id := range m.seen {
		seq := strings.TrimPrefix(id, "r1.")
		if seq == "2" {
			m.mu.Unlock()
			t.Fatalf("torn op id r1.2 was reused: %v", m.seen)
		}
	}
	m.mu.Unlock()
}

// TestPermanentErrorAborts pins the doomed-op escape hatch: a forward the
// sequencer definitively refused is aborted — off the overlay, retired in
// the WAL — and the verdict surfaces to the submitter unwrapped.
func TestPermanentErrorAborts(t *testing.T) {
	dir := t.TempDir()
	m := newFakeMaster()
	verdict := errors.New("entry already exists")
	m.setFail(&PermanentError{Err: verdict})
	w := openTestWriter(t, dir, m)

	_, err := w.Submit(personAdd("cn=dup,o=xyz", "dup"))
	if !errors.Is(err, verdict) {
		t.Fatalf("Submit = %v, want the sequencer's verdict", err)
	}
	if errors.Is(err, ErrPending) {
		t.Fatal("a permanent refusal must not report ErrPending")
	}
	if n := w.Pending(); n != 0 {
		t.Fatalf("aborted op still pending: %d", n)
	}
	w.Close()
	// The abort was durable: a reopened writer replays nothing.
	w2 := openTestWriter(t, dir, m)
	if n := w2.Pending(); n != 0 {
		t.Fatalf("aborted op resurrected on reopen: %d pending", n)
	}
}

// TestAdmitterGates checks the containment gate: adds must land inside a
// spec, targeted ops must hit locally held entries.
func TestAdmitterGates(t *testing.T) {
	held := entry.New(dn.MustParse("cn=held,o=xyz")).Put("objectclass", "person").Put("sn", "held")
	lookup := func(d dn.DN) (*entry.Entry, bool) {
		if d.Norm() == held.DN().Norm() {
			return held, true
		}
		return nil, false
	}
	admit := Admitter([]query.Query{subtreeQuery(t, "(sn=held)")}, lookup)

	if err := admit(dit.Change{Type: dit.ChangeDelete, DN: held.DN()}); err != nil {
		t.Fatalf("delete of held entry rejected: %v", err)
	}
	if err := admit(dit.Change{Type: dit.ChangeDelete, DN: dn.MustParse("cn=alien,o=xyz")}); err == nil {
		t.Fatal("delete of unheld entry admitted")
	}
	if err := admit(personAdd("cn=in,o=xyz", "held")); err != nil {
		t.Fatalf("covered add rejected: %v", err)
	}
	if err := admit(personAdd("cn=out,o=xyz", "other")); err == nil {
		t.Fatal("uncovered add admitted")
	}
}

// TestOverlayProjection checks the three pending-image effects on an
// answer: tombstones remove, matching images replace, and a pending rename
// that carries an entry out of the query's reach removes it.
func TestOverlayProjection(t *testing.T) {
	m := newFakeMaster()
	store := map[string]*entry.Entry{}
	base := entry.New(dn.MustParse("cn=m,o=xyz")).Put("objectclass", "person").Put("sn", "m").Put("mail", "old@x")
	store[base.DN().Norm()] = base
	lookup := func(d dn.DN) (*entry.Entry, bool) {
		e, ok := store[d.Norm()]
		return e, ok
	}
	w, err := Open(Config{Dir: t.TempDir(), ReplicaID: "r1", Forward: m, Lookup: lookup})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := w.Submit(dit.Change{Type: dit.ChangeModify, DN: base.DN(),
		Mods: []dit.Mod{{Op: dit.ModReplace, Attr: "mail", Values: []string{"new@x"}}}}); err != nil {
		t.Fatal(err)
	}
	q := subtreeQuery(t, "(sn=m)")
	got := w.Overlay(q, []*entry.Entry{base})
	if len(got) != 1 || got[0].First("mail") != "new@x" {
		t.Fatalf("modify overlay = %v, want the pending image with mail=new@x", got)
	}

	// A pending rename to a name outside the query's filter removes the
	// synced entry from the answer (the image itself no longer matches).
	if _, err := w.Submit(dit.Change{Type: dit.ChangeModifyDN, DN: base.DN(),
		NewDN: dn.MustParse("cn=renamed,o=xyz")}); err != nil {
		t.Fatal(err)
	}
	got = w.Overlay(subtreeQuery(t, "(cn=m)"), []*entry.Entry{base})
	if len(got) != 0 {
		t.Fatalf("rename overlay = %v, want the old name gone", got)
	}
}

// BenchmarkEdgeWrite measures the accepted-write fast path: admit, WAL
// append+fsync, overlay projection, in-memory forward, retirement.
func BenchmarkEdgeWrite(b *testing.B) {
	m := newFakeMaster()
	w, err := Open(Config{Dir: b.TempDir(), ReplicaID: "r1", Forward: m})
	if err != nil {
		b.Fatal(err)
	}
	w.RegisterSource("f0")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csn, err := w.Submit(personAdd(fmt.Sprintf("cn=b%d,o=xyz", i), "b"))
		if err != nil {
			b.Fatal(err)
		}
		w.SetWatermark("f0", csn) // immediate echo: steady-state retirement
	}
}
