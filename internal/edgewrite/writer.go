package edgewrite

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/metrics"
)

// Forwarder carries an accepted edge write up the cascade to the CSN
// sequencer. Forward blocks for one prepare→commit exchange and returns the
// master-assigned CSN; duplicate reports that the master had already
// applied this op id (a replayed forward after a crash or lost response).
// Implementations retry transient transport failures internally; a returned
// error leaves the op journaled and the background replay loop re-forwards
// it, so accepted ops reach the master at-least-once and the master's dedup
// makes them exactly-once.
type Forwarder interface {
	Forward(c dit.Change, opID string) (csn uint64, duplicate bool, err error)
}

// ForwardFunc adapts a function to the Forwarder interface.
type ForwardFunc func(c dit.Change, opID string) (uint64, bool, error)

// Forward implements Forwarder.
func (f ForwardFunc) Forward(c dit.Change, opID string) (uint64, bool, error) { return f(c, opID) }

var (
	// ErrRejected marks a write refused by the containment gate: this
	// replica does not track the target, so the client should follow the
	// referral to the master.
	ErrRejected = errors.New("edge write not accepted at this replica")
	// ErrPending marks a write that is durably journaled here but whose
	// commit at the master is not yet confirmed; the replay loop keeps
	// forwarding it.
	ErrPending = errors.New("edge write journaled, upstream commit pending")
)

// PermanentError marks a forward failure that retrying cannot fix: the
// sequencer evaluated the op and refused it (e.g. the entry already exists
// at the master). The writer aborts the op — retired in the WAL, dropped
// from the overlay — and surfaces the wrapped cause to the submitter;
// without this classification a doomed op would replay forever.
type PermanentError struct{ Err error }

func (e *PermanentError) Error() string { return e.Err.Error() }

// Unwrap exposes the sequencer's verdict to errors.Is/As.
func (e *PermanentError) Unwrap() error { return e.Err }

// Config configures an edge-write Writer.
type Config struct {
	// Dir is the durable home of the per-replica WAL.
	Dir string
	// ReplicaID prefixes op ids (persisted in the WAL's meta file; a random
	// id is minted for a fresh directory when empty).
	ReplicaID string
	// Forward is the upstream commit path (required).
	Forward Forwarder
	// Admit gates ops before they are journaled; nil accepts everything.
	// Rejections surface as ErrRejected.
	Admit func(dit.Change) error
	// Lookup resolves a DN in the replica's content store, supplying base
	// images for modify/rename overlays.
	Lookup func(dn.DN) (*entry.Entry, bool)
	// Counters receives lifecycle metrics (optional).
	Counters *metrics.WriteCounters
	// ReplayInterval is the background re-forward cadence for journaled but
	// uncommitted ops (default 2s).
	ReplayInterval time.Duration
	// Logf receives diagnostics (optional).
	Logf func(format string, args ...any)
}

// pendingOp is one accepted write between journal append and retirement.
type pendingOp struct {
	id     string
	change dit.Change
	images []overlayImage

	committed bool
	csn       uint64
	inFlight  bool // a forward for this op is on the wire right now
}

// Writer accepts edge writes at a replica: admit → WAL append (fsync) →
// overlay → forward upstream → commit → retire when the CSN echoes back.
type Writer struct {
	cfg Config
	wal *wal
	c   *metrics.WriteCounters

	mu      sync.Mutex
	pending []*pendingOp
	sources map[string]uint64
	started bool
	stop    chan struct{}
	done    chan struct{}
}

// Open opens (or creates) the WAL in cfg.Dir and re-arms the pending set: a
// journaled op without a commit record is queued for re-forwarding, a
// committed-but-unretired op goes back on the read overlay to await its CSN
// echo. Call Start to run the background replay loop.
func Open(cfg Config) (*Writer, error) {
	if cfg.Forward == nil {
		return nil, fmt.Errorf("edgewrite: Config.Forward is required")
	}
	wl, err := openWAL(cfg.Dir, cfg.ReplicaID)
	if err != nil {
		return nil, err
	}
	c := cfg.Counters
	if c == nil {
		c = &metrics.WriteCounters{}
	}
	w := &Writer{cfg: cfg, wal: wl, c: c, sources: make(map[string]uint64)}
	for _, op := range wl.recovered() {
		images, err := computeImages(op.Change, cfg.Lookup)
		if err != nil {
			// The journaled op no longer projects onto local content (e.g.
			// the base entry vanished before the crash was recovered); keep
			// forwarding it — the master is the authority — just without a
			// local overlay.
			images = nil
		}
		w.pending = append(w.pending, &pendingOp{
			id: op.ID, change: op.Change, images: images,
			committed: op.Committed, csn: op.CSN,
		})
	}
	c.ObservePending(len(w.pending))
	return w, nil
}

// ReplicaID returns the id prefixing this replica's op ids.
func (w *Writer) ReplicaID() string { return w.wal.replicaID }

// RecoveredTorn reports whether opening the WAL dropped a torn tail.
func (w *Writer) RecoveredTorn() bool { return w.wal.torn }

// Pending returns the number of ops on the overlay (accepted, not retired).
func (w *Writer) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pending)
}

// PendingUncommitted returns the number of accepted ops still awaiting
// their upstream commit.
func (w *Writer) PendingUncommitted() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, p := range w.pending {
		if !p.committed {
			n++
		}
	}
	return n
}

// Submit accepts one edge write: the op is admitted, durably journaled,
// projected onto the read overlay, and forwarded upstream. On success the
// master-assigned CSN is returned and the op stays pending-visible until
// that CSN echoes back down the sync stream. A forward failure returns
// ErrPending — the write is durable here and will be replayed — while an
// admission failure returns ErrRejected and journals nothing.
func (w *Writer) Submit(c dit.Change) (uint64, error) {
	if w.cfg.Admit != nil {
		if err := w.cfg.Admit(c); err != nil {
			w.c.Rejected.Add(1)
			return 0, fmt.Errorf("%w: %v", ErrRejected, err)
		}
	}
	images, err := computeImages(c, w.cfg.Lookup)
	if err != nil {
		w.c.Rejected.Add(1)
		return 0, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	op, err := w.wal.append(c)
	if err != nil {
		return 0, err
	}
	w.c.Accepted.Add(1)
	p := &pendingOp{id: op.ID, change: c, images: images, inFlight: true}
	w.mu.Lock()
	w.pending = append(w.pending, p)
	w.c.ObservePending(len(w.pending))
	w.mu.Unlock()

	csn, err := w.forward(p)
	if err != nil {
		var pe *PermanentError
		if errors.As(err, &pe) {
			return 0, pe.Err
		}
		return 0, fmt.Errorf("%w: %v", ErrPending, err)
	}
	return csn, nil
}

// forward runs one upstream exchange for p and records the commit.
func (w *Writer) forward(p *pendingOp) (uint64, error) {
	w.c.Forwarded.Add(1)
	csn, _, err := w.cfg.Forward.Forward(p.change, p.id)
	w.mu.Lock()
	p.inFlight = false
	w.mu.Unlock()
	if err != nil {
		var pe *PermanentError
		if errors.As(err, &pe) {
			w.abort(p)
		}
		return 0, err
	}
	if err := w.wal.markCommitted(p.id, csn); err != nil {
		return 0, err
	}
	w.mu.Lock()
	p.committed = true
	p.csn = csn
	w.mu.Unlock()
	w.c.Committed.Add(1)
	w.retireEligible()
	return csn, nil
}

// abort drops a permanently refused op: off the overlay, retired in the
// WAL (the op id is burned either way — the sequencer saw it).
func (w *Writer) abort(p *pendingOp) {
	w.mu.Lock()
	keep := w.pending[:0]
	for _, q := range w.pending {
		if q != p {
			keep = append(keep, q)
		}
	}
	w.pending = keep
	w.c.ObservePending(len(w.pending))
	w.mu.Unlock()
	if err := w.wal.markRetired(p.id); err != nil && w.cfg.Logf != nil {
		w.cfg.Logf("edgewrite: abort %s: %v", p.id, err)
	}
	w.c.Rejected.Add(1)
}

// RegisterSource declares a sync source (one per stored filter's
// supervisor) whose watermark gates retirement. Until every registered
// source has reported a watermark at or past an op's CSN, the op stays on
// the overlay: a query answered via any stored filter only reflects that
// filter's sync position, so the most conservative source governs.
func (w *Writer) RegisterSource(name string) {
	w.mu.Lock()
	if _, ok := w.sources[name]; !ok {
		w.sources[name] = 0
	}
	w.mu.Unlock()
}

// SetWatermark records a source's latest synced master CSN and retires
// pending ops the slowest source has caught up to. Watermarks may regress
// (a supervisor falling back to a lagging upstream re-reports from the new
// session); retirement only ever consumes the current minimum.
func (w *Writer) SetWatermark(source string, csn uint64) {
	w.mu.Lock()
	w.sources[source] = csn
	w.mu.Unlock()
	w.retireEligible()
}

// watermarkLocked is the retirement bound: the minimum over all registered
// sources (0 when none have been registered — nothing retires).
func (w *Writer) watermarkLocked() uint64 {
	if len(w.sources) == 0 {
		return 0
	}
	min := uint64(math.MaxUint64)
	for _, v := range w.sources {
		if v < min {
			min = v
		}
	}
	return min
}

// retireEligible drops committed ops whose CSN every source has synced past.
func (w *Writer) retireEligible() {
	w.mu.Lock()
	wm := w.watermarkLocked()
	var retire []*pendingOp
	keep := w.pending[:0]
	for _, p := range w.pending {
		if p.committed && p.csn <= wm {
			retire = append(retire, p)
		} else {
			keep = append(keep, p)
		}
	}
	w.pending = keep
	w.c.ObservePending(len(w.pending))
	w.mu.Unlock()
	for _, p := range retire {
		if err := w.wal.markRetired(p.id); err != nil && w.cfg.Logf != nil {
			w.cfg.Logf("edgewrite: retire %s: %v", p.id, err)
		}
		w.c.Retired.Add(1)
	}
}

// Replay re-forwards every journaled op whose upstream commit is
// unconfirmed — crash recovery and forward-failure retry share this path.
// The master dedups by op id, so replaying an op whose commit response was
// lost is answered from the dedup table, not applied twice.
func (w *Writer) Replay() {
	w.mu.Lock()
	var todo []*pendingOp
	for _, p := range w.pending {
		if !p.committed && !p.inFlight {
			p.inFlight = true
			todo = append(todo, p)
		}
	}
	w.mu.Unlock()
	for _, p := range todo {
		w.c.WALReplays.Add(1)
		if _, err := w.forward(p); err != nil && w.cfg.Logf != nil {
			w.cfg.Logf("edgewrite: replay %s: %v", p.id, err)
		}
	}
}

// Start runs the background replay loop until Close.
func (w *Writer) Start() {
	w.mu.Lock()
	if w.started {
		w.mu.Unlock()
		return
	}
	w.started = true
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	w.mu.Unlock()
	go w.replayLoop()
}

func (w *Writer) replayLoop() {
	defer close(w.done)
	iv := w.cfg.ReplayInterval
	if iv <= 0 {
		iv = 2 * time.Second
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.Replay()
		}
	}
}

// Close stops the replay loop. The WAL needs no teardown: every append was
// fsynced, and a reopened Writer resumes from it.
func (w *Writer) Close() {
	w.mu.Lock()
	started := w.started
	w.started = false
	stop, done := w.stop, w.done
	w.mu.Unlock()
	if started {
		close(stop)
		<-done
	}
}
