// Package edgewrite gives replicas a write path: an LDAP update accepted at
// a leaf or mid-tier replica is journaled to a durable per-replica
// write-ahead log, forwarded up the cascade to the master (the single CSN
// sequencer) in a prepare→commit exchange, and held visible-locally-pending
// — an overlay on FilterReplica reads — until its assigned CSN flows back
// down the ReSync stream, at which point the op is retired. The writing
// client gets read-your-writes; everyone else still receives the minimal
// update sets of equation (3).
//
// Durability follows the persist.Dir journal idioms: append-only files with
// fsync after each record, torn-tail recovery that drops exactly the final
// partial record and repairs the file, and atomic whole-file rewrites via
// temp file + rename.
package edgewrite

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"filterdir/internal/dit"
	"filterdir/internal/ldif"
	"filterdir/internal/persist"
)

const (
	opsName   = "ops.wal"
	stateName = "state.wal"
	metaName  = "meta.json"

	// floorStride is how far the durable sequence floor is advanced ahead of
	// use: op ids must never be reused (the master dedups by id), so after a
	// crash the next id starts at the persisted floor even if later appends
	// were lost with the torn tail.
	floorStride = 1024
)

// walOp is one journaled edge write and its lifecycle state.
type walOp struct {
	ID     string
	Seq    uint64
	Change dit.Change

	// Committed is set once the master has applied the op and assigned a
	// CSN; an uncommitted op is re-forwarded on recovery (the master's
	// dedup-by-id makes the replay exactly-once).
	Committed bool
	CSN       uint64
	Retired   bool
}

// wal is the durable edge-write journal: ops.wal holds one block per
// accepted op (an "opid:" header line followed by a standard LDIF change
// record), state.wal holds the commit/retire transitions, and meta.json
// pins the replica id and the op-sequence floor across compactions.
type wal struct {
	dir       string
	replicaID string

	mu      sync.Mutex
	ops     []*walOp
	byID    map[string]*walOp
	nextSeq uint64
	floor   uint64
	torn    bool // a torn tail was dropped during recovery
}

type walMeta struct {
	ReplicaID string `json:"replica_id"`
	Floor     uint64 `json:"floor"`
}

// openWAL opens (or creates) the edge-write journal in dir. replicaID
// prefixes op ids; when empty, the id persisted in meta.json is reused, or
// a random one minted for a fresh directory.
func openWAL(dir, replicaID string) (*wal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &wal{dir: dir, byID: make(map[string]*walOp)}

	var meta walMeta
	if b, err := os.ReadFile(filepath.Join(dir, metaName)); err == nil {
		if err := json.Unmarshal(b, &meta); err != nil {
			return nil, fmt.Errorf("edgewrite meta: %w", err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	switch {
	case replicaID != "":
		w.replicaID = replicaID
	case meta.ReplicaID != "":
		w.replicaID = meta.ReplicaID
	default:
		var buf [6]byte
		if _, err := rand.Read(buf[:]); err != nil {
			return nil, err
		}
		w.replicaID = "r" + hex.EncodeToString(buf[:])
	}
	w.floor = meta.Floor
	w.nextSeq = meta.Floor

	if err := w.loadOps(); err != nil {
		return nil, err
	}
	if err := w.loadState(); err != nil {
		return nil, err
	}
	// Advance the durable floor past every id we might mint before the next
	// persisted bump, so ids stay unique across crashes.
	if err := w.bumpFloor(w.nextSeq + floorStride); err != nil {
		return nil, err
	}
	return w, nil
}

// loadOps replays ops.wal, repairing a torn tail in place.
func (w *wal) loadOps() error {
	path := filepath.Join(w.dir, opsName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	blocks := splitBlocks(string(data))
	for i, block := range blocks {
		op, perr := parseBlock(block)
		if perr != nil {
			if i == len(blocks)-1 {
				// A crash mid-append leaves exactly one partial final block:
				// drop it and repair the file so later appends stay
				// parseable. Earlier corruption is real and fatal.
				w.torn = true
				if err := w.rewriteOps(); err != nil {
					return fmt.Errorf("repair torn edge-write journal: %w", err)
				}
				break
			}
			return fmt.Errorf("edge-write journal block %d: %w", i, perr)
		}
		w.ops = append(w.ops, op)
		w.byID[op.ID] = op
		if op.Seq >= w.nextSeq {
			w.nextSeq = op.Seq + 1
		}
	}
	return nil
}

// loadState folds state.wal transitions over the loaded ops. A partial
// final line (torn append) is dropped; transitions for compacted ops are
// ignored.
func (w *wal) loadState() error {
	data, err := os.ReadFile(filepath.Join(w.dir, stateName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if line == "" {
			continue
		}
		// The final line is torn unless the file ends in a newline (in which
		// case Split leaves a trailing "" element).
		last := i == len(lines)-1
		fields := strings.Fields(line)
		op := (*walOp)(nil)
		if len(fields) >= 2 {
			op = w.byID[fields[0]]
		}
		switch {
		case len(fields) == 3 && fields[1] == "commit":
			csn, perr := strconv.ParseUint(fields[2], 10, 64)
			if perr != nil {
				if last {
					w.torn = true
					continue
				}
				return fmt.Errorf("edge-write state line %d: %w", i, perr)
			}
			if op != nil {
				op.Committed = true
				op.CSN = csn
			}
		case len(fields) == 2 && fields[1] == "retire":
			if op != nil {
				op.Retired = true
			}
		default:
			if last {
				w.torn = true
				continue
			}
			return fmt.Errorf("edge-write state line %d: malformed %q", i, line)
		}
	}
	return nil
}

// recovered returns the non-retired ops in append order — the pending set a
// restarted replica re-arms (uncommitted ops are re-forwarded; committed
// ones await their CSN echo).
func (w *wal) recovered() []*walOp {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []*walOp
	for _, op := range w.ops {
		if !op.Retired {
			out = append(out, op)
		}
	}
	return out
}

// append journals a new op durably and returns it. The block is written and
// fsynced before the op is registered: a crash after return cannot lose the
// accepted write.
func (w *wal) append(c dit.Change) (*walOp, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	seq := w.nextSeq
	if seq+floorStride/2 > w.floor {
		if err := w.bumpFloor(seq + floorStride); err != nil {
			return nil, err
		}
	}
	op := &walOp{ID: w.replicaID + "." + strconv.FormatUint(seq, 10), Seq: seq, Change: c}
	var buf bytes.Buffer
	buf.WriteString("opid: " + op.ID + "\n")
	if err := ldif.WriteChanges(&buf, c); err != nil {
		return nil, err
	}
	buf.WriteString("\n")
	if err := appendSync(filepath.Join(w.dir, opsName), buf.Bytes()); err != nil {
		return nil, err
	}
	w.nextSeq = seq + 1
	w.ops = append(w.ops, op)
	w.byID[op.ID] = op
	return op, nil
}

// markCommitted durably records the master-assigned CSN for an op.
func (w *wal) markCommitted(id string, csn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	op, ok := w.byID[id]
	if !ok {
		return fmt.Errorf("edge-write op %q not in WAL", id)
	}
	if err := appendSync(filepath.Join(w.dir, stateName),
		[]byte(id+" commit "+strconv.FormatUint(csn, 10)+"\n")); err != nil {
		return err
	}
	op.Committed = true
	op.CSN = csn
	return nil
}

// markRetired durably records that an op's CSN echoed back down the sync
// stream; when every journaled op is retired the WAL is compacted.
func (w *wal) markRetired(id string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	op, ok := w.byID[id]
	if !ok {
		return fmt.Errorf("edge-write op %q not in WAL", id)
	}
	if err := appendSync(filepath.Join(w.dir, stateName), []byte(id+" retire\n")); err != nil {
		return err
	}
	op.Retired = true
	for _, o := range w.ops {
		if !o.Retired {
			return nil
		}
	}
	return w.compactLocked()
}

// compactLocked truncates both journal files once every op is retired. The
// sequence floor was already persisted ahead of every minted id, so ids
// stay unique. ops.wal is cleared before state.wal: a crash between the two
// leaves state lines naming absent ops, which recovery ignores; the reverse
// order would resurrect retired ops as uncommitted and replay them.
func (w *wal) compactLocked() error {
	if err := os.WriteFile(filepath.Join(w.dir, opsName), nil, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(w.dir, stateName), nil, 0o644); err != nil {
		return err
	}
	w.ops = w.ops[:0]
	w.byID = make(map[string]*walOp)
	return nil
}

// bumpFloor persists a new op-sequence floor when it advances. Callers hold
// w.mu (or are constructing the wal).
func (w *wal) bumpFloor(floor uint64) error {
	if floor <= w.floor {
		return nil
	}
	err := persist.WriteAtomic(filepath.Join(w.dir, metaName), func(out io.Writer) error {
		b, err := json.Marshal(walMeta{ReplicaID: w.replicaID, Floor: floor})
		if err != nil {
			return err
		}
		_, err = out.Write(append(b, '\n'))
		return err
	})
	if err != nil {
		return err
	}
	w.floor = floor
	return nil
}

// rewriteOps atomically rewrites ops.wal with only the complete blocks.
func (w *wal) rewriteOps() error {
	ops := w.ops
	return persist.WriteAtomic(filepath.Join(w.dir, opsName), func(out io.Writer) error {
		bw := bufio.NewWriter(out)
		for _, op := range ops {
			bw.WriteString("opid: " + op.ID + "\n")
			if err := ldif.WriteChanges(bw, op.Change); err != nil {
				return err
			}
			bw.WriteString("\n")
		}
		return bw.Flush()
	})
}

// appendSync appends data to path and fsyncs — the same durability contract
// as persist.Dir.AppendChanges.
func appendSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Sync()
}

// splitBlocks splits the ops journal into blank-line-separated blocks.
func splitBlocks(data string) []string {
	var blocks []string
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			blocks = append(blocks, strings.Join(cur, "\n"))
			cur = cur[:0]
		}
	}
	for _, line := range strings.Split(data, "\n") {
		if strings.TrimRight(line, "\r") == "" {
			flush()
			continue
		}
		cur = append(cur, line)
	}
	// A trailing block without its blank-line terminator is an interrupted
	// append; keep it so the parser can classify it as torn.
	flush()
	return blocks
}

// parseBlock parses one "opid:" header plus LDIF change record block.
func parseBlock(block string) (*walOp, error) {
	nl := strings.IndexByte(block, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("block lacks a change record")
	}
	header, rest := block[:nl], block[nl+1:]
	id, ok := strings.CutPrefix(header, "opid: ")
	if !ok || id == "" {
		return nil, fmt.Errorf("block lacks an opid header")
	}
	dot := strings.LastIndexByte(id, '.')
	if dot < 0 {
		return nil, fmt.Errorf("malformed opid %q", id)
	}
	seq, err := strconv.ParseUint(id[dot+1:], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("malformed opid %q: %w", id, err)
	}
	recs, err := ldif.ReadChanges(strings.NewReader(rest))
	if err != nil {
		return nil, err
	}
	if len(recs) != 1 {
		return nil, fmt.Errorf("block has %d change records, want 1", len(recs))
	}
	c, err := recs[0].AsChange()
	if err != nil {
		return nil, err
	}
	return &walOp{ID: id, Seq: seq, Change: c}, nil
}
