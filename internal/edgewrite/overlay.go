package edgewrite

import (
	"fmt"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/query"
)

// overlayImage is the local effect of one pending op on one DN: the entry
// image the op produces there, or a tombstone (nil entry) where the op
// removes one. Images are computed at accept time against the replica's
// current content, so reads need no store access to project the pending op.
type overlayImage struct {
	d dn.DN
	e *entry.Entry // nil = tombstone
}

// computeImages projects a change into its overlay images. lookup resolves
// the current local image of a DN (the replica's content store); ops whose
// base entry is not held locally yield what can be known without it (a
// delete still tombstones; a modify of an unheld entry yields nothing — the
// containment gate only admits such ops when the replica holds the target,
// so this is a recovery-time corner, not the steady state).
func computeImages(c dit.Change, lookup func(dn.DN) (*entry.Entry, bool)) ([]overlayImage, error) {
	get := func(d dn.DN) (*entry.Entry, bool) {
		if lookup == nil {
			return nil, false
		}
		return lookup(d)
	}
	switch c.Type {
	case dit.ChangeAdd:
		if c.After == nil {
			return nil, fmt.Errorf("add %q lacks the entry", c.DN.String())
		}
		return []overlayImage{{d: c.DN, e: c.After.Clone()}}, nil
	case dit.ChangeDelete:
		return []overlayImage{{d: c.DN}}, nil
	case dit.ChangeModify:
		base, ok := get(c.DN)
		if !ok {
			return nil, nil
		}
		after, err := applyMods(base, c.Mods)
		if err != nil {
			return nil, err
		}
		return []overlayImage{{d: c.DN, e: after}}, nil
	case dit.ChangeModifyDN:
		images := []overlayImage{{d: c.DN}} // tombstone at the old name
		if base, ok := get(c.DN); ok {
			moved := base.Clone()
			moved.SetDN(c.NewDN)
			if leaf, ok := c.NewDN.Leaf(); ok {
				moved.Put(leaf.Attr, leaf.Value)
			}
			images = append(images, overlayImage{d: c.NewDN, e: moved})
		}
		return images, nil
	default:
		return nil, fmt.Errorf("unknown change type %v", c.Type)
	}
}

// applyMods mirrors dit.Store.Modify's attribute semantics on a detached
// entry image.
func applyMods(base *entry.Entry, mods []dit.Mod) (*entry.Entry, error) {
	after := base.Clone()
	for _, m := range mods {
		switch m.Op {
		case dit.ModAdd:
			after.Add(m.Attr, m.Values...)
		case dit.ModReplace:
			if len(m.Values) == 0 {
				if after.Has(m.Attr) {
					_ = after.DeleteValues(m.Attr)
				}
			} else {
				after.Put(m.Attr, m.Values...)
			}
		case dit.ModDelete:
			if err := after.DeleteValues(m.Attr, m.Values...); err != nil {
				return nil, fmt.Errorf("modify %q: %w", base.DN().String(), err)
			}
		default:
			return nil, fmt.Errorf("unknown mod op %d", m.Op)
		}
	}
	return after, nil
}

// Overlay projects the pending ops onto a query answer, in submit order:
// tombstoned entries disappear, pending images that match the query replace
// or join the synced result, and pending images that moved an entry out of
// the query's reach remove it. Plug it into FilterReplica.SetReadOverlay to
// give the writing client read-your-writes from submit until the op's CSN
// echoes back down the sync stream.
func (w *Writer) Overlay(q query.Query, entries []*entry.Entry) []*entry.Entry {
	w.mu.Lock()
	var images []overlayImage
	for _, p := range w.pending {
		images = append(images, p.images...)
	}
	w.mu.Unlock()
	if len(images) == 0 {
		return entries
	}

	nq := q.Normalize()
	out := append([]*entry.Entry(nil), entries...)
	remove := func(norm string) {
		for i, e := range out {
			if e.DN().Norm() == norm {
				out = append(out[:i], out[i+1:]...)
				return
			}
		}
	}
	for _, img := range images {
		norm := img.d.Norm()
		if img.e == nil {
			remove(norm)
			continue
		}
		if nq.InScope(img.d) && (nq.Filter == nil || nq.Filter.Matches(img.e)) {
			sel := img.e.Select(nq.Attrs)
			replaced := false
			for i, e := range out {
				if e.DN().Norm() == norm {
					out[i] = sel
					replaced = true
					break
				}
			}
			if !replaced {
				out = append(out, sel)
			}
		} else {
			// The pending op carries the entry out of this query's reach.
			remove(norm)
		}
	}
	return out
}
