package chaos

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("drop-every=40,refuse-every=5,latency=1ms..5ms,stall-every=100,stall-for=50ms,torn-every=200,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{
		Seed: 7, DropEveryNOps: 40, RefuseEveryNthConn: 5,
		LatencyMin: time.Millisecond, LatencyMax: 5 * time.Millisecond,
		StallEveryNOps: 100, StallFor: 50 * time.Millisecond,
		TornWriteEveryNOps: 200,
	}
	if p != want {
		t.Errorf("ParsePlan = %+v, want %+v", p, want)
	}
	if !p.Active() {
		t.Error("plan should be active")
	}

	if p, err := ParsePlan(""); err != nil || p.Active() {
		t.Errorf("empty plan: %+v, %v", p, err)
	}
	for _, bad := range []string{"drop-every", "bogus=1", "latency=5ms..1ms", "drop-every=x"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) succeeded", bad)
		}
	}
}

// pipePair builds an injected server-side conn and its client peer.
func pipePair(t *testing.T, inj *Injector) (faulted net.Conn, peer net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	wrapped := inj.Listener(ln)
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := wrapped.Accept()
		ch <- accepted{c, err}
	}()
	peer, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	t.Cleanup(func() { _ = a.c.Close(); _ = peer.Close() })
	return a.c, peer
}

func TestDropEveryNOps(t *testing.T) {
	inj := New(Plan{DropEveryNOps: 3})
	server, peer := pipePair(t, inj)
	go func() {
		for i := 0; i < 10; i++ {
			if _, err := peer.Write([]byte("x")); err != nil {
				return
			}
		}
	}()
	buf := make([]byte, 1)
	var err error
	reads := 0
	for ; reads < 10; reads++ {
		if _, err = server.Read(buf); err != nil {
			break
		}
	}
	if reads != 2 {
		t.Errorf("survived %d reads before drop, want 2", reads)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("drop error = %v, want ErrInjected", err)
	}
	if s := inj.Stats(); s.Drops != 1 {
		t.Errorf("drops = %d, want 1", s.Drops)
	}
}

func TestTornWrite(t *testing.T) {
	inj := New(Plan{TornWriteEveryNOps: 1})
	server, peer := pipePair(t, inj)
	n, err := server.Write([]byte("hello world!"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write error = %v, want ErrInjected", err)
	}
	if n != 6 {
		t.Errorf("torn write delivered %d bytes, want 6", n)
	}
	got, _ := io.ReadAll(peer)
	if string(got) != "hello " {
		t.Errorf("peer received %q, want %q", got, "hello ")
	}
}

func TestRefuseEveryNthConn(t *testing.T) {
	inj := New(Plan{RefuseEveryNthConn: 2})
	dial := inj.Dial(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			_ = c.Close()
		}
	}()
	refused := 0
	for i := 0; i < 4; i++ {
		c, err := dial(ln.Addr().String(), time.Second)
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("dial %d: %v", i, err)
			}
			refused++
			continue
		}
		_ = c.Close()
	}
	if refused != 2 {
		t.Errorf("refused %d of 4 dials, want 2", refused)
	}
}

func TestRefuseForWindow(t *testing.T) {
	inj := New(Plan{})
	dial := inj.Dial(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	inj.RefuseFor(time.Hour)
	if _, err := dial(ln.Addr().String(), time.Second); !errors.Is(err, ErrInjected) {
		t.Errorf("dial during refuse window = %v, want ErrInjected", err)
	}
	inj.RefuseFor(0)
	c, err := dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Errorf("dial after refuse window: %v", err)
	} else {
		_ = c.Close()
	}
}

func TestLatencyDeterministicPerSeed(t *testing.T) {
	judge := func(seed int64) []time.Duration {
		inj := New(Plan{Seed: seed, LatencyMin: time.Microsecond, LatencyMax: time.Millisecond})
		var out []time.Duration
		for i := 0; i < 8; i++ {
			out = append(out, inj.judge(false).delay)
		}
		return out
	}
	a, b := judge(42), judge(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %s vs %s", i, a[i], b[i])
		}
	}
}
