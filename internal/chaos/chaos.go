// Package chaos is a fault-injection transport layer: a net.Listener /
// net.Conn wrapper that severs connections, stalls or delays I/O, tears
// writes mid-PDU and refuses new connections according to a seeded,
// deterministic plan. It sits between ldapnet and the real TCP sockets on
// either side (the server wraps its listener, the client wraps its dial
// hook), so replication code can be soak-tested against realistic failure
// — in -race tests and via `ldapmaster -chaos`.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected marks every failure produced by this package, so tests can
// tell injected faults from real ones.
var ErrInjected = errors.New("chaos: injected fault")

// Plan configures which faults an Injector produces. Counters are global
// across all connections of the injector, so "every Nth" is deterministic
// for a given seed and operation sequence. The zero Plan injects nothing.
type Plan struct {
	// Seed drives latency jitter; plans with equal seeds and equal
	// operation sequences inject identical faults.
	Seed int64

	// DropEveryNOps severs the active connection on every Nth I/O
	// operation (reads and writes both count).
	DropEveryNOps int
	// RefuseEveryNthConn refuses every Nth new connection (accept-side:
	// closed immediately; dial-side: a dial error).
	RefuseEveryNthConn int
	// LatencyMin/LatencyMax delay each I/O operation by a uniform random
	// duration in [min, max].
	LatencyMin, LatencyMax time.Duration
	// StallEveryNOps freezes every Nth I/O operation for StallFor,
	// simulating a hung peer rather than a dead one.
	StallEveryNOps int
	StallFor       time.Duration
	// TornWriteEveryNOps delivers only a prefix of every Nth write and
	// then severs the connection, leaving a half-encoded PDU on the wire.
	TornWriteEveryNOps int
}

// Active reports whether the plan injects any fault at all.
func (p Plan) Active() bool {
	return p.DropEveryNOps > 0 || p.RefuseEveryNthConn > 0 ||
		p.LatencyMax > 0 || p.StallEveryNOps > 0 || p.TornWriteEveryNOps > 0
}

// ParsePlan parses the compact flag syntax used by `ldapmaster -chaos`:
// comma-separated key=value pairs, e.g.
//
//	drop-every=40,refuse-every=5,latency=1ms..5ms,stall-every=100,stall-for=50ms,torn-every=200,seed=7
func ParsePlan(s string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return p, fmt.Errorf("chaos plan: %q is not key=value", part)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop-every":
			p.DropEveryNOps, err = strconv.Atoi(val)
		case "refuse-every":
			p.RefuseEveryNthConn, err = strconv.Atoi(val)
		case "latency":
			lo, hi, found := strings.Cut(val, "..")
			if !found {
				hi = lo
			}
			if p.LatencyMin, err = time.ParseDuration(lo); err == nil {
				p.LatencyMax, err = time.ParseDuration(hi)
			}
		case "stall-every":
			p.StallEveryNOps, err = strconv.Atoi(val)
		case "stall-for":
			p.StallFor, err = time.ParseDuration(val)
		case "torn-every":
			p.TornWriteEveryNOps, err = strconv.Atoi(val)
		default:
			return p, fmt.Errorf("chaos plan: unknown key %q", key)
		}
		if err != nil {
			return p, fmt.Errorf("chaos plan: %s: %v", key, err)
		}
	}
	if p.LatencyMax < p.LatencyMin {
		return p, fmt.Errorf("chaos plan: latency max %s < min %s", p.LatencyMax, p.LatencyMin)
	}
	return p, nil
}

// Stats counts the faults an injector has produced.
type Stats struct {
	Conns      int64 // connections admitted through the injector
	Refused    int64 // connections refused
	Drops      int64 // connections severed mid-operation
	TornWrites int64 // writes delivered partially before severing
	Stalls     int64 // operations frozen for Plan.StallFor
	DelayedOps int64 // operations delayed by injected latency
	Ops        int64 // I/O operations observed in total
}

// String renders a compact status line for operator output.
func (s Stats) String() string {
	return fmt.Sprintf("chaos: conns=%d refused=%d drops=%d torn=%d stalls=%d delayed=%d ops=%d",
		s.Conns, s.Refused, s.Drops, s.TornWrites, s.Stalls, s.DelayedOps, s.Ops)
}

// Injector produces faults according to a Plan. One injector may wrap any
// number of listeners and dialers; its counters are shared so fault spacing
// is global. Safe for concurrent use, and the plan can be swapped at
// runtime (e.g. to open a connection-refused window mid-test).
type Injector struct {
	mu          sync.Mutex
	plan        Plan
	rng         *rand.Rand
	stats       Stats
	refuseUntil time.Time
}

// New creates an injector for the plan.
func New(plan Plan) *Injector {
	return &Injector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// SetPlan swaps the active plan; counters keep running.
func (i *Injector) SetPlan(p Plan) {
	i.mu.Lock()
	i.plan = p
	i.mu.Unlock()
}

// Plan returns the active plan.
func (i *Injector) Plan() Plan {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.plan
}

// Stats snapshots the fault counters.
func (i *Injector) Stats() Stats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}

// RefuseFor opens a connection-refused window: until d elapses every new
// connection is refused, simulating a master that is down but whose host
// still answers.
func (i *Injector) RefuseFor(d time.Duration) {
	i.mu.Lock()
	i.refuseUntil = time.Now().Add(d)
	i.mu.Unlock()
}

// admitConn decides whether a new connection may proceed.
func (i *Injector) admitConn() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.refuseUntil.IsZero() && time.Now().Before(i.refuseUntil) {
		i.stats.Refused++
		return false
	}
	n := i.stats.Conns + i.stats.Refused + 1
	if i.plan.RefuseEveryNthConn > 0 && n%int64(i.plan.RefuseEveryNthConn) == 0 {
		i.stats.Refused++
		return false
	}
	i.stats.Conns++
	return true
}

// verdict is one operation's fault decision.
type verdict struct {
	delay time.Duration
	drop  bool
	torn  bool
}

// judge accounts one I/O operation and decides its fate. The sleep happens
// in the caller, outside the lock.
func (i *Injector) judge(isWrite bool) verdict {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.stats.Ops++
	var v verdict
	p := i.plan
	if p.LatencyMax > 0 {
		v.delay = p.LatencyMin
		if span := p.LatencyMax - p.LatencyMin; span > 0 {
			v.delay += time.Duration(i.rng.Int63n(int64(span) + 1))
		}
		if v.delay > 0 {
			i.stats.DelayedOps++
		}
	}
	if p.StallEveryNOps > 0 && i.stats.Ops%int64(p.StallEveryNOps) == 0 {
		v.delay += p.StallFor
		i.stats.Stalls++
	}
	if isWrite && p.TornWriteEveryNOps > 0 && i.stats.Ops%int64(p.TornWriteEveryNOps) == 0 {
		v.torn = true
		i.stats.TornWrites++
		return v
	}
	if p.DropEveryNOps > 0 && i.stats.Ops%int64(p.DropEveryNOps) == 0 {
		v.drop = true
		i.stats.Drops++
	}
	return v
}

// Listener wraps ln so every accepted connection carries the injector's
// faults.
func (i *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, inj: i}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if !l.inj.admitConn() {
			_ = c.Close()
			continue
		}
		return &Conn{Conn: c, inj: l.inj}, nil
	}
}

// Dial wraps a dial function (ldapnet.DialFunc-shaped) so outgoing
// connections carry the injector's faults; nil dials plain TCP.
func (i *Injector) Dial(dial func(addr string, timeout time.Duration) (net.Conn, error)) func(addr string, timeout time.Duration) (net.Conn, error) {
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			if timeout > 0 {
				return net.DialTimeout("tcp", addr, timeout)
			}
			return net.Dial("tcp", addr)
		}
	}
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		if !i.admitConn() {
			return nil, fmt.Errorf("%w: connection refused by plan", ErrInjected)
		}
		c, err := dial(addr, timeout)
		if err != nil {
			return nil, err
		}
		return &Conn{Conn: c, inj: i}, nil
	}
}

// Conn applies an injector's fault plan to one connection.
type Conn struct {
	net.Conn
	inj *Injector
}

func (c *Conn) Read(p []byte) (int, error) {
	v := c.inj.judge(false)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.drop {
		_ = c.Conn.Close()
		return 0, fmt.Errorf("%w: connection dropped on read", ErrInjected)
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	v := c.inj.judge(true)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.torn {
		n, _ := c.Conn.Write(p[:len(p)/2])
		_ = c.Conn.Close()
		return n, fmt.Errorf("%w: torn write after %d/%d bytes", ErrInjected, n, len(p))
	}
	if v.drop {
		_ = c.Conn.Close()
		return 0, fmt.Errorf("%w: connection dropped on write", ErrInjected)
	}
	return c.Conn.Write(p)
}
