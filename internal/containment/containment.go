package containment

import (
	"strconv"
	"strings"

	"filterdir/internal/entry"
	"filterdir/internal/filter"
	"filterdir/internal/query"
)

// FilterContainsGeneric decides F1 ⊆ F2 (every entry matching F1 matches F2)
// by Proposition 1: F1 ∧ ¬F2 is brought to DNF and every conjunct must be
// provably inconsistent. The error is non-nil only when DNF expansion
// exceeds safe bounds (filter.ErrTooComplex); callers treat that as "not
// contained".
func FilterContainsGeneric(f1, f2 *filter.Node) (bool, error) {
	f1, f2 = orDefault(f1), orDefault(f2)
	expr := filter.NewAnd(f1.Clone(), filter.NewNot(f2.Clone()))
	conj, err := expr.DNF()
	if err != nil {
		return false, err
	}
	cond, v := derive(conj)
	switch v {
	case verdictAlways:
		return true, nil
	case verdictImpossible:
		return false, nil
	default:
		return cond.eval(env{}), nil
	}
}

// SameTemplateContains decides containment for two positive filters of the
// same template by Proposition 3: each predicate of F1 must be contained in
// the corresponding predicate of F2, requiring only O(n) assertion-value
// comparisons. The caller must ensure the templates are equal and both
// filters positive; the result is unspecified otherwise.
func SameTemplateContains(f1, f2 *filter.Node) bool {
	p1 := f1.Predicates()
	p2 := f2.Predicates()
	if len(p1) != len(p2) {
		return false
	}
	for i := range p1 {
		if !predicateContains(p1[i], p2[i]) {
			return false
		}
	}
	return true
}

// predicateContains decides containment of one predicate in another of the
// same op and attribute.
func predicateContains(a, b *filter.Node) bool {
	if a.Op != b.Op || a.Attr != b.Attr {
		return false
	}
	kind := entry.OrderingFor(a.Attr)
	switch a.Op {
	case filter.Present:
		return true
	case filter.EQ:
		return entry.EqualValues(a.Value, b.Value)
	case filter.GE:
		// [v1, ∞) ⊆ [v2, ∞) iff v1 >= v2.
		cmp, ok := entry.CompareOrdered(kind, a.Value, b.Value)
		if ok {
			return cmp >= 0
		}
		// Undefined: if v1 cannot match anything, containment holds.
		_, ok1 := entry.ParseInt(a.Value)
		return !ok1
	case filter.LE:
		cmp, ok := entry.CompareOrdered(kind, a.Value, b.Value)
		if ok {
			return cmp <= 0
		}
		_, ok1 := entry.ParseInt(a.Value)
		return !ok1
	case filter.Substr:
		return substringContains(a.Sub, b.Sub)
	default:
		return false
	}
}

// substringContains decides whether every value matching pattern a also
// matches pattern b, for patterns of identical wildcard structure (same
// template): b's initial must prefix a's initial, b's final must suffix a's
// final, and each any component of b must occur inside the corresponding any
// component of a.
func substringContains(a, b *filter.Substring) bool {
	if a == nil || b == nil {
		return b == nil
	}
	if len(a.Any) != len(b.Any) {
		return false
	}
	if !strings.HasPrefix(entry.NormValue(a.Initial), entry.NormValue(b.Initial)) {
		return false
	}
	if !strings.HasSuffix(entry.NormValue(a.Final), entry.NormValue(b.Final)) {
		return false
	}
	for i := range a.Any {
		if !strings.Contains(entry.NormValue(a.Any[i]), entry.NormValue(b.Any[i])) {
			return false
		}
	}
	return true
}

// ScopeContains implements the base/scope region check of the paper's QC
// algorithm: the region defined by q's base and scope must fall completely
// inside the region of qs.
func ScopeContains(q, qs query.Query) bool {
	if qs.Base.Equal(q.Base) {
		return qs.Scope >= q.Scope
	}
	if !qs.Base.IsSuffix(q.Base) {
		return false
	}
	if qs.Scope == query.ScopeSubtree {
		return true
	}
	// A single-level region contains a base region at a direct child.
	return qs.Scope > q.Scope && qs.Base.IsParent(q.Base)
}

// orDefault substitutes the match-everything filter for nil and rewrites
// (objectclass=*) to the absolute-true filter: every entry in the directory
// carries an objectclass (the schema enforces it), so the presence test is a
// match-all — the paper relies on this to replicate null-based queries.
func orDefault(f *filter.Node) *filter.Node {
	if f == nil {
		return &filter.Node{Op: filter.True}
	}
	return rewriteMatchAll(f)
}

func rewriteMatchAll(f *filter.Node) *filter.Node {
	if f.Op == filter.Present && f.Attr == entry.AttrObjectClass {
		return &filter.Node{Op: filter.True}
	}
	changed := false
	kids := make([]*filter.Node, len(f.Children))
	for i, c := range f.Children {
		kids[i] = rewriteMatchAll(c)
		if kids[i] != c {
			changed = true
		}
	}
	if !changed {
		return f
	}
	c := *f
	c.Children = kids
	return &c
}

// withMarkers clones a filter, replacing each assertion value with a slot
// marker in SlotValues order; the result is used to compile a template
// pair's containment condition once, independent of concrete values.
func withMarkers(n *filter.Node, prefix string) *filter.Node {
	c := n.Clone()
	i := 0
	markSlots(c, prefix, &i)
	return c
}

func markSlots(n *filter.Node, prefix string, i *int) {
	if n == nil {
		return
	}
	switch n.Op {
	case filter.And, filter.Or, filter.Not:
		for _, ch := range n.Children {
			markSlots(ch, prefix, i)
		}
	case filter.EQ, filter.GE, filter.LE:
		n.Value = prefix + strconv.Itoa(*i)
		*i++
	case filter.Substr:
		if n.Sub == nil {
			return
		}
		if n.Sub.Initial != "" {
			n.Sub.Initial = prefix + strconv.Itoa(*i)
			*i++
		}
		for k := range n.Sub.Any {
			n.Sub.Any[k] = prefix + strconv.Itoa(*i)
			*i++
		}
		if n.Sub.Final != "" {
			n.Sub.Final = prefix + strconv.Itoa(*i)
			*i++
		}
	}
}
