package containment

import (
	"filterdir/internal/entry"
	"filterdir/internal/filter"
)

// condition is the containment condition for a filter pair in conjunctive
// normal form: F1 is contained in F2 iff every clause has at least one true
// atom. Each clause corresponds to one conjunct of DNF(F1 ∧ ¬F2) and asserts
// that conjunct's inconsistency.
type condition struct {
	clauses [][]atom
}

func (c *condition) eval(e env) bool {
	for _, clause := range c.clauses {
		ok := false
		for _, a := range clause {
			if a.eval(e) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// atomCount reports the total number of atoms (used by stats and tests).
func (c *condition) atomCount() int {
	n := 0
	for _, cl := range c.clauses {
		n += len(cl)
	}
	return n
}

type verdict int

const (
	// verdictCompiled: containment holds iff the condition evaluates true.
	verdictCompiled verdict = iota + 1
	// verdictAlways: every conjunct is unconditionally inconsistent;
	// containment holds for any assertion values.
	verdictAlways
	// verdictImpossible: some conjunct is satisfiable regardless of assertion
	// values; containment can never hold for this structure.
	verdictImpossible
)

// derive builds the containment condition from the DNF of F1 ∧ ¬F2.
func derive(conjuncts [][]filter.Literal) (*condition, verdict) {
	cond := &condition{}
	for _, conj := range conjuncts {
		atoms, always := conjunctAtoms(conj)
		if always {
			continue // this conjunct can never be satisfied
		}
		if len(atoms) == 0 {
			// No value assignment can make this conjunct inconsistent.
			return nil, verdictImpossible
		}
		cond.clauses = append(cond.clauses, atoms)
	}
	if len(cond.clauses) == 0 {
		return nil, verdictAlways
	}
	return cond, verdictCompiled
}

// attrLits collects the literals of one conjunct that constrain a single
// attribute, sorted by polarity and kind.
type attrLits struct {
	posEQ, negEQ []valRef
	posGE, negGE []valRef
	posLE, negLE []valRef
	posSub       []symPattern
	negSub       []symPattern
	posPresent   bool
	negPresent   bool
}

func (al *attrLits) hasPositive() bool {
	return len(al.posEQ) > 0 || len(al.posGE) > 0 || len(al.posLE) > 0 ||
		len(al.posSub) > 0 || al.posPresent
}

// conjunctAtoms derives the inconsistency atoms for one conjunct: the
// conjunct is inconsistent iff at least one atom holds. always=true means
// the conjunct is inconsistent regardless of assertion values. An empty atom
// list with always=false means the conjunct is satisfiable for every value
// assignment.
func conjunctAtoms(conj []filter.Literal) (atoms []atom, always bool) {
	byAttr := make(map[string]*attrLits)
	order := make([]string, 0, 4)
	get := func(attr string) *attrLits {
		al, ok := byAttr[attr]
		if !ok {
			al = &attrLits{}
			byAttr[attr] = al
			order = append(order, attr)
		}
		return al
	}
	for _, lit := range conj {
		p := lit.Pred
		al := get(p.Attr)
		switch p.Op {
		case filter.EQ:
			if lit.Negated {
				al.negEQ = append(al.negEQ, refOf(p.Value))
			} else {
				al.posEQ = append(al.posEQ, refOf(p.Value))
			}
		case filter.GE:
			if lit.Negated {
				al.negGE = append(al.negGE, refOf(p.Value))
			} else {
				al.posGE = append(al.posGE, refOf(p.Value))
			}
		case filter.LE:
			if lit.Negated {
				al.negLE = append(al.negLE, refOf(p.Value))
			} else {
				al.posLE = append(al.posLE, refOf(p.Value))
			}
		case filter.Present:
			if lit.Negated {
				al.negPresent = true
			} else {
				al.posPresent = true
			}
		case filter.Substr:
			pat := toSymPattern(p.Sub)
			if lit.Negated {
				al.negSub = append(al.negSub, pat)
			} else {
				al.posSub = append(al.posSub, pat)
			}
		}
	}
	for _, attr := range order {
		al := byAttr[attr]
		a, alw := attrAtoms(attr, al)
		if alw {
			return nil, true
		}
		atoms = append(atoms, a...)
	}
	return atoms, false
}

func toSymPattern(s *filter.Substring) symPattern {
	var p symPattern
	if s == nil {
		return p
	}
	if s.Initial != "" {
		p.initial = refOf(s.Initial)
		p.hasInit = true
	}
	for _, a := range s.Any {
		p.any = append(p.any, refOf(a))
	}
	if s.Final != "" {
		p.final = refOf(s.Final)
		p.hasFin = true
	}
	return p
}

// attrAtoms derives inconsistency atoms for the literals constraining a
// single attribute under the single-valued interpretation. An entry may omit
// the attribute, which satisfies every negated literal and no positive one.
func attrAtoms(attr string, al *attrLits) (atoms []atom, always bool) {
	if !al.hasPositive() {
		// Omit the attribute: all negated literals satisfied.
		return nil, false
	}
	if al.negPresent {
		// A positive constraint requires the attribute; ¬present forbids it.
		return nil, true
	}
	kind := entry.OrderingFor(attr)

	if len(al.posEQ) > 0 {
		// The value is forced to the (common) equality value; every other
		// constraint is checked against it.
		e0 := al.posEQ[0]
		for i := 0; i < len(al.posEQ); i++ {
			for j := i + 1; j < len(al.posEQ); j++ {
				atoms = append(atoms, atomValuesDiffer{al.posEQ[i], al.posEQ[j]})
			}
		}
		for _, t := range al.negEQ {
			atoms = append(atoms, atomValuesEqual{e0, t})
		}
		for _, g := range al.posGE {
			atoms = append(atoms, atomCmp{x: e0, y: g, op: cmpLT, kind: kind, undef: true})
		}
		for _, l := range al.posLE {
			atoms = append(atoms, atomCmp{x: e0, y: l, op: cmpGT, kind: kind, undef: true})
		}
		for _, g := range al.negGE {
			atoms = append(atoms, atomCmp{x: e0, y: g, op: cmpGE, kind: kind, undef: false})
		}
		for _, l := range al.negLE {
			atoms = append(atoms, atomCmp{x: e0, y: l, op: cmpLE, kind: kind, undef: false})
		}
		for _, p := range al.posSub {
			atoms = append(atoms, atomNotMatches{x: e0, pat: p})
		}
		for _, p := range al.negSub {
			atoms = append(atoms, atomMatches{x: e0, pat: p})
		}
		return atoms, false
	}

	// Range analysis. Positive ordering assertions force the value to parse
	// under integer ordering; negated ordering assertions can otherwise be
	// satisfied by a non-integer value and are dropped (conservative).
	mustParse := len(al.posGE) > 0 || len(al.posLE) > 0
	var lows, highs []bound
	for _, g := range al.posGE {
		lows = append(lows, bound{ref: g})
		if kind == entry.OrderingInteger {
			atoms = append(atoms, atomUnparseable{g})
		}
	}
	for _, l := range al.posLE {
		highs = append(highs, bound{ref: l})
		if kind == entry.OrderingInteger {
			atoms = append(atoms, atomUnparseable{l})
		}
	}
	if kind != entry.OrderingInteger || mustParse {
		for _, l := range al.negLE {
			lows = append(lows, bound{ref: l, strict: true})
		}
		for _, g := range al.negGE {
			highs = append(highs, bound{ref: g, strict: true})
		}
	}
	if kind != entry.OrderingInteger {
		// A substring pattern with an initial component confines the value to
		// [initial, prefixSucc(initial)).
		for _, p := range al.posSub {
			if p.hasInit {
				lows = append(lows, bound{ref: p.initial})
				highs = append(highs, bound{ref: p.initial, prefixHigh: true})
			}
		}
	}
	for _, lo := range lows {
		for _, hi := range highs {
			if lo.ref == hi.ref && hi.prefixHigh && !lo.strict && !lo.prefixHigh {
				continue // a prefix's own [p, succ p) is never empty
			}
			atoms = append(atoms, atomEmptyRange{lo: lo, hi: hi, kind: kind})
		}
	}
	if kind != entry.OrderingInteger {
		for _, t := range al.negEQ {
			for _, lo := range lows {
				if lo.strict || lo.prefixHigh {
					continue
				}
				for _, hi := range highs {
					if hi.strict || hi.prefixHigh {
						continue
					}
					atoms = append(atoms, atomHole{lo: lo.ref, hi: hi.ref, hole: t})
				}
			}
		}
	}
	// A negated pattern subsumed by a positive pattern is a contradiction:
	// everything matching the positive pattern matches the negated one.
	for _, np := range al.negSub {
		for _, pp := range al.posSub {
			atoms = append(atoms, atomPatternSubsumed{pos: pp, neg: np})
		}
	}
	return atoms, false
}
