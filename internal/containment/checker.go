package containment

import (
	"sync"

	"filterdir/internal/filter"
	"filterdir/internal/query"
)

// Stats counts how containment decisions were reached; the template
// machinery exists to drive traffic away from the generic path.
type Stats struct {
	// SameTemplate counts Proposition 3 fast-path decisions.
	SameTemplate uint64
	// Compiled counts evaluations of a pre-compiled template-pair condition.
	Compiled uint64
	// ImpossiblePruned counts queries rejected by a template pair known to
	// admit no containment regardless of assertion values.
	ImpossiblePruned uint64
	// AlwaysAccepted counts queries accepted by a template pair whose
	// containment holds for all assertion values.
	AlwaysAccepted uint64
	// Fallback counts full Proposition 1 checks for pairs too complex to
	// compile.
	Fallback uint64
	// PlansCompiled counts distinct template pairs analyzed.
	PlansCompiled uint64
}

type planKind int

const (
	planCompiled planKind = iota + 1
	planAlways
	planImpossible
	planFallback
)

type plan struct {
	kind planKind
	cond *condition
}

// Checker decides query and filter containment with the paper's template
// optimizations: Proposition 3 for same-template pairs and per-template-pair
// compiled conditions (Proposition 2) with a-priori pruning of impossible
// pairs for cross-template checks. A Checker is safe for concurrent use.
//
// The zero value is not usable; call NewChecker.
type Checker struct {
	mu    sync.Mutex
	plans map[string]*plan
	stats Stats
}

// NewChecker creates a Checker with an empty plan cache.
func NewChecker() *Checker {
	return &Checker{plans: make(map[string]*plan)}
}

// Stats returns a snapshot of the decision counters.
func (c *Checker) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// FilterContains decides f1 ⊆ f2 using the fastest applicable method.
func (c *Checker) FilterContains(f1, f2 *filter.Node) bool {
	f1, f2 = orDefault(f1), orDefault(f2)
	t1, t2 := f1.Template(), f2.Template()
	if t1 == t2 && f1.IsPositive() && f2.IsPositive() {
		c.bump(func(s *Stats) { s.SameTemplate++ })
		return SameTemplateContains(f1, f2)
	}
	p := c.planFor(t1, t2, f1, f2)
	switch p.kind {
	case planImpossible:
		c.bump(func(s *Stats) { s.ImpossiblePruned++ })
		return false
	case planAlways:
		c.bump(func(s *Stats) { s.AlwaysAccepted++ })
		return true
	case planCompiled:
		c.bump(func(s *Stats) { s.Compiled++ })
		return p.cond.eval(env{a: f1.SlotValues(), b: f2.SlotValues()})
	default:
		c.bump(func(s *Stats) { s.Fallback++ })
		ok, err := FilterContainsGeneric(f1, f2)
		return err == nil && ok
	}
}

// QueryContains implements the paper's QC algorithm: the base/scope region
// of q must lie inside that of qs, q's attributes must be a subset of qs's,
// and q's filter must be contained in qs's filter.
func (c *Checker) QueryContains(q, qs query.Query) bool {
	if !ScopeContains(q, qs) {
		return false
	}
	if !q.AttrsSubsetOf(qs) {
		return false
	}
	return c.FilterContains(q.Filter, qs.Filter)
}

func (c *Checker) bump(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// planFor returns the cached template-pair plan, compiling it on first use.
// Compilation replaces assertion values with slot markers, computes
// DNF(F1 ∧ ¬F2) — whose structure depends only on the templates — and
// derives the CNF containment condition over slot comparisons.
func (c *Checker) planFor(t1, t2 string, f1, f2 *filter.Node) *plan {
	key := t1 + "\x00" + t2
	c.mu.Lock()
	if p, ok := c.plans[key]; ok {
		c.mu.Unlock()
		return p
	}
	c.mu.Unlock()

	p := compilePair(f1, f2)

	c.mu.Lock()
	// Another goroutine may have compiled the same pair; either result is
	// identical, keep the first.
	if prior, ok := c.plans[key]; ok {
		p = prior
	} else {
		c.plans[key] = p
		c.stats.PlansCompiled++
	}
	c.mu.Unlock()
	return p
}

func compilePair(f1, f2 *filter.Node) *plan {
	m1 := withMarkers(f1, markerA)
	m2 := withMarkers(f2, markerB)
	expr := filter.NewAnd(m1, filter.NewNot(m2))
	conj, err := expr.DNF()
	if err != nil {
		return &plan{kind: planFallback}
	}
	cond, v := derive(conj)
	switch v {
	case verdictAlways:
		return &plan{kind: planAlways}
	case verdictImpossible:
		return &plan{kind: planImpossible}
	default:
		return &plan{kind: planCompiled, cond: cond}
	}
}
