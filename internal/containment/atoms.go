// Package containment implements LDAP query and filter containment per
// Section 4 of the paper:
//
//   - Proposition 1: F1 is contained in F2 iff F1 ∧ ¬F2 is inconsistent. The
//     expression is brought to DNF and each conjunct is checked for
//     per-attribute unsatisfiability (empty ranges, contradicted equalities,
//     incompatible substring prefixes).
//   - Proposition 2: for a pair of templates, the containment condition is a
//     CNF of assertion-value comparisons computed once per template pair and
//     then evaluated in O(#atoms) per query pair (see Checker).
//   - Proposition 3: filters of the same template are compared predicate by
//     predicate in O(n).
//
// Semantics and soundness. Containment is decided under the single-valued
// attribute interpretation used throughout the query-caching literature (the
// paper's Section 4 examples reason about one value per attribute). All
// approximations err on the side of "not contained": a replica may generate
// an unnecessary referral but never serves a wrong answer from a false
// containment claim. Ordering comparisons use the same per-attribute rules
// (integer vs case-insensitive string) as filter evaluation, which is what
// makes range-emptiness proofs sound.
package containment

import (
	"strings"

	"filterdir/internal/entry"
)

// valRef identifies an assertion value: either a constant (generic Prop 1
// checks) or a slot of the incoming (A) or stored (B) filter (compiled
// Prop 2 conditions).
type valRef struct {
	src  refSrc
	slot int    // slot index for srcA/srcB
	con  string // constant value for srcConst
}

type refSrc int8

const (
	srcConst refSrc = iota
	srcA            // incoming filter (F1) slot
	srcB            // stored filter (F2) slot
)

// markerA / markerB prefix the synthetic slot-marker values used when a
// template pair is compiled. \x01 cannot appear in parsed assertion values
// (Parse rejects raw control escapes only via \XX, which produces it only if
// a query deliberately encodes it; a stray marker-shaped constant would only
// make containment more conservative).
const (
	markerA = "\x01A:"
	markerB = "\x01B:"
)

func refOf(v string) valRef {
	if strings.HasPrefix(v, markerA) {
		return valRef{src: srcA, slot: parseSlot(v[len(markerA):])}
	}
	if strings.HasPrefix(v, markerB) {
		return valRef{src: srcB, slot: parseSlot(v[len(markerB):])}
	}
	return valRef{src: srcConst, con: v}
}

func parseSlot(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		n = n*10 + int(s[i]-'0')
	}
	return n
}

// env resolves slot references during condition evaluation.
type env struct {
	a, b []string
}

func (e env) resolve(r valRef) string {
	switch r.src {
	case srcA:
		if r.slot < len(e.a) {
			return e.a[r.slot]
		}
		return ""
	case srcB:
		if r.slot < len(e.b) {
			return e.b[r.slot]
		}
		return ""
	default:
		return r.con
	}
}

// atom is a single evaluable comparison between assertion values. A conjunct
// of F1 ∧ ¬F2 is inconsistent when at least one of its atoms holds; the
// containment condition is the conjunction over conjuncts of these
// disjunctions (a CNF, per Proposition 2).
type atom interface {
	eval(env) bool
}

// atomTrue marks a conjunct as unconditionally inconsistent.
type atomTrue struct{}

func (atomTrue) eval(env) bool { return true }

// atomValuesDiffer holds when two equality assertion values differ
// (caseIgnoreMatch): two positive equalities on a single-valued attribute
// are incompatible unless equal.
type atomValuesDiffer struct{ x, y valRef }

func (a atomValuesDiffer) eval(e env) bool {
	return !entry.EqualValues(e.resolve(a.x), e.resolve(a.y))
}

// atomValuesEqual holds when a positive equality meets a negated equality on
// the same value.
type atomValuesEqual struct{ x, y valRef }

func (a atomValuesEqual) eval(e env) bool {
	return entry.EqualValues(e.resolve(a.x), e.resolve(a.y))
}

// cmpOp is the comparison an atomCmp applies.
type cmpOp int8

const (
	cmpLT cmpOp = iota + 1
	cmpLE
	cmpGT
	cmpGE
)

// atomCmp holds when x op y under the attribute's ordering rule. undef is
// the result when the comparison is undefined (integer ordering with a
// non-integer operand): a positive ordering assertion on an undefined value
// can never match (undef=true ⇒ inconsistent), while a negated one is
// trivially satisfied (undef=false).
type atomCmp struct {
	x, y  valRef
	op    cmpOp
	kind  entry.Ordering
	undef bool
}

func (a atomCmp) eval(e env) bool {
	cmp, ok := entry.CompareOrdered(a.kind, e.resolve(a.x), e.resolve(a.y))
	if !ok {
		return a.undef
	}
	switch a.op {
	case cmpLT:
		return cmp < 0
	case cmpLE:
		return cmp <= 0
	case cmpGT:
		return cmp > 0
	case cmpGE:
		return cmp >= 0
	default:
		return false
	}
}

// symPattern is a substring pattern whose components are value references.
type symPattern struct {
	initial valRef
	any     []valRef
	final   valRef
	hasInit bool
	hasFin  bool
}

func (p symPattern) resolve(e env) (initial string, any []string, final string) {
	if p.hasInit {
		initial = e.resolve(p.initial)
	}
	for _, r := range p.any {
		any = append(any, e.resolve(r))
	}
	if p.hasFin {
		final = e.resolve(p.final)
	}
	return initial, any, final
}

// prefixOnly reports whether the pattern is "prefix*" shaped.
func (p symPattern) prefixOnly() bool { return p.hasInit && !p.hasFin && len(p.any) == 0 }

// atomNotMatches holds when a forced equality value fails a positive
// substring pattern.
type atomNotMatches struct {
	x   valRef
	pat symPattern
}

func (a atomNotMatches) eval(e env) bool {
	i, any, f := a.pat.resolve(e)
	return !entry.MatchSubstring(e.resolve(a.x), i, any, f)
}

// atomMatches holds when a forced equality value satisfies a negated
// substring pattern.
type atomMatches struct {
	x   valRef
	pat symPattern
}

func (a atomMatches) eval(e env) bool {
	i, any, f := a.pat.resolve(e)
	return entry.MatchSubstring(e.resolve(a.x), i, any, f)
}

// atomPatternSubsumed holds when every value matching the positive pattern
// necessarily matches the negated pattern, making
// (attr=pos) ∧ ¬(attr=neg) inconsistent. The check is a sufficient
// condition: neg's initial must prefix pos's initial, neg's final must
// suffix pos's final, and neg's any components must embed in order into
// pos's any components.
type atomPatternSubsumed struct{ pos, neg symPattern }

func (a atomPatternSubsumed) eval(e env) bool {
	pi, pa, pf := a.pos.resolve(e)
	ni, na, nf := a.neg.resolve(e)
	if a.neg.hasInit {
		if !a.pos.hasInit || !strings.HasPrefix(entry.NormValue(pi), entry.NormValue(ni)) {
			return false
		}
	}
	if a.neg.hasFin {
		if !a.pos.hasFin || !strings.HasSuffix(entry.NormValue(pf), entry.NormValue(nf)) {
			return false
		}
	}
	idx := 0
	for _, want := range na {
		w := entry.NormValue(want)
		found := false
		for idx < len(pa) {
			if strings.Contains(entry.NormValue(pa[idx]), w) {
				found = true
				idx++
				break
			}
			idx++
		}
		if !found {
			return false
		}
	}
	return true
}

// bound is one endpoint of a range constraint on an attribute.
type bound struct {
	ref    valRef
	strict bool
	// prefixHigh marks an upper bound derived from a prefix pattern: the
	// effective endpoint is the prefix successor of the referenced value.
	prefixHigh bool
}

// atomEmptyRange holds when the range [lo, hi] (with strictness flags) is
// provably empty under the attribute's ordering rule. Proofs are
// conservative: an undefined comparison yields false (range not provably
// empty).
type atomEmptyRange struct {
	lo, hi bound
	kind   entry.Ordering
}

func (a atomEmptyRange) eval(e env) bool {
	lo := e.resolve(a.lo.ref)
	hi := e.resolve(a.hi.ref)
	if a.kind == entry.OrderingInteger {
		if a.lo.prefixHigh || a.hi.prefixHigh {
			return false // decimal-prefix reasoning over integers is unsound
		}
		nlo, okLo := entry.ParseInt(lo)
		nhi, okHi := entry.ParseInt(hi)
		if !okLo || !okHi {
			return false
		}
		if a.lo.strict {
			nlo++
		}
		if a.hi.strict {
			nhi--
		}
		return nlo > nhi
	}
	loN := entry.NormValue(lo)
	hiN := entry.NormValue(hi)
	hiStrict := a.hi.strict
	if a.hi.prefixHigh {
		succ, ok := prefixSucc(hiN)
		if !ok {
			return false // prefix has no successor: upper bound is +∞
		}
		hiN = succ
		hiStrict = true
	}
	if a.lo.prefixHigh {
		return false // a prefix-successor lower bound never arises
	}
	if loN > hiN {
		return true
	}
	// Dense-domain approximation: equal endpoints with any strict side are
	// empty; distinct endpoints are assumed to admit a value in between
	// (conservative for immediate-successor string pairs).
	return loN == hiN && (a.lo.strict || hiStrict)
}

// atomHole holds when the range pins a single value (lo == hi, both
// inclusive, string ordering) and a negated equality excludes exactly that
// value.
type atomHole struct {
	lo, hi, hole valRef
}

func (a atomHole) eval(e env) bool {
	lo := entry.NormValue(e.resolve(a.lo))
	hi := entry.NormValue(e.resolve(a.hi))
	hole := entry.NormValue(e.resolve(a.hole))
	return lo == hi && lo == hole
}

// atomUnparseable holds when an integer-ordering assertion value does not
// parse as an integer: the positive predicate can match nothing.
type atomUnparseable struct{ x valRef }

func (a atomUnparseable) eval(e env) bool {
	_, ok := entry.ParseInt(e.resolve(a.x))
	return !ok
}

// prefixSucc computes the smallest string greater than every string with
// the given prefix: the prefix with its last non-0xff byte incremented and
// the tail dropped. ok is false when no such string exists (all 0xff).
func prefixSucc(p string) (string, bool) {
	b := []byte(p)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xff {
			b[i]++
			return string(b[:i+1]), true
		}
	}
	return "", false
}
