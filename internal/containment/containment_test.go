package containment

import (
	"fmt"
	"math/rand"
	"testing"

	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/filter"
	"filterdir/internal/query"
)

// contains runs the generic Proposition 1 check, failing the test on
// complexity errors.
func contains(t *testing.T, f1, f2 string) bool {
	t.Helper()
	got, err := FilterContainsGeneric(filter.MustParse(f1), filter.MustParse(f2))
	if err != nil {
		t.Fatalf("FilterContainsGeneric(%s, %s): %v", f1, f2, err)
	}
	return got
}

func TestFilterContainsGeneric(t *testing.T) {
	tests := []struct {
		f1, f2 string
		want   bool
	}{
		// Same predicate.
		{"(sn=Doe)", "(sn=Doe)", true},
		{"(sn=Doe)", "(sn=doe)", true}, // case-insensitive
		{"(sn=Doe)", "(sn=Smith)", false},

		// Conjunction weakening.
		{"(&(sn=Doe)(givenname=John))", "(sn=Doe)", true},
		{"(sn=Doe)", "(&(sn=Doe)(givenname=John))", false},

		// Disjunction strengthening.
		{"(sn=Doe)", "(|(sn=Doe)(sn=Smith))", true},
		{"(|(sn=Doe)(sn=Smith))", "(sn=Doe)", false},
		{"(|(sn=Doe)(sn=Smith))", "(|(sn=Smith)(sn=Doe)(sn=Jones))", true},

		// Integer ranges (age has INTEGER syntax).
		{"(age>=40)", "(age>=30)", true},
		{"(age>=30)", "(age>=40)", false},
		{"(age<=20)", "(age<=30)", true},
		{"(age=35)", "(age>=30)", true},
		{"(age=25)", "(age>=30)", false},
		{"(age=35)", "(&(age>=30)(age<=40))", true},
		{"(&(age>=30)(age<=40))", "(age>=20)", true},
		{"(&(age>=30)(age<=40))", "(age>=35)", false},
		// Discrete integers: 30 < age < 32 pins 31; contained in (age=31)?
		// Hole/pin reasoning over ints is conservative: not claimed.
		{"(&(age>=31)(age<=31))", "(age>=31)", true},

		// String ranges (sn orders lexicographically).
		{"(&(sn>=b)(sn<=d))", "(sn>=a)", true},
		{"(&(sn>=b)(sn<=d))", "(sn>=c)", false},
		{"(sn>=b)", "(sn>=a)", true},

		// Equality vs substring prefix.
		{"(serialnumber=0456)", "(serialnumber=04*)", true},
		{"(serialnumber=0456)", "(serialnumber=05*)", false},
		{"(serialnumber=0456)", "(serialnumber=*56)", true},
		{"(serialnumber=0456)", "(serialnumber=0*5*)", true},
		{"(mail=john@us.xyz.com)", "(mail=*@us.xyz.com)", true},
		{"(mail=john@in.xyz.com)", "(mail=*@us.xyz.com)", false},

		// Prefix in prefix (also exercised via Prop 3 in Checker).
		{"(serialnumber=0456*)", "(serialnumber=04*)", true},
		{"(serialnumber=04*)", "(serialnumber=0456*)", false},

		// Cross-template: extra conjunct in F1.
		{"(&(objectclass=inetOrgPerson)(dept=2406))", "(objectclass=inetOrgPerson)", true},
		{"(objectclass=inetOrgPerson)", "(&(objectclass=inetOrgPerson)(dept=2406))", false},

		// The paper's department example: specific dept query inside the
		// generalized prefix filter spanning countries.
		{"(&(objectclass=inetorgperson)(departmentnumber=2406))",
			"(&(objectclass=inetorgperson)(departmentnumber=240*))", true},
		{"(&(objectclass=inetorgperson)(departmentnumber=2506))",
			"(&(objectclass=inetorgperson)(departmentnumber=240*))", false},

		// Unsatisfiable F1 is contained in everything.
		{"(&(sn=Doe)(!(sn=Doe)))", "(givenname=x)", true},

		// Everything is contained in (objectclass=*) (match-all rewrite).
		{"(sn=Doe)", "(objectclass=*)", true},
		{"(objectclass=*)", "(sn=Doe)", false},
		{"(objectclass=*)", "(objectclass=*)", true},

		// Negation.
		{"(!(sn=Doe))", "(!(sn=Doe))", true},
		// Under the single-valued interpretation an entry cannot carry both
		// sn=Smith and sn=Doe, so (sn=Smith) is contained in (!(sn=Doe)).
		{"(sn=Smith)", "(!(sn=Doe))", true},
		// ¬A ⊆ ¬B iff B ⊆ A; B adds a conjunct so B ⊆ A holds.
		{"(!(&(sn=Doe)(age>=30)))", "(!(&(sn=Doe)(age>=30)(dept=5)))", true},
		{"(!(&(sn=Doe)(age>=30)(dept=5)))", "(!(&(sn=Doe)(age>=30)))", false},

		// Presence.
		{"(sn=Doe)", "(sn=*)", true},
		{"(sn=*)", "(sn=Doe)", false},
		{"(sn=smi*)", "(sn=*)", true},

		// Range + negated range.
		{"(age>=40)", "(!(age<=30))", true},
		{"(age>=30)", "(!(age<=30))", false},
		{"(age<=20)", "(!(age>=30))", true},

		// OR of prefixes.
		{"(serialnumber=0456)", "(|(serialnumber=04*)(serialnumber=05*))", true},
		{"(serialnumber=0656)", "(|(serialnumber=04*)(serialnumber=05*))", false},
	}
	for _, tt := range tests {
		t.Run(tt.f1+" in "+tt.f2, func(t *testing.T) {
			if got := contains(t, tt.f1, tt.f2); got != tt.want {
				t.Errorf("contains(%s, %s) = %v, want %v", tt.f1, tt.f2, got, tt.want)
			}
		})
	}
}

func TestSameTemplateContains(t *testing.T) {
	tests := []struct {
		f1, f2 string
		want   bool
	}{
		{"(serialnumber=0456*)", "(serialnumber=04*)", true},
		{"(serialnumber=04*)", "(serialnumber=0456*)", false},
		{"(sn=Doe)", "(sn=doe)", true},
		{"(sn=Doe)", "(sn=Smith)", false},
		{"(&(dept=2406)(div=sw))", "(&(dept=2406)(div=sw))", true},
		{"(age>=40)", "(age>=30)", true},
		{"(age<=20)", "(age<=30)", true},
		{"(sn=*son)", "(sn=*on)", true},
		{"(sn=*son)", "(sn=*box)", false},
		{"(sn=a*bcd*e)", "(sn=a*c*e)", true},
		{"(sn=a*bcd*e)", "(sn=a*x*e)", false},
	}
	for _, tt := range tests {
		f1, f2 := filter.MustParse(tt.f1), filter.MustParse(tt.f2)
		if f1.Template() != f2.Template() {
			t.Fatalf("test setup: templates differ for %s / %s", tt.f1, tt.f2)
		}
		if got := SameTemplateContains(f1, f2); got != tt.want {
			t.Errorf("SameTemplateContains(%s, %s) = %v, want %v", tt.f1, tt.f2, got, tt.want)
		}
	}
}

func TestCheckerAgreesWithGeneric(t *testing.T) {
	pool := []string{
		"(sn=Doe)", "(sn=Smith)", "(sn=doe)",
		"(age>=30)", "(age>=40)", "(age<=35)", "(age=35)",
		"(serialnumber=0456)", "(serialnumber=04*)", "(serialnumber=045*)",
		"(&(sn=Doe)(age>=30))", "(&(dept=2406)(div=sw))", "(&(dept=2406)(div=hw))",
		"(|(sn=Doe)(sn=Smith))", "(objectclass=*)", "(sn=*)",
		"(&(objectclass=inetorgperson)(departmentnumber=240*))",
		"(&(objectclass=inetorgperson)(departmentnumber=2406))",
		"(!(sn=Doe))", "(mail=*@us.xyz.com)", "(mail=john@us.xyz.com)",
	}
	c := NewChecker()
	for _, s1 := range pool {
		for _, s2 := range pool {
			f1, f2 := filter.MustParse(s1), filter.MustParse(s2)
			want, err := FilterContainsGeneric(f1, f2)
			if err != nil {
				t.Fatalf("generic(%s, %s): %v", s1, s2, err)
			}
			if got := c.FilterContains(f1, f2); got != want {
				t.Errorf("Checker.FilterContains(%s, %s) = %v, generic says %v", s1, s2, got, want)
			}
		}
	}
	st := c.Stats()
	if st.SameTemplate == 0 || st.Compiled == 0 || st.ImpossiblePruned == 0 {
		t.Errorf("expected all decision paths exercised, got %+v", st)
	}
	if st.PlansCompiled == 0 {
		t.Error("no plans compiled")
	}
}

func TestCheckerPlanCacheReuse(t *testing.T) {
	c := NewChecker()
	// Same template pair, different values: one plan, many evaluations.
	for i := 0; i < 50; i++ {
		f1 := filter.MustParse(fmt.Sprintf("(serialnumber=0%d)", i))
		f2 := filter.MustParse(fmt.Sprintf("(serialnumber=0%d*)", i%7))
		c.FilterContains(f1, f2)
	}
	st := c.Stats()
	if st.PlansCompiled != 1 {
		t.Errorf("PlansCompiled = %d, want 1", st.PlansCompiled)
	}
	if st.Compiled != 50 {
		t.Errorf("Compiled evaluations = %d, want 50", st.Compiled)
	}
}

func TestImpossiblePairPruned(t *testing.T) {
	c := NewChecker()
	f1 := filter.MustParse("(sn=Doe)")
	f2 := filter.MustParse("(&(sn=Doe)(ou=research))")
	for i := 0; i < 10; i++ {
		if c.FilterContains(f1, f2) {
			t.Fatal("(sn=_) can never be contained in (&(sn=_)(ou=_))")
		}
	}
	st := c.Stats()
	if st.ImpossiblePruned != 10 {
		t.Errorf("ImpossiblePruned = %d, want 10", st.ImpossiblePruned)
	}
}

func TestQueryContains(t *testing.T) {
	sub := func(base, f string, attrs ...string) query.Query {
		return query.MustNew(base, query.ScopeSubtree, f, attrs...)
	}
	tests := []struct {
		name  string
		q, qs query.Query
		want  bool
	}{
		{
			name: "same base subtree, contained filter",
			q:    sub("c=us,o=xyz", "(serialnumber=0456)"),
			qs:   sub("c=us,o=xyz", "(serialnumber=04*)"),
			want: true,
		},
		{
			name: "base under stored subtree",
			q:    sub("ou=research,c=us,o=xyz", "(sn=Doe)"),
			qs:   sub("o=xyz", "(sn=Doe)"),
			want: true,
		},
		{
			name: "stored base under query base",
			q:    sub("o=xyz", "(sn=Doe)"),
			qs:   sub("c=us,o=xyz", "(sn=Doe)"),
			want: false,
		},
		{
			name: "null-base query in null-base stored",
			q:    sub("", "(serialnumber=0456)"),
			qs:   sub("", "(serialnumber=04*)"),
			want: true,
		},
		{
			name: "scope narrowing: base query inside subtree stored",
			q:    query.MustNew("cn=a,c=us,o=xyz", query.ScopeBase, "(sn=Doe)"),
			qs:   sub("c=us,o=xyz", "(sn=Doe)"),
			want: true,
		},
		{
			name: "subtree query not inside one-level stored",
			q:    sub("c=us,o=xyz", "(sn=Doe)"),
			qs:   query.MustNew("c=us,o=xyz", query.ScopeSingleLevel, "(sn=Doe)"),
			want: false,
		},
		{
			name: "base query at child inside one-level stored",
			q:    query.MustNew("cn=a,c=us,o=xyz", query.ScopeBase, "(sn=Doe)"),
			qs:   query.MustNew("c=us,o=xyz", query.ScopeSingleLevel, "(sn=Doe)"),
			want: true,
		},
		{
			name: "one-level query at same base inside one-level stored",
			q:    query.MustNew("c=us,o=xyz", query.ScopeSingleLevel, "(sn=Doe)"),
			qs:   query.MustNew("c=us,o=xyz", query.ScopeSingleLevel, "(sn=Doe)"),
			want: true,
		},
		{
			name: "base query at grandchild not inside one-level stored",
			q:    query.MustNew("cn=a,ou=r,c=us,o=xyz", query.ScopeBase, "(sn=Doe)"),
			qs:   query.MustNew("c=us,o=xyz", query.ScopeSingleLevel, "(sn=Doe)"),
			want: false,
		},
		{
			name: "attrs subset",
			q:    sub("o=xyz", "(sn=Doe)", "cn", "mail"),
			qs:   sub("o=xyz", "(sn=Doe)", "cn", "mail", "telephonenumber"),
			want: true,
		},
		{
			name: "attrs not subset",
			q:    sub("o=xyz", "(sn=Doe)", "cn", "postaladdress"),
			qs:   sub("o=xyz", "(sn=Doe)", "cn", "mail"),
			want: false,
		},
		{
			name: "query wants all attrs, stored partial",
			q:    sub("o=xyz", "(sn=Doe)"),
			qs:   sub("o=xyz", "(sn=Doe)", "cn", "mail"),
			want: false,
		},
		{
			name: "stored wants all attrs",
			q:    sub("o=xyz", "(sn=Doe)", "cn"),
			qs:   sub("o=xyz", "(sn=Doe)"),
			want: true,
		},
	}
	c := NewChecker()
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.QueryContains(tt.q, tt.qs); got != tt.want {
				t.Errorf("QueryContains = %v, want %v\n  q  = %s\n  qs = %s", got, tt.want, tt.q, tt.qs)
			}
		})
	}
}

// --- Soundness property test ------------------------------------------------

// randFilter builds a random positive-or-negated filter over a small value
// domain so that random entries have a real chance of matching.
func randFilter(r *rand.Rand, depth int) *filter.Node {
	attrs := []string{"sn", "age", "dept", "serialnumber", "mail"}
	values := []string{"a", "b", "c", "10", "20", "30", "0456", "04", "x@y"}
	attr := attrs[r.Intn(len(attrs))]
	val := values[r.Intn(len(values))]
	if depth > 0 && r.Intn(3) == 0 {
		n := 2 + r.Intn(2)
		kids := make([]*filter.Node, n)
		for i := range kids {
			kids[i] = randFilter(r, depth-1)
		}
		if r.Intn(2) == 0 {
			return filter.NewAnd(kids...)
		}
		return filter.NewOr(kids...)
	}
	if depth > 0 && r.Intn(6) == 0 {
		return filter.NewNot(randFilter(r, depth-1))
	}
	switch r.Intn(5) {
	case 0:
		return filter.NewEQ(attr, val)
	case 1:
		return filter.NewGE(attr, val)
	case 2:
		return filter.NewLE(attr, val)
	case 3:
		return filter.NewPresent(attr)
	default:
		return filter.NewSubstr(attr, filter.Substring{Initial: val})
	}
}

// randEntry builds a random single-valued entry over the same domain.
func randEntry(r *rand.Rand) *entry.Entry {
	attrs := []string{"sn", "age", "dept", "serialnumber", "mail"}
	values := []string{"a", "b", "c", "10", "20", "30", "0456", "04", "x@y", "0456xyz"}
	e := entry.New(dn.MustParse("cn=t,o=xyz"))
	e.Put("objectclass", "person")
	for _, a := range attrs {
		if r.Intn(3) != 0 { // ~2/3 present
			e.Put(a, values[r.Intn(len(values))])
		}
	}
	return e
}

func TestContainmentSoundness(t *testing.T) {
	// If containment is claimed, no single-valued entry may match F1 but
	// not F2. This is the invariant that keeps replicas from serving wrong
	// answers.
	r := rand.New(rand.NewSource(7))
	c := NewChecker()
	claimed := 0
	for i := 0; i < 3000; i++ {
		f1 := randFilter(r, 2)
		f2 := randFilter(r, 2)
		genericOK, err := FilterContainsGeneric(f1, f2)
		if err != nil {
			continue
		}
		checkerOK := c.FilterContains(f1, f2)
		if checkerOK != genericOK {
			t.Fatalf("checker and generic disagree on\n  f1=%s\n  f2=%s\n  checker=%v generic=%v",
				f1, f2, checkerOK, genericOK)
		}
		if !genericOK {
			continue
		}
		claimed++
		for j := 0; j < 60; j++ {
			e := randEntry(r)
			if f1.Matches(e) && !orDefault(f2).Matches(e) {
				t.Fatalf("unsound containment:\n  f1=%s\n  f2=%s\n  entry=%s", f1, f2, e)
			}
		}
	}
	if claimed < 30 {
		t.Errorf("property test too weak: only %d containments claimed", claimed)
	}
}

func TestScopeContainsSelf(t *testing.T) {
	q := query.MustNew("c=us,o=xyz", query.ScopeSubtree, "(sn=Doe)")
	if !ScopeContains(q, q) {
		t.Error("a query's region must contain itself")
	}
}

func BenchmarkSameTemplate(b *testing.B) {
	c := NewChecker()
	f1 := filter.MustParse("(serialnumber=045678)")
	f2 := filter.MustParse("(serialnumber=04*)")
	// Different templates: EQ vs prefix — compiled path.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !c.FilterContains(f1, f2) {
			b.Fatal("expected containment")
		}
	}
}

func BenchmarkGenericContainment(b *testing.B) {
	f1 := filter.MustParse("(&(objectclass=inetorgperson)(departmentnumber=2406))")
	f2 := filter.MustParse("(&(objectclass=inetorgperson)(departmentnumber=240*))")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := FilterContainsGeneric(f1, f2)
		if err != nil || !ok {
			b.Fatal("expected containment")
		}
	}
}

func BenchmarkCompiledVsGeneric(b *testing.B) {
	f1 := filter.MustParse("(&(objectclass=inetorgperson)(departmentnumber=2406))")
	f2 := filter.MustParse("(&(objectclass=inetorgperson)(departmentnumber=240*))")
	b.Run("compiled", func(b *testing.B) {
		c := NewChecker()
		c.FilterContains(f1, f2) // warm the plan cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !c.FilterContains(f1, f2) {
				b.Fatal("expected containment")
			}
		}
	})
	b.Run("generic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ok, err := FilterContainsGeneric(f1, f2)
			if err != nil || !ok {
				b.Fatal("expected containment")
			}
		}
	})
}
