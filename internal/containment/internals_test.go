package containment

import (
	"strings"
	"sync"
	"testing"

	"filterdir/internal/entry"
	"filterdir/internal/filter"
)

func TestPrefixSucc(t *testing.T) {
	tests := []struct {
		in   string
		want string
		ok   bool
	}{
		{"a", "b", true},
		{"az", "a{", true}, // '{' is 'z'+1
		{"04", "05", true},
		{"ab\xff", "ac", true},  // trailing 0xff dropped, prior byte bumped
		{"\xff\xff", "", false}, // no successor
		{"a\xff\xff", "b", true},
		{"", "", false}, // empty prefix covers everything
	}
	for _, tt := range tests {
		got, ok := prefixSucc(tt.in)
		if ok != tt.ok || got != tt.want {
			t.Errorf("prefixSucc(%q) = %q, %v; want %q, %v", tt.in, got, ok, tt.want, tt.ok)
		}
	}
	// Semantics: for every string s with prefix p, p <= s < succ(p).
	for _, p := range []string{"a", "04", "smi"} {
		succ, ok := prefixSucc(p)
		if !ok {
			t.Fatalf("prefixSucc(%q) failed", p)
		}
		for _, suffix := range []string{"", "0", "zzz", "\xff"} {
			s := p + suffix
			if !(p <= s && s < succ) {
				t.Errorf("value %q with prefix %q outside [%q, %q)", s, p, p, succ)
			}
		}
	}
}

func TestConditionAtomCounts(t *testing.T) {
	// The compiled plan for EQ-in-prefix has a small, fixed condition.
	f1 := filter.MustParse("(serialnumber=0456)")
	f2 := filter.MustParse("(serialnumber=04*)")
	m1 := withMarkers(f1, markerA)
	m2 := withMarkers(f2, markerB)
	expr := filter.NewAnd(m1, filter.NewNot(m2))
	conj, err := expr.DNF()
	if err != nil {
		t.Fatal(err)
	}
	cond, v := derive(conj)
	if v != verdictCompiled {
		t.Fatalf("verdict = %v", v)
	}
	if cond.atomCount() == 0 || cond.atomCount() > 8 {
		t.Errorf("atom count = %d, want small and nonzero", cond.atomCount())
	}
	// Evaluating with the real values agrees with the generic check.
	env := env{a: f1.SlotValues(), b: f2.SlotValues()}
	if !cond.eval(env) {
		t.Error("compiled condition rejects a true containment")
	}
}

func TestWithMarkersMatchesSlotOrder(t *testing.T) {
	f := filter.MustParse("(&(sn=Doe)(serialnumber=04*)(age>=30))")
	m := withMarkers(f, markerA)
	slots := m.SlotValues()
	for i, s := range slots {
		want := markerA + itoa(i)
		if s != want {
			t.Errorf("slot %d = %q, want %q", i, s, want)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestCheckerConcurrentUse(t *testing.T) {
	// Plan compilation and evaluation from many goroutines; -race guards
	// the cache locking.
	c := NewChecker()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f1 := filter.MustParse("(serialnumber=04" + itoa(i%10) + itoa(w) + ")")
				f2 := filter.MustParse("(serialnumber=04" + itoa(i%10) + "*)")
				if !c.FilterContains(f1, f2) {
					panic("containment must hold")
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.PlansCompiled != 1 {
		t.Errorf("PlansCompiled = %d, want 1 (one template pair)", st.PlansCompiled)
	}
}

func TestAtomEmptyRangeIntegerDiscrete(t *testing.T) {
	// (age >= 30) ∧ ¬(age >= 31): over integers, only 30 remains —
	// nonempty; ¬(age >= 30) ∧ (age >= 30): empty.
	ok := contains2(t, "(age>=30)", "(age>=31)")
	if ok {
		t.Error("(age>=30) is not contained in (age>=31)")
	}
	if !contains2(t, "(age>=31)", "(age>=30)") {
		t.Error("(age>=31) must be contained in (age>=30)")
	}
	// Discrete boundary: >=30 ∧ <=29 is empty, so (age>=30) ⊆ ¬(age<=29).
	if !contains2(t, "(age>=30)", "(!(age<=29))") {
		t.Error("discrete integer boundary not recognized")
	}
}

func contains2(t *testing.T, a, b string) bool {
	t.Helper()
	ok, err := FilterContainsGeneric(filter.MustParse(a), filter.MustParse(b))
	if err != nil {
		t.Fatal(err)
	}
	return ok
}

func TestStringRangeDensity(t *testing.T) {
	// Dense string domain: (sn>=b) ∧ (sn<=a) is empty → containment in the
	// complement holds.
	if !contains2(t, "(sn>=b)", "(!(sn<=a))") {
		t.Error("(sn>=b) must be contained in (!(sn<=a))")
	}
	// But (sn>=a) ∧ ¬(sn>=a\x00...) has values between: conservative no.
	if contains2(t, "(sn>=a)", "(sn>=b)") {
		t.Error("(sn>=a) not contained in (sn>=b)")
	}
}

func TestNormValueConsistency(t *testing.T) {
	// The condition machinery and the matcher agree on normalization.
	if !entry.EqualValues("A  B", "a b") {
		t.Fatal("normalization drifted")
	}
	if !strings.EqualFold("Doe", "doe") {
		t.Fatal("fold drifted")
	}
}
