package supervisor

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"filterdir/internal/chaos"
	"filterdir/internal/ldapnet"
	"filterdir/internal/ldif"
	"filterdir/internal/proto"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
)

// newChunkedHarness is newHarness with the master's engine serving full
// transfers in resumable chunks of the given size.
func newChunkedHarness(t *testing.T, chunkSize int) *harness {
	t.Helper()
	st := newMasterStore(t)
	backend := ldapnet.NewStoreBackend(st, resync.WithChunkSize(chunkSize))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(chaos.Plan{})
	srv := ldapnet.ServeListener(inj.Listener(ln), backend)
	t.Cleanup(func() { _ = srv.Close() })
	return &harness{
		store:   st,
		backend: backend,
		srv:     srv,
		inj:     inj,
		spec:    query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)"),
	}
}

// TestChunkedBeginAppliesAllChunks: against a chunking master, the first
// Begin walks the whole token chain on one connection and lands content
// identical to a monolithic reload.
func TestChunkedBeginAppliesAllChunks(t *testing.T) {
	h := newChunkedHarness(t, 3) // 8 entries → chunks of 3,3,2
	sup := startSupervisor(t, h.config(t))
	waitSynced(t, sup)
	waitConverged(t, h, sup, 10*time.Second)

	c := sup.Counters().Snapshot()
	if c.Begins != 1 || c.ChunkResumes != 2 || c.FullReloads != 1 {
		t.Errorf("begins=%d chunk-resumes=%d full-reloads=%d, want 1/2/1",
			c.Begins, c.ChunkResumes, c.FullReloads)
	}
	eng := h.backend.Engine.Counters().Snapshot()
	if eng.ChunkedReloads != 1 || eng.ReloadChunks != 3 || eng.ResumeRejects != 0 {
		t.Errorf("engine chunked=%d chunks=%d rejects=%d, want 1/3/0",
			eng.ChunkedReloads, eng.ReloadChunks, eng.ResumeRejects)
	}
	if sup.Cookie() == "" {
		t.Error("completed transfer left no session cookie")
	}
	if !sup.ResumeToken().IsZero() {
		t.Errorf("completed transfer left resume token %v armed", sup.ResumeToken())
	}
	// The session is live: a mutation must arrive by incremental poll, not
	// another reload.
	mutate(t, h.store, 0)
	waitConverged(t, h, sup, 10*time.Second)
	if eng := h.backend.Engine.Counters().Snapshot(); eng.ChunkedReloads != 1 || eng.FullReloads != 0 {
		t.Errorf("post-transfer poll reloaded (chunked=%d full=%d), want incremental",
			eng.ChunkedReloads, eng.FullReloads)
	}
}

// TestRestartMidTransferResumes is the satellite-4 regression: a replica
// killed mid-chunked-reload checkpoints its resume token, and the next
// incarnation presents the token and receives only the remaining chunks —
// it never re-Begins and the master never restarts the transfer.
func TestRestartMidTransferResumes(t *testing.T) {
	h := newChunkedHarness(t, 3)
	stateDir := t.TempDir()
	cfg := h.config(t)
	cfg.StateDir = stateDir

	// After the first chunk lands, sever every subsequent wire op so the
	// transfer cannot advance past chunk zero in this incarnation.
	var once atomic.Bool
	cfg.OnApplied = func(int) {
		if once.CompareAndSwap(false, true) {
			h.inj.SetPlan(chaos.Plan{DropEveryNOps: 1})
		}
	}
	sup := startSupervisor(t, cfg)
	deadline := time.Now().Add(10 * time.Second)
	for sup.ResumeToken().IsZero() {
		if time.Now().After(deadline) {
			t.Fatal("supervisor never armed a resume token")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := sup.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}

	// Checkpoint-ordering invariant (token never newer than content): the
	// durable token names chunk 1 of 3, and the content file holds exactly
	// the chunk-zero entries the token claims were absorbed.
	raw, err := os.ReadFile(filepath.Join(stateDir, "state.json"))
	if err != nil {
		t.Fatal(err)
	}
	var state struct {
		Cookie      string `json:"cookie"`
		ResumeToken string `json:"resume_token"`
	}
	if err := json.Unmarshal(raw, &state); err != nil {
		t.Fatal(err)
	}
	tok, err := proto.ParseResumeTokenString(state.ResumeToken)
	if err != nil {
		t.Fatalf("checkpointed token %q: %v", state.ResumeToken, err)
	}
	if tok.Chunk != 1 || tok.Chunks != 3 {
		t.Errorf("token at chunk %d/%d, want 1/3", tok.Chunk, tok.Chunks)
	}
	if state.Cookie != "" {
		t.Errorf("mid-transfer checkpoint carries completion cookie %q", state.Cookie)
	}
	f, err := os.Open(filepath.Join(stateDir, "content.ldif"))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := ldif.Read(f)
	_ = f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Errorf("content checkpoint holds %d entries, want the 3 of chunk zero", len(entries))
	}

	// Fresh incarnation on the same state directory: it must resume the
	// transfer, not re-Begin.
	h.inj.SetPlan(chaos.Plan{})
	sup2 := startSupervisor(t, cfg)
	waitSynced(t, sup2)
	waitConverged(t, h, sup2, 10*time.Second)

	c := sup2.Counters().Snapshot()
	if c.Begins != 0 {
		t.Errorf("restarted supervisor re-Began %d times, want 0 (token resume)", c.Begins)
	}
	if c.Resumes < 1 || c.ChunkResumes < 1 {
		t.Errorf("resumes=%d chunk-resumes=%d, want >= 1 each", c.Resumes, c.ChunkResumes)
	}
	eng := h.backend.Engine.Counters().Snapshot()
	if eng.Begins != 1 {
		t.Errorf("master begins = %d, want exactly 1 across both incarnations", eng.Begins)
	}
	if eng.ChunkedReloads != 1 || eng.ResumeRejects != 0 {
		t.Errorf("engine chunked=%d rejects=%d, want the one transfer resumed (1/0)",
			eng.ChunkedReloads, eng.ResumeRejects)
	}
	if !sup2.ResumeToken().IsZero() {
		t.Error("completed resume left token armed")
	}
}

// TestChunkedReloadSurvivesDrops: with connection drops armed for the whole
// run, a chunked initial transfer still converges byte-identically.
func TestChunkedReloadSurvivesDrops(t *testing.T) {
	h := newChunkedHarness(t, 2) // 8 entries → 4 chunks
	h.inj.SetPlan(chaos.Plan{Seed: 11, DropEveryNOps: 25})
	sup := startSupervisor(t, h.config(t))
	waitSynced(t, sup)
	h.inj.SetPlan(chaos.Plan{})
	waitConverged(t, h, sup, 15*time.Second)
	if eng := h.backend.Engine.Counters().Snapshot(); eng.ChunkedReloads < 1 {
		t.Errorf("engine served %d chunked reloads, want >= 1", eng.ChunkedReloads)
	}
	if drops := h.inj.Stats().Drops; drops == 0 {
		t.Skip("chaos plan injected no drops; nothing exercised")
	}
}

// TestStaleSessionKeepsServingContent is the other satellite-4 fix: when
// the master forgets the session, the replica keeps serving its
// last-known-good content for the whole re-Begin window instead of
// emptying itself the moment staleness is detected.
func TestStaleSessionKeepsServingContent(t *testing.T) {
	h := newHarness(t)
	sup := startSupervisor(t, h.config(t))
	waitSynced(t, sup)

	// Refuse new connections first, then kill the session: the live
	// connection's next poll learns the session is stale, and the refused
	// window guarantees the re-Begin cannot complete immediately.
	h.inj.RefuseFor(200 * time.Millisecond)
	if err := h.backend.Engine.End(sup.Cookie()); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, "stale sessions", 10*time.Second,
		func() int64 { return sup.Counters().StaleSessions.Load() }, 1)
	if n := len(sup.rep.Store().MatchAll(h.spec)); n != 8 {
		t.Errorf("replica serves %d entries during re-Begin window, want the 8 last known good", n)
	}
	if sup.Cookie() != "" {
		t.Error("stale session left cookie armed")
	}

	waitCounter(t, "begins", 10*time.Second,
		func() int64 { return sup.Counters().Begins.Load() }, 2)
	mutate(t, h.store, 0)
	waitConverged(t, h, sup, 10*time.Second)
}

// TestTornResumeTokenRestore: a checkpoint whose resume token no longer
// parses (torn tail recovered by the atomic rename, format bump) restores
// only what the cookie proves — and with no cookie either, nothing.
func TestTornResumeTokenRestore(t *testing.T) {
	h := newHarness(t)
	stateDir := t.TempDir()
	cfg := h.config(t)
	cfg.StateDir = stateDir
	sup := startSupervisor(t, cfg)
	waitSynced(t, sup)
	if err := sup.Stop(); err != nil {
		t.Fatal(err)
	}

	statePath := filepath.Join(stateDir, "state.json")
	raw, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	var state map[string]any
	if err := json.Unmarshal(raw, &state); err != nil {
		t.Fatal(err)
	}

	rewrite := func(mutate func(map[string]any)) {
		t.Helper()
		s := make(map[string]any, len(state))
		for k, v := range state {
			s[k] = v
		}
		mutate(s)
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(statePath, out, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	restore := func() *Supervisor {
		t.Helper()
		sup, err := newSupervisor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sup
	}

	// Garbage token alongside a live cookie: cookie-only restore.
	rewrite(func(s map[string]any) { s["resume_token"] = "rt1:torn" })
	s2 := restore()
	if s2.Cookie() == "" {
		t.Error("torn token discarded the valid cookie too")
	}
	if !s2.ResumeToken().IsZero() {
		t.Errorf("torn token restored as %v", s2.ResumeToken())
	}

	// Garbage token and no cookie: the checkpoint proves nothing — fresh
	// start.
	rewrite(func(s map[string]any) {
		s["resume_token"] = "not-a-token"
		s["cookie"] = ""
	})
	s3 := restore()
	if s3.Cookie() != "" || !s3.ResumeToken().IsZero() {
		t.Errorf("unprovable checkpoint restored cookie=%q tok=%v, want fresh start",
			s3.Cookie(), s3.ResumeToken())
	}
	if s3.rep.EntryCount() != 0 {
		t.Errorf("unprovable checkpoint restored %d entries", s3.rep.EntryCount())
	}
}

// newSupervisor constructs (without starting) a supervisor with a fresh
// replica, for restore-path inspection.
func newSupervisor(cfg Config) (*Supervisor, error) {
	rep, err := replica.NewFilterReplica()
	if err != nil {
		return nil, err
	}
	return New(cfg, rep)
}
